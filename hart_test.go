package hart_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	hart "github.com/casl-sdsu/hart"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	db, err := hart.New(hart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("greeting"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok := db.Get([]byte("greeting"))
	if !ok || string(v) != "hello" {
		t.Fatalf("Get = (%q,%v)", v, ok)
	}
	if err := db.Update([]byte("greeting"), []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("greeting")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("greeting")); !errors.Is(err, hart.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestFacadeCrashRestoreRoundTrip(t *testing.T) {
	db, err := hart.New(hart.Options{CrashSimulation: true, ArenaSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("rt%05d", i)), []byte(fmt.Sprintf("%08d", i))); err != nil {
			t.Fatal(err)
		}
	}
	img, err := db.CrashImage()
	if err != nil {
		t.Fatal(err)
	}
	db2, err := hart.Restore(img, hart.Options{CrashSimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 1000 {
		t.Fatalf("restored Len = %d", db2.Len())
	}
	for i := 0; i < 1000; i += 111 {
		v, ok := db2.Get([]byte(fmt.Sprintf("rt%05d", i)))
		if !ok || string(v) != fmt.Sprintf("%08d", i) {
			t.Fatalf("restored rt%05d = (%q,%v)", i, v, ok)
		}
	}
	if err := db2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCrashImageRequiresSimulation(t *testing.T) {
	db, _ := hart.New(hart.Options{})
	if _, err := db.CrashImage(); err == nil {
		t.Fatal("CrashImage without CrashSimulation succeeded")
	}
}

func TestFacadeLatencyEmulation(t *testing.T) {
	db, err := hart.New(hart.Options{PMWriteNs: 300, PMReadNs: 300, ArenaSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("lat%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.Arena().Clock().Snapshot(); st.Persists == 0 || st.WritePenaltyNs == 0 {
		t.Fatalf("latency emulation inactive: %+v", st)
	}
}

func TestFacadeScanAndConcurrency(t *testing.T) {
	db, err := hart.New(hart.Options{ArenaSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				db.Put([]byte(fmt.Sprintf("%c%c%04d", 'a'+w, 'x', i)), []byte("v"))
			}
		}(w)
	}
	wg.Wait()
	n := 0
	prev := ""
	db.Scan(nil, nil, func(k, v []byte) bool {
		if string(k) <= prev {
			t.Errorf("scan out of order")
			return false
		}
		prev = string(k)
		n++
		return true
	})
	if n != 2000 {
		t.Fatalf("scan saw %d records", n)
	}
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}
}
