// Package client is the public Go client for hartd, the HART network
// daemon. It speaks the length-prefixed binary protocol from
// internal/wire over one TCP connection and pipelines naturally: a
// request is written and enqueued under a short lock, then the caller
// waits on its own response slot while other goroutines write theirs —
// many requests stay in flight at once, and the connection's reader
// goroutine matches responses back in FIFO order (the protocol has no
// request IDs; ordering is the contract).
//
// For explicit batching — the client-side half of the server's Put
// coalescing — use Pipeline: queue requests locally, Exec writes them
// as one burst (one syscall, one flush), and the server's execute stage
// sees them back-to-back, which is exactly the shape its PutBatch
// coalescing feeds on.
//
// An acknowledged write (nil error from Put, PutBatch, Delete) is
// durable on the server at the time the call returns; a connection or
// server failure can only lose writes that had not yet been
// acknowledged.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/casl-sdsu/hart/internal/wire"
)

// Exported errors, matched from response status codes with errors.Is.
var (
	// ErrNotFound reports a missing key (Get or Delete).
	ErrNotFound = errors.New("hart: not found")
	// ErrBadRequest reports a request the server refused to parse or
	// validate (empty key/value, malformed frame).
	ErrBadRequest = errors.New("hart: bad request")
	// ErrKeyTooLong reports a key above the server's maximum (24 bytes).
	ErrKeyTooLong = errors.New("hart: key too long")
	// ErrValueTooLong reports a value above the largest value class.
	ErrValueTooLong = errors.New("hart: value too long")
	// ErrStoreClosed reports operations against a closing server.
	ErrStoreClosed = errors.New("hart: store closed")
	// ErrServer wraps server-side failures (allocation, I/O).
	ErrServer = errors.New("hart: server error")
	// ErrConnClosed reports use of a client whose connection is gone;
	// calls that were in flight when it died also fail with it (their
	// fate on the server is unknown — unacknowledged means possibly
	// not durable, not certainly lost).
	ErrConnClosed = errors.New("hart: connection closed")
)

// Record is one key/value pair for PutBatch and Scan results.
type Record struct {
	Key   []byte
	Value []byte
}

// Hist is one latency histogram summary from Stats.
type Hist struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  uint64  `json:"p50_ns"`
	P95Ns  uint64  `json:"p95_ns"`
	P99Ns  uint64  `json:"p99_ns"`
	MaxNs  uint64  `json:"max_ns"`
}

// Stats is the server's statistics document: store-level record and
// shard counts, the store's observability counters and histograms, and
// the daemon's own connection/pipelining counters.
type Stats struct {
	Records  int               `json:"records"`
	ARTs     int               `json:"arts"`
	Counters map[string]uint64 `json:"counters"`
	Hists    map[string]Hist   `json:"hists,omitempty"`
	Server   map[string]uint64 `json:"server,omitempty"`
}

// call is one in-flight request: the op its response decodes under and
// the slot its result lands in.
type call struct {
	op   wire.Op
	done chan result
}

type result struct {
	resp wire.Response
	err  error
}

// Client is one pipelined connection to a hartd server. Safe for
// concurrent use; all methods may be called from multiple goroutines.
type Client struct {
	conn net.Conn

	// mu serializes frame writes and pending enqueues so the FIFO of
	// written requests matches the FIFO the reader consumes.
	mu      sync.Mutex
	bw      *bufio.Writer
	pending chan *call
	encBuf  []byte

	closeOnce sync.Once
	readerWG  sync.WaitGroup

	errMu sync.Mutex
	err   error // sticky: first connection-level failure
}

// maxInFlight bounds pipelined requests awaiting responses; a caller
// exceeding it blocks (briefly — the reader is always draining) rather
// than growing without bound.
const maxInFlight = 4096

// Dial connects to a hartd server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a bounded connection establishment time.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(chan *call, maxInFlight),
	}
	c.readerWG.Add(1)
	go c.readLoop()
	return c, nil
}

// readLoop is the connection's single reader: each arriving frame
// resolves the oldest pending call. On any read error every in-flight
// and future call fails with the sticky error.
func (c *Client) readLoop() {
	defer c.readerWG.Done()
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		buf = payload
		select {
		case ca := <-c.pending:
			resp, derr := wire.DecodeResponse(payload, ca.op)
			if derr != nil {
				ca.done <- result{err: fmt.Errorf("%w: %v", ErrConnClosed, derr)}
				c.fail(fmt.Errorf("%w: response decode: %v", ErrConnClosed, derr))
				return
			}
			// The response payload aliases the read buffer; copy what
			// outlives this iteration.
			resp.Value = append([]byte(nil), resp.Value...)
			for i := range resp.Records {
				resp.Records[i].Key = append([]byte(nil), resp.Records[i].Key...)
				resp.Records[i].Value = append([]byte(nil), resp.Records[i].Value...)
			}
			ca.done <- result{resp: resp}
		default:
			c.fail(fmt.Errorf("%w: unsolicited response", ErrConnClosed))
			return
		}
	}
}

// fail records the sticky error, closes the transport and drains every
// pending call with the failure.
func (c *Client) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
	c.conn.Close()
	for {
		select {
		case ca := <-c.pending:
			ca.done <- result{err: err}
		default:
			return
		}
	}
}

// stickyErr returns the recorded connection failure, if any.
func (c *Client) stickyErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// Close shuts the connection down. In-flight calls fail with
// ErrConnClosed; their server-side fate is unknown.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		c.errMu.Lock()
		if c.err == nil {
			c.err = ErrConnClosed
		}
		c.errMu.Unlock()
		c.conn.Close()
	})
	c.readerWG.Wait()
	return nil
}

// send writes one request frame and registers its response slot. The
// enqueue happens under the write lock so pending order always equals
// wire order.
func (c *Client) send(req *wire.Request) (*call, error) {
	ca := &call{op: req.Op, done: make(chan result, 1)}
	c.mu.Lock()
	if err := c.stickyErr(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	p, err := req.AppendRequest(c.encBuf[:0])
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.encBuf = p[:0]
	c.pending <- ca
	frame := wire.AppendFrame(nil, p)
	_, werr := c.bw.Write(frame)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.mu.Unlock()
	if werr != nil {
		c.fail(fmt.Errorf("%w: %v", ErrConnClosed, werr))
	}
	return ca, nil
}

// wait blocks for a call's result and maps its status to an error.
func wait(ca *call) (wire.Response, error) {
	res := <-ca.done
	if res.err != nil {
		return wire.Response{}, res.err
	}
	if err := statusErr(&res.resp); err != nil {
		return res.resp, err
	}
	return res.resp, nil
}

// roundTrip is the synchronous path: send, then wait.
func (c *Client) roundTrip(req *wire.Request) (wire.Response, error) {
	ca, err := c.send(req)
	if err != nil {
		return wire.Response{}, err
	}
	return wait(ca)
}

// statusErr maps a non-OK status to its exported error, keeping the
// server's message as detail.
func statusErr(resp *wire.Response) error {
	var base error
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		base = ErrNotFound
	case wire.StatusBadRequest:
		base = ErrBadRequest
	case wire.StatusKeyTooLong:
		base = ErrKeyTooLong
	case wire.StatusValueTooLong:
		base = ErrValueTooLong
	case wire.StatusClosed:
		base = ErrStoreClosed
	default:
		base = ErrServer
	}
	if resp.Msg != "" && resp.Msg != resp.Status.String() {
		return fmt.Errorf("%w: %s", base, resp.Msg)
	}
	return base
}

// Get returns the value stored under key, or ErrNotFound.
func (c *Client) Get(key []byte) ([]byte, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// Put stores value under key. A nil return means the write is durable
// on the server.
func (c *Client) Put(key, value []byte) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpPut, Key: key, Value: value})
	return err
}

// Delete removes key, or returns ErrNotFound.
func (c *Client) Delete(key []byte) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpDelete, Key: key})
	return err
}

// PutBatch stores records atomically per shard group and returns the
// number applied.
func (c *Client) PutBatch(records []Record) (int, error) {
	req := wire.Request{Op: wire.OpPutBatch, Records: make([]wire.Record, len(records))}
	for i, r := range records {
		req.Records[i] = wire.Record{Key: r.Key, Value: r.Value}
	}
	resp, err := c.roundTrip(&req)
	return int(resp.Applied), err
}

// Scan returns one page of records in [start, end), at most limit (the
// server caps pages at its MaxScanPage), plus whether more remain. A
// nil start scans from the beginning, a nil end to the very end.
func (c *Client) Scan(start, end []byte, limit int) ([]Record, bool, error) {
	resp, err := c.roundTrip(&wire.Request{
		Op: wire.OpScan, Start: start, End: end, Limit: uint32(limit),
	})
	if err != nil {
		return nil, false, err
	}
	recs := make([]Record, len(resp.Records))
	for i, r := range resp.Records {
		recs[i] = Record{Key: r.Key, Value: r.Value}
	}
	return recs, resp.More, nil
}

// ScanAll walks every record in [start, end) in key order, paging
// through the server transparently. fn returning false stops the walk.
func (c *Client) ScanAll(start, end []byte, fn func(key, value []byte) bool) error {
	cursor := start
	for {
		recs, more, err := c.Scan(cursor, end, 0)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if !fn(r.Key, r.Value) {
				return nil
			}
		}
		if !more || len(recs) == 0 {
			return nil
		}
		// Resume just past the last key: its key plus a zero byte is the
		// smallest possible successor.
		last := recs[len(recs)-1].Key
		cursor = append(append(make([]byte, 0, len(last)+1), last...), 0)
	}
}

// Stats fetches the server's statistics document.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	if err := json.Unmarshal(resp.Value, &s); err != nil {
		return Stats{}, fmt.Errorf("%w: stats payload: %v", ErrServer, err)
	}
	return s, nil
}

// Pipeline queues requests locally and ships them as one burst. It is
// for single-goroutine use (the Client itself already pipelines across
// goroutines); Exec writes every queued frame with one flush and then
// collects every response, in order.
type Pipeline struct {
	c     *Client
	buf   []byte
	calls []*call
}

// Pipeline starts an empty pipeline on this connection.
func (c *Client) Pipeline() *Pipeline {
	return &Pipeline{c: c}
}

// Result is one queued request's outcome after Exec.
type Result struct {
	// Value is the Get payload (nil for writes).
	Value []byte
	// Err is the per-request error, nil on success.
	Err error
}

// queue appends one encoded request to the burst.
func (p *Pipeline) queue(req *wire.Request) error {
	payload, err := req.AppendRequest(nil)
	if err != nil {
		return err
	}
	p.buf = wire.AppendFrame(p.buf, payload)
	p.calls = append(p.calls, &call{op: req.Op, done: make(chan result, 1)})
	return nil
}

// Get queues a read.
func (p *Pipeline) Get(key []byte) error {
	return p.queue(&wire.Request{Op: wire.OpGet, Key: key})
}

// Put queues a write.
func (p *Pipeline) Put(key, value []byte) error {
	return p.queue(&wire.Request{Op: wire.OpPut, Key: key, Value: value})
}

// Delete queues a removal.
func (p *Pipeline) Delete(key []byte) error {
	return p.queue(&wire.Request{Op: wire.OpDelete, Key: key})
}

// Len reports how many requests are queued.
func (p *Pipeline) Len() int { return len(p.calls) }

// Exec ships the queued burst in one write and waits for all responses,
// returned in request order. The pipeline is reset and reusable after.
// The returned error reports transport failure only; per-request
// failures are in the Results.
func (p *Pipeline) Exec() ([]Result, error) {
	if len(p.calls) == 0 {
		return nil, nil
	}
	c := p.c
	c.mu.Lock()
	if err := c.stickyErr(); err != nil {
		c.mu.Unlock()
		p.reset()
		return nil, err
	}
	for _, ca := range p.calls {
		c.pending <- ca
	}
	_, werr := c.bw.Write(p.buf)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.mu.Unlock()
	if werr != nil {
		c.fail(fmt.Errorf("%w: %v", ErrConnClosed, werr))
	}

	results := make([]Result, len(p.calls))
	var transportErr error
	for i, ca := range p.calls {
		resp, err := wait(ca)
		results[i] = Result{Value: resp.Value, Err: err}
		if errors.Is(err, ErrConnClosed) && transportErr == nil {
			transportErr = err
		}
	}
	p.reset()
	return results, transportErr
}

// reset clears the queue for reuse.
func (p *Pipeline) reset() {
	p.buf = p.buf[:0]
	p.calls = p.calls[:0]
}
