package client

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"

	hart "github.com/casl-sdsu/hart"
	"github.com/casl-sdsu/hart/internal/server"
)

// startServer runs an in-process hartd over the given store and returns
// its address. Shutdown (but not store close — callers own that, to
// control the drain → Close ordering) happens at test cleanup.
func startServer(t *testing.T, db *hart.DB) (string, *server.Server) {
	t.Helper()
	s := server.New(db.HART, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String(), s
}

func newMemServer(t *testing.T) string {
	t.Helper()
	db, err := hart.New(hart.Options{})
	if err != nil {
		t.Fatalf("hart.New: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	addr, _ := startServer(t, db)
	return addr
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientBasic(t *testing.T) {
	c := dialT(t, newMemServer(t))

	if err := c.Put([]byte("alpha"), []byte("one")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := c.Get([]byte("alpha"))
	if err != nil || string(v) != "one" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := c.Put([]byte("alpha"), []byte("two")); err != nil {
		t.Fatalf("update: %v", err)
	}
	if v, _ := c.Get([]byte("alpha")); string(v) != "two" {
		t.Fatalf("after update: %q", v)
	}
	if err := c.Delete([]byte("alpha")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Get([]byte("alpha")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v, want ErrNotFound", err)
	}
	if err := c.Delete([]byte("alpha")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}

	// Validation errors map to their exported sentinels.
	if err := c.Put([]byte("k"), nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty value: %v, want ErrBadRequest", err)
	}
	if err := c.Put(bytes.Repeat([]byte("x"), 100), []byte("v")); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("long key: %v, want ErrKeyTooLong", err)
	}

	// PutBatch + Scan + Stats.
	var recs []Record
	for i := 0; i < 20; i++ {
		recs = append(recs, Record{
			Key:   []byte(fmt.Sprintf("scan-%02d", i)),
			Value: []byte(fmt.Sprintf("val-%02d", i)),
		})
	}
	if n, err := c.PutBatch(recs); err != nil || n != 20 {
		t.Fatalf("PutBatch = %d, %v", n, err)
	}
	page, more, err := c.Scan([]byte("scan-05"), []byte("scan-15"), 0)
	if err != nil || more || len(page) != 10 {
		t.Fatalf("Scan = %d records, more=%v, %v", len(page), more, err)
	}
	if string(page[0].Key) != "scan-05" || string(page[9].Key) != "scan-14" {
		t.Fatalf("Scan bounds: %q..%q", page[0].Key, page[9].Key)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Records != 20 || st.Server["conns_accepted"] == 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestClientPipeline(t *testing.T) {
	c := dialT(t, newMemServer(t))
	p := c.Pipeline()
	const N = 200
	for i := 0; i < N; i++ {
		if err := p.Put([]byte(fmt.Sprintf("pipe-%03d", i)), []byte(fmt.Sprintf("pv-%03d", i))); err != nil {
			t.Fatalf("queue put: %v", err)
		}
	}
	res, err := p.Exec()
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("pipelined put %d: %v", i, r.Err)
		}
	}
	// Reuse after reset: interleave gets and a failing op; results must
	// line up positionally.
	p.Get([]byte("pipe-007"))
	p.Get([]byte("no-such-key"))
	p.Delete([]byte("pipe-000"))
	p.Get([]byte("pipe-199"))
	res, err = p.Exec()
	if err != nil {
		t.Fatalf("Exec 2: %v", err)
	}
	if res[0].Err != nil || string(res[0].Value) != "pv-007" {
		t.Fatalf("res[0] = %q, %v", res[0].Value, res[0].Err)
	}
	if !errors.Is(res[1].Err, ErrNotFound) {
		t.Fatalf("res[1] = %v, want ErrNotFound", res[1].Err)
	}
	if res[2].Err != nil {
		t.Fatalf("res[2] = %v", res[2].Err)
	}
	if res[3].Err != nil || string(res[3].Value) != "pv-199" {
		t.Fatalf("res[3] = %q, %v", res[3].Value, res[3].Err)
	}
}

// TestScanAllPaging pushes past the server's page cap so ScanAll has to
// stitch multiple pages, and checks global key order across the seams.
func TestScanAllPaging(t *testing.T) {
	c := dialT(t, newMemServer(t))
	const N = 5000 // > wire.MaxScanPage (4096)
	recs := make([]Record, N)
	for i := range recs {
		recs[i] = Record{
			Key:   []byte(fmt.Sprintf("page-%05d", i)),
			Value: []byte{byte(i), byte(i >> 8)},
		}
	}
	if n, err := c.PutBatch(recs); err != nil || n != N {
		t.Fatalf("PutBatch = %d, %v", n, err)
	}
	seen := 0
	var prev []byte
	err := c.ScanAll(nil, nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("order violation at %d: %q !< %q", seen, prev, k)
		}
		prev = append(prev[:0], k...)
		seen++
		return true
	})
	if err != nil {
		t.Fatalf("ScanAll: %v", err)
	}
	if seen != N {
		t.Fatalf("ScanAll saw %d records, want %d", seen, N)
	}
}

// TestConcurrentClientsDurability is the end-to-end battery from the
// issue: 8 concurrent clients hammer one file-backed server with mixed
// Put/Get/Delete/Scan, each recording exactly what the server
// acknowledged; then the server drains, the store closes, and a fresh
// hart.Open of the same file must show every acknowledged write — and
// a clean-shutdown flag. Run under -race this also exercises the
// server pipeline's synchronization end to end.
func TestConcurrentClientsDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wire.hart")
	db, err := hart.Open(path, hart.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	addr, srv := startServer(t, db)

	const (
		clients = 8
		opsPer  = 400
	)
	type state struct {
		live map[string]string // acked puts not later acked-deleted
	}
	states := make([]state, clients)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		states[ci].live = map[string]string{}
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			st := &states[ci]
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("c%d-k%03d", ci, i%97)
				val := fmt.Sprintf("c%d-v%05d", ci, i)
				switch i % 7 {
				case 0, 1, 2, 3: // mostly writes
					if err := c.Put([]byte(key), []byte(val)); err != nil {
						errCh <- fmt.Errorf("client %d put: %w", ci, err)
						return
					}
					st.live[key] = val
				case 4:
					want, exists := st.live[key]
					v, err := c.Get([]byte(key))
					if exists && (err != nil || string(v) != want) {
						errCh <- fmt.Errorf("client %d get %q = %q, %v; want %q", ci, key, v, err, want)
						return
					}
					if !exists && !errors.Is(err, ErrNotFound) {
						errCh <- fmt.Errorf("client %d get absent %q: %v", ci, key, err)
						return
					}
				case 5:
					err := c.Delete([]byte(key))
					_, exists := st.live[key]
					if exists && err != nil {
						errCh <- fmt.Errorf("client %d delete %q: %w", ci, key, err)
						return
					}
					if !exists && !errors.Is(err, ErrNotFound) {
						errCh <- fmt.Errorf("client %d delete absent %q: %v", ci, key, err)
						return
					}
					delete(st.live, key)
				case 6:
					prefix := fmt.Sprintf("c%d-", ci)
					if _, _, err := c.Scan([]byte(prefix), []byte(prefix+"~"), 50); err != nil {
						errCh <- fmt.Errorf("client %d scan: %w", ci, err)
						return
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Drain the server, then close the store: clean-flag ordering.
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reattach: every acknowledged write must be there, and the image
	// must be marked clean.
	db2, err := hart.Open(path, hart.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if !db2.LastRecoveryStats().WasClean {
		t.Fatal("store not marked clean after drained shutdown")
	}
	total := 0
	for ci := range states {
		for key, want := range states[ci].live {
			v, ok := db2.Get([]byte(key))
			if !ok || string(v) != want {
				t.Fatalf("acked write lost after reopen: %q = %q (ok=%v), want %q", key, v, ok, want)
			}
			total++
		}
	}
	if db2.Len() != total {
		t.Fatalf("reopened store has %d records, acked state has %d", db2.Len(), total)
	}
	t.Logf("durability: %d acked records verified across %d clients", total, clients)
}

// TestClientAfterServerGone pins failure behavior: once the server is
// gone, in-flight and subsequent calls fail with ErrConnClosed rather
// than hanging.
func TestClientAfterServerGone(t *testing.T) {
	db, err := hart.New(hart.Options{})
	if err != nil {
		t.Fatalf("hart.New: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	addr, srv := startServer(t, db)
	c := dialT(t, addr)

	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The server half-closed; the client's reader has seen EOF (or will
	// shortly). Subsequent calls must fail, not hang.
	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Get after shutdown: %v, want ErrConnClosed", err)
	}
	if err := c.Put([]byte("k2"), []byte("v2")); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Put after shutdown: %v, want ErrConnClosed", err)
	}
}
