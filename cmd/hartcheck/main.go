// Command hartcheck soaks HART under the differential crash-consistency
// model checker (internal/modelcheck): it generates randomized operation
// histories, sweeps every persist boundary of every history with crash
// injection, recovers each crash image, and verifies the recovered store
// against the reference model's legal states plus the full fsck.
//
// It is the long-running companion to the deterministic CI suite in
// internal/modelcheck — run it for minutes or hours to push the sweep
// far past what CI affords:
//
//	hartcheck -duration 10m -unlogged -recovery
//	hartcheck -seed 42 -histories 500 -ops 60
//
// Any violation prints the failing seed and history so the run can be
// replayed exactly with: hartcheck -seed <seed> -histories 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/casl-sdsu/hart/internal/modelcheck"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "first history seed (seeds are consumed sequentially)")
		histories = flag.Int("histories", 100, "number of histories to sweep (0 = unlimited, use -duration)")
		ops       = flag.Int("ops", 40, "operations per history")
		duration  = flag.Duration("duration", 0, "stop after this wall time (0 = run all -histories)")
		unlogged  = flag.Bool("unlogged", false, "use the unlogged pointer-swing update path")
		recovery  = flag.Bool("recovery", false, "also crash recovery at every one of its own persist boundaries (slower)")
		file      = flag.Bool("file", false, "also reopen every crash image through the file backend (slower)")
		arena     = flag.Int64("arena", 0, "simulated PM arena bytes (0 = checker default)")
		progress  = flag.Int("progress", 10, "print progress every N histories (0 = quiet)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hartcheck [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := modelcheck.Config{
		ArenaSize:         *arena,
		UnloggedUpdates:   *unlogged,
		ReentrantRecovery: *recovery,
		FileReattach:      *file,
	}
	start := time.Now()
	done := 0
	for s := *seed; ; s++ {
		if *histories > 0 && done >= *histories {
			break
		}
		if *duration > 0 && time.Since(start) >= *duration {
			break
		}
		if err := modelcheck.RunSeed(s, *ops, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "hartcheck: VIOLATION at seed %d (ops=%d unlogged=%v recovery=%v):\n%v\n",
				s, *ops, *unlogged, *recovery, err)
			fmt.Fprintf(os.Stderr, "replay with: hartcheck -seed %d -histories 1 -ops %d\n", s, *ops)
			os.Exit(1)
		}
		done++
		if *progress > 0 && done%*progress == 0 {
			fmt.Printf("hartcheck: %d histories clean (%.1fs, last seed %d)\n",
				done, time.Since(start).Seconds(), s)
		}
	}
	fmt.Printf("hartcheck: OK — %d histories, every persist boundary swept, zero violations (%.1fs)\n",
		done, time.Since(start).Seconds())
}
