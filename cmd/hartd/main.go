// Command hartd serves a file-backed HART store over TCP.
//
// It speaks the length-prefixed binary protocol from internal/wire
// (clients use the public client package), pipelines each connection's
// requests through a read/execute/respond pipeline that coalesces
// in-flight Puts into PutBatch, and shuts down in the durability-safe
// order on SIGINT/SIGTERM: stop accepting, drain every connection's
// received requests and flush their responses, then Close the store —
// the superblock's clean-shutdown flag is the last write.
//
// Usage:
//
//	hartd -db /var/lib/hart/store.pm -addr :7070 -metrics-addr :9090
//
// The store file is created (with -size bytes) if missing; an existing
// file is attached with full recovery, exactly as hart.Open documents.
// -metrics-addr additionally serves Prometheus /metrics and expvar
// /debug/vars for live scraping.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"

	hart "github.com/casl-sdsu/hart"
	"github.com/casl-sdsu/hart/internal/obs"
	"github.com/casl-sdsu/hart/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the daemon body, separated from main so tests can drive it
// in-process (and the re-exec helpers can drive it in a child process)
// with captured output. ready, when non-nil, receives the bound listen
// address once the server is accepting.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("hartd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dbPath   = fs.String("db", "", "PM image file (required; created if missing)")
		addr     = fs.String("addr", "127.0.0.1:7070", "TCP listen address (\":0\" picks a free port)")
		mAddr    = fs.String("metrics-addr", "", "serve Prometheus /metrics and expvar /debug/vars (e.g. :9090)")
		size     = fs.Int64("size", 64<<20, "arena size for a fresh store")
		lazy     = fs.Bool("lazy", false, "lazy per-shard recovery on attach")
		workers  = fs.Int("recovery-workers", 0, "parallel recovery workers (0 = GOMAXPROCS)")
		elastic  = fs.Bool("elastic", false, "enable elastic directory splitting")
		batchMax = fs.Int("batch-max", 256, "max in-flight Puts coalesced into one PutBatch per connection")
		hists    = fs.Bool("latency-hists", false, "collect latency histograms (small hot-path cost)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dbPath == "" {
		fmt.Fprintln(stderr, "hartd: -db is required")
		return 2
	}

	db, err := hart.Open(*dbPath, hart.Options{
		ArenaSize:        *size,
		LazyRecovery:     *lazy,
		RecoveryWorkers:  *workers,
		ElasticDirectory: *elastic,
	})
	if err != nil {
		fmt.Fprintf(stderr, "hartd: cannot open %s: %v\n", *dbPath, err)
		return 1
	}
	if *hists {
		db.EnableMetrics(true)
	}
	how := "created"
	if rs := db.LastRecoveryStats(); rs.WasClean {
		how = "clean shutdown"
	} else if db.Len() > 0 {
		how = "crash image, recovered"
	}
	fmt.Fprintf(stdout, "hartd: opened %s: %d records (%s)\n", *dbPath, db.Len(), how)

	if *mAddr != "" {
		msrv := obs.Serve(*mAddr, "hart", db.Metrics, func(err error) {
			fmt.Fprintf(stderr, "hartd: metrics server: %v\n", err)
		})
		defer msrv.Close()
	}

	srv := server.New(db.HART, server.Options{
		BatchMax: *batchMax,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		},
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "hartd: listen %s: %v\n", *addr, err)
		db.Close()
		return 1
	}
	// Install the handler before announcing readiness: a signal arriving
	// the instant the address is known must drain, not kill.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	fmt.Fprintf(stdout, "hartd: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "hartd: %s: draining connections\n", sig)
		srv.Shutdown()
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintf(stderr, "hartd: serve: %v\n", err)
			db.Close()
			return 1
		}
	}
	// Drain finished: every acknowledged write is applied. Close last so
	// the clean flag truthfully means "nothing in flight was dropped".
	if err := db.Close(); err != nil {
		fmt.Fprintf(stderr, "hartd: close: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "hartd: clean shutdown")
	return 0
}
