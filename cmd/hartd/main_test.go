package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	hart "github.com/casl-sdsu/hart"
	"github.com/casl-sdsu/hart/client"
)

// TestHelperHartd is not a real test: it is the daemon body for the
// process-level tests below, active only under HARTD_TEST_DB. It runs
// the real run() — flag parsing, hart.Open, serve loop, signal
// handling — so a SIGTERM exercises exactly the production shutdown
// path and a SIGKILL exactly the production crash surface.
func TestHelperHartd(t *testing.T) {
	path := os.Getenv("HARTD_TEST_DB")
	if path == "" {
		t.Skip("helper process body; run via the daemon tests")
	}
	code := run([]string{"-db", path, "-addr", "127.0.0.1:0", "-size", fmt.Sprint(16 << 20)},
		os.Stdout, os.Stderr, nil)
	if code != 0 {
		t.Fatalf("hartd exited %d", code)
	}
}

// daemon is one spawned hartd child process. done is closed once the
// process has exited (waitErr holds its exit error), so any number of
// receivers can wait on it.
type daemon struct {
	cmd     *exec.Cmd
	addr    string
	done    chan struct{}
	waitErr error
}

// exited waits (bounded) for the daemon to exit and returns its error.
func (d *daemon) exited(t *testing.T, within time.Duration) error {
	t.Helper()
	select {
	case <-d.done:
		return d.waitErr
	case <-time.After(within):
		t.Fatal("daemon did not exit in time")
		return nil
	}
}

// startDaemon spawns hartd (via the helper) on path and waits until it
// reports its listen address.
func startDaemon(t *testing.T, path string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperHartd$")
	cmd.Env = append(os.Environ(), "HARTD_TEST_DB="+path)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	d := &daemon{cmd: cmd, done: make(chan struct{})}
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-d.done
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "hartd: listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	go func() {
		d.waitErr = cmd.Wait()
		close(d.done)
	}()

	select {
	case d.addr = <-addrCh:
	case <-d.done:
		t.Fatalf("daemon exited before listening: %v", d.waitErr)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not report a listen address")
	}
	return d
}

// TestSigtermCleanShutdown is the clean-flag satellite: write through a
// live daemon, SIGTERM it, require exit code 0, and require the store
// file to reopen with WasClean=true and every record present.
func TestSigtermCleanShutdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sigterm.hart")
	d := startDaemon(t, path)

	c, err := client.Dial(d.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	const N = 200
	for i := 0; i < N; i++ {
		if err := c.Put([]byte(fmt.Sprintf("term-%04d", i)), []byte(fmt.Sprintf("tv-%04d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	c.Close()

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	if err := d.exited(t, 30*time.Second); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v (want exit 0)", err)
	}

	db, err := hart.Open(path, hart.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	if !db.LastRecoveryStats().WasClean {
		t.Fatal("SIGTERM shutdown left the store marked dirty")
	}
	if db.Len() != N {
		t.Fatalf("reopened Len = %d, want %d", db.Len(), N)
	}
	for i := 0; i < N; i++ {
		key := fmt.Sprintf("term-%04d", i)
		if v, ok := db.Get([]byte(key)); !ok || string(v) != fmt.Sprintf("tv-%04d", i) {
			t.Fatalf("Get(%s) = %q, %v after clean shutdown", key, v, ok)
		}
	}
}

// TestKillMidTrafficDurability is the issue's acceptance test: 8
// concurrent clients stream writes at a live daemon; the daemon is
// SIGKILLed mid-traffic; a fresh daemon is started on the same file and
// every acknowledged write must be readable over the wire — zero
// acked-write loss. The restarted daemon then gets a SIGTERM and the
// image must come back clean.
func TestKillMidTrafficDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kill.hart")
	d := startDaemon(t, path)

	const clients = 8
	type ackedWrite struct{ key, val string }
	ackedByClient := make([][]ackedWrite, clients)
	var totalAcked atomic.Int64

	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.Dial(d.addr)
			if err != nil {
				return // daemon may already be dead; nothing acked, nothing owed
			}
			defer c.Close()
			for i := 0; ; i++ {
				key := fmt.Sprintf("kill-c%d-%06d", ci, i)
				val := fmt.Sprintf("kv-%d-%06d", ci, i)
				if err := c.Put([]byte(key), []byte(val)); err != nil {
					return // unacked — allowed to be lost
				}
				// Ack received before the kill resolves: must survive.
				ackedByClient[ci] = append(ackedByClient[ci], ackedWrite{key, val})
				totalAcked.Add(1)
			}
		}(ci)
	}

	// Let real traffic build up, then kill without ceremony.
	for totalAcked.Load() < 2000 {
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	wg.Wait()
	d.exited(t, 30*time.Second) // SIGKILL exit; error expected, ignore

	// Trim each client's trailing ack: a response can be acked by the
	// server (written to the socket) and still die in the kernel buffer
	// of the killed process... no — acked here means the *client* read
	// the response, and the server wrote it only after the record was
	// durable in the mapped file. Nothing to trim; assert all of it.
	d2 := startDaemon(t, path)
	c, err := client.Dial(d2.addr)
	if err != nil {
		t.Fatalf("dial restarted daemon: %v", err)
	}
	checked := 0
	for ci := range ackedByClient {
		for _, w := range ackedByClient[ci] {
			v, err := c.Get([]byte(w.key))
			if err != nil || string(v) != w.val {
				t.Fatalf("acked write lost across SIGKILL: Get(%s) = %q, %v; want %q",
					w.key, v, err, w.val)
			}
			checked++
		}
	}
	c.Close()
	t.Logf("durability: %d acked writes verified across kill+restart", checked)

	// Clean shutdown of the restarted daemon leaves a clean image.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	if err := d2.exited(t, 30*time.Second); err != nil {
		t.Fatalf("restarted daemon exit after SIGTERM: %v", err)
	}
	db, err := hart.Open(path, hart.Options{})
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer db.Close()
	if !db.LastRecoveryStats().WasClean {
		t.Fatal("restarted daemon's SIGTERM shutdown left the store dirty")
	}
	if db.Len() < checked {
		t.Fatalf("final store has %d records, fewer than %d acked", db.Len(), checked)
	}
}

// TestRunFlagValidation pins the daemon's refusal paths: no -db, and a
// bad flag, both without touching any store file.
func TestRunFlagValidation(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut, nil); code != 2 {
		t.Fatalf("run with no -db: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-db is required") {
		t.Fatalf("stderr = %q", errOut.String())
	}
	if code := run([]string{"-no-such-flag"}, &out, &errOut, nil); code != 2 {
		t.Fatalf("run with bad flag: exit %d, want 2", code)
	}
}

// TestRunInProcessServes exercises run() end to end in-process via the
// ready channel: open, serve, one client round trip, SIGTERM-equivalent
// shutdown through the real signal handler.
func TestRunInProcessServes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inproc.hart")
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	var out strings.Builder
	go func() {
		exit <- run([]string{"-db", path, "-addr", "127.0.0.1:0", "-size", fmt.Sprint(16 << 20)},
			&out, os.Stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon not ready")
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c.Put([]byte("inproc"), []byte("works")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if v, err := c.Get([]byte("inproc")); err != nil || string(v) != "works" {
		t.Fatalf("get = %q, %v", v, err)
	}
	c.Close()

	// The real handler listens for os.Interrupt/SIGTERM; deliver one to
	// ourselves to drive the production shutdown path.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-signal: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("run exited %d\n%s", code, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "clean shutdown") {
		t.Fatalf("output missing clean shutdown: %q", out.String())
	}
}
