// Command hartfsck validates a saved HART PM image (as written by
// hartkv or any application using hart.DB.CrashImage): it replays
// recovery — completing interrupted update logs and rebuilding the
// volatile index — then runs the full consistency and leak check and
// prints an inventory of the persistent state.
//
// Usage:
//
//	hartfsck [-workers N] [-events] /tmp/store.pm
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	hart "github.com/casl-sdsu/hart"
)

func main() {
	workers := flag.Int("workers", 0, "recovery worker count (0 or 1 = serial)")
	events := flag.Bool("events", false, "print the recovery's event trail (open, ulog replays, phase timings)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hartfsck [-workers N] [-events] <image-file>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	img, err := os.ReadFile(path)
	if err != nil {
		fail("read image: %v", err)
	}
	db, err := hart.Restore(img, hart.Options{CrashSimulation: true, RecoveryWorkers: *workers})
	if err != nil {
		fail("recovery: %v", err)
	}
	st := db.Stats()
	rs := db.LastRecoveryStats()
	shutdown := "unclean shutdown (crash image)"
	if rs.WasClean {
		shutdown = "clean shutdown"
	}
	fmt.Printf("%s: %d records in %d ARTs, %s\n", path, st.Records, st.ARTs, shutdown)
	fmt.Printf("  recovery: %d live leaves, %d update logs completed, %d stale slots zeroed, %d orphan values reclaimed\n",
		rs.LiveLeaves, rs.CompletedULogs, rs.StaleSlotsZeroed, rs.OrphanValues)
	fmt.Printf("  recovery phases (%d worker(s)): ulog replay %v, leaf scan %v, ART build %v, sweeps %v (build overlaps sweeps)\n",
		rs.Workers,
		time.Duration(rs.ULogNs).Round(time.Microsecond),
		time.Duration(rs.ScanNs).Round(time.Microsecond),
		time.Duration(rs.BuildNs).Round(time.Microsecond),
		time.Duration(rs.SweepNs).Round(time.Microsecond))
	dir := st.Dir
	fmt.Printf("  directory: %d entries, depth %d", dir.Entries, dir.BaseDepth)
	if dir.MaxDepth > dir.BaseDepth {
		fmt.Printf("-%d", dir.MaxDepth)
	}
	fmt.Printf(", %d/%d split prefixes persisted", dir.Splits, dir.SplitCap)
	if dir.SplitsDone > 0 || dir.MergesDone > 0 {
		fmt.Printf(" (%d splits, %d merges this run)", dir.SplitsDone, dir.MergesDone)
	}
	fmt.Println()
	for i, hs := range dir.Hot {
		if i >= 3 || hs.Ops == 0 {
			break
		}
		fmt.Printf("    hot shard %-8q: %6d records, %6d ops since open\n", hs.Prefix, hs.Records, hs.Ops)
	}
	fmt.Printf("  PM:   %.2f MB reserved of %.2f MB\n",
		float64(st.Size.PMBytes)/(1<<20), float64(st.Arena.Capacity)/(1<<20))
	for _, cs := range st.Alloc {
		fmt.Printf("  class %-8s: %6d used, %4d chunks, %4d free chunks\n",
			cs.Name, cs.Used, cs.Chunks, cs.FreeChunks)
	}
	if *events {
		fmt.Println("  events:")
		for _, ev := range db.Events() {
			fmt.Printf("    #%-4d %-20s %-8s", ev.Seq, ev.Kind, ev.Detail)
			if ev.Kind == "recover.phase" {
				fmt.Printf(" items=%d took=%v", ev.A, time.Duration(ev.B).Round(time.Microsecond))
			} else if ev.A != 0 || ev.B != 0 {
				fmt.Printf(" a=%d b=%d", ev.A, ev.B)
			}
			fmt.Println()
		}
	}
	if err := db.Check(); err != nil {
		fail("FSCK FAILED: %v", err)
	}
	fmt.Println("  fsck: ok (no lost records, no persistent leaks)")
}

// fail prints and exits non-zero.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hartfsck: "+format+"\n", args...)
	os.Exit(1)
}
