// Command hartbench regenerates the paper's evaluation: every figure of
// Section IV (Figs. 4-10) plus the Section I headline speedups, over the
// same workloads (Dictionary, Sequential, Random, the three YCSB-style
// mixes) and PM latency configurations (300/100, 300/300, 600/300).
//
// Record counts default to a laptop-scale 100,000 (the paper uses 1 M to
// 100 M on a two-socket Xeon); pass -records to scale up. Shapes — who
// wins, by what factor, where the crossovers fall — are the reproduction
// target, not absolute times.
//
// Usage:
//
//	hartbench -fig all
//	hartbench -fig 4 -records 1000000
//	hartbench -fig 10d -threads 1,2,4,8,16
//	hartbench -fig summary -mode spin
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"github.com/casl-sdsu/hart/internal/bench"
	"github.com/casl-sdsu/hart/internal/latency"
	"github.com/casl-sdsu/hart/internal/obs"
	"github.com/casl-sdsu/hart/internal/workload"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to run: all, 4, 5, 6, 7, 8, 9, 10a, 10b, 10c, 10d, summary, ablation, readpath, writepath, recovery, restart, skew, obs, wire")
		rpOut   = flag.String("readpath-out", "BENCH_readpath.json", "output file for -fig readpath")
		wpOut   = flag.String("writepath-out", "BENCH_writepath.json", "output file for -fig writepath")
		recOut  = flag.String("recovery-out", "BENCH_recovery.json", "output file for -fig recovery")
		rstOut  = flag.String("restart-out", "BENCH_restart.json", "output file for -fig restart")
		skOut   = flag.String("skew-out", "BENCH_skew.json", "output file for -fig skew")
		obsOut  = flag.String("obs-out", "BENCH_obs.json", "output file for -fig obs")
		wireOut = flag.String("wire-out", "BENCH_wire.json", "output file for -fig wire")
		mAddr   = flag.String("metrics-addr", "", "serve Prometheus /metrics and expvar /debug/vars for the store under measurement (e.g. :9090)")
		dist    = flag.String("dist", "uniform", "mixed-workload request distribution: uniform (the paper's) or zipf")
		theta   = flag.Float64("theta", 0.99, "zipfian skew parameter for -dist zipf, in (0, 1)")
		records = flag.Int("records", 100000, "Sequential/Random record count")
		valsize = flag.Int("valuesize", 0, "record payload bytes (default 8; max 16)")
		dict    = flag.Int("dict", 0, "Dictionary size (default min(records, 466544); pass 466544 for the paper's corpus)")
		mixed   = flag.Int("mixedops", 0, "mixed-workload operation count (default records)")
		mode    = flag.String("mode", "spin", "latency injection: spin (wall-clock) or account (added offline, the paper's method)")
		trees   = flag.String("trees", "", "comma-separated subset of HART,WOART,ART+CoW,FPTree")
		sweep   = flag.String("sweep", "", "comma-separated record counts for figs 8/10c (default records/10,records/2,records)")
		threads = flag.String("threads", "1,2,4,8,16", "thread counts for fig 10d")
		quiet   = flag.Bool("quiet", false, "suppress progress lines, print only the final tables")
		chart   = flag.Bool("chart", false, "render ASCII bar charts after the tables")
	)
	flag.Parse()

	cfg := bench.Config{Records: *records, MixedOps: *mixed, ValueSize: *valsize, Out: os.Stderr}
	if *quiet {
		cfg.Out = nil
	}
	cfg.DictRecords = *dict
	if cfg.DictRecords == 0 {
		cfg.DictRecords = min(*records, 466544)
	}
	switch *mode {
	case "spin":
		cfg.Mode = latency.ModeSpin
	case "account":
		cfg.Mode = latency.ModeAccount
	default:
		fatalf("unknown -mode %q", *mode)
	}
	switch *dist {
	case "uniform":
		cfg.Dist = workload.Uniform()
	case "zipf":
		cfg.Dist = workload.ZipfTheta(*theta)
	default:
		fatalf("unknown -dist %q", *dist)
	}
	if *trees != "" {
		cfg.Trees = strings.Split(*trees, ",")
	}
	if *sweep != "" {
		cfg.ScaleSweep = parseInts(*sweep)
	}
	if *threads != "" {
		cfg.Threads = parseInts(*threads)
	}
	// The path comparisons keep their checked-in 1/4/8 matrix unless the
	// user passed -threads explicitly (the flag's default serves fig 10d).
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "threads" {
			cfg.PathThreads = cfg.Threads
		}
	})
	cfg = cfg.WithDefaults()

	if *mAddr != "" {
		srv := obs.Serve(*mAddr, "hart", bench.LiveSnapshot, func(err error) {
			fmt.Fprintf(os.Stderr, "hartbench: metrics server: %v\n", err)
		})
		defer srv.Close()
	}

	// An interrupt mid-run must not strand a file-backed experiment
	// store dirty: close (drain + sync + clean flag) whatever is open,
	// then exit with the conventional 128+signal code.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "hartbench: %s: closing active stores\n", sig)
		code := 130 // SIGINT
		if sig == syscall.SIGTERM {
			code = 143
		}
		if err := bench.CloseActive(); err != nil {
			fmt.Fprintf(os.Stderr, "hartbench: close: %v\n", err)
		}
		os.Exit(code)
	}()

	var (
		rep bench.Report
		err error
	)
	switch *fig {
	case "all":
		rep, err = bench.RunAll(cfg)
	case "4":
		rep, err = bench.RunFig4(cfg)
	case "5":
		rep, err = bench.RunFig5(cfg)
	case "6":
		rep, err = bench.RunFig6(cfg)
	case "7":
		rep, err = bench.RunFig7(cfg)
	case "8":
		rep, err = bench.RunFig8(cfg)
	case "9":
		rep, err = bench.RunFig9(cfg)
	case "10a":
		rep, err = bench.RunFig10a(cfg)
	case "10b":
		rep, err = bench.RunFig10b(cfg)
	case "10c":
		rep, err = bench.RunFig10c(cfg)
	case "10d":
		rep, err = bench.RunFig10d(cfg)
	case "readpath":
		runReadPath(cfg, *rpOut)
		return
	case "writepath":
		runWritePath(cfg, *wpOut)
		return
	case "recovery":
		runRecovery(cfg, *recOut)
		return
	case "restart":
		runRestart(cfg, *rstOut)
		return
	case "skew":
		runSkew(cfg, *skOut)
		return
	case "obs":
		runObs(cfg, *obsOut)
		return
	case "wire":
		runWire(cfg, *wireOut)
		return
	case "summary":
		rep, err = runBasics(cfg)
	case "ablation":
		rep, err = bench.RunAblations(cfg)
	default:
		fatalf("unknown -fig %q", *fig)
	}
	if err != nil {
		fatalf("%v", err)
	}
	rep.FprintTable(os.Stdout)
	if *chart {
		rep.FprintCharts(os.Stdout)
	}
	if *fig == "all" || *fig == "summary" {
		bench.FprintSummary(os.Stdout, bench.Summarise(rep))
	}
}

// runReadPath runs the lock-free vs locked read-path comparison and
// records it as JSON (the before/after evidence for the optimisation).
func runReadPath(cfg bench.Config, out string) {
	rep, err := bench.RunReadPath(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep.FprintTable(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "hartbench: wrote %s\n", out)
}

// runWritePath runs the striped vs legacy write-path comparison and
// records it as JSON (the before/after evidence for the optimisation).
func runWritePath(cfg bench.Config, out string) {
	rep, err := bench.RunWritePath(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep.FprintTable(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "hartbench: wrote %s\n", out)
}

// runRecovery runs the legacy vs pipelined vs lazy recovery comparison
// and records it as JSON (the before/after evidence for the optimisation).
func runRecovery(cfg bench.Config, out string) {
	rep, err := bench.RunRecovery(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep.FprintTable(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "hartbench: wrote %s\n", out)
}

// runRestart runs the file-backed close-and-reopen comparison and
// records it as JSON (the time-to-first-read evidence for the durable
// file backend).
func runRestart(cfg bench.Config, out string) {
	rep, err := bench.RunRestart(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep.FprintTable(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "hartbench: wrote %s\n", out)
}

// runSkew runs the zipfian-skew fixed vs elastic directory comparison
// and records it as JSON (the skew-resilience evidence for hot-shard
// splitting).
func runSkew(cfg bench.Config, out string) {
	rep, err := bench.RunSkew(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep.FprintTable(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "hartbench: wrote %s\n", out)
}

// runObs runs the metrics-off vs metrics-on overhead comparison with a
// live Prometheus scrape and records it as JSON (the overhead evidence
// for the observability layer).
func runObs(cfg bench.Config, out string) {
	rep, err := bench.RunObs(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep.FprintTable(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "hartbench: wrote %s\n", out)
}

// runWire runs the hartsoak service-layer comparison — naive vs
// pipelined clients over real TCP connections to an in-process hartd —
// and records it as JSON (the throughput evidence for the wire
// protocol's pipelining and Put coalescing).
func runWire(cfg bench.Config, out string) {
	rep, err := bench.RunWire(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep.FprintTable(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "hartbench: wrote %s\n", out)
}

// runBasics runs Figs. 4-7, the inputs of the headline summary.
func runBasics(cfg bench.Config) (bench.Report, error) {
	var all bench.Report
	for _, fn := range []func(bench.Config) (bench.Report, error){
		bench.RunFig4, bench.RunFig5, bench.RunFig6, bench.RunFig7,
	} {
		rep, err := fn(cfg)
		if err != nil {
			return nil, err
		}
		all = append(all, rep...)
	}
	return all, nil
}

// parseInts parses a comma-separated integer list.
func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatalf("bad integer %q", part)
		}
		out = append(out, n)
	}
	return out
}

// fatalf prints an error and exits.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hartbench: "+format+"\n", args...)
	os.Exit(1)
}
