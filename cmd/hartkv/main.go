// Command hartkv is an interactive key-value shell over a HART index.
//
// With -db the store is a file-backed persistent memory arena opened
// through hart.Open: the file is mapped shared, every completed put or
// delete is durable against a process crash with no save step, and each
// start re-attaches and runs HART's recovery (Algorithm 7). "sync"
// flushes the mapping for machine-crash durability and "quit" closes the
// store cleanly; so does a SIGINT (Ctrl-C) or SIGTERM, which syncs and
// closes the store before exiting rather than abandoning a dirty
// image. A -db file that exists but cannot be attached — torn,
// truncated, not a HART store, or created with different geometry — is
// refused outright; hartkv never falls back to an empty store over a
// path that holds data.
//
// Usage:
//
//	hartkv -db /tmp/store.pm
//
//	> put greeting hello
//	> get greeting
//	hello
//	> scan a z
//	> stats
//	> check
//	> sync
//	> quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	hart "github.com/casl-sdsu/hart"
	"github.com/casl-sdsu/hart/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the shell body, separated from main so the process-level tests
// can re-exec it through a helper with a scripted stdin.
func run(args []string) int {
	fs := flag.NewFlagSet("hartkv", flag.ContinueOnError)
	var (
		dbPath = fs.String("db", "", "PM image file (created if missing; empty = in-memory only)")
		size   = fs.Int64("size", 64<<20, "arena size for a fresh store")
		mAddr  = fs.String("metrics-addr", "", "serve Prometheus /metrics and expvar /debug/vars for this store (e.g. :9090)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var db *hart.DB
	var err error
	if *dbPath != "" {
		st, serr := os.Stat(*dbPath)
		existed := serr == nil && st.Size() > 0
		// Geometry is adopted from the store's superblock on re-attach;
		// ArenaSize only sizes a file created by this run.
		db, err = hart.Open(*dbPath, hart.Options{ArenaSize: *size})
		if err != nil {
			// Refuse to start rather than shadow an unreadable store with an
			// empty one: the old path fell back to hart.New here and then
			// clobbered the image on quit, losing every record in it.
			fmt.Fprintf(os.Stderr, "hartkv: cannot open %s: %v\n", *dbPath, err)
			return 1
		}
		how := "created"
		if existed {
			how = "crash image, recovered"
			if db.LastRecoveryStats().WasClean {
				how = "clean shutdown"
			}
		}
		fmt.Printf("opened %s: %d records (%s)\n", *dbPath, db.Len(), how)
	} else {
		db, err = hart.New(hart.Options{ArenaSize: *size})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hartkv:", err)
			return 1
		}
	}

	// Ctrl-C (or a SIGTERM) must not strand a file-backed store dirty:
	// sync + close — the clean-shutdown flag is the last write — then
	// exit. The handler normally fires while the shell is blocked on
	// stdin, so nothing else is touching the store.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "\nhartkv: %s: closing store\n", sig)
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hartkv: close failed:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}()

	if *mAddr != "" {
		srv := obs.Serve(*mAddr, "hart", db.Metrics, func(err error) {
			fmt.Fprintf(os.Stderr, "hartkv: metrics server: %v\n", err)
		})
		defer srv.Close()
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch cmd := fields[0]; cmd {
		case "put":
			if len(fields) != 3 {
				fmt.Println("usage: put <key> <value>   (key <= 24B, value <= 16B)")
				break
			}
			if err := db.Put([]byte(fields[1]), []byte(fields[2])); err != nil {
				fmt.Println("error:", err)
			}
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				break
			}
			if v, ok := db.Get([]byte(fields[1])); ok {
				fmt.Println(string(v))
			} else {
				fmt.Println("(not found)")
			}
		case "del", "delete":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				break
			}
			if err := db.Delete([]byte(fields[1])); err != nil {
				fmt.Println("error:", err)
			}
		case "scan":
			var lo, hi []byte
			if len(fields) > 1 {
				lo = []byte(fields[1])
			}
			if len(fields) > 2 {
				hi = []byte(fields[2])
			}
			n := 0
			db.Scan(lo, hi, func(k, v []byte) bool {
				fmt.Printf("%s = %s\n", k, v)
				n++
				return n < 1000
			})
			fmt.Printf("(%d records)\n", n)
		case "len":
			fmt.Println(db.Len())
		case "stats":
			st := db.Stats()
			fmt.Printf("records:   %d\n", st.Records)
			fmt.Printf("ARTs:      %d\n", st.ARTs)
			fmt.Printf("PM used:   %.2f MB (%d persists so far)\n",
				float64(st.Size.PMBytes)/(1<<20), st.Arena.Persists)
			fmt.Printf("DRAM used: %.2f MB (height %d; %d/%d/%d/%d N4/N16/N48/N256)\n",
				float64(st.Size.DRAMBytes)/(1<<20), st.ART.Height,
				st.ART.Node4s, st.ART.Node16s, st.ART.Node48s, st.ART.Node256s)
			for _, cs := range st.Alloc {
				fmt.Printf("class %-8s: %d used, %d chunks (+%d free), %.2f MB PM\n",
					cs.Name, cs.Used, cs.Chunks, cs.FreeChunks, float64(cs.PMBytes)/(1<<20))
			}
			d := st.Dir
			fmt.Printf("directory: %d entries, depth %d..%d, %d/%d split prefixes (%d splits, %d merges since open)\n",
				d.Entries, d.BaseDepth, d.MaxDepth, d.Splits, d.SplitCap, d.SplitsDone, d.MergesDone)
			m := db.Metrics()
			for _, name := range sortedNames(m.Counters) {
				fmt.Printf("  %-22s %d\n", name, m.Counters[name])
			}
			for _, name := range sortedNames(m.Hists) {
				hv := m.Hists[name]
				fmt.Printf("  %-22s n=%d mean=%.0fns p50=%dns p99=%dns max=%dns\n",
					name+" (ns)", hv.Count, hv.MeanNs, hv.P50Ns, hv.P99Ns, hv.MaxNs)
			}
			if len(m.Hists) == 0 {
				fmt.Println("  (latency histograms off — `metrics on` to enable)")
			}
		case "metrics":
			if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
				fmt.Println("usage: metrics on|off   (toggle latency histograms)")
				break
			}
			db.EnableMetrics(fields[1] == "on")
			fmt.Println("metrics", fields[1])
		case "events":
			for _, ev := range db.Events() {
				fmt.Printf("#%d %-18s %-10s a=%d b=%d\n", ev.Seq, ev.Kind, ev.Detail, ev.A, ev.B)
			}
		case "check":
			if err := db.Check(); err != nil {
				fmt.Println("FSCK FAILED:", err)
			} else {
				fmt.Println("ok")
			}
		case "sync", "save":
			if *dbPath == "" {
				fmt.Println("error: no -db file configured")
				break
			}
			if err := db.Sync(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("synced", *dbPath)
			}
		case "fill":
			// fill <n> [prefix]: bulk-load synthetic records for demos.
			if len(fields) < 2 {
				fmt.Println("usage: fill <n> [prefix]")
				break
			}
			n := 0
			fmt.Sscanf(fields[1], "%d", &n)
			prefix := "k"
			if len(fields) > 2 {
				prefix = fields[2]
			}
			filled := 0
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("%s%08d", prefix, i)
				if err := db.Put([]byte(k), []byte(fmt.Sprintf("%08d", i))); err != nil {
					fmt.Println("error:", err)
					break
				}
				filled++
			}
			fmt.Printf("inserted %d records\n", filled)
		case "quit", "exit":
			if err := db.Close(); err != nil {
				fmt.Println("close failed:", err)
				return 1
			}
			return 0
		case "help":
			fmt.Println("commands: put get del scan len stats metrics events check sync quit")
		default:
			fmt.Printf("unknown command %q (try help)\n", cmd)
		}
		fmt.Print("> ")
	}
	// Stdin ended without "quit" (scripted input, closed terminal):
	// close anyway so a file-backed image comes back clean.
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hartkv: close failed:", err)
		return 1
	}
	return 0
}

// sortedNames returns a map's keys in sorted order for stable output.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
