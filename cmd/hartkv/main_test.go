package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	hart "github.com/casl-sdsu/hart"
)

// TestHelperHartkv is the shell body for the process-level tests,
// active only under HARTKV_TEST_DB: it runs the real run() — flag
// parsing, hart.Open, the command loop, the signal handler — so a
// SIGINT exercises exactly the production close-on-interrupt path.
func TestHelperHartkv(t *testing.T) {
	path := os.Getenv("HARTKV_TEST_DB")
	if path == "" {
		t.Skip("helper process body; run via the signal tests")
	}
	code := run([]string{"-db", path, "-size", fmt.Sprint(16 << 20)})
	if code != 0 {
		t.Fatalf("hartkv exited %d", code)
	}
}

// startShell spawns hartkv (via the helper) on path with a stdin pipe
// and returns the pipe plus a channel that yields each stdout line.
func startShell(t *testing.T, path string) (*exec.Cmd, io.WriteCloser, <-chan string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperHartkv$")
	cmd.Env = append(os.Environ(), "HARTKV_TEST_DB="+path)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start hartkv: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	return cmd, stdin, lines
}

// waitForLine reads shell output until a line containing want appears.
func waitForLine(t *testing.T, lines <-chan string, want string) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("shell exited before printing %q", want)
			}
			if strings.Contains(line, want) {
				return
			}
		case <-deadline:
			t.Fatalf("shell never printed %q", want)
		}
	}
}

// TestSigintClosesStore is the satellite's hartkv half: interrupt a
// file-backed shell mid-session and the image must reopen clean with
// every completed write present.
func TestSigintClosesStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sigint.hart")
	cmd, stdin, lines := startShell(t, path)

	const N = 300
	fmt.Fprintf(stdin, "fill %d sig\n", N)
	waitForLine(t, lines, fmt.Sprintf("inserted %d records", N))

	// The fill is acknowledged; now interrupt without "quit".
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatalf("signal: %v", err)
	}
	err := cmd.Wait()
	if err != nil {
		t.Fatalf("hartkv exit after SIGINT: %v (want exit 0)", err)
	}

	db, err := hart.Open(path, hart.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	if !db.LastRecoveryStats().WasClean {
		t.Fatal("SIGINT left the store marked dirty")
	}
	if db.Len() != N {
		t.Fatalf("reopened Len = %d, want %d", db.Len(), N)
	}
	if v, ok := db.Get([]byte(fmt.Sprintf("sig%08d", N-1))); !ok || string(v) != fmt.Sprintf("%08d", N-1) {
		t.Fatalf("last filled record missing after interrupt: %q, %v", v, ok)
	}
}

// TestStdinEOFClosesStore pins the scripted-input path: piping commands
// in without a trailing "quit" still leaves a clean image.
func TestStdinEOFClosesStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eof.hart")
	cmd, stdin, lines := startShell(t, path)

	fmt.Fprintln(stdin, "put scripted done")
	fmt.Fprintln(stdin, "get scripted")
	waitForLine(t, lines, "done")
	stdin.Close()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("hartkv exit after stdin EOF: %v (want exit 0)", err)
	}

	db, err := hart.Open(path, hart.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	if !db.LastRecoveryStats().WasClean {
		t.Fatal("stdin EOF left the store marked dirty")
	}
	if v, ok := db.Get([]byte("scripted")); !ok || string(v) != "done" {
		t.Fatalf("record missing after EOF close: %q, %v", v, ok)
	}
}
