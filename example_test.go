package hart_test

import (
	"fmt"

	hart "github.com/casl-sdsu/hart"
)

// The basic lifecycle: create, write, read, scan, delete.
func Example() {
	db, err := hart.New(hart.Options{})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.Put([]byte("apple"), []byte("red"))
	db.Put([]byte("banana"), []byte("yellow"))
	db.Put([]byte("cherry"), []byte("dark-red"))

	if v, ok := db.Get([]byte("banana")); ok {
		fmt.Printf("banana: %s\n", v)
	}

	db.Scan([]byte("a"), []byte("c"), func(k, v []byte) bool {
		fmt.Printf("%s=%s\n", k, v)
		return true
	})

	db.Delete([]byte("apple"))
	fmt.Println("records:", db.Len())

	// Output:
	// banana: yellow
	// apple=red
	// banana=yellow
	// records: 2
}

// Durability: take the persistent-memory image a power failure would
// leave behind, then recover a new index from it.
func ExampleRestore() {
	db, err := hart.New(hart.Options{CrashSimulation: true, ArenaSize: 4 << 20})
	if err != nil {
		panic(err)
	}
	db.Put([]byte("survives"), []byte("yes"))

	img, err := db.CrashImage() // simulated power failure
	if err != nil {
		panic(err)
	}

	recovered, err := hart.Restore(img, hart.Options{})
	if err != nil {
		panic(err)
	}
	v, _ := recovered.Get([]byte("survives"))
	fmt.Printf("%s\n", v)
	// Output: yes
}

// PM latency emulation: the paper's 600/300 configuration charges the
// PM-DRAM latency gap on every persist and cache-missing PM read.
func ExampleOptions_latency() {
	db, err := hart.New(hart.Options{
		PMWriteNs: 600, // paper's 600/300 configuration
		PMReadNs:  300,
		ArenaSize: 4 << 20,
	})
	if err != nil {
		panic(err)
	}
	db.Put([]byte("k"), []byte("v"))
	st := db.Arena().Clock().Snapshot()
	fmt.Println("persists charged:", st.Persists > 0)
	// Output: persists charged: true
}

// Larger value classes: the paper's two classes (8 B, 16 B) extend to any
// ascending multiple-of-8 table.
func ExampleOptions_valueClasses() {
	db, err := hart.New(hart.Options{
		ValueClasses: []int64{8, 16, 64},
		ArenaSize:    4 << 20,
	})
	if err != nil {
		panic(err)
	}
	long := make([]byte, 60)
	for i := range long {
		long[i] = 'x'
	}
	fmt.Println("60-byte value accepted:", db.Put([]byte("big"), long) == nil)
	// Output: 60-byte value accepted: true
}
