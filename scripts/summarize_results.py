#!/usr/bin/env python3
"""Summarise hartbench output (results_full.txt) into the shape checks
EXPERIMENTS.md reports: per-figure winners and HART-vs-baseline ratios.

JSON arguments (the BENCH_*.json path reports) are summarised instead by
their embedded observability snapshot: headline op counters, latency
percentiles when histograms were enabled, recorded events, and — for
BENCH_obs.json — the off-vs-on overhead table and the live-Prometheus
scrape fields.

Usage: python3 scripts/summarize_results.py results_full.txt
       python3 scripts/summarize_results.py BENCH_obs.json [BENCH_*.json ...]
"""
import json
import re
import sys
from collections import defaultdict


def parse(path):
    rows = []
    fig = None
    mode = None
    for line in open(path):
        m = re.match(r"== Figure (\S+) ==", line)
        if m:
            fig = m.group(1)
            mode = None
            continue
        if fig is None or not line.strip():
            continue
        if line.startswith("workload"):
            mode = "us" if "us/op" in line else (
                "mem" if "PM MB" in line else (
                    "miops" if "MIOPS" in line else "total"))
            continue
        parts = line.split()
        if not parts:
            continue
        try:
            if mode == "us":
                rows.append(dict(fig=fig, wl=parts[0], tree=parts[1], op=parts[2],
                                 lat=parts[3], val=float(parts[4])))
            elif mode == "total":
                rows.append(dict(fig=fig, wl=parts[0], tree=parts[1], op=parts[2],
                                 lat=parts[3], n=int(parts[4]), val=float(parts[5])))
            elif mode == "mem":
                rows.append(dict(fig=fig, wl=parts[0], tree=parts[1],
                                 pm=float(parts[2]), dram=float(parts[3])))
            elif mode == "miops":
                rows.append(dict(fig=fig, wl=parts[0], op=parts[1], lat=parts[2],
                                 threads=int(parts[3]), val=float(parts[4])))
        except (ValueError, IndexError):
            pass
    return rows


def main(path):
    rows = parse(path)
    # Figs 4-7 + 9: HART ratio vs each baseline per cell.
    cells = defaultdict(dict)
    for r in rows:
        if r["fig"][0] in "4567" or r["fig"][0] == "9":
            cells[(r["fig"], r["wl"], r["lat"], r.get("op"))][r["tree"]] = r["val"]
    byop = defaultdict(list)
    for (fig, wl, lat, op), trees in sorted(cells.items()):
        if "HART" not in trees:
            continue
        h = trees["HART"]
        for t, v in trees.items():
            if t in ("HART", "HART-scan"):
                continue
            byop[(op or fig, t)].append((v / h, f"{wl}/{lat}"))
    print("== HART speedups (ratio = baseline / HART; >1 means HART wins) ==")
    for (op, t), lst in sorted(byop.items()):
        best = max(lst)
        worst = min(lst)
        wins = sum(1 for r, _ in lst if r > 1)
        print(f"{op:<8} vs {t:<8}: best {best[0]:.1f}x ({best[1]}), "
              f"worst {worst[0]:.1f}x ({worst[1]}), wins {wins}/{len(lst)}")

    # Fig 10c: recovery vs build.
    rec = {}
    for r in rows:
        if r["fig"] == "10c":
            rec[(r["tree"], r["op"], r["n"])] = r["val"]
    print("\n== Fig 10c: build/recovery speedup ==")
    for (tree, op, n), v in sorted(rec.items()):
        if op == "build" and (tree, "recovery", n) in rec:
            print(f"{tree:<8} n={n:<8}: build {v:.3f}s, recovery "
                  f"{rec[(tree, 'recovery', n)]:.3f}s "
                  f"({v / rec[(tree, 'recovery', n)]:.1f}x faster)")

    # Fig 10b.
    print("\n== Fig 10b: memory ==")
    for r in rows:
        if r["fig"] == "10b":
            print(f"{r['tree']:<8}: PM {r['pm']:8.2f} MB  DRAM {r['dram']:8.2f} MB")

    # Fig 10d.
    print("\n== Fig 10d: HART MIOPS by threads ==")
    for r in rows:
        if r["fig"] == "10d":
            print(f"threads={r['threads']:<3} {r['op']:<8} {r['val']:8.3f} MIOPS")


def summarize_json(path):
    """Summarise one BENCH_*.json report's observability fields."""
    with open(path) as f:
        rep = json.load(f)
    print(f"== {path} ==")
    if "overhead_pct" in rep:  # BENCH_obs.json
        for key in sorted(rep["overhead_pct"]):
            print(f"  metrics-on overhead {key:<10}: {rep['overhead_pct'][key]:+.2f}%")
        if "prom_ops_get" in rep:
            print(f"  prometheus scrape: hart_ops_get={rep['prom_ops_get']} "
                  f"get_p99={rep.get('prom_get_p99_ns', 0):.0f}ns")
    m = rep.get("metrics")
    if not m:
        print("  (no metrics snapshot embedded)")
        return
    counters = m.get("counters", {})
    headline = [k for k in ("ops.get", "ops.put", "ops.insert", "ops.update",
                            "ops.delete", "ops.scan", "ops.put_batch",
                            "read.seq_retries", "read.locked_fallbacks",
                            "dir.entries", "dir.splits", "dir.merges",
                            "alloc.steals", "pm.persists", "pm.syncs")
                if counters.get(k)]
    for k in headline:
        print(f"  {k:<22} {counters[k]}")
    for name in sorted(m.get("hists", {})):
        h = m["hists"][name]
        print(f"  {name + ' (ns)':<22} n={h['count']} mean={h['mean_ns']:.0f} "
              f"p50={h['p50_ns']} p95={h['p95_ns']} p99={h['p99_ns']} max={h['max_ns']}")
    events = m.get("events", [])
    if events:
        kinds = defaultdict(int)
        for ev in events:
            kinds[ev["kind"]] += 1
        summary = ", ".join(f"{k}×{n}" for k, n in sorted(kinds.items()))
        print(f"  events: {len(events)} ({summary})")


if __name__ == "__main__":
    args = sys.argv[1:] or ["results_full.txt"]
    json_args = [a for a in args if a.endswith(".json")]
    for p in json_args:
        summarize_json(p)
    for p in args:
        if p not in json_args:
            main(p)
