#!/usr/bin/env python3
"""Summarise hartbench output (results_full.txt) into the shape checks
EXPERIMENTS.md reports: per-figure winners and HART-vs-baseline ratios.

Usage: python3 scripts/summarize_results.py results_full.txt
"""
import re
import sys
from collections import defaultdict


def parse(path):
    rows = []
    fig = None
    mode = None
    for line in open(path):
        m = re.match(r"== Figure (\S+) ==", line)
        if m:
            fig = m.group(1)
            mode = None
            continue
        if fig is None or not line.strip():
            continue
        if line.startswith("workload"):
            mode = "us" if "us/op" in line else (
                "mem" if "PM MB" in line else (
                    "miops" if "MIOPS" in line else "total"))
            continue
        parts = line.split()
        if not parts:
            continue
        try:
            if mode == "us":
                rows.append(dict(fig=fig, wl=parts[0], tree=parts[1], op=parts[2],
                                 lat=parts[3], val=float(parts[4])))
            elif mode == "total":
                rows.append(dict(fig=fig, wl=parts[0], tree=parts[1], op=parts[2],
                                 lat=parts[3], n=int(parts[4]), val=float(parts[5])))
            elif mode == "mem":
                rows.append(dict(fig=fig, wl=parts[0], tree=parts[1],
                                 pm=float(parts[2]), dram=float(parts[3])))
            elif mode == "miops":
                rows.append(dict(fig=fig, wl=parts[0], op=parts[1], lat=parts[2],
                                 threads=int(parts[3]), val=float(parts[4])))
        except (ValueError, IndexError):
            pass
    return rows


def main(path):
    rows = parse(path)
    # Figs 4-7 + 9: HART ratio vs each baseline per cell.
    cells = defaultdict(dict)
    for r in rows:
        if r["fig"][0] in "4567" or r["fig"][0] == "9":
            cells[(r["fig"], r["wl"], r["lat"], r.get("op"))][r["tree"]] = r["val"]
    byop = defaultdict(list)
    for (fig, wl, lat, op), trees in sorted(cells.items()):
        if "HART" not in trees:
            continue
        h = trees["HART"]
        for t, v in trees.items():
            if t in ("HART", "HART-scan"):
                continue
            byop[(op or fig, t)].append((v / h, f"{wl}/{lat}"))
    print("== HART speedups (ratio = baseline / HART; >1 means HART wins) ==")
    for (op, t), lst in sorted(byop.items()):
        best = max(lst)
        worst = min(lst)
        wins = sum(1 for r, _ in lst if r > 1)
        print(f"{op:<8} vs {t:<8}: best {best[0]:.1f}x ({best[1]}), "
              f"worst {worst[0]:.1f}x ({worst[1]}), wins {wins}/{len(lst)}")

    # Fig 10c: recovery vs build.
    rec = {}
    for r in rows:
        if r["fig"] == "10c":
            rec[(r["tree"], r["op"], r["n"])] = r["val"]
    print("\n== Fig 10c: build/recovery speedup ==")
    for (tree, op, n), v in sorted(rec.items()):
        if op == "build" and (tree, "recovery", n) in rec:
            print(f"{tree:<8} n={n:<8}: build {v:.3f}s, recovery "
                  f"{rec[(tree, 'recovery', n)]:.3f}s "
                  f"({v / rec[(tree, 'recovery', n)]:.1f}x faster)")

    # Fig 10b.
    print("\n== Fig 10b: memory ==")
    for r in rows:
        if r["fig"] == "10b":
            print(f"{r['tree']:<8}: PM {r['pm']:8.2f} MB  DRAM {r['dram']:8.2f} MB")

    # Fig 10d.
    print("\n== Fig 10d: HART MIOPS by threads ==")
    for r in rows:
        if r["fig"] == "10d":
            print(f"threads={r['threads']:<3} {r['op']:<8} {r['val']:8.3f} MIOPS")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "results_full.txt")
