#!/bin/sh
# benchdiff.sh OLD.json NEW.json [threshold-pct]
#
# Compares two path-comparison reports (BENCH_readpath.json,
# BENCH_writepath.json, BENCH_recovery.json, BENCH_restart.json,
# BENCH_skew.json, BENCH_obs.json or BENCH_wire.json — all
# carry a results[] array keyed by mode/op/threads with ns_per_op) and
# flags every cell whose ns_per_op
# regressed by more than the threshold (default 10%). Exits non-zero if
# any cell regressed, so CI can gate on it:
#
#   go run ./cmd/hartbench -fig writepath -writepath-out /tmp/new.json
#   scripts/benchdiff.sh BENCH_writepath.json /tmp/new.json
set -eu

if [ $# -lt 2 ]; then
    echo "usage: $0 old.json new.json [threshold-pct]" >&2
    exit 2
fi

OLD=$1 NEW=$2 PCT=${3:-10} python3 - <<'EOF'
import json, os, sys

pct = float(os.environ["PCT"])
with open(os.environ["OLD"]) as f:
    old = json.load(f)
with open(os.environ["NEW"]) as f:
    new = json.load(f)

def cells(rep):
    out = {}
    for r in rep.get("results", []):
        out[(r.get("mode", ""), r["op"], r["threads"])] = r["ns_per_op"]
    return out

before, after = cells(old), cells(new)
regressed = 0
for key in sorted(before):
    mode, op, threads = key
    if key not in after:
        print(f"MISSING  {mode:8s} {op:12s} t{threads}: not in new report")
        regressed += 1
        continue
    b, a = before[key], after[key]
    delta = (a - b) / b * 100
    flag = "ok"
    if delta > pct:
        flag = "REGRESSED"
        regressed += 1
    print(f"{flag:9s} {mode:8s} {op:12s} t{threads}: {b:9.1f} -> {a:9.1f} ns/op ({delta:+.1f}%)")
for key in sorted(set(after) - set(before)):
    mode, op, threads = key
    print(f"new      {mode:8s} {op:12s} t{threads}: {after[key]:9.1f} ns/op")

if regressed:
    print(f"\n{regressed} cell(s) regressed more than {pct:.0f}%")
    sys.exit(1)
print(f"\nno regressions beyond {pct:.0f}%")
EOF
