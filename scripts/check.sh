#!/bin/sh
# Tier-1+ gate: everything CI (and a reviewer) needs to trust a change.
# Build + vet + the full test suite, then the race detector over the
# packages with lock-free/concurrent paths (core's optimistic reads,
# hashdir's COW snapshots, epalloc's atomic stats ranges).
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race -count=1 ./internal/core/ ./internal/hashdir/ ./internal/epalloc/

# Differential crash-consistency model checker: the deterministic quick
# suite (every persist boundary of fixed + seeded histories), then a short
# fuzz smoke over the byte-string history decoder.
go test -count=1 ./internal/modelcheck/
go test -run='^$' -fuzz=FuzzModelCheck -fuzztime=10s ./internal/modelcheck/

# Write-path comparison harness, short and under the race detector: the
# striped-vs-legacy benchmarks drive Put/PutBatch from parallel workers
# over the striped allocator and micro-log pool, and the zero-alloc
# assertions pin the Get/Put allocation-free claims.
go test -race -count=1 -run 'WritePath' ./internal/bench/

# Recovery paths under the race detector: mode-equivalence (legacy vs
# pipelined vs lazy), crash-equivalence of recovery stats, lazy
# first-touch/drain races, Rebuild visibility, the parallel stripe
# iterators — plus the recovery benchmark harness at toy scale, which
# end-to-end opens the same image under every mode.
go test -race -count=1 -run 'Recovery|Rebuild|Lazy' ./internal/core/
go test -race -count=1 -run 'Iterate' ./internal/epalloc/
go test -race -count=1 -run 'RunRecoverySmoke' ./internal/bench/

# Durable file backend: the pmem file/mmap/atomic-write suites, the
# superblock geometry and clean-flag lifecycle, the public Open/Close
# round trip (including the separate-process survival test), the
# crash-image-through-a-file model-check sweep, and the restart
# benchmark harness at toy scale — all under the race detector.
# scripts/benchdiff.sh gates BENCH_restart.json like the other figures.
go test -race -count=1 -run 'File|WriteFileAtomic' ./internal/pmem/
go test -race -count=1 -run 'Open|CleanFlag|Close' ./internal/core/
go test -race -count=1 -run 'Open|Restore|Helper' .
go test -race -count=1 -run 'FileReattach' ./internal/modelcheck/
go test -race -count=1 -run 'RunRestartSmoke' ./internal/bench/

# Elastic directory: the split/merge boundary matrix (min/max depth,
# uneven siblings, slot exhaustion, the reopen matrix across every
# recovery mode) and concurrent split-vs-PutBatch/Scan churn under the
# race detector, then the crash-mid-split/mid-merge model-check sweeps
# (seeded histories plus the fixed split→merge trace, including crash
# during recovery of a half-split directory) and the skew benchmark
# harness at toy scale. scripts/benchdiff.sh gates BENCH_skew.json.
go test -race -count=1 -run 'Elastic|SplitsRoute|VariableDepth' ./internal/core/ ./internal/hashdir/
go test -count=1 -run 'ModelCheckElastic' ./internal/modelcheck/
go test -race -count=1 -run 'RunSkewSmoke' ./internal/bench/

# Observability: the obs package's lock-free counters, histograms and
# event ring under the race detector; the zero-alloc assertions pinning
# the disabled-metrics read path; Stats()/Metrics() hammered against
# concurrent writers; and the metrics-overhead benchmark harness at toy
# scale, which includes a live Prometheus scrape of the instrumented
# store. scripts/benchdiff.sh gates BENCH_obs.json.
go test -race -count=1 ./internal/obs/
go test -count=1 -run 'TestMetricsZeroAllocDisabledGet|TestWritePathZeroAlloc' ./internal/core/ ./internal/bench/
go test -race -count=1 -run 'TestMetrics|TestStatsMetricsRace' ./internal/core/
go test -race -count=1 -run 'RunObsSmoke|LiveSnapshot' ./internal/bench/

# Network service layer: the wire codec suite plus a short fuzz smoke
# over the frame/request/response decoders (hostile lengths, counts and
# truncations must error, never panic or over-allocate); the server's
# pipelining/coalescing/shutdown-drain suite; the client package
# end-to-end (including the 8-client durability battery and ScanAll
# paging); the daemon's process-level battery (SIGTERM clean flag,
# SIGKILL mid-traffic zero acked-write loss); hartkv's close-on-signal
# tests; and the wire soak harness at toy scale — all under the race
# detector. scripts/benchdiff.sh gates BENCH_wire.json.
go test -race -count=1 ./internal/wire/ ./internal/server/ ./client/
go test -run='^$' -fuzz=FuzzWireDecode -fuzztime=10s ./internal/wire/
go test -race -count=1 ./cmd/hartd/ ./cmd/hartkv/
go test -race -count=1 -run 'RunWireSmoke|ActiveCloser' ./internal/bench/
