// Benchmarks mirroring the paper's figures, one testing.B target per
// table/figure. These are the quick, representative versions (Random
// workload, one latency point per figure); the full grids — every
// workload × latency × tree, exactly as plotted — are produced by
// cmd/hartbench.
package hart_test

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/casl-sdsu/hart/internal/bench"
	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/kv"
	"github.com/casl-sdsu/hart/internal/latency"
	"github.com/casl-sdsu/hart/internal/workload"
)

// benchLatency keeps testing.B runs fast and deterministic: penalties are
// accounted, not spun, so ns/op excludes them — cmd/hartbench reports the
// latency-inflated figures.
const benchMode = latency.ModeAccount

// newTree builds one tree sized for n records.
func newTree(b *testing.B, name string, n int) kv.Index {
	b.Helper()
	ix, err := bench.NewIndex(name, latency.Config300x300(), benchMode, n)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

// benchKeys produces n distinct Random-workload keys.
func benchKeys(n int) [][]byte { return workload.Random(n, 42) }

var benchVal = []byte("12345678")

// BenchmarkFig4Insert measures insertion across all four trees (Fig. 4).
func BenchmarkFig4Insert(b *testing.B) {
	for _, tree := range bench.TreeNames {
		b.Run(tree, func(b *testing.B) {
			keys := benchKeys(b.N)
			ix := newTree(b, tree, b.N)
			defer ix.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ix.Put(keys[i], benchVal); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5Search measures search on a 100k-record store (Fig. 5).
func BenchmarkFig5Search(b *testing.B) {
	const n = 100000
	keys := benchKeys(n)
	for _, tree := range bench.TreeNames {
		b.Run(tree, func(b *testing.B) {
			ix := newTree(b, tree, n)
			defer ix.Close()
			for _, k := range keys {
				if err := ix.Put(k, benchVal); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := ix.Get(keys[i%n]); !ok {
					b.Fatal("miss")
				}
			}
		})
	}
}

// BenchmarkFig6Update measures value updates (Fig. 6).
func BenchmarkFig6Update(b *testing.B) {
	const n = 100000
	keys := benchKeys(n)
	for _, tree := range bench.TreeNames {
		b.Run(tree, func(b *testing.B) {
			ix := newTree(b, tree, n)
			defer ix.Close()
			for _, k := range keys {
				if err := ix.Put(k, benchVal); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ix.Update(keys[i%n], benchVal); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7Delete measures deletion (Fig. 7); records are restored
// outside the timer so every timed op is a real delete.
func BenchmarkFig7Delete(b *testing.B) {
	for _, tree := range bench.TreeNames {
		b.Run(tree, func(b *testing.B) {
			keys := benchKeys(b.N)
			ix := newTree(b, tree, b.N)
			defer ix.Close()
			for _, k := range keys {
				if err := ix.Put(k, benchVal); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ix.Delete(keys[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Scaling measures insertion at growing record counts; the
// paper's Fig. 8 plots total time, which is b.N * ns/op here.
func BenchmarkFig8Scaling(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		for _, tree := range []string{"HART", "WOART"} {
			b.Run(fmt.Sprintf("%s/n=%d", tree, n), func(b *testing.B) {
				keys := benchKeys(n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					ix := newTree(b, tree, n)
					b.StartTimer()
					for _, k := range keys {
						if err := ix.Put(k, benchVal); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					ix.Close()
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkFig9Mixed measures the three YCSB-style mixes on HART (Fig. 9).
func BenchmarkFig9Mixed(b *testing.B) {
	const n = 50000
	pre := benchKeys(n)
	for _, mix := range workload.Mixes() {
		b.Run(mix.Name, func(b *testing.B) {
			fresh := workload.Random(b.N+n, 77)[n:]
			ops := mix.Generate(b.N, pre, fresh, 8, 5)
			ix := newTree(b, "HART", n+b.N)
			defer ix.Close()
			for _, k := range pre {
				if err := ix.Put(k, benchVal); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for _, op := range ops {
				switch op.Kind {
				case workload.OpInsert:
					if err := ix.Put(op.Key, op.Value); err != nil {
						b.Fatal(err)
					}
				case workload.OpSearch:
					ix.Get(op.Key)
				case workload.OpUpdate:
					if err := ix.Update(op.Key, op.Value); err != nil {
						b.Fatal(err)
					}
				case workload.OpDelete:
					if err := ix.Delete(op.Key); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig10aRange measures range queries: per-key search for the
// ART-based trees (the paper's method), leaf-chain scan for FPTree, and
// HART's native ordered scan as the design extension.
func BenchmarkFig10aRange(b *testing.B) {
	const n = 100000
	keys := workload.Sequential(n)
	build := func(b *testing.B, tree string) kv.Index {
		ix := newTree(b, tree, n)
		for _, k := range keys {
			if err := ix.Put(k, benchVal); err != nil {
				b.Fatal(err)
			}
		}
		return ix
	}
	for _, tree := range []string{"HART", "WOART", "ART+CoW"} {
		b.Run(tree+"/per-key", func(b *testing.B) {
			ix := build(b, tree)
			defer ix.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Get(keys[i%n])
			}
		})
	}
	for _, tree := range []string{"FPTree", "HART"} {
		b.Run(tree+"/scan", func(b *testing.B) {
			ix := build(b, tree)
			defer ix.Close()
			b.ResetTimer()
			got := 0
			for got < b.N {
				ix.Scan(keys[0], nil, func(k, v []byte) bool {
					got++
					return got < b.N
				})
			}
		})
	}
}

// BenchmarkFig10cRecovery measures HART and FPTree recovery (Fig. 10c):
// each iteration rebuilds all volatile state from PM.
func BenchmarkFig10cRecovery(b *testing.B) {
	const n = 50000
	keys := benchKeys(n)
	for _, tree := range []string{"HART", "FPTree"} {
		b.Run(tree, func(b *testing.B) {
			ix := newTree(b, tree, n)
			defer ix.Close()
			for _, k := range keys {
				if err := ix.Put(k, benchVal); err != nil {
					b.Fatal(err)
				}
			}
			rec := ix.(kv.Recoverable)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rec.Rebuild(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10dScalability measures HART MIOPS under concurrent
// searchers (Fig. 10d); RunParallel scales workers with GOMAXPROCS.
func BenchmarkFig10dScalability(b *testing.B) {
	const n = 100000
	keys := benchKeys(n)
	for _, op := range []string{"search", "insert"} {
		b.Run(op, func(b *testing.B) {
			ix := newTree(b, "HART", n+b.N)
			defer ix.Close()
			for _, k := range keys {
				if err := ix.Put(k, benchVal); err != nil {
					b.Fatal(err)
				}
			}
			var ctr atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(ctr.Add(1)) * 1000003
				for pb.Next() {
					i++
					switch op {
					case "search":
						ix.Get(keys[i%n])
					case "insert":
						ix.Put([]byte(fmt.Sprintf("ins%02d-%09d", i%89, i)), benchVal)
					}
				}
			})
		})
	}
}

// BenchmarkReadPath measures the lock-free read path against the
// Options.LockedReads baseline (the paper's original two-lock reads):
// parallel Get, zero-alloc GetInto and a 95/5 read/write mix at
// GOMAXPROCS 1, 4 and 8. cmd/hartbench -fig readpath runs the same
// comparison standalone and records it in BENCH_readpath.json.
func BenchmarkReadPath(b *testing.B) {
	const n = 1 << 16
	keys := benchKeys(n)
	load := func(b *testing.B, locked bool) *core.HART {
		b.Helper()
		h, err := core.New(core.Options{
			ArenaSize:       256 << 20,
			UnloggedUpdates: true,
			LockedReads:     locked,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range keys {
			if err := h.Put(k, benchVal); err != nil {
				b.Fatal(err)
			}
		}
		return h
	}
	for _, mode := range []string{"locked", "lockfree"} {
		h := load(b, mode == "locked")
		ops := []string{"Get", "GetInto", "Mixed95-5"}
		if mode == "locked" {
			ops = []string{"Get", "Mixed95-5"}
		}
		for _, procs := range []int{1, 4, 8} {
			for _, op := range ops {
				b.Run(fmt.Sprintf("%s/%s/procs=%d", mode, op, procs), func(b *testing.B) {
					defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
					var ctr atomic.Int64
					b.ReportAllocs()
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						i := int(ctr.Add(1)) * 1000003
						buf := make([]byte, 0, 16)
						for pb.Next() {
							i++
							k := keys[i&(n-1)]
							switch op {
							case "Get":
								if _, ok := h.Get(k); !ok {
									b.Fatal("miss")
								}
							case "GetInto":
								if _, ok := h.GetInto(k, buf); !ok {
									b.Fatal("miss")
								}
							case "Mixed95-5":
								if i%20 == 0 {
									if err := h.Put(k, benchVal); err != nil {
										b.Fatal(err)
									}
								} else if _, ok := h.GetInto(k, buf); !ok {
									b.Fatal("miss")
								}
							}
						}
					})
				})
			}
		}
		h.Close()
	}
}
