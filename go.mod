module github.com/casl-sdsu/hart

go 1.23
