// Package hart is the public facade of this repository's reproduction of
// "HART: A Concurrent Hash-Assisted Radix Tree for DRAM-PM Hybrid Memory
// Systems" (Pan, Xie, Song — IEEE IPDPS 2019).
//
// A DB is a concurrent persistent key-value index: a DRAM hash directory
// routes the first few key bytes to one Adaptive Radix Tree per hash key;
// ART internal nodes stay in DRAM while leaves and values live on
// simulated persistent memory, committed through EPallocator's chunk
// bitmaps so that crashes can neither tear an operation nor leak PM.
//
// Quick start — a durable store backed by a file:
//
//	db, err := hart.Open("store.hart", hart.Options{})
//	...
//	db.Put([]byte("key"), []byte("value"))
//	v, ok := db.Get([]byte("key"))
//	buf := make([]byte, 0, hart.MaxValueLen)
//	v, ok = db.GetInto([]byte("key"), buf) // zero-alloc lookup
//	db.Scan([]byte("a"), []byte("b"), func(k, v []byte) bool { ... })
//	db.Close()
//
// Open creates the file on first use and re-attaches on every later run,
// reading the store's geometry from its persisted superblock — no save
// step, no remembering the options the store was created with. New builds
// the same index over a purely in-memory arena for tests and benchmarks.
//
// Lookups (Get, GetInto, Contains) are lock-free: they read an atomic
// snapshot of the hash directory and of the target ART and validate the
// persistent-memory reads against a per-ART seqlock, so readers never
// block writers and scale with no shared-lock traffic. GetInto reuses
// the caller's buffer and performs no heap allocation; Contains decides
// presence without copying the value at all.
//
// Durability round trip (the simulated-PM equivalent of remapping a DAX
// file after a restart):
//
//	img, _ := db.CrashImage()       // what PM holds if power fails now
//	db2, _ := hart.Restore(img, hart.Options{CrashSimulation: true})
//
// See DESIGN.md for the full architecture and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package hart

import (
	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/latency"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// Key and value limits (paper Section III.A.5).
const (
	// MaxKeyLen is the maximum key length in bytes.
	MaxKeyLen = core.MaxKeyLen
	// MaxValueLen is the maximum value length in bytes.
	MaxValueLen = core.MaxValueLen
)

// Errors re-exported from the core implementation.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = core.ErrNotFound
	// ErrKeyTooLong reports a key above MaxKeyLen bytes.
	ErrKeyTooLong = core.ErrKeyTooLong
	// ErrValueTooLong reports a value above MaxValueLen bytes.
	ErrValueTooLong = core.ErrValueTooLong
	// ErrGeometryMismatch reports Options naming a HashKeyLen or
	// ValueClasses different from the ones the store was created with.
	ErrGeometryMismatch = core.ErrGeometryMismatch
	// ErrNotFormatted reports an arena or file holding no HART store.
	ErrNotFormatted = core.ErrNotFormatted
	// ErrTruncatedFile reports a backing file shorter than the arena its
	// header describes (torn creation or external truncation).
	ErrTruncatedFile = pmem.ErrTruncatedFile
)

// Options configures a DB.
type Options struct {
	// HashKeyLen is kh, the number of leading key bytes routed by the
	// hash directory (default 2, the paper's setting).
	HashKeyLen int
	// ArenaSize is the simulated PM capacity in bytes (default 64 MiB).
	ArenaSize int64
	// PMWriteNs / PMReadNs enable PM latency emulation when non-zero,
	// e.g. 300/100, 300/300 or 600/300 as in the paper. Penalties are
	// injected by busy-waiting so measured wall time reflects them.
	PMWriteNs, PMReadNs int64
	// CrashSimulation tracks a separate durable view so CrashImage and
	// crash-point injection work (costs memory and write overhead).
	CrashSimulation bool
	// ValueClasses lists value-object sizes in bytes, ascending multiples
	// of 8 (default [8, 16], the paper's two classes). The largest class
	// bounds value length. The table is persisted in the store's
	// superblock: Open and Restore adopt it when this field is left nil
	// and fail with ErrGeometryMismatch when it names a different table.
	ValueClasses []int64
	// LockedReads disables the lock-free read path and restores the
	// paper's original two-lock reads (global directory read lock, then
	// per-ART read lock). It exists as the benchmark baseline for the
	// read-path experiment; leave it unset in normal use.
	LockedReads bool
	// LegacyWritePath disables the striped write path and restores the
	// pre-striping behaviour (single allocator stripe, serialised
	// micro-log pool, per-key batch publication). It exists as the
	// benchmark baseline for the write-path experiment; leave it unset
	// in normal use.
	LegacyWritePath bool
	// RecoveryWorkers parallelises recovery's leaf scan, sweeps and ART
	// rebuild across that many goroutines (0 or 1 = serial).
	RecoveryWorkers int
	// LazyRecovery defers per-shard ART builds out of Restore: the store
	// serves traffic immediately after the scan and consistency sweeps,
	// and each shard's ART is built on first touch or by DrainRecovery
	// (typically started in the background right after Restore).
	LazyRecovery bool
	// LegacyRecovery restores the pre-pipeline serial-scan recovery. It
	// exists as the benchmark baseline for the recovery experiment; leave
	// it unset in normal use.
	LegacyRecovery bool
	// ElasticDirectory enables hot-shard splitting and cold-group merging:
	// a shard whose write heat crosses SplitOps is split into per-byte
	// child ARTs under one-byte-longer directory prefixes, restoring write
	// concurrency under skewed (e.g. zipfian) workloads; groups shrunk
	// below MergeRecords by deletes fold back. The split geometry is
	// persisted in the superblock, so a store reopens with the shape it
	// crashed with regardless of this flag (the flag only gates *new*
	// geometry changes).
	ElasticDirectory bool
	// SplitOps is the per-shard write-op heat threshold that triggers a
	// split (default 4096). Only meaningful with ElasticDirectory.
	SplitOps int
	// MergeRecords is the record-count ceiling below which a delete may
	// merge a cold split group back into its parent (default 48). Only
	// meaningful with ElasticDirectory.
	MergeRecords int
}

// Record is one key-value pair for DB.PutBatch. The alias makes the
// promoted batch methods callable: their signatures name this type.
type Record = core.Record

// DB is a HART index. All methods are safe for concurrent use; writers to
// different ARTs (different leading key bytes) run in parallel. Bulk
// writes should prefer PutBatch, which groups records by ART and pays
// the per-shard costs (write lock, allocator trips, persist barriers,
// copy-on-write republication) once per group instead of once per key.
type DB struct {
	*core.HART
}

// coreOptions translates the public options.
func (o Options) coreOptions() core.Options {
	opts := core.Options{
		HashKeyLen:      o.HashKeyLen,
		ArenaSize:       o.ArenaSize,
		Tracking:        o.CrashSimulation,
		ValueClasses:    o.ValueClasses,
		LockedReads:     o.LockedReads,
		LegacyWritePath: o.LegacyWritePath,
		RecoveryWorkers: o.RecoveryWorkers,
		LazyRecovery:    o.LazyRecovery,
		LegacyRecovery:  o.LegacyRecovery,

		ElasticDirectory: o.ElasticDirectory,
		SplitOps:         o.SplitOps,
		MergeRecords:     o.MergeRecords,
	}
	if o.PMWriteNs > 0 || o.PMReadNs > 0 {
		opts.Latency = latency.Config{
			Mode:        latency.ModeSpin,
			PMWriteNs:   o.PMWriteNs,
			PMReadNs:    o.PMReadNs,
			DRAMReadNs:  100,
			DRAMWriteNs: 15,
		}
		opts.CacheModel = opts.Latency.ReadDeltaNs() > 0
	}
	return opts
}

// New creates an empty DB over a fresh simulated PM arena. The store
// lives in process memory; use Open for one that survives the process.
func New(opts Options) (*DB, error) {
	h, err := core.New(opts.coreOptions())
	if err != nil {
		return nil, err
	}
	return &DB{HART: h}, nil
}

// Open creates or attaches a durable DB backed by the file at path.
//
// A missing or empty file is created with Options.ArenaSize bytes
// (default 64 MiB) and formatted. An existing file is validated (arena
// header, HART superblock) and recovered: interrupted updates are
// completed from their micro-logs and the index is rebuilt from the
// persistent leaves, exactly as after a crash. Geometry options
// (HashKeyLen, ValueClasses) left zero adopt the values persisted in the
// store's superblock; non-zero values must match them
// (ErrGeometryMismatch). A file that is torn, truncated, or not a HART
// store is refused — never silently reformatted.
//
// On Linux the file is mapped MAP_SHARED, so every completed operation
// survives a process crash; Sync (and Close) flush the mapping so a
// machine crash loses at most the writes since the last sync. On other
// platforms a heap buffer is written back atomically on Sync/Close.
// Close marks the shutdown clean in the superblock and releases the
// file; the file's bytes are a valid arena image throughout, so tools
// like hartfsck can read it directly.
func Open(path string, opts Options) (*DB, error) {
	co := opts.coreOptions()
	arena, fresh, err := pmem.OpenFileArena(path, co.ArenaConfig())
	if err != nil {
		return nil, err
	}
	var h *core.HART
	if fresh {
		h, err = core.NewOnArena(arena, co)
	} else {
		h, err = core.Open(arena, co)
	}
	if err != nil {
		arena.Close()
		return nil, err
	}
	return &DB{HART: h}, nil
}

// Restore attaches to a durable PM image (from CrashImage, or the bytes
// of an Open file) and runs recovery: interrupted updates are completed
// from their micro-logs and the hash directory plus all ART internal
// nodes are rebuilt from the persistent leaves (paper Algorithm 7).
// Geometry options follow the same superblock adopt-or-match rule as
// Open.
func Restore(image []byte, opts Options) (*DB, error) {
	co := opts.coreOptions()
	arena, err := pmem.Attach(image, pmem.Config{
		Size:     int64(len(image)),
		Tracking: co.Tracking,
		Latency:  co.Latency,
	})
	if err != nil {
		return nil, err
	}
	h, err := core.Open(arena, co)
	if err != nil {
		return nil, err
	}
	return &DB{HART: h}, nil
}

// CrashImage returns the bytes persistent memory would hold if power
// failed right now: everything persisted survives, everything else is
// gone. Requires Options.CrashSimulation.
func (db *DB) CrashImage() ([]byte, error) {
	return db.Arena().DurableImage()
}
