package hart

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestOpenRestartRoundTrip drives a Put/Delete mix into a file-backed
// store, closes it, reopens the file and checks full content equivalence
// against an in-memory reference map — under both eager and lazy
// recovery.
func TestOpenRestartRoundTrip(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		name := "eager"
		if lazy {
			name = "lazy"
		}
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "store.hart")
			db, err := Open(path, Options{ArenaSize: 8 << 20})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			ref := map[string]string{}
			for i := 0; i < 5000; i++ {
				key := fmt.Sprintf("k%05d", rng.Intn(2000))
				if rng.Intn(4) == 0 {
					err := db.Delete([]byte(key))
					if _, live := ref[key]; live {
						if err != nil {
							t.Fatalf("delete %s: %v", key, err)
						}
						delete(ref, key)
					} else if !errors.Is(err, ErrNotFound) {
						t.Fatalf("delete of missing %s: %v", key, err)
					}
					continue
				}
				val := fmt.Sprintf("v%d", rng.Intn(1 << 20))
				if err := db.Put([]byte(key), []byte(val)); err != nil {
					t.Fatalf("put %s: %v", key, err)
				}
				ref[key] = val
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2, err := Open(path, Options{LazyRecovery: lazy, RecoveryWorkers: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			if !db2.LastRecoveryStats().WasClean {
				t.Fatal("closed store not reported clean on reopen")
			}
			if db2.Len() != len(ref) {
				t.Fatalf("reopened Len = %d, reference %d", db2.Len(), len(ref))
			}
			for key, val := range ref {
				if v, ok := db2.Get([]byte(key)); !ok || string(v) != val {
					t.Fatalf("reopened Get(%s) = %q, %v; want %q", key, v, ok, val)
				}
			}
			got := 0
			db2.Scan(nil, nil, func(k, v []byte) bool {
				if want, ok := ref[string(k)]; !ok || want != string(v) {
					t.Fatalf("scan surfaced (%q, %q), reference %q", k, v, want)
				}
				got++
				return true
			})
			if got != len(ref) {
				t.Fatalf("scan surfaced %d records, reference %d", got, len(ref))
			}
			if err := db2.Check(); err != nil {
				t.Fatalf("fsck after restart: %v", err)
			}
		})
	}
}

// TestOpenSurvivesProcessExit proves the acceptance criterion end to
// end: a child *process* writes records through hart.Open and exits
// without any save step (and without Close, the harder variant); the
// parent reopens the same file and reads everything back.
func TestOpenSurvivesProcessExit(t *testing.T) {
	dir := t.TempDir()
	for _, clean := range []bool{true, false} {
		name := "clean-close"
		if !clean {
			name = "no-close"
		}
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".hart")
			cmd := exec.Command(os.Args[0], "-test.run=TestHelperWriteStore$")
			cmd.Env = append(os.Environ(),
				"HART_TEST_WRITE_STORE="+path,
				fmt.Sprintf("HART_TEST_CLEAN_CLOSE=%v", clean))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("child writer failed: %v\n%s", err, out)
			}

			db, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if got := db.LastRecoveryStats().WasClean; got != clean {
				t.Fatalf("WasClean = %v after a %s child", got, name)
			}
			if db.Len() != 500 {
				t.Fatalf("reopened Len = %d, want 500 (data written by another process lost)", db.Len())
			}
			for i := 0; i < 500; i++ {
				key := []byte(fmt.Sprintf("proc%04d", i))
				want := []byte(fmt.Sprintf("val%04d", i))
				if v, ok := db.Get(key); !ok || !bytes.Equal(v, want) {
					t.Fatalf("Get(%s) = %q, %v; want %q", key, v, ok, want)
				}
			}
			if err := db.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHelperWriteStore is not a real test: it is the child-process body
// of TestOpenSurvivesProcessExit, active only under its environment
// variables. It writes 500 records through hart.Open and exits — with a
// clean Close or a bare os.Exit, per HART_TEST_CLEAN_CLOSE.
func TestHelperWriteStore(t *testing.T) {
	path := os.Getenv("HART_TEST_WRITE_STORE")
	if path == "" {
		t.Skip("helper process body; run via TestOpenSurvivesProcessExit")
	}
	db, err := Open(path, Options{ArenaSize: 8 << 20})
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("proc%04d", i)), []byte(fmt.Sprintf("val%04d", i))); err != nil {
			t.Fatalf("child put: %v", err)
		}
	}
	if os.Getenv("HART_TEST_CLEAN_CLOSE") == "true" {
		if err := db.Close(); err != nil {
			t.Fatalf("child close: %v", err)
		}
		return
	}
	// Simulated process crash: exit with the mapping unsynced and the
	// store still marked dirty. On the mmap backend the page cache holds
	// every completed Put; this is exactly what the parent asserts.
	os.Exit(0)
}

// TestOpenRefusesDamagedFiles verifies hart.Open surfaces errors for
// files that are not healthy HART stores instead of clobbering them.
func TestOpenRefusesDamagedFiles(t *testing.T) {
	dir := t.TempDir()

	// Build one healthy store to mutilate.
	path := filepath.Join(dir, "store.hart")
	db, err := Open(path, Options{ArenaSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	torn := filepath.Join(dir, "torn.hart")
	if err := os.WriteFile(torn, img[:len(img)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(torn, Options{}); !errors.Is(err, ErrTruncatedFile) {
		t.Fatalf("torn file: err = %v, want ErrTruncatedFile", err)
	}

	short := filepath.Join(dir, "short.hart")
	if err := os.WriteFile(short, []byte("tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short, Options{}); !errors.Is(err, ErrTruncatedFile) {
		t.Fatalf("short file: err = %v, want ErrTruncatedFile", err)
	}

	// Geometry conflict against the healthy store.
	if _, err := Open(path, Options{HashKeyLen: 7}); !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("geometry conflict: err = %v, want ErrGeometryMismatch", err)
	}

	// All refusals left the original file untouched.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, after) {
		t.Fatal("a refused Open modified the store file")
	}
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, ok := db2.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("store damaged by refused opens: Get(k) = %q, %v", v, ok)
	}
}

// TestRestoreAdoptsGeometry verifies the in-memory Restore path gets the
// same superblock adopt-or-match behaviour as Open.
func TestRestoreAdoptsGeometry(t *testing.T) {
	db, err := New(Options{
		HashKeyLen:      3,
		ValueClasses:    []int64{8, 32},
		ArenaSize:       2 << 20,
		CrashSimulation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("key"), []byte("value-that-needs-32")); err != nil {
		t.Fatal(err)
	}
	img, err := db.CrashImage()
	if err != nil {
		t.Fatal(err)
	}

	// Zero options adopt the persisted geometry.
	db2, err := Restore(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := db2.Get([]byte("key")); !ok || string(v) != "value-that-needs-32" {
		t.Fatalf("restored Get = %q, %v", v, ok)
	}

	// Conflicting options are refused.
	if _, err := Restore(img, Options{ValueClasses: []int64{8, 16}}); !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("Restore with wrong table: err = %v, want ErrGeometryMismatch", err)
	}
}
