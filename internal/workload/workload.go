// Package workload generates the key sets and operation streams of the
// paper's evaluation (Section IV.A):
//
//   - Dictionary: 466,544 distinct English-like words. The paper uses the
//     dwyl/english-words file; offline we synthesise a deterministic
//     corpus of the same cardinality with a syllable grammar, emitted in
//     alphabetical order like a dictionary file (see DESIGN.md for the
//     substitution rationale).
//   - Sequential: consecutive fixed-width strings over the paper's
//     62-character alphabet (A-Z, a-z, 0-9).
//   - Random: uniformly random variable-length strings of 5-16 bytes over
//     the same alphabet, de-duplicated, from a seeded PRNG.
//   - Mixed: YCSB-style operation mixes with the paper's three profiles
//     (Read-Intensive, Read-Modified-Write, Write-Intensive) under a
//     Uniform request distribution.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Alphabet is the paper's key alphabet: "each character in a key is chosen
// from the 52 alphabetic characters and 10 Arabic numerals".
const Alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

// DictionarySize is the cardinality of the paper's Dictionary workload
// ("a collection of 466,544 different English words").
const DictionarySize = 466544

// syllables is the sorted building-block inventory of the synthetic
// dictionary. 78 syllables give 78^2 + 78^3 + ... distinct words, far more
// than DictionarySize.
var syllables = func() []string {
	onsets := []string{"b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "l", "m", "n", "p", "pl", "pr", "qu", "r", "s", "sh", "sl", "st", "t", "th", "tr", "v", "w", "y", "z"}
	vowels := []string{"a", "e", "i", "o", "u", "ou", "ea"}
	var out []string
	for i, o := range onsets {
		for j, v := range vowels {
			// A sparse deterministic subset keeps the inventory at 78.
			if (i*7+j)%3 == 0 {
				out = append(out, o+v)
			}
		}
	}
	sort.Strings(out)
	return out
}()

// Dictionary returns n distinct English-like words in alphabetical order
// (matching a dictionary file read top to bottom). Words are 4-24 bytes.
// Dictionary(DictionarySize) reproduces the paper's corpus size.
func Dictionary(n int) [][]byte {
	out := make([][]byte, 0, n)
	s := syllables
	// Enumerate words by syllable count; within one count the enumeration
	// is lexicographic because the syllable inventory is sorted and all
	// syllables share no prefix relationships that would break ordering at
	// equal word lengths. A final sort guarantees dictionary order.
	var emit func(prefix string, depth int)
	total := 0
	need := func() bool { return total < n }
	for count := 2; count <= 4 && need(); count++ {
		emit = func(prefix string, depth int) {
			if !need() {
				return
			}
			if depth == 0 {
				out = append(out, []byte(prefix))
				total++
				return
			}
			for _, syl := range s {
				if !need() {
					return
				}
				emit(prefix+syl, depth-1)
			}
		}
		emit("", count)
	}
	sort.Slice(out, func(i, j int) bool { return string(out[i]) < string(out[j]) })
	// Dedupe (concatenations of different syllable splits can collide).
	dedup := out[:0]
	var prev string
	for _, w := range out {
		if string(w) != prev {
			dedup = append(dedup, w)
			prev = string(w)
		}
	}
	out = dedup
	// Colliding splits are rare; top up with numbered variants if short.
	for i := 0; len(out) < n; i++ {
		out = append(out, []byte(fmt.Sprintf("%szz%06d", syllables[i%len(syllables)], i)))
	}
	return out[:n]
}

// sortedAlphabet is Alphabet in byte order, so consecutive Sequential
// keys are also consecutive in byte comparison.
const sortedAlphabet = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

// Sequential returns n consecutive fixed-width strings over the key
// alphabet: "00000000", "00000001", ... — the paper's Sequential trace.
func Sequential(n int) [][]byte {
	const width = 8
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		b := make([]byte, width)
		v := i
		for j := width - 1; j >= 0; j-- {
			b[j] = sortedAlphabet[v%len(sortedAlphabet)]
			v /= len(sortedAlphabet)
		}
		out[i] = b
	}
	return out
}

// Random returns n distinct random strings of 5-16 bytes over Alphabet —
// the paper's Random trace ("random strings with variable sizes from 5 to
// 16 bytes").
func Random(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, 0, n)
	seen := make(map[string]struct{}, n)
	for len(out) < n {
		ln := 5 + rng.Intn(12)
		b := make([]byte, ln)
		for i := range b {
			b[i] = Alphabet[rng.Intn(len(Alphabet))]
		}
		if _, dup := seen[string(b)]; dup {
			continue
		}
		seen[string(b)] = struct{}{}
		out = append(out, b)
	}
	return out
}

// Values returns n deterministic values of the given byte size (1-16).
func Values(n, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		v := make([]byte, size)
		for j := range v {
			v[j] = Alphabet[rng.Intn(len(Alphabet))]
		}
		out[i] = v
	}
	return out
}

// Kind enumerates operation types.
type Kind int

// Operation kinds.
const (
	OpInsert Kind = iota
	OpSearch
	OpUpdate
	OpDelete
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpSearch:
		return "search"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one generated operation.
type Op struct {
	// Kind selects the operation.
	Kind Kind
	// Key is the target key.
	Key []byte
	// Value is set for inserts and updates.
	Value []byte
}

// Mix describes an operation mix; percentages must sum to 100.
type Mix struct {
	// Name labels the mix in reports.
	Name string
	// InsertPct, SearchPct, UpdatePct, DeletePct are the operation shares.
	InsertPct, SearchPct, UpdatePct, DeletePct int
}

// The paper's three mixed workloads (Section IV.C), all under a Uniform
// request distribution.

// ReadIntensive is 10% insertion, 70% search, 10% update, 10% deletion.
func ReadIntensive() Mix {
	return Mix{Name: "Read-Intensive", InsertPct: 10, SearchPct: 70, UpdatePct: 10, DeletePct: 10}
}

// ReadModifiedWrite is 50% search, 50% update.
func ReadModifiedWrite() Mix {
	return Mix{Name: "Read-Modified-Write", SearchPct: 50, UpdatePct: 50}
}

// WriteIntensive is 40% insertion, 20% search, 40% update.
func WriteIntensive() Mix {
	return Mix{Name: "Write-Intensive", InsertPct: 40, SearchPct: 20, UpdatePct: 40}
}

// Mixes returns the three paper mixes in presentation order.
func Mixes() []Mix {
	return []Mix{ReadIntensive(), ReadModifiedWrite(), WriteIntensive()}
}

// Generate produces n operations over a store preloaded with the given
// keys. Searches, updates and deletes pick uniformly among currently live
// keys (YCSB's Uniform request distribution, the one the paper uses);
// inserts draw from fresh, never-loaded keys. valueSize sets
// insert/update payload sizes.
func (m Mix) Generate(n int, preloaded, fresh [][]byte, valueSize int, seed int64) []Op {
	return m.GenerateDist(n, preloaded, fresh, valueSize, seed, Uniform())
}

// Distribution selects which live record a search/update/delete targets.
// The paper's evaluation uses Uniform only; Zipfian is provided as an
// extension for skew studies (hot ARTs stress HART's per-ART locks).
type Distribution struct {
	// Name labels the distribution in reports.
	Name string
	// pick returns an index in [0, n) given the mix's PRNG.
	pick func(rng *rand.Rand, n int) int
}

// Pick draws an index in [0, n) from the distribution. Distributions are
// stateful (they cache spread constants per n) and not safe for
// concurrent use; give each goroutine its own Distribution value.
func (d Distribution) Pick(rng *rand.Rand, n int) int { return d.pick(rng, n) }

// Uniform returns YCSB's uniform request distribution (every live record
// equally likely), the distribution all the paper's mixes use.
func Uniform() Distribution {
	return Distribution{
		Name: "uniform",
		pick: func(rng *rand.Rand, n int) int { return rng.Intn(n) },
	}
}

// Zipfian returns a Zipf-skewed request distribution with exponent s > 1;
// lower indexes are exponentially hotter.
func Zipfian(s float64) Distribution {
	var z *rand.Zipf
	zn := 0
	return Distribution{
		Name: "zipfian",
		pick: func(rng *rand.Rand, n int) int {
			if z == nil || zn != n {
				z = rand.NewZipf(rng, s, 1, uint64(n-1))
				zn = n
			}
			return int(z.Uint64())
		},
	}
}

// ZipfTheta returns the YCSB-style zipfian request distribution with
// skew parameter theta in (0, 1) — the Gray et al. "Quickly generating
// billion-record synthetic databases" generator YCSB popularised, where
// theta = 0.99 is the standard "zipfian" setting. It covers the skew
// range Go's rand.Zipf cannot (rand.NewZipf requires s > 1). Rank 0 is
// the hottest item; popularity decays as 1/rank^theta.
func ZipfTheta(theta float64) Distribution {
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: ZipfTheta skew %v outside (0, 1)", theta))
	}
	// The spread constants depend only on theta and n; cache them per n
	// (benchmarks call pick with a fixed or slowly growing n).
	var (
		zn           int
		zetaN, eta   float64
		alpha        = 1 / (1 - theta)
		zeta2        = 1 + math.Pow(0.5, theta)
		lastZetaArg  int
		lastZetaProg float64
	)
	zeta := func(n int) float64 {
		// Incremental harmonic-power sum: extend the cached partial sum
		// when n only grew, which makes the live-set growth in
		// GenerateDist O(1) amortised per op.
		if n < lastZetaArg {
			lastZetaArg, lastZetaProg = 0, 0
		}
		for i := lastZetaArg + 1; i <= n; i++ {
			lastZetaProg += 1 / math.Pow(float64(i), theta)
		}
		lastZetaArg = n
		return lastZetaProg
	}
	return Distribution{
		Name: "zipfian",
		pick: func(rng *rand.Rand, n int) int {
			if n != zn {
				zetaN = zeta(n)
				eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetaN)
				zn = n
			}
			u := rng.Float64()
			uz := u * zetaN
			switch {
			case uz < 1:
				return 0
			case uz < zeta2:
				return 1
			default:
				r := int(float64(n) * math.Pow(eta*u-eta+1, alpha))
				if r >= n {
					r = n - 1
				}
				return r
			}
		},
	}
}

// GenerateDist is Generate with an explicit request distribution.
func (m Mix) GenerateDist(n int, preloaded, fresh [][]byte, valueSize int, seed int64, dist Distribution) []Op {
	if m.InsertPct+m.SearchPct+m.UpdatePct+m.DeletePct != 100 {
		panic(fmt.Sprintf("workload: mix %q percentages sum to %d",
			m.Name, m.InsertPct+m.SearchPct+m.UpdatePct+m.DeletePct))
	}
	rng := rand.New(rand.NewSource(seed))
	live := make([][]byte, len(preloaded))
	copy(live, preloaded)
	nextFresh := 0
	value := func() []byte {
		v := make([]byte, valueSize)
		for j := range v {
			v[j] = Alphabet[rng.Intn(len(Alphabet))]
		}
		return v
	}
	ops := make([]Op, 0, n)
	for len(ops) < n {
		p := rng.Intn(100)
		switch {
		case p < m.InsertPct:
			if nextFresh >= len(fresh) {
				continue
			}
			k := fresh[nextFresh]
			nextFresh++
			live = append(live, k)
			ops = append(ops, Op{Kind: OpInsert, Key: k, Value: value()})
		case p < m.InsertPct+m.SearchPct:
			if len(live) == 0 {
				continue
			}
			ops = append(ops, Op{Kind: OpSearch, Key: live[dist.pick(rng, len(live))]})
		case p < m.InsertPct+m.SearchPct+m.UpdatePct:
			if len(live) == 0 {
				continue
			}
			ops = append(ops, Op{Kind: OpUpdate, Key: live[dist.pick(rng, len(live))], Value: value()})
		default:
			if len(live) == 0 {
				continue
			}
			i := dist.pick(rng, len(live))
			ops = append(ops, Op{Kind: OpDelete, Key: live[i]})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return ops
}
