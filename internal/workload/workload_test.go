package workload

import (
	"bytes"
	"sort"
	"testing"
)

func TestDictionaryProperties(t *testing.T) {
	const n = 50000
	words := Dictionary(n)
	if len(words) != n {
		t.Fatalf("got %d words", len(words))
	}
	seen := map[string]bool{}
	for _, w := range words {
		if len(w) < 2 || len(w) > 24 {
			t.Fatalf("word %q has length %d", w, len(w))
		}
		if seen[string(w)] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[string(w)] = true
	}
	if !sort.SliceIsSorted(words, func(i, j int) bool { return bytes.Compare(words[i], words[j]) < 0 }) {
		t.Fatal("dictionary not in alphabetical order")
	}
}

func TestDictionaryFullSizeAvailable(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus in -short mode")
	}
	words := Dictionary(DictionarySize)
	if len(words) != DictionarySize {
		t.Fatalf("full corpus = %d words, want %d", len(words), DictionarySize)
	}
	seen := make(map[string]bool, DictionarySize)
	for _, w := range words {
		if seen[string(w)] {
			t.Fatalf("duplicate word %q in full corpus", w)
		}
		seen[string(w)] = true
	}
}

func TestDictionaryDeterministic(t *testing.T) {
	a, b := Dictionary(1000), Dictionary(1000)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("dictionary not deterministic at %d", i)
		}
	}
}

func TestSequentialProperties(t *testing.T) {
	keys := Sequential(10000)
	if len(keys) != 10000 {
		t.Fatalf("got %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("sequential keys not increasing at %d: %q >= %q", i, keys[i-1], keys[i])
		}
	}
	if string(keys[0]) != "00000000" {
		t.Fatalf("first key %q", keys[0])
	}
	for _, k := range keys[:100] {
		for _, c := range k {
			if !bytes.ContainsRune([]byte(Alphabet), rune(c)) {
				t.Fatalf("key %q uses non-alphabet byte", k)
			}
		}
	}
}

func TestRandomProperties(t *testing.T) {
	keys := Random(20000, 42)
	seen := map[string]bool{}
	lens := map[int]int{}
	for _, k := range keys {
		if len(k) < 5 || len(k) > 16 {
			t.Fatalf("key %q has length %d, want 5-16", k, len(k))
		}
		lens[len(k)]++
		if seen[string(k)] {
			t.Fatalf("duplicate random key %q", k)
		}
		seen[string(k)] = true
	}
	// All 12 lengths occur (variable sizes as in the paper).
	for l := 5; l <= 16; l++ {
		if lens[l] == 0 {
			t.Fatalf("no keys of length %d", l)
		}
	}
	// Determinism per seed, divergence across seeds.
	again := Random(100, 42)
	other := Random(100, 43)
	if !bytes.Equal(again[0], Random(100, 42)[0]) {
		t.Fatal("Random not deterministic")
	}
	if bytes.Equal(again[0], other[0]) && bytes.Equal(again[1], other[1]) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestValues(t *testing.T) {
	vs := Values(100, 8, 7)
	for _, v := range vs {
		if len(v) != 8 {
			t.Fatalf("value size %d", len(v))
		}
	}
}

func TestMixesSumTo100(t *testing.T) {
	for _, m := range Mixes() {
		if s := m.InsertPct + m.SearchPct + m.UpdatePct + m.DeletePct; s != 100 {
			t.Fatalf("mix %s sums to %d", m.Name, s)
		}
	}
	if ReadIntensive().SearchPct != 70 || WriteIntensive().InsertPct != 40 || ReadModifiedWrite().UpdatePct != 50 {
		t.Fatal("paper mix ratios wrong")
	}
}

func TestGenerateMixRatios(t *testing.T) {
	pre := Sequential(5000)
	fresh := Random(5000, 1)
	const n = 20000
	ops := ReadIntensive().Generate(n, pre, fresh, 8, 5)
	if len(ops) != n {
		t.Fatalf("generated %d ops", len(ops))
	}
	counts := map[Kind]int{}
	for _, op := range ops {
		counts[op.Kind]++
		switch op.Kind {
		case OpInsert, OpUpdate:
			if len(op.Value) != 8 {
				t.Fatalf("%v op with %d-byte value", op.Kind, len(op.Value))
			}
		}
	}
	within := func(got, wantPct int) bool {
		want := n * wantPct / 100
		slack := n / 50 // ±2%
		return got > want-slack && got < want+slack
	}
	if !within(counts[OpInsert], 10) || !within(counts[OpSearch], 70) ||
		!within(counts[OpUpdate], 10) || !within(counts[OpDelete], 10) {
		t.Fatalf("op distribution off: %v", counts)
	}
}

// TestGenerateMixConsistency replays a generated stream against a map and
// verifies deletes/updates always target live keys and inserts are fresh.
func TestGenerateMixConsistency(t *testing.T) {
	pre := Sequential(1000)
	fresh := Random(2000, 2)
	live := map[string]bool{}
	for _, k := range pre {
		live[string(k)] = true
	}
	for _, op := range ReadIntensive().Generate(10000, pre, fresh, 8, 9) {
		switch op.Kind {
		case OpInsert:
			if live[string(op.Key)] {
				t.Fatalf("insert of live key %q", op.Key)
			}
			live[string(op.Key)] = true
		case OpDelete:
			if !live[string(op.Key)] {
				t.Fatalf("delete of dead key %q", op.Key)
			}
			delete(live, string(op.Key))
		case OpSearch, OpUpdate:
			if !live[string(op.Key)] {
				t.Fatalf("%v of dead key %q", op.Kind, op.Key)
			}
		}
	}
}

func TestGenerateBadMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad mix did not panic")
		}
	}()
	Mix{Name: "bad", InsertPct: 50}.Generate(10, nil, nil, 8, 1)
}

func TestZipfianSkew(t *testing.T) {
	pre := Sequential(1000)
	ops := ReadModifiedWrite().GenerateDist(20000, pre, nil, 8, 11, Zipfian(1.2))
	counts := map[string]int{}
	for _, op := range ops {
		counts[string(op.Key)]++
	}
	// Zipfian concentrates mass: the hottest key must dominate far beyond
	// the uniform expectation (20000/1000 = 20 hits per key).
	maxHits := 0
	for _, c := range counts {
		if c > maxHits {
			maxHits = c
		}
	}
	if maxHits < 200 {
		t.Fatalf("zipfian hottest key hit %d times; expected heavy skew", maxHits)
	}
	// Uniform for contrast stays flat.
	ops = ReadModifiedWrite().GenerateDist(20000, pre, nil, 8, 11, Uniform())
	counts = map[string]int{}
	for _, op := range ops {
		counts[string(op.Key)]++
	}
	maxHits = 0
	for _, c := range counts {
		if c > maxHits {
			maxHits = c
		}
	}
	if maxHits > 100 {
		t.Fatalf("uniform hottest key hit %d times; distribution is skewed", maxHits)
	}
}

func TestGenerateDistDeleteConsistency(t *testing.T) {
	// Zipfian deletes must still only target live keys.
	pre := Sequential(500)
	live := map[string]bool{}
	for _, k := range pre {
		live[string(k)] = true
	}
	mix := Mix{Name: "churn", InsertPct: 20, SearchPct: 20, UpdatePct: 20, DeletePct: 40}
	for _, op := range mix.GenerateDist(5000, pre, Random(5000, 21), 8, 13, Zipfian(1.5)) {
		switch op.Kind {
		case OpInsert:
			if live[string(op.Key)] {
				t.Fatalf("insert of live key %q", op.Key)
			}
			live[string(op.Key)] = true
		case OpDelete:
			if !live[string(op.Key)] {
				t.Fatalf("delete of dead key %q", op.Key)
			}
			delete(live, string(op.Key))
		default:
			if !live[string(op.Key)] {
				t.Fatalf("%v of dead key %q", op.Kind, op.Key)
			}
		}
	}
}
