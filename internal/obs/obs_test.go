package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	const workers, perWorker = 8, 10000
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stripe int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					c.Add(1)
				} else {
					c.AddStripe(stripe, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("Counter lost updates: got %d want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("Gauge = %d, want 40", got)
	}
}

func TestGate(t *testing.T) {
	var g Gate
	if g.Enabled() {
		t.Fatal("zero-value Gate should be off")
	}
	g.Set(true)
	if !g.Enabled() {
		t.Fatal("Gate should be on after Set(true)")
	}
}

// TestHistogramBucketProperty records random values and checks each lands
// in exactly the bucket whose bounds bracket it.
func TestHistogramBucketProperty(t *testing.T) {
	if BucketOf(-5) != 0 || BucketOf(0) != 0 {
		t.Fatal("non-positive values must land in bucket 0")
	}
	rng := rand.New(rand.NewSource(20190520))
	for trial := 0; trial < 500; trial++ {
		// Spread magnitudes across the full non-negative bucket range (the
		// shift of at least one keeps the sign bit clear).
		v := int64(rng.Uint64() >> (1 + uint(rng.Intn(63))))
		if trial == 0 {
			v = 0
		}
		var h Histogram
		h.Record(v)
		s := h.Snapshot()
		b := BucketOf(v)
		if s.Buckets[b] != 1 {
			t.Fatalf("value %d: bucket %d count = %d, want 1", v, b, s.Buckets[b])
		}
		if uint64(v) > BucketUpper(b) {
			t.Fatalf("value %d above bucket %d upper bound %d", v, b, BucketUpper(b))
		}
		if b > 0 && uint64(v) <= BucketUpper(b-1) {
			t.Fatalf("value %d should be in bucket %d or below, landed in %d", v, b-1, b)
		}
		if s.Count != 1 || s.Max != uint64(v) {
			t.Fatalf("value %d: count=%d max=%d", v, s.Count, s.Max)
		}
	}
}

// TestHistogramQuantile pins the quantile estimator's contract: upper
// estimates, monotone in q, bounded by the true max.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	values := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 1000}
	for _, v := range values {
		h.Record(v)
	}
	s := h.Snapshot()
	p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99 && p99 <= s.Max) {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d max=%d", p50, p95, p99, s.Max)
	}
	// p50 must be an upper bound on the true median (50) and within one
	// bucket (2×) of it.
	if p50 < 50 || p50 >= 128 {
		t.Fatalf("p50 = %d, want in [50, 128)", p50)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %d, want 1000", s.Max)
	}
	if m := s.Mean(); math.Abs(m-145.0) > 0.001 {
		t.Fatalf("mean = %v, want 145", m)
	}
}

// quantileBucket replicates Quantile's bucket search so merge tests can
// assert the bracketing property at bucket granularity (the value-level
// estimate additionally clamps to the exact Max, which differs between a
// merged histogram and its inputs).
func quantileBucket(s *HistSnapshot, q float64) int {
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < NumBuckets; b++ {
		cum += s.Buckets[b]
		if cum >= rank {
			return b
		}
	}
	return NumBuckets - 1
}

// TestHistogramMergeProperty checks that merging two random histograms
// preserves counts bucket-wise and that merged percentiles bracket the
// inputs: the merged quantile bucket sits between the inputs' quantile
// buckets, and the merged value estimate never drops below the smaller
// input estimate or exceeds the merged max.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var a, b Histogram
		na, nb := 1+rng.Intn(200), 1+rng.Intn(200)
		for i := 0; i < na; i++ {
			a.Record(int64(rng.Uint64() >> (1 + uint(rng.Intn(63)))))
		}
		for i := 0; i < nb; i++ {
			b.Record(int64(rng.Uint64() >> (1 + uint(rng.Intn(63)))))
		}
		sa, sb := a.Snapshot(), b.Snapshot()
		m := sa
		m.Merge(sb)
		if m.Count != sa.Count+sb.Count || m.Sum != sa.Sum+sb.Sum {
			t.Fatalf("merge lost observations: %d+%d -> %d", sa.Count, sb.Count, m.Count)
		}
		for i := range m.Buckets {
			if m.Buckets[i] != sa.Buckets[i]+sb.Buckets[i] {
				t.Fatalf("bucket %d: %d+%d -> %d", i, sa.Buckets[i], sb.Buckets[i], m.Buckets[i])
			}
		}
		if m.Max != max(sa.Max, sb.Max) {
			t.Fatalf("merged max %d, inputs %d / %d", m.Max, sa.Max, sb.Max)
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			ba, bb, bm := quantileBucket(&sa, q), quantileBucket(&sb, q), quantileBucket(&m, q)
			if bm < min(ba, bb) || bm > max(ba, bb) {
				t.Fatalf("q%.2f: merged bucket %d outside input range [%d, %d]", q, bm, min(ba, bb), max(ba, bb))
			}
			qa, qb, qm := sa.Quantile(q), sb.Quantile(q), m.Quantile(q)
			if qm < min(qa, qb) || qm > m.Max {
				t.Fatalf("q%.2f: merged %d outside [min input %d, merged max %d]", q, qm, min(qa, qb), m.Max)
			}
		}
	}
}

func TestEventRingWraparound(t *testing.T) {
	var r EventRing
	total := RingSize*2 + 17
	for i := 0; i < total; i++ {
		r.Emit("test", "", uint64(i), 0)
	}
	if got := r.Emitted(); got != uint64(total) {
		t.Fatalf("Emitted = %d, want %d", got, total)
	}
	evs := r.Snapshot()
	if len(evs) != RingSize {
		t.Fatalf("snapshot holds %d events, want %d", len(evs), RingSize)
	}
	// The survivors must be exactly the newest RingSize emissions, in order.
	for i, e := range evs {
		want := uint64(total - RingSize + i + 1)
		if e.Seq != want {
			t.Fatalf("event %d: seq %d, want %d", i, e.Seq, want)
		}
		if e.A != want-1 {
			t.Fatalf("event %d: payload %d, want %d", i, e.A, want-1)
		}
	}
}

// TestEventRingConcurrent hammers Emit from parallel goroutines (run
// under -race in check.sh): no lost sequence numbers, no duplicate Seq
// in a snapshot, snapshot stays sorted.
func TestEventRingConcurrent(t *testing.T) {
	const workers, perWorker = 8, 3 * RingSize / 4
	var r EventRing
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Emit("spin", "", uint64(w), uint64(i))
				if i%64 == 0 {
					r.Snapshot() // readers race the wraparound
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Emitted(); got != workers*perWorker {
		t.Fatalf("Emitted = %d, want %d", got, workers*perWorker)
	}
	evs := r.Snapshot()
	if len(evs) == 0 || len(evs) > RingSize {
		t.Fatalf("snapshot size %d out of range", len(evs))
	}
	seen := map[uint64]bool{}
	for i, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
		if i > 0 && evs[i-1].Seq >= e.Seq {
			t.Fatalf("snapshot not sorted at %d", i)
		}
	}
}

func TestWritePromAndHandler(t *testing.T) {
	snap := Snapshot{
		Counters: map[string]uint64{"ops.get": 123, "dir.splits": 4},
		Hists: map[string]HistVal{
			"ops.get": {Count: 123, P50Ns: 256, P95Ns: 1024, P99Ns: 2048, MaxNs: 5000},
		},
	}
	var sb strings.Builder
	if err := WriteProm(&sb, snap); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"hart_ops_get 123",
		"hart_dir_splits 4",
		`hart_ops_get_ns{quantile="0.99"} 2048`,
		"hart_ops_get_ns_count 123",
		"hart_ops_get_ns_max 5000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}

	rr := httptest.NewRecorder()
	Handler(func() Snapshot { return snap }).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr.Body.String(), "hart_ops_get 123") {
		t.Fatalf("handler output missing counter:\n%s", rr.Body.String())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	snap := Snapshot{
		Counters: map[string]uint64{"ops.put": 9},
		Hists:    map[string]HistVal{"ops.put": {Count: 9, MeanNs: 100.5, P50Ns: 64}},
		Events:   []Event{{Seq: 1, Kind: "open.dirty"}},
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["ops.put"] != 9 || back.Hists["ops.put"].P50Ns != 64 || back.Events[0].Kind != "open.dirty" {
		t.Fatalf("round trip mangled snapshot: %+v", back)
	}
}
