package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// RingSize is the event ring's fixed capacity (power of two). Events are
// rare by design — splits, merges, recovery phases, stripe steals — so a
// thousand slots hold minutes-to-hours of history; older events are
// overwritten in emission order.
const RingSize = 1024

// Event is one structured occurrence. Kind is a stable dotted name
// ("dir.split", "recover.scan", ...); Detail is free-form context (a
// shard prefix, a phase label); A and B carry two kind-specific numeric
// payloads (counts, durations).
type Event struct {
	// Seq is the event's 1-based global emission number; gaps in a
	// snapshot mean older events were overwritten.
	Seq      uint64 `json:"seq"`
	UnixNano int64  `json:"unix_nano"`
	Kind     string `json:"kind"`
	Detail   string `json:"detail,omitempty"`
	A        uint64 `json:"a,omitempty"`
	B        uint64 `json:"b,omitempty"`
}

// EventRing is a fixed-size lock-free ring of Events. The zero value is
// ready to use. Emit allocates one Event (events are rare; the
// allocation buys torn-read freedom: slots hold immutable events behind
// atomic pointers, so readers and late overwriters never race on field
// writes). Emission order is the global Seq order; under concurrent
// emitters a slot briefly holds whichever of its contenders stored last,
// and Snapshot re-sorts by Seq.
type EventRing struct {
	seq   atomic.Uint64
	slots [RingSize]atomic.Pointer[Event]
}

// Emit appends an event to the ring, overwriting the oldest slot once
// the ring has wrapped.
func (r *EventRing) Emit(kind, detail string, a, b uint64) {
	e := &Event{
		Seq:      r.seq.Add(1),
		UnixNano: time.Now().UnixNano(),
		Kind:     kind,
		Detail:   detail,
		A:        a,
		B:        b,
	}
	r.slots[(e.Seq-1)&(RingSize-1)].Store(e)
}

// Emitted returns the total number of events ever emitted (≥ the number
// still held).
func (r *EventRing) Emitted() uint64 { return r.seq.Load() }

// Snapshot returns the events currently held, oldest first.
func (r *EventRing) Snapshot() []Event {
	out := make([]Event, 0, RingSize)
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
