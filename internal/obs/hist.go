package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the histogram resolution: power-of-two buckets covering
// the full uint64 range. Bucket 0 holds non-positive values; bucket b
// (b ≥ 1) holds values in [2^(b-1), 2^b - 1], with the last bucket open
// above. 64 buckets span sub-nanosecond to centuries, so one shape fits
// every latency the store measures.
const NumBuckets = 64

// Histogram is a lock-free log-bucketed latency histogram. The zero
// value is ready to use. Record is an atomic add per observation plus a
// CAS loop for the running max; buckets are not striped — histograms
// only record when the timing Gate is on, where a few nanoseconds of
// line contention are inside the accepted overhead budget.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// BucketOf returns the bucket index a value lands in.
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket b; quantile
// extraction reports this bound, so every quantile is an upper estimate
// off by at most 2× (the bucket width).
func BucketUpper(b int) uint64 {
	switch {
	case b <= 0:
		return 0
	case b >= NumBuckets-1:
		return math.MaxUint64
	default:
		return 1<<uint(b) - 1
	}
}

// Record adds one observation (nanoseconds for the store's latency
// histograms, but the scale is the caller's).
func (h *Histogram) Record(v int64) {
	h.buckets[BucketOf(v)].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(uint64(v))
	}
	u := uint64(max(v, 0))
	for {
		old := h.max.Load()
		if u <= old || h.max.CompareAndSwap(old, u) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the histogram's current state. The copy races with
// concurrent Records only benignly: each observation is either fully in
// or arrives in a later snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistSnapshot is a point-in-time histogram copy: plain values, mergeable
// across shards or instances by addition.
type HistSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Merge folds other into s (bucket-wise addition, max of maxes).
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
}

// Quantile returns an upper estimate of the q-quantile (0 < q ≤ 1): the
// upper bound of the bucket in which the cumulative count crosses
// q·Count. The exact Max replaces the open last bucket's bound.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < NumBuckets; b++ {
		cum += s.Buckets[b]
		if cum >= rank {
			if upper := BucketUpper(b); upper < s.Max || s.Max == 0 {
				return upper
			}
			return s.Max
		}
	}
	return s.Max
}

// Mean returns the average recorded value.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Summary renders the snapshot into the exposition form (count, mean and
// the standard percentile set).
func (s *HistSnapshot) Summary() HistVal {
	return HistVal{
		Count:  s.Count,
		MeanNs: s.Mean(),
		P50Ns:  s.Quantile(0.50),
		P95Ns:  s.Quantile(0.95),
		P99Ns:  s.Quantile(0.99),
		MaxNs:  s.Max,
	}
}
