// Package obs is HART's always-compiled observability layer: lock-free
// striped counters and gauges for hot-path event counting, log-bucketed
// latency histograms for per-op timing, and a fixed-size ring buffer of
// structured events for rare occurrences (shard splits, recovery phase
// transitions, stripe steals).
//
// Design constraints, in order:
//
//  1. The disabled cost must vanish into noise. Counters are always on —
//     one striped atomic add per op — and everything that needs a clock
//     (histogram timing) hides behind a single Gate check, so the
//     disabled read path stays allocation-free and within noise of the
//     uninstrumented build (BENCH_obs.json holds the line).
//  2. No coordination. Every instrument is a leaf of plain atomics:
//     no locks, no channels, no registration step. The zero value of
//     every type is ready to use, so packages below core (epalloc, pmem)
//     embed instruments directly in their structs without constructors
//     or import cycles.
//  3. Mergeable snapshots. Histograms and counters snapshot into plain
//     values that add across shards/instances, and Snapshot renders to
//     JSON (bench reports), Prometheus text (WriteProm) and expvar.
//
// See DESIGN.md §14 for the architecture and the overhead methodology.
package obs

import (
	"sync/atomic"
	"unsafe"
)

// NumStripes is the number of padded cells a Counter spreads its
// increments over. Power of two; sized for small-to-medium core counts —
// the goal is to break same-line ping-pong between concurrent writers,
// not to give every CPU a private cell.
const NumStripes = 8

// cell is one padded counter stripe: the pad keeps adjacent stripes on
// distinct cache lines so concurrent increments don't false-share.
type cell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a lock-free striped event counter. The zero value is ready
// to use. Add is wait-free; Value sums the stripes and is approximate
// only in the sense that it races with concurrent adds (it never loses
// or double-counts a completed Add).
type Counter struct {
	cells [NumStripes]cell
}

// stripeHint derives a cheap per-goroutine-ish stripe index from the
// address of a stack local: goroutine stacks live at distinct addresses,
// so concurrent callers spread across cells without any runtime hook,
// and the probe never escapes (no allocation). Callers that already know
// a better affinity (an allocator stripe, a shard hash) should use
// AddStripe instead.
func stripeHint() int {
	var probe byte
	return int(uintptr(unsafe.Pointer(&probe))>>9) & (NumStripes - 1)
}

// Add increments the counter by n on a stack-address-derived stripe.
func (c *Counter) Add(n uint64) {
	c.cells[stripeHint()].n.Add(n)
}

// AddStripe increments the counter by n on a caller-chosen stripe
// (reduced modulo NumStripes). Call sites that already carry a shard or
// allocator stripe get stable affinity this way.
func (c *Counter) AddStripe(stripe int, n uint64) {
	c.cells[stripe&(NumStripes-1)].n.Add(n)
}

// Value returns the counter's current total.
func (c *Counter) Value() uint64 {
	var t uint64
	for i := range c.cells {
		t += c.cells[i].n.Load()
	}
	return t
}

// Gauge is a lock-free instantaneous value (a level, not a rate). The
// zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// SampleShift fixes the sampling ratio of the hot gated timing paths:
// with the Gate on, Get/Put and arena Persist/Sync clock one call in
// 2^SampleShift. A time.Now/Since pair costs ~100–150 ns on hosts with
// a slow clock read, which a sub-microsecond op cannot absorb on every
// call; at one in sixteen the amortised clock cost sits well inside the
// ~10% enabled-overhead budget while a steady workload still fills the
// histograms within a few hundred ops. Rare or long operations
// (Delete, Scan, PutBatch, recovery) are timed unsampled — for them the
// clock pair is already in the noise.
const SampleShift = 4

// Sampler decides which calls on a gated timing path actually read the
// clock: a striped wait-free call counter, hit on every 2^SampleShift-th
// call per stripe (the first call of each stripe hits, so a freshly
// enabled gate shows a histogram after one op). The zero value is ready
// to use.
type Sampler struct {
	cells [NumStripes]cell
}

// Hit reports whether this call should be timed.
func (s *Sampler) Hit() bool {
	return (s.cells[stripeHint()].n.Add(1)-1)&(1<<SampleShift-1) == 0
}

// Gate is the single atomic flag that turns clock-touching
// instrumentation (histogram timing) on. Counters ignore it — they are
// cheap enough to always run. The zero value is off.
type Gate struct {
	on atomic.Bool
}

// Enabled reports whether timed instrumentation is on. This is the one
// check a hot path performs before reaching for the clock.
func (g *Gate) Enabled() bool { return g.on.Load() }

// Set turns timed instrumentation on or off.
func (g *Gate) Set(on bool) { g.on.Store(on) }
