package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// HistVal is one histogram's exposition summary (JSON-ready; the _ns
// suffixes document the store's convention of recording nanoseconds).
type HistVal struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  uint64  `json:"p50_ns"`
	P95Ns  uint64  `json:"p95_ns"`
	P99Ns  uint64  `json:"p99_ns"`
	MaxNs  uint64  `json:"max_ns"`
}

// Snapshot is a point-in-time metrics view: named counter totals, named
// histogram summaries and the event-ring contents. It is the one shape
// every consumer shares — hart.Metrics(), the BENCH_*.json reports,
// WriteProm and the expvar export all carry it.
type Snapshot struct {
	Counters map[string]uint64  `json:"counters"`
	Hists    map[string]HistVal `json:"hists,omitempty"`
	Events   []Event            `json:"events,omitempty"`
}

// promName maps a dotted instrument name to a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("hart_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format: counters as `hart_<name>`, histograms as summaries
// (`hart_<name>_ns{quantile="..."}` plus `_count`, `_sum` via mean·count
// is avoided — the true sum is not in HistVal, so sum is omitted — and
// `_max` as a gauge). Names are emitted in sorted order so scrapes diff
// cleanly.
func WriteProm(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Hists[n]
		p := promName(n) + "_ns"
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.95\"} %d\n%s{quantile=\"0.99\"} %d\n%s_count %d\n# TYPE %s_max gauge\n%s_max %d\n",
			p, p, h.P50Ns, p, h.P95Ns, p, h.P99Ns, p, h.Count, p, p, h.MaxNs); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving fn's snapshot as Prometheus
// text — mount it at /metrics.
func Handler(fn func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = WriteProm(w, fn())
	})
}

// expvar.Publish panics on duplicate names; published guards re-publication
// when several stores come and go in one process (tests, hartbench runs).
var (
	expvarMu  sync.Mutex
	published = map[string]bool{}
)

// PublishExpvar exports fn's snapshot under the given expvar name
// (served at /debug/vars by expvar.Handler). Re-publishing the same name
// replaces the function; the JSON value is the Snapshot itself.
func PublishExpvar(name string, fn func() Snapshot) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if published[name] {
		// expvar keeps the first registration; swap the target through an
		// indirection we own.
		expvarFns.Lock()
		expvarFns.m[name] = fn
		expvarFns.Unlock()
		return
	}
	published[name] = true
	expvarFns.Lock()
	if expvarFns.m == nil {
		expvarFns.m = map[string]func() Snapshot{}
	}
	expvarFns.m[name] = fn
	expvarFns.Unlock()
	expvar.Publish(name, expvar.Func(func() any {
		expvarFns.Lock()
		f := expvarFns.m[name]
		expvarFns.Unlock()
		if f == nil {
			return Snapshot{}
		}
		return f()
	}))
}

var expvarFns struct {
	sync.Mutex
	m map[string]func() Snapshot
}

// Serve starts an HTTP listener exposing fn's snapshot: Prometheus text
// at /metrics and the process expvars (including any PublishExpvar
// names) at /debug/vars. It returns the server so callers can Close it;
// errors from the background listener are reported through errFn (nil to
// ignore). This is the one-call backend of the cmds' -metrics-addr flag.
func Serve(addr, expvarName string, fn func() Snapshot, errFn func(error)) *http.Server {
	PublishExpvar(expvarName, fn)
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(fn))
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed && errFn != nil {
			errFn(err)
		}
	}()
	return srv
}
