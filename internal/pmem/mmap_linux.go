//go:build linux

package pmem

import (
	"fmt"
	"syscall"
	"unsafe"
)

// mmap maps the backing file MAP_SHARED so every store is immediately
// visible to the kernel (process-crash durable) and msync can make it
// machine-crash durable. The mapping base is page-aligned, which more
// than satisfies the Backend contract's 8-byte alignment.
func (b *FileBackend) mmap(size int64) error {
	if size > int64(^uint(0)>>1) {
		return fmt.Errorf("pmem: %d bytes exceeds the address space", size)
	}
	data, err := syscall.Mmap(int(b.f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return err
	}
	b.data, b.mapped = data, true
	return nil
}

// msync flushes the whole mapping with MS_SYNC: on return the file's
// blocks hold every store made so far.
func (b *FileBackend) msync() error {
	if len(b.data) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b.data[0])), uintptr(len(b.data)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return fmt.Errorf("pmem: msync %s: %w", b.path, errno)
	}
	return nil
}

// munmap releases the mapping.
func (b *FileBackend) munmap() error {
	data := b.data
	b.data = nil
	return syscall.Munmap(data)
}
