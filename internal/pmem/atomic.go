package pmem

import (
	"math/bits"
	"unsafe"
)

// Atomic word access.
//
// HART's lock-free read path (core.Get) loads leaf and allocator words
// while writers store them, synchronised only by a per-shard seqlock. The
// Go memory model makes such mixed access a data race unless *both* sides
// go through sync/atomic, so every 8-byte arena word that a lock-free
// reader may touch is accessed with the helpers below. They are also what
// the platform guarantees anyway: an aligned 8-byte MOV is single-copy
// atomic, which is the same property the persistence protocol already
// relies on for its failure-atomic header and pointer stores.
//
// Arena offsets are little-endian on media (the durable image is
// byte-ordered, not host-ordered), so on a big-endian host the raw word is
// byte-swapped after the atomic load / before the atomic store.

// hostBig reports whether the host stores uint64s big-endian.
var hostBig = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 0
}()

// le64 converts between host and little-endian word order.
func le64(v uint64) uint64 {
	if hostBig {
		return bits.ReverseBytes64(v)
	}
	return v
}

// word returns the arena word at p as an atomically accessible location.
// p must be 8-byte aligned; alignedData's base address is 8-byte aligned
// by construction, so the sum is too.
func (a *Arena) word(p Ptr) *uint64 {
	return (*uint64)(unsafe.Pointer(&a.data[p]))
}

// aligned8 reports whether the slice base is 8-byte aligned. Slices from
// make always are; Attach images supplied by callers are re-based when not.
func aligned8(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0
}
