//go:build !linux

package pmem

import "errors"

// errNoMmap routes non-Linux builds onto the portable heap-buffer
// fallback (OpenFile catches the error and loads the file into memory).
var errNoMmap = errors.New("pmem: mmap not supported on this platform")

func (b *FileBackend) mmap(size int64) error { return errNoMmap }
func (b *FileBackend) msync() error          { return nil }
func (b *FileBackend) munmap() error         { return nil }
