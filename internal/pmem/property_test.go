package pmem

import (
	"math/rand"
	"testing"
)

// TestQuickDurableViewMatchesPersistHistory is the fundamental persistence
// property: after an arbitrary interleaving of writes and persists, the
// durable image holds, for every byte, the value the byte had at the time
// its cache line was last persisted (zero if never persisted).
func TestQuickDurableViewMatchesPersistHistory(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const region = 1 << 12
		a, err := New(Config{Size: region + HeaderSize + 64, Tracking: true})
		if err != nil {
			t.Fatal(err)
		}
		base, err := a.Reserve(region, 64)
		if err != nil {
			t.Fatal(err)
		}
		// Model: current volatile bytes and the durable snapshot.
		volatileB := make([]byte, region)
		durable := make([]byte, region)
		for op := 0; op < 500; op++ {
			off := rng.Intn(region - 16)
			if rng.Intn(3) < 2 { // write 1-16 bytes
				n := 1 + rng.Intn(16)
				buf := make([]byte, n)
				rng.Read(buf)
				a.WriteAt(base+Ptr(off), buf)
				copy(volatileB[off:], buf)
			} else { // persist 1-128 bytes
				n := 1 + rng.Intn(128)
				if off+n > region {
					n = region - off
				}
				a.Persist(base+Ptr(off), n)
				// Model line-granular durability.
				first := (int(base) + off) / 64 * 64
				last := (int(base) + off + n - 1) / 64 * 64
				for line := first; line <= last; line += 64 {
					lo := line - int(base)
					hi := lo + 64
					if lo < 0 {
						lo = 0
					}
					if hi > region {
						hi = region
					}
					copy(durable[lo:hi], volatileB[lo:hi])
				}
			}
		}
		img, err := a.DurableImage()
		if err != nil {
			t.Fatal(err)
		}
		got := img[base : int(base)+region]
		for i := range durable {
			if got[i] != durable[i] {
				t.Fatalf("seed %d: durable[%d] = %#x, model %#x", seed, i, got[i], durable[i])
			}
		}
	}
}

// TestPersistIsIdempotent: re-persisting unchanged data is harmless and
// the durable view converges to the volatile view once everything is
// persisted.
func TestPersistIsIdempotent(t *testing.T) {
	a, err := New(Config{Size: 8192, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := a.Reserve(1024, 64)
	data := make([]byte, 1024)
	rand.New(rand.NewSource(9)).Read(data)
	a.WriteAt(p, data)
	a.Persist(p, 1024)
	a.Persist(p, 1024)
	a.Persist(p+100, 8)
	img, _ := a.DurableImage()
	for i, b := range data {
		if img[int(p)+i] != b {
			t.Fatalf("byte %d diverged after repeated persists", i)
		}
	}
}
