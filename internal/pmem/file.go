package pmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// File-backed arenas: the durable counterpart of the simulated in-memory
// medium. The file's bytes ARE the arena image — the same layout
// CrashImage/Restore exchange — so a store written through a FileBackend
// survives a real process exit with no application-level save step, and
// existing image tooling (hartfsck reads the file and Restores it) keeps
// working on the same files.
//
// On Linux the file is mmap'd MAP_SHARED, the DAX programming model:
// every store lands in the kernel page cache immediately, so a process
// crash (panic, SIGKILL) loses nothing that was stored, and Sync/Close
// msync the mapping so a machine crash loses at most the lines written
// since the last sync. On real persistent memory the mapping would be
// DAX and Persist would be the CLWB point; here Persist is a no-op
// because the page cache already holds every store.
//
// Where mmap is unavailable (other platforms, or exotic filesystems that
// refuse the mapping) the backend degrades to a heap buffer written back
// on Sync/Close through WriteFileAtomic — portable, with the weaker
// contract that a crash between syncs loses everything since the last
// one, but never corrupts the previous image (temp file + rename).

// Errors returned by the file backend.
var (
	// ErrTruncatedFile reports a backing file too short to hold the arena
	// it claims (torn creation or external truncation).
	ErrTruncatedFile = errors.New("pmem: backing file truncated or torn")
)

// FileBackend is a file-backed PM medium. See the package comment above
// for the durability contract of the mmap and fallback modes.
type FileBackend struct {
	path   string
	f      *os.File
	data   []byte
	mapped bool // true: data is an mmap of f; false: heap buffer fallback
}

// Bytes implements Backend.
func (b *FileBackend) Bytes() []byte { return b.data }

// Persist implements Backend. Stores already live in the page cache
// (mmap) or are deferred to Sync (fallback); on DAX hardware this would
// be the flush+fence point.
func (b *FileBackend) Persist(off, n int64) {}

// Mapped reports whether the backend runs on a real shared mapping
// (true) or the portable write-back fallback (false).
func (b *FileBackend) Mapped() bool { return b.mapped }

// Path returns the backing file path.
func (b *FileBackend) Path() string { return b.path }

// Sync implements Backend: msync for the mapping, atomic write-back for
// the fallback.
func (b *FileBackend) Sync() error {
	if b.mapped {
		if err := b.msync(); err != nil {
			return err
		}
		return b.f.Sync()
	}
	return WriteFileAtomic(b.path, b.data, 0o644)
}

// Close implements Backend: Sync, then unmap and close the file.
func (b *FileBackend) Close() error {
	if b.f == nil && !b.mapped {
		if b.data == nil {
			return nil // already closed
		}
		err := b.Sync()
		b.data = nil
		return err
	}
	syncErr := b.Sync()
	if b.mapped {
		if err := b.munmap(); err != nil && syncErr == nil {
			syncErr = err
		}
	}
	b.data = nil
	if b.f != nil {
		if err := b.f.Close(); err != nil && syncErr == nil {
			syncErr = err
		}
		b.f = nil
	}
	return syncErr
}

// OpenFile opens (or creates) path as a file-backed PM medium. A missing
// or empty file is created with the given size and reported fresh — the
// caller formats an arena onto it; an existing file keeps its own size
// and is reported non-fresh — the caller attaches. The distinction is
// the file's, not the caller's: opening an existing store with a
// different size never resizes or clobbers it.
func OpenFile(path string, size int64) (*FileBackend, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, false, fmt.Errorf("pmem: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, false, fmt.Errorf("pmem: stat %s: %w", path, err)
	}
	fresh := st.Size() == 0
	if fresh {
		if size < HeaderSize {
			f.Close()
			return nil, false, fmt.Errorf("pmem: arena size %d below minimum %d", size, HeaderSize)
		}
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, false, fmt.Errorf("pmem: size %s to %d bytes: %w", path, size, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, false, fmt.Errorf("pmem: sync %s: %w", path, err)
		}
	} else {
		size = st.Size()
		if size < HeaderSize {
			f.Close()
			return nil, false, fmt.Errorf("%w: %s is %d bytes, below the %d-byte arena header",
				ErrTruncatedFile, path, size, HeaderSize)
		}
	}
	b := &FileBackend{path: path, f: f}
	if err := b.mmap(size); err != nil {
		// Portable fallback: load the whole image into a heap buffer and
		// write it back on Sync/Close.
		data := make([]byte, size)
		if _, err := f.ReadAt(data, 0); err != nil {
			f.Close()
			return nil, false, fmt.Errorf("pmem: read %s: %w", path, err)
		}
		f.Close()
		b.f, b.data, b.mapped = nil, data, false
	}
	return b, fresh, nil
}

// OpenFileArena opens or creates a file-backed arena at path: a fresh
// file is sized to cfg.Size and formatted, an existing file is validated
// (magic, capacity vs file length) and attached. The returned fresh flag
// tells the caller whether the arena needs its higher-level format
// (allocator, superblock) or its recovery path.
func OpenFileArena(path string, cfg Config) (*Arena, bool, error) {
	be, fresh, err := OpenFile(path, cfg.Size)
	if err != nil {
		return nil, false, err
	}
	var a *Arena
	if fresh {
		a, err = NewOnBackend(be, cfg)
	} else {
		a, err = AttachBackend(be, cfg)
	}
	if err != nil {
		be.Close()
		return nil, false, err
	}
	return a, fresh, nil
}

// validateImage checks an existing image's arena header against the
// region that holds it: magic present, recorded capacity equal to the
// region size (a shorter file is torn, a longer one is not the image the
// header describes), cursor within bounds.
func validateImage(data []byte) error {
	if len(data) < HeaderSize || binary.LittleEndian.Uint64(data[offMagic:]) != arenaMagic {
		return ErrBadMagic
	}
	capacity := binary.LittleEndian.Uint64(data[offCapacity:])
	if capacity != uint64(len(data)) {
		return fmt.Errorf("%w: header records %d-byte arena but region is %d bytes",
			ErrTruncatedFile, capacity, len(data))
	}
	cursor := binary.LittleEndian.Uint64(data[offCursor:])
	if cursor < HeaderSize || cursor > capacity {
		return fmt.Errorf("%w: bump cursor %d outside [%d,%d]",
			ErrTruncatedFile, cursor, HeaderSize, capacity)
	}
	return nil
}
