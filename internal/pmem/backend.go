package pmem

// Backend is the storage medium under an Arena: a flat byte region plus
// the durability operations the arena forwards to it. The arena performs
// all loads and stores directly on the slice returned by Bytes; the
// backend only learns about durability points (Persist), full flushes
// (Sync) and teardown (Close).
//
// Two implementations ship with the package:
//
//   - the in-memory simulated backend (New/Attach), where durability is
//     modelled by the arena's tracking shadow and Persist is a no-op on
//     the medium itself — the crash-testing backend; and
//   - FileBackend (OpenFile/OpenFileArena), an mmap(MAP_SHARED) over a
//     sized file, where the kernel's page cache makes every store survive
//     a process crash and Sync/Close msync the mapping for machine-crash
//     durability — the DAX-style persistent backend.
//
// Contract: Bytes must return the same slice for the backend's lifetime,
// with an 8-byte-aligned base (atomic word access requires it) and a
// length fixed at creation. Persist may be called concurrently from any
// goroutine; Sync and Close are serialised by the caller.
type Backend interface {
	// Bytes returns the backing region. The arena addresses it by Ptr
	// offsets for its whole lifetime.
	Bytes() []byte
	// Persist marks [off, off+n) as required-durable. For media with real
	// persistence ordering (DAX) this is the CLWB+fence point; the
	// simulated and mmap backends treat it as a no-op because their
	// durability is, respectively, modelled in the arena and provided by
	// the kernel page cache.
	Persist(off, n int64)
	// Sync makes the entire region durable on the medium (msync for the
	// file backend; no-op in memory).
	Sync() error
	// Close flushes and releases the medium. The Bytes slice must not be
	// used afterwards.
	Close() error
}

// BackendOf exposes an arena's medium, letting callers inspect it (e.g.
// whether a FileBackend runs mapped or on the write-back fallback).
func BackendOf(a *Arena) Backend { return a.backend }

// memBackend is the simulated in-memory medium: a heap slice with no
// durability of its own (crash semantics are modelled by the arena's
// tracking shadow, which is exactly what the crash tests sweep).
type memBackend struct {
	data []byte
}

// newMemBackend allocates a zeroed in-memory region. make guarantees the
// 8-byte base alignment the Backend contract requires.
func newMemBackend(size int64) *memBackend {
	return &memBackend{data: make([]byte, size)}
}

// memBackendFor wraps an existing image, re-basing it into a fresh
// allocation when the caller's slice is not 8-byte aligned.
func memBackendFor(img []byte) *memBackend {
	if !aligned8(img) {
		img = append(make([]byte, 0, len(img)), img...)
	}
	return &memBackend{data: img}
}

// Bytes implements Backend.
func (b *memBackend) Bytes() []byte { return b.data }

// Persist implements Backend (no medium-side effect; the arena's shadow
// models durability).
func (b *memBackend) Persist(off, n int64) {}

// Sync implements Backend.
func (b *memBackend) Sync() error { return nil }

// Close implements Backend. The slice stays valid so tests can keep
// reading a closed simulated arena.
func (b *memBackend) Close() error { return nil }
