package pmem

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic replaces path with data without ever exposing a torn
// file: the bytes land in a temporary file in the same directory, are
// fsynced, and only then renamed over the destination (rename within one
// directory is atomic on POSIX filesystems). A crash at any point leaves
// either the complete old file or the complete new one — never a
// partially written image, which is what a plain os.WriteFile over the
// only copy risks. The directory is fsynced after the rename so the new
// directory entry itself is durable.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("pmem: atomic write: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file; the destination is
	// untouched until the rename.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("pmem: atomic write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("pmem: atomic write %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that refuse to fsync directories are tolerated: the rename
// itself was still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
