package pmem

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/casl-sdsu/hart/internal/cachesim"
	"github.com/casl-sdsu/hart/internal/latency"
)

func newTracked(t *testing.T, size int64) *Arena {
	t.Helper()
	a, err := New(Config{Size: size, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRejectsTinyArena(t *testing.T) {
	if _, err := New(Config{Size: 10}); err == nil {
		t.Fatal("New accepted a sub-header arena")
	}
}

func TestReserveAlignmentAndBounds(t *testing.T) {
	a := newTracked(t, 4096)
	p1, err := a.Reserve(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != HeaderSize {
		t.Fatalf("first reservation at %d, want %d", p1, HeaderSize)
	}
	p2, err := a.Reserve(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p2)%64 != 0 {
		t.Fatalf("aligned reservation at %d, not 64-aligned", p2)
	}
	if _, err := a.Reserve(1<<20, 8); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("oversized reservation error = %v, want ErrOutOfMemory", err)
	}
	if _, err := a.Reserve(8, 3); err == nil {
		t.Fatal("non-power-of-two alignment accepted")
	}
	if _, err := a.Reserve(0, 8); err == nil {
		t.Fatal("zero-size reservation accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	a := newTracked(t, 4096)
	p, _ := a.Reserve(128, 8)
	msg := []byte("persistent memory simulation")
	a.WriteAt(p, msg)
	buf := make([]byte, len(msg))
	a.ReadAt(p, buf)
	if !bytes.Equal(buf, msg) {
		t.Fatalf("round trip: got %q", buf)
	}
	a.Write8(p+64, 0xdeadbeefcafe)
	if got := a.Read8(p + 64); got != 0xdeadbeefcafe {
		t.Fatalf("Read8 = %x", got)
	}
	a.Write1(p+40, 0x7f)
	if got := a.Read1(p + 40); got != 0x7f {
		t.Fatalf("Read1 = %x", got)
	}
	a.WritePtr(p+72, p)
	if got := a.ReadPtr(p + 72); got != p {
		t.Fatalf("ReadPtr = %d, want %d", got, p)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	a := newTracked(t, 4096)
	for name, f := range map[string]func(){
		"nil read":    func() { a.Read8(Nil) },
		"past end":    func() { a.Read8(Ptr(4090)) },
		"write past":  func() { a.WriteAt(Ptr(4000), make([]byte, 200)) },
		"persist nil": func() { a.Persist(Nil, 8) },
		// Sub-label accesses (0 < p < LabelBase) are wild pointers into
		// the arena's own metadata; a write there would corrupt the magic
		// or the bump cursor. Regression: check used to admit them. The
		// label area [LabelBase, HeaderSize) is legitimately writable (it
		// holds the store superblock), so the floor is LabelBase.
		"header read":     func() { a.Read8(Ptr(8)) },
		"header write":    func() { a.Write8(Ptr(offCursor), 0xdead) },
		"header write1":   func() { a.Write1(Ptr(LabelBase-1), 1) },
		"header persist":  func() { a.Persist(Ptr(8), 8) },
		"straddle header": func() { a.WriteAt(Ptr(LabelBase-8), make([]byte, 16)) },
		// Unaligned word access is a program bug, not a fallback to plain
		// loads: it silently broke single-copy atomicity before.
		"unaligned read8":  func() { a.Read8(Ptr(HeaderSize + 4)) },
		"unaligned write8": func() { a.Write8(Ptr(HeaderSize+4), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCrashDropsUnpersistedWrites(t *testing.T) {
	a := newTracked(t, 8192)
	p, _ := a.Reserve(256, 64)
	a.WriteAt(p, []byte("durable....."))
	a.Persist(p, 12)
	a.WriteAt(p+128, []byte("volatile....")) // never persisted (different line)
	b, err := a.Crash(Config{Tracking: true}, CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	b.ReadAt(p, buf)
	if string(buf) != "durable....." {
		t.Fatalf("persisted data lost: %q", buf)
	}
	b.ReadAt(p+128, buf)
	if !bytes.Equal(buf, make([]byte, 12)) {
		t.Fatalf("unpersisted data survived: %q", buf)
	}
}

func TestCrashLineGranularity(t *testing.T) {
	// Persisting any byte of a line makes the whole line durable — exactly
	// like CLFLUSH. Unpersisted bytes of *other* lines vanish.
	a := newTracked(t, 8192)
	p, _ := a.Reserve(256, 64)
	a.WriteAt(p, bytes.Repeat([]byte{0xAA}, 128)) // two lines
	a.Persist(p, 1)                               // flushes line 0 only
	b, err := a.Crash(Config{Tracking: true}, CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	b.ReadAt(p, buf)
	if buf[0] != 0xAA || buf[63] != 0xAA {
		t.Fatal("line 0 not durable after persist")
	}
	if buf[64] != 0 {
		t.Fatal("line 1 became durable without persist")
	}
}

func TestCrashKeepDirtyProb(t *testing.T) {
	a := newTracked(t, 1<<16)
	p, _ := a.Reserve(1<<12, 64)
	for i := int64(0); i < 64; i++ {
		a.Write8(p+Ptr(i*64), uint64(i)+1)
	}
	// With probability 1 every dirty line survives the crash.
	b, err := a.Crash(Config{Tracking: true}, CrashOptions{KeepDirtyProb: 1, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 64; i++ {
		if got := b.Read8(p + Ptr(i*64)); got != uint64(i)+1 {
			t.Fatalf("line %d lost despite KeepDirtyProb=1", i)
		}
	}
}

func TestCursorSurvivesCrash(t *testing.T) {
	a := newTracked(t, 8192)
	a.Reserve(100, 8)
	want := a.Reserved()
	b, err := a.Crash(Config{Tracking: true}, CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Reserved() != want {
		t.Fatalf("cursor after crash = %d, want %d", b.Reserved(), want)
	}
	// New reservations continue past the old cursor.
	p, err := b.Reserve(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if int64(p) < want {
		t.Fatalf("post-crash reservation %d overlaps pre-crash space", p)
	}
}

func TestCrashRequiresTracking(t *testing.T) {
	a, _ := New(Config{Size: 4096})
	if _, err := a.Crash(Config{}, CrashOptions{}); !errors.Is(err, ErrNoTracking) {
		t.Fatalf("Crash without tracking: %v", err)
	}
	if _, err := a.DurableImage(); !errors.Is(err, ErrNoTracking) {
		t.Fatalf("DurableImage without tracking: %v", err)
	}
}

func TestFailAfterPersists(t *testing.T) {
	a := newTracked(t, 8192)
	p, _ := a.Reserve(64, 64)
	a.FailAfterPersists(2)
	a.Write8(p, 1)
	a.Persist(p, 8) // ok
	a.Write8(p, 2)
	a.Persist(p, 8) // ok
	a.Write8(p, 3)
	func() {
		defer func() {
			r := recover()
			ce, ok := r.(CrashError)
			if !ok {
				t.Fatalf("panic value %v, want CrashError", r)
			}
			if ce.Persists == 0 {
				t.Fatal("CrashError has zero persist count")
			}
		}()
		a.Persist(p, 8) // must panic, leaving value 2 durable
	}()
	b, err := a.Crash(Config{Tracking: true}, CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Read8(p); got != 2 {
		t.Fatalf("durable value = %d, want 2 (third persist must not apply)", got)
	}
	// Disarm works.
	a.DisarmCrash()
	a.Persist(p, 8)
}

func TestLatencyAccounting(t *testing.T) {
	a, err := New(Config{
		Size:    1 << 16,
		Latency: latency.Config300x300(),
		Cache:   cachesim.New(1<<14, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := a.Reserve(256, 64)
	base := a.Clock().Snapshot()
	a.Write8(p, 7)
	a.Persist(p, 8)
	s := a.Clock().Snapshot()
	if s.Persists != base.Persists+1 {
		t.Fatalf("persist not charged: %+v", s)
	}
	if s.WritePenaltyNs <= base.WritePenaltyNs {
		t.Fatal("write penalty not charged")
	}
	// Persist flushed the line, so the next read misses and pays.
	preMiss := a.Clock().Snapshot().PMReadMisses
	a.Read8(p)
	if a.Clock().Snapshot().PMReadMisses != preMiss+1 {
		t.Fatal("post-flush read should miss")
	}
	// Second read hits (no charge).
	preMiss = a.Clock().Snapshot().PMReadMisses
	a.Read8(p)
	if a.Clock().Snapshot().PMReadMisses != preMiss {
		t.Fatal("cached read should hit")
	}
}

func TestStats(t *testing.T) {
	a := newTracked(t, 8192)
	p, _ := a.Reserve(128, 8)
	a.WriteAt(p, make([]byte, 100))
	a.Persist(p, 100)
	a.ReadAt(p, make([]byte, 10))
	s := a.Stats()
	if s.Capacity != 8192 || s.Reserved < HeaderSize+128 {
		t.Fatalf("capacity/reserved wrong: %+v", s)
	}
	if s.Writes == 0 || s.Reads == 0 || s.Persists == 0 || s.BytesWritten < 100 {
		t.Fatalf("counters not ticking: %+v", s)
	}
	if s.PersistedLines < 2 {
		t.Fatalf("100-byte persist flushed %d lines, want >= 2", s.PersistedLines)
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	a := newTracked(t, 1<<20)
	const workers = 8
	ps := make([]Ptr, workers)
	for i := range ps {
		p, err := a.Reserve(1024, 64)
		if err != nil {
			t.Fatal(err)
		}
		ps[i] = p
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a.Write8(ps[w]+Ptr(8*(i%128)), uint64(w*1000+i))
				a.Persist(ps[w]+Ptr(8*(i%128)), 8)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if got := a.Read8(ps[w] + Ptr(8*((500-1)%128))); got != uint64(w*1000+499) {
			t.Fatalf("worker %d data corrupted: %d", w, got)
		}
	}
}

func TestConcurrentReserve(t *testing.T) {
	a := newTracked(t, 1<<20)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[Ptr]bool{}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p, err := a.Reserve(64, 8)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[p] {
					t.Errorf("duplicate reservation %d", p)
				}
				seen[p] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestAttachValidatesMagic(t *testing.T) {
	if _, err := Attach(make([]byte, 4096), Config{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("attach on zero image: %v", err)
	}
}

// TestAttachValidatesCapacity verifies torn-image rejection: an image
// whose header claims a different capacity than the bytes supplied (a
// truncated copy, or a grown file) must not attach.
func TestAttachValidatesCapacity(t *testing.T) {
	a := newTracked(t, 8192)
	img, err := a.DurableImage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(img[:4096], Config{}); !errors.Is(err, ErrTruncatedFile) {
		t.Fatalf("attach on truncated image: %v", err)
	}
	grown := append(append([]byte(nil), img...), make([]byte, 4096)...)
	if _, err := Attach(grown, Config{}); !errors.Is(err, ErrTruncatedFile) {
		t.Fatalf("attach on grown image: %v", err)
	}
	if _, err := Attach(img, Config{}); err != nil {
		t.Fatalf("attach on intact image: %v", err)
	}
}

// TestHeaderRejectionPreservesCursor verifies the regression the
// sub-header check closes: a wild store into the header must panic
// *before* mutating anything, leaving reservations working.
func TestHeaderRejectionPreservesCursor(t *testing.T) {
	a := newTracked(t, 8192)
	before := a.Reserved()
	func() {
		defer func() { _ = recover() }()
		a.Write8(Ptr(offCursor), 1<<40)
	}()
	if got := a.Reserved(); got != before {
		t.Fatalf("cursor corrupted by rejected header write: %d != %d", got, before)
	}
	if _, err := a.Reserve(64, 8); err != nil {
		t.Fatalf("Reserve after rejected header write: %v", err)
	}
}

// TestPersistSiteLabel verifies crash-site labeling: the CrashError of an
// injected crash carries the most recent SetPersistSite label.
func TestPersistSiteLabel(t *testing.T) {
	a := newTracked(t, 8192)
	p, _ := a.Reserve(64, 8)
	a.SetPersistSite("step-one")
	a.Write8(p, 1)
	a.Persist(p, 8)
	if got := a.PersistSite(); got != "step-one" {
		t.Fatalf("PersistSite = %q, want step-one", got)
	}
	a.SetPersistSite("step-two")
	a.FailAfterPersists(0)
	var ce CrashError
	func() {
		defer func() {
			r := recover()
			var ok bool
			if ce, ok = r.(CrashError); !ok {
				t.Fatalf("expected CrashError, got %v", r)
			}
		}()
		a.Write8(p, 2)
		a.Persist(p, 8)
	}()
	if ce.Site != "step-two" {
		t.Fatalf("CrashError.Site = %q, want step-two", ce.Site)
	}
}
