package pmem

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestOpenFileFreshAndReattach exercises the file backend's lifecycle:
// a fresh file is created at the requested size and formatted, writes
// through the arena land in the file, and a second open attaches to the
// same bytes.
func TestOpenFileFreshAndReattach(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.pm")
	const size = 1 << 20

	a, fresh, err := OpenFileArena(path, Config{Size: size})
	if err != nil {
		t.Fatal(err)
	}
	if !fresh {
		t.Fatal("first open of a missing file not reported fresh")
	}
	p, err := a.Reserve(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	a.Write8(p, 0xdeadbeefcafef00d)
	a.Persist(p, 8)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != size {
		t.Fatalf("file size %d, want %d", st.Size(), size)
	}

	a2, fresh, err := OpenFileArena(path, Config{Size: 123456789}) // size ignored on attach
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if fresh {
		t.Fatal("reopen of an existing store reported fresh")
	}
	if got := a2.Read8(p); got != 0xdeadbeefcafef00d {
		t.Fatalf("reattached word = %#x", got)
	}
	if a2.Capacity() != size {
		t.Fatalf("reattached capacity %d, want %d", a2.Capacity(), size)
	}
}

// TestOpenFileRejectsShortFile verifies a file below the arena header
// size is refused as torn, not formatted over.
func TestOpenFileRejectsShortFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.pm")
	if err := os.WriteFile(path, make([]byte, HeaderSize-1), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenFileArena(path, Config{Size: 1 << 20})
	if !errors.Is(err, ErrTruncatedFile) {
		t.Fatalf("short file: err = %v, want ErrTruncatedFile", err)
	}
}

// TestOpenFileRejectsTornFile verifies a file whose length disagrees
// with the capacity its own header records — the signature of a torn
// creation or an external truncation — is refused.
func TestOpenFileRejectsTornFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.pm")
	a, _, err := OpenFileArena(path, Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	torn := filepath.Join(dir, "torn.pm")
	if err := os.WriteFile(torn, img[:len(img)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFileArena(torn, Config{}); !errors.Is(err, ErrTruncatedFile) {
		t.Fatalf("truncated file: err = %v, want ErrTruncatedFile", err)
	}

	grown := filepath.Join(dir, "grown.pm")
	if err := os.WriteFile(grown, append(img, make([]byte, 4096)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFileArena(grown, Config{}); !errors.Is(err, ErrTruncatedFile) {
		t.Fatalf("grown file: err = %v, want ErrTruncatedFile", err)
	}

	garbage := filepath.Join(dir, "garbage.pm")
	if err := os.WriteFile(garbage, bytes.Repeat([]byte{0xff}, HeaderSize*2), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFileArena(garbage, Config{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage file: err = %v, want ErrBadMagic", err)
	}
}

// TestFileBackendSyncDurability verifies Sync pushes the arena's current
// bytes into the file (observable by an independent read of the path).
func TestFileBackendSyncDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.pm")
	a, _, err := OpenFileArena(path, Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	p, err := a.Reserve(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	a.Write8(p, 0x1122334455667788)
	a.Persist(p, 8)
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	for i := 0; i < 8; i++ {
		got |= uint64(img[int(p)+i]) << (8 * i)
	}
	if got != 0x1122334455667788 {
		t.Fatalf("file word after Sync = %#x", got)
	}
}

// TestWriteFileAtomic verifies the helper replaces the destination fully
// or not at all and leaves no temp litter.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second version"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second version" {
		t.Fatalf("content = %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after atomic writes, want 1", len(entries))
	}
	if err := WriteFileAtomic(filepath.Join(dir, "missing", "f"), []byte("x"), 0o644); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
