// Package pmem simulates byte-addressable persistent memory (PM).
//
// The paper runs on DRAM standing in for PM; this package gives Go code the
// same programming model that C code gets on such a platform, which the Go
// runtime otherwise denies us (the GC moves nothing today but owns all
// pointers, and Go exposes no CLFLUSH):
//
//   - An Arena is a single flat region addressed by 64-bit offsets (Ptr).
//     Persistent data structures store Ptr values, never Go pointers, so
//     the garbage collector is irrelevant to persistence, exactly as on a
//     real DAX mapping.
//
//   - Writes land in the volatile view (the "CPU cache" side). Data becomes
//     durable only when Persist is called on it, modelling the
//     {MFENCE, CLFLUSH, MFENCE} sequence the paper calls persistent().
//     With tracking enabled, the Arena maintains a separate durable view;
//     Crash() discards everything not yet persisted, and crash-point
//     injection (FailAfterPersists) lets tests crash at every persist
//     boundary of an algorithm.
//
//   - Every PM load and persist is routed through the latency Clock and the
//     cachesim model, reproducing the paper's PM latency emulation.
//
// The first HeaderSize bytes of an arena hold the arena's own metadata
// (magic, capacity, bump cursor) followed by the application label area
// (see LabelBase), a fixed-offset region the embedding store uses for its
// superblock. Reservations are handed out by a persistent bump allocator;
// structured allocation/free on top of it is the job of package epalloc.
//
// The medium under an arena is pluggable (see Backend): the simulated
// in-memory region above, or a file-backed mmap (FileBackend) where the
// image genuinely survives process restarts.
package pmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/casl-sdsu/hart/internal/cachesim"
	"github.com/casl-sdsu/hart/internal/latency"
	"github.com/casl-sdsu/hart/internal/obs"
)

// Ptr is a persistent pointer: a byte offset into an Arena. The zero value
// is the nil pointer; offset 0 is occupied by the arena header so no valid
// object ever has Ptr 0.
type Ptr uint64

// Nil is the null persistent pointer.
const Nil Ptr = 0

// IsNil reports whether p is the null pointer.
func (p Ptr) IsNil() bool { return p == Nil }

// HeaderSize is the number of bytes at the start of every arena reserved
// ahead of the bump allocator: the arena's own metadata (magic, capacity,
// cursor — the first LabelBase bytes) followed by the application label
// area. The first reservation an application makes always lands at offset
// HeaderSize, which is how the allocators find their superblocks after a
// restart.
const HeaderSize = 256

// LabelBase is the byte offset of the application label area, the
// LabelSize bytes between the arena's private metadata and the first
// reservation. It exists for the embedding store's superblock (format
// version, geometry, clean flag): a fixed offset the store can read
// before any allocator state is interpreted. The area is ordinary
// persistent space — Write8/Persist work on it — but no reservation ever
// overlaps it.
const LabelBase = 64

// LabelSize is the size of the application label area in bytes.
const LabelSize = HeaderSize - LabelBase

const (
	arenaMagic = 0x48415254504d454d // "HARTPMEM"

	offMagic    = 0  // 8B magic
	offCapacity = 8  // 8B capacity
	offCursor   = 16 // 8B bump cursor
)

// lineSize mirrors cachesim.LineSize; persistence granularity is one line.
const lineSize = cachesim.LineSize

// Errors returned by Arena operations.
var (
	// ErrOutOfMemory reports that a reservation exceeded arena capacity.
	ErrOutOfMemory = errors.New("pmem: arena out of memory")
	// ErrBadMagic reports that Attach found no valid arena header.
	ErrBadMagic = errors.New("pmem: bad arena magic")
	// ErrNoTracking reports that a durability operation requires tracking.
	ErrNoTracking = errors.New("pmem: durable view requires Tracking mode")
)

// CrashError is the panic value raised by injected crash points. Tests
// recover it, take the durable image, and exercise recovery.
type CrashError struct {
	// Persists is the number of persists that completed before the crash.
	Persists int64
	// Site is the persist-site label current when the crash fired (set by
	// SetPersistSite; empty when the crashing code path is unlabeled).
	Site string
}

// Error implements the error interface.
func (e CrashError) Error() string {
	if e.Site != "" {
		return fmt.Sprintf("pmem: injected crash after %d persists (site %s)", e.Persists, e.Site)
	}
	return fmt.Sprintf("pmem: injected crash after %d persists", e.Persists)
}

// Config parameterises an Arena.
type Config struct {
	// Size is the arena capacity in bytes (minimum HeaderSize).
	Size int64
	// Tracking enables the durable shadow view and dirty-line accounting
	// needed by Crash and crash-point injection. It roughly doubles memory
	// use and slows writes, so benchmarks leave it off.
	Tracking bool
	// Latency selects the PM latency emulation; the zero value disables it.
	Latency latency.Config
	// Cache optionally supplies a shared CPU cache model for read-latency
	// accounting. Nil disables cache modelling: with a latency config every
	// PM read then counts as a miss, without one reads are free.
	Cache *cachesim.Cache
}

// Stats is a snapshot of arena counters.
type Stats struct {
	// Capacity is the arena size in bytes.
	Capacity int64
	// Reserved is the high-water mark of the bump allocator.
	Reserved int64
	// Persists counts Persist invocations.
	Persists int64
	// PersistedLines counts cache lines flushed by Persist.
	PersistedLines int64
	// Reads counts load operations (ReadAt/Read8/ReadByte calls).
	Reads int64
	// Writes counts store operations.
	Writes int64
	// BytesWritten is the total payload of store operations.
	BytesWritten int64
	// Syncs counts whole-device Sync calls.
	Syncs int64
}

// Arena is one simulated PM device. Loads and stores to disjoint regions
// may proceed concurrently (callers provide their own higher-level
// locking, as the paper's trees do); reservation and durability operations
// are internally synchronised.
type Arena struct {
	data    []byte
	backend Backend
	clock   *latency.Clock
	cache   *cachesim.Cache

	// Tracking state.
	tracking bool
	shadowMu sync.Mutex // guards shadow during Persist/Crash snapshots
	shadow   []byte
	dirty    []atomic.Uint64 // bitmap, one bit per line

	reserveMu sync.Mutex

	// failAfter < 0 disables injection. Otherwise a Persist that observes
	// persists == failAfter panics with CrashError before applying.
	failAfter atomic.Int64

	// site labels the persist boundaries currently being executed for
	// crash diagnostics (SetPersistSite). Maintained only in Tracking
	// mode so the label stores cost nothing on benchmark arenas.
	site atomic.Pointer[string]

	persists       atomic.Int64
	persistedLines atomic.Int64
	reads          atomic.Int64
	writes         atomic.Int64
	bytesWritten   atomic.Int64
	syncs          atomic.Int64

	// timing gates the Persist/Sync latency histograms below: one atomic
	// flag load on the persist path when off (obs.Gate); when on, sample
	// clocks one persist in 2^obs.SampleShift — persists fire several
	// times per write op, so unsampled timing would multiply a slow
	// host's clock cost past the enabled-overhead budget. Counters above
	// are always on.
	timing   obs.Gate
	sample   obs.Sampler
	persistH obs.Histogram
	syncH    obs.Histogram
}

// New creates and formats a fresh arena on the simulated in-memory
// medium.
func New(cfg Config) (*Arena, error) {
	if cfg.Size < HeaderSize {
		return nil, fmt.Errorf("pmem: arena size %d below minimum %d", cfg.Size, HeaderSize)
	}
	return NewOnBackend(newMemBackend(cfg.Size), cfg)
}

// NewOnBackend formats a fresh arena onto a backend's (zeroed) region.
// The arena's capacity is the backend's region size; cfg.Size is ignored.
func NewOnBackend(be Backend, cfg Config) (*Arena, error) {
	size := int64(len(be.Bytes()))
	if size < HeaderSize {
		return nil, fmt.Errorf("pmem: backend region %d bytes below minimum %d", size, HeaderSize)
	}
	a := newArena(be, cfg)
	if a.tracking {
		a.shadow = make([]byte, size)
	}
	binary.LittleEndian.PutUint64(a.data[offMagic:], arenaMagic)
	binary.LittleEndian.PutUint64(a.data[offCapacity:], uint64(size))
	binary.LittleEndian.PutUint64(a.data[offCursor:], HeaderSize)
	a.persistRange(0, HeaderSize)
	return a, nil
}

// Attach wraps an existing durable image (e.g. one returned by
// DurableImage, or persisted externally by an application) in a new Arena
// on the in-memory medium.
func Attach(img []byte, cfg Config) (*Arena, error) {
	return AttachBackend(memBackendFor(img), cfg)
}

// AttachBackend attaches to an existing arena image held by a backend,
// validating the header (magic, capacity against the region size, cursor
// bounds) so torn or truncated media fail here instead of corrupting
// later interpretation.
func AttachBackend(be Backend, cfg Config) (*Arena, error) {
	img := be.Bytes()
	if err := validateImage(img); err != nil {
		return nil, err
	}
	a := newArena(be, cfg)
	if a.tracking {
		a.shadow = make([]byte, len(img))
		copy(a.shadow, img)
	}
	return a, nil
}

// newArena builds the volatile arena shell shared by format and attach.
func newArena(be Backend, cfg Config) *Arena {
	a := &Arena{
		data:     be.Bytes(),
		backend:  be,
		clock:    latency.NewClock(cfg.Latency),
		cache:    cfg.Cache,
		tracking: cfg.Tracking,
	}
	a.failAfter.Store(-1)
	if cfg.Tracking {
		a.dirty = make([]atomic.Uint64, (numLines(int64(len(a.data)))+63)/64)
	}
	return a
}

// Sync flushes the entire arena on its medium: msync for a file backend,
// no-op in memory. It is the whole-device durability point Close also
// takes; Persist remains the fine-grained one.
func (a *Arena) Sync() error {
	a.syncs.Add(1)
	if a.timing.Enabled() {
		start := time.Now()
		err := a.backend.Sync()
		a.syncH.Record(time.Since(start).Nanoseconds())
		return err
	}
	return a.backend.Sync()
}

// Close flushes and releases the medium. The arena must not be written
// after Close; a file-backed arena's data slice is unmapped and must not
// be touched at all.
func (a *Arena) Close() error { return a.backend.Close() }

func numLines(size int64) int64 {
	return (size + lineSize - 1) / lineSize
}

// Clock returns the arena's latency clock.
func (a *Arena) Clock() *latency.Clock { return a.clock }

// Capacity returns the arena size in bytes.
func (a *Arena) Capacity() int64 { return int64(len(a.data)) }

// Reserved returns the bump-allocator high-water mark.
func (a *Arena) Reserved() int64 {
	a.reserveMu.Lock()
	defer a.reserveMu.Unlock()
	return int64(binary.LittleEndian.Uint64(a.data[offCursor:]))
}

// Reserve carves size bytes out of the arena with the given alignment
// (which must be a power of two; 0 means 8). The cursor update is itself
// persisted, so reservations are never lost across a crash — a crash can
// only leak the reserved space, which is precisely the failure mode
// EPallocator's bitmaps exist to repair.
func (a *Arena) Reserve(size int64, align int64) (Ptr, error) {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		return Nil, fmt.Errorf("pmem: alignment %d is not a power of two", align)
	}
	if size <= 0 {
		return Nil, fmt.Errorf("pmem: invalid reservation size %d", size)
	}
	a.reserveMu.Lock()
	defer a.reserveMu.Unlock()
	cur := int64(binary.LittleEndian.Uint64(a.data[offCursor:]))
	start := (cur + align - 1) &^ (align - 1)
	if start+size > int64(len(a.data)) {
		return Nil, fmt.Errorf("%w: need %d bytes at %d, capacity %d",
			ErrOutOfMemory, size, start, len(a.data))
	}
	binary.LittleEndian.PutUint64(a.data[offCursor:], uint64(start+size))
	// The cursor lives inside the arena header, below the range check's
	// floor; persist it via the unchecked path. It is still a real,
	// injectable persist boundary.
	a.persistAt(Ptr(offCursor), 8)
	return Ptr(start), nil
}

// check panics if [p, p+size) is out of bounds. Out-of-bounds PM access is
// a program bug (wild persistent pointer), not a runtime condition. The
// lower bound is LabelBase, not 1: the first LabelBase bytes hold the
// arena's own metadata (magic, capacity, bump cursor), and a wild pointer
// into them (0 < p < LabelBase) would silently corrupt the header —
// rejecting only Ptr(0) let exactly that through. The label area
// [LabelBase, HeaderSize) is legitimately addressable: it holds the
// embedding store's superblock.
func (a *Arena) check(p Ptr, size int) {
	if p < LabelBase || size < 0 || int64(p)+int64(size) > int64(len(a.data)) {
		panic(fmt.Sprintf("pmem: access [%d,%d) out of arena bounds [%d,%d)",
			p, int64(p)+int64(size), LabelBase, len(a.data)))
	}
}

// checkAligned panics on a misaligned word access. Every legitimate
// 8-byte arena access is 8-aligned (reservations, chunk slots and log
// fields all are); an unaligned offset is a wild or miscomputed pointer,
// and silently degrading to a non-atomic plain load — as this package
// once did — hands a lock-free reader a tearable word. Same policy as
// check: program bug, so panic.
func checkAligned(p Ptr) {
	if p%8 != 0 {
		panic(fmt.Sprintf("pmem: unaligned 8-byte word access at %d", p))
	}
}

// chargeRead funnels one PM load through the cache and latency models.
func (a *Arena) chargeRead(p Ptr, size int) {
	a.reads.Add(1)
	miss := true
	if a.cache != nil {
		miss = a.cache.Access(uint64(p), size) > 0
	}
	a.clock.OnRead(miss)
}

// chargeWrite funnels one PM store through the cache model (a store brings
// the line into cache on write-allocate hardware) and the counters. Stores
// themselves are DRAM-speed; only Persist pays the PM write latency.
func (a *Arena) chargeWrite(p Ptr, size int) {
	a.writes.Add(1)
	a.bytesWritten.Add(int64(size))
	if a.cache != nil {
		a.cache.Access(uint64(p), size)
	}
}

// markDirty records the written lines as not-yet-durable.
func (a *Arena) markDirty(p Ptr, size int) {
	if !a.tracking {
		return
	}
	first := int64(p) / lineSize
	last := (int64(p) + int64(size) - 1) / lineSize
	for line := first; line <= last; line++ {
		a.dirty[line/64].Or(1 << uint(line%64))
	}
}

// ReadAt copies len(buf) bytes at p into buf.
func (a *Arena) ReadAt(p Ptr, buf []byte) {
	a.check(p, len(buf))
	a.chargeRead(p, len(buf))
	copy(buf, a.data[p:int64(p)+int64(len(buf))])
}

// WriteAt stores data at p.
func (a *Arena) WriteAt(p Ptr, data []byte) {
	a.check(p, len(data))
	a.chargeWrite(p, len(data))
	copy(a.data[p:int64(p)+int64(len(data))], data)
	a.markDirty(p, len(data))
}

// Read8 loads a little-endian uint64 at p. p must be 8-byte aligned so
// the load is single-copy atomic — with respect to crashes and, because
// the load goes through sync/atomic, with respect to concurrent Write8
// stores from writers that a lock-free reader does not exclude (see
// atomic.go). Unaligned addresses panic (checkAligned): they used to fall
// back to a plain, tearable load, which silently broke exactly the
// guarantee callers come here for.
func (a *Arena) Read8(p Ptr) uint64 {
	a.check(p, 8)
	checkAligned(p)
	a.chargeRead(p, 8)
	return le64(atomic.LoadUint64(a.word(p)))
}

// Write8 stores a little-endian uint64 at p (8-byte aligned; unaligned
// addresses panic). The store is atomic so lock-free readers racing it
// observe either the old or the new word, never a torn mix.
func (a *Arena) Write8(p Ptr, v uint64) {
	a.check(p, 8)
	checkAligned(p)
	a.chargeWrite(p, 8)
	atomic.StoreUint64(a.word(p), le64(v))
	a.markDirty(p, 8)
}

// ReadWords copies len(buf) bytes at p into buf using aligned atomic
// 8-byte loads, so it may race atomic word stores (WriteWords, Write8)
// without tearing words or tripping the race detector. p must be 8-byte
// aligned and the containing object must extend to the next word boundary
// past len(buf). Latency accounting matches ReadAt: one charged load.
func (a *Arena) ReadWords(p Ptr, buf []byte) {
	n := len(buf)
	words := (n + 7) / 8
	a.check(p, words*8)
	checkAligned(p)
	a.chargeRead(p, n)
	for i := 0; i < words; i++ {
		w := le64(atomic.LoadUint64(a.word(p + Ptr(i*8))))
		if (i+1)*8 <= n {
			binary.LittleEndian.PutUint64(buf[i*8:], w)
			continue
		}
		for b := i * 8; b < n; b++ {
			buf[b] = byte(w >> (uint(b%8) * 8))
		}
	}
}

// WriteWords stores data at p using aligned atomic 8-byte stores, zero
// padding the final partial word. The counterpart of ReadWords for object
// payloads (HART value objects) that lock-free readers may load while a
// writer initialises a reused slot. Accounting matches WriteAt.
func (a *Arena) WriteWords(p Ptr, data []byte) {
	n := len(data)
	words := (n + 7) / 8
	a.check(p, words*8)
	checkAligned(p)
	a.chargeWrite(p, n)
	for i := 0; i < words; i++ {
		var w uint64
		for b := i * 8; b < min((i+1)*8, n); b++ {
			w |= uint64(data[b]) << (uint(b%8) * 8)
		}
		atomic.StoreUint64(a.word(p+Ptr(i*8)), le64(w))
	}
	a.markDirty(p, words*8)
}

// ReadPtr loads a persistent pointer stored at p.
func (a *Arena) ReadPtr(p Ptr) Ptr { return Ptr(a.Read8(p)) }

// WritePtr stores a persistent pointer at p.
func (a *Arena) WritePtr(p Ptr, v Ptr) { a.Write8(p, uint64(v)) }

// Read1 loads one byte at p.
func (a *Arena) Read1(p Ptr) byte {
	a.check(p, 1)
	a.chargeRead(p, 1)
	return a.data[p]
}

// Write1 stores one byte at p.
func (a *Arena) Write1(p Ptr, v byte) {
	a.check(p, 1)
	a.chargeWrite(p, 1)
	a.data[p] = v
	a.markDirty(p, 1)
}

// Persist is the paper's persistent(): it makes [p, p+size) durable,
// charges one PM write penalty, and evicts the flushed lines from the
// simulated cache (CLFLUSH semantics). With crash injection armed, the
// fatal persist panics with CrashError *before* becoming durable, so the
// durable image reflects a failure between this persist and the previous
// one.
func (a *Arena) Persist(p Ptr, size int) {
	a.check(p, size)
	a.persistAt(p, size)
}

// persistAt is Persist without the bounds check; only the arena's own
// header persists (Reserve's cursor update) take this entry directly.
// It times the persist when the obs gate is on (one atomic flag load
// otherwise).
func (a *Arena) persistAt(p Ptr, size int) {
	if a.timing.Enabled() && a.sample.Hit() {
		start := time.Now()
		a.persistNow(p, size)
		a.persistH.Record(time.Since(start).Nanoseconds())
		return
	}
	a.persistNow(p, size)
}

// persistNow applies one persist: crash-injection check, latency charge,
// cache flush, media flush.
func (a *Arena) persistNow(p Ptr, size int) {
	if fa := a.failAfter.Load(); fa >= 0 && a.persists.Load() >= fa {
		panic(CrashError{Persists: a.persists.Load(), Site: a.PersistSite()})
	}
	a.persists.Add(1)
	first := int64(p) / lineSize
	last := (int64(p) + int64(size) - 1) / lineSize
	a.clock.OnPersist(int(last - first + 1))
	if a.cache != nil {
		a.cache.Flush(uint64(p), size)
	}
	a.persistRange(int64(p), int64(size))
}

// persistRange flushes lines without charging latency (internal metadata).
func (a *Arena) persistRange(off, size int64) {
	first := off / lineSize
	last := (off + size - 1) / lineSize
	a.persistedLines.Add(last - first + 1)
	a.backend.Persist(off, size)
	if !a.tracking {
		return
	}
	a.shadowMu.Lock()
	defer a.shadowMu.Unlock()
	for line := first; line <= last; line++ {
		lo := line * lineSize
		hi := min(lo+lineSize, int64(len(a.data)))
		// Word-wise atomic loads, not a slicecopy: the flush granule is a
		// whole line, so this reads neighbour words inside the line that a
		// concurrent writer may be atomically storing (e.g. WriteWords
		// initialising the adjacent object). Atomic loads make that pairing
		// race-free and untorn, matching ReadWords' contract.
		w := lo
		for ; w+8 <= hi; w += 8 {
			binary.LittleEndian.PutUint64(a.shadow[w:], le64(atomic.LoadUint64(a.word(Ptr(w)))))
		}
		copy(a.shadow[w:hi], a.data[w:hi])
		a.dirty[line/64].And(^uint64(1 << uint(line%64)))
	}
}

// FailAfterPersists arms crash injection: the (n+1)-th subsequent Persist
// (counting from the current persist count) panics with CrashError without
// taking effect. n = 0 crashes at the very next persist. Pass a negative
// value to disarm.
func (a *Arena) FailAfterPersists(n int64) {
	if n < 0 {
		a.failAfter.Store(-1)
		return
	}
	a.failAfter.Store(a.persists.Load() + n)
}

// DisarmCrash cancels any pending injected crash.
func (a *Arena) DisarmCrash() { a.failAfter.Store(-1) }

// SetPersistSite labels the persist boundaries executed from here until
// the next SetPersistSite call, so an injected crash can report *which*
// algorithm step it interrupted (CrashError.Site). Call sites pass short
// static strings ("insert.value-bit", "delete.leaf-bit", ...). The label
// is only recorded on Tracking arenas — crash injection requires Tracking
// anyway — so production and benchmark arenas pay a single branch. The
// store lives in a noinline helper: with it inlined here, escape analysis
// heap-allocates the string header at every (inlined) call site even when
// tracking is off, which showed up as most of Put's allocations.
func (a *Arena) SetPersistSite(site string) {
	if a.tracking {
		a.storePersistSite(site)
	}
}

//go:noinline
func (a *Arena) storePersistSite(site string) {
	a.site.Store(&site)
}

// PersistSite returns the current persist-site label ("" if none).
func (a *Arena) PersistSite() string {
	if p := a.site.Load(); p != nil {
		return *p
	}
	return ""
}

// Persists returns the number of completed Persist calls.
func (a *Arena) Persists() int64 { return a.persists.Load() }

// CrashOptions tune Crash's model of what survives a power failure.
type CrashOptions struct {
	// KeepDirtyProb is the probability that each dirty (written but not
	// persisted) cache line nevertheless reaches the media, modelling
	// spontaneous cache evictions. 0 is the pessimistic (and default)
	// model: nothing unflushed survives.
	KeepDirtyProb float64
	// Rand supplies randomness when KeepDirtyProb > 0.
	Rand *rand.Rand
}

// Crash simulates a power failure and returns a fresh Arena holding only
// the durable image. The original arena must not be used afterwards.
// Requires Tracking.
func (a *Arena) Crash(cfg Config, opts CrashOptions) (*Arena, error) {
	if !a.tracking {
		return nil, ErrNoTracking
	}
	a.shadowMu.Lock()
	img := make([]byte, len(a.shadow))
	copy(img, a.shadow)
	if opts.KeepDirtyProb > 0 && opts.Rand != nil {
		for line := int64(0); line < numLines(int64(len(a.data))); line++ {
			if a.dirty[line/64].Load()&(1<<uint(line%64)) == 0 {
				continue
			}
			if opts.Rand.Float64() < opts.KeepDirtyProb {
				lo := line * lineSize
				hi := min(lo+lineSize, int64(len(a.data)))
				copy(img[lo:hi], a.data[lo:hi])
			}
		}
	}
	a.shadowMu.Unlock()
	cfg.Size = int64(len(img))
	return Attach(img, cfg)
}

// DurableImage returns a copy of the current durable view. Requires
// Tracking. Useful for asserting exactly what would survive a crash now.
func (a *Arena) DurableImage() ([]byte, error) {
	if !a.tracking {
		return nil, ErrNoTracking
	}
	a.shadowMu.Lock()
	defer a.shadowMu.Unlock()
	img := make([]byte, len(a.shadow))
	copy(img, a.shadow)
	return img, nil
}

// Stats returns a snapshot of the arena's counters.
func (a *Arena) Stats() Stats {
	return Stats{
		Capacity:       int64(len(a.data)),
		Reserved:       a.Reserved(),
		Persists:       a.persists.Load(),
		PersistedLines: a.persistedLines.Load(),
		Reads:          a.reads.Load(),
		Writes:         a.writes.Load(),
		BytesWritten:   a.bytesWritten.Load(),
		Syncs:          a.syncs.Load(),
	}
}

// EnableTiming turns the Persist/Sync latency histograms on or off
// (core's EnableMetrics flips this together with its own op timing).
func (a *Arena) EnableTiming(on bool) { a.timing.Set(on) }

// TimingSnapshots returns the Persist and Sync latency histograms
// (all-zero until EnableTiming(true) has let them record).
func (a *Arena) TimingSnapshots() (persist, sync obs.HistSnapshot) {
	return a.persistH.Snapshot(), a.syncH.Snapshot()
}
