package cachesim

import (
	"sync"
	"testing"
)

func TestMissThenHit(t *testing.T) {
	c := New(1<<14, 4) // 16 KB, 4-way: 64 sets
	if m := c.Access(0, 8); m != 1 {
		t.Fatalf("first access: %d misses, want 1", m)
	}
	if m := c.Access(0, 8); m != 0 {
		t.Fatalf("second access: %d misses, want 0", m)
	}
	if m := c.Access(32, 8); m != 0 {
		t.Fatalf("same-line access: %d misses, want 0", m)
	}
	if !c.Contains(0) {
		t.Fatal("Contains(0) = false after access")
	}
}

func TestMultiLineAccess(t *testing.T) {
	c := New(1<<14, 4)
	// 100 bytes starting at offset 60 spans lines 0, 1, 2.
	if m := c.Access(60, 100); m != 3 {
		t.Fatalf("spanning access: %d misses, want 3", m)
	}
	if m := c.Access(64, 64); m != 0 {
		t.Fatalf("re-access line 1: %d misses, want 0", m)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1<<14, 4) // 64 sets; same set every 64 lines = every 4096 bytes
	const stride = 64 * 64
	// Fill one set's 4 ways.
	for i := 0; i < 4; i++ {
		c.Access(uint64(i*stride), 1)
	}
	for i := 0; i < 4; i++ {
		if m := c.Access(uint64(i*stride), 1); m != 0 {
			t.Fatalf("way %d evicted too early", i)
		}
	}
	// A 5th conflicting line evicts the LRU (line 0... but we just touched
	// them in order 0..3, so LRU is 0).
	c.Access(4*stride, 1)
	if c.Contains(0) {
		t.Fatal("LRU line survived eviction")
	}
	if !c.Contains(4 * stride) {
		t.Fatal("newly inserted line missing")
	}
	if !c.Contains(3 * stride) {
		t.Fatal("MRU line was evicted")
	}
}

func TestFlushEvicts(t *testing.T) {
	c := New(1<<14, 4)
	c.Access(128, 64)
	if !c.Contains(128) {
		t.Fatal("line not cached")
	}
	c.Flush(128, 64)
	if c.Contains(128) {
		t.Fatal("Flush did not evict")
	}
	if m := c.Access(128, 1); m != 1 {
		t.Fatalf("post-flush access: %d misses, want 1", m)
	}
}

func TestFlushAbsentLineHarmless(t *testing.T) {
	c := New(1<<14, 4)
	c.Flush(1<<20, 256) // nothing cached there
	if h, m := c.Hits(), c.Misses(); h != 0 || m != 0 {
		t.Fatalf("flush changed counters: hits=%d misses=%d", h, m)
	}
}

func TestCounters(t *testing.T) {
	c := New(1<<14, 4)
	c.Access(0, 1)  // miss
	c.Access(0, 1)  // hit
	c.Access(64, 1) // miss
	if c.Misses() != 2 || c.Hits() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/2", c.Hits(), c.Misses())
	}
	c.Reset()
	if c.Misses() != 0 || c.Hits() != 0 || c.Contains(0) {
		t.Fatal("Reset incomplete")
	}
}

func TestDefaultGeometry(t *testing.T) {
	c := Default()
	if c.numSets != 32768 || c.ways != 8 {
		t.Fatalf("Default geometry = %d sets × %d ways", c.numSets, c.ways)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 8) },
		func() { New(1<<20, 0) },
		func() { New(3*64*8, 8) }, // 3 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry did not panic")
				}
			}()
			f()
		}()
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := Default()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Access(uint64((w*10000+i)*64), 8)
				if i%16 == 0 {
					c.Flush(uint64(i*64), 64)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Hits()+c.Misses() < 80000 {
		t.Fatalf("counters lost updates: hits+misses = %d", c.Hits()+c.Misses())
	}
}
