// Package cachesim models a CPU last-level cache over the simulated PM
// address space.
//
// The paper's read-latency emulation (Eq. 1-2) only charges the PM-DRAM
// read delta for loads that actually stall the CPU, i.e. loads that miss
// the cache hierarchy. We model the 20 MB shared L3 of the paper's Xeon
// E5-2640 v3 as a set-associative cache with 64-byte lines and LRU
// replacement; package pmem consults it on every PM load to decide whether
// the load pays the PM read penalty, and evicts lines on every persist
// (CLFLUSH invalidates the flushed lines, which the paper identifies as the
// dominant cost of the {MFENCE, CLFLUSH, MFENCE} sequence).
package cachesim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// LineSize is the modelled cache-line size in bytes.
const LineSize = 64

const lineShift = 6

// numStripes is the number of lock stripes guarding the sets. Must be a
// power of two.
const numStripes = 256

// Cache is a set-associative cache with LRU replacement. All methods are
// safe for concurrent use; distinct sets proceed mostly in parallel thanks
// to striped locking.
type Cache struct {
	ways    int
	numSets uint64
	// sets holds tags, numSets*ways entries, each set's ways kept in LRU
	// order (index 0 = most recently used). Tag 0 means "empty"; addresses
	// are offset by one line to keep real tags nonzero.
	sets    []uint64
	stripes [numStripes]sync.Mutex

	hits   atomic.Int64
	misses atomic.Int64
}

// New returns a cache of sizeBytes capacity with the given associativity.
// sizeBytes must be a multiple of ways*LineSize and the resulting set count
// must be a power of two; New panics otherwise, since cache geometry is a
// build-time decision.
func New(sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cachesim: invalid geometry size=%d ways=%d", sizeBytes, ways))
	}
	lines := sizeBytes / LineSize
	if lines%ways != 0 {
		panic(fmt.Sprintf("cachesim: size %d not divisible into %d ways", sizeBytes, ways))
	}
	numSets := lines / ways
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cachesim: set count %d is not a power of two", numSets))
	}
	return &Cache{
		ways:    ways,
		numSets: uint64(numSets),
		sets:    make([]uint64, numSets*ways),
	}
}

// Default returns the paper platform's L3 model: 20 MB, 8-way, 64 B lines.
// 20 MB / 64 B / 8 ways = 40960 sets, which is not a power of two, so we
// round capacity to 16 MB (32768 sets) — the closest power-of-two geometry;
// the 20% capacity difference does not change any of the paper's trends.
func Default() *Cache {
	return New(16<<20, 8)
}

// setIndex maps a line number to its set.
func (c *Cache) setIndex(line uint64) uint64 {
	return line & (c.numSets - 1)
}

// Access touches the byte range [addr, addr+size) and returns the number of
// line misses it caused. Lines touched become most-recently-used.
func (c *Cache) Access(addr uint64, size int) int {
	if size <= 0 {
		return 0
	}
	first := addr >> lineShift
	last := (addr + uint64(size) - 1) >> lineShift
	misses := 0
	for line := first; line <= last; line++ {
		if c.touch(line) {
			misses++
		}
	}
	if misses > 0 {
		c.misses.Add(int64(misses))
	}
	if hits := int(last-first) + 1 - misses; hits > 0 {
		c.hits.Add(int64(hits))
	}
	return misses
}

// touch brings one line into the cache, returning true on a miss.
func (c *Cache) touch(line uint64) bool {
	tag := line + 1 // keep 0 as the empty marker
	set := c.setIndex(line)
	base := int(set) * c.ways
	stripe := &c.stripes[set&(numStripes-1)]
	stripe.Lock()
	defer stripe.Unlock()

	ways := c.sets[base : base+c.ways]
	for i, t := range ways {
		if t == tag {
			// Hit: move to MRU position.
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			return false
		}
	}
	// Miss: evict LRU (last slot), insert at MRU.
	copy(ways[1:], ways[:c.ways-1])
	ways[0] = tag
	return true
}

// Flush evicts every line overlapping [addr, addr+size), modelling CLFLUSH.
func (c *Cache) Flush(addr uint64, size int) {
	if size <= 0 {
		return
	}
	first := addr >> lineShift
	last := (addr + uint64(size) - 1) >> lineShift
	for line := first; line <= last; line++ {
		tag := line + 1
		set := c.setIndex(line)
		base := int(set) * c.ways
		stripe := &c.stripes[set&(numStripes-1)]
		stripe.Lock()
		ways := c.sets[base : base+c.ways]
		for i, t := range ways {
			if t == tag {
				// Remove and compact, keeping LRU order of the rest.
				copy(ways[i:], ways[i+1:])
				ways[c.ways-1] = 0
				break
			}
		}
		stripe.Unlock()
	}
}

// Contains reports whether the line holding addr is currently cached.
// Intended for tests; it does not update recency or counters.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> lineShift
	tag := line + 1
	set := c.setIndex(line)
	base := int(set) * c.ways
	stripe := &c.stripes[set&(numStripes-1)]
	stripe.Lock()
	defer stripe.Unlock()
	for _, t := range c.sets[base : base+c.ways] {
		if t == tag {
			return true
		}
	}
	return false
}

// Reset empties the cache and zeroes counters.
func (c *Cache) Reset() {
	for i := range c.stripes {
		c.stripes[i].Lock()
	}
	clear(c.sets)
	for i := range c.stripes {
		c.stripes[i].Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
}

// Hits returns the cumulative hit count.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the cumulative miss count.
func (c *Cache) Misses() int64 { return c.misses.Load() }
