package modelcheck

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/casl-sdsu/hart/internal/core"
)

// model is the plain in-memory reference: exactly a map, nothing shared
// with the implementation under test.
type model map[string]string

// clone copies the model.
func (m model) clone() model {
	nu := make(model, len(m))
	for k, v := range m {
		nu[k] = v
	}
	return nu
}

// apply mutates the model with one operation (scans are no-ops).
func (m model) apply(op Op) {
	switch op.Kind {
	case OpPut:
		m[string(op.Key)] = string(op.Value)
	case OpDelete:
		delete(m, string(op.Key))
	case OpBatch:
		for _, r := range op.Batch {
			m[string(r.Key)] = string(r.Value)
		}
	}
}

// scan returns the model's [start, end) keys, ascending.
func (m model) scan(start, end []byte) []core.Record {
	var out []core.Record
	for k, v := range m {
		kb := []byte(k)
		if start != nil && bytes.Compare(kb, start) < 0 {
			continue
		}
		if end != nil && bytes.Compare(kb, end) >= 0 {
			continue
		}
		out = append(out, core.Record{Key: kb, Value: []byte(v)})
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	return out
}

// equal reports whether the model matches a dumped store state.
func (m model) equal(dump model) bool {
	if len(m) != len(dump) {
		return false
	}
	for k, v := range m {
		if dump[k] != v {
			return false
		}
	}
	return true
}

// diff describes the first discrepancy between model and dump (for
// failure messages; both sides sorted for stability).
func (m model) diff(dump model) string {
	var keys []string
	seen := map[string]bool{}
	for k := range m {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range dump {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		mv, mok := m[k]
		dv, dok := dump[k]
		switch {
		case !dok:
			return fmt.Sprintf("key %q: model has %q, store missing", k, mv)
		case !mok:
			return fmt.Sprintf("key %q: store has %q, model missing", k, dv)
		case mv != dv:
			return fmt.Sprintf("key %q: model %q, store %q", k, mv, dv)
		}
	}
	return "equal"
}

// legalStates enumerates every state the store may legally expose after
// a crash during op (applied to pre): the op not applied, fully applied,
// and — for a batch — every sorted prefix of its records, because
// PutBatch applies records in sorted key order and each record commits
// individually.
func legalStates(pre model, op Op) []model {
	states := []model{pre}
	switch op.Kind {
	case OpPut, OpDelete:
		post := pre.clone()
		post.apply(op)
		states = append(states, post)
	case OpBatch:
		recs := make([]core.Record, len(op.Batch))
		copy(recs, op.Batch)
		// Stable, like PutBatch itself, so duplicate keys enumerate their
		// prefix states in submission order.
		sort.SliceStable(recs, func(i, j int) bool { return bytes.Compare(recs[i].Key, recs[j].Key) < 0 })
		cur := pre
		for _, r := range recs {
			cur = cur.clone()
			cur[string(r.Key)] = string(r.Value)
			states = append(states, cur)
		}
	}
	return states
}
