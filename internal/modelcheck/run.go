package modelcheck

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// Config tunes one checker run.
type Config struct {
	// ArenaSize is the simulated PM capacity (default 4 MiB — small, so
	// histories stay cheap to replay hundreds of times).
	ArenaSize int64
	// UnloggedUpdates selects the store's unlogged update mechanism, so
	// the sweep covers both Algorithm 3 and the paper's measured variant.
	UnloggedUpdates bool
	// LegacyWritePath selects the store's pre-striping write path
	// (stripe-0 allocation, serialised micro-log pool, per-key batch
	// publication), so the sweep covers the baseline as well as the
	// striped default.
	LegacyWritePath bool
	// RecoveryWorkers parallelises the store's recovery, so the sweep
	// covers the fanned-out scan and build (recovery's persist sequence
	// is deterministic at any worker count — exactly what this checks).
	RecoveryWorkers int
	// LazyRecovery selects the store's lazy per-shard rebuild, so the
	// sweep covers serving and re-crashing from a partially built
	// directory (verifyRecovered's dump drains the pending shards).
	LazyRecovery bool
	// ReentrantRecovery additionally sweeps every persist boundary of
	// recovery itself at every crash point (assertion (c)).
	ReentrantRecovery bool
	// FileReattach additionally routes every crash image through the file
	// backend: the durable bytes are written to a file, reopened via
	// pmem.OpenFileArena and recovered from there, asserting the durable
	// medium is interchangeable — what a crash image recovers to cannot
	// depend on whether it sits in memory or on disk.
	FileReattach bool
	// FileReattachDir is the directory for FileReattach's scratch files
	// (default: the system temp dir). Tests pass t.TempDir().
	FileReattachDir string
	// MaxRecoveryPersists bounds the re-entrant sweep per crash point; a
	// recovery that persists more than this fails the run (runaway
	// recovery). Default 256.
	MaxRecoveryPersists int
	// ElasticDirectory enables the store's hot-shard splitting and
	// cold-group merging, so the sweep covers crashes astride the
	// superblock's split-slot persists and recovery under a half-split
	// geometry. Splits and merges trigger deterministically: heat is
	// counted under the shard lock, and the checker replays ops
	// single-threaded. SplitOps/MergeRecords tune the thresholds — tests
	// set them very low so short histories actually change geometry.
	ElasticDirectory bool
	SplitOps         int
	MergeRecords     int
}

func (c Config) withDefaults() Config {
	if c.ArenaSize == 0 {
		c.ArenaSize = 4 << 20
	}
	if c.MaxRecoveryPersists == 0 {
		c.MaxRecoveryPersists = 256
	}
	return c
}

func (c Config) options() core.Options {
	return core.Options{
		ArenaSize:       c.ArenaSize,
		Tracking:        true,
		UnloggedUpdates: c.UnloggedUpdates,
		LegacyWritePath: c.LegacyWritePath,
		RecoveryWorkers: c.RecoveryWorkers,
		LazyRecovery:    c.LazyRecovery,

		ElasticDirectory: c.ElasticDirectory,
		SplitOps:         c.SplitOps,
		MergeRecords:     c.MergeRecords,
	}
}

// RunSeed generates a history from seed and checks it.
func RunSeed(seed int64, nops int, cfg Config) error {
	hist := Generate(rand.New(rand.NewSource(seed)), nops)
	if err := RunHistory(hist, cfg); err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}
	return nil
}

// RunHistory executes the full check for one history: the live
// differential pass, then the crash sweep over every persist boundary.
func RunHistory(hist History, cfg Config) error {
	cfg = cfg.withDefaults()
	states, cum, base, err := differentialRun(hist, cfg)
	if err != nil {
		return err
	}
	if len(cum) == 0 || cum[len(cum)-1] == base {
		return nil // history persisted nothing; no boundaries to sweep
	}
	total := cum[len(cum)-1]
	for b := base; b < total; b++ {
		if err := checkBoundary(hist, cfg, states, cum, base, b); err != nil {
			return err
		}
	}
	return nil
}

// differentialRun executes the history once, op by op, against both the
// store and the model, verifying results, point lookups, full contents
// and both scan directions after every op. It returns the model states
// (states[i] = model after the first i ops), the cumulative arena
// persist count after each op, and the post-construction baseline.
func differentialRun(hist History, cfg Config) ([]model, []int64, int64, error) {
	h, err := core.New(cfg.options())
	if err != nil {
		return nil, nil, 0, err
	}
	base := h.Arena().Persists()
	states := []model{{}}
	cum := make([]int64, len(hist.Ops))
	for i, op := range hist.Ops {
		m := states[len(states)-1]
		if err := applyChecked(h, m, op); err != nil {
			return nil, nil, 0, fmt.Errorf("op %d %s: %w", i, op, err)
		}
		nm := m.clone()
		nm.apply(op)
		states = append(states, nm)
		cum[i] = h.Arena().Persists()

		if dump := dumpStore(h); !nm.equal(dump) {
			return nil, nil, 0, fmt.Errorf("op %d %s: store diverged from model: %s", i, op, nm.diff(dump))
		}
		if h.Len() != len(nm) {
			return nil, nil, 0, fmt.Errorf("op %d %s: Len %d, model %d", i, op, h.Len(), len(nm))
		}
	}
	if err := h.Check(); err != nil {
		return nil, nil, 0, fmt.Errorf("fsck after history: %w", err)
	}
	return states, cum, base, nil
}

// applyChecked runs one op on the store, validating its result against
// the model (which still holds the pre-op state).
func applyChecked(h *core.HART, m model, op Op) error {
	switch op.Kind {
	case OpPut:
		return h.Put(op.Key, op.Value)
	case OpDelete:
		_, exists := m[string(op.Key)]
		err := h.Delete(op.Key)
		if exists && err != nil {
			return fmt.Errorf("delete of live key: %w", err)
		}
		if !exists && !errors.Is(err, core.ErrNotFound) {
			return fmt.Errorf("delete of missing key = %v, want ErrNotFound", err)
		}
	case OpBatch:
		n, err := h.PutBatch(op.Batch)
		if err != nil {
			return err
		}
		if n != len(op.Batch) {
			return fmt.Errorf("batch applied %d of %d", n, len(op.Batch))
		}
	case OpScan, OpScanReverse:
		want := m.scan(op.Start, op.End)
		var got []core.Record
		visit := func(k, v []byte) bool {
			got = append(got, core.Record{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
			return true
		}
		if op.Kind == OpScan {
			h.Scan(op.Start, op.End, visit)
		} else {
			h.ScanReverse(op.Start, op.End, visit)
			for l, r := 0, len(got)-1; l < r; l, r = l+1, r-1 {
				got[l], got[r] = got[r], got[l]
			}
		}
		if len(got) != len(want) {
			return fmt.Errorf("scan returned %d records, model %d", len(got), len(want))
		}
		for i := range want {
			if string(got[i].Key) != string(want[i].Key) || string(got[i].Value) != string(want[i].Value) {
				return fmt.Errorf("scan record %d = (%q,%q), model (%q,%q)",
					i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
			}
		}
	}
	return nil
}

// applyQuiet replays one op ignoring its result (replays only care about
// the persist sequence; results were validated by the differential pass).
func applyQuiet(h *core.HART, op Op) {
	switch op.Kind {
	case OpPut:
		_ = h.Put(op.Key, op.Value)
	case OpDelete:
		_ = h.Delete(op.Key)
	case OpBatch:
		_, _ = h.PutBatch(op.Batch)
	case OpScan:
		h.Scan(op.Start, op.End, func(_, _ []byte) bool { return true })
	case OpScanReverse:
		h.ScanReverse(op.Start, op.End, func(_, _ []byte) bool { return true })
	}
}

// dumpStore materialises the store's full contents via an unbounded
// ascending scan.
func dumpStore(h *core.HART) model {
	dump := model{}
	h.Scan(nil, nil, func(k, v []byte) bool {
		dump[string(k)] = string(v)
		return true
	})
	return dump
}

// crashError extracts an injected-crash panic, repanicking on anything
// else (a genuine bug must not be swallowed as a crash point).
func crashError(r any) pmem.CrashError {
	if r == nil {
		return pmem.CrashError{Persists: -1}
	}
	if ce, ok := r.(pmem.CrashError); ok {
		return ce
	}
	panic(r)
}

// checkBoundary replays the history with a crash injected at absolute
// persist index b, recovers the durable image and asserts atomicity,
// fsck cleanliness, and (optionally) re-entrant recovery.
func checkBoundary(hist History, cfg Config, states []model, cum []int64, base, b int64) error {
	h, err := core.New(cfg.options())
	if err != nil {
		return err
	}
	ar := h.Arena()
	if got := ar.Persists(); got != base {
		return fmt.Errorf("boundary %d: store construction persisted %d times, first run %d — replay is nondeterministic", b, got, base)
	}
	// FailAfterPersists counts from the current (== base) persist count,
	// so the absolute boundary index b arms as b-base.
	ar.FailAfterPersists(b - base)

	opIdx := -1
	crashed := false
	var site string
	func() {
		defer func() {
			if r := recover(); r != nil {
				ce := crashError(r)
				crashed = true
				site = ce.Site
			}
		}()
		for i, op := range hist.Ops {
			opIdx = i
			applyQuiet(h, op)
		}
	}()
	if !crashed {
		return fmt.Errorf("boundary %d: replay completed without crashing (history persisted %d..%d on first run) — replay is nondeterministic", b, base, cum[len(cum)-1])
	}
	k := opIdx
	lo := base
	if k > 0 {
		lo = cum[k-1]
	}
	if b < lo || b >= cum[k] {
		return fmt.Errorf("boundary %d: crash landed in op %d (persists %d..%d) — persist sequence differs from first run", b, k, lo, cum[k])
	}
	candidates := legalStates(states[k], hist.Ops[k])

	img, err := ar.Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	if err != nil {
		return fmt.Errorf("boundary %d: crash image: %w", b, err)
	}
	where := fmt.Sprintf("boundary %d (site %s, during op %d %s)", b, site, k, hist.Ops[k])
	if err := verifyRecovered(img, cfg, candidates, where); err != nil {
		return err
	}

	if !cfg.ReentrantRecovery && !cfg.FileReattach {
		return nil
	}
	imgBytes, err := ar.DurableImage()
	if err != nil {
		return fmt.Errorf("boundary %d: durable image: %w", b, err)
	}
	if cfg.FileReattach {
		if err := verifyFileReattach(imgBytes, cfg, candidates, where); err != nil {
			return err
		}
	}
	if !cfg.ReentrantRecovery {
		return nil
	}
	return sweepRecovery(imgBytes, cfg, candidates, b, site)
}

// verifyRecovered opens a crash image and asserts the recovered contents
// match one legal state, both scan directions agree, and fsck passes.
func verifyRecovered(img *pmem.Arena, cfg Config, candidates []model, where string) error {
	hr, err := openNoCrash(img, cfg)
	if err != nil {
		return fmt.Errorf("%s: recovery failed: %w", where, err)
	}
	dump := dumpStore(hr)
	matched := -1
	for i, cand := range candidates {
		if cand.equal(dump) {
			matched = i
			break
		}
	}
	if matched < 0 {
		return fmt.Errorf("%s: recovered state matches no legal state; vs pre-op state: %s",
			where, candidates[0].diff(dump))
	}
	rev := model{}
	hr.ScanReverse(nil, nil, func(k, v []byte) bool {
		rev[string(k)] = string(v)
		return true
	})
	if !dump.equal(rev) {
		return fmt.Errorf("%s: ScanReverse disagrees with Scan after recovery", where)
	}
	if hr.Len() != len(dump) {
		return fmt.Errorf("%s: recovered Len %d but %d records scanned", where, hr.Len(), len(dump))
	}
	if err := hr.Check(); err != nil {
		return fmt.Errorf("%s: fsck after recovery: %w", where, err)
	}
	return nil
}

// verifyFileReattach writes a crash image's durable bytes to a scratch
// file, reopens it through the file backend and asserts the recovered
// contents match one legal state — the same assertion verifyRecovered
// makes for the in-memory attach, proving the media interchangeable.
func verifyFileReattach(imgBytes []byte, cfg Config, candidates []model, where string) error {
	f, err := os.CreateTemp(cfg.FileReattachDir, "modelcheck-*.hart")
	if err != nil {
		return fmt.Errorf("%s: file reattach: %w", where, err)
	}
	path := f.Name()
	defer os.Remove(path)
	_, werr := f.Write(imgBytes)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("%s: file reattach: write %s: %w", where, path, werr)
	}
	arena, fresh, err := pmem.OpenFileArena(path, pmem.Config{})
	if err != nil {
		return fmt.Errorf("%s: file reattach: %w", where, err)
	}
	if fresh {
		arena.Close()
		return fmt.Errorf("%s: file reattach: image file read back as fresh", where)
	}
	hr, err := core.Open(arena, cfg.options())
	if err != nil {
		arena.Close()
		return fmt.Errorf("%s: file reattach: recovery failed: %w", where, err)
	}
	dump := dumpStore(hr)
	matched := false
	for _, cand := range candidates {
		if cand.equal(dump) {
			matched = true
			break
		}
	}
	if !matched {
		return fmt.Errorf("%s: file reattach: recovered state matches no legal state; vs pre-op state: %s",
			where, candidates[0].diff(dump))
	}
	if err := hr.Check(); err != nil {
		return fmt.Errorf("%s: file reattach: fsck: %w", where, err)
	}
	return hr.Close()
}

// openNoCrash opens a store, converting an (unexpected) injected-crash
// panic into an error.
func openNoCrash(img *pmem.Arena, cfg Config) (h *core.HART, err error) {
	defer func() {
		if r := recover(); r != nil {
			ce := crashError(r)
			err = fmt.Errorf("unexpected injected crash at persist %d (site %s)", ce.Persists, ce.Site)
		}
	}()
	return core.Open(img, cfg.options())
}

// sweepRecovery re-runs recovery from the same crash image with a second
// crash injected at every persist boundary of recovery itself, asserting
// that recovering from *that* crash still lands in a legal state. The
// sweep walks r upward until a recovery attempt completes without
// hitting the injection, which bounds it by recovery's persist count.
func sweepRecovery(imgBytes []byte, cfg Config, candidates []model, b int64, site string) error {
	for r := 0; ; r++ {
		if r > cfg.MaxRecoveryPersists {
			return fmt.Errorf("boundary %d: recovery persisted more than %d times", b, cfg.MaxRecoveryPersists)
		}
		ar, err := pmem.Attach(append([]byte(nil), imgBytes...), pmem.Config{Tracking: true})
		if err != nil {
			return fmt.Errorf("boundary %d: attach: %w", b, err)
		}
		ar.FailAfterPersists(int64(r))

		crashed := false
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					crashError(rec)
					crashed = true
				}
			}()
			_, err = core.Open(ar, cfg.options())
		}()
		if !crashed {
			if err != nil {
				return fmt.Errorf("boundary %d, recovery boundary %d: open: %w", b, r, err)
			}
			return nil // recovery completed before the injection: sweep done
		}
		img2, cerr := ar.Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
		if cerr != nil {
			return fmt.Errorf("boundary %d, recovery boundary %d: crash image: %w", b, r, cerr)
		}
		if err := verifyRecovered(img2, cfg, candidates,
			fmt.Sprintf("boundary %d (site %s) + recovery crash at %d", b, site, r)); err != nil {
			return err
		}
	}
}
