// Package modelcheck is HART's differential crash-consistency checker.
//
// A checker run takes an operation history (randomly generated, decoded
// from fuzz bytes, or hand-written), executes it against a real store and
// a plain in-memory reference model in lockstep, and then re-executes it
// once per persist boundary with pmem's crash injection armed so that the
// store dies at that exact persist. Each crash image is recovered and the
// recovered contents are compared against the model's legal states at the
// crash point; the recovered store must also pass HART's fsck, and — in
// re-entrant mode — survive a second crash placed at every persist
// boundary of recovery itself. See DESIGN.md section 9.
package modelcheck

import (
	"fmt"
	"math/rand"

	"github.com/casl-sdsu/hart/internal/core"
)

// OpKind enumerates history operations.
type OpKind int

// History operation kinds. Put covers both insert and (logged or
// unlogged, per Config) update depending on whether the key exists.
const (
	OpPut OpKind = iota
	OpDelete
	OpBatch
	OpScan
	OpScanReverse
	numOpKinds
)

// Op is one step of a history.
type Op struct {
	// Kind selects the operation.
	Kind OpKind
	// Key and Value parameterise Put; Key alone parameterises Delete.
	Key, Value []byte
	// Batch holds PutBatch records. Duplicate keys are allowed: PutBatch
	// sorts stably, so duplicates apply in submission order and replays
	// persist identically.
	Batch []core.Record
	// Start and End bound Scan/ScanReverse (nil = unbounded).
	Start, End []byte
}

// History is an operation sequence, replayable deterministically.
type History struct {
	// Ops is the sequence.
	Ops []Op
}

// keyUniverse is the closed key set histories draw from. Small enough
// that updates and deletes hit live keys often, spread across several
// hash-directory shards (2-byte hash keys), and including keys that are
// exactly a hash key ("aa", "ab") and keys shorter than one ("a") to
// exercise the scan boundary cases.
var keyUniverse = [][]byte{
	[]byte("a"),
	[]byte("aa"), []byte("aab"), []byte("aac"), []byte("aabcd"),
	[]byte("ab"), []byte("abb"),
	[]byte("ba"), []byte("bab"),
	[]byte("ca"), []byte("cab"), []byte("cabinetry-key"),
}

// genValue builds a deterministic value of 1..MaxValueLen bytes.
func genValue(r *rand.Rand) []byte {
	n := 1 + r.Intn(core.MaxValueLen)
	v := make([]byte, n)
	for i := range v {
		v[i] = byte('0' + r.Intn(75))
	}
	return v
}

// genBound returns a scan bound: nil, a universe key, or a neighbour.
func genBound(r *rand.Rand) []byte {
	switch r.Intn(4) {
	case 0:
		return nil
	case 1:
		k := keyUniverse[r.Intn(len(keyUniverse))]
		return append([]byte(nil), k...)
	case 2:
		k := keyUniverse[r.Intn(len(keyUniverse))]
		return append(append([]byte(nil), k...), 0)
	default:
		k := append([]byte(nil), keyUniverse[r.Intn(len(keyUniverse))]...)
		k[len(k)-1]++
		return k
	}
}

// Generate builds a pseudo-random history of n operations.
func Generate(r *rand.Rand, n int) History {
	h := History{Ops: make([]Op, 0, n)}
	for len(h.Ops) < n {
		switch p := r.Intn(100); {
		case p < 50: // Put (insert or update)
			h.Ops = append(h.Ops, Op{
				Kind:  OpPut,
				Key:   keyUniverse[r.Intn(len(keyUniverse))],
				Value: genValue(r),
			})
		case p < 70: // Delete (often of a live key, sometimes missing)
			h.Ops = append(h.Ops, Op{
				Kind: OpDelete,
				Key:  keyUniverse[r.Intn(len(keyUniverse))],
			})
		case p < 85: // Batch of 2..8 distinct keys, spanning several shards
			nrec := 2 + r.Intn(7)
			seen := map[string]bool{}
			var recs []core.Record
			for len(recs) < nrec {
				k := keyUniverse[r.Intn(len(keyUniverse))]
				if seen[string(k)] {
					continue
				}
				seen[string(k)] = true
				recs = append(recs, core.Record{Key: k, Value: genValue(r)})
			}
			h.Ops = append(h.Ops, Op{Kind: OpBatch, Batch: recs})
		case p < 93:
			h.Ops = append(h.Ops, Op{Kind: OpScan, Start: genBound(r), End: genBound(r)})
		default:
			h.Ops = append(h.Ops, Op{Kind: OpScanReverse, Start: genBound(r), End: genBound(r)})
		}
	}
	return h
}

// maxFuzzOps bounds FromBytes histories so a pathological fuzz input
// cannot make a single check run unboundedly long.
const maxFuzzOps = 48

// FromBytes decodes an arbitrary byte string into a history — the fuzz
// front end. Every input is valid; the decoder consumes bytes greedily
// and stops at the end of data or maxFuzzOps.
func FromBytes(data []byte) History {
	var h History
	next := func() (byte, bool) {
		if len(data) == 0 {
			return 0, false
		}
		b := data[0]
		data = data[1:]
		return b, true
	}
	key := func(b byte) []byte { return keyUniverse[int(b)%len(keyUniverse)] }
	value := func(lb, seed byte) []byte {
		n := 1 + int(lb)%core.MaxValueLen
		v := make([]byte, n)
		for i := range v {
			v[i] = seed + byte(i)
		}
		return v
	}
	bound := func(b, kb byte) []byte {
		switch b % 3 {
		case 0:
			return nil
		case 1:
			return append([]byte(nil), key(kb)...)
		default:
			k := append([]byte(nil), key(kb)...)
			k[len(k)-1] ^= b
			if len(k) == 0 {
				return nil
			}
			return k
		}
	}

	for len(h.Ops) < maxFuzzOps {
		kb, ok := next()
		if !ok {
			break
		}
		switch OpKind(kb % byte(numOpKinds)) {
		case OpPut:
			k, ok1 := next()
			l, ok2 := next()
			s, ok3 := next()
			if !ok1 || !ok2 || !ok3 {
				return h
			}
			h.Ops = append(h.Ops, Op{Kind: OpPut, Key: key(k), Value: value(l, s)})
		case OpDelete:
			k, ok1 := next()
			if !ok1 {
				return h
			}
			h.Ops = append(h.Ops, Op{Kind: OpDelete, Key: key(k)})
		case OpBatch:
			nb, ok1 := next()
			if !ok1 {
				return h
			}
			nrec := 2 + int(nb)%7
			seen := map[string]bool{}
			var recs []core.Record
			for i := 0; i < nrec; i++ {
				k, ok1 := next()
				l, ok2 := next()
				s, ok3 := next()
				if !ok1 || !ok2 || !ok3 {
					break
				}
				if seen[string(key(k))] {
					continue
				}
				seen[string(key(k))] = true
				recs = append(recs, core.Record{Key: key(k), Value: value(l, s)})
			}
			if len(recs) > 0 {
				h.Ops = append(h.Ops, Op{Kind: OpBatch, Batch: recs})
			}
		case OpScan, OpScanReverse:
			b1, ok1 := next()
			k1, ok2 := next()
			b2, ok3 := next()
			k2, ok4 := next()
			if !ok1 || !ok2 || !ok3 || !ok4 {
				return h
			}
			h.Ops = append(h.Ops, Op{
				Kind:  OpKind(kb % byte(numOpKinds)),
				Start: bound(b1, k1),
				End:   bound(b2, k2),
			})
		}
	}
	return h
}

// String renders an op compactly for failure messages.
func (o Op) String() string {
	switch o.Kind {
	case OpPut:
		return fmt.Sprintf("Put(%q, %q)", o.Key, o.Value)
	case OpDelete:
		return fmt.Sprintf("Delete(%q)", o.Key)
	case OpBatch:
		return fmt.Sprintf("Batch(%d records)", len(o.Batch))
	case OpScan:
		return fmt.Sprintf("Scan(%q, %q)", o.Start, o.End)
	case OpScanReverse:
		return fmt.Sprintf("ScanReverse(%q, %q)", o.Start, o.End)
	}
	return "?"
}
