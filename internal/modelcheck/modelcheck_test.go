package modelcheck

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"github.com/casl-sdsu/hart/internal/core"
)

// -quick=false switches to the deep sweep: more seeds, longer histories.
// The default quick mode is the deterministic CI gate.
var quick = flag.Bool("quick", true, "run the short deterministic model-check suite")

func quickParams() (seeds, ops int) {
	if *quick {
		return 4, 18
	}
	return 64, 60
}

// TestModelCheckLoggedUpdates sweeps histories against the default
// (Algorithm 3, micro-logged) update path, with re-entrant recovery.
func TestModelCheckLoggedUpdates(t *testing.T) {
	seeds, ops := quickParams()
	for seed := 0; seed < seeds; seed++ {
		if err := RunSeed(int64(seed), ops, Config{ReentrantRecovery: true}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestModelCheckFileReattach routes every crash image of a seed sweep
// through the file backend as well: the durable bytes are written to a
// real file, reopened via pmem.OpenFileArena and recovered from there.
// What a crash image recovers to must not depend on the medium it sits
// on.
func TestModelCheckFileReattach(t *testing.T) {
	seeds, ops := quickParams()
	if seeds > 2 {
		seeds = 2 // each boundary pays a file write; two seeds keep CI honest and fast
	}
	dir := t.TempDir()
	for seed := 0; seed < seeds; seed++ {
		if err := RunSeed(int64(4000+seed), ops, Config{FileReattach: true, FileReattachDir: dir}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestModelCheckUnloggedUpdates sweeps the same space with the paper's
// measured unlogged pointer-swing update mechanism.
func TestModelCheckUnloggedUpdates(t *testing.T) {
	seeds, ops := quickParams()
	for seed := 0; seed < seeds; seed++ {
		if err := RunSeed(int64(1000+seed), ops, Config{UnloggedUpdates: true, ReentrantRecovery: true}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestModelCheckChunkRecycle forces a history through the recycle-log
// unlink path: enough inserts to fill multiple 56-object leaf chunks,
// then deletion of every key, so the sweep crosses chunk recycling at
// every persist boundary. The key universe is too small for Generate to
// reach this, so the history is written out longhand.
func TestModelCheckChunkRecycle(t *testing.T) {
	var hist History
	nkeys := 2*56 + 9 // three leaf chunks in play
	if *quick {
		nkeys = 56 + 9 // two chunks: still crosses a chunk unlink
	}
	keys := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("rc%04d", i))
		hist.Ops = append(hist.Ops, Op{Kind: OpPut, Key: keys[i], Value: []byte{byte(i), 1}})
	}
	// Delete back-to-front so the last chunk empties (and recycles) first.
	for i := len(keys) - 1; i >= 0; i-- {
		hist.Ops = append(hist.Ops, Op{Kind: OpDelete, Key: keys[i]})
	}
	if err := RunHistory(hist, Config{ReentrantRecovery: !*quick}); err != nil {
		t.Fatal(err)
	}
}

// TestModelCheckMixedWorstCase is one fixed, dense history touching every
// op kind, checked with re-entrant recovery in both update modes.
func TestModelCheckMixedWorstCase(t *testing.T) {
	hist := History{Ops: []Op{
		{Kind: OpPut, Key: []byte("aa"), Value: []byte("one")},
		{Kind: OpPut, Key: []byte("aab"), Value: []byte("two")},
		{Kind: OpPut, Key: []byte("aa"), Value: []byte("three")}, // update
		{Kind: OpBatch, Batch: []core.Record{
			{Key: []byte("ba"), Value: []byte("four")},
			{Key: []byte("aab"), Value: []byte("five")}, // update inside batch
			{Key: []byte("ca"), Value: []byte("six")},
		}},
		{Kind: OpScanReverse, End: []byte("ba")}, // end == hash key boundary
		{Kind: OpDelete, Key: []byte("aa")},
		{Kind: OpPut, Key: []byte("aa"), Value: []byte("seven")}, // reuse the slot
		{Kind: OpDelete, Key: []byte("missing")},
		{Kind: OpScan, Start: []byte("aa"), End: []byte("cb")},
		{Kind: OpDelete, Key: []byte("ba")},
	}}
	for _, unlogged := range []bool{false, true} {
		if err := RunHistory(hist, Config{UnloggedUpdates: unlogged, ReentrantRecovery: true}); err != nil {
			t.Fatalf("unlogged=%v: %v", unlogged, err)
		}
	}
}

// TestModelCheckBigMultiShardBatch sweeps a history whose batches span
// every hash-directory shard of the key universe at once — the batched
// write path's grouped allocation, coalesced bit commits and single
// publication cross several groups per call — including a duplicate key
// (insert then update inside one batch) and an update-heavy follow-up
// batch, with re-entrant recovery.
func TestModelCheckBigMultiShardBatch(t *testing.T) {
	var big []core.Record
	for i, k := range keyUniverse {
		big = append(big, core.Record{Key: k, Value: []byte{byte('A' + i), 2}})
	}
	// Duplicate of a key inserted earlier in the same batch: the second
	// record must update the first one's uncommitted leaf.
	big = append(big, core.Record{Key: keyUniverse[2], Value: []byte("dupwins")})

	hist := History{Ops: []Op{
		{Kind: OpBatch, Batch: big}, // all inserts, one per shard
		{Kind: OpBatch, Batch: []core.Record{ // updates + inserts interleaved
			{Key: []byte("aa"), Value: []byte("u1")},
			{Key: []byte("aanew"), Value: []byte("n1")},
			{Key: []byte("aab"), Value: []byte("u2")},
			{Key: []byte("ba"), Value: []byte("u3")},
			{Key: []byte("banew"), Value: []byte("n2")},
		}},
		{Kind: OpScan},
		{Kind: OpDelete, Key: keyUniverse[0]},
		{Kind: OpBatch, Batch: []core.Record{ // re-insert + pure updates
			{Key: keyUniverse[0], Value: []byte("back")},
			{Key: []byte("ca"), Value: []byte("u4")},
		}},
	}}
	for _, legacy := range []bool{false, true} {
		if err := RunHistory(hist, Config{LegacyWritePath: legacy, ReentrantRecovery: !*quick}); err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
	}
}

// TestModelCheckRecoveryModes sweeps seeded histories with recovery
// running parallel, lazy, and lazy-parallel, all with re-entrant
// recovery: every crash point is recovered under each mode and every
// persist boundary of that recovery is crashed again. Lazy recovery
// defers the ART builds but performs no PM write for them, so its
// persist sequence — the thing the re-entrant sweep crashes through —
// must be identical to eager's; divergence here would mean the drain is
// not purely volatile.
func TestModelCheckRecoveryModes(t *testing.T) {
	seeds, ops := quickParams()
	if *quick {
		seeds = 2
	}
	modes := []Config{
		{RecoveryWorkers: 4, ReentrantRecovery: true},
		{LazyRecovery: true, ReentrantRecovery: true},
		{RecoveryWorkers: 4, LazyRecovery: true, ReentrantRecovery: true},
		{RecoveryWorkers: 4, LazyRecovery: true, UnloggedUpdates: true, ReentrantRecovery: true},
	}
	for _, cfg := range modes {
		for seed := 0; seed < seeds; seed++ {
			if err := RunSeed(int64(3000+seed), ops, cfg); err != nil {
				t.Fatalf("workers=%d lazy=%v unlogged=%v: %v",
					cfg.RecoveryWorkers, cfg.LazyRecovery, cfg.UnloggedUpdates, err)
			}
		}
	}
}

// TestModelCheckElasticSeeds sweeps seeded histories with the elastic
// directory on and thresholds low enough that short histories split (and
// occasionally merge) for real: every persist boundary — including the
// superblock split-slot and split-count persists — is crashed and
// recovered, and with re-entrant recovery every persist of that recovery
// is crashed again, covering recovery of a half-split directory.
func TestModelCheckElasticSeeds(t *testing.T) {
	seeds, ops := quickParams()
	cfg := Config{ElasticDirectory: true, SplitOps: 3, MergeRecords: 6, ReentrantRecovery: true}
	for seed := 0; seed < seeds; seed++ {
		if err := RunSeed(int64(5000+seed), ops, cfg); err != nil {
			t.Fatal(err)
		}
	}
}

// TestModelCheckElasticSplitMerge is a fixed history engineered to cross
// a split (heat on shard "aa", branching next bytes, plus the residual
// key "aa" itself), write into the split children, then delete the group
// down so a merge fires — checked at every crash boundary, in both
// update modes, and under lazy + parallel recovery (whose first-touch
// builds must strip per-shard variable-length prefixes).
func TestModelCheckElasticSplitMerge(t *testing.T) {
	hist := History{Ops: []Op{
		{Kind: OpPut, Key: []byte("aa"), Value: []byte("res")}, // future residual
		{Kind: OpPut, Key: []byte("aab1"), Value: []byte("b1")},
		{Kind: OpPut, Key: []byte("aac1"), Value: []byte("c1")},
		{Kind: OpPut, Key: []byte("aab2"), Value: []byte("b2")}, // heat crosses: split "aa"
		{Kind: OpScan},
		{Kind: OpPut, Key: []byte("aab3"), Value: []byte("b3")}, // lands in child "aab"
		{Kind: OpPut, Key: []byte("aa"), Value: []byte("res2")}, // update the residual
		{Kind: OpBatch, Batch: []core.Record{ // batch across split + flat shards
			{Key: []byte("aac2"), Value: []byte("c2")},
			{Key: []byte("ba"), Value: []byte("flat")},
			{Key: []byte("aab1"), Value: []byte("b1u")},
		}},
		{Kind: OpScanReverse},
		{Kind: OpDelete, Key: []byte("aab2")},
		{Kind: OpDelete, Key: []byte("aab3")},
		{Kind: OpDelete, Key: []byte("aac1")},
		{Kind: OpDelete, Key: []byte("aac2")},
		{Kind: OpDelete, Key: []byte("aab1")}, // group is tiny and cold: merge fires
		{Kind: OpScan},
		{Kind: OpPut, Key: []byte("aad9"), Value: []byte("post")}, // write after merge
	}}
	for _, cfg := range []Config{
		{ElasticDirectory: true, SplitOps: 4, MergeRecords: 6, ReentrantRecovery: true},
		{ElasticDirectory: true, SplitOps: 4, MergeRecords: 6, UnloggedUpdates: true, ReentrantRecovery: true},
		{ElasticDirectory: true, SplitOps: 4, MergeRecords: 6, LazyRecovery: true, RecoveryWorkers: 4, ReentrantRecovery: true},
	} {
		if err := RunHistory(hist, cfg); err != nil {
			t.Fatalf("unlogged=%v lazy=%v: %v", cfg.UnloggedUpdates, cfg.LazyRecovery, err)
		}
	}
}

// TestModelCheckElasticFileReattach routes the split/merge history's
// crash images through the file backend: a store carrying persisted
// split prefixes must reopen identically from disk.
func TestModelCheckElasticFileReattach(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ElasticDirectory: true, SplitOps: 3, MergeRecords: 6,
		FileReattach: true, FileReattachDir: dir}
	if err := RunSeed(5100, 16, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestModelCheckLegacyWritePath sweeps seeded histories against the
// pre-striping baseline write path, so both sides of the write-path
// comparison stay crash-consistent.
func TestModelCheckLegacyWritePath(t *testing.T) {
	seeds, ops := quickParams()
	if *quick {
		seeds = 2 // the baseline shares most code with pre-striping PRs
	}
	for seed := 0; seed < seeds; seed++ {
		if err := RunSeed(int64(2000+seed), ops, Config{LegacyWritePath: true, ReentrantRecovery: true}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFromBytesTotal checks the fuzz decoder is total and its histories
// replay deterministically through the live differential pass.
func TestFromBytesTotal(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		data := make([]byte, r.Intn(64))
		r.Read(data)
		hist := FromBytes(data)
		if len(hist.Ops) > maxFuzzOps {
			t.Fatalf("FromBytes produced %d ops", len(hist.Ops))
		}
	}
}

// TestGenerateDeterministic pins the generator: the same seed must yield
// the same history, or boundary replays would diverge between processes.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(42)), 30)
	b := Generate(rand.New(rand.NewSource(42)), 30)
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("lengths differ")
	}
	for i := range a.Ops {
		if a.Ops[i].String() != b.Ops[i].String() {
			t.Fatalf("op %d differs: %s vs %s", i, a.Ops[i], b.Ops[i])
		}
	}
}
