package modelcheck

import "testing"

// FuzzModelCheck feeds raw bytes through the history decoder and the
// full boundary sweep. Any atomicity violation, fsck failure, recovery
// panic or model divergence reachable from a byte string surfaces as a
// fuzz crash. Run with: go test -fuzz=FuzzModelCheck ./internal/modelcheck/
func FuzzModelCheck(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 3, 5}) // one Put
	// A put/update/delete mix.
	f.Add([]byte{0, 1, 3, 5, 0, 1, 7, 9, 1, 1, 2, 0, 4, 2, 7, 1})
	// A batch then deletes.
	f.Add([]byte{2, 1, 0, 4, 4, 1, 9, 9, 2, 6, 3, 1, 0, 1, 6})
	// Scans with assorted bounds around the shard keys.
	f.Add([]byte{3, 1, 1, 2, 5, 4, 0, 3, 1, 0, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		hist := FromBytes(data)
		if len(hist.Ops) == 0 {
			return
		}
		// Re-entrant recovery stays on: it is where crash-during-recovery
		// bugs live, and fuzz inputs are short enough to afford it.
		if err := RunHistory(hist, Config{ReentrantRecovery: true}); err != nil {
			t.Fatal(err)
		}
	})
}
