package latency

import (
	"sync"
	"testing"
	"time"
)

func TestConfigNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config300x100(), "300/100"},
		{Config300x300(), "300/300"},
		{Config600x300(), "600/300"},
	}
	for _, c := range cases {
		if got := c.cfg.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestDeltas(t *testing.T) {
	c := Config300x100()
	if d := c.WriteDeltaNs(); d != 285 {
		t.Errorf("300/100 write delta = %d, want 285", d)
	}
	if d := c.ReadDeltaNs(); d != 0 {
		t.Errorf("300/100 read delta = %d, want 0 (PM read == DRAM read)", d)
	}
	c = Config600x300()
	if d := c.WriteDeltaNs(); d != 585 {
		t.Errorf("600/300 write delta = %d, want 585", d)
	}
	if d := c.ReadDeltaNs(); d != 200 {
		t.Errorf("600/300 read delta = %d, want 200", d)
	}
	// Negative deltas clamp to zero.
	neg := Config{PMWriteNs: 10, DRAMWriteNs: 15, PMReadNs: 50, DRAMReadNs: 100}
	if neg.WriteDeltaNs() != 0 || neg.ReadDeltaNs() != 0 {
		t.Error("negative deltas must clamp to 0")
	}
}

func TestClockAccounting(t *testing.T) {
	c := NewClock(Config300x300())
	for i := 0; i < 10; i++ {
		c.OnPersist(1)
	}
	c.OnRead(true)
	c.OnRead(true)
	c.OnRead(false)
	s := c.Snapshot()
	if s.Persists != 10 {
		t.Errorf("Persists = %d, want 10", s.Persists)
	}
	if s.PMReads != 3 || s.PMReadMisses != 2 {
		t.Errorf("PMReads/Misses = %d/%d, want 3/2", s.PMReads, s.PMReadMisses)
	}
	if want := int64(10 * 285); s.WritePenaltyNs != want {
		t.Errorf("WritePenaltyNs = %d, want %d", s.WritePenaltyNs, want)
	}
	if want := int64(2 * 200); s.ReadPenaltyNs != want {
		t.Errorf("ReadPenaltyNs = %d, want %d", s.ReadPenaltyNs, want)
	}
	if c.PenaltyNs() != s.PenaltyNs() {
		t.Error("PenaltyNs mismatch between clock and snapshot")
	}
	c.Reset()
	if c.Snapshot() != (Stats{}) {
		t.Error("Reset did not zero counters")
	}
}

func TestModeOffChargesNothing(t *testing.T) {
	c := NewClock(Off())
	c.OnPersist(1)
	c.OnRead(true)
	if c.PenaltyNs() != 0 {
		t.Errorf("ModeOff charged %d ns", c.PenaltyNs())
	}
	// Counters still tick so stats remain useful.
	if s := c.Snapshot(); s.Persists != 1 || s.PMReadMisses != 1 {
		t.Errorf("ModeOff lost counters: %+v", s)
	}
}

func TestModeSpinActuallyDelays(t *testing.T) {
	cfg := Config600x300()
	cfg.Mode = ModeSpin
	c := NewClock(cfg)
	const n = 2000
	start := time.Now()
	for i := 0; i < n; i++ {
		c.OnPersist(1)
	}
	elapsed := time.Since(start)
	// n * 585ns of injected delay; allow generous scheduling slack but
	// require at least 80% of the nominal delay.
	if minimum := time.Duration(n*585) * time.Nanosecond * 8 / 10; elapsed < minimum {
		t.Errorf("spin mode too fast: %v for %d persists, want >= %v", elapsed, n, minimum)
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock(Config300x300())
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.OnPersist(1)
				c.OnRead(i%2 == 0)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Persists != workers*per {
		t.Errorf("Persists = %d, want %d", s.Persists, workers*per)
	}
	if s.PMReads != workers*per {
		t.Errorf("PMReads = %d, want %d", s.PMReads, workers*per)
	}
}

func TestModeString(t *testing.T) {
	if ModeOff.String() != "off" || ModeAccount.String() != "account" || ModeSpin.String() != "spin" {
		t.Error("Mode.String mismatch")
	}
}

func TestOnPersistPerLineCharging(t *testing.T) {
	c := NewClock(Config300x300())
	c.OnPersist(32) // e.g. a 2 KB node build
	if got, want := c.Snapshot().WritePenaltyNs, int64(32*285); got != want {
		t.Errorf("32-line persist charged %d ns, want %d", got, want)
	}
	c.Reset()
	c.OnPersist(0) // defensive: clamps to one line
	if got := c.Snapshot().WritePenaltyNs; got != 285 {
		t.Errorf("zero-line persist charged %d ns, want 285", got)
	}
}
