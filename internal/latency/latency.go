// Package latency emulates the access-latency gap between DRAM and
// persistent memory (PM).
//
// The paper evaluates HART on DRAM that stands in for PM, adding the
// write-latency difference between PM and DRAM to every invocation of
// persistent() and adding the read-latency difference for every CPU stall
// caused by a PM load (Eq. 1-2 of the paper, following Quartz and PMEP).
// This package reproduces that methodology:
//
//   - OnPersist charges (PMWriteNs - DRAMWriteNs) once per persistent()
//     call, exactly like the paper's instrumented persistent().
//   - OnRead charges (PMReadNs - DRAMReadNs) for every PM load that misses
//     the simulated last-level cache (see package cachesim); cache hits are
//     served at CPU speed and charge nothing, mirroring the stall-cycle
//     accounting of Eq. 1.
//
// Two injection modes are provided. ModeSpin busy-waits for the charged
// duration so that wall-clock measurements (including multi-threaded ones)
// directly reflect PM latency. ModeAccount only accumulates the penalty in
// an atomic counter; harnesses then report wall time plus accounted penalty,
// which is the paper's own offline-adding method. ModeOff disables charging
// entirely (used by unit tests that only care about correctness).
package latency

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Mode selects how a Clock injects latency penalties.
type Mode int

const (
	// ModeOff disables latency injection and accounting entirely.
	ModeOff Mode = iota
	// ModeAccount accumulates penalties in counters without delaying the
	// caller. Use Clock.PenaltyNs to fold the penalty into measurements.
	ModeAccount
	// ModeSpin busy-waits for each penalty so wall-clock time includes it.
	ModeSpin
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeAccount:
		return "account"
	case ModeSpin:
		return "spin"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes one emulated PM latency configuration.
//
// The paper's three configurations are 300/100, 300/300 and 600/300
// (PM write ns / PM read ns) with measured DRAM read latency of 100 ns and
// a nominal DRAM write latency of 15 ns (the PCM-vs-DRAM figures quoted in
// the paper's Section III.A.2).
type Config struct {
	// Mode selects injection behaviour for clocks built from this Config.
	Mode Mode
	// PMWriteNs is the emulated PM write latency in nanoseconds.
	PMWriteNs int64
	// PMReadNs is the emulated PM read latency in nanoseconds.
	PMReadNs int64
	// DRAMReadNs is the baseline DRAM read latency (paper: 100 ns).
	DRAMReadNs int64
	// DRAMWriteNs is the baseline DRAM write latency (paper: 15 ns).
	DRAMWriteNs int64
}

// Name returns the paper-style "write/read" label, e.g. "300/100".
func (c Config) Name() string {
	return fmt.Sprintf("%d/%d", c.PMWriteNs, c.PMReadNs)
}

// WriteDeltaNs is the penalty charged per persistent() invocation.
func (c Config) WriteDeltaNs() int64 {
	d := c.PMWriteNs - c.DRAMWriteNs
	if d < 0 {
		return 0
	}
	return d
}

// ReadDeltaNs is the penalty charged per stalled (cache-missing) PM load.
func (c Config) ReadDeltaNs() int64 {
	d := c.PMReadNs - c.DRAMReadNs
	if d < 0 {
		return 0
	}
	return d
}

// The paper's three latency configurations. Mode defaults to ModeAccount;
// callers override Mode as needed.

// Config300x100 is the paper's 300 ns write / 100 ns read configuration.
func Config300x100() Config {
	return Config{Mode: ModeAccount, PMWriteNs: 300, PMReadNs: 100, DRAMReadNs: 100, DRAMWriteNs: 15}
}

// Config300x300 is the paper's 300 ns write / 300 ns read configuration.
func Config300x300() Config {
	return Config{Mode: ModeAccount, PMWriteNs: 300, PMReadNs: 300, DRAMReadNs: 100, DRAMWriteNs: 15}
}

// Config600x300 is the paper's 600 ns write / 300 ns read configuration.
func Config600x300() Config {
	return Config{Mode: ModeAccount, PMWriteNs: 600, PMReadNs: 300, DRAMReadNs: 100, DRAMWriteNs: 15}
}

// PaperConfigs returns the three configurations in the order the paper's
// figures present them.
func PaperConfigs() []Config {
	return []Config{Config300x100(), Config300x300(), Config600x300()}
}

// Off returns a configuration with no latency injection, for tests.
func Off() Config { return Config{Mode: ModeOff} }

// Stats is a snapshot of a Clock's counters.
type Stats struct {
	// Persists counts persistent() invocations charged.
	Persists int64
	// PMReads counts PM loads observed.
	PMReads int64
	// PMReadMisses counts PM loads that missed the simulated cache.
	PMReadMisses int64
	// WritePenaltyNs is the total charged write penalty.
	WritePenaltyNs int64
	// ReadPenaltyNs is the total charged read penalty.
	ReadPenaltyNs int64
}

// PenaltyNs is the total accounted penalty (read + write).
func (s Stats) PenaltyNs() int64 { return s.WritePenaltyNs + s.ReadPenaltyNs }

// Clock charges PM latency penalties. All methods are safe for concurrent
// use. The zero value is a valid clock with ModeOff semantics.
type Clock struct {
	cfg          Config
	persists     atomic.Int64
	pmReads      atomic.Int64
	pmReadMisses atomic.Int64
	writePenalty atomic.Int64
	readPenalty  atomic.Int64
}

// NewClock returns a Clock charging penalties per cfg.
func NewClock(cfg Config) *Clock {
	return &Clock{cfg: cfg}
}

// Config returns the clock's configuration.
func (c *Clock) Config() Config { return c.cfg }

// OnPersist charges one persistent() invocation covering the given number
// of cache lines. Each line is one CLFLUSH whose write reaches the PM
// media, so the write-latency delta applies per line — a 2 KB node build
// persisted in one call costs 32 line flushes, not one.
func (c *Clock) OnPersist(lines int) {
	c.persists.Add(1)
	if lines < 1 {
		lines = 1
	}
	if c.cfg.Mode == ModeOff {
		return
	}
	d := c.cfg.WriteDeltaNs() * int64(lines)
	if d == 0 {
		return
	}
	c.writePenalty.Add(d)
	if c.cfg.Mode == ModeSpin {
		spin(d)
	}
}

// OnRead charges one PM load. miss reports whether the load missed the
// simulated last-level cache; only misses pay the PM read delta.
func (c *Clock) OnRead(miss bool) {
	c.pmReads.Add(1)
	if !miss {
		return
	}
	c.pmReadMisses.Add(1)
	if c.cfg.Mode == ModeOff {
		return
	}
	d := c.cfg.ReadDeltaNs()
	if d == 0 {
		return
	}
	c.readPenalty.Add(d)
	if c.cfg.Mode == ModeSpin {
		spin(d)
	}
}

// PenaltyNs returns the total accounted penalty in nanoseconds.
func (c *Clock) PenaltyNs() int64 {
	return c.writePenalty.Load() + c.readPenalty.Load()
}

// Snapshot returns the current counters.
func (c *Clock) Snapshot() Stats {
	return Stats{
		Persists:       c.persists.Load(),
		PMReads:        c.pmReads.Load(),
		PMReadMisses:   c.pmReadMisses.Load(),
		WritePenaltyNs: c.writePenalty.Load(),
		ReadPenaltyNs:  c.readPenalty.Load(),
	}
}

// Reset zeroes all counters.
func (c *Clock) Reset() {
	c.persists.Store(0)
	c.pmReads.Store(0)
	c.pmReadMisses.Store(0)
	c.writePenalty.Store(0)
	c.readPenalty.Store(0)
}

// spin busy-waits for approximately ns nanoseconds. time.Sleep cannot hit
// sub-microsecond targets, so we poll the monotonic clock; the per-call
// overhead of time.Since (tens of ns) is small relative to the 185-585 ns
// penalties being injected.
func spin(ns int64) {
	d := time.Duration(ns)
	start := time.Now()
	for time.Since(start) < d {
	}
}
