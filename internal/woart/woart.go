// Package woart implements WOART (Write Optimal Adaptive Radix Tree, Lee
// et al., FAST 2017), the strongest radix-tree competitor in the HART
// paper's evaluation.
//
// WOART is a *pure PM* tree: every node — internal and leaf — lives on
// persistent memory and every structural change is made failure-atomic
// with fine-grained ordered persists:
//
//   - NODE4 publishes an insertion with one atomic 8-byte slot-word store
//     (4 key bytes + valid nibble) after the child pointer is durable.
//   - NODE16 publishes via one atomic bitmap store.
//   - NODE48 publishes via one atomic 1-byte index store.
//   - NODE256 publishes via the atomic child-pointer store itself.
//   - Node growth, shrink and path splits build the replacement node off
//     to the side, persist it completely, and publish it with one atomic
//     parent-pointer swap.
//
// Because internal nodes are persistent, WOART pays a persist for every
// structural store — the cost HART avoids by keeping internal nodes in
// DRAM. WOART needs no rebuild after a crash (the paper's Fig. 10c notes
// pure-PM trees skip recovery), but its allocator cannot tell which
// freed/in-flight blocks were lost, so crashes can leak PM — the exposure
// the paper contrasts with EPallocator's bitmaps.
//
// Keys must not contain 0x00: the tree appends a zero terminator
// internally (as the libart-derived implementations the paper builds on
// do for C strings), which keeps the key set prefix-free.
package woart

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"github.com/casl-sdsu/hart/internal/cachesim"
	"github.com/casl-sdsu/hart/internal/kv"
	"github.com/casl-sdsu/hart/internal/latency"
	"github.com/casl-sdsu/hart/internal/pmart"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// Superblock layout (first reservation, fixed offset).
const (
	sbMagicOff = 0
	sbRootOff  = 8
	sbSize     = 16

	woartMagic = 0x574f415254000001 // "WOART"
)

// Errors returned by the tree.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("woart: key not found")
	// ErrBadKey reports an empty, oversized or zero-containing key.
	ErrBadKey = errors.New("woart: invalid key")
	// ErrBadValue reports an empty or oversized value.
	ErrBadValue = errors.New("woart: invalid value")
)

// Options configures a tree.
type Options struct {
	// ArenaSize is the simulated PM capacity (default 64 MiB).
	ArenaSize int64
	// Latency selects PM latency emulation.
	Latency latency.Config
	// CacheModel attaches a simulated CPU cache.
	CacheModel bool
	// Tracking enables crash simulation.
	Tracking bool
}

// Tree is one WOART instance.
type Tree struct {
	mu    sync.RWMutex
	arena *pmem.Arena
	na    *pmart.NodeAlloc
	sb    pmem.Ptr
	size  int
}

var _ kv.Index = (*Tree)(nil)

// New creates a WOART over a fresh arena.
func New(opts Options) (*Tree, error) {
	if opts.ArenaSize == 0 {
		opts.ArenaSize = 64 << 20
	}
	var cache *cachesim.Cache
	if opts.CacheModel {
		cache = cachesim.Default()
	}
	arena, err := pmem.New(pmem.Config{
		Size: opts.ArenaSize, Tracking: opts.Tracking, Latency: opts.Latency, Cache: cache,
	})
	if err != nil {
		return nil, err
	}
	sb, err := arena.Reserve(sbSize, 8)
	if err != nil {
		return nil, err
	}
	arena.Write8(sb+sbRootOff, 0)
	arena.Write8(sb+sbMagicOff, woartMagic)
	arena.Persist(sb, sbSize)
	return &Tree{arena: arena, na: pmart.NewNodeAlloc(arena), sb: sb}, nil
}

// Open attaches to an existing arena. WOART keeps its entire structure on
// PM, so "recovery" is only re-deriving the volatile record count.
func Open(arena *pmem.Arena) (*Tree, error) {
	sb := pmem.Ptr(pmem.HeaderSize)
	if arena.Reserved() < pmem.HeaderSize+sbSize || arena.Read8(sb+sbMagicOff) != woartMagic {
		return nil, errors.New("woart: no tree in arena")
	}
	t := &Tree{arena: arena, na: pmart.NewNodeAlloc(arena), sb: sb}
	t.size = pmart.CountRecords(arena, t.root())
	return t, nil
}

// Name implements kv.Index.
func (t *Tree) Name() string { return "WOART" }

// Arena implements kv.Index.
func (t *Tree) Arena() *pmem.Arena { return t.arena }

// Len implements kv.Index.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Close implements kv.Index.
func (t *Tree) Close() error { return nil }

// SizeInfo implements kv.Index: everything is on PM.
func (t *Tree) SizeInfo() kv.SizeInfo {
	return kv.SizeInfo{PMBytes: t.arena.Reserved()}
}

// root loads the persistent root pointer.
func (t *Tree) root() pmem.Ptr { return t.arena.ReadPtr(t.sb + sbRootOff) }

// rootSlot is the PM address of the root pointer.
func (t *Tree) rootSlot() pmem.Ptr { return t.sb + sbRootOff }

// validate enforces the key/value contract.
func validate(key, value []byte, needValue bool) error {
	if len(key) == 0 || len(key) > pmart.MaxKeyLen || bytes.IndexByte(key, 0) >= 0 {
		return fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	if needValue && (len(value) == 0 || len(value) > 16) {
		return fmt.Errorf("%w: %d bytes", ErrBadValue, len(value))
	}
	return nil
}

// valueSize rounds a value length to its PM block size.
func valueSize(n int) int64 {
	if n <= 8 {
		return 8
	}
	return 16
}

// newValue allocates, writes and persists a value object, returning the
// packed leaf value word.
func (t *Tree) newValue(value []byte) (uint64, error) {
	vp, err := t.na.Alloc(valueSize(len(value)))
	if err != nil {
		return 0, err
	}
	t.arena.WriteAt(vp, value)
	t.arena.Persist(vp, len(value))
	return pmart.PackValue(vp, len(value)), nil
}

// freeValueWord releases a value object to the volatile free list.
func (t *Tree) freeValueWord(w uint64) {
	vp, n := pmart.UnpackValue(w)
	if !vp.IsNil() {
		t.na.Free(vp, valueSize(n))
	}
}

// Get implements kv.Index (search with final leaf verification).
func (t *Tree) Get(key []byte) ([]byte, bool) {
	if validate(key, nil, false) != nil {
		return nil, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.lookup(key)
	if leaf.IsNil() {
		return nil, false
	}
	vp, n := pmart.UnpackValue(t.arena.Read8(leaf + pmart.LeafValueWord))
	if vp.IsNil() {
		return nil, false
	}
	out := make([]byte, n)
	t.arena.ReadAt(vp, out)
	return out, true
}

// lookup descends to the leaf for key, or Nil.
func (t *Tree) lookup(key []byte) pmem.Ptr {
	return pmart.Lookup(t.arena, t.root(), key)
}
