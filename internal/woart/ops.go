package woart

import (
	"bytes"

	"github.com/casl-sdsu/hart/internal/pmart"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// Put implements kv.Index: insert or update.
func (t *Tree) Put(key, value []byte) error {
	if err := validate(key, value, true); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insert(t.rootSlot(), t.root(), pmart.Terminated(key), 0, key, value)
}

// Update implements kv.Index: overwrite an existing record only.
func (t *Tree) Update(key, value []byte) error {
	if err := validate(key, value, true); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := t.lookup(key)
	if leaf.IsNil() {
		return ErrNotFound
	}
	return t.updateLeaf(leaf, value)
}

// updateLeaf swings a leaf to a freshly persisted value object with one
// atomic value-word store (the mechanism the paper uses identically in
// HART, WOART and ART+CoW), then frees the old object. WOART has no
// update log: a crash after allocation but before the swing leaks the new
// object — the exposure the paper contrasts with HART.
func (t *Tree) updateLeaf(leaf pmem.Ptr, value []byte) error {
	w, err := t.newValue(value)
	if err != nil {
		return err
	}
	old := t.arena.Read8(leaf + pmart.LeafValueWord)
	t.arena.Write8(leaf+pmart.LeafValueWord, w)
	t.arena.Persist(leaf+pmart.LeafValueWord, 8)
	t.freeValueWord(old)
	return nil
}

// commonPrefixLen returns the longest common prefix length of a and b.
func commonPrefixLen(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// insert adds key below the node referenced by *slot. tk is the
// terminated key; depth counts consumed bytes of tk.
func (t *Tree) insert(slot, n pmem.Ptr, tk []byte, depth int, key, value []byte) error {
	if n.IsNil() {
		// Empty subtree: build the leaf off to the side and publish it
		// with one atomic pointer store.
		w, err := t.newValue(value)
		if err != nil {
			return err
		}
		leaf, err := pmart.BuildLeaf(t.arena, t.na, key, w)
		if err != nil {
			return err
		}
		pmart.ReplaceChildAt(t.arena, slot, pmart.TagLeaf(leaf))
		t.size++
		return nil
	}

	if pmart.IsLeaf(n) {
		leaf := pmart.Untag(n)
		if pmart.LeafMatches(t.arena, leaf, key) {
			return t.updateLeaf(leaf, value)
		}
		// Lazy-expansion split: a NODE4 adopts the old and new leaves.
		lk := pmart.Terminated(pmart.LeafKeyBytes(t.arena, leaf))
		cp := commonPrefixLen(lk[depth:], tk[depth:])
		w, err := t.newValue(value)
		if err != nil {
			return err
		}
		newLeaf, err := pmart.BuildLeaf(t.arena, t.na, key, w)
		if err != nil {
			return err
		}
		n4, err := pmart.BuildNode(t.arena, t.na, pmart.TypeNode4, tk[depth:depth+cp], []pmart.Edge{
			{Byte: lk[depth+cp], Child: n},
			{Byte: tk[depth+cp], Child: pmart.TagLeaf(newLeaf)},
		})
		if err != nil {
			return err
		}
		pmart.ReplaceChildAt(t.arena, slot, n4)
		t.size++
		return nil
	}

	full, stored := pmart.ReadPrefix(t.arena, n)
	prefix := stored
	if full > len(stored) {
		prefix = pmart.RealPrefix(t.arena, n, depth, full)
	}
	rest := tk[depth:]
	cp := commonPrefixLen(prefix, rest)
	if cp < full {
		// The key diverges inside n's compressed path. Clone n with the
		// shortened prefix, hang clone + new leaf under a fresh NODE4 and
		// publish with one pointer swap (in-place prefix edits cannot be
		// made failure-atomic together with the parent update).
		clone, err := t.cloneWithPrefix(n, prefix[cp+1:])
		if err != nil {
			return err
		}
		w, err := t.newValue(value)
		if err != nil {
			return err
		}
		newLeaf, err := pmart.BuildLeaf(t.arena, t.na, key, w)
		if err != nil {
			return err
		}
		n4, err := pmart.BuildNode(t.arena, t.na, pmart.TypeNode4, prefix[:cp], []pmart.Edge{
			{Byte: prefix[cp], Child: clone},
			{Byte: rest[cp], Child: pmart.TagLeaf(newLeaf)},
		})
		if err != nil {
			return err
		}
		pmart.ReplaceChildAt(t.arena, slot, n4)
		t.na.Free(n, pmart.SizeOf(pmart.NodeType(t.arena, n)))
		t.size++
		return nil
	}
	depth += full

	b := tk[depth]
	childSlot, child := pmart.FindChild(t.arena, n, b)
	if !child.IsNil() {
		return t.insert(childSlot, child, tk, depth+1, key, value)
	}

	// New edge on n: build the leaf, then publish it with the node kind's
	// atomic in-place protocol, growing the node when full.
	w, err := t.newValue(value)
	if err != nil {
		return err
	}
	leaf, err := pmart.BuildLeaf(t.arena, t.na, key, w)
	if err != nil {
		return err
	}
	if !pmart.AddChildInPlace(t.arena, n, b, pmart.TagLeaf(leaf)) {
		edges := append(pmart.Edges(t.arena, n), pmart.Edge{Byte: b, Child: pmart.TagLeaf(leaf)})
		typ := pmart.NodeType(t.arena, n)
		grown, err := pmart.BuildNode(t.arena, t.na, pmart.GrownType(typ), prefix, edges)
		if err != nil {
			return err
		}
		pmart.ReplaceChildAt(t.arena, slot, grown)
		t.na.Free(n, pmart.SizeOf(typ))
	}
	t.size++
	return nil
}

// cloneWithPrefix rebuilds n with a different compressed path.
func (t *Tree) cloneWithPrefix(n pmem.Ptr, prefix []byte) (pmem.Ptr, error) {
	typ := pmart.NodeType(t.arena, n)
	return pmart.BuildNode(t.arena, t.na, typ, prefix, pmart.Edges(t.arena, n))
}

// Delete implements kv.Index.
func (t *Tree) Delete(key []byte) error {
	if err := validate(key, nil, false); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	removed, err := t.remove(t.rootSlot(), t.root(), pmart.Terminated(key), 0, key)
	if err != nil {
		return err
	}
	if !removed {
		return ErrNotFound
	}
	t.size--
	return nil
}

// remove deletes key from the subtree at *slot.
func (t *Tree) remove(slot, n pmem.Ptr, tk []byte, depth int, key []byte) (bool, error) {
	if n.IsNil() {
		return false, nil
	}
	if pmart.IsLeaf(n) {
		leaf := pmart.Untag(n)
		if !pmart.LeafMatches(t.arena, leaf, key) {
			return false, nil
		}
		// Unpublish with one atomic store, then release the space.
		pmart.ReplaceChildAt(t.arena, slot, pmem.Nil)
		t.freeValueWord(t.arena.Read8(leaf + pmart.LeafValueWord))
		t.na.Free(leaf, pmart.LeafSize)
		return true, nil
	}

	full, stored := pmart.ReadPrefix(t.arena, n)
	if len(tk)-depth < full || !bytes.Equal(stored, tk[depth:depth+len(stored)]) {
		return false, nil
	}
	depth += full
	if depth >= len(tk) {
		return false, nil
	}
	b := tk[depth]
	childSlot, child := pmart.FindChild(t.arena, n, b)
	if child.IsNil() {
		return false, nil
	}

	if pmart.IsLeaf(child) {
		leaf := pmart.Untag(child)
		if !pmart.LeafMatches(t.arena, leaf, key) {
			return false, nil
		}
		// Unpublish via the node kind's atomic protocol, release, then
		// restore shape invariants.
		pmart.RemoveChildInPlace(t.arena, n, b)
		t.freeValueWord(t.arena.Read8(leaf + pmart.LeafValueWord))
		t.na.Free(leaf, pmart.LeafSize)
		return true, t.fixupAfterRemove(slot, n, depth-full)
	}
	ok, err := t.remove(childSlot, child, tk, depth+1, key)
	if err != nil || !ok {
		return ok, err
	}
	return true, nil
}

// fixupAfterRemove restores shape invariants of n (published at *slot)
// after one of its leaf children was removed: an empty node unlinks, a
// single-child node merges into its child's path, an underfull node
// shrinks to the smaller kind. Each case builds the replacement off to
// the side and publishes it with one atomic swap.
func (t *Tree) fixupAfterRemove(slot, n pmem.Ptr, depth int) error {
	typ := pmart.NodeType(t.arena, n)
	c := pmart.CountChildren(t.arena, n)
	switch {
	case c == 0:
		pmart.ReplaceChildAt(t.arena, slot, pmem.Nil)
		t.na.Free(n, pmart.SizeOf(typ))
		return nil

	case c == 1:
		edges := pmart.Edges(t.arena, n)
		e := edges[0]
		if pmart.IsLeaf(e.Child) {
			pmart.ReplaceChildAt(t.arena, slot, e.Child)
			t.na.Free(n, pmart.SizeOf(typ))
			return nil
		}
		// Merge paths: child prefix becomes nPrefix + edge byte + childPrefix.
		full, stored := pmart.ReadPrefix(t.arena, n)
		np := stored
		if full > len(stored) {
			np = pmart.RealPrefix(t.arena, n, depth, full)
		}
		cfull, cstored := pmart.ReadPrefix(t.arena, e.Child)
		cp := cstored
		if cfull > len(cstored) {
			cp = pmart.RealPrefix(t.arena, e.Child, depth+full+1, cfull)
		}
		merged := make([]byte, 0, len(np)+1+len(cp))
		merged = append(merged, np...)
		merged = append(merged, e.Byte)
		merged = append(merged, cp...)
		clone, err := pmart.BuildNode(t.arena, t.na, pmart.NodeType(t.arena, e.Child), merged,
			pmart.Edges(t.arena, e.Child))
		if err != nil {
			return err
		}
		pmart.ReplaceChildAt(t.arena, slot, clone)
		t.na.Free(e.Child, pmart.SizeOf(pmart.NodeType(t.arena, e.Child)))
		t.na.Free(n, pmart.SizeOf(typ))
		return nil
	}

	if smaller, threshold := pmart.ShrunkType(typ); threshold > 0 && c <= threshold {
		full, stored := pmart.ReadPrefix(t.arena, n)
		np := stored
		if full > len(stored) {
			np = pmart.RealPrefix(t.arena, n, depth, full)
		}
		shrunk, err := pmart.BuildNode(t.arena, t.na, smaller, np, pmart.Edges(t.arena, n))
		if err != nil {
			return err
		}
		pmart.ReplaceChildAt(t.arena, slot, shrunk)
		t.na.Free(n, pmart.SizeOf(typ))
	}
	return nil
}

// Scan implements kv.Index: in-order traversal with [start, end) filter.
func (t *Tree) Scan(start, end []byte, fn func(key, value []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pmart.Walk(t.arena, t.root(), start, end, fn)
}

// Check verifies structural invariants: leaves appear in strictly
// ascending key order, every leaf is reachable by its own key, and the
// record count matches.
func (t *Tree) Check() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return pmart.CheckTree(t.arena, t.root(), t.size, "woart")
}
