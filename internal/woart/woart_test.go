package woart

import (
	"fmt"
	"testing"

	"github.com/casl-sdsu/hart/internal/kv"
	"github.com/casl-sdsu/hart/internal/kv/kvtest"
	"github.com/casl-sdsu/hart/internal/pmem"
)

func factory(t *testing.T) kv.Index {
	tr, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConformance(t *testing.T) {
	kvtest.RunAll(t, factory)
}

func TestValidation(t *testing.T) {
	tr, err := New(Options{ArenaSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := tr.Put([]byte("has\x00zero"), []byte("v")); err == nil {
		t.Fatal("zero-byte key accepted (terminator collision)")
	}
	if err := tr.Put([]byte("0123456789012345678901234"), []byte("v")); err == nil {
		t.Fatal("25-byte key accepted")
	}
	if err := tr.Put([]byte("k"), make([]byte, 17)); err == nil {
		t.Fatal("17-byte value accepted")
	}
}

// TestPurePMSurvivesRestart: a WOART needs no rebuild — the whole tree is
// on PM, so re-attaching after a clean crash finds every committed record
// (the property Fig. 10c relies on).
func TestPurePMSurvivesRestart(t *testing.T) {
	tr, err := New(Options{ArenaSize: 32 << 20, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("pm%06d", i)), []byte(fmt.Sprintf("%08d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 3 {
		if err := tr.Delete([]byte(fmt.Sprintf("pm%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	img, err := tr.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(img)
	if err != nil {
		t.Fatal(err)
	}
	want := n - (n+2)/3
	if tr2.Len() != want {
		t.Fatalf("recovered Len = %d, want %d", tr2.Len(), want)
	}
	for i := 0; i < n; i++ {
		v, ok := tr2.Get([]byte(fmt.Sprintf("pm%06d", i)))
		if wantOK := i%3 != 0; ok != wantOK {
			t.Fatalf("pm%06d present=%v want=%v", i, ok, wantOK)
		} else if ok && string(v) != fmt.Sprintf("%08d", i) {
			t.Fatalf("pm%06d value %q", i, v)
		}
	}
	if err := tr2.Check(); err != nil {
		t.Fatal(err)
	}
	// The reopened tree keeps working.
	if err := tr2.Put([]byte("after-crash"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr2.Get([]byte("after-crash")); !ok || string(v) != "ok" {
		t.Fatalf("post-reopen Put lost: (%q,%v)", v, ok)
	}
}

// TestCrashAtomicInsertBoundaries crashes inserts at every persist
// boundary and verifies the committed prefix of the tree is undamaged —
// WOART's write-atomicity claim. (Unlike HART there is no leak guarantee;
// only structural atomicity is checked.)
func TestCrashAtomicInsertBoundaries(t *testing.T) {
	for fail := int64(0); ; fail++ {
		tr, err := New(Options{ArenaSize: 32 << 20, Tracking: true})
		if err != nil {
			t.Fatal(err)
		}
		pre := []string{"crashA", "crashB", "crashAB", "cr", "dz999"}
		for _, k := range pre {
			if err := tr.Put([]byte(k), []byte("pre")); err != nil {
				t.Fatal(err)
			}
		}
		tr.Arena().FailAfterPersists(fail)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.CrashError); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			if err := tr.Put([]byte("crashNEW"), []byte("new")); err != nil {
				t.Fatal(err)
			}
		}()
		tr.Arena().DisarmCrash()
		if !crashed {
			if fail == 0 {
				t.Fatal("insert performed no persists")
			}
			return
		}
		img, err := tr.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := Open(img)
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		for _, k := range pre {
			if v, ok := tr2.Get([]byte(k)); !ok || string(v) != "pre" {
				t.Fatalf("fail=%d: committed key %q = (%q,%v)", fail, k, v, ok)
			}
		}
		if v, ok := tr2.Get([]byte("crashNEW")); ok && string(v) != "new" {
			t.Fatalf("fail=%d: torn insert: %q", fail, v)
		}
		if err := tr2.Check(); err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
	}
}

func TestSizeInfoPurePM(t *testing.T) {
	tr, _ := New(Options{ArenaSize: 16 << 20})
	for i := 0; i < 100; i++ {
		tr.Put([]byte(fmt.Sprintf("m%04d", i)), []byte("v"))
	}
	si := tr.SizeInfo()
	if si.DRAMBytes != 0 {
		t.Fatalf("WOART DRAM = %d, want 0 (paper Fig. 10b: pure-PM trees use no DRAM)", si.DRAMBytes)
	}
	if si.PMBytes <= 0 {
		t.Fatalf("PMBytes = %d", si.PMBytes)
	}
}

func TestFreeListReuseKeepsArenaFlat(t *testing.T) {
	tr, _ := New(Options{ArenaSize: 16 << 20})
	for i := 0; i < 500; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("fl%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if err := tr.Delete([]byte(fmt.Sprintf("fl%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	grown := tr.Arena().Reserved()
	// Reinserting the same set must come mostly from the free lists.
	for i := 0; i < 500; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("fl%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if after := tr.Arena().Reserved(); after > grown+4096 {
		t.Fatalf("free lists unused: arena grew %d -> %d", grown, after)
	}
}
