// Package art implements a volatile Adaptive Radix Tree (Leis et al.,
// ICDE 2013) over byte-string keys with uint64 values.
//
// HART stores all ART internal nodes in DRAM (paper Section III.A.2), so
// this package is an ordinary in-memory structure: adaptive node types
// NODE4/NODE16/NODE48/NODE256, pessimistic path compression (full prefixes
// are kept, so lookups never need a second key verification), lazy
// expansion (single-record subtrees are just leaves), ordered iteration,
// and node shrinking on delete.
//
// Values are uint64 because HART stores persistent-memory offsets
// (pmem.Ptr) in its ARTs; the package itself is index-agnostic.
//
// Keys may be arbitrary byte strings, including keys that are prefixes of
// other keys: every inner node carries an optional terminator leaf for the
// key that ends exactly at that node. A Tree is not safe for concurrent
// use; HART serialises writers per ART with an RWMutex.
package art

import "bytes"

// Kind enumerates the adaptive node types, exported for stats.
type Kind uint8

// Node kinds. KindLeaf counts single-record leaves.
const (
	KindLeaf Kind = iota
	Kind4
	Kind16
	Kind48
	Kind256
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLeaf:
		return "LEAF"
	case Kind4:
		return "NODE4"
	case Kind16:
		return "NODE16"
	case Kind48:
		return "NODE48"
	case Kind256:
		return "NODE256"
	default:
		return "NODE?"
	}
}

// node is implemented by *leaf and the four inner node types.
type node interface {
	kind() Kind
}

// leaf holds one record: the full key and its value.
type leaf struct {
	key []byte
	val uint64
}

func (*leaf) kind() Kind { return KindLeaf }

// inner is the embedded header common to all inner node types. prefix is
// the full compressed path segment below the parent edge byte (pessimistic
// path compression). term is the terminator leaf for a key ending exactly
// at this node. owner tags nodes created (or first cloned) by an open
// Batch so later inserts of the same batch may mutate them in place
// instead of cloning again; it is meaningless — never a license to mutate
// — once the batch commits (see batch.go).
type inner struct {
	prefix []byte
	term   *leaf
	n      int // number of populated children (terminator excluded)
	owner  *Batch
}

type node4 struct {
	inner
	keys     [4]byte
	children [4]node
}

func (*node4) kind() Kind { return Kind4 }

type node16 struct {
	inner
	keys     [16]byte
	children [16]node
}

func (*node16) kind() Kind { return Kind16 }

type node48 struct {
	inner
	// index maps a key byte to child slot + 1; 0 means no child.
	index    [256]uint8
	children [48]node
}

func (*node48) kind() Kind { return Kind48 }

type node256 struct {
	inner
	children [256]node
}

func (*node256) kind() Kind { return Kind256 }

// header returns the shared inner header of an inner node.
func header(n node) *inner {
	switch v := n.(type) {
	case *node4:
		return &v.inner
	case *node16:
		return &v.inner
	case *node48:
		return &v.inner
	case *node256:
		return &v.inner
	default:
		return nil
	}
}

// Tree is a volatile adaptive radix tree.
type Tree struct {
	root node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of records.
func (t *Tree) Len() int { return t.size }

// Empty reports whether the tree has no records.
func (t *Tree) Empty() bool { return t.size == 0 }

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	n := t.root
	depth := 0
	for n != nil {
		if l, ok := n.(*leaf); ok {
			if bytes.Equal(l.key, key) {
				return l.val, true
			}
			return 0, false
		}
		h := header(n)
		if len(key)-depth < len(h.prefix) || !bytes.Equal(h.prefix, key[depth:depth+len(h.prefix)]) {
			return 0, false
		}
		depth += len(h.prefix)
		if depth == len(key) {
			if h.term != nil {
				return h.term.val, true
			}
			return 0, false
		}
		n = findChild(n, key[depth])
		depth++
	}
	return 0, false
}

// findChild returns the child of n under byte b, or nil.
func findChild(n node, b byte) node {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < v.n; i++ {
			if v.keys[i] == b {
				return v.children[i]
			}
		}
	case *node16:
		for i := 0; i < v.n; i++ {
			if v.keys[i] == b {
				return v.children[i]
			}
		}
	case *node48:
		if s := v.index[b]; s != 0 {
			return v.children[s-1]
		}
	case *node256:
		return v.children[b]
	}
	return nil
}

// commonPrefixLen returns the length of the longest common prefix.
func commonPrefixLen(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Stats summarises the tree's shape for the memory-consumption experiment
// (paper Fig. 10b) and diagnostics.
type Stats struct {
	// Records is the number of stored keys.
	Records int
	// Nodes counts inner nodes by kind (index Kind4..Kind256).
	Node4s, Node16s, Node48s, Node256s int
	// Height is the maximum node depth (leaves included).
	Height int
	// Bytes estimates the DRAM footprint of all nodes and leaf headers.
	Bytes int64
}

// Approximate per-node DRAM costs (Go struct sizes incl. slice headers).
const (
	leafCost    = 48 // struct + key slice header; key bytes added per leaf
	node4Cost   = 56 + 4 + 4*16
	node16Cost  = 56 + 16 + 16*16
	node48Cost  = 56 + 256 + 48*16
	node256Cost = 56 + 256*16
)

// Stats walks the tree and returns shape statistics.
func (t *Tree) Stats() Stats {
	var s Stats
	var walk func(n node, depth int)
	walk = func(n node, depth int) {
		if n == nil {
			return
		}
		if depth > s.Height {
			s.Height = depth
		}
		if l, ok := n.(*leaf); ok {
			s.Records++
			s.Bytes += leafCost + int64(len(l.key))
			return
		}
		h := header(n)
		s.Bytes += int64(len(h.prefix))
		if h.term != nil {
			s.Records++
			s.Bytes += leafCost + int64(len(h.term.key))
		}
		switch v := n.(type) {
		case *node4:
			s.Node4s++
			s.Bytes += node4Cost
			for i := 0; i < v.n; i++ {
				walk(v.children[i], depth+1)
			}
		case *node16:
			s.Node16s++
			s.Bytes += node16Cost
			for i := 0; i < v.n; i++ {
				walk(v.children[i], depth+1)
			}
		case *node48:
			s.Node48s++
			s.Bytes += node48Cost
			for _, c := range v.children {
				walk(c, depth+1)
			}
		case *node256:
			s.Node256s++
			s.Bytes += node256Cost
			for _, c := range v.children {
				walk(c, depth+1)
			}
		}
	}
	walk(t.root, 0)
	return s
}
