package art

import "bytes"

// Ascend visits every record in ascending key order until fn returns
// false. It returns false if the iteration was cut short.
func (t *Tree) Ascend(fn func(key []byte, val uint64) bool) bool {
	return walk(t.root, nil, nil, fn)
}

// AscendRange visits records with start <= key < end in ascending order.
// A nil start means "from the smallest key"; a nil end means "to the
// largest". It returns false if fn cut the iteration short.
func (t *Tree) AscendRange(start, end []byte, fn func(key []byte, val uint64) bool) bool {
	return walk(t.root, start, end, fn)
}

// walk traverses n in order, pruning subtrees that fall wholly outside
// [start, end). Leaves carry full keys, so boundary subtrees are resolved
// by exact comparison at the leaf.
func walk(n node, start, end []byte, fn func(key []byte, val uint64) bool) bool {
	if n == nil {
		return true
	}
	if l, ok := n.(*leaf); ok {
		return emit(l, start, end, fn)
	}
	h := header(n)
	if h.term != nil && !emit(h.term, start, end, fn) {
		return false
	}
	visit := func(c node) bool {
		// Pruning by leaf bounds: the minimum and maximum keys of c tell
		// whether the subtree intersects the range at all. Computing them
		// is O(height); for boundary subtrees this is cheaper than
		// visiting every leaf, and interior subtrees short-circuit on the
		// start/end == nil fast path below.
		return walk(c, start, end, fn)
	}
	switch v := n.(type) {
	case *node4:
		for i := 0; i < v.n; i++ {
			if !visit(v.children[i]) {
				return false
			}
		}
	case *node16:
		for i := 0; i < v.n; i++ {
			if !visit(v.children[i]) {
				return false
			}
		}
	case *node48:
		for kb := 0; kb < 256; kb++ {
			if s := v.index[kb]; s != 0 {
				if !visit(v.children[s-1]) {
					return false
				}
			}
		}
	case *node256:
		for kb := 0; kb < 256; kb++ {
			if c := v.children[kb]; c != nil {
				if !visit(c) {
					return false
				}
			}
		}
	}
	return true
}

// emit applies the range filter and calls fn. Iteration stops (returns
// false) once a key at or beyond end is seen, which bounds the work of a
// range scan by the size of the result plus one subtree.
func emit(l *leaf, start, end []byte, fn func(key []byte, val uint64) bool) bool {
	if start != nil && bytes.Compare(l.key, start) < 0 {
		return true
	}
	if end != nil && bytes.Compare(l.key, end) >= 0 {
		return false
	}
	return fn(l.key, l.val)
}

// Min returns the smallest key and its value.
func (t *Tree) Min() (key []byte, val uint64, ok bool) {
	return extreme(t.root, false)
}

// Max returns the largest key and its value.
func (t *Tree) Max() (key []byte, val uint64, ok bool) {
	return extreme(t.root, true)
}

// extreme descends to the smallest (max=false) or largest (max=true) leaf.
func extreme(n node, max bool) ([]byte, uint64, bool) {
	for n != nil {
		if l, ok := n.(*leaf); ok {
			return l.key, l.val, true
		}
		h := header(n)
		if !max && h.term != nil {
			return h.term.key, h.term.val, true
		}
		var next node
		switch v := n.(type) {
		case *node4:
			if max {
				next = v.children[v.n-1]
			} else {
				next = v.children[0]
			}
		case *node16:
			if max {
				next = v.children[v.n-1]
			} else {
				next = v.children[0]
			}
		case *node48:
			if max {
				for kb := 255; kb >= 0; kb-- {
					if s := v.index[kb]; s != 0 {
						next = v.children[s-1]
						break
					}
				}
			} else {
				for kb := 0; kb < 256; kb++ {
					if s := v.index[kb]; s != 0 {
						next = v.children[s-1]
						break
					}
				}
			}
		case *node256:
			if max {
				for kb := 255; kb >= 0; kb-- {
					if v.children[kb] != nil {
						next = v.children[kb]
						break
					}
				}
			} else {
				for kb := 0; kb < 256; kb++ {
					if v.children[kb] != nil {
						next = v.children[kb]
						break
					}
				}
			}
		}
		if max && h.term != nil && next == nil {
			return h.term.key, h.term.val, true
		}
		n = next
	}
	return nil, 0, false
}

// Descend visits every record in descending key order until fn returns
// false.
func (t *Tree) Descend(fn func(key []byte, val uint64) bool) bool {
	return walkDesc(t.root, nil, nil, fn)
}

// DescendRange visits records with start <= key < end in descending
// order (the same half-open interval as AscendRange, reversed).
func (t *Tree) DescendRange(start, end []byte, fn func(key []byte, val uint64) bool) bool {
	return walkDesc(t.root, start, end, fn)
}

// walkDesc mirrors walk with children visited in reverse byte order and
// the terminator leaf (the node's smallest key) last.
func walkDesc(n node, start, end []byte, fn func(key []byte, val uint64) bool) bool {
	if n == nil {
		return true
	}
	if l, ok := n.(*leaf); ok {
		return emitDesc(l, start, end, fn)
	}
	h := header(n)
	visit := func(c node) bool { return walkDesc(c, start, end, fn) }
	switch v := n.(type) {
	case *node4:
		for i := v.n - 1; i >= 0; i-- {
			if !visit(v.children[i]) {
				return false
			}
		}
	case *node16:
		for i := v.n - 1; i >= 0; i-- {
			if !visit(v.children[i]) {
				return false
			}
		}
	case *node48:
		for kb := 255; kb >= 0; kb-- {
			if s := v.index[kb]; s != 0 {
				if !visit(v.children[s-1]) {
					return false
				}
			}
		}
	case *node256:
		for kb := 255; kb >= 0; kb-- {
			if c := v.children[kb]; c != nil {
				if !visit(c) {
					return false
				}
			}
		}
	}
	if h.term != nil && !emitDesc(h.term, start, end, fn) {
		return false
	}
	return true
}

// emitDesc applies the range filter for descending traversal: iteration
// stops once a key below start is seen.
func emitDesc(l *leaf, start, end []byte, fn func(key []byte, val uint64) bool) bool {
	if end != nil && bytes.Compare(l.key, end) >= 0 {
		return true
	}
	if start != nil && bytes.Compare(l.key, start) < 0 {
		return false
	}
	return fn(l.key, l.val)
}
