package art

import "bytes"

// Insert stores val under key, returning the previous value if the key was
// already present. The key bytes are copied; callers may reuse the slice.
func (t *Tree) Insert(key []byte, val uint64) (old uint64, updated bool) {
	k := append([]byte(nil), key...)
	t.root, old, updated = t.insert(t.root, k, 0, val)
	if !updated {
		t.size++
	}
	return old, updated
}

// insert adds key below n (whose path covers key[:depth]) and returns the
// possibly replaced node.
func (t *Tree) insert(n node, key []byte, depth int, val uint64) (node, uint64, bool) {
	if n == nil {
		return &leaf{key: key, val: val}, 0, false
	}
	if l, ok := n.(*leaf); ok {
		if bytes.Equal(l.key, key) {
			old := l.val
			l.val = val
			return n, old, true
		}
		// Lazy expansion ends here: split the single-record leaf into a
		// NODE4 covering the diverging suffixes.
		cp := commonPrefixLen(l.key[depth:], key[depth:])
		nn := &node4{inner: inner{prefix: append([]byte(nil), key[depth:depth+cp]...)}}
		attach(nn, l.key, depth+cp, l)
		attach(nn, key, depth+cp, &leaf{key: key, val: val})
		return nn, 0, false
	}

	h := header(n)
	cp := commonPrefixLen(h.prefix, key[depth:])
	if cp < len(h.prefix) {
		// The key diverges inside n's compressed path: split the prefix.
		nn := &node4{inner: inner{prefix: append([]byte(nil), h.prefix[:cp]...)}}
		edge := h.prefix[cp]
		h.prefix = append([]byte(nil), h.prefix[cp+1:]...)
		addChild(nn, edge, n)
		attach(nn, key, depth+cp, &leaf{key: key, val: val})
		return nn, 0, false
	}
	depth += len(h.prefix)

	if depth == len(key) {
		// The key terminates exactly at this node.
		if h.term != nil {
			old := h.term.val
			h.term.val = val
			return n, old, true
		}
		h.term = &leaf{key: key, val: val}
		return n, 0, false
	}

	b := key[depth]
	child := findChild(n, b)
	if child == nil {
		return addChild(n, b, &leaf{key: key, val: val}), 0, false
	}
	newChild, old, updated := t.insert(child, key, depth+1, val)
	if newChild != child {
		replaceChild(n, b, newChild)
	}
	return n, old, updated
}

// attach hangs leaf l below nn: as the terminator when l's key ends at
// position pos, otherwise as a child under edge byte key[pos].
func attach(nn *node4, key []byte, pos int, l *leaf) {
	if pos == len(key) {
		nn.term = l
	} else {
		addChild(nn, key[pos], l)
	}
}

// addChild inserts child under byte b, growing the node when full, and
// returns the node that now holds the children (n itself or its grown
// replacement). b must not already be present.
func addChild(n node, b byte, child node) node {
	switch v := n.(type) {
	case *node4:
		if v.n < 4 {
			i := 0
			for i < v.n && v.keys[i] < b {
				i++
			}
			copy(v.keys[i+1:v.n+1], v.keys[i:v.n])
			copy(v.children[i+1:v.n+1], v.children[i:v.n])
			v.keys[i] = b
			v.children[i] = child
			v.n++
			return v
		}
		g := &node16{inner: v.inner}
		copy(g.keys[:], v.keys[:])
		copy(g.children[:], v.children[:])
		return addChild(g, b, child)

	case *node16:
		if v.n < 16 {
			i := 0
			for i < v.n && v.keys[i] < b {
				i++
			}
			copy(v.keys[i+1:v.n+1], v.keys[i:v.n])
			copy(v.children[i+1:v.n+1], v.children[i:v.n])
			v.keys[i] = b
			v.children[i] = child
			v.n++
			return v
		}
		g := &node48{inner: v.inner}
		for i := 0; i < 16; i++ {
			g.children[i] = v.children[i]
			g.index[v.keys[i]] = uint8(i + 1)
		}
		return addChild(g, b, child)

	case *node48:
		if v.n < 48 {
			slot := 0
			for v.children[slot] != nil {
				slot++
			}
			v.children[slot] = child
			v.index[b] = uint8(slot + 1)
			v.n++
			return v
		}
		g := &node256{inner: v.inner}
		for kb := 0; kb < 256; kb++ {
			if s := v.index[kb]; s != 0 {
				g.children[kb] = v.children[s-1]
			}
		}
		return addChild(g, b, child)

	case *node256:
		v.children[b] = child
		v.n++
		return v
	}
	panic("art: addChild on leaf")
}

// replaceChild swaps the child under byte b; b must be present.
func replaceChild(n node, b byte, child node) {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < v.n; i++ {
			if v.keys[i] == b {
				v.children[i] = child
				return
			}
		}
	case *node16:
		for i := 0; i < v.n; i++ {
			if v.keys[i] == b {
				v.children[i] = child
				return
			}
		}
	case *node48:
		if s := v.index[b]; s != 0 {
			v.children[s-1] = child
			return
		}
	case *node256:
		if v.children[b] != nil {
			v.children[b] = child
			return
		}
	}
	panic("art: replaceChild on absent edge")
}
