package art

import "bytes"

// Copy-on-write mutation.
//
// CowInsert and CowDelete are the functional counterparts of Insert and
// Delete: instead of mutating t they return a new *Tree that shares every
// untouched subtree with t and copies only the nodes along the modified
// path (O(key length) copies). A tree reached through them is immutable,
// so HART can publish each shard's current tree behind an atomic pointer
// and let lock-free readers traverse it with no synchronisation at all:
// the atomic root swap is the only happens-before edge a reader needs.
//
// The invariant the in-place mutators do not give: after nu = t.CowX(...),
// every node reachable from t is bit-for-bit unchanged. Cloned nodes share
// prefix backing arrays with their originals, which is safe because no
// code path writes *through* a prefix slice — prefixes are only ever
// replaced whole, on a clone.

// CowInsert returns a tree with val stored under key, leaving t unchanged.
// Like Insert it reports the previous value if the key was present.
func (t *Tree) CowInsert(key []byte, val uint64) (nu *Tree, old uint64, updated bool) {
	k := append([]byte(nil), key...)
	root, old, updated := cowInsert(t.root, k, 0, val)
	size := t.size
	if !updated {
		size++
	}
	return &Tree{root: root, size: size}, old, updated
}

// cowInsert mirrors (*Tree).insert with every mutated node cloned first.
func cowInsert(n node, key []byte, depth int, val uint64) (node, uint64, bool) {
	if n == nil {
		return &leaf{key: key, val: val}, 0, false
	}
	if l, ok := n.(*leaf); ok {
		if bytes.Equal(l.key, key) {
			return &leaf{key: key, val: val}, l.val, true
		}
		cp := commonPrefixLen(l.key[depth:], key[depth:])
		nn := &node4{inner: inner{prefix: append([]byte(nil), key[depth:depth+cp]...)}}
		attach(nn, l.key, depth+cp, l) // l itself is shared, not copied
		attach(nn, key, depth+cp, &leaf{key: key, val: val})
		return nn, 0, false
	}

	h := header(n)
	cp := commonPrefixLen(h.prefix, key[depth:])
	if cp < len(h.prefix) {
		// Split inside n's compressed path: n survives under a new parent
		// with its prefix trimmed, so clone it before trimming.
		nn := &node4{inner: inner{prefix: append([]byte(nil), h.prefix[:cp]...)}}
		edge := h.prefix[cp]
		cn := cloneNode(n)
		header(cn).prefix = append([]byte(nil), h.prefix[cp+1:]...)
		addChild(nn, edge, cn)
		attach(nn, key, depth+cp, &leaf{key: key, val: val})
		return nn, 0, false
	}
	depth += len(h.prefix)

	if depth == len(key) {
		cn := cloneNode(n)
		ch := header(cn)
		if ch.term != nil {
			old := ch.term.val
			ch.term = &leaf{key: key, val: val}
			return cn, old, true
		}
		ch.term = &leaf{key: key, val: val}
		return cn, 0, false
	}

	b := key[depth]
	child := findChild(n, b)
	if child == nil {
		// addChild mutates (and possibly grows) the node it is given, so
		// hand it a clone; growth then also starts from the clone's header.
		return addChild(cloneNode(n), b, &leaf{key: key, val: val}), 0, false
	}
	newChild, old, updated := cowInsert(child, key, depth+1, val)
	cn := cloneNode(n)
	replaceChild(cn, b, newChild)
	return cn, old, updated
}

// CowDelete returns a tree without key, leaving t unchanged. Like Delete
// it reports the removed value if the key was present.
func (t *Tree) CowDelete(key []byte) (nu *Tree, old uint64, ok bool) {
	root, old, ok := cowRemove(t.root, key, 0)
	if !ok {
		return t, 0, false
	}
	return &Tree{root: root, size: t.size - 1}, old, true
}

// cowRemove mirrors (*Tree).remove with every mutated node cloned first.
func cowRemove(n node, key []byte, depth int) (node, uint64, bool) {
	if n == nil {
		return nil, 0, false
	}
	if l, ok := n.(*leaf); ok {
		if bytes.Equal(l.key, key) {
			return nil, l.val, true
		}
		return n, 0, false
	}

	h := header(n)
	if len(key)-depth < len(h.prefix) || !bytes.Equal(h.prefix, key[depth:depth+len(h.prefix)]) {
		return n, 0, false
	}
	depth += len(h.prefix)

	if depth == len(key) {
		if h.term == nil {
			return n, 0, false
		}
		old := h.term.val
		cn := cloneNode(n)
		header(cn).term = nil
		return cowCompact(cn), old, true
	}

	b := key[depth]
	child := findChild(n, b)
	if child == nil {
		return n, 0, false
	}
	newChild, old, ok := cowRemove(child, key, depth+1)
	if !ok {
		return n, 0, false
	}
	cn := cloneNode(n)
	if newChild == nil {
		removeChild(cn, b)
		return cowCompact(cn), old, true
	}
	replaceChild(cn, b, newChild)
	return cn, old, true
}

// cowCompact is compact for a node the caller already owns (a clone): the
// only case compact mutates *another* node — merging the prefix into a
// lone child during path re-compression — clones that child first here.
func cowCompact(n node) node {
	h := header(n)
	if h.n == 1 && h.term == nil {
		b, child := soleChild(n)
		if cl, ok := child.(*leaf); ok {
			return cl
		}
		ch := header(child)
		merged := make([]byte, 0, len(h.prefix)+1+len(ch.prefix))
		merged = append(merged, h.prefix...)
		merged = append(merged, b)
		merged = append(merged, ch.prefix...)
		cc := cloneNode(child)
		header(cc).prefix = merged
		return cc
	}
	return compact(n)
}

// cloneNode shallow-copies an inner node: header fields (the prefix slice
// header is shared — see the package invariant above) plus the key/index
// and children arrays. Subtrees are shared, not copied.
func cloneNode(n node) node {
	switch v := n.(type) {
	case *node4:
		c := *v
		return &c
	case *node16:
		c := *v
		return &c
	case *node48:
		c := *v
		return &c
	case *node256:
		c := *v
		return &c
	default:
		panic("art: cloneNode on leaf")
	}
}
