package art

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestBatchMatchesSequentialCow drives a batch and a per-key CowInsert
// sequence with the same operations and requires identical results, while
// the base tree stays bit-for-bit readable with its original contents.
func TestBatchMatchesSequentialCow(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := New()
	for i := 0; i < 500; i++ {
		nu, _, _ := base.CowInsert([]byte(randKey(rng)), uint64(i))
		base = nu
	}
	baseContents := dump(base)

	for round := 0; round < 50; round++ {
		b := base.BeginBatch()
		ref := base
		n := 1 + rng.Intn(64)
		for i := 0; i < n; i++ {
			k := []byte(randKey(rng))
			v := rng.Uint64()
			bOld, bUpd := b.Insert(k, v)
			nu, rOld, rUpd := ref.CowInsert(k, v)
			ref = nu
			if bOld != rOld || bUpd != rUpd {
				t.Fatalf("round %d: Insert(%q) = (%d,%v), CowInsert = (%d,%v)", round, k, bOld, bUpd, rOld, rUpd)
			}
			// The working state must be readable mid-batch.
			if got, ok := b.Get(k); !ok || got != v {
				t.Fatalf("round %d: mid-batch Get(%q) = %d,%v want %d", round, k, got, ok, v)
			}
		}
		if b.Len() != ref.Len() {
			t.Fatalf("round %d: batch Len %d, ref %d", round, b.Len(), ref.Len())
		}
		got := b.Commit()
		sameContents(t, dump(ref), got, fmt.Sprintf("round %d committed", round))
		sameContents(t, baseContents, base, fmt.Sprintf("round %d base", round))
	}
}

// TestBatchTerminatorAndSplitPaths pins the structural edge cases: keys
// that are prefixes of other keys (terminator leaves), prefix splits, and
// in-batch updates of keys the same batch inserted.
func TestBatchTerminatorAndSplitPaths(t *testing.T) {
	base := New()
	for _, k := range []string{"abcde", "abcdf", "abxyz"} {
		nu, _, _ := base.CowInsert([]byte(k), 1)
		base = nu
	}
	b := base.BeginBatch()
	ops := []struct {
		key     string
		val     uint64
		wantUpd bool
	}{
		{"abc", 2, false},    // terminator inside compressed path
		{"abcd", 3, false},   // terminator at existing node
		{"abcde", 4, true},   // update base key
		{"ab", 5, false},     // split above
		{"abc", 6, true},     // update a key this batch inserted
		{"zzz", 7, false},    // fresh top-level branch
		{"abcdefg", 8, false}, // extend below a leaf
	}
	want := map[string]uint64{"abcdf": 1, "abxyz": 1}
	for _, op := range ops {
		_, upd := b.Insert([]byte(op.key), op.val)
		if upd != op.wantUpd {
			t.Fatalf("Insert(%q): updated=%v want %v", op.key, upd, op.wantUpd)
		}
		want[op.key] = op.val
	}
	want["abcde"] = 4
	want["abc"] = 6
	sameContents(t, want, b.Commit(), "committed")
	sameContents(t, map[string]uint64{"abcde": 1, "abcdf": 1, "abxyz": 1}, base, "base")
}

// TestBatchPanicsAfterCommit pins the ownership rule: a committed batch's
// tags no longer confer mutation rights, so Insert must refuse.
func TestBatchPanicsAfterCommit(t *testing.T) {
	b := New().BeginBatch()
	b.Insert([]byte("k"), 1)
	b.Commit()
	defer func() {
		if recover() == nil {
			t.Fatal("Insert on committed batch did not panic")
		}
	}()
	b.Insert([]byte("k2"), 2)
}
