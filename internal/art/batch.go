package art

import "bytes"

// Batch is a transient copy-on-write editor over a base tree: a sequence
// of inserts that clones each node reachable from the base at most once,
// no matter how many keys land under it, and publishes the result as one
// new immutable *Tree. It is the amortised counterpart of calling
// CowInsert per key (which re-clones the root-to-leaf path every time).
//
// Ownership is tracked by tagging each node the batch creates or clones
// with the batch's identity (inner.owner): an insert walking into a node
// it already owns mutates it in place, which is safe because an owned node
// is reachable only from this batch's private root until Commit. Nodes of
// the base tree are never mutated, so the base remains published and
// readable throughout. The owner tag is a pointer, not a generation
// counter, so a node can never be confused with a later batch's property:
// the tag keeps the batch alive and therefore unique.
//
// After Commit the produced tree is immutable like any CoW-published tree;
// further Insert calls on the batch panic (a committed batch's tags no
// longer confer ownership). A Batch is not safe for concurrent use; HART
// drives one batch per shard under the shard's writer lock.
type Batch struct {
	root      node
	size      int
	committed bool
}

// BeginBatch opens a batch over t. t itself is never modified.
func (t *Tree) BeginBatch() *Batch {
	return &Batch{root: t.root, size: t.size}
}

// Len returns the number of records in the batch's working state.
func (b *Batch) Len() int { return b.size }

// Get returns the value stored under key in the batch's working state
// (base tree plus all inserts so far).
func (b *Batch) Get(key []byte) (uint64, bool) {
	return (&Tree{root: b.root}).Get(key)
}

// Commit freezes the batch and returns its state as an immutable tree.
// The batch cannot be used afterwards.
func (b *Batch) Commit() *Tree {
	b.committed = true
	return &Tree{root: b.root, size: b.size}
}

// Insert stores val under key in the batch's working state, returning the
// previous value if the key was present. The key bytes are copied.
func (b *Batch) Insert(key []byte, val uint64) (old uint64, updated bool) {
	if b.committed {
		panic("art: Insert on committed Batch")
	}
	k := append([]byte(nil), key...)
	b.root, old, updated = b.insert(b.root, k, 0, val)
	if !updated {
		b.size++
	}
	return old, updated
}

// own returns n if the batch already owns it, else a clone tagged as
// owned. Leaves are always replaced whole (they may be shared with the
// base), so own is only called on inner nodes.
func (b *Batch) own(n node) node {
	if header(n).owner == b {
		return n
	}
	c := cloneNode(n)
	header(c).owner = b
	return c
}

// insert mirrors cowInsert, cloning each base node at most once.
func (b *Batch) insert(n node, key []byte, depth int, val uint64) (node, uint64, bool) {
	if n == nil {
		return &leaf{key: key, val: val}, 0, false
	}
	if l, ok := n.(*leaf); ok {
		if bytes.Equal(l.key, key) {
			return &leaf{key: key, val: val}, l.val, true
		}
		cp := commonPrefixLen(l.key[depth:], key[depth:])
		nn := &node4{inner: inner{prefix: append([]byte(nil), key[depth:depth+cp]...), owner: b}}
		attach(nn, l.key, depth+cp, l) // l itself is shared, not copied
		attach(nn, key, depth+cp, &leaf{key: key, val: val})
		return nn, 0, false
	}

	h := header(n)
	cp := commonPrefixLen(h.prefix, key[depth:])
	if cp < len(h.prefix) {
		// Split inside n's compressed path: n survives under a new parent
		// with its prefix trimmed; trim on an owned copy.
		nn := &node4{inner: inner{prefix: append([]byte(nil), h.prefix[:cp]...), owner: b}}
		edge := h.prefix[cp]
		cn := b.own(n)
		header(cn).prefix = append([]byte(nil), h.prefix[cp+1:]...)
		addChild(nn, edge, cn)
		attach(nn, key, depth+cp, &leaf{key: key, val: val})
		return nn, 0, false
	}
	depth += len(h.prefix)

	if depth == len(key) {
		cn := b.own(n)
		ch := header(cn)
		if ch.term != nil {
			old := ch.term.val
			ch.term = &leaf{key: key, val: val} // term may be shared: replace whole
			return cn, old, true
		}
		ch.term = &leaf{key: key, val: val}
		return cn, 0, false
	}

	eb := key[depth]
	child := findChild(n, eb)
	if child == nil {
		// addChild mutates (and possibly grows) the node it is given; growth
		// copies the inner header, so the owner tag survives it.
		return addChild(b.own(n), eb, &leaf{key: key, val: val}), 0, false
	}
	newChild, old, updated := b.insert(child, key, depth+1, val)
	cn := b.own(n)
	if newChild != child {
		replaceChild(cn, eb, newChild)
	}
	return cn, old, updated
}
