package art

import "bytes"

// Delete removes key, returning its value if present. Inner nodes shrink
// to smaller kinds as they empty, and single-child paths re-compress, so a
// tree that empties returns to a nil root.
func (t *Tree) Delete(key []byte) (uint64, bool) {
	nn, old, ok := t.remove(t.root, key, 0)
	if !ok {
		return 0, false
	}
	t.root = nn
	t.size--
	return old, true
}

// remove deletes key below n and returns the replacement node.
func (t *Tree) remove(n node, key []byte, depth int) (node, uint64, bool) {
	if n == nil {
		return nil, 0, false
	}
	if l, ok := n.(*leaf); ok {
		if bytes.Equal(l.key, key) {
			return nil, l.val, true
		}
		return n, 0, false
	}

	h := header(n)
	if len(key)-depth < len(h.prefix) || !bytes.Equal(h.prefix, key[depth:depth+len(h.prefix)]) {
		return n, 0, false
	}
	depth += len(h.prefix)

	if depth == len(key) {
		if h.term == nil {
			return n, 0, false
		}
		old := h.term.val
		h.term = nil
		return compact(n), old, true
	}

	b := key[depth]
	child := findChild(n, b)
	if child == nil {
		return n, 0, false
	}
	newChild, old, ok := t.remove(child, key, depth+1)
	if !ok {
		return n, 0, false
	}
	if newChild == nil {
		removeChild(n, b)
		return compact(n), old, true
	}
	if newChild != child {
		replaceChild(n, b, newChild)
	}
	return n, old, true
}

// removeChild deletes the edge b; b must be present.
func removeChild(n node, b byte) {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < v.n; i++ {
			if v.keys[i] == b {
				copy(v.keys[i:v.n-1], v.keys[i+1:v.n])
				copy(v.children[i:v.n-1], v.children[i+1:v.n])
				v.n--
				v.children[v.n] = nil
				return
			}
		}
	case *node16:
		for i := 0; i < v.n; i++ {
			if v.keys[i] == b {
				copy(v.keys[i:v.n-1], v.keys[i+1:v.n])
				copy(v.children[i:v.n-1], v.children[i+1:v.n])
				v.n--
				v.children[v.n] = nil
				return
			}
		}
	case *node48:
		if s := v.index[b]; s != 0 {
			v.children[s-1] = nil
			v.index[b] = 0
			v.n--
			return
		}
	case *node256:
		if v.children[b] != nil {
			v.children[b] = nil
			v.n--
			return
		}
	}
	panic("art: removeChild on absent edge")
}

// compact re-establishes the tree's shape invariants after a removal:
// empty nodes vanish, a lone terminator collapses to its leaf, a lone
// child re-compresses into the parent path, and underfull nodes downsize
// to the smaller kind.
func compact(n node) node {
	h := header(n)
	switch {
	case h.n == 0 && h.term == nil:
		return nil
	case h.n == 0:
		return h.term
	case h.n == 1 && h.term == nil:
		// Path re-compression: merge prefix + edge byte + child prefix.
		b, child := soleChild(n)
		if cl, ok := child.(*leaf); ok {
			return cl
		}
		ch := header(child)
		merged := make([]byte, 0, len(h.prefix)+1+len(ch.prefix))
		merged = append(merged, h.prefix...)
		merged = append(merged, b)
		merged = append(merged, ch.prefix...)
		ch.prefix = merged
		return child
	}
	switch v := n.(type) {
	case *node16:
		if v.n <= 3 {
			d := &node4{inner: v.inner}
			copy(d.keys[:], v.keys[:v.n])
			copy(d.children[:], v.children[:v.n])
			return d
		}
	case *node48:
		if v.n <= 12 {
			d := &node16{inner: v.inner}
			i := 0
			for kb := 0; kb < 256; kb++ {
				if s := v.index[kb]; s != 0 {
					d.keys[i] = byte(kb)
					d.children[i] = v.children[s-1]
					i++
				}
			}
			return d
		}
	case *node256:
		if v.n <= 37 {
			d := &node48{inner: v.inner}
			slot := 0
			for kb := 0; kb < 256; kb++ {
				if c := v.children[kb]; c != nil {
					d.children[slot] = c
					d.index[kb] = uint8(slot + 1)
					slot++
				}
			}
			return d
		}
	}
	return n
}

// soleChild returns the edge byte and child of a node with exactly one
// child.
func soleChild(n node) (byte, node) {
	switch v := n.(type) {
	case *node4:
		return v.keys[0], v.children[0]
	case *node16:
		return v.keys[0], v.children[0]
	case *node48:
		for kb := 0; kb < 256; kb++ {
			if s := v.index[kb]; s != 0 {
				return byte(kb), v.children[s-1]
			}
		}
	case *node256:
		for kb := 0; kb < 256; kb++ {
			if v.children[kb] != nil {
				return byte(kb), v.children[kb]
			}
		}
	}
	panic("art: soleChild on node without children")
}
