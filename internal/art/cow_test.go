package art

import (
	"fmt"
	"math/rand"
	"testing"
)

// dump materialises a tree's contents for snapshot comparison.
func dump(t *Tree) map[string]uint64 {
	m := make(map[string]uint64)
	t.Ascend(func(k []byte, v uint64) bool {
		m[string(k)] = v
		return true
	})
	return m
}

func sameContents(t *testing.T, want map[string]uint64, tree *Tree, label string) {
	t.Helper()
	got := dump(tree)
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("%s: key %q = %d,%v want %d", label, k, gv, ok, v)
		}
	}
	if tree.Len() != len(want) {
		t.Fatalf("%s: Len() = %d, want %d", label, tree.Len(), len(want))
	}
}

// TestCowLeavesOriginalUnchanged is the core COW guarantee: after any
// CowInsert/CowDelete, every previously taken snapshot still reads
// exactly what it read when taken.
func TestCowLeavesOriginalUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tree := New()
	live := make(map[string]uint64)

	type snap struct {
		tree     *Tree
		contents map[string]uint64
	}
	var snaps []snap

	for i := 0; i < 4000; i++ {
		if rng.Intn(100) < 5 {
			snaps = append(snaps, snap{tree, dump(tree)})
		}
		k := []byte(randKey(rng))
		if rng.Intn(3) == 0 {
			nu, old, ok := tree.CowDelete(k)
			if want, present := live[string(k)]; present {
				if !ok || old != want {
					t.Fatalf("CowDelete(%q) = %d,%v want %d,true", k, old, ok, want)
				}
				delete(live, string(k))
			} else if ok {
				t.Fatalf("CowDelete(%q) deleted a missing key", k)
			}
			tree = nu
		} else {
			v := rng.Uint64()
			nu, old, updated := tree.CowInsert(k, v)
			if want, present := live[string(k)]; present != updated || (updated && old != want) {
				t.Fatalf("CowInsert(%q) = %d,%v want %d,%v", k, old, updated, want, present)
			}
			live[string(k)] = v
			tree = nu
		}
	}

	sameContents(t, live, tree, "final tree")
	for i, s := range snaps {
		sameContents(t, s.contents, s.tree, fmt.Sprintf("snapshot %d", i))
	}
}

// TestCowMatchesInPlace drives identical random operation sequences
// through the in-place and COW mutators and checks they agree at every
// step, including return values.
func TestCowMatchesInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inPlace := New()
	cow := New()

	for i := 0; i < 6000; i++ {
		k := []byte(randKey(rng))
		if rng.Intn(3) == 0 {
			o1, ok1 := inPlace.Delete(k)
			nu, o2, ok2 := cow.CowDelete(k)
			if o1 != o2 || ok1 != ok2 {
				t.Fatalf("Delete(%q): in-place %d,%v cow %d,%v", k, o1, ok1, o2, ok2)
			}
			cow = nu
		} else {
			v := rng.Uint64()
			o1, u1 := inPlace.Insert(k, v)
			nu, o2, u2 := cow.CowInsert(k, v)
			if o1 != o2 || u1 != u2 {
				t.Fatalf("Insert(%q): in-place %d,%v cow %d,%v", k, o1, u1, o2, u2)
			}
			cow = nu
		}
		if inPlace.Len() != cow.Len() {
			t.Fatalf("step %d: Len in-place %d cow %d", i, inPlace.Len(), cow.Len())
		}
	}
	sameContents(t, dump(inPlace), cow, "cow vs in-place")

	// Structural agreement too: node counts must match, since cowInsert /
	// cowRemove mirror the in-place algorithms decision for decision.
	s1, s2 := inPlace.Stats(), cow.Stats()
	if s1 != s2 {
		t.Fatalf("stats diverge: in-place %+v cow %+v", s1, s2)
	}
}

// TestCowDeleteMissingReturnsSameTree checks the no-op fast path: deleting
// an absent key must not clone anything.
func TestCowDeleteMissingReturnsSameTree(t *testing.T) {
	tree := New()
	tree, _, _ = tree.CowInsert([]byte("alpha"), 1)
	tree, _, _ = tree.CowInsert([]byte("beta"), 2)
	nu, _, ok := tree.CowDelete([]byte("gamma"))
	if ok {
		t.Fatal("deleted a missing key")
	}
	if nu != tree {
		t.Fatal("no-op CowDelete returned a different tree")
	}
}

// TestCowGrowthAndShrink exercises every node-width transition
// (4→16→48→256 and back) through the COW mutators while holding a
// snapshot across each transition.
func TestCowGrowthAndShrink(t *testing.T) {
	tree := New()
	var snaps []*Tree
	var sizes []int
	for i := 0; i < 256; i++ {
		tree, _, _ = tree.CowInsert([]byte{'k', byte(i)}, uint64(i))
		if i == 3 || i == 15 || i == 47 || i == 255 {
			snaps = append(snaps, tree)
			sizes = append(sizes, tree.Len())
		}
	}
	for i := 255; i >= 0; i-- {
		nu, old, ok := tree.CowDelete([]byte{'k', byte(i)})
		if !ok || old != uint64(i) {
			t.Fatalf("CowDelete(k%d) = %d,%v", i, old, ok)
		}
		tree = nu
	}
	if !tree.Empty() {
		t.Fatalf("tree not empty after deleting all: %d left", tree.Len())
	}
	for si, s := range snaps {
		if s.Len() != sizes[si] {
			t.Fatalf("snapshot %d mutated: Len %d want %d", si, s.Len(), sizes[si])
		}
		for i := 0; i < sizes[si]; i++ {
			if v, ok := s.Get([]byte{'k', byte(i)}); !ok || v != uint64(i) {
				t.Fatalf("snapshot %d lost k%d (%d,%v)", si, i, v, ok)
			}
		}
	}
}
