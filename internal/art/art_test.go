package art

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// ref is a reference model for differential testing.
type ref map[string]uint64

func (r ref) sortedKeys() []string {
	ks := make([]string, 0, len(r))
	for k := range r {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func checkAgainstRef(t *testing.T, tr *Tree, r ref) {
	t.Helper()
	if tr.Len() != len(r) {
		t.Fatalf("Len = %d, ref has %d", tr.Len(), len(r))
	}
	for k, v := range r {
		got, ok := tr.Get([]byte(k))
		if !ok || got != v {
			t.Fatalf("Get(%q) = (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
	var keys []string
	tr.Ascend(func(k []byte, v uint64) bool {
		keys = append(keys, string(k))
		if r[string(k)] != v {
			t.Fatalf("Ascend key %q value %d, want %d", k, v, r[string(k)])
		}
		return true
	})
	want := r.sortedKeys()
	if len(keys) != len(want) {
		t.Fatalf("Ascend visited %d keys, want %d", len(keys), len(want))
	}
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("Ascend order: keys[%d] = %q, want %q", i, keys[i], want[i])
		}
	}
}

func TestInsertGetBasic(t *testing.T) {
	tr := New()
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	keys := []string{"romane", "romanus", "romulus", "rubens", "ruber", "rubicon", "rubicundus"}
	for i, k := range keys {
		if _, updated := tr.Insert([]byte(k), uint64(i+1)); updated {
			t.Fatalf("Insert(%q) reported update on first insert", k)
		}
	}
	for i, k := range keys {
		v, ok := tr.Get([]byte(k))
		if !ok || v != uint64(i+1) {
			t.Fatalf("Get(%q) = (%d,%v), want (%d,true)", k, v, ok, i+1)
		}
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
}

func TestInsertUpdateReturnsOld(t *testing.T) {
	tr := New()
	tr.Insert([]byte("key"), 10)
	old, updated := tr.Insert([]byte("key"), 20)
	if !updated || old != 10 {
		t.Fatalf("Insert update = (%d,%v), want (10,true)", old, updated)
	}
	if v, _ := tr.Get([]byte("key")); v != 20 {
		t.Fatalf("Get after update = %d, want 20", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after update = %d, want 1", tr.Len())
	}
}

func TestPrefixKeys(t *testing.T) {
	// Keys that are prefixes of one another exercise terminator leaves.
	tr := New()
	r := ref{}
	keys := []string{"a", "ab", "abc", "abcd", "abcde", "b", "", "abce", "abd"}
	for i, k := range keys {
		tr.Insert([]byte(k), uint64(i+100))
		r[k] = uint64(i + 100)
	}
	checkAgainstRef(t, tr, r)
	// Delete the middle of a prefix chain.
	for _, k := range []string{"abc", "a", ""} {
		if _, ok := tr.Delete([]byte(k)); !ok {
			t.Fatalf("Delete(%q) failed", k)
		}
		delete(r, k)
		checkAgainstRef(t, tr, r)
	}
}

func TestNodeGrowthAllKinds(t *testing.T) {
	// 256 single-byte-suffix keys force NODE4 -> NODE16 -> NODE48 -> NODE256.
	tr := New()
	r := ref{}
	for i := 0; i < 256; i++ {
		k := string([]byte{'p', 'r', 'e', byte(i)})
		tr.Insert([]byte(k), uint64(i))
		r[k] = uint64(i)
		// Validate at the growth boundaries.
		if i == 3 || i == 4 || i == 15 || i == 16 || i == 47 || i == 48 || i == 255 {
			checkAgainstRef(t, tr, r)
		}
	}
	st := tr.Stats()
	if st.Node256s == 0 {
		t.Fatalf("expected a NODE256 after 256 fanout inserts; stats %+v", st)
	}
}

func TestNodeShrinkAllKinds(t *testing.T) {
	tr := New()
	r := ref{}
	for i := 0; i < 256; i++ {
		k := string([]byte{'x', byte(i)})
		tr.Insert([]byte(k), uint64(i))
		r[k] = uint64(i)
	}
	order := rand.New(rand.NewSource(7)).Perm(256)
	for n, i := range order {
		k := string([]byte{'x', byte(i)})
		if _, ok := tr.Delete([]byte(k)); !ok {
			t.Fatalf("Delete(%q) failed", k)
		}
		delete(r, k)
		// Validate around the shrink boundaries and at the end.
		left := 256 - n - 1
		if left == 48 || left == 37 || left == 16 || left == 12 || left == 4 || left == 3 || left == 1 || left == 0 {
			checkAgainstRef(t, tr, r)
		}
	}
	if tr.root != nil {
		t.Fatal("root not nil after deleting all keys")
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New()
	tr.Insert([]byte("abc"), 1)
	for _, k := range []string{"", "a", "ab", "abcd", "abd", "xyz"} {
		if _, ok := tr.Delete([]byte(k)); ok {
			t.Fatalf("Delete(%q) succeeded on missing key", k)
		}
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after failed deletes, want 1", tr.Len())
	}
}

func TestPathCompressionSplit(t *testing.T) {
	tr := New()
	r := ref{}
	// Long shared prefix, diverging at several depths.
	for i, k := range []string{"aaaaaaaaaaaaaaaa1", "aaaaaaaaaaaaaaaa2", "aaaaaaaa", "aaaab", "aaaaaaaaaaaaaaaa"} {
		tr.Insert([]byte(k), uint64(i))
		r[k] = uint64(i)
	}
	checkAgainstRef(t, tr, r)
}

func TestAscendRange(t *testing.T) {
	tr := New()
	var all []string
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key%04d", i)
		tr.Insert([]byte(k), uint64(i))
		all = append(all, k)
	}
	cases := []struct{ start, end string }{
		{"key0100", "key0200"},
		{"key0000", "key1000"},
		{"", "key0001"},
		{"key0999", "zzz"},
		{"key0500", "key0500"},
		{"a", "b"},
	}
	for _, c := range cases {
		var got []string
		tr.AscendRange([]byte(c.start), []byte(c.end), func(k []byte, _ uint64) bool {
			got = append(got, string(k))
			return true
		})
		var want []string
		for _, k := range all {
			if k >= c.start && k < c.end {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range [%q,%q): got %d keys, want %d", c.start, c.end, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range [%q,%q): got[%d]=%q want %q", c.start, c.end, i, got[i], want[i])
			}
		}
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree returned ok")
	}
	keys := []string{"mango", "apple", "zebra", "app", "zzz", "m"}
	for i, k := range keys {
		tr.Insert([]byte(k), uint64(i))
	}
	if k, _, _ := tr.Min(); string(k) != "app" {
		t.Fatalf("Min = %q, want %q", k, "app")
	}
	if k, _, _ := tr.Max(); string(k) != "zzz" {
		t.Fatalf("Max = %q, want %q", k, "zzz")
	}
}

func TestKeySliceNotAliased(t *testing.T) {
	tr := New()
	buf := []byte("mutable")
	tr.Insert(buf, 1)
	buf[0] = 'X'
	if _, ok := tr.Get([]byte("mutable")); !ok {
		t.Fatal("tree aliased the caller's key buffer")
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New()
	r := ref{}
	var live []string
	const ops = 20000
	for i := 0; i < ops; i++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert
			k := randKey(rng)
			v := rng.Uint64()
			_, updated := tr.Insert([]byte(k), v)
			if _, existed := r[k]; existed != updated {
				t.Fatalf("op %d: Insert(%q) updated=%v, ref existed=%v", i, k, updated, existed)
			}
			if !updated {
				live = append(live, k)
			}
			r[k] = v
		case op < 8 && len(live) > 0: // delete an existing key
			j := rng.Intn(len(live))
			k := live[j]
			old, ok := tr.Delete([]byte(k))
			if !ok || old != r[k] {
				t.Fatalf("op %d: Delete(%q) = (%d,%v), want (%d,true)", i, k, old, ok, r[k])
			}
			delete(r, k)
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // lookup (possibly missing)
			k := randKey(rng)
			got, ok := tr.Get([]byte(k))
			want, existed := r[k]
			if ok != existed || (ok && got != want) {
				t.Fatalf("op %d: Get(%q) = (%d,%v), want (%d,%v)", i, k, got, ok, want, existed)
			}
		}
	}
	checkAgainstRef(t, tr, r)
}

// randKey draws short keys from a small alphabet to maximise structural
// collisions (prefix chains, splits, terminators).
func randKey(rng *rand.Rand) string {
	n := rng.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = "abAB01"[rng.Intn(6)]
	}
	return string(b)
}

func TestQuickInsertGetDelete(t *testing.T) {
	// Property: a tree loaded with any key set returns exactly that set in
	// sorted order, and deleting half leaves exactly the other half.
	f := func(raw [][]byte) bool {
		tr := New()
		r := ref{}
		for i, k := range raw {
			if len(k) > 64 {
				k = k[:64]
			}
			tr.Insert(k, uint64(i))
			r[string(k)] = uint64(i)
		}
		for k, v := range r {
			if got, ok := tr.Get([]byte(k)); !ok || got != v {
				return false
			}
		}
		i := 0
		for k := range r {
			if i%2 == 0 {
				if _, ok := tr.Delete([]byte(k)); !ok {
					return false
				}
				delete(r, k)
			}
			i++
		}
		if tr.Len() != len(r) {
			return false
		}
		prev := []byte(nil)
		ok := true
		first := true
		tr.Ascend(func(k []byte, v uint64) bool {
			if want, exists := r[string(k)]; !exists || want != v {
				ok = false
				return false
			}
			if !first && bytes.Compare(prev, k) >= 0 {
				ok = false
				return false
			}
			prev = append(prev[:0], k...)
			first = false
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounts(t *testing.T) {
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Insert([]byte(fmt.Sprintf("%08d", i)), uint64(i))
	}
	st := tr.Stats()
	if st.Records != 10000 {
		t.Fatalf("Stats.Records = %d, want 10000", st.Records)
	}
	if st.Bytes <= 0 || st.Height <= 0 {
		t.Fatalf("Stats has non-positive Bytes/Height: %+v", st)
	}
}

func BenchmarkInsert(b *testing.B) {
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%012d", i*2654435761%1000000007))
	}
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i], uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100000
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = []byte(fmt.Sprintf("%012d", i*2654435761%1000000007))
		tr.Insert(keys[i], uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i%n])
	}
}

func TestDescend(t *testing.T) {
	tr := New()
	var keys []string
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("d%04d", i)
		tr.Insert([]byte(k), uint64(i))
		keys = append(keys, k)
	}
	tr.Insert([]byte("d"), 999) // terminator exercise
	var got []string
	tr.Descend(func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 301 {
		t.Fatalf("Descend visited %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] <= got[i] {
			t.Fatalf("Descend out of order: %q then %q", got[i-1], got[i])
		}
	}
	if got[len(got)-1] != "d" {
		t.Fatalf("terminator key not last: %q", got[len(got)-1])
	}
	// Bounded reverse range.
	got = got[:0]
	tr.DescendRange([]byte("d0100"), []byte("d0110"), func(k []byte, _ uint64) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 10 || got[0] != "d0109" || got[9] != "d0100" {
		t.Fatalf("DescendRange = %v", got)
	}
	// Early stop.
	n := 0
	tr.Descend(func(k []byte, _ uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestKindStringsAndEmpty(t *testing.T) {
	names := map[Kind]string{
		KindLeaf: "LEAF", Kind4: "NODE4", Kind16: "NODE16",
		Kind48: "NODE48", Kind256: "NODE256", Kind(99): "NODE?",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	tr := New()
	if !tr.Empty() {
		t.Fatal("new tree not Empty")
	}
	tr.Insert([]byte("x"), 1)
	if tr.Empty() {
		t.Fatal("non-empty tree reports Empty")
	}
}

// TestMinMaxOnLargeNodes drives extreme() through NODE48/NODE256 paths
// and terminator interactions.
func TestMinMaxOnLargeNodes(t *testing.T) {
	tr := New()
	// Dense fanout under one prefix forces NODE256 at the top.
	for i := 255; i >= 0; i-- {
		tr.Insert([]byte{'q', byte(i), 'z'}, uint64(i))
	}
	tr.Insert([]byte("q"), 777) // terminator at the NODE256's parent path
	if k, v, ok := tr.Min(); !ok || string(k) != "q" || v != 777 {
		t.Fatalf("Min = (%q,%d,%v)", k, v, ok)
	}
	if k, _, ok := tr.Max(); !ok || !bytes.Equal(k, []byte{'q', 255, 'z'}) {
		t.Fatalf("Max = %v", k)
	}
	// Shrink down to NODE48 territory and re-check.
	for i := 60; i < 256; i++ {
		tr.Delete([]byte{'q', byte(i), 'z'})
	}
	if k, _, ok := tr.Max(); !ok || !bytes.Equal(k, []byte{'q', 59, 'z'}) {
		t.Fatalf("Max after shrink = %v", k)
	}
	if k, _, _ := tr.Min(); string(k) != "q" {
		t.Fatalf("Min after shrink = %q", k)
	}
}

// TestSoleChildMergeAllKinds drives single-child path merges out of every
// node kind by deleting down to one child.
func TestSoleChildMergeAllKinds(t *testing.T) {
	for _, fan := range []int{4, 16, 48, 256} {
		tr := New()
		for i := 0; i < fan; i++ {
			tr.Insert([]byte{'m', byte(i), 'a', 'b'}, uint64(i))
		}
		// Delete all but child 2; the survivor's path must re-compress.
		for i := 0; i < fan; i++ {
			if i == 2 {
				continue
			}
			if _, ok := tr.Delete([]byte{'m', byte(i), 'a', 'b'}); !ok {
				t.Fatalf("fan %d: delete %d failed", fan, i)
			}
		}
		if v, ok := tr.Get([]byte{'m', 2, 'a', 'b'}); !ok || v != 2 {
			t.Fatalf("fan %d: survivor lost after merges: (%d,%v)", fan, v, ok)
		}
		if tr.Len() != 1 {
			t.Fatalf("fan %d: Len = %d", fan, tr.Len())
		}
	}
}

func TestDescendOnLargeNodesWithBounds(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Insert([]byte{'w', byte(i)}, uint64(i))
	}
	var got []byte
	tr.DescendRange([]byte{'w', 50}, []byte{'w', 60}, func(k []byte, v uint64) bool {
		got = append(got, k[1])
		return true
	})
	if len(got) != 10 || got[0] != 59 || got[9] != 50 {
		t.Fatalf("DescendRange over NODE256 = %v", got)
	}
}
