package hashdir

import (
	"fmt"
	"sort"
	"testing"
)

// TestNewFromSorted: bulk construction is observably identical to
// repeated Put — same lookups, same sorted key list — and keeps the load
// factor below the grow threshold.
func TestNewFromSorted(t *testing.T) {
	for _, n := range []int{0, 1, 11, 1000} {
		keys := make([]string, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%06d", i)
			vals[i] = i
		}
		bulk := NewFromSorted(keys, vals)
		inc := New[int]()
		for i, k := range keys {
			inc.Put([]byte(k), vals[i])
		}
		if bulk.Len() != inc.Len() {
			t.Fatalf("n=%d: Len %d vs %d", n, bulk.Len(), inc.Len())
		}
		for i, k := range keys {
			if v, ok := bulk.Get([]byte(k)); !ok || v != vals[i] {
				t.Fatalf("n=%d: Get(%q) = (%d, %v)", n, k, v, ok)
			}
		}
		if _, ok := bulk.Get([]byte("absent")); ok {
			t.Fatalf("n=%d: phantom key", n)
		}
		bs, is := bulk.SortedKeys(), inc.SortedKeys()
		if len(bs) != len(is) {
			t.Fatalf("n=%d: sorted lengths differ", n)
		}
		for i := range bs {
			if bs[i] != is[i] {
				t.Fatalf("n=%d: sorted[%d] = %q vs %q", n, i, bs[i], is[i])
			}
		}
		st := bulk.Stats()
		if (st.Live+1)*maxLoadDen >= st.Buckets*maxLoadNum {
			t.Fatalf("n=%d: table over load threshold: %+v", n, st)
		}
		// The table stays fully usable for subsequent mutation.
		bulk.Put([]byte("zzz"), -1)
		if !sort.StringsAreSorted(bulk.SortedKeys()) {
			t.Fatalf("n=%d: sorted list broken after Put", n)
		}
	}
}

// TestNewFromSortedRejectsUnsorted: out-of-order and duplicate keys panic
// (the caller contract recovery relies on).
func TestNewFromSortedRejectsUnsorted(t *testing.T) {
	for _, keys := range [][]string{{"b", "a"}, {"a", "a"}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFromSorted(%q) did not panic", keys)
				}
			}()
			NewFromSorted(keys, make([]int, len(keys)))
		}()
	}
}
