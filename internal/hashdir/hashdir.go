// Package hashdir implements the DRAM hash table at the top of HART
// (paper Fig. 1): it maps hash keys — the first kh bytes of each record
// key — to their ARTs.
//
// The paper's analysis (Section III.A.1) relies on two properties this
// implementation provides directly rather than borrowing from Go's map:
//
//   - Bounded collision cost. Keys are at most kh bytes, so the key space
//     is small and fixed; the table grows by doubling at a 75% load
//     factor, keeping probe sequences short ("the hash collision rate is
//     always in a low range and the time complexity ... is close to
//     O(1)").
//   - Cheap ordered iteration. HART's ordered scans visit ARTs in hash-key
//     order; the table maintains a sorted key list updated only when a
//     hash key is inserted or removed, which the paper observes is rare
//     ("the hash table only needs to insert a new key periodically").
//
// The table uses open addressing with linear probing and tombstones,
// 64-bit FNV-1a hashing, and power-of-two capacities. It is not
// internally synchronised: HART guards it with its directory lock,
// matching the paper's locking design (one lock step to find the ART,
// then per-ART locks).
package hashdir

import (
	"sort"
	"unsafe"

	"github.com/casl-sdsu/hart/internal/obs"
)

// MaxKeyLen bounds hash-key length; HART's kh is at most the full key
// length bound (24).
const MaxKeyLen = 24

const (
	minBuckets = 16
	// maxLoadNum/maxLoadDen is the grow threshold (3/4).
	maxLoadNum = 3
	maxLoadDen = 4
)

// slot states, encoded in the keyLen field.
const (
	slotEmpty     = 0xff
	slotTombstone = 0xfe
)

// slot is one open-addressing cell. Keys are stored inline to avoid
// per-entry allocations.
type slot[V any] struct {
	keyLen byte
	key    [MaxKeyLen]byte
	value  V
}

// Table maps short byte-string keys to values of type V.
type Table[V any] struct {
	slots  []slot[V]
	mask   uint64
	live   int
	dead   int // tombstones
	sorted []string
	// clones counts Clone calls over the table's whole lineage (HART's
	// directory republication rate): shared by pointer between a table and
	// every clone descended from it, so the embedding store reads one
	// number however many snapshots were published. Nil on tables built
	// outside New/NewFromSorted (Clones then reports 0).
	clones *obs.Counter
}

// New returns an empty table.
func New[V any]() *Table[V] {
	t := &Table[V]{clones: &obs.Counter{}}
	t.init(minBuckets)
	return t
}

// NewFromSorted builds a table from keys in strictly ascending order with
// values[i] stored under keys[i]. It exists for bulk construction —
// HART's recovery creates every shard of the rebuilt directory in one
// shot — where per-key Put would pay the ordered list's O(n) insertion
// once per key (O(n²) for a large directory). The keys slice is retained
// as the sorted list; callers must not modify it afterwards.
func NewFromSorted[V any](keys []string, values []V) *Table[V] {
	if len(keys) != len(values) {
		panic("hashdir: NewFromSorted keys/values length mismatch")
	}
	n := minBuckets
	for (len(keys)+1)*maxLoadDen >= n*maxLoadNum {
		n *= 2
	}
	t := &Table[V]{clones: &obs.Counter{}}
	t.init(n)
	for i, k := range keys {
		if len(k) > MaxKeyLen {
			panic("hashdir: key exceeds MaxKeyLen")
		}
		if i > 0 && keys[i-1] >= k {
			panic("hashdir: NewFromSorted keys not strictly ascending")
		}
		t.reinsert([]byte(k), values[i])
	}
	t.sorted = keys
	return t
}

// init resets the slot array to n buckets (a power of two).
func (t *Table[V]) init(n int) {
	t.slots = make([]slot[V], n)
	for i := range t.slots {
		t.slots[i].keyLen = slotEmpty
	}
	t.mask = uint64(n - 1)
	t.live = 0
	t.dead = 0
}

// hash is 64-bit FNV-1a.
func hash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// Len returns the number of entries.
func (t *Table[V]) Len() int { return t.live }

// keyEqual compares a slot's key with key.
func (s *slot[V]) keyEqual(key []byte) bool {
	if int(s.keyLen) != len(key) {
		return false
	}
	for i := range key {
		if s.key[i] != key[i] {
			return false
		}
	}
	return true
}

// Get returns the value stored under key.
func (t *Table[V]) Get(key []byte) (V, bool) {
	var zero V
	if len(key) > MaxKeyLen {
		return zero, false
	}
	i := hash(key) & t.mask
	for {
		s := &t.slots[i]
		switch s.keyLen {
		case slotEmpty:
			return zero, false
		case slotTombstone:
			// keep probing
		default:
			if s.keyEqual(key) {
				return s.value, true
			}
		}
		i = (i + 1) & t.mask
	}
}

// Put inserts or replaces the value under key, reporting whether the key
// was newly inserted.
func (t *Table[V]) Put(key []byte, v V) bool {
	if len(key) > MaxKeyLen {
		panic("hashdir: key exceeds MaxKeyLen")
	}
	if (t.live+t.dead+1)*maxLoadDen >= len(t.slots)*maxLoadNum {
		t.grow()
	}
	i := hash(key) & t.mask
	firstTomb := -1
	for {
		s := &t.slots[i]
		switch s.keyLen {
		case slotEmpty:
			if firstTomb >= 0 {
				s = &t.slots[firstTomb]
				t.dead--
			}
			s.keyLen = byte(len(key))
			copy(s.key[:], key)
			s.value = v
			t.live++
			t.insertSorted(string(key))
			return true
		case slotTombstone:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		default:
			if s.keyEqual(key) {
				s.value = v
				return false
			}
		}
		i = (i + 1) & t.mask
	}
}

// Delete removes key, reporting whether it was present.
func (t *Table[V]) Delete(key []byte) bool {
	if len(key) > MaxKeyLen {
		return false
	}
	i := hash(key) & t.mask
	for {
		s := &t.slots[i]
		switch s.keyLen {
		case slotEmpty:
			return false
		case slotTombstone:
			// keep probing
		default:
			if s.keyEqual(key) {
				var zero V
				s.keyLen = slotTombstone
				s.value = zero
				t.live--
				t.dead++
				t.removeSorted(string(key))
				return true
			}
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles capacity (or compacts tombstones at the same size when
// the live count is low) and rehashes.
func (t *Table[V]) grow() {
	old := t.slots
	n := len(old)
	if (t.live+1)*maxLoadDen < n*maxLoadNum/2 {
		// Mostly tombstones: rehash in place at the same capacity.
	} else {
		n *= 2
	}
	sorted := t.sorted // key set unchanged by rehash
	t.init(n)
	t.sorted = sorted
	for i := range old {
		s := &old[i]
		if s.keyLen == slotEmpty || s.keyLen == slotTombstone {
			continue
		}
		t.reinsert(s.key[:s.keyLen], s.value)
	}
}

// reinsert adds an entry during rehash (key known absent, no bookkeeping).
func (t *Table[V]) reinsert(key []byte, v V) {
	i := hash(key) & t.mask
	for t.slots[i].keyLen != slotEmpty {
		i = (i + 1) & t.mask
	}
	s := &t.slots[i]
	s.keyLen = byte(len(key))
	copy(s.key[:], key)
	s.value = v
	t.live++
}

// insertSorted records a new key in the ordered list.
func (t *Table[V]) insertSorted(k string) {
	i := sort.SearchStrings(t.sorted, k)
	t.sorted = append(t.sorted, "")
	copy(t.sorted[i+1:], t.sorted[i:])
	t.sorted[i] = k
}

// removeSorted drops a key from the ordered list.
func (t *Table[V]) removeSorted(k string) {
	if i := sort.SearchStrings(t.sorted, k); i < len(t.sorted) && t.sorted[i] == k {
		t.sorted = append(t.sorted[:i], t.sorted[i+1:]...)
	}
}

// SortedKeys returns the keys in ascending order. The returned slice is
// shared; callers must not modify it and must copy it before releasing
// whatever lock guards the table.
func (t *Table[V]) SortedKeys() []string { return t.sorted }

// Range calls fn for every entry in unspecified order until fn returns
// false.
func (t *Table[V]) Range(fn func(key []byte, v V) bool) {
	for i := range t.slots {
		s := &t.slots[i]
		if s.keyLen == slotEmpty || s.keyLen == slotTombstone {
			continue
		}
		if !fn(s.key[:s.keyLen], s.value) {
			return
		}
	}
}

// Stats describes table occupancy for diagnostics.
type Stats struct {
	// Buckets is the slot-array capacity.
	Buckets int
	// Live and Tombstones are the entry counts by state.
	Live, Tombstones int
	// MaxProbe is the longest probe sequence any current key needs.
	MaxProbe int
}

// Stats computes occupancy statistics.
func (t *Table[V]) Stats() Stats {
	st := Stats{Buckets: len(t.slots), Live: t.live, Tombstones: t.dead}
	for i := range t.slots {
		s := &t.slots[i]
		if s.keyLen == slotEmpty || s.keyLen == slotTombstone {
			continue
		}
		key := s.key[:s.keyLen]
		probe := 1
		for j := hash(key) & t.mask; int(j) != i; j = (j + 1) & t.mask {
			probe++
		}
		if probe > st.MaxProbe {
			st.MaxProbe = probe
		}
	}
	return st
}

// Clone returns a deep copy of the table's own state (slot array and
// sorted key list). Values are copied by assignment and therefore shared
// when V is a pointer type. HART publishes its directory as an immutable
// snapshot behind an atomic pointer; shard insertion and removal — rare,
// per the paper's observation that "the hash table only needs to insert a
// new key periodically" — clone the current snapshot, mutate the clone
// and swap it in, so lock-free readers never observe a table mid-mutation.
func (t *Table[V]) Clone() *Table[V] {
	if t.clones != nil {
		t.clones.Add(1)
	}
	c := &Table[V]{
		slots:  append([]slot[V](nil), t.slots...),
		mask:   t.mask,
		live:   t.live,
		dead:   t.dead,
		sorted: append([]string(nil), t.sorted...),
		clones: t.clones,
	}
	return c
}

// Clones returns the number of Clone calls over the table's lineage —
// for HART, how many times the directory was copy-on-write republished
// since this lineage's root was built.
func (t *Table[V]) Clones() uint64 {
	if t.clones == nil {
		return 0
	}
	return t.clones.Value()
}

// DRAMBytes reports the table's memory footprint (Fig. 10b accounting)
// from the real slot layout: unsafe.Sizeof covers key, length byte, value
// word and alignment padding exactly as the Go compiler lays them out.
func (t *Table[V]) DRAMBytes() int64 {
	per := int64(unsafe.Sizeof(slot[V]{}))
	total := int64(len(t.slots)) * per
	for _, k := range t.sorted {
		// Sorted-list entry: string header + key bytes.
		total += int64(unsafe.Sizeof("")) + int64(len(k))
	}
	return total
}
