package hashdir

import "sort"

// Splits is an immutable set of split prefixes defining a variable-depth
// directory geometry (the elastic-directory extension; DESIGN.md §13).
//
// With a fixed hash-key length kh every record routes to key[:kh]. A
// split prefix p (len(p) >= kh) declares that the entry p was split one
// byte deeper: records whose keys extend p route past it to key[:len(p)+1]
// (and recursively deeper while the longer prefix is itself split), while
// the one record whose key is exactly p stays behind under the residual
// entry p. Routing therefore walks: start at key[:min(len(key), kh)] and
// extend by one byte while the current prefix is in the set and the key
// has bytes left.
//
// Any subset of prefixes is a well-formed geometry — routing never
// requires a parent/child relationship between members — which is what
// makes persisting the set crash-trivial: a torn update that drops or
// keeps any individual prefix still describes a directory that recovery
// can rebuild exactly.
//
// Splits values are immutable and shared; With and Without return
// modified copies. A nil *Splits behaves as the empty set.
type Splits struct {
	set map[string]struct{}
	max int // longest member, in bytes
}

// emptySplits backs NoSplits so the common fixed-geometry case allocates
// nothing.
var emptySplits = &Splits{}

// NoSplits returns the empty split set (the fixed-kh geometry).
func NoSplits() *Splits { return emptySplits }

// NewSplits builds a split set from prefixes (duplicates are collapsed).
func NewSplits(prefixes []string) *Splits {
	if len(prefixes) == 0 {
		return emptySplits
	}
	s := &Splits{set: make(map[string]struct{}, len(prefixes))}
	for _, p := range prefixes {
		s.set[p] = struct{}{}
		if len(p) > s.max {
			s.max = len(p)
		}
	}
	return s
}

// Len returns the number of split prefixes.
func (s *Splits) Len() int {
	if s == nil {
		return 0
	}
	return len(s.set)
}

// Has reports whether p is a split prefix.
func (s *Splits) Has(p []byte) bool {
	if s == nil || len(s.set) == 0 {
		return false
	}
	_, ok := s.set[string(p)]
	return ok
}

// MaxLen returns the length of the longest split prefix (0 when empty).
func (s *Splits) MaxLen() int {
	if s == nil {
		return 0
	}
	return s.max
}

// List returns the split prefixes in ascending order.
func (s *Splits) List() []string {
	if s == nil || len(s.set) == 0 {
		return nil
	}
	out := make([]string, 0, len(s.set))
	for p := range s.set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// With returns a set that additionally contains p.
func (s *Splits) With(p []byte) *Splits {
	if s.Has(p) {
		return s
	}
	nu := &Splits{set: make(map[string]struct{}, s.Len()+1), max: s.MaxLen()}
	if s != nil {
		for k := range s.set {
			nu.set[k] = struct{}{}
		}
	}
	nu.set[string(p)] = struct{}{}
	if len(p) > nu.max {
		nu.max = len(p)
	}
	return nu
}

// Without returns a set with p removed.
func (s *Splits) Without(p []byte) *Splits {
	if !s.Has(p) {
		return s
	}
	if len(s.set) == 1 {
		return emptySplits
	}
	nu := &Splits{set: make(map[string]struct{}, len(s.set)-1)}
	for k := range s.set {
		if k == string(p) {
			continue
		}
		nu.set[k] = struct{}{}
		if len(k) > nu.max {
			nu.max = len(k)
		}
	}
	return nu
}

// Route returns key's directory prefix under this geometry: the first
// min(len(key), base) bytes, extended one byte at a time while the
// current prefix is a split member and the key has bytes beyond it. The
// result is a subslice of key (no allocation).
func (s *Splits) Route(key []byte, base int) []byte {
	n := base
	if len(key) < n {
		n = len(key)
	}
	if s == nil || len(s.set) == 0 {
		return key[:n]
	}
	for n < len(key) && n <= s.max {
		if _, ok := s.set[string(key[:n])]; !ok {
			break
		}
		n++
	}
	return key[:n]
}
