package hashdir

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGetDeleteBasic(t *testing.T) {
	tb := New[int]()
	if _, ok := tb.Get([]byte("absent")); ok {
		t.Fatal("Get on empty table")
	}
	if !tb.Put([]byte("aa"), 1) {
		t.Fatal("first Put reported replacement")
	}
	if tb.Put([]byte("aa"), 2) {
		t.Fatal("second Put reported insertion")
	}
	if v, ok := tb.Get([]byte("aa")); !ok || v != 2 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if !tb.Delete([]byte("aa")) {
		t.Fatal("Delete failed")
	}
	if tb.Delete([]byte("aa")) {
		t.Fatal("double Delete succeeded")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after delete", tb.Len())
	}
}

func TestGrowthAndProbeBounds(t *testing.T) {
	tb := New[int]()
	const n = 10000
	for i := 0; i < n; i++ {
		tb.Put([]byte(fmt.Sprintf("%02x%02x", i>>8, i&0xff)), i)
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d", tb.Len())
	}
	for i := 0; i < n; i += 97 {
		v, ok := tb.Get([]byte(fmt.Sprintf("%02x%02x", i>>8, i&0xff)))
		if !ok || v != i {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
	st := tb.Stats()
	if st.Live != n {
		t.Fatalf("Stats.Live = %d", st.Live)
	}
	// Load factor bounded => probes stay modest.
	if st.MaxProbe > 64 {
		t.Fatalf("MaxProbe = %d; load factor violated?", st.MaxProbe)
	}
	if (st.Live+st.Tombstones)*maxLoadDen >= st.Buckets*maxLoadNum {
		t.Fatalf("load factor exceeded: %d live + %d dead in %d buckets",
			st.Live, st.Tombstones, st.Buckets)
	}
}

func TestTombstoneReuseAndCompaction(t *testing.T) {
	tb := New[int]()
	// Churn the same small key population far beyond the table size;
	// tombstone compaction must keep the table from growing unboundedly.
	for round := 0; round < 200; round++ {
		for i := 0; i < 50; i++ {
			tb.Put([]byte(fmt.Sprintf("k%02d", i)), round)
		}
		for i := 0; i < 50; i++ {
			tb.Delete([]byte(fmt.Sprintf("k%02d", i)))
		}
	}
	st := tb.Stats()
	if st.Buckets > 1024 {
		t.Fatalf("table grew to %d buckets under churn of 50 keys", st.Buckets)
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d", tb.Len())
	}
	// Still fully functional.
	tb.Put([]byte("final"), 42)
	if v, ok := tb.Get([]byte("final")); !ok || v != 42 {
		t.Fatal("table broken after churn")
	}
}

func TestSortedKeysMaintained(t *testing.T) {
	tb := New[string]()
	keys := []string{"zz", "aa", "mm", "a", "zzz", "ab"}
	for _, k := range keys {
		tb.Put([]byte(k), k)
	}
	got := tb.SortedKeys()
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
	tb.Delete([]byte("mm"))
	if fmt.Sprint(tb.SortedKeys()) != fmt.Sprint([]string{"a", "aa", "ab", "zz", "zzz"}) {
		t.Fatalf("SortedKeys after delete = %v", tb.SortedKeys())
	}
	// Replacement must not duplicate the sorted entry.
	tb.Put([]byte("aa"), "again")
	if len(tb.SortedKeys()) != 5 {
		t.Fatalf("sorted list grew on replacement: %v", tb.SortedKeys())
	}
}

func TestRangeVisitsAll(t *testing.T) {
	tb := New[int]()
	for i := 0; i < 100; i++ {
		tb.Put([]byte(fmt.Sprintf("r%03d", i)), i)
	}
	seen := map[string]bool{}
	tb.Range(func(k []byte, v int) bool {
		seen[string(k)] = true
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("Range visited %d entries", len(seen))
	}
	n := 0
	tb.Range(func(k []byte, v int) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestOversizeKeyPanics(t *testing.T) {
	tb := New[int]()
	defer func() {
		if recover() == nil {
			t.Fatal("oversize key did not panic")
		}
	}()
	tb.Put(make([]byte, MaxKeyLen+1), 1)
}

func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint32) bool {
		tb := New[uint32]()
		ref := map[string]uint32{}
		for _, op := range ops {
			k := fmt.Sprintf("%03d", op%500)
			switch (op >> 16) % 3 {
			case 0:
				tb.Put([]byte(k), op)
				ref[k] = op
			case 1:
				got := tb.Delete([]byte(k))
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			default:
				got, ok := tb.Get([]byte(k))
				want, exists := ref[k]
				if ok != exists || (ok && got != want) {
					return false
				}
			}
		}
		if tb.Len() != len(ref) {
			return false
		}
		keys := tb.SortedKeys()
		return len(keys) == len(ref) && sort.StringsAreSorted(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	// A longer deterministic differential run for deeper interleavings.
	rng := rand.New(rand.NewSource(31))
	ops := make([]uint32, 20000)
	for i := range ops {
		ops[i] = rng.Uint32()
	}
	if !f(ops) {
		t.Fatal("long differential run diverged from map model")
	}
}

func TestDRAMBytesPositive(t *testing.T) {
	tb := New[int]()
	tb.Put([]byte("x"), 1)
	if tb.DRAMBytes() <= 0 {
		t.Fatal("DRAMBytes not positive")
	}
}

func BenchmarkGet(b *testing.B) {
	tb := New[int]()
	const n = 4096
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%02x%02x", i>>8, i&0xff))
		tb.Put(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Get(keys[i%n])
	}
}
