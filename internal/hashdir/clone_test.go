package hashdir

import (
	"fmt"
	"testing"
	"unsafe"
)

// TestCloneIndependence checks that a clone is a full deep copy of the
// table's own state: mutating either side never shows through the other.
func TestCloneIndependence(t *testing.T) {
	orig := New[int]()
	for i := 0; i < 100; i++ {
		orig.Put([]byte(fmt.Sprintf("k%02d", i)), i)
	}
	snap := orig.Clone()

	// Diverge both sides.
	for i := 0; i < 50; i++ {
		orig.Delete([]byte(fmt.Sprintf("k%02d", i)))
	}
	for i := 100; i < 140; i++ {
		orig.Put([]byte(fmt.Sprintf("k%02d", i)), i)
	}
	snap.Put([]byte("only-in-clone"), -1)

	if snap.Len() != 101 {
		t.Fatalf("clone Len = %d, want 101", snap.Len())
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		if v, ok := snap.Get(k); !ok || v != i {
			t.Fatalf("clone lost %q (%d,%v)", k, v, ok)
		}
	}
	if _, ok := orig.Get([]byte("only-in-clone")); ok {
		t.Fatal("clone insertion leaked into the original")
	}
	if _, ok := orig.Get([]byte("k00")); ok {
		t.Fatal("original delete did not take")
	}

	// The sorted key lists must have diverged, too.
	if got := len(snap.SortedKeys()); got != 101 {
		t.Fatalf("clone has %d sorted keys, want 101", got)
	}
	if got := len(orig.SortedKeys()); got != 90 {
		t.Fatalf("original has %d sorted keys, want 90", got)
	}
}

// TestDRAMBytesMatchesLayout pins DRAMBytes to the real slot layout.
func TestDRAMBytesMatchesLayout(t *testing.T) {
	tb := New[uint64]()
	per := int64(unsafe.Sizeof(slot[uint64]{}))
	if got, want := tb.DRAMBytes(), int64(minBuckets)*per; got != want {
		t.Fatalf("empty DRAMBytes = %d, want %d", got, want)
	}
	tb.Put([]byte("ab"), 1)
	want := int64(len(tb.slots))*per + int64(unsafe.Sizeof("")) + 2
	if got := tb.DRAMBytes(); got != want {
		t.Fatalf("DRAMBytes = %d, want %d", got, want)
	}
}
