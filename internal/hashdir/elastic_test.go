package hashdir

import (
	"fmt"
	"testing"
)

func TestSplitsRoute(t *testing.T) {
	const kh = 2
	s := NoSplits()
	cases := []struct {
		key  string
		want string
	}{
		{"", ""},
		{"a", "a"},
		{"ab", "ab"},
		{"abcdef", "ab"},
	}
	for _, c := range cases {
		if got := s.Route([]byte(c.key), kh); string(got) != c.want {
			t.Fatalf("NoSplits.Route(%q) = %q, want %q", c.key, got, c.want)
		}
	}

	s = NewSplits([]string{"ab", "abc"})
	cases = []struct {
		key  string
		want string
	}{
		{"a", "a"},       // shorter than kh: full key
		{"ab", "ab"},     // exactly a split prefix: the residual entry
		{"abX", "abX"},   // one past the split: child entry
		{"abc", "abc"},   // exactly the deeper split prefix
		{"abcd", "abcd"}, // child of the deeper split
		{"abcdef", "abcd"},
		{"aZcdef", "aZ"}, // untouched prefix: base depth
		{"zzzz", "zz"},
	}
	for _, c := range cases {
		if got := s.Route([]byte(c.key), kh); string(got) != c.want {
			t.Fatalf("Route(%q) = %q, want %q", c.key, got, c.want)
		}
	}
	if s.MaxLen() != 3 || s.Len() != 2 {
		t.Fatalf("MaxLen/Len = %d/%d, want 3/2", s.MaxLen(), s.Len())
	}
}

func TestSplitsWithWithoutImmutable(t *testing.T) {
	s0 := NoSplits()
	s1 := s0.With([]byte("ab"))
	s2 := s1.With([]byte("abc"))
	s3 := s2.Without([]byte("ab"))

	if s0.Len() != 0 || s0.Has([]byte("ab")) {
		t.Fatal("With mutated the empty set")
	}
	if !s1.Has([]byte("ab")) || s1.Has([]byte("abc")) || s1.MaxLen() != 2 {
		t.Fatalf("s1 wrong: %v", s1.List())
	}
	if !s2.Has([]byte("ab")) || !s2.Has([]byte("abc")) {
		t.Fatalf("s2 wrong: %v", s2.List())
	}
	if s3.Has([]byte("ab")) || !s3.Has([]byte("abc")) || s3.MaxLen() != 3 {
		t.Fatalf("s3 wrong: %v", s3.List())
	}
	// s2 unchanged by the Without.
	if !s2.Has([]byte("ab")) {
		t.Fatal("Without mutated its receiver")
	}
	// Idempotent edges.
	if s1.With([]byte("ab")).Len() != 1 {
		t.Fatal("duplicate With changed the set")
	}
	if s0.Without([]byte("zz")).Len() != 0 {
		t.Fatal("Without on absent prefix changed the set")
	}
	want := []string{"ab", "abc"}
	got := s2.List()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("List = %v, want %v", got, want)
	}
}

// TestNewFromSortedVariableDepth covers the bulk constructor with the
// mixed-length entry names an elastic directory produces: short keys,
// base-depth prefixes, split residuals and their children.
func TestNewFromSortedVariableDepth(t *testing.T) {
	keys := []string{"a", "ab", "aba", "abz", "ac", "b", "zzzzzzz"}
	vals := make([]int, len(keys))
	for i := range vals {
		vals[i] = i + 1
	}
	tab := NewFromSorted(keys, vals)
	if tab.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(keys))
	}
	for i, k := range keys {
		v, ok := tab.Get([]byte(k))
		if !ok || v != i+1 {
			t.Fatalf("Get(%q) = (%d,%v), want (%d,true)", k, v, ok, i+1)
		}
	}
	if _, ok := tab.Get([]byte("abq")); ok {
		t.Fatal("Get on absent variable-depth key succeeded")
	}
	got := tab.SortedKeys()
	for i, k := range keys {
		if got[i] != k {
			t.Fatalf("SortedKeys[%d] = %q, want %q", i, got[i], k)
		}
	}
	// Mutations after bulk construction keep working across depths.
	tab.Put([]byte("abq"), 99)
	if v, ok := tab.Get([]byte("abq")); !ok || v != 99 {
		t.Fatal("Put/Get after NewFromSorted failed")
	}
	if !tab.Delete([]byte("ab")) {
		t.Fatal("Delete of residual-depth key failed")
	}
	if _, ok := tab.Get([]byte("ab")); ok {
		t.Fatal("deleted key still present")
	}
	if _, ok := tab.Get([]byte("aba")); !ok {
		t.Fatal("sibling lost by Delete")
	}
}

func TestNewFromSortedVariableDepthLarge(t *testing.T) {
	// A larger mixed-depth set keeps Get/Range consistent after Clone.
	var keys []string
	for i := 0; i < 64; i++ {
		keys = append(keys, fmt.Sprintf("%02d", i))
	}
	for i := 0; i < 64; i++ {
		keys = append(keys, fmt.Sprintf("ab%02d", i)) // depth-4 children
	}
	keys = append(keys, "ab") // residual
	vals := make([]string, len(keys))
	for i, k := range keys {
		vals[i] = "v" + k
	}
	// NewFromSorted requires ascending keys.
	type pair struct{ k, v string }
	pairs := make([]pair, len(keys))
	for i := range keys {
		pairs[i] = pair{keys[i], vals[i]}
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].k < pairs[j-1].k; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	sk := make([]string, len(pairs))
	sv := make([]string, len(pairs))
	for i, p := range pairs {
		sk[i], sv[i] = p.k, p.v
	}
	tab := NewFromSorted(sk, sv)
	cl := tab.Clone()
	for _, tt := range []*Table[string]{tab, cl} {
		n := 0
		tt.Range(func(k []byte, v string) bool {
			if v != "v"+string(k) {
				t.Fatalf("Range saw (%q,%q)", k, v)
			}
			n++
			return true
		})
		if n != len(sk) {
			t.Fatalf("Range visited %d, want %d", n, len(sk))
		}
	}
}
