package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/casl-sdsu/hart/internal/pmem"
)

func newElastic(t *testing.T, splitOps, mergeRecords int) *HART {
	t.Helper()
	h, err := New(Options{
		ArenaSize:        16 << 20,
		Tracking:         true,
		ElasticDirectory: true,
		SplitOps:         splitOps,
		MergeRecords:     mergeRecords,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// reopen crashes h and recovers the image into a new instance.
func reopenCrash(t *testing.T, h *HART, opts Options) *HART {
	t.Helper()
	img, err := h.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Open(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h2
}

// hotKeys returns the residual key "ab" plus fan keys "ab<b><i>" over the
// given next bytes — a workload concentrated on one base shard.
func hotKeys(fan string, per int) []string {
	keys := []string{"ab"}
	for _, b := range fan {
		for i := 0; i < per; i++ {
			keys = append(keys, fmt.Sprintf("ab%c%02d", b, i))
		}
	}
	return keys
}

func checkAll(t *testing.T, h *HART, keys []string, val func(k string) string) {
	t.Helper()
	for _, k := range keys {
		mustGet(t, h, k, val(k))
	}
	got := h.Keys()
	if len(got) != len(keys) {
		t.Fatalf("Scan saw %d keys, want %d", len(got), len(keys))
	}
	for i := 1; i < len(got); i++ {
		if string(got[i-1]) >= string(got[i]) {
			t.Fatalf("scan out of order: %q >= %q", got[i-1], got[i])
		}
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestElasticSplitBasic drives one shard hot, expects it to split into a
// residual plus per-byte children, and verifies lookups, ordered scans,
// fsck and the exported geometry stats.
func TestElasticSplitBasic(t *testing.T) {
	h := newElastic(t, 16, 4)
	keys := hotKeys("cd", 10) // "ab" + ab{c,d}00..09
	for _, k := range keys {
		mustPut(t, h, k, "v"+k)
	}
	if h.splitCount.Load() == 0 {
		t.Fatal("no split after 21 writes to one shard with SplitOps=16")
	}
	st := h.Stats()
	if st.Dir.Splits != 1 || st.Dir.MaxDepth != 3 || st.Dir.BaseDepth != 2 {
		t.Fatalf("Dir = %+v, want 1 split, depth 2..3", st.Dir)
	}
	// The split must leave the directory with the residual and exactly
	// the two children: entries ab, abc, abd.
	for _, want := range []string{"ab", "abc", "abd"} {
		if _, ok := h.dir.Load().tab.Get([]byte(want)); !ok {
			t.Fatalf("entry %q missing after split", want)
		}
	}
	checkAll(t, h, keys, func(k string) string { return "v" + k })

	// Writes continue to land correctly post-split (routing through the
	// deeper geometry), including a new next-byte group.
	mustPut(t, h, "abe00", "v-abe00")
	mustGet(t, h, "abe00", "v-abe00")
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestElasticSplitRefusals pins the refusal edges: a single next-byte
// group only relabels (refused), and a one-record shard is never split.
func TestElasticSplitRefusals(t *testing.T) {
	h := newElastic(t, 8, 4)
	// All records share next byte 'c': groups < 2, refused forever.
	for i := 0; i < 100; i++ {
		mustPut(t, h, fmt.Sprintf("abc%02d", i%20), "v")
	}
	if n := h.splitCount.Load(); n != 0 {
		t.Fatalf("single-branch shard split %d times", n)
	}
	if st := h.Stats(); st.Dir.MaxDepth != 2 || st.Dir.Splits != 0 {
		t.Fatalf("Dir = %+v, want flat", st.Dir)
	}
	// A hot single-record shard is refused too.
	for i := 0; i < 50; i++ {
		mustPut(t, h, "zz", "v")
	}
	if n := h.splitCount.Load(); n != 0 {
		t.Fatalf("one-record shard split %d times", n)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestElasticSplitMaxDepth cascades splits down a two-way branching key
// set and verifies the depth cap: no entry ever exceeds maxDirDepth
// bytes, and the store stays correct throughout.
func TestElasticSplitMaxDepth(t *testing.T) {
	h := newElastic(t, 4, 2)
	// {a,b}^9: branching at every byte, so every shard that gets hot can
	// split until the cap.
	var keys []string
	for i := 0; i < 1<<9; i++ {
		b := make([]byte, 9)
		for j := range b {
			b[j] = 'a' + byte((i>>j)&1)
		}
		keys = append(keys, string(b))
	}
	for pass := 0; pass < 4; pass++ {
		for _, k := range keys {
			mustPut(t, h, k, "v")
		}
	}
	st := h.Stats()
	if st.Dir.MaxDepth > maxDirDepth {
		t.Fatalf("MaxDepth %d exceeds cap %d", st.Dir.MaxDepth, maxDirDepth)
	}
	for _, ek := range h.dir.Load().tab.SortedKeys() {
		if len(ek) > maxDirDepth {
			t.Fatalf("entry %q longer than maxDirDepth", ek)
		}
	}
	if h.splitCount.Load() == 0 {
		t.Fatal("no splits under a cascading workload")
	}
	checkAll(t, h, keys, func(string) string { return "v" })
}

// TestElasticSplitSlotCapacity exhausts the superblock's split slots:
// geometry changes stop at the cap, correctness does not.
func TestElasticSplitSlotCapacity(t *testing.T) {
	h := newElastic(t, 4, 2)
	// Many independent hot base shards, each splittable.
	var keys []string
	for p := 0; p < 2*int(sbMaxSplits); p++ {
		pre := fmt.Sprintf("%c%c", 'A'+p%26, 'A'+p/26)
		for i := 0; i < 8; i++ {
			keys = append(keys, fmt.Sprintf("%s%c%d", pre, 'a'+i%4, i))
		}
	}
	for pass := 0; pass < 3; pass++ {
		for _, k := range keys {
			mustPut(t, h, k, "v")
		}
	}
	st := h.Stats()
	if st.Dir.Splits > int(sbMaxSplits) {
		t.Fatalf("%d persisted splits exceed the %d slots", st.Dir.Splits, sbMaxSplits)
	}
	if st.Dir.Splits != int(sbMaxSplits) {
		t.Fatalf("expected the slot table to fill, got %d/%d", st.Dir.Splits, sbMaxSplits)
	}
	checkAll(t, h, keys, func(string) string { return "v" })
	// And the full table survives a reopen.
	h2 := reopenCrash(t, h, Options{ElasticDirectory: true, SplitOps: 4, MergeRecords: 2})
	if st2 := h2.Stats(); st2.Dir.Splits != st.Dir.Splits {
		t.Fatalf("reopen lost splits: %d -> %d", st.Dir.Splits, st2.Dir.Splits)
	}
	checkAll(t, h2, keys, func(string) string { return "v" })
}

// TestElasticMergeUnevenSiblings splits a shard, then deletes one child
// entirely and most of the other: the cold, shrunken group must fold
// back to the base shape, residual record intact.
func TestElasticMergeUnevenSiblings(t *testing.T) {
	h := newElastic(t, 16, 8)
	keys := hotKeys("cd", 10)
	for _, k := range keys {
		mustPut(t, h, k, "v"+k)
	}
	if h.splitCount.Load() == 0 {
		t.Fatal("precondition: no split")
	}
	// Delete all of abd* and most of abc*: group total falls to 4
	// (residual "ab" + abc00..02) <= MergeRecords.
	var left []string
	for _, k := range keys {
		if k == "ab" || k < "abc03" && k != "ab" {
			left = append(left, k)
			continue
		}
		if err := h.Delete([]byte(k)); err != nil {
			t.Fatalf("Delete(%q): %v", k, err)
		}
	}
	if h.mergeCount.Load() == 0 {
		t.Fatal("no merge after shrinking the split group")
	}
	st := h.Stats()
	if st.Dir.Splits != 0 || st.Dir.MaxDepth != 2 {
		t.Fatalf("Dir = %+v, want merged flat", st.Dir)
	}
	checkAll(t, h, left, func(k string) string { return "v" + k })
	// The merged entry is a normal shard again: it can re-split.
	for pass := 0; pass < 8; pass++ {
		for _, k := range left {
			mustPut(t, h, k, "w"+k)
		}
	}
	if h.splitCount.Load() < 2 {
		t.Fatal("merged shard did not re-split under heat")
	}
	checkAll(t, h, left, func(k string) string { return "w" + k })
}

// TestElasticMergeToEmpty deletes a split group completely: the merge
// must drop the split without creating an empty entry.
func TestElasticMergeToEmpty(t *testing.T) {
	h := newElastic(t, 16, 8)
	keys := hotKeys("cd", 10)
	for _, k := range keys {
		mustPut(t, h, k, "v")
	}
	if h.splitCount.Load() == 0 {
		t.Fatal("precondition: no split")
	}
	for _, k := range keys {
		if err := h.Delete([]byte(k)); err != nil {
			t.Fatalf("Delete(%q): %v", k, err)
		}
	}
	st := h.Stats()
	if st.Dir.Splits != 0 {
		t.Fatalf("empty store still has %d splits", st.Dir.Splits)
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d, want 0", h.Len())
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestElasticReopen covers the acceptance reopen matrix: a pre-split
// store opens under a split-capable config; a split store reopens with
// the same geometry whether the flag stays on or turns off; and the
// lazy + parallel recovery modes rebuild variable-depth tables.
func TestElasticReopen(t *testing.T) {
	keys := hotKeys("cde", 12)
	val := func(k string) string { return "v" + k }

	// Pre-split store (elastic off) reopens fine with elastic on.
	plain := newHART(t)
	for _, k := range keys {
		mustPut(t, plain, k, val(k))
	}
	h := reopenCrash(t, plain, Options{ElasticDirectory: true, SplitOps: 16, MergeRecords: 4})
	checkAll(t, h, keys, val)
	// ... and then splits under fresh heat.
	for _, k := range keys {
		mustPut(t, h, k, val(k))
	}
	if h.splitCount.Load() == 0 {
		t.Fatal("reopened store did not split under heat")
	}
	preSplits := h.Stats().Dir.Splits
	if preSplits == 0 {
		t.Fatal("split not reflected in stats")
	}

	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"elastic-on", Options{ElasticDirectory: true, SplitOps: 16, MergeRecords: 4}},
		{"elastic-off", Options{}},
		{"lazy", Options{LazyRecovery: true, RecoveryWorkers: 4}},
		{"parallel", Options{RecoveryWorkers: 4}},
		{"legacy", Options{LegacyRecovery: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			h2 := reopenCrash(t, h, mode.opts)
			st := h2.Stats()
			if st.Dir.Splits != preSplits {
				t.Fatalf("splits %d -> %d across reopen", preSplits, st.Dir.Splits)
			}
			if st.Dir.MaxDepth != 3 {
				t.Fatalf("MaxDepth = %d, want 3", st.Dir.MaxDepth)
			}
			checkAll(t, h2, keys, val)
		})
	}
}

// TestElasticStatsHeat verifies the per-shard heat/op export.
func TestElasticStatsHeat(t *testing.T) {
	h := newElastic(t, 1<<30, 4) // threshold out of reach: no splits
	for i := 0; i < 40; i++ {
		mustPut(t, h, fmt.Sprintf("hh%03d", i), "v")
	}
	mustPut(t, h, "zz000", "v")
	st := h.Stats()
	if len(st.Dir.Hot) == 0 {
		t.Fatal("no heat exported")
	}
	top := st.Dir.Hot[0]
	if top.Prefix != "hh" || top.Heat != 40 || top.Ops != 40 || top.Records != 40 {
		t.Fatalf("hottest = %+v, want hh/40", top)
	}
	if len(st.Dir.Hot) > 8 {
		t.Fatalf("Hot list %d entries, want <= 8", len(st.Dir.Hot))
	}
}

// TestElasticConcurrentChurn races splits and merges against concurrent
// Put, PutBatch, Get, Delete and both scan directions under -race, then
// verifies the surviving contents exactly.
func TestElasticConcurrentChurn(t *testing.T) {
	h := newElastic(t, 32, 8)
	const workers = 4
	const perWorker = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			key := func(i int) []byte {
				// Shared hot prefix "hh" + worker-disjoint suffix.
				return []byte(fmt.Sprintf("hh%c%c%03d", 'a'+byte(rng.Intn(3)), 'A'+byte(w), i))
			}
			for i := 0; i < perWorker; i++ {
				switch i % 5 {
				case 0, 1, 2:
					if err := h.Put(key(i), []byte("v")); err != nil {
						t.Error(err)
						return
					}
				case 3:
					var recs []Record
					for j := 0; j < 8; j++ {
						recs = append(recs, Record{Key: key(1000 + i*8 + j), Value: []byte("b")})
					}
					if _, err := h.PutBatch(recs); err != nil {
						t.Error(err)
						return
					}
				case 4:
					// Delete a key this worker inserted earlier (may or may
					// not exist depending on rng collisions — both fine).
					_ = h.Delete(key(i - 4))
				}
				if i%50 == 0 {
					h.Scan(nil, nil, func(_, _ []byte) bool { return true })
					h.ScanReverse(nil, nil, func(_, _ []byte) bool { return true })
					h.Get(key(i / 2))
				}
			}
		}(w)
	}
	wg.Wait()
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	// Scan and point lookups agree on the final contents.
	n := 0
	h.Scan(nil, nil, func(k, _ []byte) bool {
		n++
		if _, ok := h.Get(k); !ok {
			t.Fatalf("scanned key %q not gettable", k)
		}
		return true
	})
	if n != h.Len() {
		t.Fatalf("scan saw %d records, Len says %d", n, h.Len())
	}
	// The hot prefix must actually have split under this workload.
	if h.splitCount.Load() == 0 {
		t.Fatal("no split happened during the churn")
	}
	// Survives a reopen with the churned geometry.
	h2 := reopenCrash(t, h, Options{ElasticDirectory: true, SplitOps: 32, MergeRecords: 8})
	if h2.Len() != h.Len() {
		t.Fatalf("reopen Len %d != %d", h2.Len(), h.Len())
	}
	if err := h2.Check(); err != nil {
		t.Fatal(err)
	}
}
