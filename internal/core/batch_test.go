package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/casl-sdsu/hart/internal/epalloc"
)

func TestPutBatchBasic(t *testing.T) {
	h := newHART(t)
	var recs []Record
	for i := 0; i < 1000; i++ {
		recs = append(recs, Record{
			Key:   []byte(fmt.Sprintf("%c%c%04d", 'a'+i%4, 'a'+(i/4)%4, i)),
			Value: []byte(fmt.Sprintf("v%05d", i)),
		})
	}
	// Shuffle so grouping actually reorders.
	rand.New(rand.NewSource(3)).Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	n, err := h.PutBatch(recs)
	if err != nil || n != 1000 {
		t.Fatalf("PutBatch = (%d,%v)", n, err)
	}
	if h.Len() != 1000 {
		t.Fatalf("Len = %d", h.Len())
	}
	for i := 0; i < 1000; i += 97 {
		k := fmt.Sprintf("%c%c%04d", 'a'+i%4, 'a'+(i/4)%4, i)
		if v, ok := h.Get([]byte(k)); !ok || string(v) != fmt.Sprintf("v%05d", i) {
			t.Fatalf("Get(%q) = (%q,%v)", k, v, ok)
		}
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPutBatchUpdatesAndValidates(t *testing.T) {
	h := newHART(t)
	mustPut(t, h, "bb-key", "old")
	n, err := h.PutBatch([]Record{
		{Key: []byte("bb-key"), Value: []byte("new")},
		{Key: []byte("bb-other"), Value: []byte("x")},
	})
	if err != nil || n != 2 {
		t.Fatalf("PutBatch = (%d,%v)", n, err)
	}
	mustGet(t, h, "bb-key", "new")
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	// Validation rejects the whole batch up front.
	if _, err := h.PutBatch([]Record{{Key: []byte("ok"), Value: []byte("v")}, {Key: nil, Value: []byte("v")}}); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("bad batch: %v", err)
	}
	if _, ok := h.Get([]byte("ok")); ok {
		t.Fatal("partially applied an invalid batch")
	}
}

// TestPutBatchConcurrentMultiShard drives PutBatch from several writers
// at once, each over its own key range but all spanning the same set of
// hash-directory shards, with concurrent lock-free readers — the batched
// write path's grouped allocation, striped micro-log claims and single
// publications racing across every shard. Run under -race by check.sh.
func TestPutBatchConcurrentMultiShard(t *testing.T) {
	h, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const writers, rounds, perBatch = 6, 8, 48
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				var recs []Record
				for i := 0; i < perBatch; i++ {
					// Shard byte cycles so every batch crosses many shards;
					// the w component keeps writers' key sets disjoint.
					recs = append(recs, Record{
						Key:   []byte(fmt.Sprintf("%c%c-w%d-%04d", 'a'+i%8, 'a'+(i/8)%3, w, round*perBatch+i)),
						Value: []byte(fmt.Sprintf("w%dr%dv%d", w, round, i)),
					})
				}
				if n, err := h.PutBatch(recs); err != nil || n != len(recs) {
					errs <- fmt.Errorf("writer %d round %d: PutBatch = (%d,%v)", w, round, n, err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			buf := make([]byte, 0, MaxValueLen)
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("%c%c-w%d-%04d", 'a'+rng.Intn(8), 'a'+rng.Intn(3), rng.Intn(writers), rng.Intn(rounds*perBatch))
				h.GetInto([]byte(k), buf)
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := writers * rounds * perBatch
	if h.Len() != want {
		t.Fatalf("Len = %d, want %d", h.Len(), want)
	}
	for w := 0; w < writers; w++ {
		for _, i := range []int{0, perBatch - 1, rounds*perBatch - 1} {
			k := fmt.Sprintf("%c%c-w%d-%04d", 'a'+i%8, 'a'+(i/8)%3, w, i)
			if _, ok := h.Get([]byte(k)); !ok {
				t.Fatalf("missing %q", k)
			}
		}
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	if err := h.Allocator().CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestPutBatchValueBitFailureUnwinds injects a failure into the batched
// value-bit commit (the first SetBits of a group): the whole group must
// unwind with nothing applied and no slot left in flight.
func TestPutBatchValueBitFailureUnwinds(t *testing.T) {
	h := newHART(t)
	mustPut(t, h, "vb-keep", "keep")
	h.Allocator().FailSetBitAfter(0)
	recs := []Record{
		{Key: []byte("vb-a"), Value: []byte("1")},
		{Key: []byte("vb-b"), Value: []byte("2")},
	}
	n, err := h.PutBatch(recs)
	if !errors.Is(err, epalloc.ErrInjected) || n != 0 {
		t.Fatalf("PutBatch = (%d,%v)", n, err)
	}
	h.Allocator().DisarmFaults()
	for _, k := range []string{"vb-a", "vb-b"} {
		if _, ok := h.Get([]byte(k)); ok {
			t.Fatalf("%q applied despite value-bit failure", k)
		}
	}
	mustGet(t, h, "vb-keep", "keep")
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	if err := h.Allocator().CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	// The unwound slots must be reusable.
	if n, err := h.PutBatch(recs); err != nil || n != 2 {
		t.Fatalf("retry PutBatch = (%d,%v)", n, err)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPutBatchLeafBitFailureUnwinds injects a failure into the batched
// leaf-bit flush (the second SetBits of an insert-only group): the
// uncommitted inserts must leave the published tree, release their
// committed values and abort their leaves.
func TestPutBatchLeafBitFailureUnwinds(t *testing.T) {
	h := newHART(t)
	mustPut(t, h, "lb-keep", "keep")
	h.Allocator().FailSetBitAfter(1) // value bits commit, leaf bits trip
	recs := []Record{
		{Key: []byte("lb-a"), Value: []byte("1")},
		{Key: []byte("lb-b"), Value: []byte("2")},
		{Key: []byte("lb-c"), Value: []byte("3")},
	}
	n, err := h.PutBatch(recs)
	if !errors.Is(err, epalloc.ErrInjected) || n != 0 {
		t.Fatalf("PutBatch = (%d,%v)", n, err)
	}
	h.Allocator().DisarmFaults()
	for _, k := range []string{"lb-a", "lb-b", "lb-c"} {
		if _, ok := h.Get([]byte(k)); ok {
			t.Fatalf("%q applied despite leaf-bit failure", k)
		}
	}
	mustGet(t, h, "lb-keep", "keep")
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	if err := h.Allocator().CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	if n, err := h.PutBatch(recs); err != nil || n != 3 {
		t.Fatalf("retry PutBatch = (%d,%v)", n, err)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPutBatchAllocFailureAborts injects an allocation failure into the
// value AllocBatch (after the leaf AllocBatch succeeded): the already
// allocated leaves must leave their in-flight state.
func TestPutBatchAllocFailureAborts(t *testing.T) {
	h := newHART(t)
	h.Allocator().FailAllocAfter(1) // leaf batch passes, value batch trips
	n, err := h.PutBatch([]Record{
		{Key: []byte("af-a"), Value: []byte("1")},
		{Key: []byte("af-b"), Value: []byte("2")},
	})
	if !errors.Is(err, epalloc.ErrInjected) || n != 0 {
		t.Fatalf("PutBatch = (%d,%v)", n, err)
	}
	h.Allocator().DisarmFaults()
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	if err := h.Allocator().CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteBatch(t *testing.T) {
	h := newHART(t)
	var keys [][]byte
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("db%04d", i))
		mustPut(t, h, string(k), "v")
		keys = append(keys, k)
	}
	keys = append(keys, []byte("missing-key"))
	n, err := h.DeleteBatch(keys)
	if err != nil || n != 300 {
		t.Fatalf("DeleteBatch = (%d,%v)", n, err)
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d", h.Len())
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPutBatchDuplicateKeys pins the stable-sort contract: duplicates of
// one key within a batch apply in submission order, so the batch nets out
// to the last submitted value — including a duplicate of a key the same
// batch inserts, which exercises the flush-then-update path (the first
// record's leaf bit must commit before the second record's update).
func TestPutBatchDuplicateKeys(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		h, err := New(Options{ArenaSize: 16 << 20, Tracking: true, LegacyWritePath: legacy})
		if err != nil {
			t.Fatal(err)
		}
		mustPut(t, h, "dupbase", "old")
		n, err := h.PutBatch([]Record{
			{Key: []byte("dupnew"), Value: []byte("first")},
			{Key: []byte("dupbase"), Value: []byte("mid")},
			{Key: []byte("dupnew"), Value: []byte("second")},
			{Key: []byte("dupbase"), Value: []byte("final")},
			{Key: []byte("dupnew"), Value: []byte("third")},
		})
		if err != nil || n != 5 {
			t.Fatalf("legacy=%v: PutBatch = (%d,%v)", legacy, n, err)
		}
		mustGet(t, h, "dupnew", "third")
		mustGet(t, h, "dupbase", "final")
		if h.Len() != 2 {
			t.Fatalf("legacy=%v: Len = %d", legacy, h.Len())
		}
		if err := h.Check(); err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
	}
}

// TestPutBatchLegacyMatchesStriped runs the same mixed batch stream
// through the striped write path and the LegacyWritePath baseline and
// requires identical contents — the differential guarantee that striping
// changed the cost, not the semantics.
func TestPutBatchLegacyMatchesStriped(t *testing.T) {
	hs, err := New(Options{ArenaSize: 16 << 20, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	hl, err := New(Options{ArenaSize: 16 << 20, Tracking: true, LegacyWritePath: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 40; round++ {
		var recs []Record
		for i := 0; i < 1+rng.Intn(96); i++ {
			recs = append(recs, Record{
				Key:   []byte(fmt.Sprintf("%c%c%03d", 'a'+rng.Intn(5), 'a'+rng.Intn(5), rng.Intn(400))),
				Value: []byte(fmt.Sprintf("r%dv%d", round, i)),
			})
		}
		ns, errS := hs.PutBatch(recs)
		nl, errL := hl.PutBatch(recs)
		if ns != nl || (errS == nil) != (errL == nil) {
			t.Fatalf("round %d: striped (%d,%v), legacy (%d,%v)", round, ns, errS, nl, errL)
		}
	}
	if hs.Len() != hl.Len() {
		t.Fatalf("Len: striped %d, legacy %d", hs.Len(), hl.Len())
	}
	hs.Scan(nil, nil, func(k, v []byte) bool {
		lv, ok := hl.Get(k)
		if !ok || string(lv) != string(v) {
			t.Fatalf("key %q: striped %q, legacy (%q,%v)", k, v, lv, ok)
		}
		return true
	})
	if err := hs.Check(); err != nil {
		t.Fatal(err)
	}
	if err := hl.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPutBatchMatchesIndividualPuts(t *testing.T) {
	ha, hb := newHART(t), newHART(t)
	rng := rand.New(rand.NewSource(8))
	var recs []Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, Record{
			Key:   []byte(fmt.Sprintf("%c%c%04d", 'a'+rng.Intn(3), 'a'+rng.Intn(3), rng.Intn(3000))),
			Value: []byte(fmt.Sprintf("v%06d", i)),
		})
	}
	for _, r := range recs {
		if err := ha.Put(r.Key, r.Value); err != nil {
			t.Fatal(err)
		}
	}
	// Feed the batch de-duplicated so both sides see every key once (the
	// duplicate ordering itself is pinned by TestPutBatchDuplicateKeys).
	last := map[string][]byte{}
	for _, r := range recs {
		last[string(r.Key)] = r.Value
	}
	var dedup []Record
	for k, v := range last {
		dedup = append(dedup, Record{Key: []byte(k), Value: v})
	}
	if _, err := hb.PutBatch(dedup); err != nil {
		t.Fatal(err)
	}
	if ha.Len() != hb.Len() {
		t.Fatalf("Len: %d vs %d", ha.Len(), hb.Len())
	}
	for k, v := range last {
		got, ok := hb.Get([]byte(k))
		if !ok || string(got) != string(v) {
			t.Fatalf("batch Get(%q) = (%q,%v), want %q", k, got, ok, v)
		}
	}
	if err := hb.Check(); err != nil {
		t.Fatal(err)
	}
}
