package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestPutBatchBasic(t *testing.T) {
	h := newHART(t)
	var recs []Record
	for i := 0; i < 1000; i++ {
		recs = append(recs, Record{
			Key:   []byte(fmt.Sprintf("%c%c%04d", 'a'+i%4, 'a'+(i/4)%4, i)),
			Value: []byte(fmt.Sprintf("v%05d", i)),
		})
	}
	// Shuffle so grouping actually reorders.
	rand.New(rand.NewSource(3)).Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	n, err := h.PutBatch(recs)
	if err != nil || n != 1000 {
		t.Fatalf("PutBatch = (%d,%v)", n, err)
	}
	if h.Len() != 1000 {
		t.Fatalf("Len = %d", h.Len())
	}
	for i := 0; i < 1000; i += 97 {
		k := fmt.Sprintf("%c%c%04d", 'a'+i%4, 'a'+(i/4)%4, i)
		if v, ok := h.Get([]byte(k)); !ok || string(v) != fmt.Sprintf("v%05d", i) {
			t.Fatalf("Get(%q) = (%q,%v)", k, v, ok)
		}
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPutBatchUpdatesAndValidates(t *testing.T) {
	h := newHART(t)
	mustPut(t, h, "bb-key", "old")
	n, err := h.PutBatch([]Record{
		{Key: []byte("bb-key"), Value: []byte("new")},
		{Key: []byte("bb-other"), Value: []byte("x")},
	})
	if err != nil || n != 2 {
		t.Fatalf("PutBatch = (%d,%v)", n, err)
	}
	mustGet(t, h, "bb-key", "new")
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	// Validation rejects the whole batch up front.
	if _, err := h.PutBatch([]Record{{Key: []byte("ok"), Value: []byte("v")}, {Key: nil, Value: []byte("v")}}); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("bad batch: %v", err)
	}
	if _, ok := h.Get([]byte("ok")); ok {
		t.Fatal("partially applied an invalid batch")
	}
}

func TestDeleteBatch(t *testing.T) {
	h := newHART(t)
	var keys [][]byte
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("db%04d", i))
		mustPut(t, h, string(k), "v")
		keys = append(keys, k)
	}
	keys = append(keys, []byte("missing-key"))
	n, err := h.DeleteBatch(keys)
	if err != nil || n != 300 {
		t.Fatalf("DeleteBatch = (%d,%v)", n, err)
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d", h.Len())
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPutBatchMatchesIndividualPuts(t *testing.T) {
	ha, hb := newHART(t), newHART(t)
	rng := rand.New(rand.NewSource(8))
	var recs []Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, Record{
			Key:   []byte(fmt.Sprintf("%c%c%04d", 'a'+rng.Intn(3), 'a'+rng.Intn(3), rng.Intn(3000))),
			Value: []byte(fmt.Sprintf("v%06d", i)),
		})
	}
	for _, r := range recs {
		if err := ha.Put(r.Key, r.Value); err != nil {
			t.Fatal(err)
		}
	}
	// Batch order differs (sorted), so later duplicates must still win:
	// PutBatch with duplicate keys applies them in sorted order, which is
	// NOT the same as arrival order — feed it de-duplicated, last-wins.
	last := map[string][]byte{}
	for _, r := range recs {
		last[string(r.Key)] = r.Value
	}
	var dedup []Record
	for k, v := range last {
		dedup = append(dedup, Record{Key: []byte(k), Value: v})
	}
	if _, err := hb.PutBatch(dedup); err != nil {
		t.Fatal(err)
	}
	if ha.Len() != hb.Len() {
		t.Fatalf("Len: %d vs %d", ha.Len(), hb.Len())
	}
	for k, v := range last {
		got, ok := hb.Get([]byte(k))
		if !ok || string(got) != string(v) {
			t.Fatalf("batch Get(%q) = (%q,%v), want %q", k, got, ok, v)
		}
	}
	if err := hb.Check(); err != nil {
		t.Fatal(err)
	}
}
