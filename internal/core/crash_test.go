package core

import (
	"fmt"
	"testing"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// crashHarness drives one operation into an injected crash at persist
// boundary `fail`, recovers a new HART from the durable image, and returns
// it. ok=false means the operation completed before reaching the boundary
// (the sweep is done).
func crashHarness(t *testing.T, fail int64, setup func(h *HART), op func(h *HART)) (*HART, bool) {
	t.Helper()
	h, err := New(Options{ArenaSize: 16 << 20, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	setup(h)
	h.Arena().FailAfterPersists(fail)
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, isCrash := r.(pmem.CrashError); !isCrash {
					panic(r)
				}
				crashed = true
			}
		}()
		op(h)
	}()
	h.Arena().DisarmCrash()
	if !crashed {
		return nil, false
	}
	img, err := h.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Open(img, Options{})
	if err != nil {
		t.Fatalf("fail=%d: recovery failed: %v", fail, err)
	}
	return h2, true
}

// TestCrashDuringInsertEveryPersist verifies Algorithm 1's failure
// atomicity: at every persist boundary of an insert, recovery yields
// either "key absent" (and no leak) or "key present with the new value".
// Pre-existing records are never damaged.
func TestCrashDuringInsertEveryPersist(t *testing.T) {
	setup := func(h *HART) {
		for i := 0; i < 10; i++ {
			if err := h.Put([]byte(fmt.Sprintf("pre%03d", i)), []byte("stable")); err != nil {
				t.Fatal(err)
			}
		}
	}
	points := 0
	for fail := int64(0); ; fail++ {
		h2, crashed := crashHarness(t, fail, setup, func(h *HART) {
			if err := h.Put([]byte("victim"), []byte("vnew")); err != nil {
				t.Fatal(err)
			}
		})
		if !crashed {
			break
		}
		points++
		for i := 0; i < 10; i++ {
			got, ok := h2.Get([]byte(fmt.Sprintf("pre%03d", i)))
			if !ok || string(got) != "stable" {
				t.Fatalf("fail=%d: pre-existing record damaged: (%q,%v)", fail, got, ok)
			}
		}
		if got, ok := h2.Get([]byte("victim")); ok && string(got) != "vnew" {
			t.Fatalf("fail=%d: torn insert visible: %q", fail, got)
		}
		if err := h2.Check(); err != nil {
			t.Fatalf("fail=%d: fsck after insert crash: %v", fail, err)
		}
		// The index must remain fully writable; in particular, reusing the
		// in-limbo leaf slot must reclaim any orphaned value (Alg. 2).
		for i := 0; i < 60; i++ {
			if err := h2.Put([]byte(fmt.Sprintf("post%03d", i)), []byte("p")); err != nil {
				t.Fatalf("fail=%d: post-crash put: %v", fail, err)
			}
		}
		if err := h2.Check(); err != nil {
			t.Fatalf("fail=%d: fsck after refill: %v", fail, err)
		}
	}
	if points < 5 {
		t.Fatalf("insert exercised only %d crash points; expected several persists", points)
	}
}

// TestCrashDuringUpdateEveryPersist verifies Algorithm 3: after a crash at
// any persist boundary of an update, recovery leaves the key mapped to
// either the old or the new value, with no leak and no torn state.
func TestCrashDuringUpdateEveryPersist(t *testing.T) {
	setup := func(h *HART) {
		if err := h.Put([]byte("upkey"), []byte("oldval")); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := h.Put([]byte(fmt.Sprintf("other%d", i)), []byte("keep")); err != nil {
				t.Fatal(err)
			}
		}
	}
	points := 0
	for fail := int64(0); ; fail++ {
		h2, crashed := crashHarness(t, fail, setup, func(h *HART) {
			if err := h.Update([]byte("upkey"), []byte("newval")); err != nil {
				t.Fatal(err)
			}
		})
		if !crashed {
			break
		}
		points++
		got, ok := h2.Get([]byte("upkey"))
		if !ok {
			t.Fatalf("fail=%d: key vanished during update", fail)
		}
		if s := string(got); s != "oldval" && s != "newval" {
			t.Fatalf("fail=%d: torn update value %q", fail, s)
		}
		if err := h2.Check(); err != nil {
			t.Fatalf("fail=%d: fsck after update crash: %v", fail, err)
		}
		// Updating again post-recovery must work and converge.
		if err := h2.Update([]byte("upkey"), []byte("final!")); err != nil {
			t.Fatalf("fail=%d: post-crash update: %v", fail, err)
		}
		if got, _ := h2.Get([]byte("upkey")); string(got) != "final!" {
			t.Fatalf("fail=%d: post-crash update lost: %q", fail, got)
		}
		if err := h2.Check(); err != nil {
			t.Fatalf("fail=%d: fsck after post-crash update: %v", fail, err)
		}
	}
	if points < 5 {
		t.Fatalf("update exercised only %d crash points", points)
	}
}

// TestCrashDuringDeleteEveryPersist verifies Algorithm 5: a crash during
// deletion leaves the key either present with its value or fully absent;
// a half-deleted leaf (leaf bit cleared, value bit still set) must be
// repaired by subsequent allocations, not leaked.
func TestCrashDuringDeleteEveryPersist(t *testing.T) {
	setup := func(h *HART) {
		for i := 0; i < 8; i++ {
			if err := h.Put([]byte(fmt.Sprintf("del%03d", i)), []byte("dv")); err != nil {
				t.Fatal(err)
			}
		}
	}
	points := 0
	for fail := int64(0); ; fail++ {
		h2, crashed := crashHarness(t, fail, setup, func(h *HART) {
			if err := h.Delete([]byte("del003")); err != nil {
				t.Fatal(err)
			}
		})
		if !crashed {
			break
		}
		points++
		if got, ok := h2.Get([]byte("del003")); ok && string(got) != "dv" {
			t.Fatalf("fail=%d: half-deleted key visible with value %q", fail, got)
		}
		for i := 0; i < 8; i++ {
			if i == 3 {
				continue
			}
			if got, ok := h2.Get([]byte(fmt.Sprintf("del%03d", i))); !ok || string(got) != "dv" {
				t.Fatalf("fail=%d: sibling del%03d damaged", fail, i)
			}
		}
		if err := h2.Check(); err != nil {
			t.Fatalf("fail=%d: fsck after delete crash: %v", fail, err)
		}
		// Fill enough records to force reuse of the victim slot; the
		// orphaned value (if any) must be reclaimed.
		for i := 0; i < 60; i++ {
			if err := h2.Put([]byte(fmt.Sprintf("re%04d", i)), []byte("r")); err != nil {
				t.Fatalf("fail=%d: refill: %v", fail, err)
			}
		}
		if err := h2.Check(); err != nil {
			t.Fatalf("fail=%d: fsck after refill: %v", fail, err)
		}
	}
	// Deleting one of several records in shared chunks performs exactly
	// two persists (leaf-bit reset, value-bit reset); both boundaries must
	// have been exercised.
	if points < 2 {
		t.Fatalf("delete exercised only %d crash points", points)
	}
}

// TestCrashDuringMixedWorkload crashes a random operation stream at many
// different persist counts and checks global consistency: every committed
// record readable, no leaks, allocator sane.
func TestCrashDuringMixedWorkload(t *testing.T) {
	for _, fail := range []int64{1, 3, 7, 17, 41, 97, 211, 499, 997, 1777} {
		committed := map[string]string{}
		mayExist := map[string]bool{}
		h, err := New(Options{ArenaSize: 16 << 20, Tracking: true})
		if err != nil {
			t.Fatal(err)
		}
		h.Arena().FailAfterPersists(fail)
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, isCrash := r.(pmem.CrashError); !isCrash {
						panic(r)
					}
				}
			}()
			seed := uint64(fail) + 1
			for i := 0; ; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				k := fmt.Sprintf("%c%c%04d", 'a'+byte(seed>>8%4), 'a'+byte(seed>>16%4), (seed>>24)%500)
				v := fmt.Sprintf("v%06d", i)
				// The op below may crash mid-flight: record intent first.
				switch {
				case i%5 == 4:
					mayExist[k] = true // deletion in flight: may or may not survive
					if err := h.Delete([]byte(k)); err == nil {
						delete(committed, k)
					}
					delete(mayExist, k)
				default:
					mayExist[k] = true
					if err := h.Put([]byte(k), []byte(v)); err != nil {
						t.Error(err)
						return
					}
					committed[k] = v
					delete(mayExist, k)
				}
			}
		}()
		h.Arena().DisarmCrash()
		img, err := h.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
		if err != nil {
			t.Fatal(err)
		}
		h2, err := Open(img, Options{})
		if err != nil {
			t.Fatalf("fail=%d: recovery: %v", fail, err)
		}
		if err := h2.Check(); err != nil {
			t.Fatalf("fail=%d: fsck: %v", fail, err)
		}
		for k, v := range committed {
			if mayExist[k] {
				continue // the in-flight op targeted this key
			}
			got, ok := h2.Get([]byte(k))
			if !ok || string(got) != v {
				// One subtlety: the crashed op may have been an update of k
				// committed at the tree level... but committed[] was only
				// set after Put returned, so this is a real loss.
				t.Fatalf("fail=%d: committed key %q = (%q,%v), want %q", fail, k, got, ok, v)
			}
		}
	}
}

// TestCrashDuringUnloggedUpdateEveryPersist exercises the paper's
// measured update path (Section IV.B): the pointer swing is atomic, so
// the key always reads old-or-new; any stranded value object must be
// reclaimed by the recovery orphan sweep so the recovered store is
// leak-free.
func TestCrashDuringUnloggedUpdateEveryPersist(t *testing.T) {
	opts := Options{ArenaSize: 16 << 20, Tracking: true, UnloggedUpdates: true}
	points := 0
	for fail := int64(0); ; fail++ {
		h, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Put([]byte("unlog"), []byte("oldval")); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := h.Put([]byte(fmt.Sprintf("ul%d", i)), []byte("keep")); err != nil {
				t.Fatal(err)
			}
		}
		h.Arena().FailAfterPersists(fail)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.CrashError); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			if err := h.Update([]byte("unlog"), []byte("newval")); err != nil {
				t.Fatal(err)
			}
		}()
		h.Arena().DisarmCrash()
		if !crashed {
			break
		}
		points++
		img, err := h.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
		if err != nil {
			t.Fatal(err)
		}
		h2, err := Open(img, opts)
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		got, ok := h2.Get([]byte("unlog"))
		if !ok {
			t.Fatalf("fail=%d: key vanished", fail)
		}
		if s := string(got); s != "oldval" && s != "newval" {
			t.Fatalf("fail=%d: torn unlogged update: %q", fail, s)
		}
		// The orphan sweep must leave the store leak-free immediately.
		if err := h2.Check(); err != nil {
			t.Fatalf("fail=%d: fsck after unlogged-update crash: %v", fail, err)
		}
	}
	// Unlogged updates do 4 persists (value, value bit, swing, old reset);
	// with allocator-internal persists the sweep must cover at least 4.
	if points < 4 {
		t.Fatalf("unlogged update exercised only %d crash points", points)
	}
}

// TestUnloggedUpdateFasterPersistCount verifies the headline difference
// between the two update modes: the unlogged path persists roughly half
// as often.
func TestUnloggedUpdateFasterPersistCount(t *testing.T) {
	count := func(unlogged bool) int64 {
		h, err := New(Options{ArenaSize: 16 << 20, UnloggedUpdates: unlogged})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Put([]byte("pc"), []byte("v0")); err != nil {
			t.Fatal(err)
		}
		before := h.Arena().Persists()
		const n = 100
		for i := 0; i < n; i++ {
			if err := h.Update([]byte("pc"), []byte("v1")); err != nil {
				t.Fatal(err)
			}
		}
		return (h.Arena().Persists() - before) / n
	}
	logged, unlogged := count(false), count(true)
	if unlogged >= logged {
		t.Fatalf("unlogged updates persist %d/op, logged %d/op — no saving", unlogged, logged)
	}
	if logged < 6 || unlogged > 5 {
		t.Fatalf("persist counts off: logged %d/op (want >= 6), unlogged %d/op (want <= 5)", logged, unlogged)
	}
}

// TestCrashDuringDeleteRecycleEveryPersist sweeps the delete path where
// the deleted leaf empties its 56-object chunk, so Recycle's persistent
// recycle-log unlink runs (Algorithm 6) — a path the single-record delete
// sweep above never reaches. Every boundary must leave each victim key
// atomically present-or-absent, every survivor intact, and the allocator
// lists well-formed.
func TestCrashDuringDeleteRecycleEveryPersist(t *testing.T) {
	const nkeys = 56 + 8 // two leaf chunks; emptying the newer one unlinks it
	key := func(i int) []byte { return []byte(fmt.Sprintf("rk%04d", i)) }
	setup := func(h *HART) {
		for i := 0; i < nkeys; i++ {
			if err := h.Put(key(i), []byte("dv")); err != nil {
				t.Fatal(err)
			}
		}
	}
	points := 0
	for fail := int64(0); ; fail++ {
		h2, crashed := crashHarness(t, fail, setup, func(h *HART) {
			// Deleting the tail empties the second leaf chunk (and the
			// second chunk of the matching value class) mid-sequence.
			for i := nkeys - 1; i >= 40; i-- {
				if err := h.Delete(key(i)); err != nil {
					t.Fatal(err)
				}
			}
		})
		if !crashed {
			break
		}
		points++
		for i := 0; i < nkeys; i++ {
			got, ok := h2.Get(key(i))
			if ok && string(got) != "dv" {
				t.Fatalf("fail=%d: key %q torn: %q", fail, key(i), got)
			}
			if i < 40 && !ok {
				t.Fatalf("fail=%d: survivor %q lost", fail, key(i))
			}
		}
		if err := h2.Check(); err != nil {
			t.Fatalf("fail=%d: fsck after recycle crash: %v", fail, err)
		}
		// Refill through the recycled space.
		for i := 0; i < 70; i++ {
			if err := h2.Put([]byte(fmt.Sprintf("refill%04d", i)), []byte("r")); err != nil {
				t.Fatalf("fail=%d: refill: %v", fail, err)
			}
		}
		if err := h2.Check(); err != nil {
			t.Fatalf("fail=%d: fsck after refill: %v", fail, err)
		}
	}
	if points < 20 {
		t.Fatalf("recycle delete sweep exercised only %d crash points", points)
	}
}

// TestCrashDuringRecoveryEveryPersist closes the re-entrancy gap: the
// first crash lands at every boundary of an update (the op whose recovery
// does the most PM writes: completing the ulog, resetting it, sweeping
// stale slots), then recovery itself is crashed at every one of its own
// persist boundaries, and recovery-after-recovery must still produce the
// old or new value with a clean fsck.
func TestCrashDuringRecoveryEveryPersist(t *testing.T) {
	for fail := int64(0); ; fail++ {
		h, err := New(Options{ArenaSize: 16 << 20, Tracking: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Put([]byte("upkey"), []byte("oldval")); err != nil {
			t.Fatal(err)
		}
		h.Arena().FailAfterPersists(fail)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.CrashError); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			if err := h.Update([]byte("upkey"), []byte("newval")); err != nil {
				t.Fatal(err)
			}
		}()
		h.Arena().DisarmCrash()
		if !crashed {
			break
		}
		img, err := h.Arena().DurableImage()
		if err != nil {
			t.Fatal(err)
		}
		for rfail := int64(0); ; rfail++ {
			if rfail > 256 {
				t.Fatalf("fail=%d: recovery persisted more than 256 times", fail)
			}
			ar, err := pmem.Attach(append([]byte(nil), img...), pmem.Config{Tracking: true})
			if err != nil {
				t.Fatal(err)
			}
			ar.FailAfterPersists(rfail)
			recrashed := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(pmem.CrashError); !ok {
							panic(r)
						}
						recrashed = true
					}
				}()
				_, err = Open(ar, Options{})
			}()
			var h2 *HART
			if recrashed {
				img2, cerr := ar.Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
				if cerr != nil {
					t.Fatal(cerr)
				}
				if h2, err = Open(img2, Options{}); err != nil {
					t.Fatalf("fail=%d rfail=%d: recovery after recovery crash: %v", fail, rfail, err)
				}
			} else if err != nil {
				t.Fatalf("fail=%d rfail=%d: open: %v", fail, rfail, err)
			} else {
				// Recovery finished before the second injection: sweep done.
				break
			}
			got, ok := h2.Get([]byte("upkey"))
			if !ok {
				t.Fatalf("fail=%d rfail=%d: key vanished", fail, rfail)
			}
			if s := string(got); s != "oldval" && s != "newval" {
				t.Fatalf("fail=%d rfail=%d: torn value %q", fail, rfail, s)
			}
			if err := h2.Check(); err != nil {
				t.Fatalf("fail=%d rfail=%d: fsck: %v", fail, rfail, err)
			}
		}
	}
}
