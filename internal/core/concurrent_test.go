package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentWritersDistinctARTs exercises the paper's concurrency
// model: writers on distinct hash keys (hence distinct ARTs) proceed in
// parallel without interference.
func TestConcurrentWritersDistinctARTs(t *testing.T) {
	h, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prefix := fmt.Sprintf("%c%c", 'a'+w, 'a'+w) // distinct hash key per worker
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("%s%06d", prefix, i))
				if err := h.Put(k, []byte(fmt.Sprintf("w%dv%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", h.Len(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		prefix := fmt.Sprintf("%c%c", 'a'+w, 'a'+w)
		for i := 0; i < perWorker; i += 97 {
			k := []byte(fmt.Sprintf("%s%06d", prefix, i))
			got, ok := h.Get(k)
			if !ok || string(got) != fmt.Sprintf("w%dv%d", w, i) {
				t.Fatalf("worker %d key %d: (%q,%v)", w, i, got, ok)
			}
		}
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMixedSameART hammers one hash key with concurrent
// readers, writers and deleters; the per-ART RWMutex must serialise them
// without losing consistency.
func TestConcurrentMixedSameART(t *testing.T) {
	h, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("zz%03d", (w*per+i)%200)) // shared ART "zz"
				switch i % 4 {
				case 0, 1:
					if err := h.Put(k, []byte(fmt.Sprintf("%08d", i))); err != nil {
						t.Error(err)
						return
					}
				case 2:
					h.Get(k)
				case 3:
					h.Delete(k) // ErrNotFound is fine
				}
			}
		}(w)
	}
	wg.Wait()
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentScanDuringWrites checks that ordered scans run safely
// against concurrent writers (they hold per-shard read locks).
func TestConcurrentScanDuringWrites(t *testing.T) {
	h, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := h.Put([]byte(fmt.Sprintf("sc%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 1000
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.Put([]byte(fmt.Sprintf("sc%05d", i)), []byte("v"))
			h.Delete([]byte(fmt.Sprintf("sc%05d", i-1000)))
			i++
		}
	}()
	for r := 0; r < 20; r++ {
		prev := ""
		n := 0
		h.Scan(nil, nil, func(k, v []byte) bool {
			if s := string(k); s <= prev {
				t.Errorf("scan out of order under writes: %q after %q", s, prev)
				return false
			} else {
				prev = s
			}
			n++
			return true
		})
		if n == 0 {
			t.Error("scan saw no records")
		}
	}
	close(stop)
	wg.Wait()
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyShardRemovalRace races deleters that empty an ART against
// inserters recreating it; the dead-shard retry loop must never lose a
// committed write.
func TestEmptyShardRemovalRace(t *testing.T) {
	h, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := []byte("qq-contended")
			for i := 0; i < 2000; i++ {
				if i%2 == 0 {
					h.Put(k, []byte{byte(w + 1)})
				} else {
					h.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	// Converge to a known state.
	if err := h.Put([]byte("qq-contended"), []byte("done")); err != nil {
		t.Fatal(err)
	}
	got, ok := h.Get([]byte("qq-contended"))
	if !ok || string(got) != "done" {
		t.Fatalf("final state (%q,%v)", got, ok)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}
