package core

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentWritersDistinctARTs exercises the paper's concurrency
// model: writers on distinct hash keys (hence distinct ARTs) proceed in
// parallel without interference.
func TestConcurrentWritersDistinctARTs(t *testing.T) {
	h, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prefix := fmt.Sprintf("%c%c", 'a'+w, 'a'+w) // distinct hash key per worker
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("%s%06d", prefix, i))
				if err := h.Put(k, []byte(fmt.Sprintf("w%dv%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", h.Len(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		prefix := fmt.Sprintf("%c%c", 'a'+w, 'a'+w)
		for i := 0; i < perWorker; i += 97 {
			k := []byte(fmt.Sprintf("%s%06d", prefix, i))
			got, ok := h.Get(k)
			if !ok || string(got) != fmt.Sprintf("w%dv%d", w, i) {
				t.Fatalf("worker %d key %d: (%q,%v)", w, i, got, ok)
			}
		}
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMixedSameART hammers one hash key with concurrent
// readers, writers and deleters; the per-ART RWMutex must serialise them
// without losing consistency.
func TestConcurrentMixedSameART(t *testing.T) {
	h, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("zz%03d", (w*per+i)%200)) // shared ART "zz"
				switch i % 4 {
				case 0, 1:
					if err := h.Put(k, []byte(fmt.Sprintf("%08d", i))); err != nil {
						t.Error(err)
						return
					}
				case 2:
					h.Get(k)
				case 3:
					h.Delete(k) // ErrNotFound is fine
				}
			}
		}(w)
	}
	wg.Wait()
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentScanDuringWrites checks that ordered scans run safely
// against concurrent writers (they hold per-shard read locks).
func TestConcurrentScanDuringWrites(t *testing.T) {
	h, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := h.Put([]byte(fmt.Sprintf("sc%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 1000
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.Put([]byte(fmt.Sprintf("sc%05d", i)), []byte("v"))
			h.Delete([]byte(fmt.Sprintf("sc%05d", i-1000)))
			i++
		}
	}()
	for r := 0; r < 20; r++ {
		prev := ""
		n := 0
		h.Scan(nil, nil, func(k, v []byte) bool {
			if s := string(k); s <= prev {
				t.Errorf("scan out of order under writes: %q after %q", s, prev)
				return false
			} else {
				prev = s
			}
			n++
			return true
		})
		if n == 0 {
			t.Error("scan saw no records")
		}
	}
	close(stop)
	wg.Wait()
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestOptimisticReadStress drives the lock-free read path through its
// seqlock retries: writers continuously update a small hot key set (so
// readers keep colliding with open write sections and value-slot reuse)
// while readers verify that every value they observe is one a writer
// actually wrote for that exact key — a torn or stale read would mix
// generations or keys. Run under -race this also proves the word-level
// atomicity of the PM accesses the optimistic protocol performs.
func TestOptimisticReadStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	h, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const hotKeys = 16
	key := func(i int) []byte { return []byte(fmt.Sprintf("hh%03d", i)) }
	// value encodes (key index, generation) so any cross-key or torn mix
	// is detectable: two identical 8-byte words, each carrying the pair.
	value := func(i, gen int) []byte {
		half := fmt.Sprintf("%03d-%04d", i, gen%10000)
		return []byte(half + half)
	}
	for i := 0; i < hotKeys; i++ {
		if err := h.Put(key(i), value(i, 0)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Updaters: constant value-slot churn on every hot key.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for gen := 1; !stop.Load(); gen++ {
				for i := w; i < hotKeys; i += 2 {
					if err := h.Put(key(i), value(i, gen)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// Readers: Get, zero-alloc GetInto and Contains against the hot set.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, 0, 16)
			for n := 0; !stop.Load(); n++ {
				i := (r + n) % hotKeys
				var v []byte
				var ok bool
				if n%2 == 0 {
					v, ok = h.Get(key(i))
				} else {
					v, ok = h.GetInto(key(i), buf)
				}
				if !ok {
					t.Errorf("hot key %d missing", i)
					return
				}
				// Self-consistency: both halves must agree and name key i.
				if len(v) != 16 || !bytes.Equal(v[:8], v[8:]) || string(v[:3]) != fmt.Sprintf("%03d", i) {
					t.Errorf("inconsistent read for key %d: %q", i, v)
					return
				}
				if !h.Contains(key(i)) {
					t.Errorf("Contains(%d) = false for live key", i)
					return
				}
			}
		}(r)
	}
	// Churner: creates and empties a neighbouring shard so readers also
	// race directory snapshot replacement and the dead-shard path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		k := []byte("hz-ephemeral")
		for !stop.Load() {
			if err := h.Put(k, []byte("x")); err != nil {
				t.Error(err)
				return
			}
			if err := h.Delete(k); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for i := 0; i < 400; i++ {
		runtime.Gosched()
		for j := 0; j < hotKeys; j++ {
			if !h.Contains(key(j)) {
				t.Fatalf("hot key %d vanished", j)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestOptimisticReadShardRemoval races lock-free readers against the
// delete-to-empty / recreate cycle of a single shard: a reader holding a
// stale directory snapshot must either conclusively miss or return a
// value that was live for that key, never panic or fabricate.
func TestOptimisticReadShardRemoval(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	h, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	k := []byte("rr-flicker")
	var stop atomic.Bool
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; !stop.Load(); i++ {
			if err := h.Put(k, []byte(fmt.Sprintf("%08d", i))); err != nil {
				t.Error(err)
				return
			}
			if err := h.Delete(k); err != nil { // empties and retires the shard
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			buf := make([]byte, 0, 16)
			for n := 0; n < 20000; n++ {
				if v, ok := h.GetInto(k, buf); ok && len(v) != 8 {
					t.Errorf("bad value %q", v)
					return
				}
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	writer.Wait()
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyShardRemovalRace races deleters that empty an ART against
// inserters recreating it; the dead-shard retry loop must never lose a
// committed write.
func TestEmptyShardRemovalRace(t *testing.T) {
	h, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := []byte("qq-contended")
			for i := 0; i < 2000; i++ {
				if i%2 == 0 {
					h.Put(k, []byte{byte(w + 1)})
				} else {
					h.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	// Converge to a known state.
	if err := h.Put([]byte("qq-contended"), []byte("done")); err != nil {
		t.Fatal(err)
	}
	got, ok := h.Get([]byte("qq-contended"))
	if !ok || string(got) != "done" {
		t.Fatalf("final state (%q,%v)", got, ok)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}
