package core

import (
	"bytes"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// Scan visits all records with start <= key < end in ascending key order,
// calling fn with copies of key and value until fn returns false. A nil
// start scans from the smallest key; a nil end scans to the largest.
//
// The paper implements range query as one search per known key (Section
// IV.D) and notes that "the side-effect of hash on range query of HART is
// very limited because the main part of HART are multiple ART trees".
// Scan realises that observation as a native ordered scan: the hash
// directory keeps its keys in a sorted list, the shards are visited in
// hash-key order, and each ART is traversed in order, so the concatenated
// output is globally sorted. This is the natural extension the paper's
// design admits; the benchmark harness measures both this and the paper's
// per-key method.
func (h *HART) Scan(start, end []byte, fn func(key, value []byte) bool) {
	if h.closed.Load() {
		return
	}
	// Normalise the bounds once: an empty start is the same as nil
	// (nothing sorts below ""), and an empty end means an empty range.
	// The in-shard bounds derived below then never produce an empty
	// non-nil slice, which the tree iterators would treat as unbounded.
	if len(start) == 0 {
		start = nil
	}
	if end != nil && len(end) == 0 {
		return
	}
	// Directory snapshots are immutable, so the sorted key list can be
	// iterated without copying or locking.
	hks := h.dir.Load().SortedKeys()

	for _, hk := range hks {
		hkb := []byte(hk)
		// All keys in this shard are hk + suffix. Skip shards wholly
		// before start or at/after end; derive in-shard bounds otherwise.
		if end != nil && bytes.Compare(hkb, end) >= 0 {
			return // sorted order: nothing further can qualify
		}
		var artStart, artEnd []byte
		if start != nil {
			switch {
			case bytes.Compare(hkb, start) >= 0:
				artStart = nil // every key in the shard is >= start
			case bytes.HasPrefix(start, hkb):
				// hkb < start here, so the suffix is never empty.
				artStart = start[len(hkb):]
			default:
				continue // every key in the shard is < start
			}
		}
		if end != nil && bytes.HasPrefix(end, hkb) {
			artEnd = end[len(hkb):]
			// artEnd of length 0 would mean end == hk: handled by the
			// shard-skip test above, so artEnd here is always non-empty.
		}

		s := h.lockShardR(hkb)
		if s == nil {
			continue
		}
		stop := false
		s.tree.Load().AscendRange(artStart, artEnd, func(artKey []byte, leafW uint64) bool {
			leaf := h.leafKeyValue(leafW)
			if leaf == nil {
				return true
			}
			if !fn(leaf.key, leaf.value) {
				stop = true
				return false
			}
			return true
		})
		s.mu.RUnlock()
		if stop {
			return
		}
	}
}

// scannedLeaf carries one materialised record.
type scannedLeaf struct {
	key, value []byte
}

// leafKeyValue loads a leaf's key and value, returning nil for a leaf
// whose bit is unset (concurrently deleted).
func (h *HART) leafKeyValue(leafW uint64) *scannedLeaf {
	leaf := pmem.Ptr(leafW)
	if set, err := h.alloc.BitIsSet(leaf); err != nil || !set {
		return nil
	}
	v := h.leafValue(leaf)
	if v == nil {
		return nil
	}
	return &scannedLeaf{key: h.leafKey(leaf), value: v}
}

// Keys returns all keys in ascending order (convenience for tests and
// examples; materialises the whole key set).
func (h *HART) Keys() [][]byte {
	var out [][]byte
	h.Scan(nil, nil, func(k, _ []byte) bool {
		out = append(out, k)
		return true
	})
	return out
}

// ScanReverse visits records with start <= key < end in descending key
// order — the mirror of Scan, walking the hash directory's sorted keys
// backwards and each ART in reverse. (API extension beyond the paper.)
func (h *HART) ScanReverse(start, end []byte, fn func(key, value []byte) bool) {
	if h.closed.Load() {
		return
	}
	// Same bound normalisation as Scan.
	if len(start) == 0 {
		start = nil
	}
	if end != nil && len(end) == 0 {
		return
	}
	hks := h.dir.Load().SortedKeys()

	for i := len(hks) - 1; i >= 0; i-- {
		hkb := []byte(hks[i])
		// Every key in the shard is hk + suffix >= hk, so hk >= end means
		// the whole shard is at/after end. (When end has hkb as a proper
		// prefix, hkb < end and we fall through; hk >= end with hkb a
		// prefix of end forces end == hk exactly, which still excludes the
		// entire shard — the old code fell through in that case and walked
		// every leaf only for the iterator's end test to discard each one,
		// an O(shard) descent whose correctness hung on the iterator
		// distinguishing the empty in-shard bound from an absent one.)
		if end != nil && bytes.Compare(hkb, end) >= 0 {
			continue
		}
		var artStart, artEnd []byte
		if start != nil {
			switch {
			case bytes.Compare(hkb, start) >= 0:
				artStart = nil // every key in the shard is >= start
			case bytes.HasPrefix(start, hkb):
				// hkb < start here, so the suffix is never empty.
				artStart = start[len(hkb):]
			default:
				return // sorted descent: everything further is < start
			}
		}
		if end != nil && bytes.HasPrefix(end, hkb) {
			// Proper prefix (end == hk was skipped above): never empty.
			artEnd = end[len(hkb):]
		}

		s := h.lockShardR(hkb)
		if s == nil {
			continue
		}
		stop := false
		s.tree.Load().DescendRange(artStart, artEnd, func(artKey []byte, leafW uint64) bool {
			rec := h.leafKeyValue(leafW)
			if rec == nil {
				return true
			}
			if !fn(rec.key, rec.value) {
				stop = true
				return false
			}
			return true
		})
		s.mu.RUnlock()
		if stop {
			return
		}
	}
}
