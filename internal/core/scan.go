package core

import (
	"bytes"
	"sort"
	"strings"
	"time"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// Scan visits all records with start <= key < end in ascending key order,
// calling fn with copies of key and value until fn returns false. A nil
// start scans from the smallest key; a nil end scans to the largest.
//
// The paper implements range query as one search per known key (Section
// IV.D) and notes that "the side-effect of hash on range query of HART is
// very limited because the main part of HART are multiple ART trees".
// Scan realises that observation as a native ordered scan: directory
// entries sort like the records they hold (an entry that is a proper
// prefix of another holds only its exact key — the dirTable invariant —
// so entry order is record order), and each ART is traversed in order,
// making the concatenated output globally sorted.
//
// The walk is cursor-based rather than a single directory-snapshot
// iteration: each step re-resolves the cursor position against the
// *current* snapshot, visits one entry under its read lock, and advances
// the cursor past that entry's whole key range. An elastic split or merge
// between steps therefore cannot hide records — moved keys are either
// behind the cursor (already visited under the old geometry, and key
// ranges never revisit) or ahead of it (found via the fresh snapshot).
// Within one entry the shard read lock excludes geometry changes, since
// splitting or merging a shard requires its write lock.
func (h *HART) Scan(start, end []byte, fn func(key, value []byte) bool) {
	if h.obs.timing.Enabled() {
		t := time.Now()
		h.scanOp(start, end, fn)
		h.obs.scanH.Record(time.Since(t).Nanoseconds())
		return
	}
	h.scanOp(start, end, fn)
}

// scanOp is Scan's body behind the gated timing wrapper above.
func (h *HART) scanOp(start, end []byte, fn func(key, value []byte) bool) {
	if h.closed.Load() {
		return
	}
	h.obs.scans.Add(1)
	var visited uint64
	defer func() { h.obs.scanRecords.Add(visited) }()
	// Normalise the bounds once: an empty start is the same as nil
	// (nothing sorts below ""), and an empty end means an empty range.
	// The in-shard bounds derived below then never produce an empty
	// non-nil slice, which the tree iterators would treat as unbounded.
	if len(start) == 0 {
		start = nil
	}
	if end != nil && len(end) == 0 {
		return
	}
	cursor := start // next key position to visit; nil = from the beginning
	for {
		d := h.dir.Load()
		keys := d.tab.SortedKeys()
		var ek, artStart []byte
		switch {
		case cursor == nil:
			if len(keys) == 0 {
				return
			}
			ek = []byte(keys[0])
		default:
			rk := d.route(cursor, h.opts.HashKeyLen)
			if _, ok := d.tab.Get(rk); ok && len(rk) < len(cursor) {
				// The cursor falls strictly inside a proper-prefix entry:
				// its remaining records start at cursor's in-shard suffix.
				// Entries between rk and cursor in sort order cannot hold
				// qualifying keys: routing stopped at rk, so rk is not a
				// split prefix, and only split prefixes can have entries
				// extending them — rk owns its whole prefix range.
				ek = rk
				artStart = cursor[len(rk):]
				break
			}
			i := sort.SearchStrings(keys, string(cursor))
			if i >= len(keys) {
				return
			}
			ek = []byte(keys[i]) // ek >= cursor, so every key in it qualifies
		}
		if end != nil && bytes.Compare(ek, end) >= 0 {
			return // entries ahead only grow; nothing further qualifies
		}
		var artEnd []byte
		if end != nil && bytes.HasPrefix(end, ek) && len(end) > len(ek) {
			artEnd = end[len(ek):]
		}

		s, _ := d.tab.Get(ek)
		if s.pending.Load() != nil {
			h.drainShard(s)
		}
		s.mu.RLock()
		if s.dead {
			// Split, merged or emptied since the snapshot: re-resolve the
			// unchanged cursor against a fresh snapshot.
			s.mu.RUnlock()
			continue
		}
		stop := false
		s.tree.Load().AscendRange(artStart, artEnd, func(artKey []byte, leafW uint64) bool {
			rec := h.leafKeyValue(leafW)
			if rec == nil {
				return true
			}
			visited++
			if !fn(rec.key, rec.value) {
				stop = true
				return false
			}
			return true
		})
		s.mu.RUnlock()
		if stop {
			return
		}
		// Advance past everything this entry held. An entry that is a
		// proper prefix of its sorted successor is residual-only (the
		// dirTable invariant: it holds just the key ek itself — short keys
		// and split residuals), so deeper entries own the rest of ek's
		// prefix range and the cursor must step into that range, not over
		// it. Entries extending ek sort contiguously right after it, so
		// checking the immediate successor suffices. Either advance is
		// strictly greater than the old cursor, so the walk terminates.
		j := sort.SearchStrings(keys, string(ek))
		if j+1 < len(keys) && strings.HasPrefix(keys[j+1], string(ek)) {
			cursor = append(append([]byte(nil), ek...), 0)
		} else {
			cursor = prefixSuccessor(ek)
			if cursor == nil {
				return // the entry's range extends to the top of the keyspace
			}
		}
	}
}

// prefixSuccessor returns the smallest byte string greater than every
// string having p as a prefix, or nil when no such string exists (p is
// all 0xff).
func prefixSuccessor(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xff {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// scannedLeaf carries one materialised record.
type scannedLeaf struct {
	key, value []byte
}

// leafKeyValue loads a leaf's key and value, returning nil for a leaf
// whose bit is unset (concurrently deleted).
func (h *HART) leafKeyValue(leafW uint64) *scannedLeaf {
	leaf := pmem.Ptr(leafW)
	if set, err := h.alloc.BitIsSet(leaf); err != nil || !set {
		return nil
	}
	v := h.leafValue(leaf)
	if v == nil {
		return nil
	}
	return &scannedLeaf{key: h.leafKey(leaf), value: v}
}

// Keys returns all keys in ascending order (convenience for tests and
// examples; materialises the whole key set).
func (h *HART) Keys() [][]byte {
	var out [][]byte
	h.Scan(nil, nil, func(k, _ []byte) bool {
		out = append(out, k)
		return true
	})
	return out
}

// ScanReverse visits records with start <= key < end in descending key
// order — the mirror of Scan, with the cursor tracking the exclusive
// upper bound of the keys still to visit. (API extension beyond the
// paper.)
func (h *HART) ScanReverse(start, end []byte, fn func(key, value []byte) bool) {
	if h.obs.timing.Enabled() {
		t := time.Now()
		h.scanReverseOp(start, end, fn)
		h.obs.scanH.Record(time.Since(t).Nanoseconds())
		return
	}
	h.scanReverseOp(start, end, fn)
}

// scanReverseOp is ScanReverse's body behind the gated timing wrapper.
func (h *HART) scanReverseOp(start, end []byte, fn func(key, value []byte) bool) {
	if h.closed.Load() {
		return
	}
	h.obs.scans.Add(1)
	var visited uint64
	defer func() { h.obs.scanRecords.Add(visited) }()
	// Same bound normalisation as Scan.
	if len(start) == 0 {
		start = nil
	}
	if end != nil && len(end) == 0 {
		return
	}
	cursorEnd := end // visit keys < cursorEnd next; nil = from the top
	for {
		d := h.dir.Load()
		keys := d.tab.SortedKeys()
		// Highest entry that can hold a key < cursorEnd: entries at or
		// above cursorEnd hold only keys >= themselves >= cursorEnd.
		i := len(keys) - 1
		if cursorEnd != nil {
			i = sort.SearchStrings(keys, string(cursorEnd)) - 1
		}
		if i < 0 {
			return
		}
		ek := []byte(keys[i])
		var artStart []byte
		if start != nil {
			switch {
			case bytes.Compare(ek, start) >= 0:
				artStart = nil // every key in the entry is >= start
			case bytes.HasPrefix(start, ek):
				// ek < start here, so the suffix is never empty.
				artStart = start[len(ek):]
			default:
				return // this entry and everything below it is < start
			}
		}
		var artEnd []byte
		if cursorEnd != nil && bytes.HasPrefix(cursorEnd, ek) && len(cursorEnd) > len(ek) {
			// The entry's range straddles the cursor (ek is a proper
			// prefix): bound the in-shard descent.
			artEnd = cursorEnd[len(ek):]
		}

		s, _ := d.tab.Get(ek)
		if s.pending.Load() != nil {
			h.drainShard(s)
		}
		s.mu.RLock()
		if s.dead {
			s.mu.RUnlock()
			continue
		}
		stop := false
		s.tree.Load().DescendRange(artStart, artEnd, func(artKey []byte, leafW uint64) bool {
			rec := h.leafKeyValue(leafW)
			if rec == nil {
				return true
			}
			visited++
			if !fn(rec.key, rec.value) {
				stop = true
				return false
			}
			return true
		})
		s.mu.RUnlock()
		if stop {
			return
		}
		if start != nil && bytes.Compare(ek, start) <= 0 {
			return // keys below ek are all < start
		}
		cursorEnd = ek // everything >= ek is done
	}
}
