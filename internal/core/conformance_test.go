package core_test

import (
	"testing"

	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/kv"
	"github.com/casl-sdsu/hart/internal/kv/kvtest"
)

// TestConformance holds HART to the same behavioural battery as the three
// baseline trees (external test package to avoid import cycles).
func TestConformance(t *testing.T) {
	kvtest.RunAll(t, func(t *testing.T) kv.Index {
		h, err := core.New(core.Options{ArenaSize: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return h
	})
}
