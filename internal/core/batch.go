package core

import (
	"bytes"
	"errors"
	"sort"
	"time"

	"github.com/casl-sdsu/hart/internal/epalloc"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// Record is one key-value pair for batch operations.
type Record struct {
	// Key is 1..MaxKeyLen bytes.
	Key []byte
	// Value is 1..maxValueLen bytes.
	Value []byte
}

// PutBatch inserts or updates many records, amortising the per-operation
// costs that Put pays once per key: records are sorted and grouped by
// hash key, each group takes its ART's write lock once, allocates all its
// PM slots in batched stripe-lock acquisitions, persists values and
// leaves as contiguous runs, commits allocation bits through coalesced
// header writes, and republishes the shard's copy-on-write tree exactly
// once. Crash atomicity remains per record: a crash exposes a sorted
// prefix of the batch, the same guarantee the per-key path gives.
//
// In Options.LegacyWritePath mode the pre-batching behaviour is kept
// verbatim (per-record protocol, one republication per key) as the
// measurable baseline.
//
// The first error aborts the remainder; the count of applied records is
// returned with it.
func (h *HART) PutBatch(records []Record) (int, error) {
	if h.obs.timing.Enabled() {
		start := time.Now()
		n, err := h.putBatchOp(records)
		h.obs.batchH.Record(time.Since(start).Nanoseconds())
		return n, err
	}
	return h.putBatchOp(records)
}

// putBatchOp is PutBatch's body behind the gated timing wrapper above.
func (h *HART) putBatchOp(records []Record) (int, error) {
	for _, r := range records {
		if err := h.validateWrite(r.Key, r.Value); err != nil {
			return 0, err
		}
	}
	sorted := make([]Record, len(records))
	copy(sorted, records)
	// Stable, so duplicate keys apply in submission order and the batch
	// nets out to the last submitted value, like sequential Puts.
	sort.SliceStable(sorted, func(i, j int) bool {
		return bytes.Compare(sorted[i].Key, sorted[j].Key) < 0
	})

	done := 0
	retries := 0
	for i := 0; i < len(sorted); {
		hashKey, _ := h.splitKey(sorted[i].Key)
		// Extend the run of records sharing this hash key (sorted order
		// makes the run contiguous). After repeated validation failures —
		// possible only under concurrent elastic geometry churn — degrade
		// to single-record groups, which are always self-consistent.
		j := i + 1
		if retries < 3 {
			for j < len(sorted) {
				hk2, _ := h.splitKey(sorted[j].Key)
				if !bytes.Equal(hk2, hashKey) {
					break
				}
				j++
			}
		}
		s, lockedHK := h.lockShardW(sorted[i].Key, true)
		if j-i == 1 {
			// The route taken under the lock is authoritative for a
			// single record, whatever grouping thought.
			hashKey = lockedHK
		} else if !bytes.Equal(lockedHK, hashKey) || !h.groupStable(sorted[i+1:j], hashKey) {
			// A split or merge rerouted part of the group between the
			// optimistic grouping and the lock: regroup against the new
			// geometry. Holding the shard lock pins the routes of keys
			// that NOW map to lockedHK, so a group that validates here
			// stays valid for the whole application.
			s.mu.Unlock()
			retries++
			continue
		}
		retries = 0
		s.beginWrite()
		var n int
		var err error
		switch {
		case h.opts.LegacyWritePath:
			n, err = h.putGroupSeq(s, hashKey, sorted[i:j], 0)
		case j-i == 1:
			// A group of one has nothing to amortise; the per-record
			// protocol skips putGroup's batch bookkeeping.
			n, err = h.putGroupSeq(s, hashKey, sorted[i:j], h.stripeOf(hashKey))
		default:
			n, err = h.putGroup(s, hashKey, sorted[i:j])
		}
		s.endWrite()
		hot := err == nil && n > 0 && h.noteWrite(s, n)
		s.mu.Unlock()
		if hot {
			h.maybeSplit(hashKey)
		}
		done += n
		if err != nil {
			h.obs.putBatches.Add(1)
			h.obs.batchRecords.Add(uint64(done))
			return done, err
		}
		i = j
	}
	h.obs.putBatches.Add(1)
	h.obs.batchRecords.Add(uint64(done))
	return done, nil
}

// groupStable reports whether every record still routes to hashKey under
// the current directory snapshot. Called with the shard at hashKey write-
// locked, after which the answer cannot change: splitting hashKey needs
// this lock, its ancestor entries are residual-only (never split), and a
// merge covering it locks this shard too. Geometry is immutable without
// ElasticDirectory, so the scan is skipped there.
func (h *HART) groupStable(recs []Record, hashKey []byte) bool {
	if !h.opts.ElasticDirectory {
		return true
	}
	d := h.dir.Load()
	for _, r := range recs {
		if !bytes.Equal(d.route(r.Key, h.opts.HashKeyLen), hashKey) {
			return false
		}
	}
	return true
}

// putGroupSeq applies one group with the per-record protocol and one
// tree republication per key, allocating on the given stripe. With
// stripe 0 it is the pre-batching write path verbatim, kept as the
// LegacyWritePath baseline; the striped path uses it for single-record
// groups, which have nothing to amortise. Caller holds the shard write
// lock and an open seqlock section; hashKey is the group's validated
// route, so ART keys are formed by stripping it rather than re-routing
// through a possibly newer snapshot.
func (h *HART) putGroupSeq(s *artShard, hashKey []byte, recs []Record, stripe int) (int, error) {
	done := 0
	for _, r := range recs {
		artKey := r.Key[len(hashKey):]
		var err error
		if leafW, found := s.tree.Load().Get(artKey); found {
			err = h.update(pmem.Ptr(leafW), r.Value, stripe)
		} else {
			err = h.insertNew(s, artKey, r.Key, r.Value, stripe)
		}
		if err != nil {
			return done, err
		}
		done++
	}
	return done, nil
}

// putGroup applies one hash-key group of sorted records with the batched
// protocol. Caller holds the shard write lock and an open seqlock
// section. The phases:
//
//  1. Classify each record as insert or update against the published
//     tree. Duplicates are adjacent after sorting, so only the first
//     occurrence of an absent key is an insert; later occurrences update
//     the leaf their predecessor settles.
//  2. Allocate every insert's leaf with one AllocBatch and its value
//     object with one AllocBatch per class, all on the shard's stripe.
//  3. Write all values, persisting contiguous slot runs in single calls.
//  4. Commit all value bits with one SetBits (one header persist per
//     chunk run). From here until a record's leaf bit commits, its value
//     is an orphan — committed but referenced by nothing durable — which
//     the recovery orphan sweep reclaims, so the early commit trades a
//     bounded post-crash sweep for per-record pValue/bit ordering.
//  5. Write all leaf fields (pValue word, key, keyLen) and persist
//     contiguous leaf runs. The fields need no internal ordering: the
//     leaf stays dead until its bit commits.
//  6. Walk the records in sorted order. Inserts go into one art.Batch —
//     which clones each tree node at most once, however many keys land
//     under it — and queue their leaf bits. Updates first flush the
//     queued bits (SetBits commits in argument order, so a crash exposes
//     a sorted prefix of the group), then run the per-record Algorithm 3
//     protocol, whose pointer swing is its own commit point.
//  7. Flush the remaining leaf bits and publish the batch's tree once.
//
// On error the committed prefix stays applied; everything beyond it is
// unwound (uncommitted inserts deleted from the published tree, their
// values released, their leaves scrubbed and aborted) and the prefix
// length is returned with the error.
func (h *HART) putGroup(s *artShard, hashKey []byte, recs []Record) (int, error) {
	stripe := h.stripeOf(hashKey)
	base := s.tree.Load()

	// Phase 1: classify.
	artKeys := make([][]byte, len(recs))
	isInsert := make([]bool, len(recs))
	nIns := 0
	for i, r := range recs {
		artKeys[i] = r.Key[len(hashKey):]
		if i > 0 && bytes.Equal(r.Key, recs[i-1].Key) {
			continue // duplicate: updates whatever the predecessor settled
		}
		if _, found := base.Get(artKeys[i]); !found {
			isInsert[i] = true
			nIns++
		}
	}

	// Phase 2: allocate. leafOf/valOf are indexed by record (Nil for
	// updates); classPtrs keeps each class's slots in allocation order,
	// which is the contiguous-run order for persisting and committing.
	leafOf := make([]pmem.Ptr, len(recs))
	valOf := make([]pmem.Ptr, len(recs))
	var leaves []pmem.Ptr
	if nIns > 0 {
		var err error
		leaves, err = h.alloc.AllocBatch(classLeaf, stripe, nIns)
		if err != nil {
			return 0, err
		}
	}
	abortAll := func() {
		for _, p := range valOf {
			if !p.IsNil() {
				_ = h.alloc.Abort(p)
			}
		}
		for _, l := range leaves {
			_ = h.alloc.Abort(l)
		}
	}
	byClass := make([][]int, int(classValue0)+len(h.opts.ValueClasses))
	k := 0
	for i := range recs {
		if !isInsert[i] {
			continue
		}
		leafOf[i] = leaves[k]
		k++
		c := h.valueClass(len(recs[i].Value))
		byClass[c] = append(byClass[c], i)
	}
	classPtrs := make([][]pmem.Ptr, len(byClass))
	for c, idxs := range byClass {
		if len(idxs) == 0 {
			continue
		}
		ptrs, err := h.alloc.AllocBatch(epalloc.Class(c), stripe, len(idxs))
		if err != nil {
			abortAll()
			return 0, err
		}
		classPtrs[c] = ptrs
		for n, idx := range idxs {
			valOf[idx] = ptrs[n]
		}
	}

	// Phase 3: write values, persist runs.
	h.arena.SetPersistSite("batch.value")
	for i := range recs {
		if isInsert[i] {
			h.arena.WriteWords(valOf[i], recs[i].Value)
		}
	}
	for c, ptrs := range classPtrs {
		if len(ptrs) > 0 {
			h.persistRuns(ptrs, h.opts.ValueClasses[c-int(classValue0)])
		}
	}

	// Phase 4: commit value bits.
	h.arena.SetPersistSite("batch.value-bits")
	var valBits []pmem.Ptr
	for _, ptrs := range classPtrs {
		valBits = append(valBits, ptrs...)
	}
	if n, err := h.alloc.SetBits(valBits); err != nil {
		for m, p := range valBits {
			if m < n {
				_ = h.alloc.Release(p) // committed: undo durably
			} else {
				_ = h.alloc.Abort(p)
			}
		}
		for _, l := range leaves {
			_ = h.alloc.Abort(l)
		}
		return 0, err
	}

	// Phase 5: write leaf fields, persist runs.
	h.arena.SetPersistSite("batch.leaf-fields")
	for i := range recs {
		if !isInsert[i] {
			continue
		}
		leaf := leafOf[i]
		h.arena.Write8(leaf+lfPValue, packValue(valOf[i], len(recs[i].Value)))
		h.arena.WriteAt(leaf+lfKey, recs[i].Key)
		h.arena.Write1(leaf+lfKeyLen, byte(len(recs[i].Key)))
	}
	h.persistRuns(leaves, leafSize)

	// Phases 6-7: ordered commit walk, single publication.
	b := base.BeginBatch()
	// unwind finishes a failed walk: records [0, committedTo) are durably
	// applied and stay; inserts in [committedTo, applied) are in b but
	// uncommitted and must leave the published tree; every uncommitted
	// insert's slots unwind like insertNew's leaf-bit failure path.
	unwind := func(committedTo, applied int, cause error) (int, error) {
		t := b.Commit()
		for i := committedTo; i < applied; i++ {
			if isInsert[i] {
				t, _, _ = t.CowDelete(artKeys[i])
			}
		}
		for i := committedTo; i < len(recs); i++ {
			if !isInsert[i] {
				continue
			}
			_ = h.alloc.Release(valOf[i])
			h.arena.Write8(leafOf[i]+lfPValue, 0)
			h.arena.Persist(leafOf[i]+lfPValue, 8)
			_ = h.alloc.Abort(leafOf[i])
		}
		s.tree.Store(t)
		nc := 0
		for i := 0; i < committedTo; i++ {
			if isInsert[i] {
				nc++
			}
		}
		h.size.Add(int64(nc))
		h.obs.inserts.Add(uint64(nc))
		return committedTo, cause
	}

	pending := make([]pmem.Ptr, 0, nIns)
	flushBase := 0 // record index of pending[0]; [flushBase, walk) are all inserts
	for i := range recs {
		if isInsert[i] {
			b.Insert(artKeys[i], uint64(leafOf[i]))
			pending = append(pending, leafOf[i])
			continue
		}
		// Updates commit at their pointer swing, so all earlier inserts
		// must commit first to keep crash states a sorted prefix.
		if len(pending) > 0 {
			h.arena.SetPersistSite("batch.leaf-bits")
			n, err := h.alloc.SetBits(pending)
			if err != nil {
				return unwind(flushBase+n, i, err)
			}
			pending = pending[:0]
		}
		flushBase = i
		leafW, _ := b.Get(artKeys[i]) // present: classified as update
		if err := h.update(pmem.Ptr(leafW), recs[i].Value, stripe); err != nil {
			return unwind(i, i, err)
		}
		flushBase = i + 1
	}
	if len(pending) > 0 {
		h.arena.SetPersistSite("batch.leaf-bits")
		n, err := h.alloc.SetBits(pending)
		if err != nil {
			return unwind(flushBase+n, len(recs), err)
		}
	}
	s.tree.Store(b.Commit())
	h.size.Add(int64(nIns))
	h.obs.inserts.Add(uint64(nIns))
	return len(recs), nil
}

// persistRuns persists a sequence of equally-sized objects, merging
// adjacent slots into single Persist calls. AllocBatch returns each
// chunk's slots adjacently in ascending order, so a batch's objects
// typically collapse into one flush per chunk — the coalesced barrier
// the batched write path exists for.
func (h *HART) persistRuns(ptrs []pmem.Ptr, size int64) {
	for i := 0; i < len(ptrs); {
		j := i + 1
		for j < len(ptrs) && ptrs[j] == ptrs[j-1]+pmem.Ptr(size) {
			j++
		}
		h.arena.Persist(ptrs[i], int(size)*(j-i))
		i = j
	}
}

// DeleteBatch removes many keys in sorted order (for directory locality).
// Locking is per record because a deletion may empty and retire its ART.
// Missing keys are skipped; the count of actually deleted records is
// returned.
func (h *HART) DeleteBatch(keys [][]byte) (int, error) {
	for _, k := range keys {
		if err := h.validate(k, nil); err != nil {
			return 0, err
		}
	}
	sorted := make([][]byte, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })

	done := 0
	for _, k := range sorted {
		switch err := h.Delete(k); {
		case err == nil:
			done++
		case errors.Is(err, ErrNotFound):
			// skip
		default:
			return done, err
		}
	}
	return done, nil
}
