package core

import (
	"bytes"
	"errors"
	"sort"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// Record is one key-value pair for batch operations.
type Record struct {
	// Key is 1..MaxKeyLen bytes.
	Key []byte
	// Value is 1..maxValueLen bytes.
	Value []byte
}

// PutBatch inserts or updates many records, amortising the per-operation
// locking: records are sorted and grouped by hash key so each ART's
// write lock is taken once per group instead of once per record. Within
// a group the per-record persistence protocol is identical to Put, so
// crash atomicity remains per record.
//
// The first error aborts the remainder; the count of applied records is
// returned with it.
func (h *HART) PutBatch(records []Record) (int, error) {
	for _, r := range records {
		if err := h.validateWrite(r.Key, r.Value); err != nil {
			return 0, err
		}
	}
	sorted := make([]Record, len(records))
	copy(sorted, records)
	sort.Slice(sorted, func(i, j int) bool {
		return bytes.Compare(sorted[i].Key, sorted[j].Key) < 0
	})

	done := 0
	for i := 0; i < len(sorted); {
		hashKey, _ := h.splitKey(sorted[i].Key)
		// Extend the run of records sharing this hash key (sorted order
		// makes the run contiguous).
		j := i + 1
		for j < len(sorted) {
			hk2, _ := h.splitKey(sorted[j].Key)
			if !bytes.Equal(hk2, hashKey) {
				break
			}
			j++
		}
		s := h.lockShardW(hashKey, true)
		s.beginWrite()
		for _, r := range sorted[i:j] {
			_, artKey := h.splitKey(r.Key)
			var err error
			if leafW, found := s.tree.Load().Get(artKey); found {
				err = h.update(pmem.Ptr(leafW), r.Value)
			} else {
				err = h.insertNew(s, artKey, r.Key, r.Value)
			}
			if err != nil {
				s.endWrite()
				s.mu.Unlock()
				return done, err
			}
			done++
		}
		s.endWrite()
		s.mu.Unlock()
		i = j
	}
	return done, nil
}

// DeleteBatch removes many keys in sorted order (for directory locality).
// Locking is per record because a deletion may empty and retire its ART.
// Missing keys are skipped; the count of actually deleted records is
// returned.
func (h *HART) DeleteBatch(keys [][]byte) (int, error) {
	for _, k := range keys {
		if err := h.validate(k, nil); err != nil {
			return 0, err
		}
	}
	sorted := make([][]byte, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })

	done := 0
	for _, k := range sorted {
		switch err := h.Delete(k); {
		case err == nil:
			done++
		case errors.Is(err, ErrNotFound):
			// skip
		default:
			return done, err
		}
	}
	return done, nil
}
