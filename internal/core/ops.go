package core

import (
	"bytes"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// Put inserts or updates a record (Algorithm 1). Values are 1 to
// MaxValueLen bytes; key and value slices are copied.
func (h *HART) Put(key, value []byte) error {
	if err := h.validateWrite(key, value); err != nil {
		return err
	}
	hashKey, artKey := h.splitKey(key)
	s := h.lockShardW(hashKey, true) // lines 2-5: HashFind / NewART / HashInsert
	defer s.mu.Unlock()

	if leafW, found := s.tree.Get(artKey); found { // line 6: SearchNode
		return h.update(pmem.Ptr(leafW), value) // lines 7-8
	}
	return h.insertNew(s, artKey, key, value) // lines 9-18
}

// insertNew performs Algorithm 1 lines 9-18 under the shard write lock.
func (h *HART) insertNew(s *artShard, artKey, key, value []byte) error {
	leaf, err := h.alloc.Alloc(classLeaf) // line 10 (OnReuse repair may run)
	if err != nil {
		return err
	}
	val, err := h.alloc.Alloc(h.valueClass(len(value))) // line 11
	if err != nil {
		h.alloc.Abort(leaf)
		return err
	}

	// Line 12: value = V; persistent(value).
	h.arena.WriteAt(val, value)
	h.arena.Persist(val, len(value))

	// Line 13: leaf.p_value = &value; persistent(leaf.p_value).
	h.arena.Write8(leaf+lfPValue, packValue(val, len(value)))
	h.arena.Persist(leaf+lfPValue, 8)

	// Line 14: set and persist the value bit.
	if err := h.alloc.SetBit(val); err != nil {
		return err
	}

	// Line 15: leaf.key = K; persistent(leaf.key).
	h.arena.WriteAt(leaf+lfKey, key)
	h.arena.Persist(leaf+lfKey, len(key))

	// Line 16: leaf.key_len = len(K); persistent(leaf.key_len).
	h.arena.Write1(leaf+lfKeyLen, byte(len(key)))
	h.arena.Persist(leaf+lfKeyLen, 1)

	// Line 17: Insert2Tree — volatile, no persistence needed.
	s.tree.Insert(artKey, uint64(leaf))

	// Line 18: set and persist the leaf bit. This is the commit point: a
	// crash anywhere above leaves the leaf bit clear, so the slot reads as
	// free and the value object is reclaimed by onLeafReuse.
	if err := h.alloc.SetBit(leaf); err != nil {
		return err
	}
	h.size.Add(1)
	return nil
}

// update performs an out-of-place value update under the shard write
// lock: Algorithm 3's logged protocol by default, or the paper's measured
// unlogged pointer swing when Options.UnloggedUpdates is set.
func (h *HART) update(leaf pmem.Ptr, value []byte) error {
	if h.opts.UnloggedUpdates {
		return h.updateUnlogged(leaf, value)
	}
	ulog := h.alloc.GetUpdateLog() // line 1

	oldW := h.arena.Read8(leaf + lfPValue)
	oldV, _ := unpackValue(oldW)
	ulog.Arm(leaf, oldV) // lines 2-3, merged into one persist

	newV, err := h.alloc.Alloc(h.valueClass(len(value))) // line 4
	if err != nil {
		ulog.Reclaim()
		return err
	}

	// Line 5: new_value = V; persistent(new_value).
	h.arena.WriteAt(newV, value)
	h.arena.Persist(newV, len(value))

	// Line 6: ulog.PNewV = &new_value. The packed word also records the
	// value length so recovery can rebuild leaf.p_value verbatim.
	newW := packValue(newV, len(value))
	ulog.SetPNewV(pmem.Ptr(newW))

	// Line 7: set the bit for the new value.
	if err := h.alloc.SetBit(newV); err != nil {
		return err
	}

	// Line 8: swing the leaf's value pointer (single atomic 8-byte store).
	h.arena.Write8(leaf+lfPValue, newW)
	h.arena.Persist(leaf+lfPValue, 8)

	// Lines 9-10: release the old value and recycle its chunk if emptied.
	if !oldV.IsNil() {
		if err := h.alloc.Release(oldV); err != nil {
			return err
		}
	}

	ulog.Reclaim() // line 11
	return nil
}

// Update overwrites the value of an existing key (Algorithm 3); it fails
// with ErrNotFound for absent keys. Put both inserts and updates; Update
// exists because the paper's update experiments never insert.
func (h *HART) Update(key, value []byte) error {
	if err := h.validateWrite(key, value); err != nil {
		return err
	}
	hashKey, artKey := h.splitKey(key)
	s := h.lockShardW(hashKey, false)
	if s == nil {
		return ErrNotFound
	}
	defer s.mu.Unlock()
	leafW, found := s.tree.Get(artKey)
	if !found {
		return ErrNotFound
	}
	return h.update(pmem.Ptr(leafW), value)
}

// Get looks a key up (Algorithm 4) and returns a copy of its value.
func (h *HART) Get(key []byte) ([]byte, bool) {
	if h.validate(key, nil) != nil {
		return nil, false
	}
	hashKey, artKey := h.splitKey(key)
	s := h.lockShardR(hashKey) // lines 1-2
	if s == nil {
		return nil, false // lines 3-4
	}
	defer s.mu.RUnlock()
	leafW, found := s.tree.Get(artKey) // line 5
	if !found {
		return nil, false // lines 6-7
	}
	leaf := pmem.Ptr(leafW)
	// Lines 9-12: validate the leaf against its persistent bit before
	// trusting its value pointer.
	if set, err := h.alloc.BitIsSet(leaf); err != nil || !set {
		return nil, false
	}
	v := h.leafValue(leaf)
	return v, v != nil
}

// Contains reports whether key is present without copying its value.
func (h *HART) Contains(key []byte) bool {
	_, ok := h.Get(key)
	return ok
}

// Delete removes a key (Algorithm 5).
func (h *HART) Delete(key []byte) error {
	if err := h.validate(key, nil); err != nil {
		return err
	}
	hashKey, artKey := h.splitKey(key)
	s := h.lockShardW(hashKey, false) // lines 1-2
	if s == nil {
		return ErrNotFound // lines 3-4
	}
	defer s.mu.Unlock()

	leafW, found := s.tree.Get(artKey) // line 5
	if !found {
		return ErrNotFound // lines 6-7
	}
	leaf := pmem.Ptr(leafW)

	// Line 9: remove from the (volatile) tree first; a crash after this
	// point leaves the PM bits to the reset/repair protocol below.
	s.tree.Delete(artKey)

	val, _ := unpackValue(h.arena.Read8(leaf + lfPValue)) // line 10

	// Line 11: reset and persist the leaf bit. From here the leaf is dead
	// even across a crash; its stale p_value drives onLeafReuse repair if
	// the value-bit reset below never lands.
	if err := h.alloc.ResetBit(leaf); err != nil {
		return err
	}

	// Lines 12-13: reset the value bit and recycle its chunk if emptied.
	if !val.IsNil() {
		if err := h.alloc.Release(val); err != nil {
			return err
		}
	}

	// Hardening beyond Algorithm 5: clear the dead leaf's value word so
	// its stale reference cannot alias the value slot once the slot is
	// legitimately reallocated to another record — otherwise the next
	// reuse of *this* leaf slot would run the Algorithm 2 repair against
	// the new owner's live value. A crash before this store lands is
	// repaired by the recovery sweep (see recover).
	h.arena.Write8(leaf+lfPValue, 0)
	h.arena.Persist(leaf+lfPValue, 8)

	// Line 14: recycle the leaf's chunk if it emptied.
	if err := h.alloc.Recycle(leaf); err != nil {
		return err
	}

	h.size.Add(-1)
	// Lines 15-16: free the ART if it became empty.
	h.removeShardIfEmpty(hashKey, s)
	return nil
}

// GetLeaf returns the PM address of a key's leaf (tests and fsck).
func (h *HART) GetLeaf(key []byte) (pmem.Ptr, bool) {
	hashKey, artKey := h.splitKey(key)
	s := h.lockShardR(hashKey)
	if s == nil {
		return pmem.Nil, false
	}
	defer s.mu.RUnlock()
	leafW, found := s.tree.Get(artKey)
	if !found {
		return pmem.Nil, false
	}
	leaf := pmem.Ptr(leafW)
	if !bytes.Equal(h.leafKey(leaf), key) {
		return pmem.Nil, false
	}
	return leaf, true
}

// updateUnlogged is the update mechanism the paper's evaluation ran
// (Section IV.B), shared in structure with WOART and ART+CoW: write the
// new value object, commit its bit, swing the leaf's value word
// atomically, release the old object. Four persists instead of
// Algorithm 3's seven; crash exposure is the old object in the final
// window, reclaimed by the recovery orphan sweep.
func (h *HART) updateUnlogged(leaf pmem.Ptr, value []byte) error {
	oldW := h.arena.Read8(leaf + lfPValue)
	oldV, _ := unpackValue(oldW)

	newV, err := h.alloc.Alloc(h.valueClass(len(value)))
	if err != nil {
		return err
	}
	h.arena.WriteAt(newV, value)
	h.arena.Persist(newV, len(value))
	if err := h.alloc.SetBit(newV); err != nil {
		return err
	}

	// The atomic pointer swing is the commit point ("updated as the last
	// step to ensure consistency").
	h.arena.Write8(leaf+lfPValue, packValue(newV, len(value)))
	h.arena.Persist(leaf+lfPValue, 8)

	if !oldV.IsNil() {
		if err := h.alloc.Release(oldV); err != nil {
			return err
		}
	}
	return nil
}
