package core

import (
	"bytes"
	"time"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// optimisticAttempts is how many times a reader retries the lock-free
// protocol before falling back to the shard read lock. Retries only
// happen while a writer is actively mutating the same shard, so a small
// bound suffices; the fallback guarantees progress under a write storm.
const optimisticAttempts = 4

// Put inserts or updates a record (Algorithm 1). Values are 1 to
// MaxValueLen bytes; key and value slices are copied.
func (h *HART) Put(key, value []byte) error {
	if h.obs.timing.Enabled() && h.obs.sample.Hit() {
		start := time.Now()
		err := h.putOp(key, value)
		h.obs.putH.Record(time.Since(start).Nanoseconds())
		return err
	}
	return h.putOp(key, value)
}

// putOp is Put's body, split out so the timed wrapper above pays for a
// clock read only when metrics are enabled.
func (h *HART) putOp(key, value []byte) error {
	if err := h.validateWrite(key, value); err != nil {
		return err
	}
	s, hashKey := h.lockShardW(key, true) // lines 2-5: HashFind / NewART / HashInsert
	artKey := key[len(hashKey):]
	stripe := h.stripeOf(hashKey)
	s.beginWrite()
	var err error
	if leafW, found := s.tree.Load().Get(artKey); found { // line 6: SearchNode
		err = h.update(pmem.Ptr(leafW), value, stripe) // lines 7-8
	} else {
		err = h.insertNew(s, artKey, key, value, stripe) // lines 9-18
	}
	s.endWrite()
	hot := err == nil && h.noteWrite(s, 1)
	s.mu.Unlock()
	if hot {
		h.maybeSplit(hashKey)
	}
	if err == nil {
		h.obs.puts.Add(1)
	}
	return err
}

// insertNew performs Algorithm 1 lines 9-18 under the shard write lock,
// allocating from the shard's allocator stripe.
func (h *HART) insertNew(s *artShard, artKey, key, value []byte, stripe int) error {
	leaf, err := h.alloc.AllocStripe(classLeaf, stripe) // line 10 (OnReuse repair may run)
	if err != nil {
		return err
	}
	val, err := h.alloc.AllocStripe(h.valueClass(len(value)), stripe) // line 11
	if err != nil {
		h.alloc.Abort(leaf)
		return err
	}

	// Line 12: value = V; persistent(value). Word-wise atomic stores: the
	// slot may be a reused one that a stale optimistic reader is still
	// loading (it will fail seq validation, but the loads race these
	// stores and must not tear).
	h.arena.SetPersistSite("insert.value")
	h.arena.WriteWords(val, value)
	h.arena.Persist(val, len(value))

	// Line 13: leaf.p_value = &value; persistent(leaf.p_value).
	h.arena.SetPersistSite("insert.pvalue")
	h.arena.Write8(leaf+lfPValue, packValue(val, len(value)))
	h.arena.Persist(leaf+lfPValue, 8)

	// Line 14: set and persist the value bit. On failure neither bit is
	// set, so both slots must only be released from their volatile
	// in-flight state — PM already reads them as free.
	h.arena.SetPersistSite("insert.value-bit")
	if err := h.alloc.SetBit(val); err != nil {
		h.alloc.Abort(val)
		h.alloc.Abort(leaf)
		return err
	}

	// Line 15: leaf.key = K; persistent(leaf.key).
	h.arena.SetPersistSite("insert.key")
	h.arena.WriteAt(leaf+lfKey, key)
	h.arena.Persist(leaf+lfKey, len(key))

	// Line 16: leaf.key_len = len(K); persistent(leaf.key_len).
	h.arena.SetPersistSite("insert.keylen")
	h.arena.Write1(leaf+lfKeyLen, byte(len(key)))
	h.arena.Persist(leaf+lfKeyLen, 1)

	// Line 17: Insert2Tree — volatile, no persistence needed. The tree is
	// republished by copy-on-write so concurrent lock-free readers only
	// ever traverse immutable nodes; they cannot act on this leaf early
	// because the enclosing seqlock section is still open.
	nu, _, _ := s.tree.Load().CowInsert(artKey, uint64(leaf))
	s.tree.Store(nu)

	// Line 18: set and persist the leaf bit. This is the commit point: a
	// crash anywhere above leaves the leaf bit clear, so the slot reads as
	// free and the value object is reclaimed by onLeafReuse. On failure
	// the insert must unwind completely: unpublish the leaf, release the
	// committed value object, and scrub the dead leaf's value word so a
	// later reuse of the slot cannot run the Algorithm 2 repair against a
	// reallocated value.
	h.arena.SetPersistSite("insert.leaf-bit")
	if err := h.alloc.SetBit(leaf); err != nil {
		rb, _, _ := s.tree.Load().CowDelete(artKey)
		s.tree.Store(rb)
		if !val.IsNil() {
			h.alloc.Release(val)
		}
		h.arena.Write8(leaf+lfPValue, 0)
		h.arena.Persist(leaf+lfPValue, 8)
		h.alloc.Abort(leaf)
		return err
	}
	h.size.Add(1)
	h.obs.inserts.Add(1)
	return nil
}

// update performs an out-of-place value update under the shard write
// lock: Algorithm 3's logged protocol by default, or the paper's measured
// unlogged pointer swing when Options.UnloggedUpdates is set.
func (h *HART) update(leaf pmem.Ptr, value []byte, stripe int) error {
	if h.opts.UnloggedUpdates {
		return h.updateUnlogged(leaf, value, stripe)
	}
	ulog := h.getULog(stripe) // line 1

	oldW := h.arena.Read8(leaf + lfPValue)
	oldV, _ := unpackValue(oldW)
	h.arena.SetPersistSite("update.arm")
	ulog.Arm(leaf, oldV) // lines 2-3, merged into one persist

	newV, err := h.alloc.AllocStripe(h.valueClass(len(value)), stripe) // line 4
	if err != nil {
		ulog.Reclaim()
		return err
	}

	// Line 5: new_value = V; persistent(new_value). Atomic word stores —
	// see insertNew.
	h.arena.SetPersistSite("update.value")
	h.arena.WriteWords(newV, value)
	h.arena.Persist(newV, len(value))

	// Line 6: ulog.PNewV = &new_value. The packed word also records the
	// value length so recovery can rebuild leaf.p_value verbatim.
	h.arena.SetPersistSite("update.log-newv")
	newW := packValue(newV, len(value))
	ulog.SetPNewV(pmem.Ptr(newW))

	// Line 7: set the bit for the new value. On failure the new object's
	// bit is clear (nothing durable to undo), but the slot must leave its
	// volatile in-flight state and the armed log must be reclaimed, or the
	// failed update strands a permanently-busy ulog slot.
	h.arena.SetPersistSite("update.value-bit")
	if err := h.alloc.SetBit(newV); err != nil {
		h.alloc.Abort(newV)
		ulog.Reclaim()
		return err
	}

	// Line 8: swing the leaf's value pointer (single atomic 8-byte store).
	h.arena.SetPersistSite("update.swing")
	h.arena.Write8(leaf+lfPValue, newW)
	h.arena.Persist(leaf+lfPValue, 8)

	// Lines 9-10: release the old value and recycle its chunk if emptied.
	// The update committed at the pointer swing, so a release failure must
	// not leave the log armed — reclaim it and surface the error (the old
	// object's bit leaks until fsck, which is exactly what Check reports).
	h.arena.SetPersistSite("update.release-old")
	if !oldV.IsNil() {
		if err := h.alloc.Release(oldV); err != nil {
			ulog.Reclaim()
			return err
		}
	}

	h.arena.SetPersistSite("update.reclaim")
	ulog.Reclaim() // line 11
	h.obs.updates.Add(1)
	return nil
}

// Update overwrites the value of an existing key (Algorithm 3); it fails
// with ErrNotFound for absent keys. Put both inserts and updates; Update
// exists because the paper's update experiments never insert.
func (h *HART) Update(key, value []byte) error {
	if err := h.validateWrite(key, value); err != nil {
		return err
	}
	s, hashKey := h.lockShardW(key, false)
	if s == nil {
		return ErrNotFound
	}
	artKey := key[len(hashKey):]
	s.beginWrite()
	var err error
	if leafW, found := s.tree.Load().Get(artKey); found {
		err = h.update(pmem.Ptr(leafW), value, h.stripeOf(hashKey))
	} else {
		err = ErrNotFound
	}
	s.endWrite()
	hot := err == nil && h.noteWrite(s, 1)
	s.mu.Unlock()
	if hot {
		h.maybeSplit(hashKey)
	}
	return err
}

// Get looks a key up (Algorithm 4) and returns a copy of its value.
//
// The fast path is lock-free: it resolves the shard through the current
// directory snapshot, walks the shard's published (immutable) tree, and
// validates the PM-side reads against the shard seqlock, retrying on
// interference and falling back to the shard read lock after
// optimisticAttempts tries. See DESIGN.md, "Read-path concurrency".
//
// The destination buffer is a constant-capacity stack allocation handed
// to GetInto, whose dst parameter leaks only to its result: escape
// analysis therefore heap-allocates it only when the caller lets the
// returned value escape, making the common look-up-and-inspect pattern
// allocation-free. Values longer than MaxValueLen (possible only with a
// custom ValueClasses table) fall back to GetInto's internal growth.
func (h *HART) Get(key []byte) ([]byte, bool) {
	return h.GetInto(key, make([]byte, 0, MaxValueLen))
}

// GetInto is Get with a caller-supplied destination buffer: the value is
// copied into dst (grown only if its capacity is short) and the filled
// prefix returned, so repeated lookups with a reused buffer perform no
// heap allocation. A nil return with ok=true cannot happen; on ok=false
// the buffer contents are unspecified.
func (h *HART) GetInto(key, dst []byte) ([]byte, bool) {
	if h.obs.timing.Enabled() && h.obs.sample.Hit() {
		start := time.Now()
		v, ok := h.getInto(key, dst)
		h.obs.getH.Record(time.Since(start).Nanoseconds())
		return v, ok
	}
	return h.getInto(key, dst)
}

// getInto is GetInto's body; the wrapper above adds the gated latency
// histogram. Counters here are always-on: one striped atomic add per
// lookup, plus one per retry/fallback, which only contended reads pay.
func (h *HART) getInto(key, dst []byte) ([]byte, bool) {
	if h.validate(key, nil) != nil {
		return nil, false
	}
	h.obs.gets.Add(1)
	if !h.opts.LockedReads {
		for i := 0; i < optimisticAttempts; i++ {
			v, ok, conclusive := h.readOptimistic(key, dst, true)
			if conclusive {
				if !ok {
					h.obs.getMisses.Add(1)
				}
				return v, ok
			}
			h.obs.seqRetries.Add(1)
		}
		h.obs.lockedFallbacks.Add(1)
	}
	v, ok := h.lockedGet(key, dst, true)
	if !ok {
		h.obs.getMisses.Add(1)
	}
	return v, ok
}

// Contains reports whether key is present. Unlike Get it neither copies
// nor allocates: presence is decided from the leaf bit and the packed
// pValue word alone.
func (h *HART) Contains(key []byte) bool {
	if h.validate(key, nil) != nil {
		return false
	}
	if !h.opts.LockedReads {
		for i := 0; i < optimisticAttempts; i++ {
			_, ok, conclusive := h.readOptimistic(key, nil, false)
			if conclusive {
				return ok
			}
		}
	}
	_, ok := h.lockedGet(key, nil, false)
	return ok
}

// readOptimistic runs one attempt of the lock-free Algorithm 4. It
// reports (value, found, conclusive); conclusive=false means a writer
// interfered and the attempt tells us nothing. The protocol:
//
//  1. Load the current directory snapshot, route the key through its
//     geometry and resolve the shard. No shard → conclusively absent
//     (the snapshot is the linearization point; snapshots — table and
//     split set together — are immutable).
//  2. Load the shard seqlock. Odd → a writer is mid-section; retry.
//  3. Load the published tree and search it. The walk touches only
//     immutable DRAM nodes, so it needs no validation; not-found is
//     conclusive if seq is still unchanged (the snapshot was current).
//  4. Validate the leaf bit, read the packed pValue word, and copy the
//     value words out of PM — all atomic word loads, racing at worst
//     with atomic word stores from writers reusing the slot.
//  5. Re-load seq. Unchanged-and-even proves no writer entered the
//     shard between steps 2 and 5, so every PM word read belongs to one
//     consistent committed state.
func (h *HART) readOptimistic(key, dst []byte, needValue bool) (v []byte, found, conclusive bool) {
	d := h.dir.Load()
	hashKey := d.route(key, h.opts.HashKeyLen)
	s, ok := d.tab.Get(hashKey)
	if !ok {
		return nil, false, true
	}
	artKey := key[len(hashKey):]
	if s.pending.Load() != nil {
		// Lazily recovered shard whose ART is not built yet: the published
		// tree is empty, so a miss would be wrong. Inconclusive — the
		// locked fallback performs the first-touch build.
		return nil, false, false
	}
	v0 := s.seq.Load()
	if v0&1 != 0 {
		return nil, false, false
	}
	leafW, ok := s.tree.Load().Get(artKey)
	if !ok {
		return nil, false, s.seq.Load() == v0
	}
	leaf := pmem.Ptr(leafW)
	// Algorithm 4's leaf-bit validation is subsumed here by the seqlock:
	// a leaf's tree membership and its bit only ever change together
	// inside one write section (insertNew sets the bit before its section
	// closes, Delete clears it in the section that unpublishes the leaf),
	// so a tree observed in a quiescent window — seq even and unchanged
	// across the whole read — holds committed leaves only, and the
	// explicit BitIsSet of the locked path would be redundant PM traffic.
	// A stale leaf read through an interfered window is discarded by the
	// seq check below before it can be returned.
	vp, n := unpackValue(h.arena.Read8(leaf + lfPValue))
	if vp.IsNil() || n == 0 || n > h.maxValueLen() {
		return nil, false, s.seq.Load() == v0
	}
	if needValue {
		if cap(dst) >= n {
			v = dst[:n]
		} else {
			v = make([]byte, n)
		}
		h.arena.ReadWords(vp, v)
	}
	if s.seq.Load() != v0 {
		return nil, false, false
	}
	return v, true, true
}

// lockedGet is Algorithm 4 under the shard read lock: the fallback for
// readers that kept losing seqlock races, and the whole read path in
// LockedReads mode.
func (h *HART) lockedGet(key, dst []byte, needValue bool) ([]byte, bool) {
	s, hashKey := h.lockShardR(key) // lines 1-2
	if s == nil {
		return nil, false // lines 3-4
	}
	defer s.mu.RUnlock()
	artKey := key[len(hashKey):]
	leafW, found := s.tree.Load().Get(artKey) // line 5
	if !found {
		return nil, false // lines 6-7
	}
	leaf := pmem.Ptr(leafW)
	// Lines 9-12: validate the leaf against its persistent bit before
	// trusting its value pointer.
	if set, err := h.alloc.BitIsSet(leaf); err != nil || !set {
		return nil, false
	}
	vp, n := unpackValue(h.arena.Read8(leaf + lfPValue))
	if vp.IsNil() || n == 0 || n > h.maxValueLen() {
		return nil, false
	}
	if !needValue {
		return nil, true
	}
	var v []byte
	if cap(dst) >= n {
		v = dst[:n]
	} else {
		v = make([]byte, n)
	}
	h.arena.ReadAt(vp, v)
	return v, true
}

// Delete removes a key (Algorithm 5). A successful delete under the
// elastic directory additionally nominates the shard's split group for a
// merge — after the shard lock is released, since merging locks whole
// groups.
func (h *HART) Delete(key []byte) error {
	if h.obs.timing.Enabled() {
		start := time.Now()
		err := h.deleteOp(key)
		h.obs.deleteH.Record(time.Since(start).Nanoseconds())
		return err
	}
	return h.deleteOp(key)
}

// deleteOp is Delete's body behind the gated timing wrapper above.
func (h *HART) deleteOp(key []byte) error {
	if err := h.validate(key, nil); err != nil {
		return err
	}
	hashKey, err := h.deleteLocked(key)
	if hashKey != nil {
		h.obs.deletes.Add(1)
		h.maybeMerge(hashKey)
	} else if err == ErrNotFound {
		h.obs.deleteMisses.Add(1)
	}
	return err
}

// deleteLocked is Delete's under-the-shard-lock body. The returned
// hashKey is non-nil exactly when the record was removed (the commit
// point passed, whatever later cleanup reported).
func (h *HART) deleteLocked(key []byte) ([]byte, error) {
	s, hashKey := h.lockShardW(key, false) // lines 1-2
	if s == nil {
		return nil, ErrNotFound // lines 3-4
	}
	artKey := key[len(hashKey):]
	defer s.mu.Unlock()
	s.beginWrite()
	defer s.endWrite()

	leafW, found := s.tree.Load().Get(artKey) // line 5
	if !found {
		return nil, ErrNotFound // lines 6-7
	}
	leaf := pmem.Ptr(leafW)

	// Line 9: remove from the (volatile) tree first; a crash after this
	// point leaves the PM bits to the reset/repair protocol below.
	nu, _, _ := s.tree.Load().CowDelete(artKey)
	s.tree.Store(nu)

	val, _ := unpackValue(h.arena.Read8(leaf + lfPValue)) // line 10

	// Line 11: reset and persist the leaf bit. From here the leaf is dead
	// even across a crash; its stale p_value drives onLeafReuse repair if
	// the value-bit reset below never lands. On failure the record is
	// still fully committed on PM, so republish it and report the error —
	// dropping it from the tree alone would lose the key for readers while
	// recovery would resurrect it.
	h.arena.SetPersistSite("delete.leaf-bit")
	if err := h.alloc.ResetBit(leaf); err != nil {
		rb, _, _ := s.tree.Load().CowInsert(artKey, uint64(leaf))
		s.tree.Store(rb)
		return nil, err
	}

	// The leaf-bit reset above is the commit point: from here the delete
	// has happened, so later failures must not abandon the remaining
	// cleanup or the size/shard accounting — finish everything and report
	// the first error (any leaked value bit is then visible to Check).
	var firstErr error

	// Lines 12-13: reset the value bit and recycle its chunk if emptied.
	h.arena.SetPersistSite("delete.value-bit")
	if !val.IsNil() {
		if err := h.alloc.Release(val); err != nil {
			firstErr = err
		}
	}

	// Hardening beyond Algorithm 5: clear the dead leaf's value word so
	// its stale reference cannot alias the value slot once the slot is
	// legitimately reallocated to another record — otherwise the next
	// reuse of *this* leaf slot would run the Algorithm 2 repair against
	// the new owner's live value. A crash before this store lands is
	// repaired by the recovery sweep (see recover).
	h.arena.SetPersistSite("delete.scrub-pvalue")
	h.arena.Write8(leaf+lfPValue, 0)
	h.arena.Persist(leaf+lfPValue, 8)

	// Line 14: recycle the leaf's chunk if it emptied.
	h.arena.SetPersistSite("delete.recycle")
	if err := h.alloc.Recycle(leaf); err != nil && firstErr == nil {
		firstErr = err
	}

	h.size.Add(-1)
	// Lines 15-16: free the ART if it became empty.
	h.removeShardIfEmpty(hashKey, s)
	return hashKey, firstErr
}

// GetLeaf returns the PM address of a key's leaf (tests and fsck).
func (h *HART) GetLeaf(key []byte) (pmem.Ptr, bool) {
	s, hashKey := h.lockShardR(key)
	if s == nil {
		return pmem.Nil, false
	}
	defer s.mu.RUnlock()
	artKey := key[len(hashKey):]
	leafW, found := s.tree.Load().Get(artKey)
	if !found {
		return pmem.Nil, false
	}
	leaf := pmem.Ptr(leafW)
	if !bytes.Equal(h.leafKey(leaf), key) {
		return pmem.Nil, false
	}
	return leaf, true
}

// updateUnlogged is the update mechanism the paper's evaluation ran
// (Section IV.B), shared in structure with WOART and ART+CoW: write the
// new value object, commit its bit, swing the leaf's value word
// atomically, release the old object. Four persists instead of
// Algorithm 3's seven; crash exposure is the old object in the final
// window, reclaimed by the recovery orphan sweep.
func (h *HART) updateUnlogged(leaf pmem.Ptr, value []byte, stripe int) error {
	oldW := h.arena.Read8(leaf + lfPValue)
	oldV, _ := unpackValue(oldW)

	newV, err := h.alloc.AllocStripe(h.valueClass(len(value)), stripe)
	if err != nil {
		return err
	}
	h.arena.SetPersistSite("uupdate.value")
	h.arena.WriteWords(newV, value)
	h.arena.Persist(newV, len(value))
	h.arena.SetPersistSite("uupdate.value-bit")
	if err := h.alloc.SetBit(newV); err != nil {
		h.alloc.Abort(newV)
		return err
	}

	// The atomic pointer swing is the commit point ("updated as the last
	// step to ensure consistency").
	h.arena.SetPersistSite("uupdate.swing")
	h.arena.Write8(leaf+lfPValue, packValue(newV, len(value)))
	h.arena.Persist(leaf+lfPValue, 8)

	h.arena.SetPersistSite("uupdate.release-old")
	if !oldV.IsNil() {
		if err := h.alloc.Release(oldV); err != nil {
			return err
		}
	}
	h.obs.updates.Add(1)
	return nil
}
