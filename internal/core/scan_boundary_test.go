package core

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

// scanRef filters the sorted key set to [start, end) with nil meaning
// unbounded — the reference both scan directions are checked against.
func scanRef(keys [][]byte, start, end []byte) [][]byte {
	var out [][]byte
	for _, k := range keys {
		if start != nil && bytes.Compare(k, start) < 0 {
			continue
		}
		if end != nil && bytes.Compare(k, end) >= 0 {
			continue
		}
		out = append(out, k)
	}
	return out
}

func collectScan(h *HART, start, end []byte, reverse bool, limit int) [][]byte {
	var out [][]byte
	visit := func(k, _ []byte) bool {
		out = append(out, append([]byte(nil), k...))
		return len(out) < limit
	}
	if reverse {
		h.ScanReverse(start, end, visit)
	} else {
		h.Scan(start, end, visit)
	}
	return out
}

// TestScanBoundsExhaustive cross-checks Scan and ScanReverse against the
// reference filter for every bound drawn from the key set, its neighbours
// (one byte off, truncations, extensions), the shard hash keys themselves
// (the ScanReverse end == hash-key regression), nil and empty slices —
// crossed with truncating limits.
func TestScanBoundsExhaustive(t *testing.T) {
	h := newHART(t)
	keys := [][]byte{
		// Shard "aa" with several suffixes, including the key that IS the
		// hash key and keys longer than it.
		[]byte("aa"), []byte("aa0"), []byte("aab"), []byte("aabc"), []byte("aaz"),
		// Shard "ab" adjacent in hash order.
		[]byte("ab"), []byte("abb"),
		// A distant shard.
		[]byte("zz"), []byte("zzz"),
	}
	for i, k := range keys {
		if err := h.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([][]byte(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })

	var bounds [][]byte
	bounds = append(bounds, nil, []byte{})
	for _, k := range sorted {
		bounds = append(bounds, k)
		bounds = append(bounds, k[:len(k)-1]) // truncation (may hit the hash key)
		bounds = append(bounds, append(k, 0)) // just above
		kk := append([]byte(nil), k...)
		kk[len(kk)-1]++
		bounds = append(bounds, kk) // sibling
	}
	// The hash keys themselves and near misses.
	bounds = append(bounds, []byte("aa"), []byte("ab"), []byte("ac"), []byte("a"), []byte("b"), []byte("zz"), []byte("zzzz"))

	for _, start := range bounds {
		for _, end := range bounds {
			want := scanRef(sorted, start, end)
			for _, limit := range []int{1, 2, len(want), len(sorted) + 1} {
				if limit < 1 {
					continue
				}
				got := collectScan(h, start, end, false, limit)
				exp := want
				if len(exp) > limit {
					exp = exp[:limit]
				}
				if !equalKeySlices(got, exp) {
					t.Fatalf("Scan(%q,%q) limit %d = %q, want %q", start, end, limit, got, exp)
				}

				gotR := collectScan(h, start, end, true, limit)
				expR := reverseKeys(want)
				if len(expR) > limit {
					expR = expR[:limit]
				}
				if !equalKeySlices(gotR, expR) {
					t.Fatalf("ScanReverse(%q,%q) limit %d = %q, want %q", start, end, limit, gotR, expR)
				}
			}
		}
	}
}

// TestScanReverseEndEqualsHashKey pins the regression directly: with end
// exactly equal to a shard's hash key, no key of that shard (every one of
// which is >= end) may be visited, and the preceding shard must still be
// walked. Before the fix ScanReverse descended the excluded shard with an
// empty in-shard bound and depended on the iterator rejecting every leaf.
func TestScanReverseEndEqualsHashKey(t *testing.T) {
	h := newHART(t)
	for _, k := range []string{"aa", "aaq", "ab", "abq", "abz"} {
		if err := h.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	got := collectScan(h, nil, []byte("ab"), true, 99)
	want := [][]byte{[]byte("aaq"), []byte("aa")}
	if !equalKeySlices(got, want) {
		t.Fatalf("ScanReverse(nil, \"ab\") = %q, want %q", got, want)
	}
	// Same bound forwards, for symmetry.
	got = collectScan(h, nil, []byte("ab"), false, 99)
	want = [][]byte{[]byte("aa"), []byte("aaq")}
	if !equalKeySlices(got, want) {
		t.Fatalf("Scan(nil, \"ab\") = %q, want %q", got, want)
	}
}

// TestScanEmptyVsNilBounds pins the normalisation: empty start behaves
// like nil, empty end selects the empty range (nothing sorts below "").
func TestScanEmptyVsNilBounds(t *testing.T) {
	h := newHART(t)
	for _, k := range []string{"aa", "aaq", "zz"} {
		if err := h.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for _, reverse := range []bool{false, true} {
		all := collectScan(h, nil, nil, reverse, 99)
		if len(all) != 3 {
			t.Fatalf("full scan (reverse=%v) returned %d keys", reverse, len(all))
		}
		if got := collectScan(h, []byte{}, nil, reverse, 99); !equalKeySlices(got, all) {
			t.Fatalf("empty start != nil start (reverse=%v): %q", reverse, got)
		}
		if got := collectScan(h, nil, []byte{}, reverse, 99); len(got) != 0 {
			t.Fatalf("empty end visited %q (reverse=%v)", got, reverse)
		}
	}
}

func equalKeySlices(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func reverseKeys(in [][]byte) [][]byte {
	out := make([][]byte, len(in))
	for i, k := range in {
		out[len(in)-1-i] = k
	}
	return out
}
