package core

import (
	"slices"
	"sort"
	"strings"

	"github.com/casl-sdsu/hart/internal/art"
	"github.com/casl-sdsu/hart/internal/hashdir"
)

// Elastic directory: hot-shard splitting and cold-group merging
// (DESIGN.md §13).
//
// A fixed kh routes a zipfian workload onto a handful of ARTs, where the
// per-shard writer mutex and ever-larger COW republications stop the
// write path from scaling. When Options.ElasticDirectory is set, a shard
// whose write heat crosses Options.SplitOps is split: its ART is carved
// by the next key byte into child ARTs published under one-byte-longer
// prefixes, with the record whose key equals the prefix itself (if any)
// left behind under the original entry as a residual. The split prefix
// is persisted in the superblock before the new table is published, so
// recovery regroups the leaves under the same geometry. A delete that
// leaves a split group small and cold merges it back symmetrically.
//
// Only DRAM changes shape — leaves and values never move on PM — so a
// split or merge is invisible to crash consistency: any persisted subset
// of split prefixes is a valid geometry for recovery to rebuild under.

const (
	// maxDirDepth bounds a directory entry's prefix length: split
	// prefixes reach at most maxDirDepth-1 bytes, children at most
	// maxDirDepth. Seven keeps the lazy recovery scan's single 8-byte
	// word read (keyLen + key bytes 0..6) sufficient to route any leaf.
	maxDirDepth = 7

	// DefaultSplitOps is the default per-shard write-op heat threshold
	// that triggers a split attempt.
	DefaultSplitOps = 4096

	// DefaultMergeRecords is the default record-count ceiling below
	// which a delete may fold a split group back into its parent.
	DefaultMergeRecords = 48
)

// noteWrite credits n write ops to s (caller holds s.mu) and reports
// whether the shard's heat has crossed the split threshold. Counting
// under the lock makes the trigger a pure function of the op sequence,
// which the crash-consistency checker's deterministic replay relies on.
func (h *HART) noteWrite(s *artShard, n int) bool {
	s.ops.Add(uint64(n))
	if !h.opts.ElasticDirectory {
		return false
	}
	return s.heat.Add(uint64(n)) >= uint64(h.opts.SplitOps)
}

// maybeSplit re-locates the shard at prefix and, if it is still hot,
// splits it. Called by writers after releasing the shard lock (splitting
// inside the write's critical section would re-enter the lock).
func (h *HART) maybeSplit(prefix []byte) {
	for {
		d := h.dir.Load()
		s, ok := d.tab.Get(prefix)
		if !ok {
			return
		}
		s.mu.Lock()
		if s.dead {
			s.mu.Unlock()
			continue
		}
		// Re-check under the lock: another writer may have split or a
		// merge may have rebuilt this entry since the trigger fired.
		if s.heat.Load() >= uint64(h.opts.SplitOps) {
			h.splitShard(prefix, s)
		}
		s.mu.Unlock()
		return
	}
}

// splitShard splits the live shard s at directory entry prefix into
// per-next-byte children plus an optional residual. Caller holds s.mu,
// which pins the routing of every key assigned to prefix (splitting
// prefix requires this lock; a merge of the group locks this shard too;
// and any ancestor entry of prefix is residual-only, so it can neither
// split nor be created deeper). Refusals just reset the heat and leave
// the shape unchanged.
//
// PM state is untouched: the children reference the same leaves, so the
// publication needs no seqlock section — an optimistic reader holding
// the pre-split snapshot still validates every read against the frozen
// parent tree.
func (h *HART) splitShard(prefix []byte, s *artShard) {
	s.heat.Store(0)
	if len(prefix) < h.opts.HashKeyLen || len(prefix) >= maxDirDepth {
		return
	}
	if s.pending.Load() != nil {
		h.buildPending(s)
	}
	tree := s.tree.Load()
	if tree.Len() < 2 {
		return
	}
	// Allocation-free group pre-count: a shard all of whose records share
	// the next key byte cannot split (it would only relabel), yet it
	// re-crosses the heat threshold every SplitOps ops — bail before
	// building any child batches. Ascend visits in key order, so groups
	// (the residual's empty ART key first, then each first byte) are
	// contiguous and the walk stops at the second one.
	groups := 0
	counted := false
	var lastByte byte
	lastEmpty := false
	tree.Ascend(func(artKey []byte, _ uint64) bool {
		empty := len(artKey) == 0
		var b byte
		if !empty {
			b = artKey[0]
		}
		if !counted || empty != lastEmpty || (!empty && b != lastByte) {
			groups++
			counted = true
			lastByte, lastEmpty = b, empty
		}
		return groups < 2
	})
	if groups < 2 {
		return // every record shares the next byte: splitting would only relabel
	}
	// Carve by next key byte. An empty ART key means the record's full
	// key is exactly prefix: it becomes the residual. art.Batch.Insert
	// copies key bytes, so handing it subslices of iterated keys is safe.
	var (
		residual    uint64
		hasResidual bool
		children    = make(map[byte]*art.Batch)
		order       []byte // ascending — Ascend visits in key order
	)
	tree.Ascend(func(artKey []byte, leafW uint64) bool {
		if len(artKey) == 0 {
			residual, hasResidual = leafW, true
			return true
		}
		cb := children[artKey[0]]
		if cb == nil {
			cb = art.New().BeginBatch()
			children[artKey[0]] = cb
			order = append(order, artKey[0])
		}
		cb.Insert(artKey[1:], leafW)
		return true
	})

	h.dirMu.Lock()
	d := h.dir.Load()
	if !h.persistSplitAdd(prefix) {
		h.dirMu.Unlock()
		return // all persisted split slots taken; keep the current shape
	}
	nt := d.tab.Clone()
	nt.Delete(prefix)
	if hasResidual {
		rs := newShard()
		rb := art.New().BeginBatch()
		rb.Insert(nil, residual)
		rs.tree.Store(rb.Commit())
		nt.Put(prefix, rs)
	}
	childKey := make([]byte, len(prefix)+1)
	copy(childKey, prefix)
	for _, b := range order {
		cs := newShard()
		cs.tree.Store(children[b].Commit())
		childKey[len(prefix)] = b
		nt.Put(childKey, cs)
	}
	h.dir.Store(&dirTable{tab: nt, splits: d.splits.With(prefix)})
	h.splitCount.Add(1)
	h.obs.dirPublish.Add(1)
	h.dirMu.Unlock()
	s.dead = true
	h.obs.events.Emit("dir.split", evPrefix(prefix), uint64(len(order)), uint64(h.splitCount.Load()))
}

// maybeMerge considers folding the split group around the entry at
// prefix back into its parent. Called by Delete after releasing the
// shard lock: the candidate split is prefix itself if it is a split
// member (the delete emptied or shrank a residual), otherwise the
// one-byte-shorter parent (the delete shrank a child).
func (h *HART) maybeMerge(prefix []byte) {
	if !h.opts.ElasticDirectory {
		return
	}
	d := h.dir.Load()
	var p []byte
	switch {
	case d.splits.Has(prefix):
		p = prefix
	case len(prefix) > h.opts.HashKeyLen:
		p = prefix[:len(prefix)-1]
		if !d.splits.Has(p) {
			return
		}
	default:
		return
	}
	// A transient race (concurrent split, entry churn) makes one attempt
	// fail validation; a few retries settle it. Giving up is safe — the
	// next delete in the group re-triggers.
	for attempt := 0; attempt < 4; attempt++ {
		if h.tryMerge(p) {
			return
		}
	}
}

// groupEntries returns every directory entry whose name extends p
// (including the residual entry p itself), ascending. Deeper descendants
// are included so callers can detect and refuse them.
func groupEntries(t *hashdir.Table[*artShard], p []byte) []string {
	keys := t.SortedKeys()
	lo := sort.SearchStrings(keys, string(p))
	var out []string
	for i := lo; i < len(keys) && strings.HasPrefix(keys[i], string(p)); i++ {
		out = append(out, keys[i])
	}
	return out
}

// tryMerge attempts one merge of split prefix p's group. Returns true
// when settled (merged, refused, or no longer applicable) and false when
// a race invalidated the attempt and it is worth retrying.
func (h *HART) tryMerge(p []byte) bool {
	d := h.dir.Load()
	if !d.splits.Has(p) {
		return true
	}
	names := groupEntries(d.tab, p)
	for _, q := range names {
		if len(q) > len(p)+1 {
			return true // a deeper split is active below p; it merges first
		}
		if len(q) > len(p) && d.splits.Has([]byte(q)) {
			// q is itself a split member whose children are gone but
			// whose residual routing still depends on entry q existing.
			// Collapse q's (trivial) group first; p can merge later.
			return true
		}
	}
	// Lock the whole group in sorted-name order — the one multi-shard
	// lock acquisition in the system, deadlock-free because concurrent
	// merges with overlapping groups take the same global order.
	shards := make([]*artShard, len(names))
	for i, q := range names {
		s, ok := d.tab.Get([]byte(q))
		if !ok {
			return false
		}
		shards[i] = s
	}
	locked := 0
	unlockAll := func() {
		for i := locked - 1; i >= 0; i-- {
			shards[i].mu.Unlock()
		}
	}
	for _, s := range shards {
		s.mu.Lock()
		locked++
		if s.dead {
			unlockAll()
			return false
		}
	}
	total := 0
	heat := uint64(0)
	for _, s := range shards {
		if s.pending.Load() != nil {
			h.buildPending(s)
		}
		total += s.tree.Load().Len()
		heat += s.heat.Load()
	}
	if total > h.opts.MergeRecords || heat >= uint64(h.opts.SplitOps)/2 {
		// Too big or still warm. Decay the group's heat so a borderline
		// group doesn't rerun this scan on every delete, and so that a
		// group that genuinely cools eventually passes the gate.
		for _, s := range shards {
			s.heat.Store(s.heat.Load() / 2)
		}
		unlockAll()
		return true
	}
	// Build the merged ART: the residual's record keeps its empty ART
	// key; a child p+b record gains b back as its first ART-key byte.
	mb := art.New().BeginBatch()
	var kb []byte
	for i, q := range names {
		b := []byte(q)
		shards[i].tree.Load().Ascend(func(artKey []byte, leafW uint64) bool {
			if len(q) == len(p) {
				mb.Insert(artKey, leafW)
			} else {
				kb = append(kb[:0], b[len(p)])
				kb = append(kb, artKey...)
				mb.Insert(kb, leafW)
			}
			return true
		})
	}
	h.dirMu.Lock()
	d2 := h.dir.Load()
	if !slices.Equal(groupEntries(d2.tab, p), names) {
		// Entry creation happens under dirMu without shard locks, so a
		// writer may have added a group member after the snapshot above;
		// this re-validation under the same lock that creations take is
		// what makes the membership final.
		h.dirMu.Unlock()
		unlockAll()
		return false
	}
	h.persistSplitRemove(p)
	nt := d2.tab.Clone()
	for _, q := range names {
		nt.Delete([]byte(q))
	}
	if total > 0 {
		ms := newShard()
		ms.tree.Store(mb.Commit())
		nt.Put(p, ms)
	}
	h.dir.Store(&dirTable{tab: nt, splits: d2.splits.Without(p)})
	h.mergeCount.Add(1)
	h.obs.dirPublish.Add(1)
	h.dirMu.Unlock()
	for _, s := range shards {
		s.dead = true
	}
	unlockAll()
	h.obs.events.Emit("dir.merge", evPrefix(p), uint64(len(names)), uint64(total))
	// The merged shard may itself now be a cold child (or residual) of a
	// shallower split; cascade toward the base shape.
	h.maybeMerge(p)
	return true
}
