package core

import (
	"errors"
	"path/filepath"
	"testing"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// openStoreFile creates a file-backed store with the given options,
// loads it with a few records and closes it. Returns the path.
func openStoreFile(t *testing.T, opts Options) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.hart")
	arena, fresh, err := pmem.OpenFileArena(path, opts.ArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !fresh {
		t.Fatal("fresh file not reported fresh")
	}
	h, err := NewOnArena(arena, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][2]string{{"alpha", "1"}, {"beta", "2"}, {"gamma", "3"}} {
		if err := h.Put([]byte(kv[0]), []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// reopen attaches to a store file with the given options.
func reopen(t *testing.T, path string, opts Options) (*HART, error) {
	t.Helper()
	arena, fresh, err := pmem.OpenFileArena(path, pmem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Fatal("existing store reported fresh")
	}
	h, err := Open(arena, opts)
	if err != nil {
		arena.Close()
	}
	return h, err
}

// TestOpenAdoptsGeometry verifies zero options inherit the superblock's
// HashKeyLen and ValueClasses — reattaching needs no out-of-band record
// of the creation options.
func TestOpenAdoptsGeometry(t *testing.T) {
	created := Options{HashKeyLen: 3, ValueClasses: []int64{8, 24, 40}, ArenaSize: 4 << 20}
	path := openStoreFile(t, created)

	h, err := reopen(t, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	got := h.Options()
	if got.HashKeyLen != 3 {
		t.Fatalf("adopted HashKeyLen = %d, want 3", got.HashKeyLen)
	}
	if len(got.ValueClasses) != 3 || got.ValueClasses[1] != 24 {
		t.Fatalf("adopted ValueClasses = %v, want [8 24 40]", got.ValueClasses)
	}
	if v, ok := h.Get([]byte("beta")); !ok || string(v) != "2" {
		t.Fatalf("Get(beta) = %q, %v", v, ok)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRejectsGeometryMismatch verifies options that contradict the
// superblock refuse the attach instead of silently misindexing the store.
func TestOpenRejectsGeometryMismatch(t *testing.T) {
	path := openStoreFile(t, Options{HashKeyLen: 2, ValueClasses: []int64{8, 16}, ArenaSize: 4 << 20})

	if _, err := reopen(t, path, Options{HashKeyLen: 5}); !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("HashKeyLen mismatch: err = %v, want ErrGeometryMismatch", err)
	}
	if _, err := reopen(t, path, Options{ValueClasses: []int64{8, 16, 32}}); !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("ValueClasses mismatch: err = %v, want ErrGeometryMismatch", err)
	}
	// Naming the store's own geometry explicitly is fine.
	h, err := reopen(t, path, Options{HashKeyLen: 2, ValueClasses: []int64{8, 16}})
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
}

// TestOpenRejectsUnformattedArena verifies a raw arena with no HART
// superblock cannot be opened as a store.
func TestOpenRejectsUnformattedArena(t *testing.T) {
	arena, err := pmem.New(pmem.Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(arena, Options{}); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("unformatted arena: err = %v, want ErrNotFormatted", err)
	}
}

// TestCleanFlagLifecycle verifies the superblock's shutdown marker: set
// by Close, cleared while the store is open, and reported by
// RecoveryStats.WasClean on the next attach.
func TestCleanFlagLifecycle(t *testing.T) {
	path := openStoreFile(t, Options{ArenaSize: 4 << 20})

	// First reopen: previous run Closed, so the image is clean.
	h, err := reopen(t, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !h.LastRecoveryStats().WasClean {
		t.Fatal("image from a Closed store not reported clean")
	}
	// The open store is marked dirty on disk; abandon it without Close
	// (drop the arena by syncing and reopening the file independently).
	if err := h.Arena().Sync(); err != nil {
		t.Fatal(err)
	}
	if err := pmem.BackendOf(h.Arena()).Close(); err != nil {
		t.Fatal(err)
	}

	h2, err := reopen(t, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h2.LastRecoveryStats().WasClean {
		t.Fatal("image abandoned without Close reported clean")
	}
	if v, ok := h2.Get([]byte("alpha")); !ok || string(v) != "1" {
		t.Fatalf("crash-recovered Get(alpha) = %q, %v", v, ok)
	}
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}

	// Close marked it clean again.
	h3, err := reopen(t, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !h3.LastRecoveryStats().WasClean {
		t.Fatal("image from a Closed store not reported clean on third open")
	}
	h3.Close()
}

// TestCloseRefusesFurtherOps verifies operations after Close fail with
// ErrClosed and that Close is idempotent.
func TestCloseRefusesFurtherOps(t *testing.T) {
	h, err := New(Options{ArenaSize: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Put([]byte("k2"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: err = %v, want ErrClosed", err)
	}
	if err := h.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close: err = %v, want ErrClosed", err)
	}
}
