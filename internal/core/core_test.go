package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/casl-sdsu/hart/internal/pmem"
)

func newHART(t *testing.T) *HART {
	t.Helper()
	h, err := New(Options{ArenaSize: 16 << 20, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustPut(t *testing.T, h *HART, k, v string) {
	t.Helper()
	if err := h.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("Put(%q,%q): %v", k, v, err)
	}
}

func mustGet(t *testing.T, h *HART, k, want string) {
	t.Helper()
	got, ok := h.Get([]byte(k))
	if !ok || string(got) != want {
		t.Fatalf("Get(%q) = (%q,%v), want (%q,true)", k, got, ok, want)
	}
}

func TestPutGetBasic(t *testing.T) {
	h := newHART(t)
	mustPut(t, h, "hello", "world")
	mustGet(t, h, "hello", "world")
	if _, ok := h.Get([]byte("absent")); ok {
		t.Fatal("Get on absent key succeeded")
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPutValidation(t *testing.T) {
	h := newHART(t)
	if err := h.Put(nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("empty key: %v", err)
	}
	if err := h.Put(bytes.Repeat([]byte("k"), 25), []byte("v")); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("long key: %v", err)
	}
	if err := h.Put([]byte("k"), nil); !errors.Is(err, ErrEmptyValue) {
		t.Fatalf("empty value: %v", err)
	}
	if err := h.Put([]byte("k"), bytes.Repeat([]byte("v"), 17)); !errors.Is(err, ErrValueTooLong) {
		t.Fatalf("long value: %v", err)
	}
	// Boundary sizes succeed.
	if err := h.Put(bytes.Repeat([]byte("k"), 24), bytes.Repeat([]byte("v"), 16)); err != nil {
		t.Fatal(err)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestShortKeysAndHashBoundary(t *testing.T) {
	// Keys at, below and above kh = 2 land correctly.
	h := newHART(t)
	keys := []string{"a", "ab", "abc", "b", "bc", "abcdefghij", "aa", "aaa"}
	for i, k := range keys {
		mustPut(t, h, k, fmt.Sprintf("v%d", i))
	}
	for i, k := range keys {
		mustGet(t, h, k, fmt.Sprintf("v%d", i))
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	h := newHART(t)
	mustPut(t, h, "key", "old")
	mustPut(t, h, "key", "new")
	mustGet(t, h, "key", "new")
	if h.Len() != 1 {
		t.Fatalf("Len = %d after in-place put, want 1", h.Len())
	}
	// Cross size classes: 8B class -> 16B class and back.
	mustPut(t, h, "key", "0123456789abcdef")
	mustGet(t, h, "key", "0123456789abcdef")
	mustPut(t, h, "key", "x")
	mustGet(t, h, "key", "x")
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateRequiresExistingKey(t *testing.T) {
	h := newHART(t)
	if err := h.Update([]byte("nope"), []byte("v")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Update missing = %v, want ErrNotFound", err)
	}
	mustPut(t, h, "yes", "1")
	if err := h.Update([]byte("yes"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	mustGet(t, h, "yes", "2")
}

func TestDelete(t *testing.T) {
	h := newHART(t)
	for i := 0; i < 100; i++ {
		mustPut(t, h, fmt.Sprintf("key%03d", i), fmt.Sprintf("val%d", i))
	}
	for i := 0; i < 100; i += 2 {
		if err := h.Delete([]byte(fmt.Sprintf("key%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 50 {
		t.Fatalf("Len = %d, want 50", h.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := h.Get([]byte(fmt.Sprintf("key%03d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(key%03d) = %v, want %v", i, ok, want)
		}
	}
	if err := h.Delete([]byte("key000")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteEmptiesART(t *testing.T) {
	h := newHART(t)
	mustPut(t, h, "zz-solo", "v")
	if h.NumARTs() != 1 {
		t.Fatalf("NumARTs = %d, want 1", h.NumARTs())
	}
	if err := h.Delete([]byte("zz-solo")); err != nil {
		t.Fatal(err)
	}
	if h.NumARTs() != 0 {
		t.Fatalf("NumARTs = %d after emptying, want 0 (paper Alg. 5 lines 15-16)", h.NumARTs())
	}
	// The hash key is usable again.
	mustPut(t, h, "zz-back", "w")
	mustGet(t, h, "zz-back", "w")
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLeafSlotReuseAfterDelete(t *testing.T) {
	h := newHART(t)
	mustPut(t, h, "aa1", "v1")
	leaf1, _ := h.GetLeaf([]byte("aa1"))
	if err := h.Delete([]byte("aa1")); err != nil {
		t.Fatal(err)
	}
	mustPut(t, h, "aa2", "v2")
	leaf2, _ := h.GetLeaf([]byte("aa2"))
	if leaf1 != leaf2 {
		t.Fatalf("slot not reused: %d then %d", leaf1, leaf2)
	}
	mustGet(t, h, "aa2", "v2")
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestScanOrdered(t *testing.T) {
	h := newHART(t)
	var want []string
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%05d", i*7%500)
		if err := h.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		want = append(want, fmt.Sprintf("k%05d", i))
	}
	var got []string
	h.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Scan visited %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Scan order: got[%d]=%q want %q", i, got[i], want[i])
		}
	}
	// Bounded scan.
	got = got[:0]
	h.Scan([]byte("k00100"), []byte("k00200"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 100 || got[0] != "k00100" || got[99] != "k00199" {
		t.Fatalf("bounded scan: %d keys [%q..%q]", len(got), got[0], got[len(got)-1])
	}
	// Early stop.
	n := 0
	h.Scan(nil, nil, func(k, v []byte) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early-stop scan visited %d", n)
	}
}

func TestScanAcrossHashKeys(t *testing.T) {
	// Keys spanning multiple shards, including short keys, come out in
	// global order.
	h := newHART(t)
	keys := []string{"a", "ab", "abc", "ac", "b", "ba", "bb1", "bb2", "c"}
	for _, k := range keys {
		mustPut(t, h, k, "v")
	}
	var got []string
	h.Scan(nil, nil, func(k, _ []byte) bool { got = append(got, string(k)); return true })
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("scan out of order: %q >= %q", got[i-1], got[i])
		}
	}
	if len(got) != len(keys) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(keys))
	}
	// Range crossing a shard boundary.
	got = got[:0]
	h.Scan([]byte("ab"), []byte("bb2"), func(k, _ []byte) bool { got = append(got, string(k)); return true })
	want := []string{"ab", "abc", "ac", "b", "ba", "bb1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("range scan = %v, want %v", got, want)
	}
}

func TestRecoveryRebuild(t *testing.T) {
	h := newHART(t)
	rng := rand.New(rand.NewSource(3))
	ref := map[string]string{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("%c%c%06d", 'a'+rng.Intn(4), 'a'+rng.Intn(4), rng.Intn(100000))
		v := fmt.Sprintf("v%08d", i)
		if err := h.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	// Delete a third.
	i := 0
	for k := range ref {
		if i%3 == 0 {
			if err := h.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(ref, k)
		}
		i++
	}
	// Clean restart (all data persisted).
	img, err := h.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Open(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != len(ref) {
		t.Fatalf("recovered Len = %d, want %d", h2.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := h2.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("after recovery Get(%q) = (%q,%v), want (%q,true)", k, got, ok, v)
		}
	}
	if err := h2.Check(); err != nil {
		t.Fatal(err)
	}
	// Rebuild in place gives the same answer (Fig. 10c driver).
	if err := h2.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if h2.Len() != len(ref) {
		t.Fatalf("rebuilt Len = %d, want %d", h2.Len(), len(ref))
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	h := newHART(t)
	for i := 0; i < 100; i++ {
		mustPut(t, h, fmt.Sprintf("id%04d", i), "v")
	}
	img, _ := h.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	h2, err := Open(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Crash the recovered instance without any new writes and recover
	// again: nothing may change.
	img2, _ := h2.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	h3, err := Open(img2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h3.Len() != 100 {
		t.Fatalf("second recovery Len = %d, want 100", h3.Len())
	}
	if err := h3.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedRejectsOps(t *testing.T) {
	h := newHART(t)
	mustPut(t, h, "k", "v")
	h.Close()
	if err := h.Put([]byte("k2"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if _, ok := h.Get([]byte("k")); ok {
		t.Fatal("Get after close succeeded")
	}
}

func TestManyRecordsAcrossChunks(t *testing.T) {
	// More than one chunk of leaves and values; forces chunk-list growth.
	h := newHART(t)
	const n = 500 // ~9 leaf chunks
	for i := 0; i < n; i++ {
		mustPut(t, h, fmt.Sprintf("ck%06d", i), fmt.Sprintf("%016d", i))
	}
	if h.Len() != n {
		t.Fatalf("Len = %d, want %d", h.Len(), n)
	}
	for i := 0; i < n; i++ {
		mustGet(t, h, fmt.Sprintf("ck%06d", i), fmt.Sprintf("%016d", i))
	}
	// Delete everything: chunks must recycle without corruption.
	for i := 0; i < n; i++ {
		if err := h.Delete([]byte(fmt.Sprintf("ck%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after full delete", h.Len())
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Records != 0 {
		t.Fatalf("Stats.Records = %d", st.Records)
	}
}

func TestStatsAndSizeInfo(t *testing.T) {
	h := newHART(t)
	for i := 0; i < 1000; i++ {
		mustPut(t, h, fmt.Sprintf("st%06d", i), "12345678")
	}
	st := h.Stats()
	if st.Records != 1000 {
		t.Fatalf("Records = %d", st.Records)
	}
	if st.Size.PMBytes <= 0 || st.Size.DRAMBytes <= 0 {
		t.Fatalf("SizeInfo non-positive: %+v", st.Size)
	}
	if st.ART.Records != 1000 {
		t.Fatalf("ART.Records = %d", st.ART.Records)
	}
	if st.ARTs != h.NumARTs() {
		t.Fatalf("ARTs mismatch: %d vs %d", st.ARTs, h.NumARTs())
	}
	if len(st.Alloc) != 3 {
		t.Fatalf("Alloc classes = %d", len(st.Alloc))
	}
}

// TestDeleteDoesNotPoisonReusedValueSlot is a regression test for a
// subtle aliasing bug: after Delete, the dead leaf's stale p_value must
// not be interpreted by the Algorithm 2 repair once the value slot has
// been legitimately reallocated to another record.
func TestDeleteDoesNotPoisonReusedValueSlot(t *testing.T) {
	h := newHART(t)
	// k1's value occupies a value slot; delete k1 frees it.
	mustPut(t, h, "xx-one", "willfree")
	if err := h.Delete([]byte("xx-one")); err != nil {
		t.Fatal(err)
	}
	// k2 reuses the freed value slot (same class, same chunk hint).
	mustPut(t, h, "yy-two", "newowner")
	// k3 reuses k1's leaf slot, firing the OnReuse repair hook. Before
	// the fix, the hook saw k1's stale p_value -> k2's live value and
	// reset its bit.
	mustPut(t, h, "zz-three", "fresh")
	mustGet(t, h, "yy-two", "newowner")
	if err := h.Check(); err != nil {
		t.Fatalf("aliasing regression: %v", err)
	}
}

// TestChurnHeavyMixedOps replays a delete-heavy interleaving that
// repeatedly recycles leaf and value slots, then fscks.
func TestChurnHeavyMixedOps(t *testing.T) {
	h := newHART(t)
	rng := rand.New(rand.NewSource(77))
	live := map[string]string{}
	for i := 0; i < 30000; i++ {
		k := fmt.Sprintf("%c%c%03d", 'a'+rng.Intn(3), 'a'+rng.Intn(3), rng.Intn(300))
		switch rng.Intn(3) {
		case 0:
			v := fmt.Sprintf("v%06d", i)
			if err := h.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			live[k] = v
		case 1:
			err := h.Delete([]byte(k))
			if _, ok := live[k]; ok != (err == nil) {
				t.Fatalf("op %d: delete(%q) err=%v but live=%v", i, k, err, ok)
			}
			delete(live, k)
		case 2:
			got, ok := h.Get([]byte(k))
			want, exists := live[k]
			if ok != exists || (ok && string(got) != want) {
				t.Fatalf("op %d: get(%q) = (%q,%v), want (%q,%v)", i, k, got, ok, want, exists)
			}
		}
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	if h.Len() != len(live) {
		t.Fatalf("Len = %d, model %d", h.Len(), len(live))
	}
}

// TestCustomValueClasses exercises the paper's "easily extended to
// support more sizes of values" claim: extra size classes raise the value
// limit and survive recovery (the class table is validated against PM on
// attach).
func TestCustomValueClasses(t *testing.T) {
	opts := Options{
		ArenaSize:    16 << 20,
		Tracking:     true,
		ValueClasses: []int64{8, 16, 32, 64},
	}
	h, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("B"), 64)
	mid := bytes.Repeat([]byte("m"), 20)
	if err := h.Put([]byte("big-value"), big); err != nil {
		t.Fatalf("64-byte value rejected: %v", err)
	}
	if err := h.Put([]byte("mid-value"), mid); err != nil {
		t.Fatal(err)
	}
	if err := h.Put([]byte("too-big"), bytes.Repeat([]byte("x"), 65)); !errors.Is(err, ErrValueTooLong) {
		t.Fatalf("65-byte value: %v", err)
	}
	if got, ok := h.Get([]byte("big-value")); !ok || !bytes.Equal(got, big) {
		t.Fatalf("big value round trip failed: (%d bytes, %v)", len(got), ok)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	// Recovery with the same class table.
	img, err := h.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Open(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := h2.Get([]byte("big-value")); !ok || !bytes.Equal(got, big) {
		t.Fatalf("big value lost across recovery: (%d bytes, %v)", len(got), ok)
	}
	if err := h2.Check(); err != nil {
		t.Fatal(err)
	}
	// Recovery with a mismatched class table must be rejected, not
	// silently misinterpreted.
	img2, _ := h2.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	if _, err := Open(img2, Options{ValueClasses: []int64{8, 16}}); err == nil {
		t.Fatal("Open accepted a mismatched value-class table")
	}
}

func TestInvalidValueClassesRejected(t *testing.T) {
	for _, classes := range [][]int64{
		{7},     // not multiple of 8
		{16, 8}, // not ascending
		{8, 8},  // duplicate
		{0},     // zero
		{-8},    // negative
	} {
		if _, err := New(Options{ValueClasses: classes}); err == nil {
			t.Fatalf("New accepted value classes %v", classes)
		}
	}
}

// TestParallelRecoveryEquivalence: recovery with workers produces exactly
// the same index as serial recovery.
func TestParallelRecoveryEquivalence(t *testing.T) {
	h := newHART(t)
	rng := rand.New(rand.NewSource(17))
	ref := map[string]string{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("%c%c%05d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(50000))
		v := fmt.Sprintf("v%06d", i)
		if err := h.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	img, err := h.Arena().DurableImage()
	if err != nil {
		t.Fatal(err)
	}
	open := func(workers int) *HART {
		arena, err := pmem.Attach(append([]byte(nil), img...), pmem.Config{Size: int64(len(img)), Tracking: true})
		if err != nil {
			t.Fatal(err)
		}
		h2, err := Open(arena, Options{RecoveryWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return h2
	}
	serial, parallel := open(1), open(8)
	if serial.Len() != len(ref) || parallel.Len() != len(ref) {
		t.Fatalf("Len: serial %d, parallel %d, want %d", serial.Len(), parallel.Len(), len(ref))
	}
	for k, v := range ref {
		pv, ok := parallel.Get([]byte(k))
		if !ok || string(pv) != v {
			t.Fatalf("parallel recovery lost %q", k)
		}
	}
	// Identical ordered key streams.
	sk, pk := serial.Keys(), parallel.Keys()
	if len(sk) != len(pk) {
		t.Fatalf("key counts differ: %d vs %d", len(sk), len(pk))
	}
	for i := range sk {
		if !bytes.Equal(sk[i], pk[i]) {
			t.Fatalf("key stream differs at %d: %q vs %q", i, sk[i], pk[i])
		}
	}
	if err := parallel.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestScanReverse(t *testing.T) {
	h := newHART(t)
	keys := []string{"a", "ab", "abc", "ac", "b", "ba", "bb1", "bb2", "c"}
	for _, k := range keys {
		mustPut(t, h, k, "v")
	}
	var got []string
	h.ScanReverse(nil, nil, func(k, _ []byte) bool { got = append(got, string(k)); return true })
	if len(got) != len(keys) {
		t.Fatalf("reverse scan saw %d keys", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] <= got[i] {
			t.Fatalf("reverse scan out of order: %q then %q", got[i-1], got[i])
		}
	}
	got = got[:0]
	h.ScanReverse([]byte("ab"), []byte("bb2"), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"bb1", "ba", "b", "ac", "abc", "ab"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("bounded reverse scan = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	h.ScanReverse(nil, nil, func(k, _ []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestHashKeyLenVariants runs basic workloads at several kh values; any
// kh must produce an equivalent key-value map (only the DRAM layout
// differs).
func TestHashKeyLenVariants(t *testing.T) {
	for _, kh := range []int{1, 3, 6} {
		h, err := New(Options{ArenaSize: 16 << 20, HashKeyLen: kh})
		if err != nil {
			t.Fatalf("kh=%d: %v", kh, err)
		}
		for i := 0; i < 2000; i++ {
			k := fmt.Sprintf("%c%c%05d", 'a'+i%5, 'a'+(i/5)%5, i)
			if err := h.Put([]byte(k), []byte(fmt.Sprintf("%d", i))); err != nil {
				t.Fatalf("kh=%d: %v", kh, err)
			}
		}
		for i := 0; i < 2000; i += 53 {
			k := fmt.Sprintf("%c%c%05d", 'a'+i%5, 'a'+(i/5)%5, i)
			v, ok := h.Get([]byte(k))
			if !ok || string(v) != fmt.Sprintf("%d", i) {
				t.Fatalf("kh=%d: Get(%q) = (%q,%v)", kh, k, v, ok)
			}
		}
		// Ordered scan must be kh-invariant.
		prev := ""
		n := 0
		h.Scan(nil, nil, func(k, _ []byte) bool {
			if string(k) <= prev {
				t.Fatalf("kh=%d: scan out of order", kh)
			}
			prev = string(k)
			n++
			return true
		})
		if n != 2000 {
			t.Fatalf("kh=%d: scan saw %d", kh, n)
		}
		if err := h.Check(); err != nil {
			t.Fatalf("kh=%d: %v", kh, err)
		}
	}
	// Out-of-range kh rejected.
	if _, err := New(Options{HashKeyLen: MaxKeyLen}); err == nil {
		t.Fatal("kh == MaxKeyLen accepted")
	}
	if _, err := New(Options{HashKeyLen: -1}); err == nil {
		t.Fatal("negative kh accepted")
	}
}
