package core

import (
	"bytes"
	"errors"
	"testing"

	"github.com/casl-sdsu/hart/internal/epalloc"
)

// The allocator only fails on corruption or exhaustion, so the write
// paths' error branches are unreachable organically; these tests trip
// them with epalloc's fault injectors and assert the cleanup contract:
// the error surfaces, no PM object is stranded, no ulog slot stays busy
// (Check == CheckQuiescent verifies all of it), and the operation can be
// retried successfully.

func TestInsertSetBitValueFailure(t *testing.T) {
	h := newHART(t)
	h.alloc.FailSetBitAfter(0) // first SetBit = value commit
	if err := h.Put([]byte("alpha"), []byte("v1")); !errors.Is(err, epalloc.ErrInjected) {
		t.Fatalf("Put = %v, want ErrInjected", err)
	}
	if _, ok := h.Get([]byte("alpha")); ok {
		t.Fatal("failed insert is visible")
	}
	if err := h.Check(); err != nil {
		t.Fatalf("Check after failed insert: %v", err)
	}
	if err := h.Put([]byte("alpha"), []byte("v1")); err != nil {
		t.Fatalf("retry Put: %v", err)
	}
	if v, ok := h.Get([]byte("alpha")); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("retry not visible: %q %v", v, ok)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSetBitLeafFailure(t *testing.T) {
	h := newHART(t)
	h.alloc.FailSetBitAfter(1) // second SetBit = leaf commit
	if err := h.Put([]byte("alpha"), []byte("v1")); !errors.Is(err, epalloc.ErrInjected) {
		t.Fatalf("Put = %v, want ErrInjected", err)
	}
	// The leaf was already published to the tree when the commit failed;
	// the rollback must unpublish it and release the committed value.
	if _, ok := h.Get([]byte("alpha")); ok {
		t.Fatal("rolled-back insert is visible")
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after rolled-back insert", h.Len())
	}
	if err := h.Check(); err != nil {
		t.Fatalf("Check after rollback: %v", err)
	}
	if err := h.Put([]byte("alpha"), []byte("v2")); err != nil {
		t.Fatalf("retry Put: %v", err)
	}
	if v, ok := h.Get([]byte("alpha")); !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("retry not visible: %q %v", v, ok)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateSetBitFailureReclaimsULog(t *testing.T) {
	h := newHART(t)
	if err := h.Put([]byte("alpha"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	h.alloc.FailSetBitAfter(0)
	if err := h.Put([]byte("alpha"), []byte("new")); !errors.Is(err, epalloc.ErrInjected) {
		t.Fatalf("update = %v, want ErrInjected", err)
	}
	if v, ok := h.Get([]byte("alpha")); !ok || !bytes.Equal(v, []byte("old")) {
		t.Fatalf("old value lost: %q %v", v, ok)
	}
	// Check includes allocator quiescence: an armed or busy ulog slot —
	// what the pre-fix code left behind — fails here.
	if err := h.Check(); err != nil {
		t.Fatalf("Check after failed update: %v", err)
	}
	if err := h.Put([]byte("alpha"), []byte("new")); err != nil {
		t.Fatalf("retry update: %v", err)
	}
	if v, _ := h.Get([]byte("alpha")); !bytes.Equal(v, []byte("new")) {
		t.Fatalf("retry not visible: %q", v)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateReleaseFailureLeaksVisiblyThenRecovers(t *testing.T) {
	h := newHART(t)
	if err := h.Put([]byte("alpha"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	h.alloc.FailResetBitAfter(0) // trips Release of the old value
	err := h.Put([]byte("alpha"), []byte("new"))
	if !errors.Is(err, epalloc.ErrInjected) {
		t.Fatalf("update = %v, want ErrInjected", err)
	}
	// The update committed at the pointer swing before the release failed.
	if v, ok := h.Get([]byte("alpha")); !ok || !bytes.Equal(v, []byte("new")) {
		t.Fatalf("committed update lost: %q %v", v, ok)
	}
	// The old value's bit is leaked — Check must say so (the ulog was
	// still reclaimed, so the failure mode is the leak, not a dead slot).
	if err := h.Check(); err == nil {
		t.Fatal("Check missed the leaked old value")
	}
	// Recovery's orphan sweep reclaims it.
	if err := h.Rebuild(); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if err := h.Check(); err != nil {
		t.Fatalf("Check after recovery: %v", err)
	}
	if v, _ := h.Get([]byte("alpha")); !bytes.Equal(v, []byte("new")) {
		t.Fatalf("value lost across recovery: %q", v)
	}
}

func TestUnloggedUpdateSetBitFailure(t *testing.T) {
	h, err := New(Options{ArenaSize: 16 << 20, Tracking: true, UnloggedUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Put([]byte("alpha"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	h.alloc.FailSetBitAfter(0)
	if err := h.Put([]byte("alpha"), []byte("new")); !errors.Is(err, epalloc.ErrInjected) {
		t.Fatalf("update = %v, want ErrInjected", err)
	}
	if v, _ := h.Get([]byte("alpha")); !bytes.Equal(v, []byte("old")) {
		t.Fatalf("old value lost: %q", v)
	}
	if err := h.Check(); err != nil {
		t.Fatalf("Check after failed unlogged update: %v", err)
	}
	if err := h.Put([]byte("alpha"), []byte("new")); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteResetBitFailureRepublishes(t *testing.T) {
	h := newHART(t)
	if err := h.Put([]byte("alpha"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	h.alloc.FailResetBitAfter(0) // trips ResetBit of the leaf
	if err := h.Delete([]byte("alpha")); !errors.Is(err, epalloc.ErrInjected) {
		t.Fatalf("Delete = %v, want ErrInjected", err)
	}
	// The delete never committed (leaf bit still set); the record must
	// remain fully readable — the pre-fix code dropped it from the tree.
	if v, ok := h.Get([]byte("alpha")); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("record lost by failed delete: %q %v", v, ok)
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
	if err := h.Check(); err != nil {
		t.Fatalf("Check after failed delete: %v", err)
	}
	if err := h.Delete([]byte("alpha")); err != nil {
		t.Fatalf("retry Delete: %v", err)
	}
	if _, ok := h.Get([]byte("alpha")); ok {
		t.Fatal("record survived retried delete")
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteReleaseFailureStillDeletes(t *testing.T) {
	h := newHART(t)
	if err := h.Put([]byte("alpha"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	h.alloc.FailResetBitAfter(1) // leaf reset succeeds, value release fails
	if err := h.Delete([]byte("alpha")); !errors.Is(err, epalloc.ErrInjected) {
		t.Fatalf("Delete = %v, want ErrInjected", err)
	}
	// The leaf-bit reset committed the delete; the record is gone and the
	// size accounting must reflect it even though cleanup partly failed.
	if _, ok := h.Get([]byte("alpha")); ok {
		t.Fatal("record visible after committed delete")
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d, want 0", h.Len())
	}
	// The value bit leaked; recovery reclaims it.
	if err := h.Rebuild(); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if err := h.Check(); err != nil {
		t.Fatalf("Check after recovery: %v", err)
	}
}
