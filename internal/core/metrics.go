package core

import (
	"fmt"

	"github.com/casl-sdsu/hart/internal/obs"
)

// coreObs bundles HART's observability state: always-on operation
// counters (striped atomic adds, see package obs), latency histograms
// gated behind one atomic flag so the disabled hot path never reads the
// clock, and the structured event ring recording rare state transitions
// (elastic splits and merges, allocator stripe steals, recovery phases).
// The zero value is ready to use — HART embeds it by value and never
// initialises it explicitly.
type coreObs struct {
	gets, getMisses          obs.Counter
	puts, inserts, updates   obs.Counter
	deletes, deleteMisses    obs.Counter
	scans, scanRecords       obs.Counter
	putBatches, batchRecords obs.Counter

	// seqRetries counts inconclusive optimistic read attempts;
	// lockedFallbacks counts reads that exhausted optimisticAttempts and
	// took the shard read lock. Both stay zero on the clean lock-free hit.
	seqRetries, lockedFallbacks obs.Counter

	// dirPublish counts directory snapshot publications (every
	// h.dir.Store after the constructor's initial one).
	dirPublish obs.Counter

	// timing gates the operation histograms below; pmem's persist/sync
	// histograms have their own gate, flipped together by EnableMetrics.
	// The hot ops (Get/Put) additionally sample one timed call in
	// 2^obs.SampleShift through sample, so the enabled overhead stays
	// inside the budget even where a clock read costs ~100 ns; rare or
	// long ops (Delete, Scan, PutBatch) are timed unsampled.
	timing obs.Gate
	sample obs.Sampler

	getH, putH, deleteH, scanH, batchH obs.Histogram

	events obs.EventRing
}

// EnableMetrics turns latency histogram collection on or off. Counters
// and the event ring are always active; only the clock reads around
// Get/Put/Delete/Scan/PutBatch and the arena's Persist/Sync are gated.
// Off by default: the disabled read path stays allocation-free and
// within noise of an uninstrumented build (BENCH_obs.json).
func (h *HART) EnableMetrics(on bool) {
	h.obs.timing.Set(on)
	h.arena.EnableTiming(on)
}

// MetricsEnabled reports whether latency histograms are being collected.
func (h *HART) MetricsEnabled() bool { return h.obs.timing.Enabled() }

// Events returns the retained tail of the structured event ring, oldest
// first (at most obs.RingSize events).
func (h *HART) Events() []obs.Event { return h.obs.events.Snapshot() }

// EmitEvent records a caller-originated event in the ring (benchmarks
// mark phase boundaries with it).
func (h *HART) EmitEvent(kind, detail string, a, b uint64) {
	h.obs.events.Emit(kind, detail, a, b)
}

// Metrics assembles one observability snapshot across every layer:
// operation and read-path counters from core, chunk/steal/ulog counters
// from the allocator, persist and device counters from the arena,
// directory geometry, the gated latency histograms (present only when
// they have samples) and the retained event tail. The snapshot is
// internally consistent per counter (each is one atomic sum) but not a
// global linearization point — counters advance independently while it
// is taken, like any scrape.
func (h *HART) Metrics() obs.Snapshot {
	d := h.dir.Load()
	am := h.alloc.Metrics()
	ar := h.arena.Stats()

	c := map[string]uint64{
		"ops.get":               h.obs.gets.Value(),
		"ops.get_miss":          h.obs.getMisses.Value(),
		"ops.put":               h.obs.puts.Value(),
		"ops.insert":            h.obs.inserts.Value(),
		"ops.update":            h.obs.updates.Value(),
		"ops.delete":            h.obs.deletes.Value(),
		"ops.delete_miss":       h.obs.deleteMisses.Value(),
		"ops.scan":              h.obs.scans.Value(),
		"ops.scan_records":      h.obs.scanRecords.Value(),
		"ops.put_batch":         h.obs.putBatches.Value(),
		"ops.put_batch_records": h.obs.batchRecords.Value(),

		"read.seq_retries":      h.obs.seqRetries.Value(),
		"read.locked_fallbacks": h.obs.lockedFallbacks.Value(),

		"dir.republish":      h.obs.dirPublish.Value(),
		"dir.clones":         d.tab.Clones(),
		"dir.entries":        uint64(d.tab.Len()),
		"dir.split_prefixes": uint64(d.splits.Len()),
		"dir.splits":         h.splitCount.Load(),
		"dir.merges":         h.mergeCount.Load(),

		"alloc.chunk_reuses": am.ChunkReuses.Value(),
		"alloc.steals":       am.Steals.Value(),
		"alloc.fresh_chunks": am.FreshChunks.Value(),
		"alloc.batch_allocs": am.BatchAllocs.Value(),
		"alloc.batch_objs":   am.BatchObjs.Value(),
		"alloc.recycles":     am.Recycles.Value(),
		"alloc.ulog_claims":  am.ULogClaims.Value(),

		"pm.persists":        uint64(ar.Persists),
		"pm.persisted_lines": uint64(ar.PersistedLines),
		"pm.reads":           uint64(ar.Reads),
		"pm.writes":          uint64(ar.Writes),
		"pm.bytes_written":   uint64(ar.BytesWritten),
		"pm.syncs":           uint64(ar.Syncs),
	}

	hists := map[string]obs.HistVal{}
	addHist := func(name string, s obs.HistSnapshot) {
		if s.Count > 0 {
			hists[name] = s.Summary()
		}
	}
	addHist("ops.get", h.obs.getH.Snapshot())
	addHist("ops.put", h.obs.putH.Snapshot())
	addHist("ops.delete", h.obs.deleteH.Snapshot())
	addHist("ops.scan", h.obs.scanH.Snapshot())
	addHist("ops.put_batch", h.obs.batchH.Snapshot())
	persistS, syncS := h.arena.TimingSnapshots()
	addHist("pm.persist", persistS)
	addHist("pm.sync", syncS)

	return obs.Snapshot{Counters: c, Hists: hists, Events: h.obs.events.Snapshot()}
}

// evPrefix renders a directory prefix for an event detail field: hex, so
// arbitrary byte prefixes survive JSON and Prometheus exposition.
func evPrefix(p []byte) string { return fmt.Sprintf("%x", p) }
