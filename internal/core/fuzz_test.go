package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// TestAdversarialCrashRecovery is the heavyweight durability fuzz: random
// operation streams are crashed at random persist counts, and — unlike
// the deterministic crash tests — each unflushed dirty cache line
// *independently* survives with some probability, modelling spontaneous
// cache evictions. HART's protocols must not depend on unflushed data
// vanishing: ordering comes from persist boundaries alone, so recovery
// must still produce a consistent, leak-free image.
func TestAdversarialCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial fuzz in -short mode")
	}
	for trial := 0; trial < 40; trial++ {
		seed := int64(1000 + trial)
		rng := rand.New(rand.NewSource(seed))
		h, err := New(Options{ArenaSize: 16 << 20, Tracking: true})
		if err != nil {
			t.Fatal(err)
		}

		committed := map[string]string{}
		inFlight := map[string]bool{}
		crashAt := int64(rng.Intn(3000) + 1)
		h.Arena().FailAfterPersists(crashAt)

		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.CrashError); !ok {
						panic(r)
					}
				}
			}()
			for i := 0; ; i++ {
				k := fmt.Sprintf("%c%c%04d", 'a'+rng.Intn(3), 'a'+rng.Intn(3), rng.Intn(400))
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // put
					v := fmt.Sprintf("v%07d", i)
					inFlight[k] = true
					if err := h.Put([]byte(k), []byte(v)); err != nil {
						t.Error(err)
						return
					}
					committed[k] = v
					delete(inFlight, k)
				case 5, 6: // update existing (if any)
					if _, ok := committed[k]; !ok {
						continue
					}
					v := fmt.Sprintf("u%07d", i)
					inFlight[k] = true
					if err := h.Update([]byte(k), []byte(v)); err != nil {
						t.Error(err)
						return
					}
					committed[k] = v
					delete(inFlight, k)
				case 7, 8: // delete
					inFlight[k] = true
					if err := h.Delete([]byte(k)); err == nil {
						delete(committed, k)
					}
					delete(inFlight, k)
				default: // read
					h.Get([]byte(k))
				}
			}
		}()
		h.Arena().DisarmCrash()

		// Adversarial survival: each dirty line independently survives
		// with probability drawn per trial (0 = strict, 1 = everything).
		prob := []float64{0, 0.25, 0.5, 0.75, 1}[trial%5]
		img, err := h.Arena().Crash(pmem.Config{Tracking: true},
			pmem.CrashOptions{KeepDirtyProb: prob, Rand: rng})
		if err != nil {
			t.Fatal(err)
		}
		h2, err := Open(img, Options{})
		if err != nil {
			t.Fatalf("trial %d (prob %.2f): recovery: %v", trial, prob, err)
		}
		if err := h2.Check(); err != nil {
			t.Fatalf("trial %d (prob %.2f): fsck: %v", trial, prob, err)
		}
		// Every committed record not touched by the in-flight op must be
		// present with its exact value.
		for k, v := range committed {
			if inFlight[k] {
				continue
			}
			got, ok := h2.Get([]byte(k))
			if !ok || string(got) != v {
				t.Fatalf("trial %d (prob %.2f): committed %q = (%q,%v), want %q",
					trial, prob, k, got, ok, v)
			}
		}
		// The store must remain fully operational.
		for i := 0; i < 100; i++ {
			if err := h2.Put([]byte(fmt.Sprintf("post%04d", i)), []byte("p")); err != nil {
				t.Fatalf("trial %d: post-recovery put: %v", trial, err)
			}
		}
		if err := h2.Check(); err != nil {
			t.Fatalf("trial %d: fsck after refill: %v", trial, err)
		}
	}
}

// TestDoubleCrashRecovery crashes, recovers, immediately crashes the
// recovered instance mid-operation, and recovers again — recovery itself
// must be crash-safe (its only PM writes are log completions and sweeps).
func TestDoubleCrashRecovery(t *testing.T) {
	h, err := New(Options{ArenaSize: 16 << 20, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		mustPut(t, h, fmt.Sprintf("dc%04d", i), "v1")
	}
	// Crash mid-update so recovery has an armed update log to complete.
	h.Arena().FailAfterPersists(4)
	func() {
		defer func() { recover() }()
		h.Update([]byte("dc0100"), []byte("v2"))
	}()
	h.Arena().DisarmCrash()
	img, err := h.Arena().DurableImage()
	if err != nil {
		t.Fatal(err)
	}

	// First recovery, itself crashed at each early persist boundary.
	for fail := int64(0); fail < 6; fail++ {
		arena, err := pmem.Attach(append([]byte(nil), img...), pmem.Config{Size: int64(len(img)), Tracking: true})
		if err != nil {
			t.Fatal(err)
		}
		arena.FailAfterPersists(fail)
		var h2 *HART
		func() {
			defer func() { recover() }()
			h2, _ = Open(arena, Options{})
		}()
		arena.DisarmCrash()
		img2Arena := arena
		if h2 != nil {
			img2Arena = h2.Arena()
		}
		img2, err := img2Arena.Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
		if err != nil {
			t.Fatal(err)
		}
		h3, err := Open(img2, Options{})
		if err != nil {
			t.Fatalf("fail=%d: second recovery: %v", fail, err)
		}
		if err := h3.Check(); err != nil {
			t.Fatalf("fail=%d: fsck after double crash: %v", fail, err)
		}
		if got, ok := h3.Get([]byte("dc0100")); !ok || (string(got) != "v1" && string(got) != "v2") {
			t.Fatalf("fail=%d: dc0100 = (%q,%v)", fail, got, ok)
		}
		for i := 0; i < 500; i++ {
			if i == 100 {
				continue
			}
			if got, ok := h3.Get([]byte(fmt.Sprintf("dc%04d", i))); !ok || string(got) != "v1" {
				t.Fatalf("fail=%d: dc%04d damaged: (%q,%v)", fail, i, got, ok)
			}
		}
	}
}
