package core

import (
	"github.com/casl-sdsu/hart/internal/art"
	"github.com/casl-sdsu/hart/internal/epalloc"
	"github.com/casl-sdsu/hart/internal/kv"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// Name implements kv.Index.
func (h *HART) Name() string { return "HART" }

// SizeInfo implements kv.Index (PM/DRAM split, paper Fig. 10b).
func (h *HART) SizeInfo() kv.SizeInfo {
	st := h.Stats()
	return kv.SizeInfo{PMBytes: st.Size.PMBytes, DRAMBytes: st.Size.DRAMBytes}
}

// Compile-time interface checks.
var (
	_ kv.Index       = (*HART)(nil)
	_ kv.Recoverable = (*HART)(nil)
	_ kv.Checkable   = (*HART)(nil)
)

// SizeInfo reports the PM and DRAM footprint of the index, the quantities
// compared in the paper's memory-consumption experiment (Fig. 10b).
type SizeInfo struct {
	// PMBytes is the persistent footprint: every byte reserved from the
	// arena (superblock, chunk lists, free lists).
	PMBytes int64
	// DRAMBytes estimates the volatile footprint: ART internal nodes,
	// in-DRAM leaf headers and the hash directory.
	DRAMBytes int64
}

// Stats aggregates the state of a HART instance.
type Stats struct {
	// Records is the number of live records.
	Records int
	// ARTs is the number of ARTs in the hash directory.
	ARTs int
	// Size is the PM/DRAM footprint.
	Size SizeInfo
	// ART aggregates node counts over all ARTs.
	ART art.Stats
	// Arena is the PM device's counters.
	Arena pmem.Stats
	// Alloc is the allocator's per-class state.
	Alloc []epalloc.ClassStats
}

// hash-directory per-entry DRAM cost estimate: map bucket share + string
// header + shard struct + sorted-slice entry.
const dirEntryCost = 128

// Stats collects statistics. Lock-free: it walks the current directory
// snapshot and each shard's published tree, both immutable. During a
// lazy recovery (PendingShards > 0) unbuilt shards contribute empty
// trees to the DRAM accounting; Records stays exact.
func (h *HART) Stats() Stats {
	st := Stats{
		Records: h.Len(),
		Arena:   h.arena.Stats(),
		Alloc:   h.alloc.Stats(),
	}
	st.Size.PMBytes = st.Arena.Reserved

	dir := h.dir.Load()
	shards := make([]*artShard, 0, dir.Len())
	dir.Range(func(_ []byte, s *artShard) bool {
		shards = append(shards, s)
		return true
	})
	dirBytes := dir.DRAMBytes()

	st.ARTs = len(shards)
	st.Size.DRAMBytes = int64(st.ARTs)*dirEntryCost + dirBytes
	for _, s := range shards {
		ts := s.tree.Load().Stats()
		st.ART.Records += ts.Records
		st.ART.Node4s += ts.Node4s
		st.ART.Node16s += ts.Node16s
		st.ART.Node48s += ts.Node48s
		st.ART.Node256s += ts.Node256s
		if ts.Height > st.ART.Height {
			st.ART.Height = ts.Height
		}
		st.ART.Bytes += ts.Bytes
		st.Size.DRAMBytes += ts.Bytes
	}
	return st
}
