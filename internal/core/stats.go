package core

import (
	"sort"

	"github.com/casl-sdsu/hart/internal/art"
	"github.com/casl-sdsu/hart/internal/epalloc"
	"github.com/casl-sdsu/hart/internal/kv"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// Name implements kv.Index.
func (h *HART) Name() string { return "HART" }

// SizeInfo implements kv.Index (PM/DRAM split, paper Fig. 10b).
func (h *HART) SizeInfo() kv.SizeInfo {
	st := h.Stats()
	return kv.SizeInfo{PMBytes: st.Size.PMBytes, DRAMBytes: st.Size.DRAMBytes}
}

// Compile-time interface checks.
var (
	_ kv.Index       = (*HART)(nil)
	_ kv.Recoverable = (*HART)(nil)
	_ kv.Checkable   = (*HART)(nil)
)

// SizeInfo reports the PM and DRAM footprint of the index, the quantities
// compared in the paper's memory-consumption experiment (Fig. 10b).
type SizeInfo struct {
	// PMBytes is the persistent footprint: every byte reserved from the
	// arena (superblock, chunk lists, free lists).
	PMBytes int64
	// DRAMBytes estimates the volatile footprint: ART internal nodes,
	// in-DRAM leaf headers and the hash directory.
	DRAMBytes int64
}

// Stats aggregates the state of a HART instance.
type Stats struct {
	// Records is the number of live records.
	Records int
	// ARTs is the number of ARTs in the hash directory.
	ARTs int
	// Size is the PM/DRAM footprint.
	Size SizeInfo
	// ART aggregates node counts over all ARTs.
	ART art.Stats
	// Arena is the PM device's counters.
	Arena pmem.Stats
	// Alloc is the allocator's per-class state.
	Alloc []epalloc.ClassStats
	// Dir describes the elastic directory's current geometry and heat.
	Dir DirStats
}

// DirStats describes the hash directory's geometry — flat at BaseDepth
// until elastic splits deepen parts of it — and where the write heat is.
type DirStats struct {
	// Entries is the number of directory entries (== ARTs).
	Entries int
	// BaseDepth is the configured hash-key length; MaxDepth is the
	// longest live entry prefix (== BaseDepth when nothing is split).
	BaseDepth int
	MaxDepth  int
	// Splits is the number of currently persisted split prefixes, out of
	// SplitCap superblock slots.
	Splits   int
	SplitCap int
	// SplitsDone and MergesDone count geometry changes since Open.
	SplitsDone uint64
	MergesDone uint64
	// Hot lists the hottest shards (by heat since the last split/merge
	// decision), descending, at most eight.
	Hot []ShardHeat
}

// ShardHeat is one directory entry's write-activity snapshot.
type ShardHeat struct {
	// Prefix is the entry's directory prefix.
	Prefix string
	// Heat is the write-op count since the last split/merge decision;
	// Ops is the shard's cumulative write count.
	Heat uint64
	Ops  uint64
	// Records is the shard's current tree size (0 for a still-pending
	// lazily recovered shard).
	Records int
}

// hash-directory per-entry DRAM cost estimate: map bucket share + string
// header + shard struct + sorted-slice entry.
const dirEntryCost = 128

// Stats collects statistics. Lock-free: it walks the current directory
// snapshot and each shard's published tree, both immutable. During a
// lazy recovery (PendingShards > 0) unbuilt shards contribute empty
// trees to the DRAM accounting; Records stays exact.
func (h *HART) Stats() Stats {
	st := Stats{
		Records: h.Len(),
		Arena:   h.arena.Stats(),
		Alloc:   h.alloc.Stats(),
	}
	st.Size.PMBytes = st.Arena.Reserved

	d := h.dir.Load()
	type namedShard struct {
		hk string
		s  *artShard
	}
	shards := make([]namedShard, 0, d.tab.Len())
	d.tab.Range(func(hk []byte, s *artShard) bool {
		shards = append(shards, namedShard{string(hk), s})
		return true
	})
	dirBytes := d.tab.DRAMBytes()

	st.ARTs = len(shards)
	st.Size.DRAMBytes = int64(st.ARTs)*dirEntryCost + dirBytes
	st.Dir = DirStats{
		Entries:    len(shards),
		BaseDepth:  h.opts.HashKeyLen,
		MaxDepth:   h.opts.HashKeyLen,
		Splits:     d.splits.Len(),
		SplitCap:   int(sbMaxSplits),
		SplitsDone: h.splitCount.Load(),
		MergesDone: h.mergeCount.Load(),
	}
	for _, ns := range shards {
		ts := ns.s.tree.Load().Stats()
		st.ART.Records += ts.Records
		st.ART.Node4s += ts.Node4s
		st.ART.Node16s += ts.Node16s
		st.ART.Node48s += ts.Node48s
		st.ART.Node256s += ts.Node256s
		if ts.Height > st.ART.Height {
			st.ART.Height = ts.Height
		}
		st.ART.Bytes += ts.Bytes
		st.Size.DRAMBytes += ts.Bytes
		if len(ns.hk) > st.Dir.MaxDepth {
			st.Dir.MaxDepth = len(ns.hk)
		}
		st.Dir.Hot = append(st.Dir.Hot, ShardHeat{
			Prefix:  ns.hk,
			Heat:    ns.s.heat.Load(),
			Ops:     ns.s.ops.Load(),
			Records: ts.Records,
		})
	}
	sort.SliceStable(st.Dir.Hot, func(i, j int) bool { return st.Dir.Hot[i].Heat > st.Dir.Hot[j].Heat })
	if len(st.Dir.Hot) > 8 {
		st.Dir.Hot = st.Dir.Hot[:8]
	}
	return st
}
