// Package core implements HART, the Hash-assisted Adaptive Radix Tree of
// Pan, Xie and Song (IPDPS 2019) — a concurrent, persistent key-value
// index for DRAM-PM hybrid memory.
//
// Structure (paper Fig. 1): a DRAM hash directory maps the first
// HashKeyLen bytes of every key to one ART; the ART indexes the remaining
// key bytes and its leaves live on PM. Internal nodes and the directory
// are volatile and rebuilt by recovery from the persistent leaves
// (selective consistency/persistence, Section III.A.2). PM space for
// leaves and value objects comes from EPallocator (package epalloc), whose
// chunk bitmaps both commit objects and prevent persistent memory leaks.
//
// Concurrency extends Section III.A.3: writers still serialise per ART
// (one RWMutex per shard, so writes to distinct ARTs proceed in parallel),
// but the read path is lock-free. The hash directory is published as an
// immutable snapshot behind an atomic pointer (copy-on-write on the rare
// shard add/remove), each shard's ART is an immutable tree republished by
// copy-on-write mutation, and a per-shard seqlock validates the PM-side
// leaf and value reads. See DESIGN.md, "Read-path concurrency".
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/casl-sdsu/hart/internal/art"
	"github.com/casl-sdsu/hart/internal/cachesim"
	"github.com/casl-sdsu/hart/internal/epalloc"
	"github.com/casl-sdsu/hart/internal/hashdir"
	"github.com/casl-sdsu/hart/internal/latency"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// MaxKeyLen is the maximum key length in bytes (paper Section III.A.5:
// "The maximal key length supported by HART is 24 bytes").
const MaxKeyLen = 24

// MaxValueLen is the largest value object size under the default class
// table; HART supports 8-byte and 16-byte value classes (Section III.A.5)
// and is "easily extended ... by implementing more singly linked-lists of
// value object memory chunks" — Options.ValueClasses realises exactly
// that, growing the limit with the largest configured class.
const MaxValueLen = 16

// DefaultHashKeyLen is the paper's kh: "the hash key length is set to 2".
const DefaultHashKeyLen = 2

// Object classes within the EPallocator. Leaves are class 0; value
// classes follow in ascending size order (classValue0 = 8 B and
// classValue0+1 = 16 B under the default table).
const (
	classLeaf   epalloc.Class = 0
	classValue0 epalloc.Class = 1
)

// Leaf node layout on PM (40 bytes, 8-aligned; paper Fig. 3 stores the
// value out of leaf behind p_value to support variable-size values).
//
//	+0 pValue word (8B): bits 0-55 value-object offset, bits 56-63 value
//	   length. Packing the length beside the pointer keeps the
//	   pointer+length update a single failure-atomic 8-byte store.
//	+8 keyLen (1B)
//	+9 key (MaxKeyLen bytes)
const (
	leafSize    = 40
	lfPValue    = 0
	lfKeyLen    = 8
	lfKey       = 9
	ptrMask     = (uint64(1) << 56) - 1
	valLenShift = 56
)

// packValue encodes a value pointer and its length into the pValue word.
func packValue(p pmem.Ptr, n int) uint64 {
	return uint64(p)&ptrMask | uint64(n)<<valLenShift
}

// unpackValue decodes a pValue word.
func unpackValue(w uint64) (pmem.Ptr, int) {
	return pmem.Ptr(w & ptrMask), int(w >> valLenShift)
}

// Errors returned by HART operations.
var (
	// ErrKeyTooLong reports a key above MaxKeyLen bytes.
	ErrKeyTooLong = errors.New("hart: key exceeds maximum length")
	// ErrEmptyKey reports an empty key.
	ErrEmptyKey = errors.New("hart: empty key")
	// ErrValueTooLong reports a value above MaxValueLen bytes.
	ErrValueTooLong = errors.New("hart: value exceeds maximum length")
	// ErrEmptyValue reports an empty value.
	ErrEmptyValue = errors.New("hart: empty value")
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("hart: key not found")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("hart: index is closed")
)

// Options configures a HART instance.
type Options struct {
	// HashKeyLen is kh, the number of leading key bytes consumed by the
	// hash directory. Default DefaultHashKeyLen.
	HashKeyLen int
	// ArenaSize is the simulated PM capacity in bytes. Default 64 MiB.
	ArenaSize int64
	// Latency selects the PM latency emulation (default: off).
	Latency latency.Config
	// CacheModel attaches a simulated CPU cache for read-latency
	// accounting (required for the paper's 300/300 and 600/300 read
	// penalties to be meaningful).
	CacheModel bool
	// Tracking enables crash simulation on the arena (tests).
	Tracking bool
	// ValueClasses lists the value-object sizes in bytes, each a multiple
	// of 8 in ascending order (default [8, 16], the paper's two classes).
	// A value of n bytes lands in the smallest class that fits it; the
	// largest class bounds the value length.
	ValueClasses []int64
	// RecoveryWorkers parallelises the Algorithm 7 rebuild across that
	// many goroutines, partitioned by hash key (0 or 1 = the paper's
	// serial recovery).
	RecoveryWorkers int
	// LazyRecovery defers the per-shard ART builds out of Open: recovery
	// completes after the update-log replay, leaf scan and consistency
	// sweeps, publishing a directory whose shards hold pending leaf lists
	// instead of trees. A shard's ART is built on its first locked touch,
	// or by DrainRecovery, which callers typically start in the background
	// right after Open. Time-to-first-read becomes nearly independent of
	// store size; durable state is untouched by the deferred builds, so a
	// crash mid-drain recovers exactly like a crash before it.
	LazyRecovery bool
	// LegacyRecovery disables the pipelined recovery and restores the
	// pre-pipeline path: one serial IterateObjects pass per class, a
	// global live-value map, per-leaf directory locking and a second PM
	// key read per leaf on the parallel rebuild. It exists as the
	// measurable "before" baseline for the recovery benchmarks
	// (BENCH_recovery.json); leave it unset otherwise.
	LegacyRecovery bool
	// UnloggedUpdates selects the update mechanism the paper *measured*
	// (Section IV.B: "a pointer to that new value is updated as the last
	// step") instead of the full Algorithm 3 micro-log. It is roughly
	// half the persists per update but can strand one old value object if
	// a crash lands between the pointer swing and the old value's bit
	// reset; the recovery orphan sweep reclaims such strays on the next
	// restart, so the leak is bounded by one recovery period (the
	// baselines leak the same window unboundedly). Default false:
	// Algorithm 3, immediately leak-free.
	UnloggedUpdates bool
	// LockedReads disables the lock-free read path and reproduces the
	// paper's original Section III.A.3 protocol verbatim: Get takes the
	// global directory read lock to resolve the shard, then the shard's
	// read lock for the tree walk and PM reads. It exists as the
	// measurable "before" baseline for the read-path benchmarks
	// (BENCH_readpath.json); leave it unset otherwise.
	LockedReads bool
	// LegacyWritePath disables the scalable write path and restores the
	// pre-striping behaviour: every writer allocates from EPallocator
	// stripe 0, claims micro-log slots through the mutex-serialised pool,
	// and PutBatch republishes the shard's tree once per record. It
	// exists as the measurable "before" baseline for the write-path
	// benchmarks (BENCH_writepath.json); leave it unset otherwise.
	LegacyWritePath bool
	// ElasticDirectory enables hot-shard splitting and cold-group
	// merging (DESIGN.md §13): a shard whose write heat crosses SplitOps
	// is split into children keyed on a one-byte-longer hash prefix, and
	// a delete that leaves a split group small and cold folds it back.
	// Off by default — the directory keeps the paper's fixed-kh shape.
	// Routing always honours split prefixes already persisted in the
	// superblock, so a store shaped by an elastic instance reopens
	// correctly regardless of this flag; the flag only gates *new*
	// geometry changes.
	ElasticDirectory bool
	// SplitOps is the per-shard write-op heat threshold that triggers a
	// split attempt (default DefaultSplitOps). Only meaningful with
	// ElasticDirectory.
	SplitOps int
	// MergeRecords caps the total record count at which a delete may
	// fold a split group back into its parent prefix (default
	// DefaultMergeRecords). Only meaningful with ElasticDirectory.
	MergeRecords int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.HashKeyLen == 0 {
		o.HashKeyLen = DefaultHashKeyLen
	}
	if o.ArenaSize == 0 {
		o.ArenaSize = 64 << 20
	}
	if len(o.ValueClasses) == 0 {
		o.ValueClasses = []int64{8, 16}
	}
	if o.SplitOps == 0 {
		o.SplitOps = DefaultSplitOps
	}
	if o.MergeRecords == 0 {
		o.MergeRecords = DefaultMergeRecords
	}
	return o
}

// validateClasses rejects malformed value-class tables.
func validateClasses(classes []int64) error {
	for i, c := range classes {
		if c <= 0 || c%8 != 0 {
			return fmt.Errorf("hart: value class %d bytes is not a positive multiple of 8", c)
		}
		if i > 0 && c <= classes[i-1] {
			return fmt.Errorf("hart: value classes must be strictly ascending (%d after %d)", c, classes[i-1])
		}
	}
	return nil
}

// artShard is one ART plus its lock (paper Fig. 1: "a lock on each ART").
//
// Readers never take mu on the fast path. They load tree — an immutable
// snapshot republished by copy-on-write mutation — and validate the
// PM-side reads (leaf bit, pValue word, value words) against seq, a
// seqlock writers hold odd for the duration of their critical section.
// The DRAM tree walk needs no validation at all; seq exists because the
// PM slots behind the tree's leaf pointers are reused by the allocator,
// so a stale tree snapshot can point a reader at a slot mid-rewrite.
type artShard struct {
	// seq is the shard's seqlock: incremented to odd at the start of
	// every mutating critical section and back to even at its end.
	seq atomic.Uint64
	// tree is the shard's published ART. Writers (under mu) replace it
	// via art.CowInsert/CowDelete; every node reachable from a published
	// tree is immutable thereafter.
	tree atomic.Pointer[art.Tree]
	mu   sync.RWMutex
	// dead marks a shard removed from the directory after its ART
	// emptied; waiters must re-resolve through the directory. Guarded by
	// mu (the lock-free path never reads it — it revalidates through a
	// fresh directory snapshot instead).
	dead bool
	// pending, when non-nil, holds the shard's leaf list from a lazy
	// recovery (Options.LazyRecovery): the published tree is empty and
	// must not be consulted until the first-touch build stores the real
	// tree and clears pending — in that order, so pending == nil implies
	// the tree is complete. Transitions non-nil → nil exactly once, under
	// mu held exclusively. Optimistic readers treat a non-nil pending as
	// inconclusive and fall back to the locked path, which builds.
	pending atomic.Pointer[pendingLeaves]
	// heat counts write ops against this shard since the last split or
	// merge decision looked at it; ops is the shard's cumulative write
	// count (stats only). Both are bumped while mu is held, which is what
	// makes split/merge decisions deterministic under the model checker's
	// single-threaded replay; they are atomics so Stats can read them
	// without the lock.
	heat atomic.Uint64
	ops  atomic.Uint64
}

// pendingLeaves is a lazily recovered shard's to-do list: the live leaves
// the recovery scan assigned to it, awaiting the first-touch ART build.
type pendingLeaves struct {
	leaves []pmem.Ptr
	// hkLen is the length of the shard's directory prefix, which the
	// first-touch build strips from each leaf's full key to form its ART
	// key. Fixed at kh before the elastic directory; now per-shard,
	// since a recovered split child sits under a longer prefix.
	hkLen int
}

// newShard returns a live shard with an empty published tree.
func newShard() *artShard {
	s := &artShard{}
	s.tree.Store(art.New())
	return s
}

// dirTable is one published directory snapshot: the shard table together
// with the split set that defines how keys route into it. The two are
// swapped as a unit so every reader observes a table under the geometry
// it was built for.
//
// Routing invariant: a directory entry that is a proper prefix of
// another entry holds only the record whose full key equals the entry
// itself — short keys (len < kh) and the residual entries left behind by
// splits. hashdir.Splits.Route resolves any key to exactly one entry
// under this invariant.
type dirTable struct {
	tab    *hashdir.Table[*artShard]
	splits *hashdir.Splits
}

// route returns key's directory prefix under this snapshot's geometry.
func (d *dirTable) route(key []byte, kh int) []byte {
	return d.splits.Route(key, kh)
}

// beginWrite opens a seqlock critical section. Caller holds s.mu.
func (s *artShard) beginWrite() { s.seq.Add(1) }

// endWrite closes it.
func (s *artShard) endWrite() { s.seq.Add(1) }

// HART is one Hash-assisted ART index.
type HART struct {
	opts  Options
	arena *pmem.Arena
	alloc *epalloc.Allocator

	// dir is the published directory snapshot (the paper's hash table
	// plus the split set that defines its routing geometry; see
	// dirTable). Both structures behind the pointer are immutable: shard
	// insertion/removal and geometry changes clone, mutate the clone and
	// swap the pointer. Readers load it with no lock; dirMu serialises
	// the writers performing the clone-and-swap (and doubles as the
	// global read lock of the Options.LockedReads baseline). Lock
	// ordering: shard mutexes before dirMu — removeShardIfEmpty,
	// splitShard and tryMerge all publish while holding shard locks,
	// which is safe because getShard never waits on a shard while
	// holding dirMu.
	dirMu sync.RWMutex
	dir   atomic.Pointer[dirTable]

	// splitSlots mirrors the superblock's split-slot array in slot order
	// (persistSplitRemove needs the index layout, not just the set).
	// Guarded by dirMu.
	splitSlots []string

	// splitCount / mergeCount tally geometry changes since open (stats).
	splitCount atomic.Uint64
	mergeCount atomic.Uint64

	size   atomic.Int64
	closed atomic.Bool

	// pendingShards counts shards still awaiting their lazy-recovery
	// first-touch build. Advisory (DrainRecovery rescans the directory);
	// lets PendingShards and the drain's fast path skip the scan.
	pendingShards atomic.Int64

	// recoveryStats records what the most recent recover() did; written
	// only during recovery (single-threaded), read via LastRecoveryStats.
	recoveryStats RecoveryStats

	// obs holds the instance's counters, gated histograms and event ring
	// (see metrics.go). Zero value is live; no initialisation needed.
	obs coreObs
}

// classSpecs returns the allocator class table, binding the Algorithm 2
// lines 12-16 leaf-reuse repair to h. One value class per configured
// size, exactly the paper's "more singly linked-lists of value object
// memory chunks" extension.
func (h *HART) classSpecs() []epalloc.ClassSpec {
	specs := make([]epalloc.ClassSpec, 0, 1+len(h.opts.ValueClasses))
	specs = append(specs, epalloc.ClassSpec{Name: "leaf", ObjSize: leafSize, OnReuse: h.onLeafReuse})
	for _, size := range h.opts.ValueClasses {
		specs = append(specs, epalloc.ClassSpec{Name: fmt.Sprintf("value%d", size), ObjSize: size})
	}
	return specs
}

// maxValueLen is the largest storable value under the class table.
func (h *HART) maxValueLen() int {
	return int(h.opts.ValueClasses[len(h.opts.ValueClasses)-1])
}

// valueClass returns the smallest class fitting an n-byte value.
func (h *HART) valueClass(n int) epalloc.Class {
	for i, size := range h.opts.ValueClasses {
		if int64(n) <= size {
			return classValue0 + epalloc.Class(i)
		}
	}
	// validate() bounds n by maxValueLen, so this is unreachable.
	panic(fmt.Sprintf("hart: no value class for %d bytes", n))
}

// ArenaConfig translates the options into the PM medium's configuration,
// shared by New and the file-backed openers.
func (o Options) ArenaConfig() pmem.Config {
	o = o.withDefaults()
	var cache *cachesim.Cache
	if o.CacheModel {
		cache = cachesim.Default()
	}
	return pmem.Config{
		Size:     o.ArenaSize,
		Tracking: o.Tracking,
		Latency:  o.Latency,
		Cache:    cache,
	}
}

// New creates a HART over a fresh simulated PM arena.
func New(opts Options) (*HART, error) {
	arena, err := pmem.New(opts.ArenaConfig())
	if err != nil {
		return nil, err
	}
	return NewOnArena(arena, opts)
}

// NewOnArena formats a HART store onto a freshly initialised arena
// (typically a file-backed one from pmem.OpenFileArena). The format is
// crash-safe: the superblock body is persisted first, then the allocator
// state, and the superblock magic last — an arena torn anywhere inside
// the sequence attaches as not-formatted, never as a half-formed store.
func NewOnArena(arena *pmem.Arena, opts Options) (*HART, error) {
	opts = opts.withDefaults()
	if opts.HashKeyLen < 1 || opts.HashKeyLen >= MaxKeyLen {
		return nil, fmt.Errorf("hart: invalid HashKeyLen %d", opts.HashKeyLen)
	}
	if err := validateClasses(opts.ValueClasses); err != nil {
		return nil, err
	}
	h := &HART{opts: opts, arena: arena}
	h.dir.Store(&dirTable{tab: hashdir.New[*artShard](), splits: hashdir.NoSplits()})
	arena.SetPersistSite("format.superblock")
	if err := writeSuperblockBody(arena, opts); err != nil {
		return nil, err
	}
	var err error
	h.alloc, err = epalloc.New(arena, h.classSpecs())
	if err != nil {
		return nil, err
	}
	h.alloc.SetEventRing(&h.obs.events)
	arena.SetPersistSite("format.superblock")
	writeSuperblockMagic(arena)
	h.obs.events.Emit("open", "create", 0, 0)
	return h, nil
}

// Open attaches to an existing arena (a file-backed store, or one
// returned by Arena().Crash in tests) and runs recovery: it completes
// interrupted update logs and rebuilds the hash directory and all ART
// internal nodes from the persistent leaves (Algorithm 7).
//
// Geometry (HashKeyLen, ValueClasses) is read from the store's
// superblock: options left zero adopt the persisted values, options set
// to anything else must match them (ErrGeometryMismatch otherwise). The
// store is marked dirty before recovery completes and stays dirty until
// Close, so an image that skipped Close is identifiable as a crash image
// (RecoveryStats.WasClean).
func Open(arena *pmem.Arena, opts Options) (*HART, error) {
	sb, err := readSuperblock(arena)
	if err != nil {
		return nil, err
	}
	if opts, err = adoptGeometry(opts, sb); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := validateClasses(opts.ValueClasses); err != nil {
		return nil, err
	}
	h := &HART{opts: opts, arena: arena}
	// The initial snapshot already carries the persisted split set:
	// recovery (including the legacy path's per-leaf inserts) routes
	// every leaf through it, rebuilding the exact pre-crash geometry.
	h.adoptSplits(sb)
	h.dir.Store(&dirTable{
		tab:    hashdir.New[*artShard](),
		splits: hashdir.NewSplits(sb.Splits),
	})
	alloc, err := epalloc.Attach(arena, h.classSpecs())
	if err != nil {
		return nil, err
	}
	h.alloc = alloc
	h.alloc.SetEventRing(&h.obs.events)
	h.setCleanFlag(false)
	if err := h.recover(); err != nil {
		return nil, err
	}
	h.recoveryStats.WasClean = sb.Clean
	detail := "dirty"
	if sb.Clean {
		detail = "clean"
	}
	h.obs.events.Emit("open", detail, uint64(h.recoveryStats.LiveLeaves), uint64(h.recoveryStats.CompletedULogs))
	return h, nil
}

// Arena exposes the underlying simulated PM device (stats, crash tests).
func (h *HART) Arena() *pmem.Arena { return h.arena }

// Allocator exposes the EPallocator (stats, fsck).
func (h *HART) Allocator() *epalloc.Allocator { return h.alloc }

// Options returns the instance's configuration.
func (h *HART) Options() Options { return h.opts }

// Len returns the number of stored records.
func (h *HART) Len() int { return int(h.size.Load()) }

// Sync flushes the backing store (a no-op for the simulated arena; an
// msync/fsync for file-backed ones). Individual operations are already
// persistent when they return — Sync only matters for the file backend's
// machine-crash window and its portable write-back fallback.
func (h *HART) Sync() error {
	if h.closed.Load() {
		return ErrClosed
	}
	return h.arena.Sync()
}

// Close marks the index closed, records the clean shutdown in the
// superblock and releases the backing store. Idempotent; concurrent
// operations that lose the race fail with ErrClosed.
func (h *HART) Close() error {
	if h.closed.Swap(true) {
		return nil
	}
	// Deferred lazy-recovery builds touch only DRAM, but finishing them
	// leaves nothing half-installed for a concurrent straggler to trip on.
	h.DrainRecovery()
	h.setCleanFlag(true)
	return h.arena.Close()
}

// stripeOf maps a hash key to its EPallocator stripe, giving every
// writer of one shard the same allocation and micro-log affinity while
// spreading distinct shards across the allocator's striped locks. The
// mapping hashes the hash key — never anything execution-dependent like
// a goroutine identity — so a replayed history allocates from identical
// stripes and produces an identical persist sequence (the determinism
// the crash-consistency checker depends on). In LegacyWritePath mode
// every writer lands on stripe 0, reproducing the single-lock contention
// of the pre-striping allocator.
func (h *HART) stripeOf(hashKey []byte) int {
	if h.opts.LegacyWritePath {
		return 0
	}
	return epalloc.StripeFor(hashKey)
}

// getULog claims a micro-log slot for a writer with the given stripe
// affinity: the lock-free striped claim by default, the mutex-serialised
// global pool in LegacyWritePath mode.
func (h *HART) getULog(stripe int) *epalloc.ULog {
	if h.opts.LegacyWritePath {
		return h.alloc.GetUpdateLog()
	}
	return h.alloc.GetUpdateLogStriped(stripe)
}

// splitKey divides a key into its hash key and ART key (Algorithm 1
// line 1, generalised to the elastic geometry): the hash key is the
// key's routed directory prefix — kh bytes in the base shape, longer
// under an entry that was split — and the ART key is the remainder. Keys
// shorter than kh hash on their full bytes and carry an empty ART key.
//
// The division is only meaningful relative to one directory snapshot; a
// caller that must act on it (every write) re-derives it under the shard
// lock via lockShardW.
func (h *HART) splitKey(key []byte) (hashKey, artKey []byte) {
	hk := h.dir.Load().route(key, h.opts.HashKeyLen)
	return hk, key[len(hk):]
}

// validate rejects out-of-range keys and values.
func (h *HART) validate(key, value []byte) error {
	if h.closed.Load() {
		return ErrClosed
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("%w: %d > %d", ErrKeyTooLong, len(key), MaxKeyLen)
	}
	if value != nil {
		if maxLen := h.maxValueLen(); len(value) > maxLen {
			return fmt.Errorf("%w: %d > %d", ErrValueTooLong, len(value), maxLen)
		}
	}
	return nil
}

// validateWrite additionally requires a non-empty value.
func (h *HART) validateWrite(key, value []byte) error {
	if err := h.validate(key, value); err != nil {
		return err
	}
	if len(value) == 0 {
		return ErrEmptyValue
	}
	return nil
}

// getShard routes key through the current directory snapshot and returns
// its shard plus the routed hash key, optionally creating the shard
// (HashInsert, Algorithm 1 lines 3-5). Lookup is a lock-free read of the
// snapshot; creation re-routes under dirMu — the geometry may have
// changed since the optimistic route, and inserting under a stale prefix
// would resurrect an entry a split just removed — then clones the table
// and publishes the clone. The returned shard is unlocked; a caller that
// locks it must re-check shard.dead and retry, since an emptied, split
// or merged shard may have left the directory meanwhile.
func (h *HART) getShard(key []byte, create bool) (*artShard, []byte) {
	d := h.dir.Load()
	hk := d.route(key, h.opts.HashKeyLen)
	s, ok := d.tab.Get(hk)
	if ok || !create {
		return s, hk
	}
	h.dirMu.Lock()
	defer h.dirMu.Unlock()
	cur := h.dir.Load()
	hk = cur.route(key, h.opts.HashKeyLen)
	if s, ok = cur.tab.Get(hk); ok {
		return s, hk
	}
	s = newShard()
	nu := cur.tab.Clone()
	nu.Put(hk, s)
	h.dir.Store(&dirTable{tab: nu, splits: cur.splits})
	h.obs.dirPublish.Add(1)
	return s, hk
}

// lockShardW locates and write-locks the shard owning key, handling the
// removed-shard race: every retry re-routes the full key, so a writer
// that lost its shard to a split or merge lands on the entry the current
// geometry assigns it. Returns the shard and its routed hash key (the
// caller's ART key is key[len(hashKey):]); the shard is nil when create
// is false and the route resolves to no entry.
func (h *HART) lockShardW(key []byte, create bool) (*artShard, []byte) {
	for {
		s, hk := h.getShard(key, create)
		if s == nil {
			return nil, hk
		}
		s.mu.Lock()
		if !s.dead {
			if s.pending.Load() != nil {
				h.buildPending(s)
			}
			return s, hk
		}
		s.mu.Unlock()
	}
}

// lockShardR locates and read-locks the shard owning key. It is the
// slow path: optimistic readers that exhausted their retries, plus the
// stats/check paths that need a stable shard. In LockedReads mode the
// directory lookup additionally passes through dirMu, reproducing the
// paper's original two-lock read sequence for benchmarking.
func (h *HART) lockShardR(key []byte) (*artShard, []byte) {
	for {
		var (
			s  *artShard
			hk []byte
		)
		if h.opts.LockedReads {
			h.dirMu.RLock()
			d := h.dir.Load()
			hk = d.route(key, h.opts.HashKeyLen)
			s, _ = d.tab.Get(hk)
			h.dirMu.RUnlock()
		} else {
			s, hk = h.getShard(key, false)
		}
		if s == nil {
			return nil, nil
		}
		if s.pending.Load() != nil {
			// Lazily recovered shard not yet built: upgrade to the write
			// lock for the first-touch build, then retry the read lock.
			h.drainShard(s)
			continue
		}
		s.mu.RLock()
		if !s.dead {
			return s, hk
		}
		s.mu.RUnlock()
	}
}

// removeShardIfEmpty frees an ART whose last record was deleted
// (Algorithm 5 lines 15-16). Caller holds s.mu and an open seqlock
// section; publishing the shrunken directory happens inside it, so an
// optimistic reader holding the old snapshot either validates against
// the still-even seq of the (empty) dead shard or retries.
func (h *HART) removeShardIfEmpty(hashKey []byte, s *artShard) {
	if !s.tree.Load().Empty() {
		return
	}
	s.dead = true
	h.dirMu.Lock()
	defer h.dirMu.Unlock()
	cur := h.dir.Load()
	nu := cur.tab.Clone()
	if nu.Delete(hashKey) {
		h.dir.Store(&dirTable{tab: nu, splits: cur.splits})
		h.obs.dirPublish.Add(1)
	}
}

// NumARTs returns the number of live ARTs (the paper's maximum write
// concurrency).
func (h *HART) NumARTs() int {
	return h.dir.Load().tab.Len()
}

// leafKey reads the full key stored in a leaf.
func (h *HART) leafKey(leaf pmem.Ptr) []byte {
	n := int(h.arena.Read1(leaf + lfKeyLen))
	if n > MaxKeyLen {
		n = MaxKeyLen
	}
	key := make([]byte, n)
	h.arena.ReadAt(leaf+lfKey, key)
	return key
}

// leafValue reads the value referenced by a leaf.
func (h *HART) leafValue(leaf pmem.Ptr) []byte {
	vp, n := unpackValue(h.arena.Read8(leaf + lfPValue))
	if vp.IsNil() || n == 0 || n > h.maxValueLen() {
		return nil
	}
	v := make([]byte, n)
	h.arena.ReadAt(vp, v)
	return v
}

// onLeafReuse is the Algorithm 2 lines 12-16 repair hook: when a leaf slot
// is handed out and its stale p_value still references a committed value
// object, the crash happened between value-bit set and leaf-bit set of a
// previous insertion (or between the bit resets of a deletion); the value
// is unreachable and must be reclaimed before the slot is reused.
func (h *HART) onLeafReuse(leaf pmem.Ptr) {
	w := h.arena.Read8(leaf + lfPValue)
	vp, _ := unpackValue(w)
	if vp.IsNil() {
		return
	}
	set, err := h.alloc.BitIsSet(vp)
	if err == nil && set {
		if err := h.alloc.ResetBit(vp); err == nil {
			_ = h.alloc.RecycleIfPresent(vp)
		}
	}
	h.arena.Write8(leaf+lfPValue, 0)
	h.arena.Persist(leaf+lfPValue, 8)
}
