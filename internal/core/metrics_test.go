package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/casl-sdsu/hart/internal/pmem"
)

func TestMetricsCounters(t *testing.T) {
	h := newHART(t)
	for i := 0; i < 100; i++ {
		mustPut(t, h, fmt.Sprintf("mc%04d", i), "v1")
	}
	for i := 0; i < 50; i++ {
		mustPut(t, h, fmt.Sprintf("mc%04d", i), "v2") // updates
	}
	for i := 0; i < 30; i++ {
		if _, ok := h.Get([]byte(fmt.Sprintf("mc%04d", i))); !ok {
			t.Fatal("get miss on present key")
		}
	}
	for i := 0; i < 10; i++ {
		if _, ok := h.Get([]byte(fmt.Sprintf("absent%02d", i))); ok {
			t.Fatal("get hit on absent key")
		}
	}
	for i := 0; i < 20; i++ {
		if err := h.Delete([]byte(fmt.Sprintf("mc%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Delete([]byte("absent-del")); err != ErrNotFound {
		t.Fatalf("Delete(absent) = %v, want ErrNotFound", err)
	}
	n := 0
	h.Scan(nil, nil, func(k, v []byte) bool { n++; return true })

	m := h.Metrics()
	c := m.Counters
	want := map[string]uint64{
		"ops.put":          150,
		"ops.insert":       100,
		"ops.update":       50,
		"ops.get":          40,
		"ops.get_miss":     10,
		"ops.delete":       20,
		"ops.delete_miss":  1,
		"ops.scan":         1,
		"ops.scan_records": uint64(n),
	}
	for name, w := range want {
		if c[name] != w {
			t.Errorf("counter %s = %d, want %d", name, c[name], w)
		}
	}
	if c["pm.persists"] == 0 || c["pm.writes"] == 0 {
		t.Error("pm counters should be non-zero after writes")
	}
	if c["dir.entries"] == 0 || c["dir.republish"] == 0 {
		t.Error("dir counters should be non-zero after inserts")
	}
	// Histograms are gated and disabled by default.
	if len(m.Hists) != 0 {
		t.Errorf("disabled metrics should report no histograms, got %v", m.Hists)
	}
}

func TestMetricsHistogramsWhenEnabled(t *testing.T) {
	h := newHART(t)
	h.EnableMetrics(true)
	if !h.MetricsEnabled() {
		t.Fatal("MetricsEnabled should report true")
	}
	for i := 0; i < 64; i++ {
		mustPut(t, h, fmt.Sprintf("he%04d", i), "v")
	}
	for i := 0; i < 64; i++ {
		h.Get([]byte(fmt.Sprintf("he%04d", i)))
	}
	h.Scan(nil, nil, func(k, v []byte) bool { return true })
	if _, err := h.PutBatch([]Record{{Key: []byte("hb1"), Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete([]byte("he0000")); err != nil {
		t.Fatal(err)
	}

	m := h.Metrics()
	for _, name := range []string{"ops.get", "ops.put", "ops.delete", "ops.scan", "ops.put_batch", "pm.persist"} {
		hv, ok := m.Hists[name]
		if !ok {
			t.Fatalf("histogram %q missing with metrics enabled (have %v)", name, m.Hists)
		}
		if hv.Count == 0 || hv.P99Ns == 0 || hv.MaxNs == 0 {
			t.Errorf("histogram %q has empty summary: %+v", name, hv)
		}
		if hv.P50Ns > hv.P95Ns || hv.P95Ns > hv.P99Ns {
			t.Errorf("histogram %q quantiles not monotone: %+v", name, hv)
		}
	}
	// Get/Put timing is sampled (one in 2^obs.SampleShift); the first call
	// per stripe hits, so 64 ops record at least one and at most all.
	if got := m.Hists["ops.get"].Count; got < 1 || got > 64 {
		t.Errorf("ops.get histogram count = %d, want within [1, 64]", got)
	}
	// Delete/Scan/PutBatch are timed unsampled: exactly one record each.
	for _, name := range []string{"ops.delete", "ops.scan", "ops.put_batch"} {
		if got := m.Hists[name].Count; got != 1 {
			t.Errorf("%s histogram count = %d, want 1 (unsampled)", name, got)
		}
	}

	h.EnableMetrics(false)
	before := h.Metrics().Hists["ops.get"].Count
	h.Get([]byte("he0001"))
	if after := h.Metrics().Hists["ops.get"].Count; after != before {
		t.Errorf("disabled histogram still recording: %d -> %d", before, after)
	}
}

// TestMetricsZeroAllocDisabledGet asserts the acceptance criterion that
// the disabled-metrics read path performs no heap allocation: the gated
// wrapper and the always-on counters must not push GetInto's stack
// buffer or the counter stripe selection onto the heap.
func TestMetricsZeroAllocDisabledGet(t *testing.T) {
	h := newHART(t)
	key := []byte("za-key")
	mustPut(t, h, string(key), "value")
	buf := make([]byte, 0, MaxValueLen)
	allocs := testing.AllocsPerRun(200, func() {
		v, ok := h.GetInto(key, buf)
		if !ok || len(v) == 0 {
			t.Fatal("lookup failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("GetInto with metrics disabled allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if !h.Contains(key) {
			t.Fatal("Contains failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Contains with metrics disabled allocates %.1f/op, want 0", allocs)
	}
}

// TestStatsMetricsRace hammers the consistent-snapshot paths — Stats()
// and Metrics() — against concurrent writers; run under -race it proves
// both observe only published immutable state.
func TestStatsMetricsRace(t *testing.T) {
	h := newHART(t)
	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("r%d-%04d", w, i%200))
				switch i % 3 {
				case 0, 1:
					if err := h.Put(k, []byte("val")); err != nil {
						t.Error(err)
						return
					}
				case 2:
					h.Delete(k)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		st := h.Stats()
		if st.Records < 0 {
			t.Errorf("negative record count %d", st.Records)
		}
		m := h.Metrics()
		if e := m.Counters["dir.entries"]; e > 0 && m.Counters["ops.insert"]+1 < e {
			// Every directory entry (beyond a possible residual) required
			// at least one insert; a grossly inconsistent snapshot would
			// trip this.
			t.Errorf("inserts %d < entries %d", m.Counters["ops.insert"], e)
		}
	}
	close(stop)
	wg.Wait()
}

func TestMetricsEventsAcrossRecovery(t *testing.T) {
	h := newHART(t)
	for i := 0; i < 200; i++ {
		mustPut(t, h, fmt.Sprintf("ev%04d", i), "v")
	}
	img, err := h.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Open(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range h2.Events() {
		kinds[ev.Kind]++
	}
	if kinds["recover.phase"] != 4 {
		t.Errorf("want 4 recover.phase events (ulog/scan/sweep/build), got %d in %v", kinds["recover.phase"], kinds)
	}
	if kinds["open"] != 1 {
		t.Errorf("want one open event, got %d", kinds["open"])
	}
	for _, ev := range h2.Events() {
		if ev.Kind == "open" && ev.Detail != "dirty" {
			t.Errorf("open after crash image should be dirty, got %q", ev.Detail)
		}
	}
}
