package core

import (
	"bytes"
	"fmt"

	"github.com/casl-sdsu/hart/internal/epalloc"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// Check is HART's fsck. It validates the allocator's invariants and the
// cross-layer invariants between the volatile index and persistent memory:
//
//  1. Every committed leaf (leaf bit set) is indexed by exactly one ART
//     under exactly its stored key, and vice versa.
//  2. Every committed leaf references a committed value object of the
//     class matching its value length.
//  3. Every committed value object is referenced by exactly one committed
//     leaf, or — transiently, after a crash between an insertion's value
//     commit and leaf commit — by exactly one *uncommitted* leaf slot,
//     which makes it reclaimable by the next allocation of that slot
//     (Algorithm 2 lines 12-16). Anything else is a persistent leak.
//
// Check takes every shard's read lock, so it excludes writers. It demands
// full allocator quiescence (epalloc.CheckQuiescent): callers run fsck
// between operations or after recovery, where an in-flight slot or a
// busy/armed update log means a write path leaked on its way out.
func (h *HART) Check() error {
	if err := h.checkSuperblock(); err != nil {
		return err
	}
	if err := h.alloc.CheckQuiescent(); err != nil {
		return err
	}
	// A lazily recovered index is consistent but not yet comparable (the
	// pending shards' trees are empty); finish the builds first.
	h.DrainRecovery()

	// PM side: committed leaves, and the stale value references of dead
	// leaf slots (the reclaimable set).
	liveLeaf := make(map[pmem.Ptr]bool)
	deadRef := make(map[pmem.Ptr]int)
	if err := h.alloc.IterateObjects(classLeaf, func(leaf pmem.Ptr, used bool) bool {
		if used {
			liveLeaf[leaf] = true
		} else if vp, _ := unpackValue(h.arena.Read8(leaf + lfPValue)); !vp.IsNil() {
			deadRef[vp]++
		}
		return true
	}); err != nil {
		return err
	}

	// Volatile side: every tree entry must be a committed leaf whose
	// stored key matches its position in the index.
	d := h.dir.Load()
	type namedShard struct {
		hk string
		s  *artShard
	}
	shards := make([]namedShard, 0, d.tab.Len())
	d.tab.Range(func(hk []byte, s *artShard) bool {
		shards = append(shards, namedShard{string(hk), s})
		return true
	})

	valueRefs := make(map[pmem.Ptr]int)
	indexed := 0
	for _, ns := range shards {
		var shardErr error
		ns.s.mu.RLock()
		ns.s.tree.Load().Ascend(func(artKey []byte, leafW uint64) bool {
			leaf := pmem.Ptr(leafW)
			indexed++
			if !liveLeaf[leaf] {
				shardErr = fmt.Errorf("hart: indexed leaf %d has no committed bit", leaf)
				return false
			}
			delete(liveLeaf, leaf)
			wantKey := append([]byte(ns.hk), artKey...)
			if gotKey := h.leafKey(leaf); !bytes.Equal(gotKey, wantKey) {
				shardErr = fmt.Errorf("hart: leaf %d stores key %q but is indexed under %q", leaf, gotKey, wantKey)
				return false
			}
			// Elastic routing invariant: the entry holding the leaf must be
			// the one the current geometry routes its key to — a violation
			// means a split/merge stranded a record where lookups cannot
			// find it.
			if rk := d.splits.Route(wantKey, h.opts.HashKeyLen); string(rk) != ns.hk {
				shardErr = fmt.Errorf("hart: leaf %d (key %q) indexed under %q but routes to %q",
					leaf, wantKey, ns.hk, rk)
				return false
			}
			vp, n := unpackValue(h.arena.Read8(leaf + lfPValue))
			if vp.IsNil() || n < 1 || n > h.maxValueLen() {
				shardErr = fmt.Errorf("hart: leaf %d has invalid value word (ptr=%d len=%d)", leaf, vp, n)
				return false
			}
			if c, err := h.alloc.ClassOf(vp); err != nil || c != h.valueClass(n) {
				shardErr = fmt.Errorf("hart: leaf %d value %d in class %v, want %v (err %v)",
					leaf, vp, c, h.valueClass(n), err)
				return false
			}
			if set, err := h.alloc.BitIsSet(vp); err != nil || !set {
				shardErr = fmt.Errorf("hart: leaf %d references uncommitted value %d", leaf, vp)
				return false
			}
			valueRefs[vp]++
			return true
		})
		ns.s.mu.RUnlock()
		if shardErr != nil {
			return shardErr
		}
	}

	for leaf := range liveLeaf {
		return fmt.Errorf("hart: committed leaf %d (key %q) is not indexed — lost record",
			leaf, h.leafKey(leaf))
	}
	if indexed != h.Len() {
		return fmt.Errorf("hart: size counter %d but %d leaves indexed", h.Len(), indexed)
	}

	// Value-object accounting: exactly-one live reference, or reclaimable.
	for i := range h.opts.ValueClasses {
		c := classValue0 + epalloc.Class(i)
		var classErr error
		if err := h.alloc.IterateObjects(c, func(vp pmem.Ptr, used bool) bool {
			if !used {
				return true
			}
			switch refs := valueRefs[vp]; {
			case refs == 1:
			case refs > 1:
				classErr = fmt.Errorf("hart: value %d referenced by %d leaves", vp, refs)
				return false
			case deadRef[vp] > 0:
				// Reclaimable orphan: committed value referenced only by a
				// dead leaf slot; the next reuse of that slot repairs it.
			default:
				classErr = fmt.Errorf("hart: value %d is committed but unreachable — persistent leak", vp)
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if classErr != nil {
			return classErr
		}
	}
	return nil
}
