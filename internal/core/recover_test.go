package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// recoveryFixture builds a store with inserts, updates and deletes, and
// returns its durable image plus the reference contents.
func recoveryFixture(t *testing.T, n int) ([]byte, map[string]string) {
	t.Helper()
	h, err := New(Options{ArenaSize: 16 << 20, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	ref := map[string]string{}
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%c%c%05d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(10*n))
		v := fmt.Sprintf("v%06d", i)
		if err := h.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		if _, dup := ref[k]; !dup {
			keys = append(keys, k)
		}
		ref[k] = v
	}
	// Deletes and updates so recovery sees reused slots and both value
	// classes' churn.
	for i := 0; i < len(keys); i += 3 {
		if err := h.Delete([]byte(keys[i])); err != nil {
			t.Fatal(err)
		}
		delete(ref, keys[i])
	}
	for i := 1; i < len(keys); i += 5 {
		if _, live := ref[keys[i]]; !live {
			continue
		}
		v := fmt.Sprintf("upd%05d", i)
		if err := h.Put([]byte(keys[i]), []byte(v)); err != nil {
			t.Fatal(err)
		}
		ref[keys[i]] = v
	}
	img, err := h.Arena().DurableImage()
	if err != nil {
		t.Fatal(err)
	}
	return img, ref
}

// openImage attaches a private copy of img and opens it with opts.
func openImage(t *testing.T, img []byte, opts Options) *HART {
	t.Helper()
	arena, err := pmem.Attach(append([]byte(nil), img...), pmem.Config{Size: int64(len(img)), Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Open(arena, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// assertContents checks Len, every reference Get, and (optionally) the
// ordered key stream against want.
func assertContents(t *testing.T, h *HART, ref map[string]string, wantKeys [][]byte, mode string) {
	t.Helper()
	if h.Len() != len(ref) {
		t.Fatalf("%s: Len = %d, want %d", mode, h.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := h.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("%s: Get(%q) = (%q, %v), want %q", mode, k, got, ok, v)
		}
	}
	if wantKeys != nil {
		keys := h.Keys()
		if len(keys) != len(wantKeys) {
			t.Fatalf("%s: %d keys, want %d", mode, len(keys), len(wantKeys))
		}
		for i := range keys {
			if !bytes.Equal(keys[i], wantKeys[i]) {
				t.Fatalf("%s: key stream differs at %d: %q vs %q", mode, i, keys[i], wantKeys[i])
			}
		}
	}
}

// TestRecoveryModeEquivalence: every recovery configuration — legacy
// serial, legacy parallel, pipelined serial, pipelined parallel, lazy
// (drained and first-touch) — produces exactly the same index and the
// same RecoveryStats inventory from the same durable image.
func TestRecoveryModeEquivalence(t *testing.T) {
	img, ref := recoveryFixture(t, 4000)

	base := openImage(t, img, Options{LegacyRecovery: true})
	baseKeys := base.Keys()
	baseStats := base.LastRecoveryStats()
	assertContents(t, base, ref, nil, "legacy-serial")

	modes := []struct {
		name string
		opts Options
	}{
		{"legacy-parallel", Options{LegacyRecovery: true, RecoveryWorkers: 8}},
		{"pipelined-serial", Options{}},
		{"pipelined-parallel", Options{RecoveryWorkers: 8}},
		{"lazy", Options{LazyRecovery: true, RecoveryWorkers: 8}},
		{"lazy-serial", Options{LazyRecovery: true}},
	}
	for _, m := range modes {
		h := openImage(t, img, m.opts)
		st := h.LastRecoveryStats()
		if st.CompletedULogs != baseStats.CompletedULogs ||
			st.LiveLeaves != baseStats.LiveLeaves ||
			st.StaleSlotsZeroed != baseStats.StaleSlotsZeroed ||
			st.OrphanValues != baseStats.OrphanValues {
			t.Fatalf("%s: RecoveryStats diverge: %+v vs %+v", m.name, st, baseStats)
		}
		if m.opts.LazyRecovery {
			// First-touch reads before any drain must already be correct.
			for k, v := range ref {
				got, ok := h.Get([]byte(k))
				if !ok || string(got) != v {
					t.Fatalf("%s pre-drain: Get(%q) = (%q, %v), want %q", m.name, k, got, ok, v)
				}
				break
			}
			h.DrainRecovery()
			if p := h.PendingShards(); p != 0 {
				t.Fatalf("%s: %d shards still pending after drain", m.name, p)
			}
		}
		assertContents(t, h, ref, baseKeys, m.name)
		if err := h.Check(); err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
	}
}

// TestRecoveryStatsCrashEquivalence: recovery from a mid-operation crash
// image finds and repairs the same inventory (ulogs, stale slots, orphan
// values) under the legacy, pipelined and lazy paths.
func TestRecoveryStatsCrashEquivalence(t *testing.T) {
	for fail := int64(0); ; fail++ {
		h, err := New(Options{ArenaSize: 16 << 20, Tracking: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			mustPut(t, h, fmt.Sprintf("pre%03d", i), "stable")
		}
		h.Arena().FailAfterPersists(fail)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, isCrash := r.(pmem.CrashError); !isCrash {
						panic(r)
					}
					crashed = true
				}
			}()
			_ = h.Put([]byte("pre007"), []byte("updated")) // update: exercises the ulog
			_ = h.Delete([]byte("pre011"))
		}()
		h.Arena().DisarmCrash()
		if !crashed {
			break
		}
		img, err := h.Arena().DurableImage()
		if err != nil {
			t.Fatal(err)
		}
		base := openImage(t, img, Options{LegacyRecovery: true})
		want := base.LastRecoveryStats()
		for _, opts := range []Options{
			{RecoveryWorkers: 8},
			{LazyRecovery: true, RecoveryWorkers: 8},
		} {
			h2 := openImage(t, img, opts)
			st := h2.LastRecoveryStats()
			if st.CompletedULogs != want.CompletedULogs ||
				st.LiveLeaves != want.LiveLeaves ||
				st.StaleSlotsZeroed != want.StaleSlotsZeroed ||
				st.OrphanValues != want.OrphanValues {
				t.Fatalf("fail=%d lazy=%v: stats diverge: %+v vs %+v", fail, opts.LazyRecovery, st, want)
			}
			if err := h2.Check(); err != nil {
				t.Fatalf("fail=%d lazy=%v: %v", fail, opts.LazyRecovery, err)
			}
		}
	}
}

// TestLazyRecoveryFirstTouch: a lazily recovered store serves reads,
// writes and scans before any drain, building shards on first touch;
// PendingShards decreases monotonically to zero.
func TestLazyRecoveryFirstTouch(t *testing.T) {
	img, ref := recoveryFixture(t, 3000)
	h := openImage(t, img, Options{LazyRecovery: true, RecoveryWorkers: 4})
	pend0 := h.PendingShards()
	if pend0 == 0 {
		t.Fatal("no pending shards after lazy open")
	}
	if h.Len() != len(ref) {
		t.Fatalf("Len = %d before drain, want %d", h.Len(), len(ref))
	}

	// Reads on untouched shards.
	seen := 0
	for k, v := range ref {
		got, ok := h.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("pre-drain Get(%q) = (%q, %v), want %q", k, got, ok, v)
		}
		if seen++; seen >= 50 {
			break
		}
	}
	if p := h.PendingShards(); p >= pend0 {
		t.Fatalf("PendingShards did not shrink on first touch: %d -> %d", pend0, p)
	}

	// Writes on (possibly) untouched shards.
	mustPut(t, h, "zz-new-key", "zz-new-val")
	ref["zz-new-key"] = "zz-new-val"
	for k := range ref {
		if err := h.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
		delete(ref, k)
		break
	}

	// A full scan touches every shard: equivalent to a drain.
	if got := len(h.Keys()); got != len(ref) {
		t.Fatalf("scan saw %d keys, want %d", got, len(ref))
	}
	if p := h.PendingShards(); p != 0 {
		t.Fatalf("%d shards pending after full scan", p)
	}
	assertContents(t, h, ref, nil, "post-scan")
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestLazyRecoveryCrashMidDrain: the deferred builds write nothing to PM,
// so a durable image captured with shards still pending recovers exactly
// like one captured before (or after) the drain.
func TestLazyRecoveryCrashMidDrain(t *testing.T) {
	img, ref := recoveryFixture(t, 3000)
	h := openImage(t, img, Options{LazyRecovery: true, RecoveryWorkers: 4})
	// Partially drain: touch a few shards.
	seen := 0
	for k := range ref {
		h.Get([]byte(k))
		if seen++; seen >= 10 {
			break
		}
	}
	if h.PendingShards() == 0 {
		t.Fatal("fixture too small: nothing left pending")
	}
	mid, err := h.Arena().DurableImage()
	if err != nil {
		t.Fatal(err)
	}
	h2 := openImage(t, mid, Options{RecoveryWorkers: 4})
	assertContents(t, h2, ref, nil, "reopen-mid-drain")
	if err := h2.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestRebuildVisibility: concurrent readers never observe a missing key
// while Rebuild replaces the index (the replacement is built privately
// and published atomically — the old code exposed an empty directory).
func TestRebuildVisibility(t *testing.T) {
	h := newHART(t)
	const n = 500
	for i := 0; i < n; i++ {
		mustPut(t, h, fmt.Sprintf("key%04d", i), "stable")
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := []byte(fmt.Sprintf("key%04d", g*17))
			for !stop.Load() {
				if v, ok := h.Get(k); !ok || string(v) != "stable" {
					errc <- fmt.Errorf("reader lost %q mid-rebuild: (%q, %v)", k, v, ok)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		if err := h.Rebuild(); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if h.Len() != n {
		t.Fatalf("Len = %d after rebuilds, want %d", h.Len(), n)
	}
}

// TestRecoveryStatsPhases: the per-phase breakdown is populated and the
// configuration echo matches the options.
func TestRecoveryStatsPhases(t *testing.T) {
	img, ref := recoveryFixture(t, 2000)
	h := openImage(t, img, Options{RecoveryWorkers: 4})
	st := h.LastRecoveryStats()
	if st.Workers != 4 || st.Lazy || st.PendingShards != 0 {
		t.Fatalf("config echo wrong: %+v", st)
	}
	if st.LiveLeaves != len(ref) {
		t.Fatalf("LiveLeaves = %d, want %d", st.LiveLeaves, len(ref))
	}
	if st.ScanNs <= 0 || st.BuildNs <= 0 {
		t.Fatalf("phase timings not populated: %+v", st)
	}
	lz := openImage(t, img, Options{LazyRecovery: true, RecoveryWorkers: 4})
	st = lz.LastRecoveryStats()
	if !st.Lazy || st.PendingShards == 0 || st.PendingShards != lz.PendingShards() {
		t.Fatalf("lazy echo wrong: %+v (pending now %d)", st, lz.PendingShards())
	}
}
