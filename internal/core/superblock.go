package core

import (
	"errors"
	"fmt"
	"slices"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// HART superblock: the store's own persistent identity record, living in
// the arena's application label area (pmem.LabelBase — a fixed offset
// readable before any allocator state is interpreted). It pins down what
// a caller previously had to remember out of band, closing the "Restore
// must be given the same table" footgun:
//
//	+0  magic (8B, "HARTCORE"); written last during format, so a torn
//	    format reads as not-formatted rather than half-formatted
//	+8  format version (8B)
//	+16 HashKeyLen (8B) — kh, the hash-directory routing width
//	+24 number of value classes (8B)
//	+32 flags (8B): bit 0 = clean shutdown (set by Close, cleared by
//	    Open before serving traffic)
//	+40 reserved (8B)
//	+48 value-class sizes (8B each, ascending)
//
// Geometry (HashKeyLen, ValueClasses) is structural: leaves were split
// and values were binned under it, so attaching with different geometry
// would misindex every record. Open therefore adopts the superblock's
// geometry when the caller left the options zero, and refuses the attach
// when the caller named conflicting values.
//
// The clean flag is diagnostic, not load-bearing: recovery always runs on
// attach (it is cheap and idempotent), so a lost flag can never lose
// data. It tells operators — via RecoveryStats.WasClean and hartfsck —
// whether the image was closed properly or is a crash image.
const (
	sbBase pmem.Ptr = pmem.LabelBase

	sbMagic   = 0x48415254434f5245 // "HARTCORE"
	sbVersion = 1

	sbOffMagic      = 0
	sbOffVersion    = 8
	sbOffHashKeyLen = 16
	sbOffNumClasses = 24
	sbOffFlags      = 32
	sbOffClasses    = 48

	sbFlagClean = 1 << 0

	// sbMaxClasses is the label area's capacity for class sizes; the
	// allocator's MaxClasses (16, one taken by the leaf class) binds
	// first, so this never constrains a valid configuration.
	sbMaxClasses = (int64(pmem.LabelSize) - sbOffClasses) / 8
)

// Superblock attach errors.
var (
	// ErrNotFormatted reports an arena with no (complete) HART superblock:
	// never formatted, a pre-superblock image, or a format torn before the
	// magic was persisted.
	ErrNotFormatted = errors.New("hart: arena holds no HART superblock")
	// ErrVersionMismatch reports a superblock written by an incompatible
	// format version.
	ErrVersionMismatch = errors.New("hart: superblock format version not supported")
	// ErrGeometryMismatch reports options naming a geometry (HashKeyLen,
	// ValueClasses) different from the one the store was created with.
	ErrGeometryMismatch = errors.New("hart: options conflict with the store's superblock geometry")
)

// superblock is the decoded persistent identity record.
type superblock struct {
	Version      int
	HashKeyLen   int
	ValueClasses []int64
	Clean        bool
}

// writeSuperblockBody persists every superblock field except the magic.
// Format order is body → allocator format → magic (writeSuperblockMagic),
// so a crash mid-format leaves an arena that attaches as not-formatted.
func writeSuperblockBody(arena *pmem.Arena, opts Options) error {
	if int64(len(opts.ValueClasses)) > sbMaxClasses {
		return fmt.Errorf("hart: %d value classes exceed the superblock capacity %d",
			len(opts.ValueClasses), sbMaxClasses)
	}
	arena.Write8(sbBase+sbOffVersion, sbVersion)
	arena.Write8(sbBase+sbOffHashKeyLen, uint64(opts.HashKeyLen))
	arena.Write8(sbBase+sbOffNumClasses, uint64(len(opts.ValueClasses)))
	arena.Write8(sbBase+sbOffFlags, 0) // born dirty; Close marks clean
	for i, c := range opts.ValueClasses {
		arena.Write8(sbBase+sbOffClasses+pmem.Ptr(i*8), uint64(c))
	}
	arena.Persist(sbBase, int(pmem.LabelSize))
	return nil
}

// writeSuperblockMagic commits the superblock: after this persist the
// arena attaches as a formatted HART store.
func writeSuperblockMagic(arena *pmem.Arena) {
	arena.Write8(sbBase+sbOffMagic, sbMagic)
	arena.Persist(sbBase+sbOffMagic, 8)
}

// readSuperblock decodes and validates the superblock of an existing
// arena.
func readSuperblock(arena *pmem.Arena) (superblock, error) {
	var sb superblock
	if arena.Read8(sbBase+sbOffMagic) != sbMagic {
		return sb, ErrNotFormatted
	}
	sb.Version = int(arena.Read8(sbBase + sbOffVersion))
	if sb.Version != sbVersion {
		return sb, fmt.Errorf("%w: image version %d, this build reads %d",
			ErrVersionMismatch, sb.Version, sbVersion)
	}
	sb.HashKeyLen = int(arena.Read8(sbBase + sbOffHashKeyLen))
	if sb.HashKeyLen < 1 || sb.HashKeyLen >= MaxKeyLen {
		return sb, fmt.Errorf("hart: superblock HashKeyLen %d out of range", sb.HashKeyLen)
	}
	n := int64(arena.Read8(sbBase + sbOffNumClasses))
	if n < 1 || n > sbMaxClasses {
		return sb, fmt.Errorf("hart: superblock class count %d out of range", n)
	}
	sb.ValueClasses = make([]int64, n)
	for i := range sb.ValueClasses {
		sb.ValueClasses[i] = int64(arena.Read8(sbBase + sbOffClasses + pmem.Ptr(i*8)))
	}
	if err := validateClasses(sb.ValueClasses); err != nil {
		return sb, fmt.Errorf("hart: superblock class table invalid: %w", err)
	}
	sb.Clean = arena.Read8(sbBase+sbOffFlags)&sbFlagClean != 0
	return sb, nil
}

// adoptGeometry merges the superblock geometry into opts: zero fields are
// adopted from the store, non-zero fields must agree with it. Returns the
// merged options (not yet defaulted — both sources are authoritative, so
// nothing is left to default but scalars like ArenaSize).
func adoptGeometry(opts Options, sb superblock) (Options, error) {
	if opts.HashKeyLen == 0 {
		opts.HashKeyLen = sb.HashKeyLen
	} else if opts.HashKeyLen != sb.HashKeyLen {
		return opts, fmt.Errorf("%w: HashKeyLen %d, store has %d",
			ErrGeometryMismatch, opts.HashKeyLen, sb.HashKeyLen)
	}
	if len(opts.ValueClasses) == 0 {
		opts.ValueClasses = slices.Clone(sb.ValueClasses)
	} else if !slices.Equal(opts.ValueClasses, sb.ValueClasses) {
		return opts, fmt.Errorf("%w: ValueClasses %v, store has %v",
			ErrGeometryMismatch, opts.ValueClasses, sb.ValueClasses)
	}
	return opts, nil
}

// setCleanFlag persists the clean/dirty shutdown marker.
func (h *HART) setCleanFlag(clean bool) {
	h.arena.SetPersistSite("superblock.clean-flag")
	flags := h.arena.Read8(sbBase + sbOffFlags)
	if clean {
		flags |= sbFlagClean
	} else {
		flags &^= sbFlagClean
	}
	h.arena.Write8(sbBase+sbOffFlags, flags)
	h.arena.Persist(sbBase+sbOffFlags, 8)
}

// checkSuperblock is fsck's superblock pass: the persistent identity
// record must be present, readable, and in agreement with the running
// instance's geometry.
func (h *HART) checkSuperblock() error {
	sb, err := readSuperblock(h.arena)
	if err != nil {
		return fmt.Errorf("hart: fsck superblock: %w", err)
	}
	if sb.HashKeyLen != h.opts.HashKeyLen {
		return fmt.Errorf("hart: fsck superblock: HashKeyLen %d, instance runs %d",
			sb.HashKeyLen, h.opts.HashKeyLen)
	}
	if !slices.Equal(sb.ValueClasses, h.opts.ValueClasses) {
		return fmt.Errorf("hart: fsck superblock: ValueClasses %v, instance runs %v",
			sb.ValueClasses, h.opts.ValueClasses)
	}
	return nil
}
