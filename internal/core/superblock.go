package core

import (
	"errors"
	"fmt"
	"slices"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// HART superblock: the store's own persistent identity record, living in
// the arena's application label area (pmem.LabelBase — a fixed offset
// readable before any allocator state is interpreted). It pins down what
// a caller previously had to remember out of band, closing the "Restore
// must be given the same table" footgun:
//
//	+0  magic (8B, "HARTCORE"); written last during format, so a torn
//	    format reads as not-formatted rather than half-formatted
//	+8  format version (8B)
//	+16 HashKeyLen (8B) — kh, the base hash-directory routing width
//	+24 number of value classes (8B)
//	+32 flags (8B): bit 0 = clean shutdown (set by Close, cleared by
//	    Open before serving traffic)
//	+40 number of active split prefixes (8B; reads as 0 on images
//	    written before the elastic directory existed)
//	+48 value-class sizes (8B each, ascending; up to sbMaxClasses)
//	+96 split prefixes (8B each, up to sbMaxSplits): byte 0 is the
//	    prefix length (1..6), bytes 1..len the prefix itself, packed
//	    little-endian into one word so each slot persists atomically
//
// Geometry (HashKeyLen, ValueClasses) is structural: leaves were split
// and values were binned under it, so attaching with different geometry
// would misindex every record. Open therefore adopts the superblock's
// geometry when the caller left the options zero, and refuses the attach
// when the caller named conflicting values.
//
// The split-prefix set is structural too — it defines the variable-depth
// routing the directory was rebuilt under (DESIGN.md §13) — but unlike
// kh it needs no agreement dance: recovery regroups every leaf under
// whatever set the superblock holds, and ANY subset of split prefixes is
// a valid geometry. Updates exploit that: an add persists the slot word
// before the count (a crash in between leaves an inert orphan word), a
// remove copies the last slot over the victim before shrinking the count
// (a crash in between leaves a harmless duplicate that Open's
// normalization pass rewrites away).
//
// The clean flag is diagnostic, not load-bearing: recovery always runs on
// attach (it is cheap and idempotent), so a lost flag can never lose
// data. It tells operators — via RecoveryStats.WasClean and hartfsck —
// whether the image was closed properly or is a crash image.
const (
	sbBase pmem.Ptr = pmem.LabelBase

	sbMagic   = 0x48415254434f5245 // "HARTCORE"
	sbVersion = 1

	sbOffMagic      = 0
	sbOffVersion    = 8
	sbOffHashKeyLen = 16
	sbOffNumClasses = 24
	sbOffFlags      = 32
	sbOffNumSplits  = 40
	sbOffClasses    = 48
	sbOffSplits     = 96

	sbFlagClean = 1 << 0

	// sbMaxClasses is the label area's capacity for class sizes. It was
	// 18 before the split area claimed the label bytes past +96; images
	// with more than 6 classes would overlap the split slots and are
	// refused (none were ever writable through the public API, whose
	// tests top out at 4 classes; epalloc.MaxClasses binds the rest).
	sbMaxClasses = (sbOffSplits - sbOffClasses) / 8

	// sbMaxSplits caps the persisted split set. A split that would
	// exceed it is refused and the directory keeps its current shape —
	// capacity pressure degrades performance, never correctness.
	sbMaxSplits = (int64(pmem.LabelSize) - sbOffSplits) / 8
)

// Superblock attach errors.
var (
	// ErrNotFormatted reports an arena with no (complete) HART superblock:
	// never formatted, a pre-superblock image, or a format torn before the
	// magic was persisted.
	ErrNotFormatted = errors.New("hart: arena holds no HART superblock")
	// ErrVersionMismatch reports a superblock written by an incompatible
	// format version.
	ErrVersionMismatch = errors.New("hart: superblock format version not supported")
	// ErrGeometryMismatch reports options naming a geometry (HashKeyLen,
	// ValueClasses) different from the one the store was created with.
	ErrGeometryMismatch = errors.New("hart: options conflict with the store's superblock geometry")
)

// superblock is the decoded persistent identity record.
type superblock struct {
	Version      int
	HashKeyLen   int
	ValueClasses []int64
	Clean        bool
	// Splits holds the decoded split prefixes in slot order, after
	// normalization (structurally invalid or duplicate slots dropped).
	Splits []string
	// SplitsDirty reports that normalization changed the slot list, so
	// Open must rewrite the persisted area to match.
	SplitsDirty bool
}

// encodeSplitSlot packs a split prefix into one 8-byte slot word:
// byte 0 = length, bytes 1..len = prefix, little-endian.
func encodeSplitSlot(prefix string) uint64 {
	w := uint64(len(prefix))
	for i := 0; i < len(prefix); i++ {
		w |= uint64(prefix[i]) << (8 * uint(i+1))
	}
	return w
}

// decodeSplitSlot unpacks a slot word; ok is false for a structurally
// invalid slot (length outside 1..7).
func decodeSplitSlot(w uint64) (string, bool) {
	n := int(w & 0xff)
	if n < 1 || n > 7 {
		return "", false
	}
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(w >> (8 * uint(i+1)))
	}
	return string(p), true
}

// writeSuperblockBody persists every superblock field except the magic.
// Format order is body → allocator format → magic (writeSuperblockMagic),
// so a crash mid-format leaves an arena that attaches as not-formatted.
func writeSuperblockBody(arena *pmem.Arena, opts Options) error {
	if int64(len(opts.ValueClasses)) > sbMaxClasses {
		return fmt.Errorf("hart: %d value classes exceed the superblock capacity %d",
			len(opts.ValueClasses), sbMaxClasses)
	}
	arena.Write8(sbBase+sbOffVersion, sbVersion)
	arena.Write8(sbBase+sbOffHashKeyLen, uint64(opts.HashKeyLen))
	arena.Write8(sbBase+sbOffNumClasses, uint64(len(opts.ValueClasses)))
	arena.Write8(sbBase+sbOffFlags, 0) // born dirty; Close marks clean
	arena.Write8(sbBase+sbOffNumSplits, 0)
	for i, c := range opts.ValueClasses {
		arena.Write8(sbBase+sbOffClasses+pmem.Ptr(i*8), uint64(c))
	}
	arena.Persist(sbBase, int(pmem.LabelSize))
	return nil
}

// writeSuperblockMagic commits the superblock: after this persist the
// arena attaches as a formatted HART store.
func writeSuperblockMagic(arena *pmem.Arena) {
	arena.Write8(sbBase+sbOffMagic, sbMagic)
	arena.Persist(sbBase+sbOffMagic, 8)
}

// readSuperblock decodes and validates the superblock of an existing
// arena.
func readSuperblock(arena *pmem.Arena) (superblock, error) {
	var sb superblock
	if arena.Read8(sbBase+sbOffMagic) != sbMagic {
		return sb, ErrNotFormatted
	}
	sb.Version = int(arena.Read8(sbBase + sbOffVersion))
	if sb.Version != sbVersion {
		return sb, fmt.Errorf("%w: image version %d, this build reads %d",
			ErrVersionMismatch, sb.Version, sbVersion)
	}
	sb.HashKeyLen = int(arena.Read8(sbBase + sbOffHashKeyLen))
	if sb.HashKeyLen < 1 || sb.HashKeyLen >= MaxKeyLen {
		return sb, fmt.Errorf("hart: superblock HashKeyLen %d out of range", sb.HashKeyLen)
	}
	n := int64(arena.Read8(sbBase + sbOffNumClasses))
	if n < 1 || n > sbMaxClasses {
		return sb, fmt.Errorf("hart: superblock class count %d out of range", n)
	}
	sb.ValueClasses = make([]int64, n)
	for i := range sb.ValueClasses {
		sb.ValueClasses[i] = int64(arena.Read8(sbBase + sbOffClasses + pmem.Ptr(i*8)))
	}
	if err := validateClasses(sb.ValueClasses); err != nil {
		return sb, fmt.Errorf("hart: superblock class table invalid: %w", err)
	}
	sb.Clean = arena.Read8(sbBase+sbOffFlags)&sbFlagClean != 0

	ns := int64(arena.Read8(sbBase + sbOffNumSplits))
	if ns < 0 || ns > sbMaxSplits {
		return sb, fmt.Errorf("hart: superblock split count %d out of range", ns)
	}
	// Normalize while decoding: a slot that is structurally invalid, out
	// of the routable depth range, or a duplicate (the signature of a
	// remove torn between the slot copy and the count shrink) is dropped
	// and SplitsDirty asks Open to rewrite the area. Dropping is always
	// safe — any subset of split prefixes is a valid geometry.
	seen := make(map[string]struct{}, ns)
	for i := int64(0); i < ns; i++ {
		p, ok := decodeSplitSlot(arena.Read8(sbBase + sbOffSplits + pmem.Ptr(i*8)))
		if !ok || len(p) < sb.HashKeyLen || len(p) > maxDirDepth-1 {
			sb.SplitsDirty = true
			continue
		}
		if _, dup := seen[p]; dup {
			sb.SplitsDirty = true
			continue
		}
		seen[p] = struct{}{}
		sb.Splits = append(sb.Splits, p)
	}
	return sb, nil
}

// adoptGeometry merges the superblock geometry into opts: zero fields are
// adopted from the store, non-zero fields must agree with it. Returns the
// merged options (not yet defaulted — both sources are authoritative, so
// nothing is left to default but scalars like ArenaSize).
func adoptGeometry(opts Options, sb superblock) (Options, error) {
	if opts.HashKeyLen == 0 {
		opts.HashKeyLen = sb.HashKeyLen
	} else if opts.HashKeyLen != sb.HashKeyLen {
		return opts, fmt.Errorf("%w: HashKeyLen %d, store has %d",
			ErrGeometryMismatch, opts.HashKeyLen, sb.HashKeyLen)
	}
	if len(opts.ValueClasses) == 0 {
		opts.ValueClasses = slices.Clone(sb.ValueClasses)
	} else if !slices.Equal(opts.ValueClasses, sb.ValueClasses) {
		return opts, fmt.Errorf("%w: ValueClasses %v, store has %v",
			ErrGeometryMismatch, opts.ValueClasses, sb.ValueClasses)
	}
	return opts, nil
}

// adoptSplits installs the superblock's normalized split set as the
// in-DRAM slot mirror and, when normalization dropped slots, rewrites the
// persisted area so mirror and PM agree slot for slot (the mirror's
// indices drive persistSplitRemove). Called once from Open, before
// recovery routes any leaf.
func (h *HART) adoptSplits(sb superblock) {
	h.splitSlots = slices.Clone(sb.Splits)
	if !sb.SplitsDirty {
		return
	}
	h.arena.SetPersistSite("superblock.split-normalize")
	for i, p := range h.splitSlots {
		h.arena.Write8(sbBase+sbOffSplits+pmem.Ptr(i*8), encodeSplitSlot(p))
	}
	h.arena.Persist(sbBase+sbOffSplits, len(h.splitSlots)*8)
	h.arena.Write8(sbBase+sbOffNumSplits, uint64(len(h.splitSlots)))
	h.arena.Persist(sbBase+sbOffNumSplits, 8)
}

// persistSplitAdd appends prefix to the superblock's split area and the
// DRAM mirror. Persist order is slot word first, count second: a crash
// between the two leaves the count unchanged and the orphaned slot word
// inert. Returns false when all sbMaxSplits slots are taken — the caller
// must refuse the split. Caller holds dirMu.
func (h *HART) persistSplitAdd(prefix []byte) bool {
	if int64(len(h.splitSlots)) >= sbMaxSplits {
		return false
	}
	i := len(h.splitSlots)
	h.arena.SetPersistSite("elastic.split-slot")
	h.arena.Write8(sbBase+sbOffSplits+pmem.Ptr(i*8), encodeSplitSlot(string(prefix)))
	h.arena.Persist(sbBase+sbOffSplits+pmem.Ptr(i*8), 8)
	h.arena.SetPersistSite("elastic.split-count")
	h.arena.Write8(sbBase+sbOffNumSplits, uint64(i+1))
	h.arena.Persist(sbBase+sbOffNumSplits, 8)
	h.splitSlots = append(h.splitSlots, string(prefix))
	return true
}

// persistSplitRemove drops prefix from the split area by copying the last
// slot over it and shrinking the count. A crash after the copy but before
// the count shrink leaves the victim overwritten and the tail slot
// duplicated — a state that already describes the post-remove set, and
// whose duplicate Open's normalization rewrites away. Caller holds dirMu.
func (h *HART) persistSplitRemove(prefix []byte) {
	i := slices.Index(h.splitSlots, string(prefix))
	if i < 0 {
		return
	}
	last := len(h.splitSlots) - 1
	if i != last {
		h.arena.SetPersistSite("elastic.split-slot")
		h.arena.Write8(sbBase+sbOffSplits+pmem.Ptr(i*8), encodeSplitSlot(h.splitSlots[last]))
		h.arena.Persist(sbBase+sbOffSplits+pmem.Ptr(i*8), 8)
		h.splitSlots[i] = h.splitSlots[last]
	}
	h.arena.SetPersistSite("elastic.split-count")
	h.arena.Write8(sbBase+sbOffNumSplits, uint64(last))
	h.arena.Persist(sbBase+sbOffNumSplits, 8)
	h.splitSlots = h.splitSlots[:last]
}

// setCleanFlag persists the clean/dirty shutdown marker.
func (h *HART) setCleanFlag(clean bool) {
	h.arena.SetPersistSite("superblock.clean-flag")
	flags := h.arena.Read8(sbBase + sbOffFlags)
	if clean {
		flags |= sbFlagClean
	} else {
		flags &^= sbFlagClean
	}
	h.arena.Write8(sbBase+sbOffFlags, flags)
	h.arena.Persist(sbBase+sbOffFlags, 8)
}

// checkSuperblock is fsck's superblock pass: the persistent identity
// record must be present, readable, and in agreement with the running
// instance's geometry — including the split set behind the published
// directory.
func (h *HART) checkSuperblock() error {
	sb, err := readSuperblock(h.arena)
	if err != nil {
		return fmt.Errorf("hart: fsck superblock: %w", err)
	}
	if sb.HashKeyLen != h.opts.HashKeyLen {
		return fmt.Errorf("hart: fsck superblock: HashKeyLen %d, instance runs %d",
			sb.HashKeyLen, h.opts.HashKeyLen)
	}
	if !slices.Equal(sb.ValueClasses, h.opts.ValueClasses) {
		return fmt.Errorf("hart: fsck superblock: ValueClasses %v, instance runs %v",
			sb.ValueClasses, h.opts.ValueClasses)
	}
	persisted := slices.Clone(sb.Splits)
	slices.Sort(persisted)
	if live := h.dir.Load().splits.List(); !slices.Equal(persisted, live) {
		return fmt.Errorf("hart: fsck superblock: split set %q, instance routes %q",
			persisted, live)
	}
	return nil
}
