package core

import (
	"fmt"
	"sync"

	"github.com/casl-sdsu/hart/internal/hashdir"

	"github.com/casl-sdsu/hart/internal/epalloc"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// recover rebuilds the volatile half of HART after a restart or crash
// (Algorithm 7) and completes interrupted updates recorded in the update
// logs (Algorithm 3's failure-recovery discussion).
//
// Recovery is much faster than rebuilding from scratch because leaves and
// values are already on PM: only hash-directory entries and ART internal
// nodes are created, and no PM write happens for the common case.
func (h *HART) recover() error {
	var stats RecoveryStats

	// 1. Update-log recovery. Must run before the index is rebuilt so the
	// leaves' value pointers are final when the trees are populated.
	h.arena.SetPersistSite("recover.ulog")
	for _, ul := range h.alloc.PendingUpdateLogs() {
		if err := h.recoverUpdate(ul); err != nil {
			return err
		}
		h.alloc.ResetUpdateLogAt(ul.Index)
		stats.CompletedULogs++
	}

	// 2. Rebuild the directory and ARTs by walking every leaf chunk
	// (Algorithm 7 lines 2-6): only leaves whose bit is set are alive.
	// Along the way, collect the live value references and the dead leaf
	// slots for the stale-reference sweep below.
	//
	// With RecoveryWorkers > 1 the rebuild runs in parallel: recovery is
	// embarrassingly parallel across ARTs because the hash key of a leaf
	// fully determines its shard, so workers partition leaves by hash key
	// and never contend on a tree. (An extension beyond the paper's
	// single-threaded Algorithm 7; disabled by default.)
	liveVals := make(map[pmem.Ptr]bool)
	var deadSlots []pmem.Ptr
	var liveLeaves []pmem.Ptr
	err := h.alloc.IterateObjects(classLeaf, func(leaf pmem.Ptr, used bool) bool {
		vp, _ := unpackValue(h.arena.Read8(leaf + lfPValue))
		if !used {
			if !vp.IsNil() {
				deadSlots = append(deadSlots, leaf)
			}
			return true
		}
		if !vp.IsNil() {
			liveVals[vp] = true
		}
		liveLeaves = append(liveLeaves, leaf)
		return true
	})
	if err != nil {
		return err
	}
	stats.LiveLeaves = len(liveLeaves)
	if err := h.rebuildIndex(liveLeaves); err != nil {
		return err
	}

	// 3. Stale-reference sweep: a dead leaf slot may still reference a
	// value object — either a reclaimable orphan from an interrupted
	// insertion/deletion (value bit set, value owned by nobody) or a
	// harmless stale pointer. Reclaim the orphans and zero every stale
	// word so that no later slot reuse can misinterpret an aliased,
	// since-reallocated value slot (see Delete for the runtime side).
	h.arena.SetPersistSite("recover.stale-sweep")
	for _, leaf := range deadSlots {
		vp, _ := unpackValue(h.arena.Read8(leaf + lfPValue))
		if !vp.IsNil() && !liveVals[vp] {
			if set, err := h.alloc.BitIsSet(vp); err == nil && set {
				if err := h.alloc.ResetBit(vp); err != nil {
					return err
				}
				if err := h.alloc.RecycleIfPresent(vp); err != nil {
					return err
				}
			}
		}
		h.arena.Write8(leaf+lfPValue, 0)
		h.arena.Persist(leaf+lfPValue, 8)
		stats.StaleSlotsZeroed++
	}

	// 4. Orphan value sweep (mark-and-sweep): any committed value object
	// referenced by no live leaf and no dead slot is unreachable forever —
	// the residue of an unlogged update (Options.UnloggedUpdates) or of a
	// baseline-style crash window — and is reclaimed here. With Algorithm
	// 3 updates this finds nothing; either way, a recovered HART starts
	// leak-free.
	h.arena.SetPersistSite("recover.orphan-sweep")
	for i := range h.opts.ValueClasses {
		c := classValue0 + epalloc.Class(i)
		var orphans []pmem.Ptr
		if err := h.alloc.IterateObjects(c, func(vp pmem.Ptr, used bool) bool {
			if used && !liveVals[vp] {
				orphans = append(orphans, vp)
			}
			return true
		}); err != nil {
			return err
		}
		for _, vp := range orphans {
			if err := h.alloc.Release(vp); err != nil {
				return err
			}
			stats.OrphanValues++
		}
	}
	h.recoveryStats = stats
	return nil
}

// RecoveryStats is an inventory of what the last recovery pass did, for
// hartfsck reporting and recovery tests.
type RecoveryStats struct {
	// CompletedULogs counts armed update logs found and resolved.
	CompletedULogs int
	// LiveLeaves counts committed leaves rebuilt into the index.
	LiveLeaves int
	// StaleSlotsZeroed counts dead leaf slots whose stale value pointer
	// was scrubbed (orphan values reclaimed along the way).
	StaleSlotsZeroed int
	// OrphanValues counts committed but unreachable value objects
	// reclaimed by the mark-and-sweep pass.
	OrphanValues int
}

// LastRecoveryStats reports what the most recent recovery (New, Open or
// Rebuild) found and repaired.
func (h *HART) LastRecoveryStats() RecoveryStats { return h.recoveryStats }

// recoverUpdate completes one interrupted Algorithm 3 update, following
// the paper's case analysis.
func (h *HART) recoverUpdate(ul epalloc.UpdateLogState) error {
	// Case 1: only PLeaf valid — the update had not allocated anything
	// durable; reset the log.
	// Case 2: PLeaf and POldV valid but PNewV invalid — the new value's
	// bit was never set, so its space reads as free; reset the log.
	if ul.PNewV.IsNil() {
		return nil
	}
	// Case 3: all three pointers valid — the crash happened between line 7
	// and line 10; resume from line 7.
	leaf := ul.PLeaf
	newW := uint64(ul.PNewV) // packed (pointer, length) word
	newV, _ := unpackValue(newW)

	if err := h.alloc.SetBit(newV); err != nil { // line 7
		return err
	}
	h.arena.Write8(leaf+lfPValue, newW) // line 8
	h.arena.Persist(leaf+lfPValue, 8)
	if !ul.POldV.IsNil() && ul.POldV != newV {
		if err := h.alloc.ResetBit(ul.POldV); err != nil { // line 9
			return err
		}
		if err := h.alloc.RecycleIfPresent(ul.POldV); err != nil { // line 10
			return err
		}
	}
	return nil
}

// Rebuild discards the volatile index and reruns recovery in place; it
// exists so the recovery experiment (Fig. 10c) can measure recovery time
// without re-creating the arena.
func (h *HART) Rebuild() error {
	h.dirMu.Lock()
	h.dir.Store(hashdir.New[*artShard]())
	h.dirMu.Unlock()
	h.size.Store(0)
	return h.recover()
}

// rebuildIndex inserts every live leaf into the volatile index, serially
// or with Options.RecoveryWorkers parallel workers partitioned by hash
// key (leaves with the same hash key always land on the same worker, so
// shards are single-writer during rebuild).
//
// The rebuild targets a private, unpublished directory and mutates the
// trees in place: nothing is visible to readers until the single Store
// at the end, which keeps recovery free of the per-mutation
// copy-on-write cost the published index pays.
func (h *HART) rebuildIndex(leaves []pmem.Ptr) error {
	dir := hashdir.New[*artShard]()
	var dirMu sync.Mutex
	insert := func(leaf pmem.Ptr) error {
		key := h.leafKey(leaf)
		if len(key) == 0 {
			return fmt.Errorf("hart: recovery found live leaf %d with empty key", leaf)
		}
		hashKey, artKey := h.splitKey(key)
		dirMu.Lock()
		s, ok := dir.Get(hashKey)
		if !ok {
			s = newShard()
			dir.Put(hashKey, s)
		}
		dirMu.Unlock()
		s.tree.Load().Insert(artKey, uint64(leaf))
		h.size.Add(1)
		return nil
	}
	defer h.dir.Store(dir)

	workers := h.opts.RecoveryWorkers
	if workers <= 1 || len(leaves) < 1024 {
		for _, leaf := range leaves {
			if err := insert(leaf); err != nil {
				return err
			}
		}
		return nil
	}

	// Partition by hash key so no two workers touch the same ART.
	parts := make([][]pmem.Ptr, workers)
	for _, leaf := range leaves {
		hashKey, _ := h.splitKey(h.leafKey(leaf))
		w := int(fnv32(hashKey)) % workers
		parts[w] = append(parts[w], leaf)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, leaf := range parts[w] {
				if errs[w] = insert(leaf); errs[w] != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fnv32 hashes a hash key for worker partitioning.
func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h & 0x7fffffff
}
