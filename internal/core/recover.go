package core

import (
	"bytes"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/casl-sdsu/hart/internal/art"
	"github.com/casl-sdsu/hart/internal/epalloc"
	"github.com/casl-sdsu/hart/internal/hashdir"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// recover rebuilds the volatile half of HART after a restart or crash
// (Algorithm 7) and completes interrupted updates recorded in the update
// logs (Algorithm 3's failure-recovery discussion).
//
// Recovery is much faster than rebuilding from scratch because leaves and
// values are already on PM: only hash-directory entries and ART internal
// nodes are created, and no PM write happens for the common case.
//
// The path is a pipeline of four phases (see DESIGN.md §11):
//
//  1. Update-log replay — serial; must precede everything so the leaves'
//     value pointers are final.
//  2. Leaf scan — the allocator's stripes walked by up to RecoveryWorkers
//     goroutines, each collecting its stripes' live leaves (with their
//     keys, read from PM exactly once), live value references and dead
//     slots into per-stripe sets; no shared map is touched.
//  3. Bulk rebuild — workers partitioned by hash key sort their leaves
//     and build whole ARTs with a one-clone-per-node batch insert into a
//     private, unpublished directory (or, under Options.LazyRecovery,
//     merely record per-shard pending leaf lists). Purely volatile, so it
//     overlaps phase 4.
//  4. Consistency sweeps — the stale-reference and orphan-value scans fan
//     out per stripe, but every PM write they decide on is applied by
//     this goroutine in stripe order: recovery's persist sequence stays
//     deterministic at any worker count (the property the differential
//     crash checker replays against), and an injected crash always
//     surfaces on the caller.
//
// The directory and the size counter are published once at the end, so a
// Rebuild on a live store never exposes a partially rebuilt index.
func (h *HART) recover() error {
	if h.opts.LegacyRecovery {
		return h.recoverLegacy()
	}
	var stats RecoveryStats
	workers := h.opts.RecoveryWorkers
	if workers < 1 {
		workers = 1
	}
	stats.Workers = workers
	stats.Lazy = h.opts.LazyRecovery

	// Phase 1: update-log replay.
	t := time.Now()
	h.arena.SetPersistSite("recover.ulog")
	for _, ul := range h.alloc.PendingUpdateLogs() {
		if err := h.recoverUpdate(ul); err != nil {
			return err
		}
		h.alloc.ResetUpdateLogAt(ul.Index)
		h.obs.events.Emit("recover.ulog_replay", "", uint64(ul.Index), uint64(ul.PLeaf))
		stats.CompletedULogs++
	}
	stats.ULogNs = time.Since(t).Nanoseconds()
	h.obs.events.Emit("recover.phase", "ulog", uint64(stats.CompletedULogs), uint64(stats.ULogNs))

	// Phase 2: parallel leaf scan (Algorithm 7 lines 2-6).
	t = time.Now()
	scan, err := h.scanLeaves(workers)
	if err != nil {
		return err
	}
	stats.LiveLeaves = scan.live
	stats.ScanNs = time.Since(t).Nanoseconds()
	h.obs.events.Emit("recover.phase", "scan", uint64(stats.LiveLeaves), uint64(stats.ScanNs))

	// Phase 3: launch the builders; they run concurrently with phase 4's
	// sweeps (volatile builds and PM sweeps touch disjoint state).
	t = time.Now()
	parts := make([][]builtShard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parts[w] = h.buildPartition(scan.partition(w))
		}(w)
	}

	// Phase 4: consistency sweeps, PM writes serial on this goroutine.
	ts := time.Now()
	sweepErr := h.sweepStaleAndOrphans(scan, workers, &stats)
	stats.SweepNs = time.Since(ts).Nanoseconds()
	wg.Wait()
	stats.BuildNs = time.Since(t).Nanoseconds() // includes the sweep overlap
	h.obs.events.Emit("recover.phase", "sweep", uint64(stats.StaleSlotsZeroed+stats.OrphanValues), uint64(stats.SweepNs))
	h.obs.events.Emit("recover.phase", "build", uint64(stats.LiveLeaves), uint64(stats.BuildNs))
	if sweepErr != nil {
		return sweepErr
	}

	// Publish: one atomic store each for the directory and the size, so
	// concurrent readers see the old index or the complete new one.
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	all := make([]builtShard, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].hk < all[j].hk })
	keys := make([]string, len(all))
	shards := make([]*artShard, len(all))
	for i, bs := range all {
		keys[i] = bs.hk
		shards[i] = bs.s
	}
	// The split geometry was installed from the superblock before recovery
	// started (Open) and cannot change mid-recovery (no concurrent ops),
	// so the snapshot it rides in carries the same splits the leaves were
	// just grouped under.
	splits := h.dir.Load().splits
	h.dirMu.Lock()
	h.dir.Store(&dirTable{tab: hashdir.NewFromSorted(keys, shards), splits: splits})
	h.dirMu.Unlock()
	h.obs.dirPublish.Add(1)
	h.size.Store(int64(scan.live))
	if h.opts.LazyRecovery {
		stats.PendingShards = len(all)
	}
	h.pendingShards.Store(int64(stats.PendingShards))
	h.recoveryStats = stats
	return nil
}

// recLeaf is one live leaf carried through recovery's partition: the key
// is read from PM once, during the scan, and reused for partitioning,
// sorting and tree building. Under LazyRecovery only the hash-key prefix
// is read (and stored here); the full key read is deferred to the shard's
// first-touch build.
type recLeaf struct {
	leaf pmem.Ptr
	key  []byte
}

// deadSlot is an unused leaf slot whose stale value word needs scrubbing.
type deadSlot struct {
	leaf pmem.Ptr
	vp   pmem.Ptr
}

// byteArena hands out small byte slices carved from large blocks, so a
// million leaf keys cost a handful of allocations instead of one each.
type byteArena struct{ buf []byte }

func (a *byteArena) alloc(n int) []byte {
	if len(a.buf)+n > cap(a.buf) {
		block := 1 << 16
		if n > block {
			block = n
		}
		a.buf = make([]byte, 0, block)
	}
	b := a.buf[len(a.buf) : len(a.buf)+n : len(a.buf)+n]
	a.buf = a.buf[:len(a.buf)+n]
	return b
}

// stripeScan is one stripe's share of the leaf scan. Each stripe is
// walked by exactly one goroutine, so none of this needs locking; the
// coordinator merges the stripes in index order, which keeps every
// derived sequence (dead-slot sweep order, partition contents)
// deterministic regardless of worker count.
type stripeScan struct {
	keys    byteArena
	dead    []deadSlot
	vals    []pmem.Ptr
	buckets [][]recLeaf // indexed by build worker
	err     error
}

// leafScan is the merged result of the scan phase.
type leafScan struct {
	stripes [epalloc.NumStripes]stripeScan
	valSet  []pmem.Ptr // sorted live value references
	live    int
}

// partition returns build worker w's leaves: the concatenation, in stripe
// order, of every stripe's bucket for w. Leaves of one hash key always
// share a partition (the bucket index is a hash of the hash key), so
// build workers never touch the same shard.
func (sc *leafScan) partition(w int) []recLeaf {
	n := 0
	for st := range sc.stripes {
		n += len(sc.stripes[st].buckets[w])
	}
	out := make([]recLeaf, 0, n)
	for st := range sc.stripes {
		out = append(out, sc.stripes[st].buckets[w]...)
	}
	return out
}

// scanLeaves walks every leaf chunk with up to `workers` goroutines (one
// per allocator stripe), collecting per-stripe live/dead sets and
// partitioning the live leaves by routed directory prefix for the build
// phase. Each live leaf's key is read exactly once; under LazyRecovery
// only the leading rd = max(kh, longest split prefix + 1) bytes are read
// — maxDirDepth caps rd at 7, so that is a single 8-byte load of the
// keyLen byte plus the first seven key bytes. Routing the truncated key
// is exact: rd exceeds every split prefix, so Route never wants a byte
// the truncation dropped.
func (h *HART) scanLeaves(workers int) (*leafScan, error) {
	kh := h.opts.HashKeyLen
	splits := h.dir.Load().splits
	rd := kh // lazy read width: enough bytes to route any key
	if m := splits.MaxLen(); m+1 > rd {
		rd = m + 1
	}
	lazy := h.opts.LazyRecovery
	sc := &leafScan{}
	for st := range sc.stripes {
		sc.stripes[st].buckets = make([][]recLeaf, workers)
	}
	err := h.alloc.IterateObjectsParallel(classLeaf, workers, func(st int, leaf pmem.Ptr, used bool) bool {
		ss := &sc.stripes[st]
		vp, _ := unpackValue(h.arena.Read8(leaf + lfPValue))
		if !used {
			if !vp.IsNil() {
				ss.dead = append(ss.dead, deadSlot{leaf: leaf, vp: vp})
			}
			return true
		}
		if !vp.IsNil() {
			ss.vals = append(ss.vals, vp)
		}
		var key []byte
		if lazy && rd <= 7 {
			// keyLen and key[0..6] share one aligned word (leaf layout:
			// +8 keyLen, +9 key; the arena is little-endian).
			kw := h.arena.Read8(leaf + lfKeyLen)
			n := int(kw & 0xff)
			if n == 0 {
				ss.err = fmt.Errorf("hart: recovery found live leaf %d with empty key", leaf)
				return false
			}
			if n > rd {
				n = rd
			}
			key = ss.keys.alloc(n)
			for i := range key {
				key[i] = byte(kw >> (8 * uint(i+1)))
			}
		} else {
			n := int(h.arena.Read1(leaf + lfKeyLen))
			if n == 0 {
				ss.err = fmt.Errorf("hart: recovery found live leaf %d with empty key", leaf)
				return false
			}
			if n > MaxKeyLen {
				n = MaxKeyLen
			}
			if lazy && n > rd {
				n = rd
			}
			key = ss.keys.alloc(n)
			h.arena.ReadAt(leaf+lfKey, key)
		}
		hk := splits.Route(key, kh)
		if lazy {
			// The deferred full-key read only needs the shard assignment;
			// keep just the routed prefix.
			key = hk
		}
		w := int(fnv32(hk)) % workers
		ss.buckets[w] = append(ss.buckets[w], recLeaf{leaf: leaf, key: key})
		return true
	})
	if err != nil {
		return nil, err
	}
	nvals := 0
	for st := range sc.stripes {
		ss := &sc.stripes[st]
		if ss.err != nil {
			return nil, ss.err
		}
		nvals += len(ss.vals)
		for _, b := range ss.buckets {
			sc.live += len(b)
		}
	}
	sc.valSet = make([]pmem.Ptr, 0, nvals)
	for st := range sc.stripes {
		sc.valSet = append(sc.valSet, sc.stripes[st].vals...)
	}
	slices.Sort(sc.valSet)
	return sc, nil
}

// ptrSetHas reports membership in a sorted pointer slice.
func ptrSetHas(set []pmem.Ptr, p pmem.Ptr) bool {
	_, ok := slices.BinarySearch(set, p)
	return ok
}

// builtShard is one rebuilt (or pending) shard awaiting publication.
type builtShard struct {
	hk string
	s  *artShard
}

// buildPartition turns one worker's leaves into shards: one pass groups
// by hash key and batch-inserts each record into its shard's private
// tree — the batch clones nothing it already built, so this is an
// in-place build (legal: the directory is unpublished), with no per-leaf
// directory locking or size increment. Insertion order is irrelevant to
// ART shape, so no sort is needed; the coordinator orders the finished
// shards once for the bulk directory construction. Under LazyRecovery the
// group becomes a pending leaf list and the tree build is deferred to the
// shard's first touch.
func (h *HART) buildPartition(recs []recLeaf) []builtShard {
	if len(recs) == 0 {
		return nil
	}
	kh := h.opts.HashKeyLen
	splits := h.dir.Load().splits
	lazy := h.opts.LazyRecovery
	type shardBuild struct {
		s     *artShard
		batch *art.Batch
		pend  []pmem.Ptr
	}
	byHK := make(map[string]*shardBuild)
	out := make([]builtShard, 0, len(byHK))
	for _, r := range recs {
		// Under LazyRecovery the scan already reduced r.key to the routed
		// prefix; eager records carry the full key and route here.
		hk := r.key
		if !lazy {
			hk = splits.Route(r.key, kh)
		}
		sb := byHK[string(hk)]
		if sb == nil {
			sb = &shardBuild{s: newShard()}
			if !lazy {
				sb.batch = art.New().BeginBatch()
			}
			byHK[string(hk)] = sb
			out = append(out, builtShard{hk: string(hk), s: sb.s})
		}
		if lazy {
			sb.pend = append(sb.pend, r.leaf)
		} else {
			var artKey []byte
			if len(r.key) > len(hk) {
				artKey = r.key[len(hk):]
			}
			sb.batch.Insert(artKey, uint64(r.leaf))
		}
	}
	for _, bs := range out {
		sb := byHK[bs.hk]
		if lazy {
			sb.s.pending.Store(&pendingLeaves{leaves: sb.pend, hkLen: len(bs.hk)})
		} else {
			sb.s.tree.Store(sb.batch.Commit())
		}
	}
	return out
}

// sweepStaleAndOrphans runs recovery's two PM-repair passes.
//
// Stale-reference sweep: a dead leaf slot may still reference a value
// object — either a reclaimable orphan from an interrupted insertion or
// deletion (value bit set, value owned by nobody) or a harmless stale
// pointer. Reclaim the orphans and zero every stale word so that no later
// slot reuse can misinterpret an aliased, since-reallocated value slot
// (see Delete for the runtime side). The candidates were collected by the
// scan phase; the writes land here, in stripe order.
//
// Orphan value sweep (mark-and-sweep): any committed value object
// referenced by no live leaf and no dead slot is unreachable forever —
// the residue of an unlogged update (Options.UnloggedUpdates) or of a
// baseline-style crash window — and is reclaimed. The value-chunk walk
// fans out per stripe; the releases land here, in class and stripe order.
// With Algorithm 3 updates this finds nothing; either way, a recovered
// HART starts leak-free.
func (h *HART) sweepStaleAndOrphans(sc *leafScan, workers int, stats *RecoveryStats) error {
	h.arena.SetPersistSite("recover.stale-sweep")
	for st := range sc.stripes {
		for _, d := range sc.stripes[st].dead {
			if !ptrSetHas(sc.valSet, d.vp) {
				if set, err := h.alloc.BitIsSet(d.vp); err == nil && set {
					if err := h.alloc.ResetBit(d.vp); err != nil {
						return err
					}
					if err := h.alloc.RecycleIfPresent(d.vp); err != nil {
						return err
					}
				}
			}
			h.arena.Write8(d.leaf+lfPValue, 0)
			h.arena.Persist(d.leaf+lfPValue, 8)
			stats.StaleSlotsZeroed++
		}
	}

	h.arena.SetPersistSite("recover.orphan-sweep")
	for i := range h.opts.ValueClasses {
		c := classValue0 + epalloc.Class(i)
		var orphans [epalloc.NumStripes][]pmem.Ptr
		if err := h.alloc.IterateObjectsParallel(c, workers, func(st int, vp pmem.Ptr, used bool) bool {
			if used && !ptrSetHas(sc.valSet, vp) {
				orphans[st] = append(orphans[st], vp)
			}
			return true
		}); err != nil {
			return err
		}
		for st := range orphans {
			for _, vp := range orphans[st] {
				if err := h.alloc.Release(vp); err != nil {
					return err
				}
				stats.OrphanValues++
			}
		}
	}
	return nil
}

// buildPending builds a lazily recovered shard's ART from its pending
// leaf list: read each leaf's full key (the deferred read the scan phase
// skipped), sort, and batch-insert into a fresh tree. The caller holds
// s.mu exclusively. Ordering matters: the built tree is stored before
// pending is cleared, so any goroutine observing pending == nil is
// guaranteed to observe the complete tree.
func (h *HART) buildPending(s *artShard) {
	pp := s.pending.Load()
	if pp == nil {
		return
	}
	var keys byteArena
	recs := make([]recLeaf, 0, len(pp.leaves))
	for _, leaf := range pp.leaves {
		n := int(h.arena.Read1(leaf + lfKeyLen))
		if n > MaxKeyLen {
			n = MaxKeyLen
		}
		key := keys.alloc(n)
		h.arena.ReadAt(leaf+lfKey, key)
		recs = append(recs, recLeaf{leaf: leaf, key: key})
	}
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i].key, recs[j].key) < 0 })
	b := art.New().BeginBatch()
	for _, r := range recs {
		var artKey []byte
		if len(r.key) > pp.hkLen {
			artKey = r.key[pp.hkLen:]
		}
		b.Insert(artKey, uint64(r.leaf))
	}
	s.tree.Store(b.Commit())
	s.pending.Store(nil)
	h.pendingShards.Add(-1)
}

// drainShard builds one shard if it is still pending.
func (h *HART) drainShard(s *artShard) {
	if s.pending.Load() == nil {
		return
	}
	s.mu.Lock()
	if !s.dead {
		h.buildPending(s)
	}
	s.mu.Unlock()
}

// DrainRecovery completes a lazy recovery (Options.LazyRecovery) by
// building every still-pending shard's ART, fanning the builds across
// Options.RecoveryWorkers goroutines. It is idempotent, cheap when
// nothing is pending, purely volatile (no PM write — the durable state
// is identical before and after, so a crash mid-drain recovers exactly
// like a crash before it), and safe to run concurrently with readers and
// writers: each build holds its shard's write lock. Open does not wait
// for it; callers wanting eager behaviour in the background can run
// `go h.DrainRecovery()` right after Open.
func (h *HART) DrainRecovery() {
	if h.pendingShards.Load() <= 0 {
		return
	}
	var pend []*artShard
	h.dir.Load().tab.Range(func(_ []byte, s *artShard) bool {
		if s.pending.Load() != nil {
			pend = append(pend, s)
		}
		return true
	})
	workers := h.opts.RecoveryWorkers
	if workers > len(pend) {
		workers = len(pend)
	}
	if workers <= 1 {
		for _, s := range pend {
			h.drainShard(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(pend)) {
					return
				}
				h.drainShard(pend[i])
			}
		}()
	}
	wg.Wait()
}

// PendingShards reports how many lazily recovered shards still await
// their first-touch ART build: non-zero only between a LazyRecovery Open
// and the completion of DrainRecovery (or of organic traffic touching
// every shard); always zero after an eager recovery.
func (h *HART) PendingShards() int { return int(h.pendingShards.Load()) }

// RecoveryStats is an inventory of what the last recovery pass did, for
// hartfsck reporting and recovery tests.
type RecoveryStats struct {
	// CompletedULogs counts armed update logs found and resolved.
	CompletedULogs int
	// LiveLeaves counts committed leaves rebuilt into the index.
	LiveLeaves int
	// StaleSlotsZeroed counts dead leaf slots whose stale value pointer
	// was scrubbed (orphan values reclaimed along the way).
	StaleSlotsZeroed int
	// OrphanValues counts committed but unreachable value objects
	// reclaimed by the mark-and-sweep pass.
	OrphanValues int
	// Workers is the worker count the pass ran with; Lazy reports whether
	// the ART builds were deferred, and PendingShards how many shards
	// were left pending at Open (0 for an eager recovery).
	Workers       int
	Lazy          bool
	PendingShards int
	// WasClean reports whether the superblock carried the clean-shutdown
	// flag when Open attached — true for an image produced by Close, false
	// for a crash image (or a pre-Open store). Always false after New.
	WasClean bool
	// Per-phase wall times: update-log replay, leaf scan, index build and
	// consistency sweeps. The build overlaps the sweeps on the pipelined
	// path, so BuildNs includes the sweep window it ran concurrently with.
	ULogNs  int64
	ScanNs  int64
	BuildNs int64
	SweepNs int64
}

// LastRecoveryStats reports what the most recent recovery (New, Open or
// Rebuild) found and repaired.
func (h *HART) LastRecoveryStats() RecoveryStats { return h.recoveryStats }

// recoverUpdate completes one interrupted Algorithm 3 update, following
// the paper's case analysis.
func (h *HART) recoverUpdate(ul epalloc.UpdateLogState) error {
	// Case 1: only PLeaf valid — the update had not allocated anything
	// durable; reset the log.
	// Case 2: PLeaf and POldV valid but PNewV invalid — the new value's
	// bit was never set, so its space reads as free; reset the log.
	if ul.PNewV.IsNil() {
		return nil
	}
	// Case 3: all three pointers valid — the crash happened between line 7
	// and line 10; resume from line 7.
	leaf := ul.PLeaf
	newW := uint64(ul.PNewV) // packed (pointer, length) word
	newV, _ := unpackValue(newW)

	if err := h.alloc.SetBit(newV); err != nil { // line 7
		return err
	}
	h.arena.Write8(leaf+lfPValue, newW) // line 8
	h.arena.Persist(leaf+lfPValue, 8)
	if !ul.POldV.IsNil() && ul.POldV != newV {
		if err := h.alloc.ResetBit(ul.POldV); err != nil { // line 9
			return err
		}
		if err := h.alloc.RecycleIfPresent(ul.POldV); err != nil { // line 10
			return err
		}
	}
	return nil
}

// Rebuild discards the volatile index and reruns recovery in place; it
// exists so the recovery experiment (Fig. 10c) can measure recovery time
// without re-creating the arena. The replacement index is built privately
// and published with one atomic store, so a reader concurrent with a
// Rebuild observes either the old or the new complete directory — never
// an empty or partially filled intermediate.
func (h *HART) Rebuild() error {
	return h.recover()
}

// recoverLegacy is the pre-pipeline recovery path: one serial
// IterateObjects pass per class, a global liveVals map, and a rebuild
// that locks the private directory per leaf and re-reads each leaf's key
// from PM on the parallel path. It exists as the measurable "before"
// baseline for BENCH_recovery.json (Options.LegacyRecovery); the
// pipelined recover above is the default.
func (h *HART) recoverLegacy() error {
	var stats RecoveryStats
	stats.Workers = h.opts.RecoveryWorkers
	if stats.Workers < 1 {
		stats.Workers = 1
	}

	t := time.Now()
	h.arena.SetPersistSite("recover.ulog")
	for _, ul := range h.alloc.PendingUpdateLogs() {
		if err := h.recoverUpdate(ul); err != nil {
			return err
		}
		h.alloc.ResetUpdateLogAt(ul.Index)
		stats.CompletedULogs++
	}
	stats.ULogNs = time.Since(t).Nanoseconds()

	t = time.Now()
	liveVals := make(map[pmem.Ptr]bool)
	var deadSlots []pmem.Ptr
	var liveLeaves []pmem.Ptr
	err := h.alloc.IterateObjects(classLeaf, func(leaf pmem.Ptr, used bool) bool {
		vp, _ := unpackValue(h.arena.Read8(leaf + lfPValue))
		if !used {
			if !vp.IsNil() {
				deadSlots = append(deadSlots, leaf)
			}
			return true
		}
		if !vp.IsNil() {
			liveVals[vp] = true
		}
		liveLeaves = append(liveLeaves, leaf)
		return true
	})
	if err != nil {
		return err
	}
	stats.LiveLeaves = len(liveLeaves)
	stats.ScanNs = time.Since(t).Nanoseconds()

	t = time.Now()
	if err := h.legacyRebuildIndex(liveLeaves); err != nil {
		return err
	}
	stats.BuildNs = time.Since(t).Nanoseconds()

	t = time.Now()
	h.arena.SetPersistSite("recover.stale-sweep")
	for _, leaf := range deadSlots {
		vp, _ := unpackValue(h.arena.Read8(leaf + lfPValue))
		if !vp.IsNil() && !liveVals[vp] {
			if set, err := h.alloc.BitIsSet(vp); err == nil && set {
				if err := h.alloc.ResetBit(vp); err != nil {
					return err
				}
				if err := h.alloc.RecycleIfPresent(vp); err != nil {
					return err
				}
			}
		}
		h.arena.Write8(leaf+lfPValue, 0)
		h.arena.Persist(leaf+lfPValue, 8)
		stats.StaleSlotsZeroed++
	}

	h.arena.SetPersistSite("recover.orphan-sweep")
	for i := range h.opts.ValueClasses {
		c := classValue0 + epalloc.Class(i)
		var orphans []pmem.Ptr
		if err := h.alloc.IterateObjects(c, func(vp pmem.Ptr, used bool) bool {
			if used && !liveVals[vp] {
				orphans = append(orphans, vp)
			}
			return true
		}); err != nil {
			return err
		}
		for _, vp := range orphans {
			if err := h.alloc.Release(vp); err != nil {
				return err
			}
			stats.OrphanValues++
		}
	}
	stats.SweepNs = time.Since(t).Nanoseconds()
	h.pendingShards.Store(0)
	h.recoveryStats = stats
	return nil
}

// legacyRebuildIndex inserts every live leaf into the volatile index,
// serially or with Options.RecoveryWorkers parallel workers partitioned
// by hash key (leaves with the same hash key always land on the same
// worker, so shards are single-writer during rebuild).
func (h *HART) legacyRebuildIndex(leaves []pmem.Ptr) error {
	h.size.Store(0)
	splits := h.dir.Load().splits // installed from the superblock by Open
	dir := hashdir.New[*artShard]()
	var dirMu sync.Mutex
	insert := func(leaf pmem.Ptr) error {
		key := h.leafKey(leaf)
		if len(key) == 0 {
			return fmt.Errorf("hart: recovery found live leaf %d with empty key", leaf)
		}
		hashKey, artKey := h.splitKey(key)
		dirMu.Lock()
		s, ok := dir.Get(hashKey)
		if !ok {
			s = newShard()
			dir.Put(hashKey, s)
		}
		dirMu.Unlock()
		s.tree.Load().Insert(artKey, uint64(leaf))
		h.size.Add(1)
		return nil
	}
	defer func() {
		h.dir.Store(&dirTable{tab: dir, splits: splits})
		h.obs.dirPublish.Add(1)
	}()

	workers := h.opts.RecoveryWorkers
	if workers <= 1 || len(leaves) < 1024 {
		for _, leaf := range leaves {
			if err := insert(leaf); err != nil {
				return err
			}
		}
		return nil
	}

	// Partition by hash key so no two workers touch the same ART.
	parts := make([][]pmem.Ptr, workers)
	for _, leaf := range leaves {
		hashKey, _ := h.splitKey(h.leafKey(leaf))
		w := int(fnv32(hashKey)) % workers
		parts[w] = append(parts[w], leaf)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, leaf := range parts[w] {
				if errs[w] = insert(leaf); errs[w] != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fnv32 hashes a hash key for worker partitioning.
func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h & 0x7fffffff
}
