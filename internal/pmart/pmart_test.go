package pmart

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/casl-sdsu/hart/internal/pmem"
)

func newArena(t *testing.T) *pmem.Arena {
	t.Helper()
	a, err := pmem.New(pmem.Config{Size: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestPackUnpackValue(t *testing.T) {
	f := func(off uint32, n uint8) bool {
		ln := int(n % 17)
		p := pmem.Ptr(off)
		gotP, gotN := UnpackValue(PackValue(p, ln))
		return gotP == p && gotN == ln
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeafTagging(t *testing.T) {
	p := pmem.Ptr(4096)
	if IsLeaf(p) {
		t.Fatal("untagged pointer reads as leaf")
	}
	tp := TagLeaf(p)
	if !IsLeaf(tp) || Untag(tp) != p {
		t.Fatalf("tag round trip: %d -> %d -> %d", p, tp, Untag(tp))
	}
}

func TestHeaderPrefixRoundTrip(t *testing.T) {
	a := newArena(t)
	na := NewNodeAlloc(a)
	for _, prefix := range [][]byte{nil, {1}, []byte("abcdef"), []byte("abcdefghijklm")} {
		n, err := BuildNode(a, na, TypeNode4, prefix, nil)
		if err != nil {
			t.Fatal(err)
		}
		full, stored := ReadPrefix(a, n)
		if full != len(prefix) {
			t.Fatalf("prefix %q: full = %d", prefix, full)
		}
		wantStored := prefix
		if len(wantStored) > MaxStoredPrefix {
			wantStored = wantStored[:MaxStoredPrefix]
		}
		if !bytes.Equal(stored, wantStored) {
			t.Fatalf("prefix %q: stored = %q", prefix, stored)
		}
	}
}

func TestAddFindRemoveAllKinds(t *testing.T) {
	a := newArena(t)
	na := NewNodeAlloc(a)
	for _, typ := range []byte{TypeNode4, TypeNode16, TypeNode48, TypeNode256} {
		capacity := map[byte]int{TypeNode4: 4, TypeNode16: 16, TypeNode48: 48, TypeNode256: 256}[typ]
		n, err := BuildNode(a, na, typ, []byte("px"), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Fill to capacity.
		for i := 0; i < capacity; i++ {
			child := TagLeaf(pmem.Ptr(1000 + i*8))
			if !AddChildInPlace(a, n, byte(i), child) {
				t.Fatalf("type %d: AddChildInPlace failed at %d/%d", typ, i, capacity)
			}
		}
		if typ != TypeNode256 {
			if AddChildInPlace(a, n, 254, TagLeaf(8)) {
				t.Fatalf("type %d: accepted child beyond capacity", typ)
			}
		}
		if got := CountChildren(a, n); got != capacity {
			t.Fatalf("type %d: CountChildren = %d, want %d", typ, got, capacity)
		}
		// Find each.
		for i := 0; i < capacity; i++ {
			slot, child := FindChild(a, n, byte(i))
			if slot.IsNil() || Untag(child) != pmem.Ptr(1000+i*8) {
				t.Fatalf("type %d: FindChild(%d) = (%d,%d)", typ, i, slot, child)
			}
		}
		if _, child := FindChild(a, n, 255); typ != TypeNode256 && !child.IsNil() {
			t.Fatalf("type %d: found absent edge", typ)
		}
		// Edges come back sorted.
		edges := Edges(a, n)
		if len(edges) != capacity {
			t.Fatalf("type %d: %d edges", typ, len(edges))
		}
		for i := 1; i < len(edges); i++ {
			if edges[i-1].Byte >= edges[i].Byte {
				t.Fatalf("type %d: edges unsorted", typ)
			}
		}
		// Remove half.
		for i := 0; i < capacity; i += 2 {
			if !RemoveChildInPlace(a, n, byte(i)) {
				t.Fatalf("type %d: remove %d failed", typ, i)
			}
		}
		if RemoveChildInPlace(a, n, 0) {
			t.Fatalf("type %d: double remove succeeded", typ)
		}
		if got := CountChildren(a, n); got != capacity/2 {
			t.Fatalf("type %d: after removal CountChildren = %d", typ, got)
		}
		// Freed edges are reusable.
		if !AddChildInPlace(a, n, 0, TagLeaf(pmem.Ptr(7777<<3))) {
			t.Fatalf("type %d: cannot reuse freed edge", typ)
		}
		if _, child := FindChild(a, n, 0); Untag(child) != pmem.Ptr(7777<<3) {
			t.Fatalf("type %d: reused edge wrong child", typ)
		}
	}
}

func TestGrownShrunkTypes(t *testing.T) {
	if GrownType(TypeNode4) != TypeNode16 || GrownType(TypeNode16) != TypeNode48 || GrownType(TypeNode48) != TypeNode256 {
		t.Fatal("GrownType chain broken")
	}
	if s, th := ShrunkType(TypeNode256); s != TypeNode48 || th != 37 {
		t.Fatalf("ShrunkType(256) = %d,%d", s, th)
	}
	if _, th := ShrunkType(TypeNode4); th != -1 {
		t.Fatal("NODE4 must not shrink")
	}
}

func TestBuildNodeRaisesKind(t *testing.T) {
	a := newArena(t)
	na := NewNodeAlloc(a)
	edges := make([]Edge, 10)
	for i := range edges {
		edges[i] = Edge{Byte: byte(i), Child: TagLeaf(pmem.Ptr(512 + i*8))}
	}
	n, err := BuildNode(a, na, TypeNode4, nil, edges)
	if err != nil {
		t.Fatal(err)
	}
	if NodeType(a, n) != TypeNode16 {
		t.Fatalf("BuildNode kept kind %d for 10 edges", NodeType(a, n))
	}
}

func TestBuildLeafAndMatch(t *testing.T) {
	a := newArena(t)
	na := NewNodeAlloc(a)
	leaf, err := BuildLeaf(a, na, []byte("leafkey"), PackValue(2048, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !LeafMatches(a, leaf, []byte("leafkey")) {
		t.Fatal("LeafMatches false for own key")
	}
	for _, k := range []string{"leafke", "leafkeyX", "other"} {
		if LeafMatches(a, leaf, []byte(k)) {
			t.Fatalf("LeafMatches true for %q", k)
		}
	}
	if got := LeafKeyBytes(a, leaf); string(got) != "leafkey" {
		t.Fatalf("LeafKeyBytes = %q", got)
	}
	if _, err := BuildLeaf(a, na, bytes.Repeat([]byte("x"), 25), 0); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestNodeAllocReuseZeroes(t *testing.T) {
	a := newArena(t)
	na := NewNodeAlloc(a)
	p1, err := na.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	a.WriteAt(p1, bytes.Repeat([]byte{0xEE}, 64))
	na.Free(p1, 64)
	p2, err := na.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Fatalf("free list not used: %d then %d", p1, p2)
	}
	buf := make([]byte, 64)
	a.ReadAt(p2, buf)
	if !bytes.Equal(buf, make([]byte, 64)) {
		t.Fatal("reused block not zeroed")
	}
	if na.LiveBytes() != 64 {
		t.Fatalf("LiveBytes = %d, want 64", na.LiveBytes())
	}
}

func TestTerminatedAndLookupHelpers(t *testing.T) {
	a := newArena(t)
	na := NewNodeAlloc(a)
	// Build a small two-leaf tree by hand: root NODE4 with prefix "ke",
	// children 'y' (leaf "key") is wrong shape — instead use divergence at
	// third byte: keys "kea" and "keb".
	l1, _ := BuildLeaf(a, na, []byte("kea"), PackValue(0, 0))
	l2, _ := BuildLeaf(a, na, []byte("keb"), PackValue(0, 0))
	root, err := BuildNode(a, na, TypeNode4, []byte("ke"), []Edge{
		{Byte: 'a', Child: TagLeaf(l1)},
		{Byte: 'b', Child: TagLeaf(l2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := Lookup(a, root, []byte("kea")); got != l1 {
		t.Fatalf("Lookup(kea) = %d, want %d", got, l1)
	}
	if got := Lookup(a, root, []byte("keb")); got != l2 {
		t.Fatalf("Lookup(keb) = %d, want %d", got, l2)
	}
	for _, miss := range []string{"ke", "kec", "keaa", "xx"} {
		if got := Lookup(a, root, []byte(miss)); !got.IsNil() {
			t.Fatalf("Lookup(%q) = %d, want Nil", miss, got)
		}
	}
	if CountRecords(a, root) != 2 {
		t.Fatal("CountRecords != 2")
	}
	if MinLeaf(a, root) != l1 {
		t.Fatal("MinLeaf wrong")
	}
	if err := CheckTree(a, root, 2, "test"); err != nil {
		t.Fatal(err)
	}
	if err := CheckTree(a, root, 3, "test"); err == nil {
		t.Fatal("CheckTree accepted wrong size")
	}
}

func TestWalkOrderAndBounds(t *testing.T) {
	a := newArena(t)
	na := NewNodeAlloc(a)
	var edges []Edge
	for i := 0; i < 26; i++ {
		leaf, _ := BuildLeaf(a, na, []byte{byte('a' + i)}, PackValue(0, 0))
		edges = append(edges, Edge{Byte: byte('a' + i), Child: TagLeaf(leaf)})
	}
	// Single-byte keys terminate at depth 1... they need a terminator
	// level in a real tree; here the root has no prefix and each child is
	// a leaf keyed by its edge byte, which Walk handles directly.
	root, err := BuildNode(a, na, TypeNode48, nil, edges)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	Walk(a, root, []byte("d"), []byte("j"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"d", "e", "f", "g", "h", "i"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Walk = %v, want %v", got, want)
	}
}

func TestReplaceChildAtAtomicSwap(t *testing.T) {
	a := newArena(t)
	na := NewNodeAlloc(a)
	l1, _ := BuildLeaf(a, na, []byte("one"), PackValue(0, 0))
	l2, _ := BuildLeaf(a, na, []byte("two"), PackValue(0, 0))
	n, err := BuildNode(a, na, TypeNode4, nil, []Edge{{Byte: 'o', Child: TagLeaf(l1)}})
	if err != nil {
		t.Fatal(err)
	}
	slot, child := FindChild(a, n, 'o')
	if Untag(child) != l1 {
		t.Fatalf("pre-swap child = %d", child)
	}
	ReplaceChildAt(a, slot, TagLeaf(l2))
	if _, child := FindChild(a, n, 'o'); Untag(child) != l2 {
		t.Fatalf("post-swap child = %d", Untag(child))
	}
}

// TestLongPrefixRecovery: prefixes beyond MaxStoredPrefix keep their true
// length in the header and are recoverable from the minimum leaf.
func TestLongPrefixRecovery(t *testing.T) {
	a := newArena(t)
	na := NewNodeAlloc(a)
	// Two keys sharing a 12-byte prefix, diverging at byte 12.
	k1 := []byte("longprefixxxA")
	k2 := []byte("longprefixxxB")
	l1, _ := BuildLeaf(a, na, k1, PackValue(0, 0))
	l2, _ := BuildLeaf(a, na, k2, PackValue(0, 0))
	root, err := BuildNode(a, na, TypeNode4, []byte("longprefixxx"), []Edge{
		{Byte: 'A', Child: TagLeaf(l1)},
		{Byte: 'B', Child: TagLeaf(l2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	full, stored := ReadPrefix(a, root)
	if full != 12 || len(stored) != MaxStoredPrefix {
		t.Fatalf("full=%d stored=%d", full, len(stored))
	}
	if got := RealPrefix(a, root, 0, full); string(got) != "longprefixxx" {
		t.Fatalf("RealPrefix = %q", got)
	}
	if got := FullPrefix(a, root, 0); string(got) != "longprefixxx" {
		t.Fatalf("FullPrefix = %q", got)
	}
	// Lookups with hidden prefix bytes still verify at the leaf.
	if got := Lookup(a, root, k1); got != l1 {
		t.Fatalf("Lookup(k1) = %d, want %d", got, l1)
	}
	// A key matching the stored prefix but diverging in the hidden tail
	// must miss (caught by the final leaf comparison).
	if got := Lookup(a, root, []byte("longprefiXXXA")); !got.IsNil() {
		t.Fatalf("hidden-tail mismatch returned %d", got)
	}
}

func TestReadLeafValueRoundTrip(t *testing.T) {
	a := newArena(t)
	na := NewNodeAlloc(a)
	vp, _ := na.Alloc(16)
	a.WriteAt(vp, []byte("sixteen-byte-val"))
	a.Persist(vp, 16)
	leaf, _ := BuildLeaf(a, na, []byte("k"), PackValue(vp, 16))
	if got := ReadLeafValue(a, leaf); string(got) != "sixteen-byte-val" {
		t.Fatalf("ReadLeafValue = %q", got)
	}
	empty, _ := BuildLeaf(a, na, []byte("e"), 0)
	if got := ReadLeafValue(a, empty); got != nil {
		t.Fatalf("nil-value leaf returned %q", got)
	}
}

func TestShrunkTypeTable(t *testing.T) {
	if s, th := ShrunkType(TypeNode16); s != TypeNode4 || th != 3 {
		t.Fatalf("ShrunkType(16) = %d,%d", s, th)
	}
	if s, th := ShrunkType(TypeNode48); s != TypeNode16 || th != 12 {
		t.Fatalf("ShrunkType(48) = %d,%d", s, th)
	}
}
