// Package pmart provides the persistent-memory node layer shared by the
// two pure-PM radix-tree baselines, WOART (internal/woart) and ART+CoW
// (internal/artcow), both from Lee et al., FAST 2017, as re-implemented by
// the HART paper for its evaluation.
//
// Unlike HART — which keeps internal nodes in DRAM — these trees place
// every node on PM, addressed by pmem.Ptr offsets. The node layouts mirror
// the adaptive kinds of ART:
//
//	NODE4    header + packed slot word (4 keys + valid nibble) + 4 children
//	NODE16   header + 16-bit valid bitmap + 16 keys + 16 children
//	NODE48   header + 48-bit slot bitmap + 256-byte index + 48 children
//	NODE256  header + 256 children
//
// The 8-byte header holds the node type and a compressed path segment of
// up to 6 stored prefix bytes (longer prefixes keep their true length and
// are verified against the full key stored in the leaf, the standard
// hybrid path-compression scheme).
//
// Child pointers are tagged: leaves carry bit 0 set, so a single load
// distinguishes leaf from inner node. All child-pointer fields are 8-byte
// aligned, making pointer swaps failure-atomic.
//
// Keys handed to these trees must not contain 0x00: like the libart-based
// implementations the paper builds on (which index C strings), the trees
// append a terminating zero byte internally so no key is a prefix of
// another.
package pmart

import (
	"fmt"
	"sort"
	"sync"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// Node types stored in the first header byte.
const (
	TypeNode4 byte = iota + 1
	TypeNode16
	TypeNode48
	TypeNode256
)

// MaxStoredPrefix is the number of prefix bytes kept in the node header.
const MaxStoredPrefix = 6

// MaxKeyLen mirrors HART's 24-byte key bound; with the internal
// terminator a traversal consumes at most MaxKeyLen+1 bytes.
const MaxKeyLen = 24

// Node sizes in bytes.
const (
	Node4Size   = 8 + 8 + 4*8        // 48
	Node16Size  = 8 + 8 + 16 + 16*8  // 160
	Node48Size  = 8 + 8 + 256 + 48*8 // 656
	Node256Size = 8 + 256*8          // 2056
	LeafSize    = 40                 // valueWord(8) + keyLen(1) + key(24) + pad
)

// Header field offsets.
const (
	offType      = 0
	offPrefixLen = 1
	offPrefix    = 2
)

// Per-kind field offsets.
const (
	n4SlotWord   = 8 // bytes 0-3 keys, byte 4 valid nibble
	n4Children   = 16
	n16Bitmap    = 8 // low 16 bits
	n16Keys      = 16
	n16Children  = 32
	n48Bitmap    = 8 // low 48 bits
	n48Index     = 16
	n48Children  = 272
	n256Children = 8
)

// Leaf field offsets (same packing as HART's leaf: bits 0-55 of the value
// word are the value-object offset, bits 56-63 its length).
const (
	LeafValueWord = 0
	LeafKeyLen    = 8
	LeafKey       = 9
)

// PackValue encodes a value pointer and length into a leaf value word.
func PackValue(p pmem.Ptr, n int) uint64 {
	return uint64(p)&((1<<56)-1) | uint64(n)<<56
}

// UnpackValue decodes a leaf value word.
func UnpackValue(w uint64) (pmem.Ptr, int) {
	return pmem.Ptr(w & ((1 << 56) - 1)), int(w >> 56)
}

// TagLeaf marks a pointer as referencing a leaf.
func TagLeaf(p pmem.Ptr) pmem.Ptr { return p | 1 }

// IsLeaf reports whether a tagged pointer references a leaf.
func IsLeaf(p pmem.Ptr) bool { return p&1 != 0 }

// Untag strips the leaf tag.
func Untag(p pmem.Ptr) pmem.Ptr { return p &^ 1 }

// NodeType reads an inner node's type byte.
func NodeType(a *pmem.Arena, n pmem.Ptr) byte { return a.Read1(n + offType) }

// SizeOf returns the byte size of the node kind.
func SizeOf(typ byte) int64 {
	switch typ {
	case TypeNode4:
		return Node4Size
	case TypeNode16:
		return Node16Size
	case TypeNode48:
		return Node48Size
	case TypeNode256:
		return Node256Size
	default:
		panic(fmt.Sprintf("pmart: unknown node type %d", typ))
	}
}

// WriteHeader initialises a node's header (caller persists).
func WriteHeader(a *pmem.Arena, n pmem.Ptr, typ byte, prefix []byte) {
	a.Write1(n+offType, typ)
	a.Write1(n+offPrefixLen, byte(len(prefix)))
	stored := prefix
	if len(stored) > MaxStoredPrefix {
		stored = stored[:MaxStoredPrefix]
	}
	var buf [MaxStoredPrefix]byte
	copy(buf[:], stored)
	a.WriteAt(n+offPrefix, buf[:])
}

// ReadPrefix returns a node's full prefix length and the stored prefix
// bytes (at most MaxStoredPrefix of them).
func ReadPrefix(a *pmem.Arena, n pmem.Ptr) (full int, stored []byte) {
	full = int(a.Read1(n + offPrefixLen))
	m := full
	if m > MaxStoredPrefix {
		m = MaxStoredPrefix
	}
	stored = make([]byte, m)
	a.ReadAt(n+offPrefix, stored)
	return full, stored
}

// FindChild locates the child under edge byte b. It returns the PM address
// of the child-pointer slot (for atomic replacement) and the tagged child
// pointer, or (Nil, Nil) when absent.
func FindChild(a *pmem.Arena, n pmem.Ptr, b byte) (slotAddr, child pmem.Ptr) {
	switch NodeType(a, n) {
	case TypeNode4:
		w := a.Read8(n + n4SlotWord)
		valid := byte(w >> 32)
		for i := 0; i < 4; i++ {
			if valid&(1<<uint(i)) != 0 && byte(w>>(8*uint(i))) == b {
				addr := n + n4Children + pmem.Ptr(i*8)
				return addr, a.ReadPtr(addr)
			}
		}
	case TypeNode16:
		bm := a.Read8(n + n16Bitmap)
		var keys [16]byte
		a.ReadAt(n+n16Keys, keys[:])
		for i := 0; i < 16; i++ {
			if bm&(1<<uint(i)) != 0 && keys[i] == b {
				addr := n + n16Children + pmem.Ptr(i*8)
				return addr, a.ReadPtr(addr)
			}
		}
	case TypeNode48:
		if s := a.Read1(n + n48Index + pmem.Ptr(b)); s != 0 {
			addr := n + n48Children + pmem.Ptr(int(s-1)*8)
			return addr, a.ReadPtr(addr)
		}
	case TypeNode256:
		addr := n + n256Children + pmem.Ptr(int(b)*8)
		if c := a.ReadPtr(addr); !c.IsNil() {
			return addr, c
		}
	}
	return pmem.Nil, pmem.Nil
}

// Edge pairs an edge byte with its tagged child pointer.
type Edge struct {
	Byte  byte
	Child pmem.Ptr
}

// Edges returns a node's populated edges in ascending key-byte order.
func Edges(a *pmem.Arena, n pmem.Ptr) []Edge {
	var out []Edge
	switch NodeType(a, n) {
	case TypeNode4:
		w := a.Read8(n + n4SlotWord)
		valid := byte(w >> 32)
		for i := 0; i < 4; i++ {
			if valid&(1<<uint(i)) != 0 {
				out = append(out, Edge{byte(w >> (8 * uint(i))), a.ReadPtr(n + n4Children + pmem.Ptr(i*8))})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Byte < out[j].Byte })
	case TypeNode16:
		bm := a.Read8(n + n16Bitmap)
		var keys [16]byte
		a.ReadAt(n+n16Keys, keys[:])
		for i := 0; i < 16; i++ {
			if bm&(1<<uint(i)) != 0 {
				out = append(out, Edge{keys[i], a.ReadPtr(n + n16Children + pmem.Ptr(i*8))})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Byte < out[j].Byte })
	case TypeNode48:
		var idx [256]byte
		a.ReadAt(n+n48Index, idx[:])
		var kids [48 * 8]byte
		a.ReadAt(n+n48Children, kids[:])
		for kb := 0; kb < 256; kb++ {
			if s := idx[kb]; s != 0 {
				c := pmem.Ptr(le64(kids[int(s-1)*8:]))
				out = append(out, Edge{byte(kb), c})
			}
		}
	case TypeNode256:
		var kids [256 * 8]byte
		a.ReadAt(n+n256Children, kids[:])
		for kb := 0; kb < 256; kb++ {
			if c := pmem.Ptr(le64(kids[kb*8:])); !c.IsNil() {
				out = append(out, Edge{byte(kb), c})
			}
		}
	}
	return out
}

// le64 decodes a little-endian uint64.
func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// CountChildren returns the number of populated edges.
func CountChildren(a *pmem.Arena, n pmem.Ptr) int {
	switch NodeType(a, n) {
	case TypeNode4:
		w := a.Read8(n + n4SlotWord)
		c := 0
		for i := 0; i < 4; i++ {
			if byte(w>>32)&(1<<uint(i)) != 0 {
				c++
			}
		}
		return c
	case TypeNode16:
		bm := a.Read8(n+n16Bitmap) & 0xffff
		c := 0
		for ; bm != 0; bm &= bm - 1 {
			c++
		}
		return c
	case TypeNode48:
		bm := a.Read8(n+n48Bitmap) & ((1 << 48) - 1)
		c := 0
		for ; bm != 0; bm &= bm - 1 {
			c++
		}
		return c
	case TypeNode256:
		var kids [256 * 8]byte
		a.ReadAt(n+n256Children, kids[:])
		c := 0
		for kb := 0; kb < 256; kb++ {
			if le64(kids[kb*8:]) != 0 {
				c++
			}
		}
		return c
	}
	return 0
}

// LeafMatches reports whether the leaf stores exactly key.
func LeafMatches(a *pmem.Arena, leaf pmem.Ptr, key []byte) bool {
	n := int(a.Read1(leaf + LeafKeyLen))
	if n != len(key) || n > MaxKeyLen {
		return false
	}
	buf := make([]byte, n)
	a.ReadAt(leaf+LeafKey, buf)
	for i := range buf {
		if buf[i] != key[i] {
			return false
		}
	}
	return true
}

// LeafKeyBytes reads a leaf's full key.
func LeafKeyBytes(a *pmem.Arena, leaf pmem.Ptr) []byte {
	n := int(a.Read1(leaf + LeafKeyLen))
	if n > MaxKeyLen {
		n = MaxKeyLen
	}
	buf := make([]byte, n)
	a.ReadAt(leaf+LeafKey, buf)
	return buf
}

// NodeAlloc is the "existing PM allocator" the baselines sit on: a
// persistent bump allocator with volatile per-size free lists, plus the
// per-operation metadata persistence a general-purpose PM allocator pays
// (the paper's Section III.A.4 premise: "existing persistent memory
// allocators exhibit poor performance when allocating numerous small
// objects", citing Makalu and the FPTree authors' allocator). Following
// PMDK-style allocators, every Alloc durably records the operation in a
// redo log and updates persistent heap metadata (two 8-byte persists);
// every Free writes one. EPallocator exists precisely to amortise this
// cost over 56-object chunks, so the baselines must pay it for the
// comparison to reproduce the paper's.
//
// Freed space is reusable within a run, but — unlike EPallocator — the
// free lists die with the process, so a crash leaks whatever was in
// flight or freed-but-unreused. This models the persistent-leak exposure
// the paper attributes to WOART and ART+CoW.
type NodeAlloc struct {
	arena *pmem.Arena
	mu    sync.Mutex
	free  map[int64][]pmem.Ptr
	// meta is the allocator's persistent metadata cell (redo-log slot +
	// heap-state word), lazily reserved.
	meta pmem.Ptr
	// Live tracks net allocated bytes for the memory experiment.
	live int64
}

// NewNodeAlloc returns an allocator over the arena.
func NewNodeAlloc(arena *pmem.Arena) *NodeAlloc {
	return &NodeAlloc{arena: arena, free: make(map[int64][]pmem.Ptr)}
}

// chargeMeta durably records allocator metadata: one redo-log entry and,
// for allocations, one heap-state update (PMDK pmemobj performs the
// equivalent flushes on every pmemobj_alloc/free).
func (na *NodeAlloc) chargeMeta(p pmem.Ptr, persists int) {
	if na.meta.IsNil() {
		m, err := na.arena.Reserve(64, 64)
		if err != nil {
			return // metadata accounting is best-effort near exhaustion
		}
		na.meta = m
	}
	for i := 0; i < persists; i++ {
		na.arena.Write8(na.meta+pmem.Ptr(8*i), uint64(p)|uint64(i)<<56)
		na.arena.Persist(na.meta+pmem.Ptr(8*i), 8)
	}
}

// Alloc returns a zeroed block of the given size.
func (na *NodeAlloc) Alloc(size int64) (pmem.Ptr, error) {
	na.mu.Lock()
	defer na.mu.Unlock()
	na.live += size
	if lst := na.free[size]; len(lst) > 0 {
		p := lst[len(lst)-1]
		na.free[size] = lst[:len(lst)-1]
		na.arena.WriteAt(p, make([]byte, size)) // reused blocks carry stale data
		na.chargeMeta(p, 2)
		return p, nil
	}
	p, err := na.arena.Reserve(size, 8)
	if err != nil {
		return pmem.Nil, err
	}
	na.chargeMeta(p, 2)
	return p, nil
}

// Free returns a block to the (volatile) free list.
func (na *NodeAlloc) Free(p pmem.Ptr, size int64) {
	na.mu.Lock()
	defer na.mu.Unlock()
	na.live -= size
	na.free[size] = append(na.free[size], p)
	na.chargeMeta(p, 1)
}

// LiveBytes returns net allocated bytes.
func (na *NodeAlloc) LiveBytes() int64 {
	na.mu.Lock()
	defer na.mu.Unlock()
	return na.live
}
