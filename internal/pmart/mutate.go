package pmart

import (
	"fmt"
	"math/bits"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// This file holds the two mutation styles the baselines use over the
// shared layouts:
//
//   - In-place, failure-ordered mutations (WOART, Section II.C of the HART
//     paper / Lee et al. FAST'17): each node kind commits an insertion
//     with a final 8-byte-atomic (or 1-byte-atomic) "publish" store, so a
//     crash either exposes the new child or leaves the node unchanged.
//
//   - Whole-node construction (ART+CoW): new nodes are fully written and
//     persisted before a single atomic pointer swap publishes them.

// AddChildInPlace inserts (b -> child) into n using the kind's
// failure-atomic publish protocol. It returns false when the node is full
// and must be grown. child must already be persistent.
func AddChildInPlace(a *pmem.Arena, n pmem.Ptr, b byte, child pmem.Ptr) bool {
	switch NodeType(a, n) {
	case TypeNode4:
		w := a.Read8(n + n4SlotWord)
		valid := byte(w >> 32)
		slot := -1
		for i := 0; i < 4; i++ {
			if valid&(1<<uint(i)) == 0 {
				slot = i
				break
			}
		}
		if slot < 0 {
			return false
		}
		// Child pointer first, then one atomic slot-word store publishes
		// both the key byte and the valid bit (the WOART NODE4 protocol).
		addr := n + n4Children + pmem.Ptr(slot*8)
		a.WritePtr(addr, child)
		a.Persist(addr, 8)
		w &^= uint64(0xff) << (8 * uint(slot))
		w |= uint64(b) << (8 * uint(slot))
		w |= uint64(1) << (32 + uint(slot))
		a.Write8(n+n4SlotWord, w)
		a.Persist(n+n4SlotWord, 8)
		return true

	case TypeNode16:
		bm := a.Read8(n + n16Bitmap)
		slot := -1
		for i := 0; i < 16; i++ {
			if bm&(1<<uint(i)) == 0 {
				slot = i
				break
			}
		}
		if slot < 0 {
			return false
		}
		// Key byte and child pointer first, bitmap bit last (atomic
		// publish, the WOART NODE16 protocol).
		a.Write1(n+n16Keys+pmem.Ptr(slot), b)
		addr := n + n16Children + pmem.Ptr(slot*8)
		a.WritePtr(addr, child)
		a.Persist(n+n16Keys+pmem.Ptr(slot), 1)
		a.Persist(addr, 8)
		a.Write8(n+n16Bitmap, bm|1<<uint(slot))
		a.Persist(n+n16Bitmap, 8)
		return true

	case TypeNode48:
		bm := a.Read8(n + n48Bitmap)
		slot := bits.TrailingZeros64(^bm & ((1 << 48) - 1))
		if slot >= 48 {
			return false
		}
		// Claim the slot (pointer + bitmap), then publish via the 1-byte
		// index store, which is atomic (the WOART NODE48 protocol).
		addr := n + n48Children + pmem.Ptr(slot*8)
		a.WritePtr(addr, child)
		a.Persist(addr, 8)
		a.Write8(n+n48Bitmap, bm|1<<uint(slot))
		a.Persist(n+n48Bitmap, 8)
		a.Write1(n+n48Index+pmem.Ptr(b), byte(slot+1))
		a.Persist(n+n48Index+pmem.Ptr(b), 1)
		return true

	case TypeNode256:
		// A single atomic pointer store publishes the child.
		addr := n + n256Children + pmem.Ptr(int(b)*8)
		a.WritePtr(addr, child)
		a.Persist(addr, 8)
		return true
	}
	panic("pmart: AddChildInPlace on unknown node type")
}

// RemoveChildInPlace removes edge b from n with the kind's atomic
// unpublish store. It reports whether the edge existed.
func RemoveChildInPlace(a *pmem.Arena, n pmem.Ptr, b byte) bool {
	switch NodeType(a, n) {
	case TypeNode4:
		w := a.Read8(n + n4SlotWord)
		valid := byte(w >> 32)
		for i := 0; i < 4; i++ {
			if valid&(1<<uint(i)) != 0 && byte(w>>(8*uint(i))) == b {
				w &^= uint64(1) << (32 + uint(i))
				a.Write8(n+n4SlotWord, w)
				a.Persist(n+n4SlotWord, 8)
				return true
			}
		}
	case TypeNode16:
		bm := a.Read8(n + n16Bitmap)
		var keys [16]byte
		a.ReadAt(n+n16Keys, keys[:])
		for i := 0; i < 16; i++ {
			if bm&(1<<uint(i)) != 0 && keys[i] == b {
				a.Write8(n+n16Bitmap, bm&^(1<<uint(i)))
				a.Persist(n+n16Bitmap, 8)
				return true
			}
		}
	case TypeNode48:
		if s := a.Read1(n + n48Index + pmem.Ptr(b)); s != 0 {
			// Unpublish via the index byte, then release the slot.
			a.Write1(n+n48Index+pmem.Ptr(b), 0)
			a.Persist(n+n48Index+pmem.Ptr(b), 1)
			bm := a.Read8(n + n48Bitmap)
			a.Write8(n+n48Bitmap, bm&^(1<<uint(s-1)))
			a.Persist(n+n48Bitmap, 8)
			return true
		}
	case TypeNode256:
		addr := n + n256Children + pmem.Ptr(int(b)*8)
		if !a.ReadPtr(addr).IsNil() {
			a.WritePtr(addr, pmem.Nil)
			a.Persist(addr, 8)
			return true
		}
	}
	return false
}

// ReplaceChildAt atomically swaps the child pointer stored at slotAddr.
func ReplaceChildAt(a *pmem.Arena, slotAddr, child pmem.Ptr) {
	a.WritePtr(slotAddr, child)
	a.Persist(slotAddr, 8)
}

// GrownType returns the next larger node kind.
func GrownType(typ byte) byte {
	switch typ {
	case TypeNode4:
		return TypeNode16
	case TypeNode16:
		return TypeNode48
	case TypeNode48:
		return TypeNode256
	}
	panic(fmt.Sprintf("pmart: cannot grow node type %d", typ))
}

// ShrunkType returns the next smaller kind and the occupancy at which a
// node should shrink into it (mirroring package art's thresholds).
func ShrunkType(typ byte) (byte, int) {
	switch typ {
	case TypeNode16:
		return TypeNode4, 3
	case TypeNode48:
		return TypeNode16, 12
	case TypeNode256:
		return TypeNode48, 37
	}
	return 0, -1
}

// BuildNode constructs a fully formed node of the given kind with the
// given prefix and edges, persists it, and returns it. Both WOART (for
// grow/shrink/split) and ART+CoW (for every mutation) publish such nodes
// with a single subsequent pointer swap.
func BuildNode(a *pmem.Arena, na *NodeAlloc, typ byte, prefix []byte, edges []Edge) (pmem.Ptr, error) {
	if want := minTypeFor(len(edges)); typ < want {
		typ = want
	}
	size := SizeOf(typ)
	n, err := na.Alloc(size)
	if err != nil {
		return pmem.Nil, err
	}
	WriteHeader(a, n, typ, prefix)
	switch typ {
	case TypeNode4:
		var w uint64
		for i, e := range edges {
			a.WritePtr(n+n4Children+pmem.Ptr(i*8), e.Child)
			w |= uint64(e.Byte) << (8 * uint(i))
			w |= uint64(1) << (32 + uint(i))
		}
		a.Write8(n+n4SlotWord, w)
	case TypeNode16:
		var bm uint64
		for i, e := range edges {
			a.Write1(n+n16Keys+pmem.Ptr(i), e.Byte)
			a.WritePtr(n+n16Children+pmem.Ptr(i*8), e.Child)
			bm |= 1 << uint(i)
		}
		a.Write8(n+n16Bitmap, bm)
	case TypeNode48:
		var bm uint64
		for i, e := range edges {
			a.WritePtr(n+n48Children+pmem.Ptr(i*8), e.Child)
			a.Write1(n+n48Index+pmem.Ptr(e.Byte), byte(i+1))
			bm |= 1 << uint(i)
		}
		a.Write8(n+n48Bitmap, bm)
	case TypeNode256:
		for _, e := range edges {
			a.WritePtr(n+n256Children+pmem.Ptr(int(e.Byte)*8), e.Child)
		}
	}
	a.Persist(n, int(size))
	return n, nil
}

// minTypeFor returns the smallest node kind holding n edges.
func minTypeFor(n int) byte {
	switch {
	case n <= 4:
		return TypeNode4
	case n <= 16:
		return TypeNode16
	case n <= 48:
		return TypeNode48
	default:
		return TypeNode256
	}
}

// BuildLeaf allocates and persists a leaf holding key and the given packed
// value word.
func BuildLeaf(a *pmem.Arena, na *NodeAlloc, key []byte, valueWord uint64) (pmem.Ptr, error) {
	if len(key) > MaxKeyLen {
		return pmem.Nil, fmt.Errorf("pmart: key length %d exceeds %d", len(key), MaxKeyLen)
	}
	leaf, err := na.Alloc(LeafSize)
	if err != nil {
		return pmem.Nil, err
	}
	a.Write8(leaf+LeafValueWord, valueWord)
	a.Write1(leaf+LeafKeyLen, byte(len(key)))
	a.WriteAt(leaf+LeafKey, key)
	a.Persist(leaf, LeafSize)
	return leaf, nil
}
