package pmart

import (
	"bytes"
	"fmt"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// Read-side tree operations shared by WOART and ART+CoW. Both trees store
// the same node layouts; they differ only in how they mutate.

// Terminated returns key with the internal zero terminator appended,
// making the indexed key set prefix-free.
func Terminated(key []byte) []byte {
	tk := make([]byte, len(key)+1)
	copy(tk, key)
	return tk
}

// Lookup descends from root to the leaf holding key, or Nil. The final
// leaf comparison also covers optimistically skipped prefix bytes.
func Lookup(a *pmem.Arena, root pmem.Ptr, key []byte) pmem.Ptr {
	tk := Terminated(key)
	n := root
	depth := 0
	for !n.IsNil() {
		if IsLeaf(n) {
			leaf := Untag(n)
			if LeafMatches(a, leaf, key) {
				return leaf
			}
			return pmem.Nil
		}
		full, stored := ReadPrefix(a, n)
		if len(tk)-depth < full {
			return pmem.Nil
		}
		if !bytes.Equal(stored, tk[depth:depth+len(stored)]) {
			return pmem.Nil
		}
		depth += full
		if depth >= len(tk) {
			return pmem.Nil
		}
		_, child := FindChild(a, n, tk[depth])
		n = child
		depth++
	}
	return pmem.Nil
}

// MinLeaf returns the smallest leaf under n, or Nil.
func MinLeaf(a *pmem.Arena, n pmem.Ptr) pmem.Ptr {
	for !n.IsNil() && !IsLeaf(n) {
		edges := Edges(a, n)
		if len(edges) == 0 {
			return pmem.Nil
		}
		n = edges[0].Child
	}
	return Untag(n)
}

// RealPrefix recovers the full prefix bytes of node n at tree depth
// `depth` by consulting the minimum leaf below it; needed whenever
// full > MaxStoredPrefix.
func RealPrefix(a *pmem.Arena, n pmem.Ptr, depth, full int) []byte {
	leaf := MinLeaf(a, n)
	if leaf.IsNil() {
		return nil
	}
	tk := Terminated(LeafKeyBytes(a, leaf))
	if depth+full > len(tk) {
		full = len(tk) - depth
	}
	if full < 0 {
		return nil
	}
	return tk[depth : depth+full]
}

// FullPrefix returns a node's complete prefix bytes, reading the header
// when it fits and falling back to RealPrefix when it does not.
func FullPrefix(a *pmem.Arena, n pmem.Ptr, depth int) []byte {
	full, stored := ReadPrefix(a, n)
	if full <= len(stored) {
		return stored
	}
	return RealPrefix(a, n, depth, full)
}

// ReadLeafValue materialises a leaf's value bytes.
func ReadLeafValue(a *pmem.Arena, leaf pmem.Ptr) []byte {
	vp, n := UnpackValue(a.Read8(leaf + LeafValueWord))
	if vp.IsNil() || n <= 0 {
		return nil
	}
	v := make([]byte, n)
	a.ReadAt(vp, v)
	return v
}

// Walk visits leaves under n in ascending key order, applying the
// [start, end) filter and stopping when fn returns false or end is
// passed. Returns false when the walk was cut short.
func Walk(a *pmem.Arena, n pmem.Ptr, start, end []byte, fn func(k, v []byte) bool) bool {
	if n.IsNil() {
		return true
	}
	if IsLeaf(n) {
		leaf := Untag(n)
		k := LeafKeyBytes(a, leaf)
		if start != nil && bytes.Compare(k, start) < 0 {
			return true
		}
		if end != nil && bytes.Compare(k, end) >= 0 {
			return false
		}
		return fn(k, ReadLeafValue(a, leaf))
	}
	for _, e := range Edges(a, n) {
		if !Walk(a, e.Child, start, end, fn) {
			return false
		}
	}
	return true
}

// CountRecords sizes the subtree under n.
func CountRecords(a *pmem.Arena, n pmem.Ptr) int {
	if n.IsNil() {
		return 0
	}
	if IsLeaf(n) {
		return 1
	}
	c := 0
	for _, e := range Edges(a, n) {
		c += CountRecords(a, e.Child)
	}
	return c
}

// CheckTree validates structural invariants of the tree at root: leaves
// appear in strictly ascending key order, every leaf's key routes back to
// that leaf, and the record count matches size.
func CheckTree(a *pmem.Arena, root pmem.Ptr, size int, name string) error {
	var prev []byte
	count := 0
	var verify func(n pmem.Ptr) error
	verify = func(n pmem.Ptr) error {
		if n.IsNil() {
			return nil
		}
		if IsLeaf(n) {
			k := LeafKeyBytes(a, Untag(n))
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				return fmt.Errorf("%s: keys out of order: %q then %q", name, prev, k)
			}
			prev = append(prev[:0], k...)
			count++
			if got := Lookup(a, root, k); got != Untag(n) {
				return fmt.Errorf("%s: leaf %q not reachable by its own key", name, k)
			}
			return nil
		}
		for _, e := range Edges(a, n) {
			if err := verify(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := verify(root); err != nil {
		return err
	}
	if count != size {
		return fmt.Errorf("%s: traversal found %d records, size counter says %d", name, count, size)
	}
	return nil
}
