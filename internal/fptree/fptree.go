// Package fptree implements FPTree (Oukid et al., SIGMOD 2016), the
// hybrid SCM-DRAM persistent B+-tree the HART paper compares against.
//
// Like HART, FPTree is selective about persistence: inner (routing) nodes
// live in DRAM and are rebuilt on recovery, while leaf nodes live on PM.
// Each PM leaf holds up to LeafCapacity unsorted records, a validity
// bitmap, and one-byte key hashes — the *fingerprints* — scanned before
// any key comparison so that a search probes, in expectation, exactly one
// in-leaf key (the paper's headline trick). Leaves are chained with
// persistent next pointers in key order, which gives FPTree its strong
// range-scan and recovery performance (paper Figs. 10a and 10c) at the
// cost of unsorted-leaf searches (Figs. 5 and 8b).
//
// Commit protocols:
//
//   - Insert: write entry + fingerprint into a free slot, persist, then
//     atomically set the slot's bitmap bit (8-byte store), persist.
//   - Update: write the new entry into a free slot, persist, then commit
//     by swapping old-bit/new-bit in one atomic bitmap store.
//   - Delete: clear the bit in one atomic bitmap store. Leaves are never
//     merged (Section IV.E of the HART paper notes FPTree "does not
//     coalesce a leaf node with its neighbor").
//   - Split: build the new leaf aside, persist it, then link it and prune
//     the moved entries under a persistent split micro-log.
package fptree

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"github.com/casl-sdsu/hart/internal/cachesim"
	"github.com/casl-sdsu/hart/internal/kv"
	"github.com/casl-sdsu/hart/internal/latency"
	"github.com/casl-sdsu/hart/internal/pmart"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// LeafCapacity is the number of records per PM leaf.
const LeafCapacity = 32

// MaxKeyLen and MaxValueLen mirror the other trees' limits.
const (
	MaxKeyLen   = 24
	MaxValueLen = 16
)

// PM leaf layout.
const (
	lfBitmap = 0  // 8B, low LeafCapacity bits
	lfNext   = 8  // 8B leaf-chain pointer
	lfFPs    = 16 // LeafCapacity fingerprint bytes
	lfEntry0 = 48
	// Entry layout: keyLen(1) valLen(1) key(24) val(16) pad(6).
	entrySize  = 48
	enKeyLen   = 0
	enValLen   = 1
	enKey      = 2
	enVal      = 26
	LeafSize   = lfEntry0 + LeafCapacity*entrySize
	bitmapMask = (uint64(1) << LeafCapacity) - 1
)

// Superblock layout.
const (
	sbMagicOff = 0
	sbHeadOff  = 8
	sbLogLeaf  = 16 // split log: leaf being split (armed iff != 0)
	sbLogNew   = 24 // split log: the new leaf
	sbSize     = 32

	fptMagic = 0x4650545245450001 // "FPTREE"
)

// Errors returned by the tree.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("fptree: key not found")
	// ErrBadKey reports an invalid key.
	ErrBadKey = errors.New("fptree: invalid key")
	// ErrBadValue reports an invalid value.
	ErrBadValue = errors.New("fptree: invalid value")
)

// Options configures a tree.
type Options struct {
	// ArenaSize is the simulated PM capacity (default 64 MiB).
	ArenaSize int64
	// InnerOrder is the DRAM B+-tree fanout (default 64).
	InnerOrder int
	// Latency selects PM latency emulation.
	Latency latency.Config
	// CacheModel attaches a simulated CPU cache.
	CacheModel bool
	// Tracking enables crash simulation.
	Tracking bool
}

// Tree is one FPTree instance.
type Tree struct {
	mu    sync.RWMutex
	arena *pmem.Arena
	na    *pmart.NodeAlloc
	sb    pmem.Ptr
	inner *innerTree
	order int
	size  int
}

var (
	_ kv.Index       = (*Tree)(nil)
	_ kv.Recoverable = (*Tree)(nil)
	_ kv.Checkable   = (*Tree)(nil)
)

// fingerprint is the one-byte key hash scanned before key comparisons.
func fingerprint(key []byte) byte {
	h := uint32(2166136261)
	for _, b := range key {
		h = (h ^ uint32(b)) * 16777619
	}
	return byte(h)
}

// New creates an FPTree over a fresh arena.
func New(opts Options) (*Tree, error) {
	if opts.ArenaSize == 0 {
		opts.ArenaSize = 64 << 20
	}
	if opts.InnerOrder == 0 {
		opts.InnerOrder = 64
	}
	var cache *cachesim.Cache
	if opts.CacheModel {
		cache = cachesim.Default()
	}
	arena, err := pmem.New(pmem.Config{
		Size: opts.ArenaSize, Tracking: opts.Tracking, Latency: opts.Latency, Cache: cache,
	})
	if err != nil {
		return nil, err
	}
	sb, err := arena.Reserve(sbSize, 8)
	if err != nil {
		return nil, err
	}
	t := &Tree{arena: arena, na: pmart.NewNodeAlloc(arena), sb: sb, order: opts.InnerOrder}
	head, err := t.na.Alloc(LeafSize)
	if err != nil {
		return nil, err
	}
	arena.Persist(head, LeafSize)
	arena.WritePtr(sb+sbHeadOff, head)
	arena.Write8(sb+sbLogLeaf, 0)
	arena.Write8(sb+sbLogNew, 0)
	arena.Write8(sb+sbMagicOff, fptMagic)
	arena.Persist(sb, sbSize)
	t.inner = newInnerTree(t.order, uint64(head))
	return t, nil
}

// Open attaches to an existing arena, completes any interrupted split and
// rebuilds the DRAM inner tree from the persistent leaf chain.
func Open(arena *pmem.Arena, opts Options) (*Tree, error) {
	if opts.InnerOrder == 0 {
		opts.InnerOrder = 64
	}
	sb := pmem.Ptr(pmem.HeaderSize)
	if arena.Reserved() < pmem.HeaderSize+sbSize || arena.Read8(sb+sbMagicOff) != fptMagic {
		return nil, errors.New("fptree: no tree in arena")
	}
	t := &Tree{arena: arena, na: pmart.NewNodeAlloc(arena), sb: sb, order: opts.InnerOrder}
	if err := t.recoverSplitLog(); err != nil {
		return nil, err
	}
	if err := t.Rebuild(); err != nil {
		return nil, err
	}
	return t, nil
}

// Name implements kv.Index.
func (t *Tree) Name() string { return "FPTree" }

// Arena implements kv.Index.
func (t *Tree) Arena() *pmem.Arena { return t.arena }

// Len implements kv.Index.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Close implements kv.Index.
func (t *Tree) Close() error { return nil }

// SizeInfo implements kv.Index.
func (t *Tree) SizeInfo() kv.SizeInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return kv.SizeInfo{
		PMBytes:   t.arena.Reserved(),
		DRAMBytes: t.inner.DRAMBytes(),
	}
}

// head returns the first leaf of the chain.
func (t *Tree) head() pmem.Ptr { return t.arena.ReadPtr(t.sb + sbHeadOff) }

// validate enforces the key/value contract.
func validate(key, value []byte, needValue bool) error {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return fmt.Errorf("%w: %d bytes", ErrBadKey, len(key))
	}
	if needValue && (len(value) == 0 || len(value) > MaxValueLen) {
		return fmt.Errorf("%w: %d bytes", ErrBadValue, len(value))
	}
	return nil
}

// entryAddr returns the PM address of slot i's entry.
func (t *Tree) entryAddr(leaf pmem.Ptr, i int) pmem.Ptr {
	return leaf + lfEntry0 + pmem.Ptr(i*entrySize)
}

// readEntryKey loads slot i's key.
func (t *Tree) readEntryKey(leaf pmem.Ptr, i int) []byte {
	e := t.entryAddr(leaf, i)
	n := int(t.arena.Read1(e + enKeyLen))
	if n > MaxKeyLen {
		n = MaxKeyLen
	}
	k := make([]byte, n)
	t.arena.ReadAt(e+enKey, k)
	return k
}

// readEntryValue loads slot i's value.
func (t *Tree) readEntryValue(leaf pmem.Ptr, i int) []byte {
	e := t.entryAddr(leaf, i)
	n := int(t.arena.Read1(e + enValLen))
	if n > MaxValueLen {
		n = MaxValueLen
	}
	v := make([]byte, n)
	t.arena.ReadAt(e+enVal, v)
	return v
}

// writeEntry fills slot i (entry + fingerprint) and persists both.
func (t *Tree) writeEntry(leaf pmem.Ptr, i int, key, value []byte) {
	e := t.entryAddr(leaf, i)
	t.arena.Write1(e+enKeyLen, byte(len(key)))
	t.arena.Write1(e+enValLen, byte(len(value)))
	t.arena.WriteAt(e+enKey, key)
	t.arena.WriteAt(e+enVal, value)
	t.arena.Persist(e, entrySize)
	t.arena.Write1(leaf+lfFPs+pmem.Ptr(i), fingerprint(key))
	t.arena.Persist(leaf+lfFPs+pmem.Ptr(i), 1)
}

// findInLeaf scans fingerprints first (the FPTree trick), comparing keys
// only on fingerprint hits. Returns the slot index or -1.
func (t *Tree) findInLeaf(leaf pmem.Ptr, key []byte) int {
	bm := t.arena.Read8(leaf + lfBitmap)
	if bm == 0 {
		return -1
	}
	fp := fingerprint(key)
	var fps [LeafCapacity]byte
	t.arena.ReadAt(leaf+lfFPs, fps[:])
	for i := 0; i < LeafCapacity; i++ {
		if bm&(1<<uint(i)) == 0 || fps[i] != fp {
			continue
		}
		if bytes.Equal(t.readEntryKey(leaf, i), key) {
			return i
		}
	}
	return -1
}

// freeSlot returns a free slot index in the leaf, or -1 when full.
func (t *Tree) freeSlot(leaf pmem.Ptr) int {
	bm := t.arena.Read8(leaf+lfBitmap) & bitmapMask
	for i := 0; i < LeafCapacity; i++ {
		if bm&(1<<uint(i)) == 0 {
			return i
		}
	}
	return -1
}

// setBitmap atomically publishes a new validity bitmap.
func (t *Tree) setBitmap(leaf pmem.Ptr, bm uint64) {
	t.arena.Write8(leaf+lfBitmap, bm)
	t.arena.Persist(leaf+lfBitmap, 8)
}
