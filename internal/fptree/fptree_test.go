package fptree

import (
	"fmt"
	"testing"

	"github.com/casl-sdsu/hart/internal/kv"
	"github.com/casl-sdsu/hart/internal/kv/kvtest"
	"github.com/casl-sdsu/hart/internal/pmem"
)

func factory(t *testing.T) kv.Index {
	tr, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConformance(t *testing.T) {
	kvtest.RunAll(t, factory)
}

func TestFingerprintDistribution(t *testing.T) {
	// Fingerprints must spread keys across the byte range, otherwise the
	// one-probe property is lost.
	buckets := map[byte]int{}
	for i := 0; i < 4096; i++ {
		buckets[fingerprint([]byte(fmt.Sprintf("key-%d", i)))]++
	}
	if len(buckets) < 200 {
		t.Fatalf("fingerprints hit only %d distinct bytes", len(buckets))
	}
}

func TestSplitChainsLeavesInOrder(t *testing.T) {
	tr, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Far more than one leaf's worth, inserted in adversarial order.
	const n = 2000
	for i := n - 1; i >= 0; i-- {
		if err := tr.Put([]byte(fmt.Sprintf("or%06d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// The chain supports ordered scans across many leaves.
	var got []string
	tr.Scan([]byte("or000100"), []byte("or000200"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 100 {
		t.Fatalf("range scan across split leaves: %d keys", len(got))
	}
}

func TestRecoveryRebuildsInner(t *testing.T) {
	tr, err := New(Options{ArenaSize: 64 << 20, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("rc%06d", i)), []byte(fmt.Sprintf("%08d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 5 {
		if err := tr.Delete([]byte(fmt.Sprintf("rc%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	img, err := tr.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := n - (n+4)/5
	if tr2.Len() != want {
		t.Fatalf("recovered Len = %d, want %d", tr2.Len(), want)
	}
	for i := 0; i < n; i++ {
		v, ok := tr2.Get([]byte(fmt.Sprintf("rc%06d", i)))
		if wantOK := i%5 != 0; ok != wantOK {
			t.Fatalf("rc%06d present=%v want=%v", i, ok, wantOK)
		} else if ok && string(v) != fmt.Sprintf("%08d", i) {
			t.Fatalf("rc%06d value %q", i, v)
		}
	}
	if err := tr2.Check(); err != nil {
		t.Fatal(err)
	}
	// Still writable.
	if err := tr2.Put([]byte("post-recovery"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

// TestCrashDuringSplitEveryPersist crashes a leaf split at every persist
// boundary; recovery must end with every record present exactly once.
func TestCrashDuringSplitEveryPersist(t *testing.T) {
	for fail := int64(0); ; fail++ {
		tr, err := New(Options{ArenaSize: 64 << 20, Tracking: true})
		if err != nil {
			t.Fatal(err)
		}
		// Fill exactly one leaf.
		for i := 0; i < LeafCapacity; i++ {
			if err := tr.Put([]byte(fmt.Sprintf("sp%04d", i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		tr.Arena().FailAfterPersists(fail)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.CrashError); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			// This insert forces the split.
			if err := tr.Put([]byte("sp9999"), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}()
		tr.Arena().DisarmCrash()
		if !crashed {
			if fail == 0 {
				t.Fatal("split performed no persists")
			}
			return
		}
		img, err := tr.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := Open(img, Options{})
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		if err := tr2.Check(); err != nil {
			t.Fatalf("fail=%d: post-recovery fsck: %v", fail, err)
		}
		for i := 0; i < LeafCapacity; i++ {
			k := fmt.Sprintf("sp%04d", i)
			if v, ok := tr2.Get([]byte(k)); !ok || string(v) != "v" {
				t.Fatalf("fail=%d: committed key %q = (%q,%v)", fail, k, v, ok)
			}
		}
		if _, ok := tr2.Get([]byte("sp9999")); ok && tr2.Len() != LeafCapacity+1 {
			t.Fatalf("fail=%d: inconsistent size after torn insert", fail)
		}
		// The tree keeps absorbing writes.
		for i := 0; i < 2*LeafCapacity; i++ {
			if err := tr2.Put([]byte(fmt.Sprintf("post%04d", i)), []byte("p")); err != nil {
				t.Fatalf("fail=%d: %v", fail, err)
			}
		}
		if err := tr2.Check(); err != nil {
			t.Fatalf("fail=%d: fsck after refill: %v", fail, err)
		}
	}
}

func TestEmptyLeavesAreNotCoalesced(t *testing.T) {
	tr, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Build several leaves, then empty a middle range entirely.
	const n = 200
	for i := 0; i < n; i++ {
		tr.Put([]byte(fmt.Sprintf("nc%04d", i)), []byte("v"))
	}
	pmBefore := tr.SizeInfo().PMBytes
	for i := 50; i < 150; i++ {
		if err := tr.Delete([]byte(fmt.Sprintf("nc%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// No merging: PM footprint unchanged (the paper's Fig. 10b point).
	if pmAfter := tr.SizeInfo().PMBytes; pmAfter != pmBefore {
		t.Fatalf("PM footprint changed %d -> %d; leaves must not coalesce", pmBefore, pmAfter)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Scans skip the hole.
	var got []string
	tr.Scan([]byte("nc0040"), []byte("nc0160"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 20 {
		t.Fatalf("scan across emptied leaves: %d keys", len(got))
	}
}

func TestInnerTreeRouting(t *testing.T) {
	it := newInnerTree(4, 100)
	seps := []string{"d", "h", "m", "r", "w", "b", "f", "k", "p", "t", "y", "c", "g"}
	for i, s := range seps {
		it.Insert([]byte(s), uint64(200+i))
	}
	// Keys below the first separator route to the seed target.
	if got := it.Lookup([]byte("a")); got != 100 {
		t.Fatalf("Lookup(a) = %d, want 100", got)
	}
	if got := it.Lookup([]byte("d")); got != 200 {
		t.Fatalf("Lookup(d) = %d, want 200", got)
	}
	if got := it.Lookup([]byte("dzz")); got != 200 {
		t.Fatalf("Lookup(dzz) = %d, want 200", got)
	}
	if got := it.Lookup([]byte("zzz")); got != 210 {
		t.Fatalf("Lookup(zzz) = %d, want 210 (separator y)", got)
	}
	if nodes, height := it.Stats(); nodes < 2 || height < 2 {
		t.Fatalf("inner tree did not split: %d nodes, height %d", nodes, height)
	}
	if it.DRAMBytes() <= 0 {
		t.Fatal("DRAMBytes not positive")
	}
}

// TestUpdateInFullLeafSplits: an update that finds no free slot must
// split first and still swap atomically.
func TestUpdateInFullLeafSplits(t *testing.T) {
	tr, err := New(Options{ArenaSize: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Fill one leaf exactly.
	for i := 0; i < LeafCapacity; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("uf%04d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	// Every slot is occupied: any update needs a free slot, forcing a split.
	if err := tr.Update([]byte("uf0000"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Get([]byte("uf0000")); !ok || string(v) != "new" {
		t.Fatalf("updated value = (%q,%v)", v, ok)
	}
	for i := 1; i < LeafCapacity; i++ {
		if v, ok := tr.Get([]byte(fmt.Sprintf("uf%04d", i))); !ok || string(v) != "old" {
			t.Fatalf("sibling uf%04d damaged: (%q,%v)", i, v, ok)
		}
	}
	if tr.Len() != LeafCapacity {
		t.Fatalf("Len = %d after in-place update, want %d", tr.Len(), LeafCapacity)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateAtomicityAcrossCrash: the bitmap-swap update commits old->new
// atomically; a crash at every persist boundary leaves exactly one of the
// two values visible.
func TestUpdateAtomicityAcrossCrash(t *testing.T) {
	for fail := int64(0); ; fail++ {
		tr, err := New(Options{ArenaSize: 16 << 20, Tracking: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := tr.Put([]byte(fmt.Sprintf("ua%02d", i)), []byte("oldval")); err != nil {
				t.Fatal(err)
			}
		}
		tr.Arena().FailAfterPersists(fail)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.CrashError); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			if err := tr.Update([]byte("ua03"), []byte("newval")); err != nil {
				t.Fatal(err)
			}
		}()
		tr.Arena().DisarmCrash()
		if !crashed {
			if fail == 0 {
				t.Fatal("update performed no persists")
			}
			return
		}
		img, err := tr.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := Open(img, Options{})
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		v, ok := tr2.Get([]byte("ua03"))
		if !ok {
			t.Fatalf("fail=%d: key vanished mid-update", fail)
		}
		if s := string(v); s != "oldval" && s != "newval" {
			t.Fatalf("fail=%d: torn update: %q", fail, s)
		}
		if err := tr2.Check(); err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
	}
}

// TestScanFromMidLeafStart: a scan whose start key routes into the middle
// of a leaf skips that leaf's smaller entries.
func TestScanFromMidLeafStart(t *testing.T) {
	tr, err := New(Options{ArenaSize: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tr.Put([]byte(fmt.Sprintf("sm%04d", i)), []byte("v"))
	}
	var got []string
	tr.Scan([]byte("sm0013"), []byte("sm0017"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"sm0013", "sm0014", "sm0015", "sm0016"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("mid-leaf scan = %v, want %v", got, want)
	}
}
