package fptree

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// Put implements kv.Index.
func (t *Tree) Put(key, value []byte) error {
	if err := validate(key, value, true); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := pmem.Ptr(t.inner.Lookup(key))
	if i := t.findInLeaf(leaf, key); i >= 0 {
		return t.updateInLeaf(leaf, i, key, value)
	}
	return t.insertNew(leaf, key, value)
}

// Update implements kv.Index.
func (t *Tree) Update(key, value []byte) error {
	if err := validate(key, value, true); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := pmem.Ptr(t.inner.Lookup(key))
	i := t.findInLeaf(leaf, key)
	if i < 0 {
		return ErrNotFound
	}
	return t.updateInLeaf(leaf, i, key, value)
}

// insertNew adds a record to the routed leaf, splitting when full.
func (t *Tree) insertNew(leaf pmem.Ptr, key, value []byte) error {
	slot := t.freeSlot(leaf)
	if slot < 0 {
		if err := t.split(leaf); err != nil {
			return err
		}
		// The key may now route to the new sibling.
		leaf = pmem.Ptr(t.inner.Lookup(key))
		slot = t.freeSlot(leaf)
		if slot < 0 {
			return fmt.Errorf("fptree: leaf still full after split")
		}
	}
	// Entry + fingerprint first, bitmap-bit commit last.
	t.writeEntry(leaf, slot, key, value)
	bm := t.arena.Read8(leaf + lfBitmap)
	t.setBitmap(leaf, bm|1<<uint(slot))
	t.size++
	return nil
}

// updateInLeaf performs FPTree's out-of-place in-leaf update: the new
// entry lands in a free slot, and one atomic bitmap store swaps the old
// slot out and the new slot in.
func (t *Tree) updateInLeaf(leaf pmem.Ptr, old int, key, value []byte) error {
	slot := t.freeSlot(leaf)
	if slot < 0 {
		if err := t.split(leaf); err != nil {
			return err
		}
		leaf = pmem.Ptr(t.inner.Lookup(key))
		old = t.findInLeaf(leaf, key)
		if old < 0 {
			return fmt.Errorf("fptree: record lost across split")
		}
		slot = t.freeSlot(leaf)
		if slot < 0 {
			return fmt.Errorf("fptree: leaf still full after split")
		}
	}
	t.writeEntry(leaf, slot, key, value)
	bm := t.arena.Read8(leaf + lfBitmap)
	t.setBitmap(leaf, bm&^(1<<uint(old))|1<<uint(slot))
	return nil
}

// Delete implements kv.Index: one atomic bitmap store invalidates the
// record; leaves are never merged.
func (t *Tree) Delete(key []byte) error {
	if err := validate(key, nil, false); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := pmem.Ptr(t.inner.Lookup(key))
	i := t.findInLeaf(leaf, key)
	if i < 0 {
		return ErrNotFound
	}
	bm := t.arena.Read8(leaf + lfBitmap)
	t.setBitmap(leaf, bm&^(1<<uint(i)))
	t.size--
	return nil
}

// Get implements kv.Index.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	if validate(key, nil, false) != nil {
		return nil, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := pmem.Ptr(t.inner.Lookup(key))
	i := t.findInLeaf(leaf, key)
	if i < 0 {
		return nil, false
	}
	return t.readEntryValue(leaf, i), true
}

// split divides a full leaf at its median key: the new right sibling is
// fully built and persisted aside, then published under the split
// micro-log (link, then bitmap prune), and finally announced to the DRAM
// routing tree.
func (t *Tree) split(leaf pmem.Ptr) error {
	type rec struct {
		slot int
		key  []byte
	}
	var recs []rec
	bm := t.arena.Read8(leaf + lfBitmap)
	for i := 0; i < LeafCapacity; i++ {
		if bm&(1<<uint(i)) != 0 {
			recs = append(recs, rec{i, t.readEntryKey(leaf, i)})
		}
	}
	if len(recs) < 2 {
		return fmt.Errorf("fptree: splitting leaf with %d records", len(recs))
	}
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i].key, recs[j].key) < 0 })
	upper := recs[len(recs)/2:]

	newLeaf, err := t.na.Alloc(LeafSize)
	if err != nil {
		return err
	}
	var movedBits uint64
	var newBM uint64
	for j, r := range upper {
		v := t.readEntryValue(leaf, r.slot)
		e := t.entryAddr(newLeaf, j)
		t.arena.Write1(e+enKeyLen, byte(len(r.key)))
		t.arena.Write1(e+enValLen, byte(len(v)))
		t.arena.WriteAt(e+enKey, r.key)
		t.arena.WriteAt(e+enVal, v)
		t.arena.Write1(newLeaf+lfFPs+pmem.Ptr(j), fingerprint(r.key))
		newBM |= 1 << uint(j)
		movedBits |= 1 << uint(r.slot)
	}
	t.arena.Write8(newLeaf+lfBitmap, newBM)
	t.arena.WritePtr(newLeaf+lfNext, t.arena.ReadPtr(leaf+lfNext))
	t.arena.Persist(newLeaf, LeafSize)

	// Arm the split log (PNew first; armed iff PLeaf != 0).
	t.arena.WritePtr(t.sb+sbLogNew, newLeaf)
	t.arena.Persist(t.sb+sbLogNew, 8)
	t.arena.WritePtr(t.sb+sbLogLeaf, leaf)
	t.arena.Persist(t.sb+sbLogLeaf, 8)

	// Link the sibling, prune the moved entries, disarm.
	t.arena.WritePtr(leaf+lfNext, newLeaf)
	t.arena.Persist(leaf+lfNext, 8)
	t.setBitmap(leaf, bm&^movedBits)
	t.arena.WritePtr(t.sb+sbLogLeaf, pmem.Nil)
	t.arena.Persist(t.sb+sbLogLeaf, 8)

	t.inner.Insert(upper[0].key, uint64(newLeaf))
	return nil
}

// recoverSplitLog completes a split interrupted by a crash.
func (t *Tree) recoverSplitLog() error {
	leaf := t.arena.ReadPtr(t.sb + sbLogLeaf)
	if leaf.IsNil() {
		return nil
	}
	newLeaf := t.arena.ReadPtr(t.sb + sbLogNew)
	if t.arena.ReadPtr(leaf+lfNext) == newLeaf {
		// Linked: redo the prune (clear every old slot whose key exists in
		// the sibling) — idempotent.
		bm := t.arena.Read8(leaf + lfBitmap)
		for i := 0; i < LeafCapacity; i++ {
			if bm&(1<<uint(i)) == 0 {
				continue
			}
			if t.findInLeaf(newLeaf, t.readEntryKey(leaf, i)) >= 0 {
				bm &^= 1 << uint(i)
			}
		}
		t.setBitmap(leaf, bm)
	} else {
		// Never linked: the sibling is unreachable garbage; hand it back
		// to the (volatile) allocator for reuse.
		t.na.Free(newLeaf, LeafSize)
	}
	t.arena.WritePtr(t.sb+sbLogLeaf, pmem.Nil)
	t.arena.Persist(t.sb+sbLogLeaf, 8)
	return nil
}

// Rebuild implements kv.Recoverable: it reconstructs the DRAM inner tree
// by walking the persistent leaf chain in key order (the recovery the
// paper measures in Fig. 10c — fast because each leaf carries up to
// LeafCapacity records).
func (t *Tree) Rebuild() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	head := t.head()
	t.inner = newInnerTree(t.order, uint64(head))
	t.size = 0
	first := true
	for leaf := head; !leaf.IsNil(); leaf = t.arena.ReadPtr(leaf + lfNext) {
		bm := t.arena.Read8(leaf+lfBitmap) & bitmapMask
		var minKey []byte
		for i := 0; i < LeafCapacity; i++ {
			if bm&(1<<uint(i)) == 0 {
				continue
			}
			t.size++
			k := t.readEntryKey(leaf, i)
			if minKey == nil || bytes.Compare(k, minKey) < 0 {
				minKey = k
			}
		}
		if first {
			first = false // the head leaf is the routing tree's seed
			continue
		}
		if minKey != nil {
			t.inner.Insert(minKey, uint64(leaf))
		}
	}
	return nil
}

// Scan implements kv.Index: route to the starting leaf, then follow the
// persistent leaf chain, sorting each leaf's (unsorted) valid entries.
func (t *Tree) Scan(start, end []byte, fn func(key, value []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var leaf pmem.Ptr
	if start == nil {
		leaf = t.head()
	} else {
		leaf = pmem.Ptr(t.inner.Lookup(start))
	}
	for ; !leaf.IsNil(); leaf = t.arena.ReadPtr(leaf + lfNext) {
		bm := t.arena.Read8(leaf+lfBitmap) & bitmapMask
		type rec struct {
			k, v []byte
		}
		var recs []rec
		for i := 0; i < LeafCapacity; i++ {
			if bm&(1<<uint(i)) == 0 {
				continue
			}
			recs = append(recs, rec{t.readEntryKey(leaf, i), t.readEntryValue(leaf, i)})
		}
		sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i].k, recs[j].k) < 0 })
		for _, r := range recs {
			if start != nil && bytes.Compare(r.k, start) < 0 {
				continue
			}
			if end != nil && bytes.Compare(r.k, end) >= 0 {
				return
			}
			if !fn(r.k, r.v) {
				return
			}
		}
	}
}

// Check is FPTree's fsck: leaf-chain order, fingerprint integrity,
// routing consistency and record count.
func (t *Tree) Check() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	count := 0
	var prevMax []byte
	seen := map[string]bool{}
	for leaf := t.head(); !leaf.IsNil(); leaf = t.arena.ReadPtr(leaf + lfNext) {
		bm := t.arena.Read8(leaf+lfBitmap) & bitmapMask
		var keys [][]byte
		for i := 0; i < LeafCapacity; i++ {
			if bm&(1<<uint(i)) == 0 {
				continue
			}
			k := t.readEntryKey(leaf, i)
			if got, want := t.arena.Read1(leaf+lfFPs+pmem.Ptr(i)), fingerprint(k); got != want {
				return fmt.Errorf("fptree: leaf %d slot %d fingerprint %#x, want %#x", leaf, i, got, want)
			}
			if seen[string(k)] {
				return fmt.Errorf("fptree: duplicate key %q", k)
			}
			seen[string(k)] = true
			if routed := pmem.Ptr(t.inner.Lookup(k)); routed != leaf {
				return fmt.Errorf("fptree: key %q lives in leaf %d but routes to %d", k, leaf, routed)
			}
			keys = append(keys, k)
			count++
		}
		if len(keys) == 0 {
			continue
		}
		sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
		if prevMax != nil && bytes.Compare(prevMax, keys[0]) >= 0 {
			return fmt.Errorf("fptree: leaf chain out of order: %q then %q", prevMax, keys[0])
		}
		prevMax = keys[len(keys)-1]
	}
	if count != t.size {
		return fmt.Errorf("fptree: chain holds %d records, size counter says %d", count, t.size)
	}
	return nil
}
