package fptree

import (
	"bytes"
	"sort"
)

// innerTree is FPTree's volatile routing structure: a B+-tree of separator
// keys kept entirely in DRAM (paper: "inner nodes are placed in DRAM"),
// mapping a key to the PM leaf whose range covers it. FPTree never merges
// leaves (Section IV.E notes it "does not coalesce a leaf node with its
// neighbor"), so the inner tree only ever inserts.
//
// Routing convention: entry i covers keys in [keys[i], keys[i+1]). The
// first leaf's separator is the empty key, so every key routes somewhere.
type innerTree struct {
	root   *inode
	order  int
	height int
	nodes  int
}

// inode is one volatile B+-tree node.
type inode struct {
	keys [][]byte
	// kids is set on internal nodes (len(kids) == len(keys)).
	kids []*inode
	// vals is set on bottom nodes (len(vals) == len(keys)); each val is an
	// opaque routing target (a PM leaf offset).
	vals []uint64
}

// isBottom reports whether n holds routing targets.
func (n *inode) isBottom() bool { return n.kids == nil }

// newInnerTree returns a routing tree with a single target covering the
// whole key space.
func newInnerTree(order int, firstTarget uint64) *innerTree {
	if order < 4 {
		order = 4
	}
	return &innerTree{
		root:   &inode{keys: [][]byte{{}}, vals: []uint64{firstTarget}},
		order:  order,
		height: 1,
		nodes:  1,
	}
}

// upperBound returns the index of the last key <= k in n.keys. Keys are
// sorted and keys[0] is always a lower bound of the subtree, so the result
// is >= 0 for routable keys.
func upperBound(keys [][]byte, k []byte) int {
	// sort.Search finds the first index with keys[i] > k.
	i := sort.Search(len(keys), func(i int) bool { return bytes.Compare(keys[i], k) > 0 })
	return i - 1
}

// Lookup routes key to its target.
func (t *innerTree) Lookup(key []byte) uint64 {
	n := t.root
	for !n.isBottom() {
		n = n.kids[upperBound(n.keys, key)]
	}
	return n.vals[upperBound(n.keys, key)]
}

// LookupRange returns the target covering key and, to support ordered
// scans, whether it found one (always true for well-formed trees).
func (t *innerTree) LookupRange(key []byte) (uint64, bool) {
	if t.root == nil {
		return 0, false
	}
	return t.Lookup(key), true
}

// Insert adds a new separator (the split key of a freshly split PM leaf)
// routing to target. sep must not already be present.
func (t *innerTree) Insert(sep []byte, target uint64) {
	k := append([]byte(nil), sep...)
	promoted, right := t.insert(t.root, k, target)
	if right != nil {
		// Root split: grow the tree by one level.
		t.root = &inode{
			keys: [][]byte{t.root.minKey(), promoted},
			kids: []*inode{t.root, right},
		}
		t.height++
		t.nodes++
	}
}

// minKey returns a node's lower bound.
func (n *inode) minKey() []byte { return n.keys[0] }

// insert descends to the bottom, inserting and splitting on the way up.
// A non-nil right return means n split; promoted is right's first key.
func (t *innerTree) insert(n *inode, sep []byte, target uint64) (promoted []byte, right *inode) {
	if n.isBottom() {
		i := upperBound(n.keys, sep) + 1
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = sep
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = target
	} else {
		i := upperBound(n.keys, sep)
		p, r := t.insert(n.kids[i], sep, target)
		if r != nil {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+2:], n.keys[i+1:])
			n.keys[i+1] = p
			n.kids = append(n.kids, nil)
			copy(n.kids[i+2:], n.kids[i+1:])
			n.kids[i+1] = r
		}
	}
	if len(n.keys) <= t.order {
		return nil, nil
	}
	// Split n in half.
	mid := len(n.keys) / 2
	r := &inode{keys: append([][]byte(nil), n.keys[mid:]...)}
	n.keys = n.keys[:mid:mid]
	if n.isBottom() {
		r.vals = append([]uint64(nil), n.vals[mid:]...)
		n.vals = n.vals[:mid:mid]
	} else {
		r.kids = append([]*inode(nil), n.kids[mid:]...)
		n.kids = n.kids[:mid:mid]
	}
	t.nodes++
	return r.keys[0], r
}

// Stats returns node count and height for DRAM accounting.
func (t *innerTree) Stats() (nodes, height int) { return t.nodes, t.height }

// DRAMBytes estimates the routing tree's volatile footprint.
func (t *innerTree) DRAMBytes() int64 {
	var total int64
	var walk func(n *inode)
	walk = func(n *inode) {
		total += 48 // node header + slice headers
		for _, k := range n.keys {
			total += int64(len(k)) + 24
		}
		if n.isBottom() {
			total += int64(len(n.vals)) * 8
			return
		}
		total += int64(len(n.kids)) * 8
		for _, c := range n.kids {
			walk(c)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return total
}
