package epalloc

import (
	"errors"
	"testing"
)

func TestFaultInjectorsCountdown(t *testing.T) {
	_, al := newAlloc(t, 1<<20)

	// n=1: one success, then the injected fault, then disarmed again.
	al.FailAllocAfter(1)
	p, err := al.Alloc(0)
	if err != nil {
		t.Fatalf("first Alloc under FailAllocAfter(1): %v", err)
	}
	if _, err := al.Alloc(0); !errors.Is(err, ErrInjected) {
		t.Fatalf("second Alloc = %v, want ErrInjected", err)
	}
	if _, err := al.Alloc(0); err != nil {
		t.Fatalf("injector not one-shot: %v", err)
	}

	al.FailSetBitAfter(0)
	if err := al.SetBit(p); !errors.Is(err, ErrInjected) {
		t.Fatalf("SetBit = %v, want ErrInjected", err)
	}
	if err := al.SetBit(p); err != nil {
		t.Fatalf("SetBit after trip: %v", err)
	}

	al.FailResetBitAfter(0)
	if err := al.ResetBit(p); !errors.Is(err, ErrInjected) {
		t.Fatalf("ResetBit = %v, want ErrInjected", err)
	}
	al.FailResetBitAfter(0)
	if err := al.Release(p); !errors.Is(err, ErrInjected) {
		t.Fatalf("Release = %v, want ErrInjected", err)
	}

	al.FailSetBitAfter(3)
	al.DisarmFaults()
	if err := al.SetBit(p); err != nil {
		t.Fatalf("SetBit after DisarmFaults: %v", err)
	}
}

func TestCheckQuiescentCatchesInFlightSlot(t *testing.T) {
	_, al := newAlloc(t, 1<<20)
	p, err := al.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	// Between Alloc and SetBit the allocator is not quiescent (the slot is
	// volatile-in-flight), but plain Check must still pass.
	if err := al.Check(); err != nil {
		t.Fatalf("Check with in-flight slot: %v", err)
	}
	if err := al.CheckQuiescent(); err == nil {
		t.Fatal("CheckQuiescent missed an in-flight slot")
	}
	if err := al.SetBit(p); err != nil {
		t.Fatal(err)
	}
	if err := al.CheckQuiescent(); err != nil {
		t.Fatalf("CheckQuiescent after commit: %v", err)
	}
}

func TestCheckQuiescentCatchesArmedULog(t *testing.T) {
	_, al := newAlloc(t, 1<<20)
	u := al.GetUpdateLog()
	u.Arm(1024, 2048)
	if err := al.CheckQuiescent(); err == nil {
		t.Fatal("CheckQuiescent missed an armed update log")
	}
	u.Reclaim()
	if err := al.CheckQuiescent(); err != nil {
		t.Fatalf("CheckQuiescent after Reclaim: %v", err)
	}

	// A busy-but-unarmed slot (claimed, never armed, never reclaimed) is
	// also a quiescence violation: the pool has shrunk.
	_ = al.GetUpdateLog()
	if err := al.CheckQuiescent(); err == nil {
		t.Fatal("CheckQuiescent missed a busy ulog slot")
	}
}
