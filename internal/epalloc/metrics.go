package epalloc

import "github.com/casl-sdsu/hart/internal/obs"

// Metrics is the allocator's always-on counter set (obs.Counter zero
// values, so no constructor is needed). Counts are per allocator, striped
// internally; call sites pass their allocation stripe to AddStripe so an
// increment lands on a stable cell. The embedding store folds these into
// its metrics snapshot under the "alloc." prefix.
type Metrics struct {
	// ChunkReuses counts chunk transfers satisfied from the stripe's own
	// free list; Steals counts cross-stripe free-list transfers (the
	// contention signal: a stripe ran dry while a sibling held spares);
	// FreshChunks counts fresh arena reservations (the growth signal).
	ChunkReuses obs.Counter
	Steals      obs.Counter
	FreshChunks obs.Counter
	// BatchAllocs counts AllocBatch calls; BatchObjs the slots they
	// returned (BatchObjs/BatchAllocs is the realised amortisation).
	BatchAllocs obs.Counter
	BatchObjs   obs.Counter
	// Recycles counts chunks pushed back onto a free list (Algorithm 6
	// completions, not the has-live-objects early exits).
	Recycles obs.Counter
	// ULogClaims counts lock-free micro-log slot claims.
	ULogClaims obs.Counter
}

// Metrics returns the allocator's counters.
func (a *Allocator) Metrics() *Metrics { return &a.metrics }

// SetEventRing directs the allocator's rare structured events (currently
// cross-stripe chunk steals) at the store's event ring. Nil (the
// default) drops them; counters are unaffected.
func (a *Allocator) SetEventRing(r *obs.EventRing) { a.events = r }
