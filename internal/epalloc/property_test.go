package epalloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// TestQuickHeaderPacking: header pack/unpack round-trips for all field
// combinations, and packHeader derives a consistent hint/indicator.
func TestQuickHeaderPacking(t *testing.T) {
	f := func(bitmap uint64, nextFree uint8, full uint8) bool {
		bm := bitmap & bitmapMask
		nf := int(nextFree) & 0x3f
		fi := int(full) & 0x3
		h := makeHeader(bm, nf, fi)
		return h.bitmap() == bm && h.nextFree() == nf && h.fullIndicator() == fi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}

	g := func(bitmap uint64) bool {
		bm := bitmap & bitmapMask
		h := packHeader(bm)
		if h.bitmap() != bm {
			return false
		}
		if bm == bitmapMask {
			return h.fullIndicator() == fullFull
		}
		// The hint must point at a genuinely free slot.
		return h.fullIndicator() == fullAvailable && bm&(1<<uint(h.nextFree())) == 0
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFreeCount: header.free agrees with a naive popcount.
func TestQuickFreeCount(t *testing.T) {
	f := func(bitmap uint64) bool {
		bm := bitmap & bitmapMask
		naive := 0
		for i := 0; i < ObjectsPerChunk; i++ {
			if bm&(1<<uint(i)) == 0 {
				naive++
			}
		}
		return makeHeader(bm, 0, 0).free() == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAllocFreeSequences runs random alloc/commit/free/recycle
// sequences against a reference model of slot states and validates the
// allocator's view (bit states, used counts, fsck) after every batch.
func TestQuickAllocFreeSequences(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		_, al := newAlloc(t, 1<<22)
		type state int
		const (
			free state = iota
			inflight
			committed
		)
		slots := map[pmem.Ptr]state{}
		var inflightList, committedList []pmem.Ptr
		for step := 0; step < 3000; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // alloc
				obj, err := al.Alloc(0)
				if err != nil {
					t.Fatal(err)
				}
				if slots[obj] != free {
					t.Fatalf("seed %d step %d: alloc returned non-free slot %d (state %d)",
						seed, step, obj, slots[obj])
				}
				slots[obj] = inflight
				inflightList = append(inflightList, obj)
			case 4, 5, 6: // commit an in-flight slot
				if len(inflightList) == 0 {
					continue
				}
				i := rng.Intn(len(inflightList))
				obj := inflightList[i]
				if err := al.SetBit(obj); err != nil {
					t.Fatal(err)
				}
				slots[obj] = committed
				committedList = append(committedList, obj)
				inflightList = append(inflightList[:i], inflightList[i+1:]...)
			case 7, 8: // release a committed slot
				if len(committedList) == 0 {
					continue
				}
				i := rng.Intn(len(committedList))
				obj := committedList[i]
				if err := al.Release(obj); err != nil {
					t.Fatal(err)
				}
				slots[obj] = free
				committedList = append(committedList[:i], committedList[i+1:]...)
			default: // abort an in-flight slot
				if len(inflightList) == 0 {
					continue
				}
				i := rng.Intn(len(inflightList))
				obj := inflightList[i]
				if err := al.Abort(obj); err != nil {
					t.Fatal(err)
				}
				slots[obj] = free
				inflightList = append(inflightList[:i], inflightList[i+1:]...)
			}
			if step%500 == 0 {
				if err := al.Check(); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		}
		// Final validation: persistent bits match the model exactly.
		for obj, st := range slots {
			set, err := al.BitIsSet(obj)
			if err != nil {
				t.Fatalf("seed %d: BitIsSet(%d): %v", seed, obj, err)
			}
			if want := st == committed; set != want {
				t.Fatalf("seed %d: slot %d bit=%v, model state %d", seed, obj, set, st)
			}
		}
		n, err := al.CountUsed(0)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(committedList) {
			t.Fatalf("seed %d: CountUsed = %d, model %d", seed, n, len(committedList))
		}
		if err := al.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReleaseRecyclesEmptiedChunk: Release alone (without an explicit
// Recycle call) pushes an emptied chunk onto the free list.
func TestReleaseRecyclesEmptiedChunk(t *testing.T) {
	_, al := newAlloc(t, 1<<22)
	var objs []pmem.Ptr
	for i := 0; i < 2*ObjectsPerChunk; i++ {
		obj, _ := al.Alloc(0)
		al.SetBit(obj)
		objs = append(objs, obj)
	}
	victim, _ := al.ChunkOf(objs[0])
	for _, o := range objs {
		if c, _ := al.ChunkOf(o); c == victim {
			if err := al.Release(o); err != nil {
				t.Fatal(err)
			}
		}
	}
	if al.FreeChunks(0) != 1 {
		t.Fatalf("FreeChunks = %d after Release emptied a chunk, want 1", al.FreeChunks(0))
	}
	if err := al.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestArmMergesLogWrites: the merged Arm writes both pointers with the
// recovery-visible semantics of SetPLeaf + SetPOldV.
func TestArmMergesLogWrites(t *testing.T) {
	_, al := newAlloc(t, 1<<20)
	u := al.GetUpdateLog()
	u.Arm(123, 456)
	pend := al.PendingUpdateLogs()
	if len(pend) != 1 || pend[0].PLeaf != 123 || pend[0].POldV != 456 || pend[0].PNewV != 0 {
		t.Fatalf("pending after Arm = %+v", pend)
	}
	u.Reclaim()
}
