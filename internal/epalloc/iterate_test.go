package epalloc

import (
	"sync"
	"testing"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// iterFixture spreads committed and uncommitted objects across several
// stripes and returns the committed set.
func iterFixture(t *testing.T) (*Allocator, map[pmem.Ptr]bool) {
	t.Helper()
	_, al := newAlloc(t, 1<<22)
	want := map[pmem.Ptr]bool{}
	for s := 0; s < 5; s++ {
		for i := 0; i < ObjectsPerChunk+7; i++ {
			obj, err := al.AllocStripe(0, s)
			if err != nil {
				t.Fatal(err)
			}
			if i%3 != 0 {
				al.SetBit(obj)
				want[obj] = true
			}
		}
	}
	return al, want
}

// TestIterateStripeObjects: the union over stripes equals IterateObjects,
// each object reported from exactly one stripe.
func TestIterateStripeObjects(t *testing.T) {
	al, want := iterFixture(t)
	got := map[pmem.Ptr]int{}
	total := 0
	for s := 0; s < NumStripes; s++ {
		if err := al.IterateStripeObjects(0, s, func(obj pmem.Ptr, used bool) bool {
			total++
			if used {
				got[obj]++
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("stripe union found %d used objects, want %d", len(got), len(want))
	}
	for o, n := range got {
		if !want[o] || n != 1 {
			t.Fatalf("object %d reported %d times (want committed once)", o, n)
		}
	}
	whole := 0
	if err := al.IterateObjects(0, func(pmem.Ptr, bool) bool { whole++; return true }); err != nil {
		t.Fatal(err)
	}
	if whole != total {
		t.Fatalf("IterateObjects visited %d slots, stripe union %d", whole, total)
	}
}

// TestIterateObjectsEarlyStop: fn returning false stops the whole walk,
// not just the current stripe.
func TestIterateObjectsEarlyStop(t *testing.T) {
	al, _ := iterFixture(t)
	calls := 0
	if err := al.IterateObjects(0, func(pmem.Ptr, bool) bool {
		calls++
		return calls < 3
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("iteration continued past stop: %d calls", calls)
	}
}

// TestIterateObjectsParallel: any worker count observes the same slots
// with the same used bits as the serial walk, and per-stripe calls are
// single-goroutine (asserted by the race detector plus a per-stripe
// concurrency counter).
func TestIterateObjectsParallel(t *testing.T) {
	al, want := iterFixture(t)
	for _, workers := range []int{1, 2, 4, NumStripes + 3} {
		var mu sync.Mutex
		got := map[pmem.Ptr]bool{}
		perStripe := make([]int, NumStripes)
		if err := al.IterateObjectsParallel(0, workers, func(stripe int, obj pmem.Ptr, used bool) bool {
			mu.Lock()
			perStripe[stripe]++
			if used {
				if got[obj] {
					mu.Unlock()
					t.Errorf("workers=%d: object %d reported twice", workers, obj)
					return false
				}
				got[obj] = true
			}
			mu.Unlock()
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: found %d used objects, want %d", workers, len(got), len(want))
		}
		for o := range want {
			if !got[o] {
				t.Fatalf("workers=%d: object %d missing", workers, o)
			}
		}
	}
}
