package epalloc

import (
	"errors"
	"testing"

	"github.com/casl-sdsu/hart/internal/pmem"
)

func testSpecs() []ClassSpec {
	return []ClassSpec{
		{Name: "leaf", ObjSize: 40},
		{Name: "value8", ObjSize: 8},
		{Name: "value16", ObjSize: 16},
	}
}

func newAlloc(t *testing.T, size int64) (*pmem.Arena, *Allocator) {
	t.Helper()
	arena, err := pmem.New(pmem.Config{Size: size, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	al, err := New(arena, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	return arena, al
}

func TestNewValidatesSpecs(t *testing.T) {
	arena, _ := pmem.New(pmem.Config{Size: 1 << 20})
	if _, err := New(arena, nil); err == nil {
		t.Fatal("accepted zero classes")
	}
	if _, err := New(arena, make([]ClassSpec, MaxClasses+1)); err == nil {
		t.Fatal("accepted too many classes")
	}
	if _, err := New(arena, []ClassSpec{{Name: "bad", ObjSize: 7}}); err == nil {
		t.Fatal("accepted non-multiple-of-8 size")
	}
}

func TestAllocCommitAndBit(t *testing.T) {
	_, al := newAlloc(t, 1<<20)
	obj, err := al.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	set, err := al.BitIsSet(obj)
	if err != nil || set {
		t.Fatalf("fresh slot bit = %v (err %v), want clear", set, err)
	}
	if err := al.SetBit(obj); err != nil {
		t.Fatal(err)
	}
	if set, _ := al.BitIsSet(obj); !set {
		t.Fatal("bit not set after SetBit")
	}
	if err := al.ResetBit(obj); err != nil {
		t.Fatal(err)
	}
	if set, _ := al.BitIsSet(obj); set {
		t.Fatal("bit still set after ResetBit")
	}
	if err := al.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocDistinctSlots(t *testing.T) {
	_, al := newAlloc(t, 1<<22)
	seen := map[pmem.Ptr]bool{}
	// More than 2 chunks worth, committing every other object.
	for i := 0; i < 3*ObjectsPerChunk; i++ {
		obj, err := al.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		if seen[obj] {
			t.Fatalf("slot %d handed out twice", obj)
		}
		seen[obj] = true
		if i%2 == 0 {
			if err := al.SetBit(obj); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Uncommitted in-flight slots are not reused while in flight; this is
	// why two Allocs without SetBit never collide above.
	n, err := al.CountUsed(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := (3*ObjectsPerChunk + 1) / 2; n != want {
		t.Fatalf("CountUsed = %d, want %d", n, want)
	}
	if err := al.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortMakesSlotReusable(t *testing.T) {
	_, al := newAlloc(t, 1<<20)
	a1, _ := al.Alloc(0)
	if err := al.Abort(a1); err != nil {
		t.Fatal(err)
	}
	a2, _ := al.Alloc(0)
	if a1 != a2 {
		t.Fatalf("aborted slot not reused: %d then %d", a1, a2)
	}
}

func TestChunkOfAndClassOf(t *testing.T) {
	_, al := newAlloc(t, 1<<20)
	obj, _ := al.Alloc(2)
	chunk, err := al.ChunkOf(obj)
	if err != nil {
		t.Fatal(err)
	}
	if obj < chunk+chunkDataOff {
		t.Fatalf("object %d before its chunk data %d", obj, chunk)
	}
	c, err := al.ClassOf(obj)
	if err != nil || c != 2 {
		t.Fatalf("ClassOf = %v (%v), want 2", c, err)
	}
	if _, err := al.ChunkOf(pmem.Ptr(17)); !errors.Is(err, ErrNotChunkObject) {
		t.Fatalf("ChunkOf on wild pointer: %v", err)
	}
}

func TestOnReuseHookRuns(t *testing.T) {
	arena, err := pmem.New(pmem.Config{Size: 1 << 20, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	var hooked []pmem.Ptr
	specs := testSpecs()
	specs[0].OnReuse = func(obj pmem.Ptr) { hooked = append(hooked, obj) }
	al, err := New(arena, specs)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := al.Alloc(0)
	if len(hooked) != 1 || hooked[0] != obj {
		t.Fatalf("OnReuse calls = %v, want [%d]", hooked, obj)
	}
}

func TestNextFreeHintConsistency(t *testing.T) {
	_, al := newAlloc(t, 1<<20)
	var objs []pmem.Ptr
	for i := 0; i < ObjectsPerChunk; i++ {
		obj, _ := al.Alloc(1)
		al.SetBit(obj)
		objs = append(objs, obj)
	}
	chunk, _ := al.ChunkOf(objs[0])
	if h := al.readHeader(chunk); h.fullIndicator() != fullFull {
		t.Fatalf("full chunk indicator = %d, want %d", h.fullIndicator(), fullFull)
	}
	// Free slot 17: indicator returns to available and the hint points at it.
	al.ResetBit(objs[17])
	h := al.readHeader(chunk)
	if h.fullIndicator() != fullAvailable || h.nextFree() != 17 {
		t.Fatalf("after free: indicator=%d hint=%d, want %d/17", h.fullIndicator(), h.nextFree(), fullAvailable)
	}
	// Next alloc takes the hinted slot.
	obj, _ := al.Alloc(1)
	if obj != objs[17] {
		t.Fatalf("hinted alloc = %d, want %d", obj, objs[17])
	}
	if err := al.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRecycleAndFreeListReuse(t *testing.T) {
	_, al := newAlloc(t, 1<<22)
	// Fill two chunks.
	var objs []pmem.Ptr
	for i := 0; i < 2*ObjectsPerChunk; i++ {
		obj, _ := al.Alloc(0)
		al.SetBit(obj)
		objs = append(objs, obj)
	}
	chunk0, _ := al.ChunkOf(objs[0])
	// Empty the first-filled chunk and recycle it.
	for _, o := range objs {
		if c, _ := al.ChunkOf(o); c == chunk0 {
			al.ResetBit(o)
		}
	}
	if err := al.Recycle(objs[0]); err != nil {
		t.Fatal(err)
	}
	if al.FreeChunks(0) != 1 {
		t.Fatalf("FreeChunks = %d, want 1", al.FreeChunks(0))
	}
	if err := al.Check(); err != nil {
		t.Fatal(err)
	}
	reservedBefore := al.Arena().Reserved()
	// Filling a chunk's worth again must reuse the recycled chunk, not
	// reserve new space.
	for i := 0; i < ObjectsPerChunk; i++ {
		obj, err := al.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		al.SetBit(obj)
	}
	if al.Arena().Reserved() != reservedBefore {
		t.Fatal("recycled chunk not reused; arena grew")
	}
	if al.FreeChunks(0) != 0 {
		t.Fatalf("FreeChunks = %d after reuse, want 0", al.FreeChunks(0))
	}
	if err := al.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRecycleSkipsNonEmptyChunk(t *testing.T) {
	_, al := newAlloc(t, 1<<20)
	obj, _ := al.Alloc(0)
	al.SetBit(obj)
	if err := al.Recycle(obj); err != nil {
		t.Fatal(err)
	}
	if n, _ := al.CountUsed(0); n != 1 {
		t.Fatal("non-empty chunk was recycled")
	}
}

func TestRecycleKeepsLastChunk(t *testing.T) {
	_, al := newAlloc(t, 1<<20)
	obj, _ := al.Alloc(0)
	al.SetBit(obj)
	al.ResetBit(obj)
	if err := al.Recycle(obj); err != nil {
		t.Fatal(err)
	}
	// The sole chunk stays linked to avoid thrash.
	if al.head(0, 0).IsNil() {
		t.Fatal("sole chunk was recycled")
	}
	if err := al.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIterateObjects(t *testing.T) {
	_, al := newAlloc(t, 1<<22)
	want := map[pmem.Ptr]bool{}
	for i := 0; i < ObjectsPerChunk+10; i++ {
		obj, _ := al.Alloc(0)
		if i%3 != 0 {
			al.SetBit(obj)
			want[obj] = true
		}
	}
	got := map[pmem.Ptr]bool{}
	err := al.IterateObjects(0, func(obj pmem.Ptr, used bool) bool {
		if used {
			got[obj] = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d used objects, want %d", len(got), len(want))
	}
	for o := range want {
		if !got[o] {
			t.Fatalf("object %d missing from iteration", o)
		}
	}
}

func TestAttachRebuildsState(t *testing.T) {
	arena, al := newAlloc(t, 1<<22)
	var live []pmem.Ptr
	for i := 0; i < ObjectsPerChunk+20; i++ {
		obj, _ := al.Alloc(0)
		al.SetBit(obj)
		live = append(live, obj)
	}
	// Free a few and leave some in flight (in-flight must vanish on crash).
	al.ResetBit(live[3])
	al.ResetBit(live[5])
	al.Alloc(0) // in-flight, never committed
	crashed, err := arena.Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	al2, err := Attach(crashed, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if err := al2.Check(); err != nil {
		t.Fatal(err)
	}
	n, _ := al2.CountUsed(0)
	if want := len(live) - 2; n != want {
		t.Fatalf("used after attach = %d, want %d", n, want)
	}
	// Freed and in-flight slots are allocatable again.
	seen := map[pmem.Ptr]bool{}
	for i := 0; i < 3; i++ {
		obj, err := al2.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[obj] {
			t.Fatal("duplicate slot after attach")
		}
		seen[obj] = true
		al2.SetBit(obj)
	}
	if err := al2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachWrongSpecsRejected(t *testing.T) {
	arena, _ := newAlloc(t, 1<<20)
	img, _ := arena.DurableImage()
	_ = img
	if _, err := Attach(arena, testSpecs()[:2]); err == nil {
		t.Fatal("Attach accepted wrong class count")
	}
	bad := testSpecs()
	bad[1].ObjSize = 24
	if _, err := Attach(arena, bad); err == nil {
		t.Fatal("Attach accepted wrong class size")
	}
}

func TestUpdateLogRoundTrip(t *testing.T) {
	_, al := newAlloc(t, 1<<20)
	u := al.GetUpdateLog()
	u.SetPLeaf(100)
	u.SetPOldV(200)
	u.SetPNewV(300)
	pend := al.PendingUpdateLogs()
	if len(pend) != 1 || pend[0].PLeaf != 100 || pend[0].POldV != 200 || pend[0].PNewV != 300 {
		t.Fatalf("pending logs = %+v", pend)
	}
	u.Reclaim()
	if len(al.PendingUpdateLogs()) != 0 {
		t.Fatal("log still pending after Reclaim")
	}
}

func TestUpdateLogPoolExhaustionBlocksAndRecovers(t *testing.T) {
	_, al := newAlloc(t, 1<<20)
	logs := make([]*ULog, NumUpdateLogs)
	for i := range logs {
		logs[i] = al.GetUpdateLog()
	}
	done := make(chan *ULog)
	go func() { done <- al.GetUpdateLog() }()
	select {
	case <-done:
		t.Fatal("GetUpdateLog returned with pool exhausted")
	default:
	}
	logs[7].Reclaim()
	u := <-done
	if u == nil {
		t.Fatal("blocked GetUpdateLog returned nil")
	}
}

func TestUpdateLogSurvivesCrash(t *testing.T) {
	arena, al := newAlloc(t, 1<<20)
	u := al.GetUpdateLog()
	u.SetPLeaf(111)
	u.SetPOldV(222)
	crashed, err := arena.Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	al2, err := Attach(crashed, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	pend := al2.PendingUpdateLogs()
	if len(pend) != 1 || pend[0].PLeaf != 111 || pend[0].POldV != 222 || pend[0].PNewV != 0 {
		t.Fatalf("pending after crash = %+v", pend)
	}
	al2.ResetUpdateLogAt(pend[0].Index)
	if len(al2.PendingUpdateLogs()) != 0 {
		t.Fatal("log survived reset")
	}
}

// TestCrashDuringRecycleEveryPersist drives Recycle into a crash at every
// persist boundary and verifies the allocator recovers to a consistent
// state with the chunk either still linked or on the free list — never
// lost, never on both lists.
func TestCrashDuringRecycleEveryPersist(t *testing.T) {
	for fail := int64(0); ; fail++ {
		arena, al := newAlloc(t, 1<<22)
		// Two chunks; empty the older one so it is recyclable.
		var objs []pmem.Ptr
		for i := 0; i < 2*ObjectsPerChunk; i++ {
			obj, _ := al.Alloc(0)
			al.SetBit(obj)
			objs = append(objs, obj)
		}
		victim, _ := al.ChunkOf(objs[0])
		for _, o := range objs {
			if c, _ := al.ChunkOf(o); c == victim {
				al.ResetBit(o)
			}
		}
		arena.FailAfterPersists(fail)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.CrashError); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			if err := al.Recycle(objs[0]); err != nil {
				t.Fatal(err)
			}
		}()
		arena.DisarmCrash()
		if !crashed {
			// Recycle completed without reaching the crash point: the
			// protocol has fewer persists than `fail`. Done.
			if fail == 0 {
				t.Fatal("recycle performed zero persists")
			}
			return
		}
		img, err := arena.Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
		if err != nil {
			t.Fatal(err)
		}
		al2, err := Attach(img, testSpecs())
		if err != nil {
			t.Fatalf("fail=%d: Attach: %v", fail, err)
		}
		if err := al2.Check(); err != nil {
			t.Fatalf("fail=%d: Check: %v", fail, err)
		}
		// The surviving chunk's objects must all still be live.
		n, _ := al2.CountUsed(0)
		if n != ObjectsPerChunk {
			t.Fatalf("fail=%d: used = %d, want %d", fail, n, ObjectsPerChunk)
		}
		// The victim chunk must be fully accounted: linked or free on
		// exactly one stripe.
		onList := 0
		for s := 0; s < NumStripes; s++ {
			for p := al2.head(0, s); !p.IsNil(); p = al2.arena.ReadPtr(p + 8) {
				if p == victim {
					onList++
				}
			}
			for p := al2.freeHead(0, s); !p.IsNil(); p = al2.arena.ReadPtr(p + 8) {
				if p == victim {
					onList++
				}
			}
		}
		if onList != 1 {
			t.Fatalf("fail=%d: victim chunk appears %d times across lists, want 1", fail, onList)
		}
	}
}

// TestCrashDuringChunkAllocEveryPersist crashes at every persist boundary
// of a chunk allocation (fresh reservation path) and verifies no chunk is
// leaked or double-linked.
func TestCrashDuringChunkAllocEveryPersist(t *testing.T) {
	for fail := int64(0); ; fail++ {
		arena, al := newAlloc(t, 1<<22)
		// Fill the first chunk completely so the next alloc must create a
		// second chunk.
		for i := 0; i < ObjectsPerChunk; i++ {
			obj, _ := al.Alloc(0)
			al.SetBit(obj)
		}
		arena.FailAfterPersists(fail)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.CrashError); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			obj, err := al.Alloc(0)
			if err != nil {
				t.Fatal(err)
			}
			al.SetBit(obj)
		}()
		arena.DisarmCrash()
		if !crashed {
			if fail == 0 {
				t.Fatal("chunk alloc performed zero persists")
			}
			return
		}
		img, err := arena.Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
		if err != nil {
			t.Fatal(err)
		}
		al2, err := Attach(img, testSpecs())
		if err != nil {
			t.Fatalf("fail=%d: Attach: %v", fail, err)
		}
		if err := al2.Check(); err != nil {
			t.Fatalf("fail=%d: Check: %v", fail, err)
		}
		// No object may be lost; the interrupted object was never
		// committed so exactly ObjectsPerChunk survive.
		if n, _ := al2.CountUsed(0); n != ObjectsPerChunk {
			t.Fatalf("fail=%d: used = %d, want %d", fail, n, ObjectsPerChunk)
		}
		// No leak: every reserved byte beyond the superblock belongs to a
		// reachable chunk (chunk list or free list).
		assertNoChunkLeak(t, al2, fail)
		// And the allocator still works.
		obj, err := al2.Alloc(0)
		if err != nil {
			t.Fatalf("fail=%d: post-recovery alloc: %v", fail, err)
		}
		if err := al2.SetBit(obj); err != nil {
			t.Fatal(err)
		}
	}
}

// assertNoChunkLeak verifies that the arena's reserved space is exactly
// covered by the superblock plus all reachable chunks of all classes.
func assertNoChunkLeak(t *testing.T, al *Allocator, fail int64) {
	t.Helper()
	covered := int64(pmem.HeaderSize) + sbSize
	for i := range al.classes {
		c := Class(i)
		size := chunkSize(al.classes[i].spec.ObjSize)
		for s := 0; s < NumStripes; s++ {
			for p := al.head(c, s); !p.IsNil(); p = al.arena.ReadPtr(p + 8) {
				covered += size
			}
			for p := al.freeHead(c, s); !p.IsNil(); p = al.arena.ReadPtr(p + 8) {
				covered += size
			}
		}
	}
	// Reservations are 8-aligned; allow alignment slack of < 8 per chunk.
	reserved := al.arena.Reserved()
	if reserved-covered >= 8 {
		t.Fatalf("fail=%d: %d reserved bytes unaccounted (reserved %d, covered %d): leak",
			fail, reserved-covered, reserved, covered)
	}
}
