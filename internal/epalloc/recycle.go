package epalloc

import (
	"fmt"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// Recycle implements EPRecycle (Algorithm 6): if the chunk holding obj has
// no live or in-flight object, it is unlinked from its stripe's chunk list
// under the stripe's persistent recycle log and pushed onto the stripe's
// free list for reuse (the paper's pfree). Recycle is a no-op when the
// chunk still has used objects (Algorithm 6 lines 1-2).
//
// The log protocol hardens Algorithm 6 slightly: PPrev records the PM
// address of the *link field* pointing at the chunk (the stripe's head
// field or the predecessor's PNext field) and is armed before PCurrent, so
// recovery never has to guess whether the chunk was the head. See
// recoverLogs for the case analysis.
func (a *Allocator) Recycle(obj pmem.Ptr) error {
	r, ok := a.lookupRange(obj)
	if !ok {
		return ErrNotChunkObject
	}
	return a.recycleChunkMode(r.start, false)
}

// RecycleChunk recycles the given chunk directly.
func (a *Allocator) RecycleChunk(c Class, chunk pmem.Ptr) error {
	return a.recycleChunkMode(chunk, false)
}

// RecycleIfPresent behaves like Recycle but silently succeeds when the
// chunk is no longer on its stripe's chunk list. Recovery and repair paths
// use it: replaying an interrupted operation may re-recycle a chunk the
// crashed run already unlinked.
func (a *Allocator) RecycleIfPresent(obj pmem.Ptr) error {
	r, ok := a.lookupRange(obj)
	if !ok {
		return ErrNotChunkObject
	}
	return a.recycleChunkMode(r.start, true)
}

// recycleChunkMode implements Recycle; lenient mode treats "chunk not on
// the list" as success instead of corruption. The operation is local to
// the chunk's current stripe: its lock, its lists, its recycle-log slot.
func (a *Allocator) recycleChunkMode(chunk pmem.Ptr, lenient bool) error {
	r, ss, err := a.lockStripeOf(chunk + chunkDataOff)
	if err != nil {
		return err
	}
	defer ss.mu.Unlock()
	c, stripe := r.class, r.stripe

	meta := ss.meta[chunk]
	h := a.readHeader(chunk)
	if h.bitmap() != 0 || (meta != nil && meta.inFlight != 0) {
		return nil // chunk has a used object (Algorithm 6 lines 1-2)
	}
	// Keep at least one chunk per stripe linked: recycling the only chunk
	// just to re-reserve one on the next Alloc would thrash.
	if a.head(c, stripe) == chunk && a.arena.ReadPtr(chunk+8).IsNil() {
		return nil
	}

	// Find the link field pointing at the chunk.
	link := a.headAddr(c, stripe)
	for {
		at := a.arena.ReadPtr(link)
		if at == chunk {
			break
		}
		if at.IsNil() {
			if lenient {
				return nil
			}
			return fmt.Errorf("%w: chunk %d not on class %d stripe %d list", ErrCorrupt, chunk, c, stripe)
		}
		link = at + 8 // predecessor's PNext field
	}

	ar := a.arena
	rl := a.rlogAddr(stripe)

	// Arm the stripe's recycle log: PPrev (link field address) first,
	// class, then PCurrent last — the slot is armed iff PCurrent != 0. The
	// stripe lock is what gives the writer exclusive use of the slot.
	ar.WritePtr(rl+rlPrevOff, link)
	ar.Persist(rl+rlPrevOff, 8)
	ar.Write8(rl+rlClassOff, uint64(c))
	ar.Persist(rl+rlClassOff, 8)
	ar.WritePtr(rl+rlCurOff, chunk)
	ar.Persist(rl+rlCurOff, 8)

	// Unlink (Algorithm 6 line 6 / line 10).
	ar.WritePtr(link, ar.ReadPtr(chunk+8))
	ar.Persist(link, 8)

	// pfree (Algorithm 6 line 11): push onto the stripe's free list.
	a.pushFreeList(c, stripe, chunk)

	// Reclaim the log (Algorithm 6 line 12).
	ar.WritePtr(rl+rlCurOff, pmem.Nil)
	ar.Persist(rl+rlCurOff, 8)

	a.metrics.Recycles.AddStripe(stripe, 1)

	// Volatile bookkeeping: the chunk no longer offers slots.
	if meta != nil {
		meta.inAvail = false
	}
	for i, p := range ss.avail {
		if p == chunk {
			ss.avail = append(ss.avail[:i], ss.avail[i+1:]...)
			break
		}
	}
	return nil
}

// pushFreeList pushes chunk onto class c, stripe s's free list. Both steps
// are individually idempotent given the recovery guards in recoverLogs.
func (a *Allocator) pushFreeList(c Class, stripe int, chunk pmem.Ptr) {
	ar := a.arena
	ar.WritePtr(chunk+8, a.freeHead(c, stripe))
	ar.Persist(chunk+8, 8)
	ar.WritePtr(a.freeHeadAddr(c, stripe), chunk)
	ar.Persist(a.freeHeadAddr(c, stripe), 8)
}

// FreeChunks returns the number of chunks on the class's free lists across
// all stripes.
func (a *Allocator) FreeChunks(c Class) int {
	total := 0
	limit := int(a.classes[c].nchunks.Load()) + 1
	for s := 0; s < NumStripes; s++ {
		n := 0
		for p := a.freeHead(c, s); !p.IsNil(); p = a.arena.ReadPtr(p + 8) {
			n++
			if n > limit {
				return -1 // cycle; Check reports the detail
			}
		}
		total += n
	}
	return total
}

// recoverLogs completes any chunk-list operation interrupted by a crash:
// each stripe's recycle log (chunk leaving the stripe's chunk list) and
// transfer log (chunk joining the stripe's chunk list, popped from some
// stripe's free list or freshly reserved). Called once from Attach, before
// any volatile state is rebuilt. At most one slot per stripe can be armed
// (both run under the stripe lock), and slots of different stripes record
// independent operations — a cross-stripe steal arms only the destination
// stripe's transfer slot while holding both stripe locks — so replay order
// across stripes does not matter.
func (a *Allocator) recoverLogs() error {
	ar := a.arena

	for s := 0; s < NumStripes; s++ {
		// Recycle log. Armed iff PCurrent != 0.
		rl := a.rlogAddr(s)
		if cur := ar.ReadPtr(rl + rlCurOff); !cur.IsNil() {
			link := ar.ReadPtr(rl + rlPrevOff)
			c := Class(ar.Read8(rl + rlClassOff))
			if link.IsNil() || int(c) >= len(a.classes) {
				return fmt.Errorf("%w: stripe %d recycle log armed with invalid state (link=%d class=%d)",
					ErrCorrupt, s, link, c)
			}
			switch {
			case a.freeHead(c, s) == cur:
				// pfree completed; only the log reclaim was lost.
			case ar.ReadPtr(link) == cur:
				// Crash before the unlink persisted: redo unlink, then pfree.
				ar.WritePtr(link, ar.ReadPtr(cur+8))
				ar.Persist(link, 8)
				a.pushFreeList(c, s, cur)
			default:
				// Unlinked but pfree incomplete. Step 1 (cur.PNext =
				// freeHead) is idempotent; step 2 publishes the chunk.
				a.pushFreeList(c, s, cur)
			}
			ar.WritePtr(rl+rlCurOff, pmem.Nil)
			ar.Persist(rl+rlCurOff, 8)
		}

		// Transfer log. Armed iff PChunk != 0; the slot index is the
		// destination stripe.
		tl := a.tlogAddr(s)
		if chunk := ar.ReadPtr(tl + tlChunkOff); !chunk.IsNil() {
			c := Class(ar.Read8(tl + tlClassOff))
			src := int(ar.Read8(tl + tlSrcOff))
			if int(c) >= len(a.classes) || src > tlSrcFresh {
				return fmt.Errorf("%w: stripe %d transfer log armed with invalid state (class=%d src=%d)",
					ErrCorrupt, s, c, src)
			}
			size := chunkSize(a.classes[c].spec.ObjSize)
			switch {
			case src == tlSrcFresh && int64(chunk)+size > a.arena.Reserved():
				// The reservation itself never became durable; nothing to do.
			case a.head(c, s) == chunk:
				// Fully linked; only the disarm was lost.
			case src != tlSrcFresh && a.freeHead(c, src) == chunk:
				// Free-list pop never became durable; chunk is still free on
				// the source stripe.
			case a.freeHead(c, s) == chunk:
				// An earlier interrupted replay already parked the chunk on
				// the destination's free list; only the disarm was lost.
			default:
				// In limbo between the lists: park it on the destination
				// stripe's free list.
				a.pushFreeList(c, s, chunk)
			}
			ar.WritePtr(tl+tlChunkOff, pmem.Nil)
			ar.Persist(tl+tlChunkOff, 8)
		}
	}
	return nil
}
