package epalloc

import (
	"fmt"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// Recycle implements EPRecycle (Algorithm 6): if the chunk holding obj has
// no live or in-flight object, it is unlinked from its class's chunk list
// under the persistent recycle log and pushed onto the class's free list
// for reuse (the paper's pfree). Recycle is a no-op when the chunk still
// has used objects (Algorithm 6 lines 1-2).
//
// The log protocol hardens Algorithm 6 slightly: PPrev records the PM
// address of the *link field* pointing at the chunk (the class head field
// or the predecessor's PNext field) and is armed before PCurrent, so
// recovery never has to guess whether the chunk was the head. See
// recoverLogs for the case analysis.
func (a *Allocator) Recycle(obj pmem.Ptr) error {
	r, ok := a.lookupRange(obj)
	if !ok {
		return ErrNotChunkObject
	}
	return a.recycleChunk(r.class, r.start)
}

// RecycleChunk recycles the given chunk directly.
func (a *Allocator) RecycleChunk(c Class, chunk pmem.Ptr) error {
	return a.recycleChunk(c, chunk)
}

// RecycleIfPresent behaves like Recycle but silently succeeds when the
// chunk is no longer on its class's chunk list. Recovery and repair paths
// use it: replaying an interrupted operation may re-recycle a chunk the
// crashed run already unlinked.
func (a *Allocator) RecycleIfPresent(obj pmem.Ptr) error {
	r, ok := a.lookupRange(obj)
	if !ok {
		return ErrNotChunkObject
	}
	return a.recycleChunkMode(r.class, r.start, true)
}

func (a *Allocator) recycleChunk(c Class, chunk pmem.Ptr) error {
	return a.recycleChunkMode(c, chunk, false)
}

// recycleChunkMode implements Recycle; lenient mode treats "chunk not on
// the list" as success instead of corruption.
func (a *Allocator) recycleChunkMode(c Class, chunk pmem.Ptr, lenient bool) error {
	cs := &a.classes[c]
	cs.mu.Lock()
	defer cs.mu.Unlock()

	meta := cs.meta[chunk]
	h := a.readHeader(chunk)
	if h.bitmap() != 0 || (meta != nil && meta.inFlight != 0) {
		return nil // chunk has a used object (Algorithm 6 lines 1-2)
	}
	// Keep at least one chunk per class linked: recycling the only chunk
	// just to re-reserve one on the next Alloc would thrash.
	if a.head(c) == chunk && a.arena.ReadPtr(chunk+8).IsNil() {
		return nil
	}

	// Find the link field pointing at the chunk.
	link := a.headAddr(c)
	for {
		at := a.arena.ReadPtr(link)
		if at == chunk {
			break
		}
		if at.IsNil() {
			if lenient {
				return nil
			}
			return fmt.Errorf("%w: chunk %d not on class %d list", ErrCorrupt, chunk, c)
		}
		link = at + 8 // predecessor's PNext field
	}

	a.logMu.Lock()
	defer a.logMu.Unlock()
	ar := a.arena

	// Arm the recycle log: PPrev (link field address) first, class, then
	// PCurrent last — the log is considered armed iff PCurrent != 0.
	ar.WritePtr(a.sb+sbRLogOff, link)
	ar.Persist(a.sb+sbRLogOff, 8)
	ar.Write8(a.sb+sbRLogOff+16, uint64(c))
	ar.Persist(a.sb+sbRLogOff+16, 8)
	ar.WritePtr(a.sb+sbRLogOff+8, chunk)
	ar.Persist(a.sb+sbRLogOff+8, 8)

	// Unlink (Algorithm 6 line 6 / line 10).
	ar.WritePtr(link, ar.ReadPtr(chunk+8))
	ar.Persist(link, 8)

	// pfree (Algorithm 6 line 11): push onto the class free list.
	a.pushFreeList(c, chunk)

	// Reclaim the log (Algorithm 6 line 12).
	ar.WritePtr(a.sb+sbRLogOff+8, pmem.Nil)
	ar.Persist(a.sb+sbRLogOff+8, 8)

	// Volatile bookkeeping: the chunk no longer offers slots.
	if meta != nil {
		meta.inAvail = false
	}
	for i, p := range cs.avail {
		if p == chunk {
			cs.avail = append(cs.avail[:i], cs.avail[i+1:]...)
			break
		}
	}
	return nil
}

// pushFreeList pushes chunk onto class c's free list. Both steps are
// individually idempotent given the recovery guards in recoverLogs.
func (a *Allocator) pushFreeList(c Class, chunk pmem.Ptr) {
	ar := a.arena
	ar.WritePtr(chunk+8, a.freeHead(c))
	ar.Persist(chunk+8, 8)
	ar.WritePtr(a.freeHeadAddr(c), chunk)
	ar.Persist(a.freeHeadAddr(c), 8)
}

// FreeChunks returns the number of chunks on the class's free list.
func (a *Allocator) FreeChunks(c Class) int {
	n := 0
	for p := a.freeHead(c); !p.IsNil(); p = a.arena.ReadPtr(p + 8) {
		n++
		if n > a.classes[c].nchunks+1 {
			return -1 // cycle; Check reports the detail
		}
	}
	return n
}

// recoverLogs completes any chunk-list operation interrupted by a crash:
// the recycle log (chunk leaving a chunk list) and the transfer log (chunk
// joining a chunk list). Called once from Attach, before any volatile
// state is rebuilt.
func (a *Allocator) recoverLogs() error {
	ar := a.arena

	// Recycle log. Armed iff PCurrent != 0.
	if cur := ar.ReadPtr(a.sb + sbRLogOff + 8); !cur.IsNil() {
		link := ar.ReadPtr(a.sb + sbRLogOff)
		c := Class(ar.Read8(a.sb + sbRLogOff + 16))
		if link.IsNil() || int(c) >= len(a.classes) {
			return fmt.Errorf("%w: recycle log armed with invalid state (link=%d class=%d)",
				ErrCorrupt, link, c)
		}
		switch {
		case a.freeHead(c) == cur:
			// pfree completed; only the log reclaim was lost.
		case ar.ReadPtr(link) == cur:
			// Crash before the unlink persisted: redo unlink, then pfree.
			ar.WritePtr(link, ar.ReadPtr(cur+8))
			ar.Persist(link, 8)
			a.pushFreeList(c, cur)
		default:
			// Unlinked but pfree incomplete. Step 1 (cur.PNext = freeHead)
			// is idempotent; step 2 publishes the chunk.
			a.pushFreeList(c, cur)
		}
		ar.WritePtr(a.sb+sbRLogOff+8, pmem.Nil)
		ar.Persist(a.sb+sbRLogOff+8, 8)
	}

	// Transfer log. Armed iff PChunk != 0.
	if chunk := ar.ReadPtr(a.sb + sbTLogOff); !chunk.IsNil() {
		c := Class(ar.Read8(a.sb + sbTLogOff + 8))
		if int(c) >= len(a.classes) {
			return fmt.Errorf("%w: transfer log armed with invalid class %d", ErrCorrupt, c)
		}
		size := chunkSize(a.classes[c].spec.ObjSize)
		switch {
		case int64(chunk)+size > a.arena.Reserved():
			// The reservation itself never became durable; nothing to do.
		case a.head(c) == chunk:
			// Fully linked; only the disarm was lost.
		case a.freeHead(c) == chunk:
			// Free-list pop never became durable; chunk is still free.
		default:
			// In limbo between the lists: park it on the free list.
			a.pushFreeList(c, chunk)
		}
		ar.WritePtr(a.sb+sbTLogOff, pmem.Nil)
		ar.Persist(a.sb+sbTLogOff, 8)
	}
	return nil
}
