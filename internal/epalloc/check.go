package epalloc

import (
	"fmt"
	"sync"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// IterateStripeObjects calls fn for every slot of every chunk on one
// stripe's chunk list, reporting whether the slot's persistent bit is set.
// List order within the stripe is most recently linked chunk first —
// deterministic for a deterministic history. The walk only reads PM, so
// distinct stripes may be iterated concurrently (HART's parallel recovery
// scan fans one goroutine per stripe).
func (a *Allocator) IterateStripeObjects(c Class, stripe int, fn func(obj pmem.Ptr, used bool) bool) error {
	cs := &a.classes[c]
	limit := int(cs.nchunks.Load()) + 1
	steps := 0
	for chunk := a.head(c, stripe); !chunk.IsNil(); chunk = a.arena.ReadPtr(chunk + 8) {
		if steps++; steps > limit {
			return fmt.Errorf("%w: class %s stripe %d chunk list longer than %d chunks (cycle?)",
				ErrCorrupt, cs.spec.Name, stripe, limit-1)
		}
		h := a.readHeader(chunk)
		for i := 0; i < ObjectsPerChunk; i++ {
			if !fn(a.SlotAddr(chunk, c, i), h.bitmap()&(1<<uint(i)) != 0) {
				return nil
			}
		}
	}
	return nil
}

// IterateObjects calls fn for every slot of every chunk on the class's
// chunk lists, reporting whether the slot's persistent bit is set. This is
// the traversal HART's recovery uses (Algorithm 7 lines 2-6). Iteration
// order is stripe order, then list order within a stripe (most recently
// linked chunk first) — deterministic for a deterministic history.
func (a *Allocator) IterateObjects(c Class, fn func(obj pmem.Ptr, used bool) bool) error {
	stopped := false
	wrapped := func(obj pmem.Ptr, used bool) bool {
		if !fn(obj, used) {
			stopped = true
			return false
		}
		return true
	}
	for s := 0; s < NumStripes; s++ {
		if err := a.IterateStripeObjects(c, s, wrapped); err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// IterateObjectsParallel is IterateObjects with the stripes fanned out
// across min(workers, NumStripes) goroutines. fn additionally receives
// the stripe index; calls for one stripe always come from a single
// goroutine in list order, so per-stripe state needs no synchronisation
// (calls for different stripes race). fn returning false stops that
// stripe's walk only. With workers <= 1 the fan-out is skipped entirely
// and fn observes exactly IterateObjects' serial order.
func (a *Allocator) IterateObjectsParallel(c Class, workers int, fn func(stripe int, obj pmem.Ptr, used bool) bool) error {
	stripeFn := func(s int) func(obj pmem.Ptr, used bool) bool {
		return func(obj pmem.Ptr, used bool) bool { return fn(s, obj, used) }
	}
	if workers > NumStripes {
		workers = NumStripes
	}
	if workers <= 1 {
		for s := 0; s < NumStripes; s++ {
			if err := a.IterateStripeObjects(c, s, stripeFn(s)); err != nil {
				return err
			}
		}
		return nil
	}
	var errs [NumStripes]error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := w; s < NumStripes; s += workers {
				errs[s] = a.IterateStripeObjects(c, s, stripeFn(s))
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CountUsed returns the number of live objects in the class.
func (a *Allocator) CountUsed(c Class) (int, error) {
	n := 0
	err := a.IterateObjects(c, func(_ pmem.Ptr, used bool) bool {
		if used {
			n++
		}
		return true
	})
	return n, err
}

// ClassStats summarises one class for diagnostics and the memory-
// consumption experiment (Fig. 10b).
type ClassStats struct {
	// Name is the class label.
	Name string
	// ObjSize is the slot size in bytes.
	ObjSize int64
	// Chunks is the number of chunks on the chunk lists (all stripes).
	Chunks int
	// FreeChunks is the number of chunks on the free lists (all stripes).
	FreeChunks int
	// Used is the number of live objects.
	Used int
	// PMBytes is the PM footprint of all the class's chunks (both lists).
	PMBytes int64
}

// Stats returns per-class statistics.
func (a *Allocator) Stats() []ClassStats {
	out := make([]ClassStats, len(a.classes))
	for i := range a.classes {
		c := Class(i)
		cs := &a.classes[i]
		st := ClassStats{Name: cs.spec.Name, ObjSize: cs.spec.ObjSize}
		limit := int(cs.nchunks.Load()) + 1
		for s := 0; s < NumStripes; s++ {
			steps := 0
			for chunk := a.head(c, s); !chunk.IsNil(); chunk = a.arena.ReadPtr(chunk + 8) {
				st.Chunks++
				h := a.readHeader(chunk)
				st.Used += ObjectsPerChunk - h.free()
				if steps++; steps > limit {
					break
				}
			}
		}
		st.FreeChunks = a.FreeChunks(c)
		st.PMBytes = int64(st.Chunks+st.FreeChunks) * chunkSize(cs.spec.ObjSize)
		out[i] = st
	}
	return out
}

// Check is EPallocator's fsck. It validates, for every class:
//
//   - every stripe's chunk list and free list is acyclic, and the lists of
//     all stripes are pairwise disjoint (no chunk reachable twice — in
//     particular, never from two stripes);
//   - every chunk is a known reservation of the right class, registered to
//     the stripe whose list carries it;
//   - the stripe lists' union covers every registered chunk of the class
//     (no chunk has fallen off the partition);
//   - every chunk-list header's full indicator and next-free hint agree
//     with its bitmap;
//   - no armed micro-log remains on any stripe (a quiescent allocator has
//     none).
//
// It returns nil when all invariants hold.
func (a *Allocator) Check() error {
	for i := range a.classes {
		c := Class(i)
		cs := &a.classes[i]
		seen := make(map[pmem.Ptr]int) // stripe*2 + list (0 chunk, 1 free), +1
		limit := int(cs.nchunks.Load()) + 1
		for s := 0; s < NumStripes; s++ {
			steps := 0
			for chunk := a.head(c, s); !chunk.IsNil(); chunk = a.arena.ReadPtr(chunk + 8) {
				if steps++; steps > limit {
					return fmt.Errorf("%w: class %s stripe %d chunk list cycle", ErrCorrupt, cs.spec.Name, s)
				}
				if prev, dup := seen[chunk]; dup {
					return fmt.Errorf("%w: class %s chunk %d reachable twice (stripe %d chunk list and stripe %d list %d)",
						ErrCorrupt, cs.spec.Name, chunk, s, (prev-1)/2, (prev-1)%2)
				}
				seen[chunk] = s*2 + 1
				r, ok := a.lookupRange(chunk + chunkDataOff)
				if !ok || r.start != chunk || r.class != c {
					return fmt.Errorf("%w: class %s chunk %d not a registered reservation", ErrCorrupt, cs.spec.Name, chunk)
				}
				if r.stripe != s {
					return fmt.Errorf("%w: class %s chunk %d on stripe %d's list but registered to stripe %d",
						ErrCorrupt, cs.spec.Name, chunk, s, r.stripe)
				}
				h := a.readHeader(chunk)
				if h.bitmap() == bitmapMask {
					if h.fullIndicator() != fullFull {
						return fmt.Errorf("%w: class %s chunk %d full but indicator %d",
							ErrCorrupt, cs.spec.Name, chunk, h.fullIndicator())
					}
				} else {
					if h.fullIndicator() != fullAvailable {
						return fmt.Errorf("%w: class %s chunk %d has free slots but indicator %d",
							ErrCorrupt, cs.spec.Name, chunk, h.fullIndicator())
					}
					if nf := h.nextFree(); nf < ObjectsPerChunk && h.bitmap()&(1<<uint(nf)) != 0 {
						return fmt.Errorf("%w: class %s chunk %d next-free hint %d points at a used slot",
							ErrCorrupt, cs.spec.Name, chunk, nf)
					}
				}
			}
			steps = 0
			for chunk := a.freeHead(c, s); !chunk.IsNil(); chunk = a.arena.ReadPtr(chunk + 8) {
				if steps++; steps > limit {
					return fmt.Errorf("%w: class %s stripe %d free list cycle", ErrCorrupt, cs.spec.Name, s)
				}
				if prev, dup := seen[chunk]; dup {
					return fmt.Errorf("%w: class %s chunk %d reachable twice (stripe %d free list and stripe %d list %d)",
						ErrCorrupt, cs.spec.Name, chunk, s, (prev-1)/2, (prev-1)%2)
				}
				seen[chunk] = s*2 + 2
			}
		}
		// Coverage: the stripe partition must account for every registered
		// chunk of the class — a chunk on no list is a persistent leak.
		for _, r := range a.rangeSnapshot() {
			if r.class != c {
				continue
			}
			if seen[r.start] == 0 {
				return fmt.Errorf("%w: class %s chunk %d registered but on no stripe's lists (leaked)",
					ErrCorrupt, cs.spec.Name, r.start)
			}
		}
	}
	for s := 0; s < NumStripes; s++ {
		if cur := a.arena.ReadPtr(a.rlogAddr(s) + rlCurOff); !cur.IsNil() {
			return fmt.Errorf("%w: stripe %d recycle log still armed (chunk %d)", ErrCorrupt, s, cur)
		}
		if chunk := a.arena.ReadPtr(a.tlogAddr(s) + tlChunkOff); !chunk.IsNil() {
			return fmt.Errorf("%w: stripe %d transfer log still armed (chunk %d)", ErrCorrupt, s, chunk)
		}
	}
	return nil
}

// CheckQuiescent runs Check plus the invariants that only hold when no
// operation is in flight:
//
//   - no slot is volatile-in-flight (every Alloc was followed by SetBit,
//     Abort or ResetBit — a lingering in-flight bit is a volatile leak
//     that makes the slot unallocatable until restart);
//   - no persistent update log is armed and no volatile ulog slot is busy
//     (an armed ulog between operations means an update error path forgot
//     to Reclaim, permanently shrinking the pool).
//
// Check stays separate because concurrent callers legitimately hold
// in-flight slots and armed ulogs mid-operation; quiescent invariants are
// for the gaps between operations (and for post-recovery states, which
// must always be quiescent).
func (a *Allocator) CheckQuiescent() error {
	if err := a.Check(); err != nil {
		return err
	}
	for i := range a.classes {
		cs := &a.classes[i]
		for s := range cs.stripes {
			ss := &cs.stripes[s]
			ss.mu.Lock()
			for chunk, meta := range ss.meta {
				if meta.inFlight != 0 {
					ss.mu.Unlock()
					return fmt.Errorf("%w: class %s stripe %d chunk %d has in-flight slots %#x (leaked Alloc?)",
						ErrCorrupt, cs.spec.Name, s, chunk, meta.inFlight)
				}
			}
			ss.mu.Unlock()
		}
	}
	if logs := a.PendingUpdateLogs(); len(logs) != 0 {
		return fmt.Errorf("%w: %d update log(s) still armed at quiescence (slot %d, leaf %d)",
			ErrCorrupt, len(logs), logs[0].Index, logs[0].PLeaf)
	}
	var busy uint64
	for s := 0; s < NumStripes; s++ {
		busy |= a.ulogs.busy[s].Load() << uint(s*ulogsPerStripe)
	}
	if busy != 0 {
		return fmt.Errorf("%w: update-log slots %#x busy at quiescence (missing Reclaim?)", ErrCorrupt, busy)
	}
	return nil
}
