package epalloc

import (
	"fmt"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// IterateObjects calls fn for every slot of every chunk on the class's
// chunk list, reporting whether the slot's persistent bit is set. This is
// the traversal HART's recovery uses (Algorithm 7 lines 2-6). Iteration
// order is list order (most recently linked chunk first).
func (a *Allocator) IterateObjects(c Class, fn func(obj pmem.Ptr, used bool) bool) error {
	cs := &a.classes[c]
	steps := 0
	for chunk := a.head(c); !chunk.IsNil(); chunk = a.arena.ReadPtr(chunk + 8) {
		if steps++; steps > cs.nchunks+1 {
			return fmt.Errorf("%w: class %s chunk list longer than %d chunks (cycle?)",
				ErrCorrupt, cs.spec.Name, cs.nchunks)
		}
		h := a.readHeader(chunk)
		for i := 0; i < ObjectsPerChunk; i++ {
			if !fn(a.SlotAddr(chunk, c, i), h.bitmap()&(1<<uint(i)) != 0) {
				return nil
			}
		}
	}
	return nil
}

// CountUsed returns the number of live objects in the class.
func (a *Allocator) CountUsed(c Class) (int, error) {
	n := 0
	err := a.IterateObjects(c, func(_ pmem.Ptr, used bool) bool {
		if used {
			n++
		}
		return true
	})
	return n, err
}

// ClassStats summarises one class for diagnostics and the memory-
// consumption experiment (Fig. 10b).
type ClassStats struct {
	// Name is the class label.
	Name string
	// ObjSize is the slot size in bytes.
	ObjSize int64
	// Chunks is the number of chunks on the chunk list.
	Chunks int
	// FreeChunks is the number of chunks on the free list.
	FreeChunks int
	// Used is the number of live objects.
	Used int
	// PMBytes is the PM footprint of all the class's chunks (both lists).
	PMBytes int64
}

// Stats returns per-class statistics.
func (a *Allocator) Stats() []ClassStats {
	out := make([]ClassStats, len(a.classes))
	for i := range a.classes {
		c := Class(i)
		cs := &a.classes[i]
		st := ClassStats{Name: cs.spec.Name, ObjSize: cs.spec.ObjSize}
		for chunk := a.head(c); !chunk.IsNil(); chunk = a.arena.ReadPtr(chunk + 8) {
			st.Chunks++
			h := a.readHeader(chunk)
			st.Used += ObjectsPerChunk - h.free()
			if st.Chunks > cs.nchunks+1 {
				break
			}
		}
		st.FreeChunks = a.FreeChunks(c)
		st.PMBytes = int64(st.Chunks+st.FreeChunks) * chunkSize(cs.spec.ObjSize)
		out[i] = st
	}
	return out
}

// Check is EPallocator's fsck. It validates, for every class:
//
//   - the chunk list and free list are acyclic and disjoint;
//   - every chunk is a known reservation of the right class;
//   - every chunk-list header's full indicator and next-free hint agree
//     with its bitmap;
//   - no armed micro-log remains (a quiescent allocator has none).
//
// It returns nil when all invariants hold.
func (a *Allocator) Check() error {
	for i := range a.classes {
		c := Class(i)
		cs := &a.classes[i]
		seen := make(map[pmem.Ptr]int) // 1 = chunk list, 2 = free list
		steps := 0
		for chunk := a.head(c); !chunk.IsNil(); chunk = a.arena.ReadPtr(chunk + 8) {
			if steps++; steps > cs.nchunks+1 {
				return fmt.Errorf("%w: class %s chunk list cycle", ErrCorrupt, cs.spec.Name)
			}
			if seen[chunk] != 0 {
				return fmt.Errorf("%w: class %s chunk %d linked twice", ErrCorrupt, cs.spec.Name, chunk)
			}
			seen[chunk] = 1
			r, ok := a.lookupRange(chunk + chunkDataOff)
			if !ok || r.start != chunk || r.class != c {
				return fmt.Errorf("%w: class %s chunk %d not a registered reservation", ErrCorrupt, cs.spec.Name, chunk)
			}
			h := a.readHeader(chunk)
			if h.bitmap() == bitmapMask {
				if h.fullIndicator() != fullFull {
					return fmt.Errorf("%w: class %s chunk %d full but indicator %d",
						ErrCorrupt, cs.spec.Name, chunk, h.fullIndicator())
				}
			} else {
				if h.fullIndicator() != fullAvailable {
					return fmt.Errorf("%w: class %s chunk %d has free slots but indicator %d",
						ErrCorrupt, cs.spec.Name, chunk, h.fullIndicator())
				}
				if nf := h.nextFree(); nf < ObjectsPerChunk && h.bitmap()&(1<<uint(nf)) != 0 {
					return fmt.Errorf("%w: class %s chunk %d next-free hint %d points at a used slot",
						ErrCorrupt, cs.spec.Name, chunk, nf)
				}
			}
		}
		steps = 0
		for chunk := a.freeHead(c); !chunk.IsNil(); chunk = a.arena.ReadPtr(chunk + 8) {
			if steps++; steps > cs.nchunks+1 {
				return fmt.Errorf("%w: class %s free list cycle", ErrCorrupt, cs.spec.Name)
			}
			if seen[chunk] != 0 {
				return fmt.Errorf("%w: class %s chunk %d on both lists", ErrCorrupt, cs.spec.Name, chunk)
			}
			seen[chunk] = 2
		}
	}
	if cur := a.arena.ReadPtr(a.sb + sbRLogOff + 8); !cur.IsNil() {
		return fmt.Errorf("%w: recycle log still armed (chunk %d)", ErrCorrupt, cur)
	}
	if chunk := a.arena.ReadPtr(a.sb + sbTLogOff); !chunk.IsNil() {
		return fmt.Errorf("%w: transfer log still armed (chunk %d)", ErrCorrupt, chunk)
	}
	return nil
}

// CheckQuiescent runs Check plus the invariants that only hold when no
// operation is in flight:
//
//   - no slot is volatile-in-flight (every Alloc was followed by SetBit,
//     Abort or ResetBit — a lingering in-flight bit is a volatile leak
//     that makes the slot unallocatable until restart);
//   - no persistent update log is armed and no volatile ulog slot is busy
//     (an armed ulog between operations means an update error path forgot
//     to Reclaim, permanently shrinking the pool).
//
// Check stays separate because concurrent callers legitimately hold
// in-flight slots and armed ulogs mid-operation; quiescent invariants are
// for the gaps between operations (and for post-recovery states, which
// must always be quiescent).
func (a *Allocator) CheckQuiescent() error {
	if err := a.Check(); err != nil {
		return err
	}
	for i := range a.classes {
		cs := &a.classes[i]
		cs.mu.Lock()
		for chunk, meta := range cs.meta {
			if meta.inFlight != 0 {
				cs.mu.Unlock()
				return fmt.Errorf("%w: class %s chunk %d has in-flight slots %#x (leaked Alloc?)",
					ErrCorrupt, cs.spec.Name, chunk, meta.inFlight)
			}
		}
		cs.mu.Unlock()
	}
	if logs := a.PendingUpdateLogs(); len(logs) != 0 {
		return fmt.Errorf("%w: %d update log(s) still armed at quiescence (slot %d, leaf %d)",
			ErrCorrupt, len(logs), logs[0].Index, logs[0].PLeaf)
	}
	a.ulogs.mu.Lock()
	busy := a.ulogs.busy
	a.ulogs.mu.Unlock()
	if busy != 0 {
		return fmt.Errorf("%w: update-log slots %#x busy at quiescence (missing Reclaim?)", ErrCorrupt, busy)
	}
	return nil
}
