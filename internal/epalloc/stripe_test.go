package epalloc

import (
	"errors"
	"strings"
	"testing"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// TestAllocStripeAffinity checks that AllocStripe serves every stripe from
// that stripe's own chunks: eight allocations on eight stripes land in
// eight distinct chunks, each registered to its stripe.
func TestAllocStripeAffinity(t *testing.T) {
	_, al := newAlloc(t, 4<<20)
	chunks := map[pmem.Ptr]int{}
	for s := 0; s < NumStripes; s++ {
		obj, err := al.AllocStripe(0, s)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := al.StripeOf(obj); err != nil || got != s {
			t.Fatalf("StripeOf = (%d,%v), want stripe %d", got, err, s)
		}
		chunk, err := al.ChunkOf(obj)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := chunks[chunk]; dup {
			t.Fatalf("stripes %d and %d share chunk %d", prev, s, chunk)
		}
		chunks[chunk] = s
		if err := al.SetBit(obj); err != nil {
			t.Fatal(err)
		}
	}
	if err := al.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossStripeSteal empties a chunk on one stripe (parking it on that
// stripe's free list) and then allocates on a different, dry stripe: the
// allocator must steal the free chunk across stripes instead of reserving
// fresh arena space, re-registering it to the destination stripe.
func TestCrossStripeSteal(t *testing.T) {
	_, al := newAlloc(t, 4<<20)
	// Fill stripe 2's first chunk so a second chunk appears, then empty
	// the second chunk. The keep-one rule protects only the last linked
	// chunk, so the emptied one is recycled onto stripe 2's free list.
	var first []pmem.Ptr
	for i := 0; i < ObjectsPerChunk; i++ {
		obj, err := al.AllocStripe(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := al.SetBit(obj); err != nil {
			t.Fatal(err)
		}
		first = append(first, obj)
	}
	extra, err := al.AllocStripe(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.SetBit(extra); err != nil {
		t.Fatal(err)
	}
	stolen, err := al.ChunkOf(extra)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.Release(extra); err != nil {
		t.Fatal(err)
	}
	if n := al.FreeChunks(1); n != 1 {
		t.Fatalf("FreeChunks = %d, want 1 (emptied chunk recycled)", n)
	}

	nch := int(al.classes[1].nchunks.Load())
	obj, err := al.AllocStripe(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := al.ChunkOf(obj); err != nil || got != stolen {
		t.Fatalf("ChunkOf = (%d,%v), want stolen chunk %d", got, err, stolen)
	}
	if s, err := al.StripeOf(obj); err != nil || s != 6 {
		t.Fatalf("StripeOf = (%d,%v), want destination stripe 6", s, err)
	}
	if got := int(al.classes[1].nchunks.Load()); got != nch {
		t.Fatalf("nchunks grew %d -> %d: steal reserved fresh space", nch, got)
	}
	if n := al.FreeChunks(1); n != 0 {
		t.Fatalf("FreeChunks = %d after steal, want 0", n)
	}
	if err := al.SetBit(obj); err != nil {
		t.Fatal(err)
	}
	for _, o := range first[:3] { // stripe 2's full chunk is untouched
		if set, _ := al.BitIsSet(o); !set {
			t.Fatalf("slot %d lost its bit across the steal", o)
		}
	}
	if err := al.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestAllocBatchContiguousRuns checks AllocBatch's ordering contract: the
// slots of one chunk come back adjacent and ascending, so SetBits can
// commit each chunk run with a single header persist.
func TestAllocBatchContiguousRuns(t *testing.T) {
	_, al := newAlloc(t, 4<<20)
	size := al.ObjSize(1)
	n := ObjectsPerChunk + 10 // forces a second chunk mid-batch
	objs, err := al.AllocBatch(1, 4, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != n {
		t.Fatalf("AllocBatch returned %d slots, want %d", len(objs), n)
	}
	runs := 1
	for i := 1; i < n; i++ {
		if objs[i] == objs[i-1]+pmem.Ptr(size) {
			continue
		}
		// Run break: must be a chunk boundary, never a gap inside a chunk.
		ca, _ := al.ChunkOf(objs[i-1])
		cb, _ := al.ChunkOf(objs[i])
		if ca == cb {
			t.Fatalf("slots %d and %d of one chunk not adjacent: %d then %d", i-1, i, objs[i-1], objs[i])
		}
		runs++
	}
	if runs != 2 {
		t.Fatalf("batch split into %d chunk runs, want 2", runs)
	}
	if got, err := al.SetBits(objs); err != nil || got != n {
		t.Fatalf("SetBits = (%d,%v)", got, err)
	}
	if used, err := al.CountUsed(1); err != nil || used != n {
		t.Fatalf("CountUsed = (%d,%v), want %d", used, err, n)
	}
	if err := al.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestSetBitsCommitsPrefixOnError checks SetBits' prefix contract: when a
// later object fails (here: not a chunk object at all), the returned count
// is exactly the number of durably committed bits, and everything after
// stays uncommitted.
func TestSetBitsCommitsPrefixOnError(t *testing.T) {
	_, al := newAlloc(t, 4<<20)
	objs, err := al.AllocBatch(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := []pmem.Ptr{objs[0], objs[1], pmem.Ptr(8), objs[2]}
	n, err := al.SetBits(bad)
	if !errors.Is(err, ErrNotChunkObject) || n != 2 {
		t.Fatalf("SetBits = (%d,%v), want (2, ErrNotChunkObject)", n, err)
	}
	for i, want := range []bool{true, true, false} {
		if set, _ := al.BitIsSet(objs[i]); set != want {
			t.Fatalf("slot %d bit = %v, want %v", i, set, want)
		}
	}
	// The uncommitted tail can be aborted and the prefix released.
	if err := al.Abort(objs[2]); err != nil {
		t.Fatal(err)
	}
	if err := al.Release(objs[0]); err != nil {
		t.Fatal(err)
	}
	if err := al.Release(objs[1]); err != nil {
		t.Fatal(err)
	}
	if err := al.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestAllocBatchAbortsOnInjectedFailure checks AllocBatch's no-partial
// contract: when chunk acquisition fails mid-batch, the already-claimed
// slots leave their in-flight state.
func TestAllocBatchAbortsOnInjectedFailure(t *testing.T) {
	_, al := newAlloc(t, 4<<20)
	// Deterministic mid-batch failure: a batch larger than a tiny arena
	// can ever serve, so chunk acquisition fails once the space runs out.
	small, err := pmem.New(pmem.Config{Size: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	sal, err := New(small, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sal.AllocBatch(0, 0, 100*ObjectsPerChunk); err == nil {
		t.Fatal("AllocBatch succeeded beyond arena capacity")
	}
	if err := sal.CheckQuiescent(); err != nil {
		t.Fatalf("in-flight slots leaked by failed batch: %v", err)
	}
	if err := al.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestStripedULogClaims checks the lock-free update-log pool partition:
// claims prefer the caller's stripe, spill to siblings when the stripe is
// dry, and Reclaim returns slots to their home partition.
func TestStripedULogClaims(t *testing.T) {
	_, al := newAlloc(t, 1<<20)
	var own []*ULog
	for i := 0; i < ulogsPerStripe; i++ {
		u := al.GetUpdateLogStriped(3)
		if got := u.idx / ulogsPerStripe; got != 3 {
			t.Fatalf("claim %d landed in stripe %d's partition, want 3", i, got)
		}
		own = append(own, u)
	}
	// Stripe 3 is dry: the next claim must steal from a sibling partition.
	spill := al.GetUpdateLogStriped(3)
	if got := spill.idx / ulogsPerStripe; got == 3 {
		t.Fatalf("claim beyond the partition stayed on stripe 3 (slot %d)", spill.idx)
	}
	spill.Reclaim()
	for _, u := range own {
		u.Reclaim()
	}
	// All slots home again: a fresh claim gets stripe 3's first slot back.
	u := al.GetUpdateLogStriped(3)
	if got := u.idx / ulogsPerStripe; got != 3 {
		t.Fatalf("post-reclaim claim landed in stripe %d's partition", got)
	}
	u.Reclaim()
	if err := al.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckDetectsCrossStripeDuplicate is the regression test for the
// stripe-partition invariant: PM corrupted so one chunk is reachable from
// two stripes' lists must fail both the online fsck and a fresh Attach.
func TestCheckDetectsCrossStripeDuplicate(t *testing.T) {
	arena, al := newAlloc(t, 4<<20)
	a0, err := al.AllocStripe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.SetBit(a0); err != nil {
		t.Fatal(err)
	}
	chunk0, err := al.ChunkOf(a0)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.Check(); err != nil {
		t.Fatal(err)
	}

	// Corrupt: point stripe 5's chunk-list head at stripe 0's chunk.
	arena.WritePtr(al.headAddr(0, 5), chunk0)
	arena.Persist(al.headAddr(0, 5), 8)

	err = al.Check()
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "reachable twice") {
		t.Fatalf("Check = %v, want ErrCorrupt (reachable twice)", err)
	}

	// The corruption is durable: recovery must refuse to attach.
	img, err := arena.DurableImage()
	if err != nil {
		t.Fatal(err)
	}
	ar2, err := pmem.Attach(img, pmem.Config{Size: int64(len(img))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(ar2, testSpecs()); !errors.Is(err, ErrCorrupt) ||
		!strings.Contains(err.Error(), "reachable twice across stripe lists") {
		t.Fatalf("Attach = %v, want ErrCorrupt (reachable twice across stripe lists)", err)
	}
}

// TestCheckDetectsStripeRegistrationMismatch corrupts the partition the
// other way round: a chunk moved onto a stripe's persistent list without
// its registration following must fail Check.
func TestCheckDetectsStripeRegistrationMismatch(t *testing.T) {
	arena, al := newAlloc(t, 4<<20)
	a0, err := al.AllocStripe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.SetBit(a0); err != nil {
		t.Fatal(err)
	}
	chunk0, err := al.ChunkOf(a0)
	if err != nil {
		t.Fatal(err)
	}
	// Move the chunk to stripe 3's list on PM only (registration and
	// volatile state still say stripe 0).
	arena.WritePtr(al.headAddr(0, 0), pmem.Nil)
	arena.WritePtr(al.headAddr(0, 3), chunk0)
	err = al.Check()
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "registered to stripe") {
		t.Fatalf("Check = %v, want ErrCorrupt (stripe registration mismatch)", err)
	}
}
