package epalloc

import (
	"fmt"
	"math/bits"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// Alloc implements EPMalloc (Algorithm 2) on stripe 0. Callers with a
// stripe affinity (HART's write path maps each shard to a stripe) should
// use AllocStripe so writers to different shards do not share a lock.
func (a *Allocator) Alloc(c Class) (pmem.Ptr, error) {
	return a.AllocStripe(c, 0)
}

// AllocStripe returns a free object slot of the class from the given
// stripe, allocating (or stealing from a sibling stripe) a new memory
// chunk if no chunk of the stripe has room. The slot's persistent bit is
// NOT set — the caller commits the object with SetBit once it is fully
// initialised and linked into the index (Algorithm 1 line 18). Until then
// the slot is reserved only in volatile memory, so a crash makes it
// allocatable again, which is exactly the leak-prevention property of
// Section III.A.6.
//
// If the class has an OnReuse hook it runs on the returned slot before
// AllocStripe returns, mirroring Algorithm 2 lines 12-16 (reclaiming a
// value object left behind by an incomplete insertion or deletion).
func (a *Allocator) AllocStripe(c Class, stripe int) (pmem.Ptr, error) {
	if a.failAlloc.tripped() {
		return pmem.Nil, ErrInjected
	}
	stripe &= NumStripes - 1
	cs := &a.classes[c]
	ss := &cs.stripes[stripe]
	for {
		ss.mu.Lock()
		if obj, ok := a.takeFromStripe(c, ss); ok {
			a.runOnReuse(cs, obj)
			ss.mu.Unlock()
			return obj, nil
		}
		ss.mu.Unlock()
		// No chunk of the stripe has a free slot: obtain one (free-list
		// reuse, cross-stripe steal, or fresh reservation) and retry.
		if _, err := a.allocChunk(c, stripe); err != nil {
			return pmem.Nil, err
		}
	}
}

// AllocBatch returns n free slots of the class from the stripe, draining
// as many as possible per stripe-lock acquisition. Slots of one chunk are
// returned adjacently in ascending slot order, so a caller committing them
// in result order via SetBits pays one header persist per chunk run. On
// error no slot stays in flight (partial allocations are aborted).
func (a *Allocator) AllocBatch(c Class, stripe, n int) ([]pmem.Ptr, error) {
	if a.failAlloc.tripped() {
		return nil, ErrInjected
	}
	stripe &= NumStripes - 1
	cs := &a.classes[c]
	ss := &cs.stripes[stripe]
	objs := make([]pmem.Ptr, 0, n)
	for len(objs) < n {
		ss.mu.Lock()
		for len(objs) < n {
			obj, ok := a.takeFromStripe(c, ss)
			if !ok {
				break
			}
			a.runOnReuse(cs, obj)
			objs = append(objs, obj)
		}
		ss.mu.Unlock()
		if len(objs) == n {
			break
		}
		if _, err := a.allocChunk(c, stripe); err != nil {
			for _, obj := range objs {
				_ = a.Abort(obj)
			}
			return nil, err
		}
	}
	a.metrics.BatchAllocs.AddStripe(stripe, 1)
	a.metrics.BatchObjs.AddStripe(stripe, uint64(len(objs)))
	return objs, nil
}

// takeFromStripe claims one free slot from the stripe's avail queue.
// Caller holds the stripe lock.
func (a *Allocator) takeFromStripe(c Class, ss *stripeState) (pmem.Ptr, bool) {
	for len(ss.avail) > 0 {
		chunk := ss.avail[len(ss.avail)-1]
		meta := ss.meta[chunk]
		if obj, ok := a.takeSlot(c, chunk, meta); ok {
			return obj, true
		}
		meta.inAvail = false
		ss.avail = ss.avail[:len(ss.avail)-1]
	}
	return pmem.Nil, false
}

// runOnReuse invokes the class's reuse hook.
func (a *Allocator) runOnReuse(cs *classState, obj pmem.Ptr) {
	if cs.spec.OnReuse != nil {
		cs.spec.OnReuse(obj)
	}
}

// takeSlot claims one free slot of chunk, preferring the persistent
// next-free hint. A slot is free when neither its persistent bit nor its
// volatile in-flight bit is set. Returns false if the chunk is full.
func (a *Allocator) takeSlot(c Class, chunk pmem.Ptr, meta *chunkMeta) (pmem.Ptr, bool) {
	h := a.readHeader(chunk)
	freeMask := ^(h.bitmap() | meta.inFlight) & bitmapMask
	if freeMask == 0 {
		return pmem.Nil, false
	}
	idx := h.nextFree()
	if idx >= ObjectsPerChunk || freeMask&(1<<uint(idx)) == 0 {
		idx = bits.TrailingZeros64(freeMask)
	}
	meta.inFlight |= 1 << uint(idx)
	return a.SlotAddr(chunk, c, idx), true
}

// allocChunk obtains a chunk for the stripe: a recycled chunk from the
// stripe's own free list, else one stolen from a sibling stripe's free
// list (the cross-stripe rebalance; the only path taking two stripe locks,
// always in ascending index order), else a fresh arena reservation under
// chunkMu. The whole transition runs under the destination stripe's
// chunk-transfer micro-log so a crash at any persist boundary neither
// leaks the chunk nor corrupts any list (see recoverLogs).
func (a *Allocator) allocChunk(c Class, dst int) (pmem.Ptr, error) {
	cs := &a.classes[c]
	dstSS := &cs.stripes[dst]

	// Own free list first.
	dstSS.mu.Lock()
	if !a.freeHead(c, dst).IsNil() {
		defer dstSS.mu.Unlock()
		a.metrics.ChunkReuses.AddStripe(dst, 1)
		return a.transferLocked(c, dst, dst, false)
	}
	dstSS.mu.Unlock()

	// Steal from a sibling stripe. The unlocked freeHead peek is an atomic
	// word read and merely a hint; ownership is re-checked under both
	// locks.
	for off := 1; off < NumStripes; off++ {
		src := (dst + off) & (NumStripes - 1)
		if a.freeHead(c, src).IsNil() {
			continue
		}
		lo, hi := &cs.stripes[min(src, dst)], &cs.stripes[max(src, dst)]
		lo.mu.Lock()
		hi.mu.Lock()
		if a.freeHead(c, src).IsNil() {
			hi.mu.Unlock()
			lo.mu.Unlock()
			continue
		}
		chunk, err := a.transferLocked(c, src, dst, false)
		hi.mu.Unlock()
		lo.mu.Unlock()
		if err == nil {
			a.metrics.Steals.AddStripe(dst, 1)
			if a.events != nil {
				a.events.Emit("alloc.steal", cs.spec.Name, uint64(src), uint64(dst))
			}
		}
		return chunk, err
	}

	// Whole class dry: reserve fresh arena space. chunkMu serialises
	// reservations so the transfer log's address prediction is exact.
	dstSS.mu.Lock()
	defer dstSS.mu.Unlock()
	a.chunkMu.Lock()
	defer a.chunkMu.Unlock()
	a.metrics.FreshChunks.AddStripe(dst, 1)
	return a.transferLocked(c, tlSrcFresh, dst, true)
}

// transferLocked moves one chunk onto the destination stripe's chunk list
// under the destination's transfer log: a free-list pop from stripe src
// (src may equal dst), or a fresh arena reservation when fresh is set.
// Caller holds dst's stripe lock, src's stripe lock when src != dst, and
// chunkMu when fresh.
func (a *Allocator) transferLocked(c Class, src, dst int, fresh bool) (pmem.Ptr, error) {
	ar := a.arena
	var chunk pmem.Ptr
	if fresh {
		// Predict the reservation address so the transfer log can be armed
		// *before* the bump cursor durably advances; a crash between the
		// two then cannot leak the chunk. chunkMu serialises reservations,
		// so the prediction is exact.
		chunk = pmem.Ptr((ar.Reserved() + 7) &^ 7)
	} else {
		chunk = a.freeHead(c, src)
	}

	// Arm the transfer log: "chunk is moving onto class c, stripe dst's
	// chunk list, taken from stripe src's free list (or fresh)". Class and
	// source first, chunk pointer last — the slot is armed iff PChunk != 0.
	t := a.tlogAddr(dst)
	ar.Write8(t+tlClassOff, uint64(c))
	ar.Write8(t+tlSrcOff, uint64(src))
	ar.Persist(t+tlClassOff, 16)
	ar.WritePtr(t+tlChunkOff, chunk)
	ar.Persist(t+tlChunkOff, 8)

	if fresh {
		size := chunkSize(a.classes[c].spec.ObjSize)
		got, err := ar.Reserve(size, 8)
		if err != nil {
			ar.WritePtr(t+tlChunkOff, pmem.Nil)
			ar.Persist(t+tlChunkOff, 8)
			return pmem.Nil, err
		}
		if got != chunk {
			return pmem.Nil, fmt.Errorf("%w: predicted chunk %d, reserved %d", ErrCorrupt, chunk, got)
		}
	} else {
		// Unlink from the source free list.
		next := ar.ReadPtr(chunk + 8)
		ar.WritePtr(a.freeHeadAddr(c, src), next)
		ar.Persist(a.freeHeadAddr(c, src), 8)
	}

	// Initialise: empty bitmap, hint 0, available; PNext = current head.
	ar.Write8(chunk, uint64(makeHeader(0, 0, fullAvailable)))
	ar.WritePtr(chunk+8, a.head(c, dst))
	ar.Persist(chunk, 16)

	// Link at the destination head, then disarm the log.
	ar.WritePtr(a.headAddr(c, dst), chunk)
	ar.Persist(a.headAddr(c, dst), 8)
	ar.WritePtr(t+tlChunkOff, pmem.Nil)
	ar.Persist(t+tlChunkOff, 8)

	a.registerRange(chunk, c, dst)

	// Volatile bookkeeping: the chunk now offers slots on dst.
	cs := &a.classes[c]
	if fresh {
		cs.nchunks.Add(1)
	} else if src != dst {
		delete(cs.stripes[src].meta, chunk)
	}
	dstSS := &cs.stripes[dst]
	meta := dstSS.meta[chunk]
	if meta == nil {
		meta = &chunkMeta{}
		dstSS.meta[chunk] = meta
	}
	meta.inFlight = 0
	if !meta.inAvail {
		meta.inAvail = true
		dstSS.avail = append(dstSS.avail, chunk)
	}
	return chunk, nil
}

// SetBit commits an allocated object: it durably marks the slot live and
// refreshes the next-free hint and full indicator. The header is a single
// 8-byte word, so the commit is failure-atomic (paper Fig. 2).
func (a *Allocator) SetBit(obj pmem.Ptr) error {
	if a.failSetBit.tripped() {
		return ErrInjected
	}
	r, ss, err := a.lockStripeOf(obj)
	if err != nil {
		return err
	}
	defer ss.mu.Unlock()
	idx, err := a.slotIndex(r, obj)
	if err != nil {
		return err
	}
	h := a.readHeader(r.start)
	bm := h.bitmap() | 1<<uint(idx)
	a.writeHeader(r.start, packHeader(bm))
	if meta := ss.meta[r.start]; meta != nil {
		meta.inFlight &^= 1 << uint(idx)
	}
	return nil
}

// SetBits commits a batch of allocated objects, coalescing consecutive
// objects of one chunk into a single header write and persist — the
// batched-insert commit path. Bits are committed in argument order, run by
// run, so a crash exposes exactly a prefix of the batch (possibly jumping
// a whole chunk run at once, which is still a prefix). Returns the number
// of objects durably committed, which is len(objs) iff err is nil.
func (a *Allocator) SetBits(objs []pmem.Ptr) (int, error) {
	if a.failSetBit.tripped() {
		return 0, ErrInjected
	}
	i := 0
	for i < len(objs) {
		r, ss, err := a.lockStripeOf(objs[i])
		if err != nil {
			return i, err
		}
		h := a.readHeader(r.start)
		bm := h.bitmap()
		meta := ss.meta[r.start]
		j := i
		for ; j < len(objs) && objs[j] >= r.start+chunkDataOff && objs[j] < r.end; j++ {
			idx, err := a.slotIndex(r, objs[j])
			if err != nil {
				ss.mu.Unlock()
				return i, err
			}
			bm |= 1 << uint(idx)
			if meta != nil {
				meta.inFlight &^= 1 << uint(idx)
			}
		}
		a.writeHeader(r.start, packHeader(bm))
		ss.mu.Unlock()
		i = j
	}
	return i, nil
}

// ResetBit durably marks the slot free (used by deletion, update reclaim
// and the OnReuse repair path) and refreshes hint and indicator.
func (a *Allocator) ResetBit(obj pmem.Ptr) error {
	if a.failResetBit.tripped() {
		return ErrInjected
	}
	r, ss, err := a.lockStripeOf(obj)
	if err != nil {
		return err
	}
	defer ss.mu.Unlock()
	idx, err := a.slotIndex(r, obj)
	if err != nil {
		return err
	}
	a.resetBitLocked(ss, r, idx)
	return nil
}

// resetBitLocked clears a slot bit with the owning stripe's lock held.
func (a *Allocator) resetBitLocked(ss *stripeState, r chunkRange, idx int) {
	h := a.readHeader(r.start)
	bm := h.bitmap() &^ (1 << uint(idx))
	a.writeHeader(r.start, packHeader(bm))
	meta := ss.meta[r.start]
	if meta == nil {
		meta = &chunkMeta{}
		ss.meta[r.start] = meta
	}
	meta.inFlight &^= 1 << uint(idx)
	if !meta.inAvail {
		meta.inAvail = true
		ss.avail = append(ss.avail, r.start)
	}
}

// Release clears the slot's persistent bit and, if that empties its
// chunk, recycles the chunk — ResetBit plus Recycle (Algorithm 5 lines
// 12-13 / Algorithm 3 lines 9-10) fused under one stripe-lock acquisition
// and one header read.
func (a *Allocator) Release(obj pmem.Ptr) error {
	if a.failResetBit.tripped() {
		return ErrInjected
	}
	r, ss, err := a.lockStripeOf(obj)
	if err != nil {
		return err
	}
	idx, err := a.slotIndex(r, obj)
	if err != nil {
		ss.mu.Unlock()
		return err
	}
	h := a.readHeader(r.start)
	bm := h.bitmap() &^ (1 << uint(idx))
	a.writeHeader(r.start, packHeader(bm))
	meta := ss.meta[r.start]
	if meta == nil {
		meta = &chunkMeta{}
		ss.meta[r.start] = meta
	}
	meta.inFlight &^= 1 << uint(idx)
	if !meta.inAvail {
		meta.inAvail = true
		ss.avail = append(ss.avail, r.start)
	}
	empty := bm == 0 && meta.inFlight == 0
	ss.mu.Unlock()
	if !empty {
		return nil
	}
	return a.recycleChunkMode(r.start, true)
}

// Abort releases a slot obtained from Alloc whose object will never be
// committed (volatile only; nothing to undo on PM).
func (a *Allocator) Abort(obj pmem.Ptr) error {
	r, ss, err := a.lockStripeOf(obj)
	if err != nil {
		return err
	}
	defer ss.mu.Unlock()
	idx, err := a.slotIndex(r, obj)
	if err != nil {
		return err
	}
	if meta := ss.meta[r.start]; meta != nil {
		meta.inFlight &^= 1 << uint(idx)
		if !meta.inAvail {
			meta.inAvail = true
			ss.avail = append(ss.avail, r.start)
		}
	}
	return nil
}

// BitIsSet reports whether the slot's persistent bit is set (the validity
// check search performs on leaves, Algorithm 4 line 9).
func (a *Allocator) BitIsSet(obj pmem.Ptr) (bool, error) {
	r, ok := a.lookupRange(obj)
	if !ok {
		return false, ErrNotChunkObject
	}
	idx, err := a.slotIndex(r, obj)
	if err != nil {
		return false, err
	}
	return a.readHeader(r.start).bitmap()&(1<<uint(idx)) != 0, nil
}

// packHeader derives hint and indicator from a bitmap and packs the header.
func packHeader(bitmap uint64) header {
	freeMask := ^bitmap & bitmapMask
	if freeMask == 0 {
		return makeHeader(bitmap, 0, fullFull)
	}
	return makeHeader(bitmap, bits.TrailingZeros64(freeMask), fullAvailable)
}
