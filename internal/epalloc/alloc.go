package epalloc

import (
	"fmt"
	"math/bits"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// Alloc implements EPMalloc (Algorithm 2): it returns a free object slot of
// the class, allocating and linking a new memory chunk if no existing chunk
// has room. The slot's persistent bit is NOT set — the caller commits the
// object with SetBit once it is fully initialised and linked into the index
// (Algorithm 1 line 18). Until then the slot is reserved only in volatile
// memory, so a crash makes it allocatable again, which is exactly the
// leak-prevention property of Section III.A.6.
//
// If the class has an OnReuse hook it runs on the returned slot before
// Alloc returns, mirroring Algorithm 2 lines 12-16 (reclaiming a value
// object left behind by an incomplete insertion or deletion).
func (a *Allocator) Alloc(c Class) (pmem.Ptr, error) {
	if a.failAlloc.tripped() {
		return pmem.Nil, ErrInjected
	}
	cs := &a.classes[c]
	cs.mu.Lock()
	defer cs.mu.Unlock()

	// Walk chunks believed to have free slots (Algorithm 2 lines 1-7; the
	// avail queue plays the role of the list walk without rescanning
	// known-full chunks).
	for len(cs.avail) > 0 {
		chunk := cs.avail[len(cs.avail)-1]
		meta := cs.meta[chunk]
		if obj, ok := a.takeSlot(c, chunk, meta); ok {
			a.runOnReuse(cs, obj)
			return obj, nil
		}
		meta.inAvail = false
		cs.avail = cs.avail[:len(cs.avail)-1]
	}

	// No chunk with a free slot: allocate a new chunk and link it at the
	// head of the class's chunk list (Algorithm 2 lines 8-11).
	chunk, err := a.allocChunk(c)
	if err != nil {
		return pmem.Nil, err
	}
	meta := &chunkMeta{inAvail: true}
	cs.meta[chunk] = meta
	cs.avail = append(cs.avail, chunk)
	cs.nchunks++
	obj, ok := a.takeSlot(c, chunk, meta)
	if !ok {
		return pmem.Nil, fmt.Errorf("%w: fresh chunk %d has no free slot", ErrCorrupt, chunk)
	}
	a.runOnReuse(cs, obj)
	return obj, nil
}

// runOnReuse invokes the class's reuse hook.
func (a *Allocator) runOnReuse(cs *classState, obj pmem.Ptr) {
	if cs.spec.OnReuse != nil {
		cs.spec.OnReuse(obj)
	}
}

// takeSlot claims one free slot of chunk, preferring the persistent
// next-free hint. A slot is free when neither its persistent bit nor its
// volatile in-flight bit is set. Returns false if the chunk is full.
func (a *Allocator) takeSlot(c Class, chunk pmem.Ptr, meta *chunkMeta) (pmem.Ptr, bool) {
	h := a.readHeader(chunk)
	freeMask := ^(h.bitmap() | meta.inFlight) & bitmapMask
	if freeMask == 0 {
		return pmem.Nil, false
	}
	idx := h.nextFree()
	if idx >= ObjectsPerChunk || freeMask&(1<<uint(idx)) == 0 {
		idx = bits.TrailingZeros64(freeMask)
	}
	meta.inFlight |= 1 << uint(idx)
	return a.SlotAddr(chunk, c, idx), true
}

// allocChunk obtains a chunk for the class, reusing a recycled chunk from
// the free list when possible, and links it at the head of the class's
// chunk list. The whole transition runs under the chunk-transfer micro-log
// so a crash at any persist boundary neither leaks the chunk nor corrupts
// either list (see recoverLogs).
func (a *Allocator) allocChunk(c Class) (pmem.Ptr, error) {
	ar := a.arena
	a.chunkMu.Lock()
	defer a.chunkMu.Unlock()

	size := chunkSize(a.classes[c].spec.ObjSize)
	chunk := a.freeHead(c)
	fresh := chunk.IsNil()
	if fresh {
		// Predict the reservation address so the transfer log can be armed
		// *before* the bump cursor durably advances; a crash between the
		// two then cannot leak the chunk. chunkMu serialises reservations,
		// so the prediction is exact.
		chunk = pmem.Ptr((a.arena.Reserved() + 7) &^ 7)
	}

	// Arm the transfer log: "chunk is moving onto class c's chunk list".
	// Class first, chunk pointer last — the log is armed iff PChunk != 0.
	ar.Write8(a.sb+sbTLogOff+8, uint64(c))
	ar.Persist(a.sb+sbTLogOff+8, 8)
	ar.WritePtr(a.sb+sbTLogOff, chunk)
	ar.Persist(a.sb+sbTLogOff, 8)

	if fresh {
		got, err := ar.Reserve(size, 8)
		if err != nil {
			ar.WritePtr(a.sb+sbTLogOff, pmem.Nil)
			ar.Persist(a.sb+sbTLogOff, 8)
			return pmem.Nil, err
		}
		if got != chunk {
			return pmem.Nil, fmt.Errorf("%w: predicted chunk %d, reserved %d", ErrCorrupt, chunk, got)
		}
	} else {
		// Unlink from the free list.
		next := ar.ReadPtr(chunk + 8)
		ar.WritePtr(a.freeHeadAddr(c), next)
		ar.Persist(a.freeHeadAddr(c), 8)
	}

	// Initialise: empty bitmap, hint 0, available; PNext = current head.
	ar.Write8(chunk, uint64(makeHeader(0, 0, fullAvailable)))
	ar.WritePtr(chunk+8, a.head(c))
	ar.Persist(chunk, 16)

	// Link at head, then disarm the log.
	ar.WritePtr(a.headAddr(c), chunk)
	ar.Persist(a.headAddr(c), 8)
	ar.WritePtr(a.sb+sbTLogOff, pmem.Nil)
	ar.Persist(a.sb+sbTLogOff, 8)

	a.registerRange(chunk, c)
	return chunk, nil
}

// SetBit commits an allocated object: it durably marks the slot live and
// refreshes the next-free hint and full indicator. The header is a single
// 8-byte word, so the commit is failure-atomic (paper Fig. 2).
func (a *Allocator) SetBit(obj pmem.Ptr) error {
	if a.failSetBit.tripped() {
		return ErrInjected
	}
	r, ok := a.lookupRange(obj)
	if !ok {
		return ErrNotChunkObject
	}
	idx, err := a.slotIndex(r, obj)
	if err != nil {
		return err
	}
	cs := &a.classes[r.class]
	cs.mu.Lock()
	defer cs.mu.Unlock()

	h := a.readHeader(r.start)
	bm := h.bitmap() | 1<<uint(idx)
	a.writeHeader(r.start, packHeader(bm))
	if meta := cs.meta[r.start]; meta != nil {
		meta.inFlight &^= 1 << uint(idx)
	}
	return nil
}

// ResetBit durably marks the slot free (used by deletion, update reclaim
// and the OnReuse repair path) and refreshes hint and indicator.
func (a *Allocator) ResetBit(obj pmem.Ptr) error {
	if a.failResetBit.tripped() {
		return ErrInjected
	}
	r, ok := a.lookupRange(obj)
	if !ok {
		return ErrNotChunkObject
	}
	idx, err := a.slotIndex(r, obj)
	if err != nil {
		return err
	}
	cs := &a.classes[r.class]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	a.resetBitLocked(cs, r, idx)
	return nil
}

// resetBitLocked clears a slot bit with the class lock held.
func (a *Allocator) resetBitLocked(cs *classState, r chunkRange, idx int) {
	h := a.readHeader(r.start)
	bm := h.bitmap() &^ (1 << uint(idx))
	a.writeHeader(r.start, packHeader(bm))
	meta := cs.meta[r.start]
	if meta == nil {
		meta = &chunkMeta{}
		cs.meta[r.start] = meta
	}
	meta.inFlight &^= 1 << uint(idx)
	if !meta.inAvail {
		meta.inAvail = true
		cs.avail = append(cs.avail, r.start)
	}
}

// Release clears the slot's persistent bit and, if that empties its
// chunk, recycles the chunk — ResetBit plus Recycle (Algorithm 5 lines
// 12-13 / Algorithm 3 lines 9-10) fused under one class-lock acquisition
// and one header read.
func (a *Allocator) Release(obj pmem.Ptr) error {
	if a.failResetBit.tripped() {
		return ErrInjected
	}
	r, ok := a.lookupRange(obj)
	if !ok {
		return ErrNotChunkObject
	}
	idx, err := a.slotIndex(r, obj)
	if err != nil {
		return err
	}
	cs := &a.classes[r.class]
	cs.mu.Lock()
	h := a.readHeader(r.start)
	bm := h.bitmap() &^ (1 << uint(idx))
	a.writeHeader(r.start, packHeader(bm))
	meta := cs.meta[r.start]
	if meta == nil {
		meta = &chunkMeta{}
		cs.meta[r.start] = meta
	}
	meta.inFlight &^= 1 << uint(idx)
	if !meta.inAvail {
		meta.inAvail = true
		cs.avail = append(cs.avail, r.start)
	}
	empty := bm == 0 && meta.inFlight == 0
	cs.mu.Unlock()
	if !empty {
		return nil
	}
	return a.recycleChunkMode(r.class, r.start, true)
}

// Abort releases a slot obtained from Alloc whose object will never be
// committed (volatile only; nothing to undo on PM).
func (a *Allocator) Abort(obj pmem.Ptr) error {
	r, ok := a.lookupRange(obj)
	if !ok {
		return ErrNotChunkObject
	}
	idx, err := a.slotIndex(r, obj)
	if err != nil {
		return err
	}
	cs := &a.classes[r.class]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if meta := cs.meta[r.start]; meta != nil {
		meta.inFlight &^= 1 << uint(idx)
		if !meta.inAvail {
			meta.inAvail = true
			cs.avail = append(cs.avail, r.start)
		}
	}
	return nil
}

// BitIsSet reports whether the slot's persistent bit is set (the validity
// check search performs on leaves, Algorithm 4 line 9).
func (a *Allocator) BitIsSet(obj pmem.Ptr) (bool, error) {
	r, ok := a.lookupRange(obj)
	if !ok {
		return false, ErrNotChunkObject
	}
	idx, err := a.slotIndex(r, obj)
	if err != nil {
		return false, err
	}
	return a.readHeader(r.start).bitmap()&(1<<uint(idx)) != 0, nil
}

// packHeader derives hint and indicator from a bitmap and packs the header.
func packHeader(bitmap uint64) header {
	freeMask := ^bitmap & bitmapMask
	if freeMask == 0 {
		return makeHeader(bitmap, 0, fullFull)
	}
	return makeHeader(bitmap, bits.TrailingZeros64(freeMask), fullAvailable)
}
