package epalloc

import (
	"testing"

	"github.com/casl-sdsu/hart/internal/latency"
	"github.com/casl-sdsu/hart/internal/pmart"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// BenchmarkEPMallocVsRegular is the allocator ablation behind Section
// III.A.4: EPallocator amortises chunk metadata over 56 objects, while a
// regular PM allocator persists metadata per object. Run with -benchmem
// to see the difference; the persists/op metric is reported explicitly.
func BenchmarkEPMallocVsRegular(b *testing.B) {
	lat := latency.Config300x300()
	lat.Mode = latency.ModeAccount

	b.Run("EPallocator", func(b *testing.B) {
		arena, err := pmem.New(pmem.Config{Size: int64(b.N)*48 + (8 << 20), Latency: lat})
		if err != nil {
			b.Fatal(err)
		}
		al, err := New(arena, []ClassSpec{{Name: "leaf", ObjSize: 40}})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			obj, err := al.Alloc(0)
			if err != nil {
				b.Fatal(err)
			}
			if err := al.SetBit(obj); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(arena.Persists())/float64(b.N), "persists/op")
	})

	b.Run("RegularPMAllocator", func(b *testing.B) {
		arena, err := pmem.New(pmem.Config{Size: int64(b.N)*48 + (8 << 20), Latency: lat})
		if err != nil {
			b.Fatal(err)
		}
		na := pmart.NewNodeAlloc(arena)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := na.Alloc(40); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(arena.Persists())/float64(b.N), "persists/op")
	})
}

// BenchmarkAllocFreeCycle measures steady-state slot turnover (the mixed
// workload pattern: every update allocates one value and frees another).
func BenchmarkAllocFreeCycle(b *testing.B) {
	arena, err := pmem.New(pmem.Config{Size: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	al, err := New(arena, []ClassSpec{{Name: "value8", ObjSize: 8}})
	if err != nil {
		b.Fatal(err)
	}
	// Steady-state population.
	var live []pmem.Ptr
	for i := 0; i < 1000; i++ {
		obj, _ := al.Alloc(0)
		al.SetBit(obj)
		live = append(live, obj)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj, err := al.Alloc(0)
		if err != nil {
			b.Fatal(err)
		}
		al.SetBit(obj)
		old := live[i%len(live)]
		live[i%len(live)] = obj
		if err := al.Release(old); err != nil {
			b.Fatal(err)
		}
	}
}
