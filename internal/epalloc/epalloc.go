// Package epalloc implements EPallocator, HART's enhanced persistent
// memory allocator (paper Section III.A.4-6, Algorithms 2 and 6).
//
// Existing PM allocators are slow when allocating numerous small objects,
// so EPallocator reserves *memory chunks* of 56 objects at a time and hands
// out objects from them. Each chunk holds:
//
//	+0  header (8 B): bytes 0-6 = 56-bit occupancy bitmap (bit i set =>
//	    slot i live), byte 7 = 6-bit next-free-slot hint (bits 0-5) and
//	    2-bit full indicator (bits 6-7: 00 available, 01 full, 10/11
//	    reserved)
//	+8  PNext (8 B): persistent pointer to the next chunk of the class
//	+16 56 object slots
//
// Chunks of one object class form a singly linked persistent list, so one
// persistent next pointer amortises over 56 objects instead of one per
// leaf (the paper's argument against per-leaf next pointers). The bitmap
// is the durable record of which objects are live: an object allocated but
// whose bit was never set simply reads as free after a crash, which is how
// EPallocator prevents persistent memory leaks. Freed chunks are unlinked
// under a persistent recycle micro-log and pushed onto a per-class free
// list for reuse.
//
// The commit protocol is split between allocator and caller exactly as in
// Algorithm 1: Alloc hands out a slot *without* setting its bit (marking it
// volatile-in-flight so concurrent allocations skip it); the caller calls
// SetBit only after the object is fully initialised and linked. A crash in
// between leaves the bit clear and the slot reusable.
package epalloc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// ObjectsPerChunk is the number of object slots per memory chunk (Fig. 2).
const ObjectsPerChunk = 56

// MaxClasses bounds the number of object classes one allocator serves.
const MaxClasses = 16

// chunkDataOff is the byte offset of slot 0 within a chunk.
const chunkDataOff = 16

// Superblock layout (relative to the allocator's superblock base, which is
// always the first reservation of the arena, i.e. offset pmem.HeaderSize).
const (
	sbMagicOff      = 0   // 8B magic
	sbNumClassesOff = 8   // 8B class count
	sbClassTableOff = 24  // MaxClasses × 24B entries, ends at 408
	sbRLogOff       = 408 // recycle log: PPrev, PCurrent, class (3×8B)
	sbTLogOff       = 432 // chunk-transfer log: PChunk, class (2×8B)
	sbULogPoolOff   = 512 // NumUpdateLogs × 24B update logs
	sbSize          = sbULogPoolOff + NumUpdateLogs*ulogSlotSize
)

// Per-class table entry layout.
const (
	ceObjSizeOff  = 0  // 8B object size
	ceHeadOff     = 8  // 8B head of chunk list
	ceFreeHeadOff = 16 // 8B head of free-chunk list
	ceSize        = 24
)

const epMagic = 0x4841525445504131 // "HARTEPA1"

// Header-byte-7 encodings.
const (
	fullAvailable = 0x0
	fullFull      = 0x1
)

// Errors returned by the allocator.
var (
	// ErrTooManyClasses reports a New call exceeding MaxClasses.
	ErrTooManyClasses = errors.New("epalloc: too many object classes")
	// ErrBadMagic reports that Attach found no allocator superblock.
	ErrBadMagic = errors.New("epalloc: bad superblock magic")
	// ErrNotChunkObject reports a pointer that is not a slot managed here.
	ErrNotChunkObject = errors.New("epalloc: pointer is not an allocated object slot")
	// ErrCorrupt reports an fsck failure.
	ErrCorrupt = errors.New("epalloc: corrupt allocator state")
)

// Class identifies one object size class.
type Class int

// ClassSpec describes an object class.
type ClassSpec struct {
	// Name labels the class in diagnostics ("leaf", "value8", ...).
	Name string
	// ObjSize is the slot size in bytes; must be a positive multiple of 8.
	ObjSize int64
	// OnReuse, if non-nil, runs under the class lock whenever Alloc hands
	// out a slot (fresh or reused). HART registers the Algorithm 2 lines
	// 12-16 check here: a leaf slot whose bit is clear but whose p_value
	// still references a live value object is the residue of an incomplete
	// insertion or deletion, and the value must be reclaimed before the
	// slot is reused.
	OnReuse func(obj pmem.Ptr)
}

// chunkMeta is volatile per-chunk bookkeeping.
type chunkMeta struct {
	inFlight uint64 // slots handed out but not yet bit-committed
	inAvail  bool   // chunk is queued in classState.avail
}

// classState is volatile per-class state.
type classState struct {
	spec ClassSpec
	mu   sync.Mutex
	// avail queues chunks believed to have a free slot.
	avail []pmem.Ptr
	meta  map[pmem.Ptr]*chunkMeta
	// nchunks counts chunks ever created for the class (cycle guard).
	nchunks int
}

// chunkRange records one chunk's extent for ChunkOf lookups.
type chunkRange struct {
	start pmem.Ptr
	end   pmem.Ptr
	class Class
}

// Allocator is one EPallocator instance over one arena.
type Allocator struct {
	arena   *pmem.Arena
	sb      pmem.Ptr
	classes []classState

	// chunkMu serialises chunk creation (and hence arena reservations, so
	// the transfer log's predicted address is exact); logMu serialises use
	// of the single recycle-log slot.
	chunkMu sync.Mutex
	logMu   sync.Mutex

	ulogs ulogPool

	// ranges is the chunk-extent index for ChunkOf, published as an
	// immutable snapshot: registerRange copies, extends and re-publishes
	// under rangeMu (chunk creation is rare), while lookups — including
	// BitIsSet on HART's lock-free read path — load the snapshot with a
	// single atomic read and binary-search it with no lock at all. Chunk
	// extents are never removed (recycled chunks keep their reservation),
	// so a stale snapshot is merely short, never wrong.
	rangeMu sync.Mutex
	ranges  atomic.Pointer[[]chunkRange] // sorted by start

	// Fault injectors (inject.go); disarmed by New/Attach.
	failSetBit, failResetBit, failAlloc faultCounter
}

// chunkSize returns the full byte size of a chunk of the class.
func chunkSize(objSize int64) int64 { return chunkDataOff + ObjectsPerChunk*objSize }

// New formats a fresh EPallocator on the arena. It must be the first
// reservation made on the arena (the superblock lives at a fixed offset so
// Attach can find it after a crash).
func New(arena *pmem.Arena, specs []ClassSpec) (*Allocator, error) {
	if len(specs) == 0 || len(specs) > MaxClasses {
		return nil, ErrTooManyClasses
	}
	for i, s := range specs {
		if s.ObjSize <= 0 || s.ObjSize%8 != 0 {
			return nil, fmt.Errorf("epalloc: class %d (%s) size %d is not a positive multiple of 8",
				i, s.Name, s.ObjSize)
		}
	}
	sb, err := arena.Reserve(sbSize, 8)
	if err != nil {
		return nil, err
	}
	if sb != pmem.Ptr(pmem.HeaderSize) {
		return nil, fmt.Errorf("epalloc: superblock at %d, want %d (allocator must own the arena's first reservation)",
			sb, pmem.HeaderSize)
	}
	a := &Allocator{arena: arena, sb: sb, classes: make([]classState, len(specs))}
	a.ulogs.cond = sync.NewCond(&a.ulogs.mu)
	a.DisarmFaults()
	arena.Write8(sb+sbNumClassesOff, uint64(len(specs)))
	for i, s := range specs {
		a.classes[i] = classState{spec: s, meta: make(map[pmem.Ptr]*chunkMeta)}
		ce := a.classEntry(Class(i))
		arena.Write8(ce+ceObjSizeOff, uint64(s.ObjSize))
		arena.WritePtr(ce+ceHeadOff, pmem.Nil)
		arena.WritePtr(ce+ceFreeHeadOff, pmem.Nil)
	}
	// Logs start empty (arena memory is zeroed, but be explicit).
	for off := int64(sbRLogOff); off < sbSize; off += 8 {
		arena.Write8(sb+pmem.Ptr(off), 0)
	}
	// Magic last: an allocator is attachable only once fully formatted.
	arena.Persist(sb, sbSize)
	arena.Write8(sb+sbMagicOff, epMagic)
	arena.Persist(sb+sbMagicOff, 8)
	return a, nil
}

// Attach opens an existing EPallocator after a restart or crash. It
// rebuilds all volatile state by walking the persistent chunk lists and
// completes any interrupted recycle operation recorded in the recycle log.
// specs must match the specs the allocator was formatted with (OnReuse
// hooks are taken from specs; sizes are validated against PM).
func Attach(arena *pmem.Arena, specs []ClassSpec) (*Allocator, error) {
	sb := pmem.Ptr(pmem.HeaderSize)
	if arena.Reserved() < pmem.HeaderSize+sbSize || arena.Read8(sb+sbMagicOff) != epMagic {
		return nil, ErrBadMagic
	}
	n := int(arena.Read8(sb + sbNumClassesOff))
	if n != len(specs) {
		return nil, fmt.Errorf("epalloc: superblock has %d classes, caller supplied %d", n, len(specs))
	}
	a := &Allocator{arena: arena, sb: sb, classes: make([]classState, n)}
	a.ulogs.cond = sync.NewCond(&a.ulogs.mu)
	a.DisarmFaults()
	for i, s := range specs {
		ce := a.classEntry(Class(i))
		pmSize := int64(arena.Read8(ce + ceObjSizeOff))
		if pmSize != s.ObjSize {
			return nil, fmt.Errorf("epalloc: class %d (%s) size mismatch: PM %d, caller %d",
				i, s.Name, pmSize, s.ObjSize)
		}
		a.classes[i] = classState{spec: s, meta: make(map[pmem.Ptr]*chunkMeta)}
	}
	if err := a.recoverLogs(); err != nil {
		return nil, err
	}
	// Rebuild volatile indexes from the persistent lists.
	for i := range a.classes {
		c := Class(i)
		cs := &a.classes[i]
		seen := make(map[pmem.Ptr]bool)
		for _, head := range []pmem.Ptr{a.head(c), a.freeHead(c)} {
			inFree := head == a.freeHead(c) && head != a.head(c)
			for p := head; !p.IsNil(); p = a.arena.ReadPtr(p + 8) {
				if seen[p] {
					return nil, fmt.Errorf("%w: class %s chunk list cycle at %d", ErrCorrupt, cs.spec.Name, p)
				}
				seen[p] = true
				cs.nchunks++
				a.registerRange(p, c)
				cs.meta[p] = &chunkMeta{}
				if !inFree && a.readHeader(p).free() > 0 {
					cs.meta[p].inAvail = true
					cs.avail = append(cs.avail, p)
				}
			}
		}
	}
	return a, nil
}

// Arena returns the underlying arena.
func (a *Allocator) Arena() *pmem.Arena { return a.arena }

// NumClasses returns the number of object classes.
func (a *Allocator) NumClasses() int { return len(a.classes) }

// ObjSize returns the slot size of a class.
func (a *Allocator) ObjSize(c Class) int64 { return a.classes[c].spec.ObjSize }

// classEntry returns the PM address of the class table entry.
func (a *Allocator) classEntry(c Class) pmem.Ptr {
	return a.sb + sbClassTableOff + pmem.Ptr(int64(c)*ceSize)
}

// headAddr returns the PM address of the class's chunk-list head field.
func (a *Allocator) headAddr(c Class) pmem.Ptr { return a.classEntry(c) + ceHeadOff }

// freeHeadAddr returns the PM address of the class's free-list head field.
func (a *Allocator) freeHeadAddr(c Class) pmem.Ptr { return a.classEntry(c) + ceFreeHeadOff }

// head reads the class's chunk-list head.
func (a *Allocator) head(c Class) pmem.Ptr { return a.arena.ReadPtr(a.headAddr(c)) }

// freeHead reads the class's free-list head.
func (a *Allocator) freeHead(c Class) pmem.Ptr { return a.arena.ReadPtr(a.freeHeadAddr(c)) }

// header manipulates the packed 8-byte chunk header.
type header uint64

const bitmapMask = (uint64(1) << ObjectsPerChunk) - 1

// bitmap extracts the 56-bit occupancy bitmap.
func (h header) bitmap() uint64 { return uint64(h) & bitmapMask }

// nextFree extracts the 6-bit next-free-slot hint.
func (h header) nextFree() int { return int(uint64(h) >> 56 & 0x3f) }

// fullIndicator extracts the 2-bit full indicator.
func (h header) fullIndicator() int { return int(uint64(h) >> 62) }

// free returns the number of clear bitmap bits.
func (h header) free() int {
	n := 0
	for bm := h.bitmap() ^ bitmapMask; bm != 0; bm &= bm - 1 {
		n++
	}
	return n
}

// makeHeader packs a header.
func makeHeader(bitmap uint64, nextFree, full int) header {
	return header(bitmap&bitmapMask | uint64(nextFree&0x3f)<<56 | uint64(full&0x3)<<62)
}

// readHeader loads a chunk header.
func (a *Allocator) readHeader(chunk pmem.Ptr) header {
	return header(a.arena.Read8(chunk))
}

// writeHeader stores and persists a chunk header; the header is 8 bytes so
// the commit is failure-atomic.
func (a *Allocator) writeHeader(chunk pmem.Ptr, h header) {
	a.arena.Write8(chunk, uint64(h))
	a.arena.Persist(chunk, 8)
}

// registerRange records a chunk extent for ChunkOf, publishing a fresh
// snapshot (copy-on-write; see the ranges field).
func (a *Allocator) registerRange(chunk pmem.Ptr, c Class) {
	end := chunk + pmem.Ptr(chunkSize(a.classes[c].spec.ObjSize))
	a.rangeMu.Lock()
	defer a.rangeMu.Unlock()
	old := a.rangeSnapshot()
	i := sort.Search(len(old), func(i int) bool { return old[i].start >= chunk })
	if i < len(old) && old[i].start == chunk {
		return // re-registration after free-list reuse
	}
	nu := make([]chunkRange, 0, len(old)+1)
	nu = append(nu, old[:i]...)
	nu = append(nu, chunkRange{start: chunk, end: end, class: c})
	nu = append(nu, old[i:]...)
	a.ranges.Store(&nu)
}

// rangeSnapshot loads the current extent snapshot (possibly empty).
func (a *Allocator) rangeSnapshot() []chunkRange {
	if p := a.ranges.Load(); p != nil {
		return *p
	}
	return nil
}

// lookupRange finds the chunk containing obj. Lock-free: it binary-searches
// the current immutable snapshot, so the validity check HART's Get performs
// on every leaf (BitIsSet, Algorithm 4 line 9) costs no shared-lock
// round trip.
func (a *Allocator) lookupRange(obj pmem.Ptr) (chunkRange, bool) {
	ranges := a.rangeSnapshot()
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].start > obj })
	if i == 0 {
		return chunkRange{}, false
	}
	r := ranges[i-1]
	if obj < r.start+chunkDataOff || obj >= r.end {
		return chunkRange{}, false
	}
	return r, true
}

// ChunkOf returns the chunk containing obj (the paper's MemChunkOf).
func (a *Allocator) ChunkOf(obj pmem.Ptr) (pmem.Ptr, error) {
	r, ok := a.lookupRange(obj)
	if !ok {
		return pmem.Nil, ErrNotChunkObject
	}
	return r.start, nil
}

// ClassOf returns the class owning obj.
func (a *Allocator) ClassOf(obj pmem.Ptr) (Class, error) {
	r, ok := a.lookupRange(obj)
	if !ok {
		return 0, ErrNotChunkObject
	}
	return r.class, nil
}

// slotIndex returns the slot number of obj within its chunk. obj must be a
// slot base address.
func (a *Allocator) slotIndex(r chunkRange, obj pmem.Ptr) (int, error) {
	objSize := a.classes[r.class].spec.ObjSize
	rel := int64(obj - r.start - chunkDataOff)
	if rel%objSize != 0 {
		return 0, fmt.Errorf("%w: %d is not a slot base", ErrNotChunkObject, obj)
	}
	return int(rel / objSize), nil
}

// SlotAddr returns the base address of slot idx of a chunk.
func (a *Allocator) SlotAddr(chunk pmem.Ptr, c Class, idx int) pmem.Ptr {
	return chunk + chunkDataOff + pmem.Ptr(int64(idx)*a.classes[c].spec.ObjSize)
}
