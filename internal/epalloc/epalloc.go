// Package epalloc implements EPallocator, HART's enhanced persistent
// memory allocator (paper Section III.A.4-6, Algorithms 2 and 6).
//
// Existing PM allocators are slow when allocating numerous small objects,
// so EPallocator reserves *memory chunks* of 56 objects at a time and hands
// out objects from them. Each chunk holds:
//
//	+0  header (8 B): bytes 0-6 = 56-bit occupancy bitmap (bit i set =>
//	    slot i live), byte 7 = 6-bit next-free-slot hint (bits 0-5) and
//	    2-bit full indicator (bits 6-7: 00 available, 01 full, 10/11
//	    reserved)
//	+8  PNext (8 B): persistent pointer to the next chunk of the class
//	+16 56 object slots
//
// Chunks of one object class form singly linked persistent lists, so one
// persistent next pointer amortises over 56 objects instead of one per
// leaf (the paper's argument against per-leaf next pointers). The bitmap
// is the durable record of which objects are live: an object allocated but
// whose bit was never set simply reads as free after a crash, which is how
// EPallocator prevents persistent memory leaks. Freed chunks are unlinked
// under a persistent recycle micro-log and pushed onto a free list for
// reuse.
//
// # Striping
//
// Each class's chunks are partitioned across NumStripes stripes, each with
// its own persistent chunk list, persistent free-chunk list, volatile slot
// cache and mutex, so writers mapped to different stripes allocate and
// free with no shared lock at all. The recycle and chunk-transfer
// micro-logs are striped the same way (one slot per stripe, owned by the
// stripe's lock holder). A stripe that runs dry first steals a recycled
// chunk from a sibling stripe's free list — taking exactly the two stripe
// locks in index order — and only reserves fresh arena space, under the
// global chunkMu that keeps the transfer log's address prediction exact,
// when the whole class is dry. Recovery replays every stripe's logs and
// rebuilds every stripe's lists, so fsck still sees each chunk exactly
// once (Check verifies the partition is disjoint and covers all
// registered chunks).
//
// The commit protocol is split between allocator and caller exactly as in
// Algorithm 1: Alloc hands out a slot *without* setting its bit (marking it
// volatile-in-flight so concurrent allocations skip it); the caller calls
// SetBit only after the object is fully initialised and linked. A crash in
// between leaves the bit clear and the slot reusable.
package epalloc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/casl-sdsu/hart/internal/obs"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// ObjectsPerChunk is the number of object slots per memory chunk (Fig. 2).
const ObjectsPerChunk = 56

// MaxClasses bounds the number of object classes one allocator serves.
const MaxClasses = 16

// NumStripes is the number of allocation stripes per class. Must be a
// power of two and divide NumUpdateLogs.
const NumStripes = 8

// StripeFor maps a shard's effective directory prefix (its routed hash
// key — kh bytes in the fixed geometry, longer for an elastic split
// child) to an allocation stripe. FNV-1a over the prefix bytes, so the
// mapping depends only on durable routing state — never on execution
// order — which keeps replayed histories allocating from identical
// stripes, and so that the children of a split hot shard spread across
// stripes instead of inheriting their parent's single lock.
func StripeFor(prefix []byte) int {
	h := uint32(2166136261)
	for _, b := range prefix {
		h ^= uint32(b)
		h *= 16777619
	}
	return int(h) % NumStripes
}

// chunkDataOff is the byte offset of slot 0 within a chunk.
const chunkDataOff = 16

// Superblock layout v2 (relative to the allocator's superblock base, which
// is always the first reservation of the arena, i.e. offset
// pmem.HeaderSize). v2 widens the class table to per-stripe list heads and
// stripes the recycle and transfer logs; v1 images are rejected by magic.
const (
	sbMagicOff      = 0  // 8B magic
	sbNumClassesOff = 8  // 8B class count
	sbNumStripesOff = 16 // 8B stripe count (layout check on Attach)
	sbClassTableOff = 24 // MaxClasses × ceSize entries
	sbRLogOff       = sbClassTableOff + MaxClasses*ceSize // NumStripes recycle slots
	sbTLogOff       = sbRLogOff + NumStripes*rlogSlotSize // NumStripes transfer slots
	sbULogPoolOff   = sbTLogOff + NumStripes*tlogSlotSize // NumUpdateLogs × 24B update logs
	sbSize          = sbULogPoolOff + NumUpdateLogs*ulogSlotSize
)

// Per-class table entry layout: the object size followed by one chunk-list
// head and one free-list head per stripe.
const (
	ceObjSizeOff   = 0
	ceHeadsOff     = 8
	ceFreeHeadsOff = ceHeadsOff + NumStripes*8
	ceSize         = ceFreeHeadsOff + NumStripes*8
)

// Per-stripe recycle-log slot: PPrev (address of the link field pointing
// at the chunk), PCurrent (the chunk; arms the slot), class.
const (
	rlPrevOff    = 0
	rlCurOff     = 8
	rlClassOff   = 16
	rlogSlotSize = 24
)

// Per-stripe chunk-transfer-log slot: PChunk (the chunk joining the
// stripe's list; arms the slot), class, source stripe. The slot index is
// the destination stripe; src == tlSrcFresh marks a fresh arena
// reservation rather than a free-list pop.
const (
	tlChunkOff   = 0
	tlClassOff   = 8
	tlSrcOff     = 16
	tlogSlotSize = 24
)

// tlSrcFresh is the transfer-log source sentinel for fresh reservations.
const tlSrcFresh = NumStripes

const epMagic = 0x4841525445504132 // "HARTEPA2"

// Header-byte-7 encodings.
const (
	fullAvailable = 0x0
	fullFull      = 0x1
)

// Errors returned by the allocator.
var (
	// ErrTooManyClasses reports a New call exceeding MaxClasses.
	ErrTooManyClasses = errors.New("epalloc: too many object classes")
	// ErrBadMagic reports that Attach found no allocator superblock.
	ErrBadMagic = errors.New("epalloc: bad superblock magic")
	// ErrNotChunkObject reports a pointer that is not a slot managed here.
	ErrNotChunkObject = errors.New("epalloc: pointer is not an allocated object slot")
	// ErrCorrupt reports an fsck failure.
	ErrCorrupt = errors.New("epalloc: corrupt allocator state")
)

// Class identifies one object size class.
type Class int

// ClassSpec describes an object class.
type ClassSpec struct {
	// Name labels the class in diagnostics ("leaf", "value8", ...).
	Name string
	// ObjSize is the slot size in bytes; must be a positive multiple of 8.
	ObjSize int64
	// OnReuse, if non-nil, runs under the owning stripe's lock whenever
	// Alloc hands out a slot (fresh or reused). HART registers the
	// Algorithm 2 lines 12-16 check here: a leaf slot whose bit is clear
	// but whose p_value still references a live value object is the
	// residue of an incomplete insertion or deletion, and the value must
	// be reclaimed before the slot is reused.
	OnReuse func(obj pmem.Ptr)
}

// chunkMeta is volatile per-chunk bookkeeping, owned by the chunk's
// current stripe (guarded by that stripe's mutex).
type chunkMeta struct {
	inFlight uint64 // slots handed out but not yet bit-committed
	inAvail  bool   // chunk is queued in stripeState.avail
}

// stripeState is the volatile state of one allocation stripe of a class.
type stripeState struct {
	mu sync.Mutex
	// avail queues chunks believed to have a free slot.
	avail []pmem.Ptr
	meta  map[pmem.Ptr]*chunkMeta
}

// classState is volatile per-class state.
type classState struct {
	spec    ClassSpec
	stripes [NumStripes]stripeState
	// nchunks counts chunks ever created for the class across all stripes
	// (cycle guard for list walks; chunks move stripes but are never
	// destroyed).
	nchunks atomic.Int64
}

// chunkRange records one chunk's extent and current stripe for ChunkOf
// lookups.
type chunkRange struct {
	start  pmem.Ptr
	end    pmem.Ptr
	class  Class
	stripe int
}

// Allocator is one EPallocator instance over one arena.
type Allocator struct {
	arena   *pmem.Arena
	sb      pmem.Ptr
	classes []classState

	// chunkMu serialises fresh arena reservations so the transfer log's
	// predicted address is exact. It is the innermost lock (acquired with
	// stripe locks held) and is untouched by the free-list fast paths.
	chunkMu sync.Mutex

	ulogs ulogPool

	// ranges is the chunk-extent index for ChunkOf, published as an
	// immutable snapshot: registerRange copies, extends and re-publishes
	// under rangeMu (chunk creation and stripe moves are rare), while
	// lookups — including BitIsSet on HART's lock-free read path — load
	// the snapshot with a single atomic read and binary-search it with no
	// lock at all. Chunk extents are never removed (recycled chunks keep
	// their reservation), so a stale snapshot is merely short, never
	// wrong; a stale *stripe* is re-checked under the stripe lock by
	// lockStripeOf.
	rangeMu sync.Mutex
	ranges  atomic.Pointer[[]chunkRange] // sorted by start

	// Fault injectors (inject.go); disarmed by New/Attach.
	failSetBit, failResetBit, failAlloc faultCounter

	// metrics is the always-on counter set (metrics.go); events, when
	// non-nil (SetEventRing), receives rare structured events.
	metrics Metrics
	events  *obs.EventRing
}

// chunkSize returns the full byte size of a chunk of the class.
func chunkSize(objSize int64) int64 { return chunkDataOff + ObjectsPerChunk*objSize }

// New formats a fresh EPallocator on the arena. It must be the first
// reservation made on the arena (the superblock lives at a fixed offset so
// Attach can find it after a crash).
func New(arena *pmem.Arena, specs []ClassSpec) (*Allocator, error) {
	if len(specs) == 0 || len(specs) > MaxClasses {
		return nil, ErrTooManyClasses
	}
	for i, s := range specs {
		if s.ObjSize <= 0 || s.ObjSize%8 != 0 {
			return nil, fmt.Errorf("epalloc: class %d (%s) size %d is not a positive multiple of 8",
				i, s.Name, s.ObjSize)
		}
	}
	sb, err := arena.Reserve(sbSize, 8)
	if err != nil {
		return nil, err
	}
	if sb != pmem.Ptr(pmem.HeaderSize) {
		return nil, fmt.Errorf("epalloc: superblock at %d, want %d (allocator must own the arena's first reservation)",
			sb, pmem.HeaderSize)
	}
	a := newAllocator(arena, sb, specs)
	arena.Write8(sb+sbNumClassesOff, uint64(len(specs)))
	arena.Write8(sb+sbNumStripesOff, NumStripes)
	for i, s := range specs {
		ce := a.classEntry(Class(i))
		arena.Write8(ce+ceObjSizeOff, uint64(s.ObjSize))
		for st := 0; st < NumStripes; st++ {
			arena.WritePtr(a.headAddr(Class(i), st), pmem.Nil)
			arena.WritePtr(a.freeHeadAddr(Class(i), st), pmem.Nil)
		}
	}
	// Logs start empty (arena memory is zeroed, but be explicit).
	for off := int64(sbRLogOff); off < sbSize; off += 8 {
		arena.Write8(sb+pmem.Ptr(off), 0)
	}
	// Magic last: an allocator is attachable only once fully formatted.
	arena.Persist(sb, sbSize)
	arena.Write8(sb+sbMagicOff, epMagic)
	arena.Persist(sb+sbMagicOff, 8)
	return a, nil
}

// newAllocator builds the volatile Allocator shell shared by New and
// Attach.
func newAllocator(arena *pmem.Arena, sb pmem.Ptr, specs []ClassSpec) *Allocator {
	a := &Allocator{arena: arena, sb: sb, classes: make([]classState, len(specs))}
	a.ulogs.cond = sync.NewCond(&a.ulogs.mu)
	for i := range a.ulogs.slots {
		a.ulogs.slots[i] = ULog{a: a, idx: i, base: a.ulogAddr(i)}
	}
	a.DisarmFaults()
	for i, s := range specs {
		a.classes[i].spec = s
		for st := range a.classes[i].stripes {
			a.classes[i].stripes[st].meta = make(map[pmem.Ptr]*chunkMeta)
		}
	}
	return a
}

// Attach opens an existing EPallocator after a restart or crash. It
// rebuilds all volatile state by walking every stripe's persistent chunk
// lists and completes any interrupted recycle or transfer operation
// recorded in the per-stripe micro-logs. specs must match the specs the
// allocator was formatted with (OnReuse hooks are taken from specs; sizes
// are validated against PM).
func Attach(arena *pmem.Arena, specs []ClassSpec) (*Allocator, error) {
	sb := pmem.Ptr(pmem.HeaderSize)
	if arena.Reserved() < pmem.HeaderSize+sbSize || arena.Read8(sb+sbMagicOff) != epMagic {
		return nil, ErrBadMagic
	}
	n := int(arena.Read8(sb + sbNumClassesOff))
	if n != len(specs) {
		return nil, fmt.Errorf("epalloc: superblock has %d classes, caller supplied %d", n, len(specs))
	}
	if ns := arena.Read8(sb + sbNumStripesOff); ns != NumStripes {
		return nil, fmt.Errorf("epalloc: superblock has %d stripes, this build uses %d", ns, NumStripes)
	}
	a := newAllocator(arena, sb, specs)
	for i, s := range specs {
		ce := a.classEntry(Class(i))
		pmSize := int64(arena.Read8(ce + ceObjSizeOff))
		if pmSize != s.ObjSize {
			return nil, fmt.Errorf("epalloc: class %d (%s) size mismatch: PM %d, caller %d",
				i, s.Name, pmSize, s.ObjSize)
		}
	}
	if err := a.recoverLogs(); err != nil {
		return nil, err
	}
	// Rebuild volatile indexes from the persistent per-stripe lists. One
	// seen-set per class spans every stripe, so a chunk reachable from two
	// stripes (or twice from one) is caught here. The extent index is
	// accumulated locally and published once, sorted — the walk visits
	// chunks in list order, not address order, and per-chunk registerRange
	// would rebuild the sorted snapshot on every out-of-order insert
	// (quadratic in chunk count, the dominant cost of attaching a large
	// image before recovery proper even starts).
	var ranges []chunkRange
	for i := range a.classes {
		c := Class(i)
		cs := &a.classes[i]
		seen := make(map[pmem.Ptr]bool)
		size := chunkSize(cs.spec.ObjSize)
		for st := 0; st < NumStripes; st++ {
			ss := &cs.stripes[st]
			for listNo, head := range []pmem.Ptr{a.head(c, st), a.freeHead(c, st)} {
				inFree := listNo == 1
				for p := head; !p.IsNil(); p = a.arena.ReadPtr(p + 8) {
					if seen[p] {
						return nil, fmt.Errorf("%w: class %s chunk %d reachable twice across stripe lists",
							ErrCorrupt, cs.spec.Name, p)
					}
					seen[p] = true
					cs.nchunks.Add(1)
					ranges = append(ranges, chunkRange{start: p, end: p + pmem.Ptr(size), class: c, stripe: st})
					ss.meta[p] = &chunkMeta{}
					if !inFree && a.readHeader(p).free() > 0 {
						ss.meta[p].inAvail = true
						ss.avail = append(ss.avail, p)
					}
				}
			}
		}
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].start < ranges[j].start })
	a.ranges.Store(&ranges)
	return a, nil
}

// Arena returns the underlying arena.
func (a *Allocator) Arena() *pmem.Arena { return a.arena }

// NumClasses returns the number of object classes.
func (a *Allocator) NumClasses() int { return len(a.classes) }

// ObjSize returns the slot size of a class.
func (a *Allocator) ObjSize(c Class) int64 { return a.classes[c].spec.ObjSize }

// classEntry returns the PM address of the class table entry.
func (a *Allocator) classEntry(c Class) pmem.Ptr {
	return a.sb + sbClassTableOff + pmem.Ptr(int64(c)*ceSize)
}

// headAddr returns the PM address of the stripe's chunk-list head field.
func (a *Allocator) headAddr(c Class, stripe int) pmem.Ptr {
	return a.classEntry(c) + ceHeadsOff + pmem.Ptr(stripe*8)
}

// freeHeadAddr returns the PM address of the stripe's free-list head field.
func (a *Allocator) freeHeadAddr(c Class, stripe int) pmem.Ptr {
	return a.classEntry(c) + ceFreeHeadsOff + pmem.Ptr(stripe*8)
}

// head reads the stripe's chunk-list head.
func (a *Allocator) head(c Class, stripe int) pmem.Ptr {
	return a.arena.ReadPtr(a.headAddr(c, stripe))
}

// freeHead reads the stripe's free-list head.
func (a *Allocator) freeHead(c Class, stripe int) pmem.Ptr {
	return a.arena.ReadPtr(a.freeHeadAddr(c, stripe))
}

// rlogAddr returns the PM base address of the stripe's recycle-log slot.
func (a *Allocator) rlogAddr(stripe int) pmem.Ptr {
	return a.sb + sbRLogOff + pmem.Ptr(stripe*rlogSlotSize)
}

// tlogAddr returns the PM base address of the stripe's transfer-log slot.
func (a *Allocator) tlogAddr(stripe int) pmem.Ptr {
	return a.sb + sbTLogOff + pmem.Ptr(stripe*tlogSlotSize)
}

// header manipulates the packed 8-byte chunk header.
type header uint64

const bitmapMask = (uint64(1) << ObjectsPerChunk) - 1

// bitmap extracts the 56-bit occupancy bitmap.
func (h header) bitmap() uint64 { return uint64(h) & bitmapMask }

// nextFree extracts the 6-bit next-free-slot hint.
func (h header) nextFree() int { return int(uint64(h) >> 56 & 0x3f) }

// fullIndicator extracts the 2-bit full indicator.
func (h header) fullIndicator() int { return int(uint64(h) >> 62) }

// free returns the number of clear bitmap bits.
func (h header) free() int {
	n := 0
	for bm := h.bitmap() ^ bitmapMask; bm != 0; bm &= bm - 1 {
		n++
	}
	return n
}

// makeHeader packs a header.
func makeHeader(bitmap uint64, nextFree, full int) header {
	return header(bitmap&bitmapMask | uint64(nextFree&0x3f)<<56 | uint64(full&0x3)<<62)
}

// readHeader loads a chunk header.
func (a *Allocator) readHeader(chunk pmem.Ptr) header {
	return header(a.arena.Read8(chunk))
}

// writeHeader stores and persists a chunk header; the header is 8 bytes so
// the commit is failure-atomic.
func (a *Allocator) writeHeader(chunk pmem.Ptr, h header) {
	a.arena.Write8(chunk, uint64(h))
	a.arena.Persist(chunk, 8)
}

// registerRange records a chunk extent and its owning stripe for ChunkOf,
// publishing a fresh snapshot (copy-on-write; see the ranges field). A
// re-registration of a known chunk updates its stripe (free-list steal).
func (a *Allocator) registerRange(chunk pmem.Ptr, c Class, stripe int) {
	end := chunk + pmem.Ptr(chunkSize(a.classes[c].spec.ObjSize))
	a.rangeMu.Lock()
	defer a.rangeMu.Unlock()
	old := a.rangeSnapshot()
	i := sort.Search(len(old), func(i int) bool { return old[i].start >= chunk })
	if i < len(old) && old[i].start == chunk {
		if old[i].stripe == stripe {
			return // re-registration after same-stripe free-list reuse
		}
		nu := make([]chunkRange, len(old))
		copy(nu, old)
		nu[i].stripe = stripe
		a.ranges.Store(&nu)
		return
	}
	if i == len(old) && cap(old) > len(old) {
		// Fresh chunks come from the arena's bump reservation, so runtime
		// registrations append in address order; reuse the spare capacity
		// grown below. Readers of the old snapshot never index past their
		// slice length, and the atomic Store orders the element write
		// before the new length becomes visible, so sharing the backing
		// array with published snapshots is safe.
		nu := append(old, chunkRange{start: chunk, end: end, class: c, stripe: stripe})
		a.ranges.Store(&nu)
		return
	}
	// Out-of-order insert (Attach replay) or exhausted capacity: rebuild
	// with doubling headroom so runtime appends stay amortised O(1) instead
	// of copying the whole index per chunk.
	nu := make([]chunkRange, 0, 2*len(old)+8)
	nu = append(nu, old[:i]...)
	nu = append(nu, chunkRange{start: chunk, end: end, class: c, stripe: stripe})
	nu = append(nu, old[i:]...)
	a.ranges.Store(&nu)
}

// rangeSnapshot loads the current extent snapshot (possibly empty).
func (a *Allocator) rangeSnapshot() []chunkRange {
	if p := a.ranges.Load(); p != nil {
		return *p
	}
	return nil
}

// lookupRange finds the chunk containing obj. Lock-free: it binary-searches
// the current immutable snapshot, so the validity check HART's Get performs
// on every leaf (BitIsSet, Algorithm 4 line 9) costs no shared-lock
// round trip.
func (a *Allocator) lookupRange(obj pmem.Ptr) (chunkRange, bool) {
	ranges := a.rangeSnapshot()
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].start > obj })
	if i == 0 {
		return chunkRange{}, false
	}
	r := ranges[i-1]
	if obj < r.start+chunkDataOff || obj >= r.end {
		return chunkRange{}, false
	}
	return r, true
}

// lockStripeOf locks and returns the stripe currently owning obj's chunk.
// A concurrent free-list steal can move the chunk to another stripe
// between the lookup and the lock, so the ownership is re-checked under
// the lock and the acquisition retried if it moved (steals require the
// source stripe's lock, so once we hold the lock of the stripe the
// snapshot names, the chunk cannot move).
func (a *Allocator) lockStripeOf(obj pmem.Ptr) (chunkRange, *stripeState, error) {
	for {
		r, ok := a.lookupRange(obj)
		if !ok {
			return chunkRange{}, nil, ErrNotChunkObject
		}
		ss := &a.classes[r.class].stripes[r.stripe]
		ss.mu.Lock()
		if r2, ok := a.lookupRange(obj); ok && r2.stripe == r.stripe {
			return r2, ss, nil
		}
		ss.mu.Unlock()
	}
}

// ChunkOf returns the chunk containing obj (the paper's MemChunkOf).
func (a *Allocator) ChunkOf(obj pmem.Ptr) (pmem.Ptr, error) {
	r, ok := a.lookupRange(obj)
	if !ok {
		return pmem.Nil, ErrNotChunkObject
	}
	return r.start, nil
}

// ClassOf returns the class owning obj.
func (a *Allocator) ClassOf(obj pmem.Ptr) (Class, error) {
	r, ok := a.lookupRange(obj)
	if !ok {
		return 0, ErrNotChunkObject
	}
	return r.class, nil
}

// StripeOf returns the stripe currently owning obj's chunk (diagnostics
// and tests; the answer can be stale the moment it returns).
func (a *Allocator) StripeOf(obj pmem.Ptr) (int, error) {
	r, ok := a.lookupRange(obj)
	if !ok {
		return 0, ErrNotChunkObject
	}
	return r.stripe, nil
}

// slotIndex returns the slot number of obj within its chunk. obj must be a
// slot base address.
func (a *Allocator) slotIndex(r chunkRange, obj pmem.Ptr) (int, error) {
	objSize := a.classes[r.class].spec.ObjSize
	rel := int64(obj - r.start - chunkDataOff)
	if rel%objSize != 0 {
		return 0, fmt.Errorf("%w: %d is not a slot base", ErrNotChunkObject, obj)
	}
	return int(rel / objSize), nil
}

// SlotAddr returns the base address of slot idx of a chunk.
func (a *Allocator) SlotAddr(chunk pmem.Ptr, c Class, idx int) pmem.Ptr {
	return chunk + chunkDataOff + pmem.Ptr(int64(idx)*a.classes[c].spec.ObjSize)
}
