package epalloc

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the error returned by a tripped fault injector. The
// write-path error branches in package core (SetBit/ResetBit/Alloc
// failures) are unreachable under normal operation — the allocator only
// fails on corruption or exhaustion — so tests use these injectors to
// prove the cleanup paths neither strand PM objects nor leave a micro-log
// slot permanently busy.
var ErrInjected = errors.New("epalloc: injected fault")

// faultCounter is a one-shot countdown: disabled at -1, armed at n >= 0,
// tripping on the (n+1)-th call and disarming itself.
type faultCounter struct{ n atomic.Int64 }

func (f *faultCounter) arm(n int64) { f.n.Store(n) }
func (f *faultCounter) disarm()     { f.n.Store(-1) }
func (f *faultCounter) tripped() bool {
	return f.n.Load() >= 0 && f.n.Add(-1) < 0
}

// FailSetBitAfter arms SetBit to return ErrInjected after n successful
// calls (n=0 fails the next call). The injector is one-shot: it disarms
// itself once tripped. Pass a negative n to disarm explicitly.
func (a *Allocator) FailSetBitAfter(n int64) { a.failSetBit.arm(n) }

// FailResetBitAfter arms ResetBit and Release to return ErrInjected after
// n successful calls, one-shot like FailSetBitAfter.
func (a *Allocator) FailResetBitAfter(n int64) { a.failResetBit.arm(n) }

// FailAllocAfter arms Alloc to return ErrInjected after n successful
// calls, one-shot like FailSetBitAfter.
func (a *Allocator) FailAllocAfter(n int64) { a.failAlloc.arm(n) }

// DisarmFaults disarms every fault injector.
func (a *Allocator) DisarmFaults() {
	a.failSetBit.disarm()
	a.failResetBit.disarm()
	a.failAlloc.disarm()
}
