package epalloc

import (
	"sync"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// NumUpdateLogs is the size of the persistent update-log pool. The paper's
// GetMicroLog(UPDATE) hands each in-flight update its own log; HART allows
// one concurrent writer per ART, so a pool of 64 accommodates far more
// concurrency than the 16 hardware threads of the paper's testbed.
const NumUpdateLogs = 64

const ulogSlotSize = 24

// Update-log slot field offsets (paper Algorithm 3).
const (
	ulogPLeafOff = 0  // address of the leaf being updated; arms the slot
	ulogPOldVOff = 8  // address of the old value object
	ulogPNewVOff = 16 // address of the new value object
)

// ULog is one persistent update log (Algorithm 3). A ULog is armed once
// PLeaf is set and disarmed by Reclaim; recovery interprets the three
// pointers exactly as the paper describes. The slot is exclusively owned
// between GetUpdateLog and Reclaim.
type ULog struct {
	a    *Allocator
	idx  int
	base pmem.Ptr
}

// ulogPool hands out slots from the fixed persistent pool.
type ulogPool struct {
	mu   sync.Mutex
	cond *sync.Cond
	busy uint64
}

// GetUpdateLog claims a free update-log slot, blocking if all
// NumUpdateLogs slots are in flight (which cannot happen with fewer than
// 65 concurrent writers).
func (a *Allocator) GetUpdateLog() *ULog {
	p := &a.ulogs
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for i := 0; i < NumUpdateLogs; i++ {
			if p.busy&(1<<uint(i)) == 0 {
				p.busy |= 1 << uint(i)
				return &ULog{a: a, idx: i, base: a.ulogAddr(i)}
			}
		}
		p.cond.Wait()
	}
}

// ulogAddr returns the PM base address of update-log slot i.
func (a *Allocator) ulogAddr(i int) pmem.Ptr {
	return a.sb + sbULogPoolOff + pmem.Ptr(i*ulogSlotSize)
}

// SetPLeaf records and persists the leaf address, arming the log
// (Algorithm 3 line 2).
func (u *ULog) SetPLeaf(p pmem.Ptr) {
	u.a.arena.WritePtr(u.base+ulogPLeafOff, p)
	u.a.arena.Persist(u.base+ulogPLeafOff, 8)
}

// Arm records leaf and old-value addresses with a single persist, merging
// Algorithm 3 lines 2-3. The merge is semantically safe: recovery treats
// "PLeaf valid, POldV invalid" and "PLeaf and POldV valid, PNewV invalid"
// identically (reset the log), so the intermediate ordering of the two
// stores is unobservable.
func (u *ULog) Arm(leaf, oldV pmem.Ptr) {
	u.a.arena.WritePtr(u.base+ulogPLeafOff, leaf)
	u.a.arena.WritePtr(u.base+ulogPOldVOff, oldV)
	u.a.arena.Persist(u.base+ulogPLeafOff, 16)
}

// SetPOldV records and persists the old value address (Algorithm 3 line 3).
func (u *ULog) SetPOldV(p pmem.Ptr) {
	u.a.arena.WritePtr(u.base+ulogPOldVOff, p)
	u.a.arena.Persist(u.base+ulogPOldVOff, 8)
}

// SetPNewV records and persists the new value address (Algorithm 3 line 6).
func (u *ULog) SetPNewV(p pmem.Ptr) {
	u.a.arena.WritePtr(u.base+ulogPNewVOff, p)
	u.a.arena.Persist(u.base+ulogPNewVOff, 8)
}

// Reclaim disarms the log (Algorithm 3 line 11) and returns the slot to
// the pool.
func (u *ULog) Reclaim() {
	ar := u.a.arena
	ar.WritePtr(u.base+ulogPNewVOff, pmem.Nil)
	ar.WritePtr(u.base+ulogPOldVOff, pmem.Nil)
	ar.WritePtr(u.base+ulogPLeafOff, pmem.Nil)
	ar.Persist(u.base, ulogSlotSize)
	p := &u.a.ulogs
	p.mu.Lock()
	p.busy &^= 1 << uint(u.idx)
	p.cond.Signal()
	p.mu.Unlock()
}

// UpdateLogState is a snapshot of one armed update log for recovery.
type UpdateLogState struct {
	// Index identifies the slot (for ResetUpdateLogAt).
	Index int
	// PLeaf, POldV, PNewV mirror the persistent fields.
	PLeaf, POldV, PNewV pmem.Ptr
}

// PendingUpdateLogs returns every armed update log. The semantics of the
// pointers belong to HART (package core), which interprets and completes
// them during recovery.
func (a *Allocator) PendingUpdateLogs() []UpdateLogState {
	var out []UpdateLogState
	for i := 0; i < NumUpdateLogs; i++ {
		base := a.ulogAddr(i)
		leaf := a.arena.ReadPtr(base + ulogPLeafOff)
		if leaf.IsNil() {
			continue
		}
		out = append(out, UpdateLogState{
			Index: i,
			PLeaf: leaf,
			POldV: a.arena.ReadPtr(base + ulogPOldVOff),
			PNewV: a.arena.ReadPtr(base + ulogPNewVOff),
		})
	}
	return out
}

// ResetUpdateLogAt disarms slot i (recovery's "reset the log").
func (a *Allocator) ResetUpdateLogAt(i int) {
	base := a.ulogAddr(i)
	a.arena.WritePtr(base+ulogPNewVOff, pmem.Nil)
	a.arena.WritePtr(base+ulogPOldVOff, pmem.Nil)
	a.arena.WritePtr(base+ulogPLeafOff, pmem.Nil)
	a.arena.Persist(base, ulogSlotSize)
}
