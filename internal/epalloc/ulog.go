package epalloc

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/casl-sdsu/hart/internal/pmem"
)

// NumUpdateLogs is the size of the persistent update-log pool. The paper's
// GetMicroLog(UPDATE) hands each in-flight update its own log; HART allows
// one concurrent writer per ART, so a pool of 64 accommodates far more
// concurrency than the 16 hardware threads of the paper's testbed.
const NumUpdateLogs = 64

// ulogsPerStripe is each stripe's partition of the update-log pool: slots
// [stripe*ulogsPerStripe, (stripe+1)*ulogsPerStripe) belong to the stripe,
// claimed by a lock-free CAS on the stripe's busy word. A dry stripe
// steals from its siblings before blocking.
const ulogsPerStripe = NumUpdateLogs / NumStripes

// ulogStripeMask covers one stripe's busy bits.
const ulogStripeMask = (uint64(1) << ulogsPerStripe) - 1

const ulogSlotSize = 24

// Update-log slot field offsets (paper Algorithm 3).
const (
	ulogPLeafOff = 0  // address of the leaf being updated; arms the slot
	ulogPOldVOff = 8  // address of the old value object
	ulogPNewVOff = 16 // address of the new value object
)

// ULog is one persistent update log (Algorithm 3). A ULog is armed once
// PLeaf is set and disarmed by Reclaim; recovery interprets the three
// pointers exactly as the paper describes. The slot is exclusively owned
// between GetUpdateLog/GetUpdateLogStriped and Reclaim.
type ULog struct {
	a    *Allocator
	idx  int
	base pmem.Ptr
}

// ulogPool hands out slots from the fixed persistent pool. Claims are
// lock-free CASes on per-stripe busy words; mu and cond exist only for
// the block-when-all-64-are-armed fallback, which no realistic writer
// count reaches.
type ulogPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	waiters atomic.Int32
	busy    [NumStripes]atomic.Uint64 // low ulogsPerStripe bits per word
	// slots are the preallocated handles, one per pool slot, filled in by
	// newAllocator: a claim hands out &slots[idx] instead of allocating,
	// keeping the logged update path heap-free. Exclusive ownership
	// between claim and Reclaim makes the sharing safe.
	slots [NumUpdateLogs]ULog
}

// GetUpdateLog claims a free update-log slot under the pool mutex — the
// serialised claim path kept for callers with no stripe affinity and as
// the measurable legacy baseline (core.Options.LegacyWritePath). It blocks
// if all NumUpdateLogs slots are in flight.
func (a *Allocator) GetUpdateLog() *ULog {
	p := &a.ulogs
	p.mu.Lock()
	defer p.mu.Unlock()
	p.waiters.Add(1)
	defer p.waiters.Add(-1)
	for {
		if u := a.tryClaimULog(0); u != nil {
			return u
		}
		p.cond.Wait()
	}
}

// GetUpdateLogStriped claims a free update-log slot with a lock-free CAS,
// preferring the stripe's own partition and scanning the siblings when it
// is dry. Only when every slot in the pool is armed does it fall back to
// blocking on the pool condition.
func (a *Allocator) GetUpdateLogStriped(stripe int) *ULog {
	stripe &= NumStripes - 1
	if u := a.tryClaimULog(stripe); u != nil {
		return u
	}
	p := &a.ulogs
	p.mu.Lock()
	defer p.mu.Unlock()
	p.waiters.Add(1)
	defer p.waiters.Add(-1)
	for {
		if u := a.tryClaimULog(stripe); u != nil {
			return u
		}
		p.cond.Wait()
	}
}

// tryClaimULog CAS-claims the lowest free slot, scanning stripes starting
// at start. Returns nil when all 64 slots are busy.
func (a *Allocator) tryClaimULog(start int) *ULog {
	for off := 0; off < NumStripes; off++ {
		s := (start + off) & (NumStripes - 1)
		w := &a.ulogs.busy[s]
		for {
			cur := w.Load()
			free := ^cur & ulogStripeMask
			if free == 0 {
				break
			}
			bit := free & -free
			if w.CompareAndSwap(cur, cur|bit) {
				a.metrics.ULogClaims.AddStripe(s, 1)
				return &a.ulogs.slots[s*ulogsPerStripe+bits.TrailingZeros64(bit)]
			}
		}
	}
	return nil
}

// ulogAddr returns the PM base address of update-log slot i.
func (a *Allocator) ulogAddr(i int) pmem.Ptr {
	return a.sb + sbULogPoolOff + pmem.Ptr(i*ulogSlotSize)
}

// SetPLeaf records and persists the leaf address, arming the log
// (Algorithm 3 line 2).
func (u *ULog) SetPLeaf(p pmem.Ptr) {
	u.a.arena.WritePtr(u.base+ulogPLeafOff, p)
	u.a.arena.Persist(u.base+ulogPLeafOff, 8)
}

// Arm records leaf and old-value addresses with a single persist, merging
// Algorithm 3 lines 2-3. The merge is semantically safe: recovery treats
// "PLeaf valid, POldV invalid" and "PLeaf and POldV valid, PNewV invalid"
// identically (reset the log), so the intermediate ordering of the two
// stores is unobservable.
func (u *ULog) Arm(leaf, oldV pmem.Ptr) {
	u.a.arena.WritePtr(u.base+ulogPLeafOff, leaf)
	u.a.arena.WritePtr(u.base+ulogPOldVOff, oldV)
	u.a.arena.Persist(u.base+ulogPLeafOff, 16)
}

// SetPOldV records and persists the old value address (Algorithm 3 line 3).
func (u *ULog) SetPOldV(p pmem.Ptr) {
	u.a.arena.WritePtr(u.base+ulogPOldVOff, p)
	u.a.arena.Persist(u.base+ulogPOldVOff, 8)
}

// SetPNewV records and persists the new value address (Algorithm 3 line 6).
func (u *ULog) SetPNewV(p pmem.Ptr) {
	u.a.arena.WritePtr(u.base+ulogPNewVOff, p)
	u.a.arena.Persist(u.base+ulogPNewVOff, 8)
}

// Reclaim disarms the log (Algorithm 3 line 11) and returns the slot to
// the pool with a single atomic clear; the pool mutex is touched only
// when a claimant is actually blocked.
func (u *ULog) Reclaim() {
	ar := u.a.arena
	ar.WritePtr(u.base+ulogPNewVOff, pmem.Nil)
	ar.WritePtr(u.base+ulogPOldVOff, pmem.Nil)
	ar.WritePtr(u.base+ulogPLeafOff, pmem.Nil)
	ar.Persist(u.base, ulogSlotSize)
	p := &u.a.ulogs
	s, bit := u.idx/ulogsPerStripe, uint64(1)<<uint(u.idx%ulogsPerStripe)
	p.busy[s].And(^bit)
	// A waiter registers (waiters++) before re-scanning the busy words, so
	// if the load below sees no waiter, any future waiter will see the
	// cleared bit; if it sees one, the lock/broadcast pair cannot run
	// before the waiter is parked in Wait (which releases mu).
	if p.waiters.Load() > 0 {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// UpdateLogState is a snapshot of one armed update log for recovery.
type UpdateLogState struct {
	// Index identifies the slot (for ResetUpdateLogAt).
	Index int
	// PLeaf, POldV, PNewV mirror the persistent fields.
	PLeaf, POldV, PNewV pmem.Ptr
}

// PendingUpdateLogs returns every armed update log. The semantics of the
// pointers belong to HART (package core), which interprets and completes
// them during recovery.
func (a *Allocator) PendingUpdateLogs() []UpdateLogState {
	var out []UpdateLogState
	for i := 0; i < NumUpdateLogs; i++ {
		base := a.ulogAddr(i)
		leaf := a.arena.ReadPtr(base + ulogPLeafOff)
		if leaf.IsNil() {
			continue
		}
		out = append(out, UpdateLogState{
			Index: i,
			PLeaf: leaf,
			POldV: a.arena.ReadPtr(base + ulogPOldVOff),
			PNewV: a.arena.ReadPtr(base + ulogPNewVOff),
		})
	}
	return out
}

// ResetUpdateLogAt disarms slot i (recovery's "reset the log").
func (a *Allocator) ResetUpdateLogAt(i int) {
	base := a.ulogAddr(i)
	a.arena.WritePtr(base+ulogPNewVOff, pmem.Nil)
	a.arena.WritePtr(base+ulogPOldVOff, pmem.Nil)
	a.arena.WritePtr(base+ulogPLeafOff, pmem.Nil)
	a.arena.Persist(base, ulogSlotSize)
}
