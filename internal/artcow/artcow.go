// Package artcow implements ART+CoW, the copy-on-write persistent ART
// baseline of the HART paper (after Lee et al., FAST 2017).
//
// ART+CoW shares WOART's node layouts (package pmart) and pure-PM
// placement, but guarantees failure atomicity differently: every
// structural mutation clones the root-to-leaf path it touches, persists
// the fresh nodes completely off to the side, and publishes the whole new
// path with a single atomic root-pointer swap. Unmodified subtrees are
// shared between the old and new versions; the replaced path nodes are
// freed only after the swap.
//
// This makes every insert/delete O(depth) node copies plus persists —
// the CoW overhead that the paper's Figs. 4 and 7 show dominating its
// write performance. Value updates use the same out-of-place value object
// plus atomic leaf pointer swing as WOART and HART (paper Section IV.B,
// Update: "we used a similar update mechanism for HART, WOART, and
// ART+CoW").
//
// Keys must not contain 0x00 (internal terminator, as in package woart).
package artcow

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"github.com/casl-sdsu/hart/internal/cachesim"
	"github.com/casl-sdsu/hart/internal/kv"
	"github.com/casl-sdsu/hart/internal/latency"
	"github.com/casl-sdsu/hart/internal/pmart"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// Superblock layout (first reservation, fixed offset).
const (
	sbMagicOff = 0
	sbRootOff  = 8
	sbSize     = 16

	cowMagic = 0x434f574152540001 // "COWART"
)

// Errors returned by the tree.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("artcow: key not found")
	// ErrBadKey reports an empty, oversized or zero-containing key.
	ErrBadKey = errors.New("artcow: invalid key")
	// ErrBadValue reports an empty or oversized value.
	ErrBadValue = errors.New("artcow: invalid value")
)

// Options configures a tree.
type Options struct {
	// ArenaSize is the simulated PM capacity (default 64 MiB).
	ArenaSize int64
	// Latency selects PM latency emulation.
	Latency latency.Config
	// CacheModel attaches a simulated CPU cache.
	CacheModel bool
	// Tracking enables crash simulation.
	Tracking bool
}

// Tree is one ART+CoW instance.
type Tree struct {
	mu    sync.RWMutex
	arena *pmem.Arena
	na    *pmart.NodeAlloc
	sb    pmem.Ptr
	size  int
}

var _ kv.Index = (*Tree)(nil)

// New creates an ART+CoW over a fresh arena.
func New(opts Options) (*Tree, error) {
	if opts.ArenaSize == 0 {
		opts.ArenaSize = 64 << 20
	}
	var cache *cachesim.Cache
	if opts.CacheModel {
		cache = cachesim.Default()
	}
	arena, err := pmem.New(pmem.Config{
		Size: opts.ArenaSize, Tracking: opts.Tracking, Latency: opts.Latency, Cache: cache,
	})
	if err != nil {
		return nil, err
	}
	sb, err := arena.Reserve(sbSize, 8)
	if err != nil {
		return nil, err
	}
	arena.Write8(sb+sbRootOff, 0)
	arena.Write8(sb+sbMagicOff, cowMagic)
	arena.Persist(sb, sbSize)
	return &Tree{arena: arena, na: pmart.NewNodeAlloc(arena), sb: sb}, nil
}

// Open attaches to an existing arena (pure-PM tree: no rebuild needed).
func Open(arena *pmem.Arena) (*Tree, error) {
	sb := pmem.Ptr(pmem.HeaderSize)
	if arena.Reserved() < pmem.HeaderSize+sbSize || arena.Read8(sb+sbMagicOff) != cowMagic {
		return nil, errors.New("artcow: no tree in arena")
	}
	t := &Tree{arena: arena, na: pmart.NewNodeAlloc(arena), sb: sb}
	t.size = pmart.CountRecords(arena, t.root())
	return t, nil
}

// Name implements kv.Index.
func (t *Tree) Name() string { return "ART+CoW" }

// Arena implements kv.Index.
func (t *Tree) Arena() *pmem.Arena { return t.arena }

// Len implements kv.Index.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Close implements kv.Index.
func (t *Tree) Close() error { return nil }

// SizeInfo implements kv.Index: everything is on PM.
func (t *Tree) SizeInfo() kv.SizeInfo {
	return kv.SizeInfo{PMBytes: t.arena.Reserved()}
}

// root loads the persistent root pointer.
func (t *Tree) root() pmem.Ptr { return t.arena.ReadPtr(t.sb + sbRootOff) }

// publish swaps the root atomically — the single commit point of every
// CoW mutation — and then releases the replaced path nodes.
func (t *Tree) publish(newRoot pmem.Ptr, freed []freedBlock) {
	pmart.ReplaceChildAt(t.arena, t.sb+sbRootOff, newRoot)
	for _, f := range freed {
		t.na.Free(f.p, f.size)
	}
}

// freedBlock records one node or value replaced by a CoW mutation.
type freedBlock struct {
	p    pmem.Ptr
	size int64
}

// validate enforces the key/value contract.
func validate(key, value []byte, needValue bool) error {
	if len(key) == 0 || len(key) > pmart.MaxKeyLen || bytes.IndexByte(key, 0) >= 0 {
		return fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	if needValue && (len(value) == 0 || len(value) > 16) {
		return fmt.Errorf("%w: %d bytes", ErrBadValue, len(value))
	}
	return nil
}

// valueSize rounds a value length to its PM block size.
func valueSize(n int) int64 {
	if n <= 8 {
		return 8
	}
	return 16
}

// newValue allocates, writes and persists a value object.
func (t *Tree) newValue(value []byte) (uint64, error) {
	vp, err := t.na.Alloc(valueSize(len(value)))
	if err != nil {
		return 0, err
	}
	t.arena.WriteAt(vp, value)
	t.arena.Persist(vp, len(value))
	return pmart.PackValue(vp, len(value)), nil
}

// Get implements kv.Index.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	if validate(key, nil, false) != nil {
		return nil, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := pmart.Lookup(t.arena, t.root(), key)
	if leaf.IsNil() {
		return nil, false
	}
	v := pmart.ReadLeafValue(t.arena, leaf)
	return v, v != nil
}

// Scan implements kv.Index.
func (t *Tree) Scan(start, end []byte, fn func(key, value []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pmart.Walk(t.arena, t.root(), start, end, fn)
}

// Update implements kv.Index: out-of-place value, atomic pointer swing.
func (t *Tree) Update(key, value []byte) error {
	if err := validate(key, value, true); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := pmart.Lookup(t.arena, t.root(), key)
	if leaf.IsNil() {
		return ErrNotFound
	}
	return t.updateLeaf(leaf, value)
}

// updateLeaf swings the leaf's value word to a fresh value object.
func (t *Tree) updateLeaf(leaf pmem.Ptr, value []byte) error {
	w, err := t.newValue(value)
	if err != nil {
		return err
	}
	old := t.arena.Read8(leaf + pmart.LeafValueWord)
	t.arena.Write8(leaf+pmart.LeafValueWord, w)
	t.arena.Persist(leaf+pmart.LeafValueWord, 8)
	if vp, n := pmart.UnpackValue(old); !vp.IsNil() {
		t.na.Free(vp, valueSize(n))
	}
	return nil
}

// Check validates structural invariants.
func (t *Tree) Check() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return pmart.CheckTree(t.arena, t.root(), t.size, "artcow")
}
