package artcow

import (
	"fmt"
	"testing"

	"github.com/casl-sdsu/hart/internal/kv"
	"github.com/casl-sdsu/hart/internal/kv/kvtest"
	"github.com/casl-sdsu/hart/internal/pmem"
)

func factory(t *testing.T) kv.Index {
	tr, err := New(Options{ArenaSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConformance(t *testing.T) {
	kvtest.RunAll(t, factory)
}

func TestValidation(t *testing.T) {
	tr, err := New(Options{ArenaSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := tr.Put([]byte("a\x00b"), []byte("v")); err == nil {
		t.Fatal("zero-byte key accepted")
	}
	if err := tr.Put([]byte("k"), make([]byte, 20)); err == nil {
		t.Fatal("oversized value accepted")
	}
}

// TestRootSwapAtomicity crashes inserts at every persist boundary: with
// copy-on-write, the durable tree must be *exactly* the pre-insert tree
// or exactly the post-insert tree — nothing in between.
func TestRootSwapAtomicity(t *testing.T) {
	for fail := int64(0); ; fail++ {
		tr, err := New(Options{ArenaSize: 64 << 20, Tracking: true})
		if err != nil {
			t.Fatal(err)
		}
		pre := []string{"cowA", "cowB", "cowAB", "co", "dz"}
		for _, k := range pre {
			if err := tr.Put([]byte(k), []byte("pre")); err != nil {
				t.Fatal(err)
			}
		}
		tr.Arena().FailAfterPersists(fail)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.CrashError); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			if err := tr.Put([]byte("cowNEW"), []byte("new")); err != nil {
				t.Fatal(err)
			}
		}()
		tr.Arena().DisarmCrash()
		if !crashed {
			if fail == 0 {
				t.Fatal("CoW insert performed no persists")
			}
			return
		}
		img, err := tr.Arena().Crash(pmem.Config{Tracking: true}, pmem.CrashOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := Open(img)
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		for _, k := range pre {
			if v, ok := tr2.Get([]byte(k)); !ok || string(v) != "pre" {
				t.Fatalf("fail=%d: committed key %q = (%q,%v)", fail, k, v, ok)
			}
		}
		_, newOK := tr2.Get([]byte("cowNEW"))
		if newOK != (tr2.Len() == len(pre)+1) {
			t.Fatalf("fail=%d: size/content mismatch", fail)
		}
		if err := tr2.Check(); err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
	}
}

// TestSharedSubtreesNotFreed: after a CoW mutation, records in untouched
// subtrees remain intact (they are shared, not copied, and must not be
// freed).
func TestSharedSubtreesNotFreed(t *testing.T) {
	tr, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("sh%06d", i)), []byte(fmt.Sprintf("%08d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Heavy churn in one subtree.
	for r := 0; r < 5; r++ {
		for i := 0; i < 200; i++ {
			k := []byte(fmt.Sprintf("zz%04d", i))
			if err := tr.Put(k, []byte("churn")); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 200; i++ {
			if err := tr.Delete([]byte(fmt.Sprintf("zz%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 2000; i++ {
		v, ok := tr.Get([]byte(fmt.Sprintf("sh%06d", i)))
		if !ok || string(v) != fmt.Sprintf("%08d", i) {
			t.Fatalf("shared record sh%06d damaged: (%q,%v)", i, v, ok)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestCoWReusesFreedNodes: path copies recycle replaced nodes through the
// free lists, keeping arena growth bounded under churn.
func TestCoWReusesFreedNodes(t *testing.T) {
	tr, err := New(Options{ArenaSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("re%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	base := tr.Arena().Reserved()
	for r := 0; r < 10; r++ {
		for i := 0; i < 100; i++ {
			if err := tr.Update([]byte(fmt.Sprintf("re%05d", i)), []byte("u")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if after := tr.Arena().Reserved(); after > base+(64<<10) {
		t.Fatalf("updates grew arena %d -> %d; free lists unused", base, after)
	}
}
