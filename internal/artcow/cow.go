package artcow

import (
	"github.com/casl-sdsu/hart/internal/pmart"
	"github.com/casl-sdsu/hart/internal/pmem"
)

// Put implements kv.Index by copying the touched root-to-leaf path and
// publishing it with one atomic root swap.
func (t *Tree) Put(key, value []byte) error {
	if err := validate(key, value, true); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	// In-place value update of an existing key needs no structural CoW
	// (same mechanism as WOART/HART, per the paper's update experiment).
	if leaf := pmart.Lookup(t.arena, t.root(), key); !leaf.IsNil() {
		return t.updateLeaf(leaf, value)
	}

	var freed []freedBlock
	newRoot, err := t.copyInsert(t.root(), pmart.Terminated(key), 0, key, value, &freed)
	if err != nil {
		return err
	}
	t.publish(newRoot, freed)
	t.size++
	return nil
}

// commonPrefixLen returns the longest common prefix length of a and b.
func commonPrefixLen(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// copyInsert returns a fresh subtree equal to the subtree at n plus key,
// sharing every untouched child. Replaced nodes are appended to freed.
func (t *Tree) copyInsert(n pmem.Ptr, tk []byte, depth int, key, value []byte, freed *[]freedBlock) (pmem.Ptr, error) {
	if n.IsNil() {
		w, err := t.newValue(value)
		if err != nil {
			return pmem.Nil, err
		}
		leaf, err := pmart.BuildLeaf(t.arena, t.na, key, w)
		if err != nil {
			return pmem.Nil, err
		}
		return pmart.TagLeaf(leaf), nil
	}

	if pmart.IsLeaf(n) {
		// The caller already handled exact matches; this is a split. The
		// existing leaf is shared, not copied.
		lk := pmart.Terminated(pmart.LeafKeyBytes(t.arena, pmart.Untag(n)))
		cp := commonPrefixLen(lk[depth:], tk[depth:])
		w, err := t.newValue(value)
		if err != nil {
			return pmem.Nil, err
		}
		newLeaf, err := pmart.BuildLeaf(t.arena, t.na, key, w)
		if err != nil {
			return pmem.Nil, err
		}
		return pmart.BuildNode(t.arena, t.na, pmart.TypeNode4, tk[depth:depth+cp], []pmart.Edge{
			{Byte: lk[depth+cp], Child: n},
			{Byte: tk[depth+cp], Child: pmart.TagLeaf(newLeaf)},
		})
	}

	typ := pmart.NodeType(t.arena, n)
	prefix := pmart.FullPrefix(t.arena, n, depth)
	rest := tk[depth:]
	cp := commonPrefixLen(prefix, rest)
	if cp < len(prefix) {
		// Diverge inside the compressed path: clone n with the shortened
		// prefix and hang both under a fresh NODE4.
		clone, err := pmart.BuildNode(t.arena, t.na, typ, prefix[cp+1:], pmart.Edges(t.arena, n))
		if err != nil {
			return pmem.Nil, err
		}
		*freed = append(*freed, freedBlock{n, pmart.SizeOf(typ)})
		w, err := t.newValue(value)
		if err != nil {
			return pmem.Nil, err
		}
		newLeaf, err := pmart.BuildLeaf(t.arena, t.na, key, w)
		if err != nil {
			return pmem.Nil, err
		}
		return pmart.BuildNode(t.arena, t.na, pmart.TypeNode4, prefix[:cp], []pmart.Edge{
			{Byte: prefix[cp], Child: clone},
			{Byte: rest[cp], Child: pmart.TagLeaf(newLeaf)},
		})
	}
	depth += len(prefix)

	b := tk[depth]
	_, child := pmart.FindChild(t.arena, n, b)
	var newChild pmem.Ptr
	var err error
	if child.IsNil() {
		newChild, err = t.copyInsert(pmem.Nil, tk, depth+1, key, value, freed)
	} else {
		newChild, err = t.copyInsert(child, tk, depth+1, key, value, freed)
	}
	if err != nil {
		return pmem.Nil, err
	}

	// Clone n with the edge replaced or added (growing as needed).
	edges := pmart.Edges(t.arena, n)
	replaced := false
	for i := range edges {
		if edges[i].Byte == b {
			edges[i].Child = newChild
			replaced = true
			break
		}
	}
	if !replaced {
		edges = append(edges, pmart.Edge{Byte: b, Child: newChild})
	}
	*freed = append(*freed, freedBlock{n, pmart.SizeOf(typ)})
	return pmart.BuildNode(t.arena, t.na, typ, prefix, edges)
}

// Delete implements kv.Index via path copying.
func (t *Tree) Delete(key []byte) error {
	if err := validate(key, nil, false); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if pmart.Lookup(t.arena, t.root(), key).IsNil() {
		return ErrNotFound
	}
	var freed []freedBlock
	newRoot, err := t.copyRemove(t.root(), pmart.Terminated(key), 0, key, &freed)
	if err != nil {
		return err
	}
	t.publish(newRoot, freed)
	t.size--
	return nil
}

// copyRemove returns a fresh subtree equal to the subtree at n minus key.
// The caller guarantees key is present.
func (t *Tree) copyRemove(n pmem.Ptr, tk []byte, depth int, key []byte, freed *[]freedBlock) (pmem.Ptr, error) {
	if pmart.IsLeaf(n) {
		leaf := pmart.Untag(n)
		if vp, vn := pmart.UnpackValue(t.arena.Read8(leaf + pmart.LeafValueWord)); !vp.IsNil() {
			*freed = append(*freed, freedBlock{vp, valueSize(vn)})
		}
		*freed = append(*freed, freedBlock{leaf, pmart.LeafSize})
		return pmem.Nil, nil
	}

	typ := pmart.NodeType(t.arena, n)
	prefix := pmart.FullPrefix(t.arena, n, depth)
	depth += len(prefix)
	b := tk[depth]
	_, child := pmart.FindChild(t.arena, n, b)
	newChild, err := t.copyRemove(child, tk, depth+1, key, freed)
	if err != nil {
		return pmem.Nil, err
	}

	edges := pmart.Edges(t.arena, n)
	out := edges[:0]
	for _, e := range edges {
		if e.Byte == b {
			if newChild.IsNil() {
				continue
			}
			e.Child = newChild
		}
		out = append(out, e)
	}
	*freed = append(*freed, freedBlock{n, pmart.SizeOf(typ)})

	switch len(out) {
	case 0:
		return pmem.Nil, nil
	case 1:
		e := out[0]
		if pmart.IsLeaf(e.Child) {
			// Collapse to the shared leaf (its key is complete).
			return e.Child, nil
		}
		// Merge paths: clone the surviving child with the longer prefix.
		ctyp := pmart.NodeType(t.arena, e.Child)
		cPrefix := pmart.FullPrefix(t.arena, e.Child, depth+1)
		merged := make([]byte, 0, len(prefix)+1+len(cPrefix))
		merged = append(merged, prefix...)
		merged = append(merged, e.Byte)
		merged = append(merged, cPrefix...)
		clone, err := pmart.BuildNode(t.arena, t.na, ctyp, merged, pmart.Edges(t.arena, e.Child))
		if err != nil {
			return pmem.Nil, err
		}
		*freed = append(*freed, freedBlock{e.Child, pmart.SizeOf(ctyp)})
		return clone, nil
	}

	// Rebuild at the smallest kind that fits (shrink falls out of CoW for
	// free: BuildNode raises the kind as needed).
	newTyp := typ
	if smaller, threshold := pmart.ShrunkType(typ); threshold > 0 && len(out) <= threshold {
		newTyp = smaller
	}
	return pmart.BuildNode(t.arena, t.na, newTyp, prefix, out)
}
