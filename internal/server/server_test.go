package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/wire"
)

// startServer brings up a server on an ephemeral port over a fresh
// in-memory store and tears both down in the right order (drain the
// server, then close the store) at test end.
type testServer struct {
	*Server
	addr string
}

func startServer(t *testing.T, opts Options) (*testServer, *core.HART) {
	t.Helper()
	h, err := core.New(core.Options{})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(func() { h.Close() })
	s := New(h, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return &testServer{Server: s, addr: ln.Addr().String()}, h
}

// dial opens a raw protocol connection to the test server.
func dial(t *testing.T, s *testServer) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", s.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// frame encodes one request into its on-wire frame.
func frame(t *testing.T, req wire.Request) []byte {
	t.Helper()
	p, err := req.AppendRequest(nil)
	if err != nil {
		t.Fatalf("encode %s: %v", req.Op, err)
	}
	return wire.AppendFrame(nil, p)
}

// readResp reads and decodes one response for op.
func readResp(t *testing.T, br *bufio.Reader, op wire.Op) wire.Response {
	t.Helper()
	p, err := wire.ReadFrame(br, nil)
	if err != nil {
		t.Fatalf("read %s response frame: %v", op, err)
	}
	resp, err := wire.DecodeResponse(p, op)
	if err != nil {
		t.Fatalf("decode %s response: %v", op, err)
	}
	return resp
}

// TestPutCoalescing is the batching contract from the issue: K Puts
// kept in flight on one connection must reach the store in fewer than K
// publication units — observable as ops.put (one republication each)
// plus ops.put_batch (one republication per shard group) summing below
// K, while every record still lands (ops.put + ops.put_batch_records
// == K and the store holds K keys). Coalescing is opportunistic (the
// gather never blocks), so a scheduling fluke where the executor keeps
// pace with the reader is legal; the test retries on a fresh store
// before declaring the mechanism broken.
func TestPutCoalescing(t *testing.T) {
	const K = 512
	for attempt := 0; attempt < 3; attempt++ {
		s, h := startServer(t, Options{QueueDepth: K})
		c := dial(t, s)

		var stream []byte
		for i := 0; i < K; i++ {
			stream = append(stream, frame(t, wire.Request{
				Op:    wire.OpPut,
				Key:   []byte(fmt.Sprintf("coalesce-%04d", i)),
				Value: []byte(fmt.Sprintf("value-%04d", i)),
			})...)
		}
		// One write call: the whole burst is in flight before any
		// response is consumed, so the exec queue actually fills.
		if _, err := c.Write(stream); err != nil {
			t.Fatalf("write burst: %v", err)
		}
		br := bufio.NewReader(c)
		for i := 0; i < K; i++ {
			if resp := readResp(t, br, wire.OpPut); resp.Status != wire.StatusOK {
				t.Fatalf("put %d: status %s (%s)", i, resp.Status, resp.Msg)
			}
		}

		m := h.Metrics().Counters
		singles, batches := m["ops.put"], m["ops.put_batch"]
		batched := m["ops.put_batch_records"]
		if singles+batched != K {
			t.Fatalf("records applied: %d singles + %d batched != %d", singles, batched, K)
		}
		if h.Len() != K {
			t.Fatalf("store holds %d records, want %d", h.Len(), K)
		}
		if singles+batches < K {
			if sm := s.Metrics(); sm.BatchesFormed == 0 || sm.PutsCoalesced == 0 {
				t.Fatalf("store saw batches but server counters disagree: %+v", sm)
			}
			t.Logf("attempt %d: %d puts → %d singles + %d batches (%d records coalesced)",
				attempt, K, singles, batches, batched)
			return
		}
		t.Logf("attempt %d: no coalescing (%d singles, %d batches); retrying", attempt, singles, batches)
	}
	t.Fatal("no coalescing in 3 attempts: K in-flight Puts produced K publications")
}

// TestResponseOrder pipelines a mixed op sequence in one burst and
// asserts each response comes back in request order, carrying the
// payload only its position in the sequence could produce. A Put run
// is deliberately interrupted by an invalid Put, a Delete miss, a Get
// and a Scan so the order crosses every coalescing boundary case.
func TestResponseOrder(t *testing.T) {
	s, h := startServer(t, Options{})
	c := dial(t, s)

	val := func(i int) []byte { return []byte(fmt.Sprintf("v-%03d", i)) }
	key := func(i int) []byte { return []byte(fmt.Sprintf("ord-%03d", i)) }

	type step struct {
		req        wire.Request
		wantStatus wire.Status
		wantValue  []byte
	}
	var steps []step
	for i := 0; i < 8; i++ {
		steps = append(steps, step{req: wire.Request{Op: wire.OpPut, Key: key(i), Value: val(i)}, wantStatus: wire.StatusOK})
	}
	steps = append(steps,
		// Invalid Put mid-stream: must not poison neighbours, must
		// answer in position.
		step{req: wire.Request{Op: wire.OpPut, Key: key(99)}, wantStatus: wire.StatusBadRequest},
		step{req: wire.Request{Op: wire.OpPut, Key: key(8), Value: val(8)}, wantStatus: wire.StatusOK},
		// Read-your-writes on the same connection.
		step{req: wire.Request{Op: wire.OpGet, Key: key(3)}, wantStatus: wire.StatusOK, wantValue: val(3)},
		step{req: wire.Request{Op: wire.OpDelete, Key: key(3)}, wantStatus: wire.StatusOK},
		step{req: wire.Request{Op: wire.OpGet, Key: key(3)}, wantStatus: wire.StatusNotFound},
		step{req: wire.Request{Op: wire.OpDelete, Key: []byte("never-existed")}, wantStatus: wire.StatusNotFound},
		step{req: wire.Request{Op: wire.OpPut, Key: key(9), Value: val(9)}, wantStatus: wire.StatusOK},
		step{req: wire.Request{Op: wire.OpGet, Key: key(9)}, wantStatus: wire.StatusOK, wantValue: val(9)},
	)

	var stream []byte
	for _, st := range steps {
		stream = append(stream, frame(t, st.req)...)
	}
	if _, err := c.Write(stream); err != nil {
		t.Fatalf("write burst: %v", err)
	}
	br := bufio.NewReader(c)
	for i, st := range steps {
		resp := readResp(t, br, st.req.Op)
		if resp.Status != st.wantStatus {
			t.Fatalf("step %d (%s %q): status %s, want %s (msg %q)",
				i, st.req.Op, st.req.Key, resp.Status, st.wantStatus, resp.Msg)
		}
		if st.wantValue != nil && !bytes.Equal(resp.Value, st.wantValue) {
			t.Fatalf("step %d: value %q, want %q", i, resp.Value, st.wantValue)
		}
	}

	// A scan at the end sees the same connection's net effect: keys 0-9
	// except the deleted key(3).
	scanStream := frame(t, wire.Request{Op: wire.OpScan, Start: []byte("ord-"), End: []byte("ord-~")})
	if _, err := c.Write(scanStream); err != nil {
		t.Fatalf("write scan: %v", err)
	}
	resp := readResp(t, br, wire.OpScan)
	if resp.Status != wire.StatusOK || len(resp.Records) != 9 {
		t.Fatalf("scan: status %s, %d records, want OK/9", resp.Status, len(resp.Records))
	}
	for _, r := range resp.Records {
		if bytes.Equal(r.Key, key(3)) {
			t.Fatalf("scan returned deleted key %q", r.Key)
		}
	}
	if h.Len() != 9 {
		t.Fatalf("store holds %d, want 9", h.Len())
	}
}

// TestProtocolErrorClosesConn sends an unparseable frame and expects
// one StatusBadRequest response followed by connection close — framing
// is unrecoverable after garbage, so the server must not keep reading.
func TestProtocolErrorClosesConn(t *testing.T) {
	s, _ := startServer(t, Options{})

	cases := []struct {
		name    string
		payload []byte
	}{
		{"bad-version", []byte{wire.Version + 7, byte(wire.OpGet), 0, 1, 'k'}},
		{"bad-op", []byte{wire.Version, 250}},
		{"truncated-body", []byte{wire.Version, byte(wire.OpGet), 0xff, 0xff, 'k'}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := dial(t, s)
			if _, err := c.Write(wire.AppendFrame(nil, tc.payload)); err != nil {
				t.Fatalf("write: %v", err)
			}
			br := bufio.NewReader(c)
			p, err := wire.ReadFrame(br, nil)
			if err != nil {
				t.Fatalf("want an error response before close, got %v", err)
			}
			resp, err := wire.DecodeResponse(p, wire.OpGet)
			if err != nil {
				t.Fatalf("decode error response: %v", err)
			}
			if resp.Status != wire.StatusBadRequest {
				t.Fatalf("status %s, want %s", resp.Status, wire.StatusBadRequest)
			}
			c.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := wire.ReadFrame(br, nil); !errors.Is(err, io.EOF) {
				t.Fatalf("conn after protocol error: %v, want EOF", err)
			}
		})
	}

	// An oversized length prefix must also be refused and the conn
	// dropped, never allocated.
	t.Run("oversized-frame", func(t *testing.T) {
		c := dial(t, s)
		huge := []byte{0x00, 0x20, 0x00, 0x01} // 2 MiB + 1 > MaxFrame
		if _, err := c.Write(huge); err != nil {
			t.Fatalf("write: %v", err)
		}
		br := bufio.NewReader(c)
		p, err := wire.ReadFrame(br, nil)
		if err != nil {
			t.Fatalf("want an error response before close, got %v", err)
		}
		if resp, _ := wire.DecodeResponse(p, wire.OpGet); resp.Status != wire.StatusBadRequest {
			t.Fatalf("status %s, want %s", resp.Status, wire.StatusBadRequest)
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := wire.ReadFrame(br, nil); !errors.Is(err, io.EOF) {
			t.Fatalf("conn after oversized frame: %v, want EOF", err)
		}
	})
}

// TestShutdownDrains writes a burst of Puts, shuts the server down
// concurrently and asserts the drain contract: every request the
// server received before the cut-off is executed AND its response
// delivered — the response count read before EOF must equal the number
// of records in the store. No acked-but-lost, no applied-but-silent.
func TestShutdownDrains(t *testing.T) {
	const K = 256
	s, h := startServer(t, Options{QueueDepth: K})
	c := dial(t, s)

	var stream []byte
	for i := 0; i < K; i++ {
		stream = append(stream, frame(t, wire.Request{
			Op:    wire.OpPut,
			Key:   []byte(fmt.Sprintf("drain-%04d", i)),
			Value: []byte("x"),
		})...)
	}
	if _, err := c.Write(stream); err != nil {
		t.Fatalf("write burst: %v", err)
	}

	// Consume responses the way a real client does — concurrently with
	// the shutdown — and close our end once the server's FIN arrives,
	// which is what lets its linger-drain finish promptly.
	ackedCh := make(chan int, 1)
	go func() {
		acked := 0
		br := bufio.NewReader(c)
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		for {
			p, err := wire.ReadFrame(br, nil)
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Errorf("read during drain: %v", err)
				}
				break
			}
			resp, err := wire.DecodeResponse(p, wire.OpPut)
			if err != nil {
				t.Errorf("decode drained response: %v", err)
				break
			}
			if resp.Status != wire.StatusOK {
				t.Errorf("drained put status %s (%s)", resp.Status, resp.Msg)
				break
			}
			acked++
		}
		c.Close()
		ackedCh <- acked
	}()

	if err := s.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	acked := <-ackedCh
	if got := h.Len(); got != acked {
		t.Fatalf("acked %d puts but store holds %d — drain broke the ack contract", acked, got)
	}
	t.Logf("drain: %d/%d puts acked and applied", acked, K)

	// The listener is down: new connections must be refused.
	if cc, err := net.DialTimeout("tcp", s.addr, time.Second); err == nil {
		cc.Close()
		t.Fatal("dial succeeded after Shutdown")
	}
}

// TestStatsOp checks the Stats document: store-level record counts and
// counters plus the server's own connection/coalescing counters.
func TestStatsOp(t *testing.T) {
	s, _ := startServer(t, Options{})
	c := dial(t, s)
	br := bufio.NewReader(c)

	for i := 0; i < 3; i++ {
		req := wire.Request{Op: wire.OpPut, Key: []byte{byte('a' + i)}, Value: []byte("v")}
		if _, err := c.Write(frame(t, req)); err != nil {
			t.Fatalf("write put: %v", err)
		}
		if resp := readResp(t, br, wire.OpPut); resp.Status != wire.StatusOK {
			t.Fatalf("put: %s", resp.Status)
		}
	}
	if _, err := c.Write(frame(t, wire.Request{Op: wire.OpStats})); err != nil {
		t.Fatalf("write stats: %v", err)
	}
	resp := readResp(t, br, wire.OpStats)
	if resp.Status != wire.StatusOK {
		t.Fatalf("stats: %s (%s)", resp.Status, resp.Msg)
	}
	var p wire.StatsPayload
	if err := json.Unmarshal(resp.Value, &p); err != nil {
		t.Fatalf("stats payload: %v", err)
	}
	if p.Records != 3 {
		t.Fatalf("stats records = %d, want 3", p.Records)
	}
	if p.Counters["ops.put"]+p.Counters["ops.put_batch_records"] != 3 {
		t.Fatalf("stats counters missing puts: %v", p.Counters)
	}
	if p.Server["requests"] != 4 || p.Server["conns_accepted"] != 1 {
		t.Fatalf("server counters: %v", p.Server)
	}
}

// TestPutBatchOp exercises the explicit PutBatch op (as opposed to
// server-side coalescing): applied count, then visibility via Get.
func TestPutBatchOp(t *testing.T) {
	s, h := startServer(t, Options{})
	c := dial(t, s)
	br := bufio.NewReader(c)

	req := wire.Request{Op: wire.OpPutBatch}
	for i := 0; i < 10; i++ {
		req.Records = append(req.Records, wire.Record{
			Key:   []byte(fmt.Sprintf("batch-%02d", i)),
			Value: []byte(fmt.Sprintf("bv-%02d", i)),
		})
	}
	if _, err := c.Write(frame(t, req)); err != nil {
		t.Fatalf("write batch: %v", err)
	}
	resp := readResp(t, br, wire.OpPutBatch)
	if resp.Status != wire.StatusOK || resp.Applied != 10 {
		t.Fatalf("batch: status %s applied %d, want OK/10", resp.Status, resp.Applied)
	}
	if h.Len() != 10 {
		t.Fatalf("store holds %d, want 10", h.Len())
	}
	if _, err := c.Write(frame(t, wire.Request{Op: wire.OpGet, Key: []byte("batch-07")})); err != nil {
		t.Fatalf("write get: %v", err)
	}
	if got := readResp(t, br, wire.OpGet); got.Status != wire.StatusOK || string(got.Value) != "bv-07" {
		t.Fatalf("get after batch: %s %q", got.Status, got.Value)
	}
}
