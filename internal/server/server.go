// Package server implements hartd's TCP service layer: each accepted
// connection runs a three-stage pipeline (read+decode → execute →
// encode+respond) over one shared HART store, speaking the
// internal/wire protocol.
//
// Pipelining is the point of the design. A client that streams many
// requests without waiting gets them decoded while earlier ones
// execute and responded to while later ones decode; and consecutive
// in-flight Puts on one connection are coalesced into a single
// core.PutBatch call, so the wire path rides the batched copy-on-write
// publication (DESIGN.md §10) instead of republishing the shard tree
// once per request. Responses are always written in request order —
// coalescing changes how work is applied, never what the client
// observes.
//
// Acknowledgement contract: a response with wire.StatusOK is sent only
// after the operation's commit point has persisted (Put/PutBatch return
// with their records durable; Delete with its leaf bit reset). A crash
// of the daemon can therefore lose only unacknowledged writes — the
// invariant the end-to-end kill tests assert.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/wire"
)

// closeLinger bounds the post-drain wait for a peer to consume its last
// responses and close; a peer that keeps the connection busy past it is
// cut off (and may lose unconsumed responses to the reset).
const closeLinger = time.Second

// Options configures a Server.
type Options struct {
	// BatchMax caps how many consecutive in-flight Puts one connection
	// coalesces into a single PutBatch (default 256).
	BatchMax int
	// QueueDepth is the per-connection pipeline depth: how many decoded
	// requests (and encoded responses) may sit between the stages
	// (default 256). A client keeping more than QueueDepth requests in
	// flight is flow-controlled by TCP, not errored.
	QueueDepth int
	// Logf receives connection-level diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.BatchMax == 0 {
		o.BatchMax = 256
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 256
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Metrics are the server's own counters, exposed through the Stats op
// beside the store's obs snapshot.
type Metrics struct {
	ConnsAccepted  uint64
	ConnsActive    uint64
	Requests       uint64
	PutsCoalesced  uint64 // Puts applied through a coalesced batch
	BatchesFormed  uint64 // coalesced batches flushed to PutBatch
	ProtocolErrors uint64
}

// Server serves the wire protocol over one HART store.
type Server struct {
	h    *core.HART
	opts Options

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}

	done     chan struct{}
	shutting atomic.Bool
	wg       sync.WaitGroup

	connsAccepted  atomic.Uint64
	connsActive    atomic.Int64
	requests       atomic.Uint64
	putsCoalesced  atomic.Uint64
	batchesFormed  atomic.Uint64
	protocolErrors atomic.Uint64
}

// New returns a server over h. The server does not own h: Shutdown
// drains connections but leaves closing the store to the caller, so the
// daemon controls the drain → Close → clean-flag ordering.
func New(h *core.HART, opts Options) *Server {
	return &Server{
		h:     h,
		opts:  opts.withDefaults(),
		conns: map[net.Conn]struct{}{},
		done:  make(chan struct{}),
	}
}

// Metrics returns the server's counter snapshot.
func (s *Server) Metrics() Metrics {
	return Metrics{
		ConnsAccepted:  s.connsAccepted.Load(),
		ConnsActive:    uint64(s.connsActive.Load()),
		Requests:       s.requests.Load(),
		PutsCoalesced:  s.putsCoalesced.Load(),
		BatchesFormed:  s.batchesFormed.Load(),
		ProtocolErrors: s.protocolErrors.Load(),
	}
}

// Addr returns the listener's address (the resolved port for ":0"
// listeners), or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown (or a listener error)
// and returns after every connection has drained.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	shutting := s.shutting.Load()
	s.mu.Unlock()
	if shutting {
		// Shutdown won the race before the listener was registered; it
		// could not close it, so close here and drain as usual.
		ln.Close()
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			if s.shutting.Load() {
				return nil
			}
			return err
		}
		if !s.track(c) {
			c.Close()
			continue
		}
		s.connsAccepted.Add(1)
		s.connsActive.Add(1)
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// Shutdown stops accepting, nudges every connection's reader off its
// blocking read, waits for all queued requests to execute and their
// responses to flush, and returns once every connection has closed.
// The store itself is untouched — callers close it after Shutdown so
// the superblock's clean flag is the last thing written.
func (s *Server) Shutdown() error {
	if s.shutting.Swap(true) {
		return nil
	}
	close(s.done)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		// Expire the blocking read: the reader treats errors after the
		// done signal as a clean end-of-stream, so requests already
		// received still execute and respond before the conn closes.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// track registers a live connection; it refuses (false) once shutdown
// has begun, closing the race between Accept and Shutdown's sweep.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutting.Load() {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

// untrack removes a closed connection.
func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// connItem is one unit handed from the read stage to the execute stage:
// a decoded request, or the decode error that ends the connection.
type connItem struct {
	req       wire.Request
	decodeErr error
}

// handleConn runs one connection's pipeline. The calling goroutine is
// the read stage; execute and respond stages run alongside it. Stage
// channels close downstream in order, so every received request is
// executed and every produced response flushed before the conn closes.
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	defer s.connsActive.Add(-1)
	defer s.untrack(c)
	defer c.Close()

	execCh := make(chan connItem, s.opts.QueueDepth)
	writeCh := make(chan []byte, s.opts.QueueDepth)

	var stages sync.WaitGroup
	stages.Add(2)
	go func() {
		defer stages.Done()
		s.execLoop(execCh, writeCh)
	}()
	go func() {
		defer stages.Done()
		s.writeLoop(c, writeCh)
	}()

	defer func() {
		// Graceful close: flushing responses is not enough — if unread
		// bytes remain in the kernel receive buffer (a pipelining client
		// cut off mid-burst by Shutdown), Close sends RST, which
		// clobbers flushed-but-unconsumed responses on the peer's side.
		// Half-close instead (FIN after the last response), then give
		// the peer a bounded moment to consume and close its end.
		if tc, ok := c.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		c.SetReadDeadline(time.Now().Add(closeLinger))
		io.Copy(io.Discard, c)
	}()

	br := bufio.NewReaderSize(c, 64<<10)
	for {
		// Each frame gets its own buffer: the decoded request aliases it
		// and crosses into the execute stage, which runs concurrently
		// with the next read.
		payload, err := wire.ReadFrame(br, nil)
		if err != nil {
			if !s.isCleanEOF(err) {
				// Framing is unrecoverable: report once, then drop the conn.
				s.protocolErrors.Add(1)
				execCh <- connItem{decodeErr: err}
				s.opts.Logf("hartd: %s: read: %v", c.RemoteAddr(), err)
			}
			break
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			s.protocolErrors.Add(1)
			execCh <- connItem{decodeErr: err}
			s.opts.Logf("hartd: %s: decode: %v", c.RemoteAddr(), err)
			break
		}
		s.requests.Add(1)
		execCh <- connItem{req: req}
	}
	close(execCh)
	stages.Wait()
}

// isCleanEOF reports whether a read error just means "no more requests"
// — client closed its end, or Shutdown expired the read deadline.
func (s *Server) isCleanEOF(err error) bool {
	if errors.Is(err, net.ErrClosed) || err.Error() == "EOF" {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		select {
		case <-s.done:
			return true
		default:
			return false
		}
	}
	return false
}

// execLoop is the execute stage: it applies requests against the store
// in arrival order and emits one encoded response frame per request, in
// the same order. When a valid Put arrives, every immediately available
// consecutive valid Put behind it in the queue is gathered (without
// blocking — an idle connection's single Put executes alone) into one
// coalesced batch; the first non-Put or invalid item ends the gather
// and is handled right after the batch, preserving order.
func (s *Server) execLoop(execCh <-chan connItem, writeCh chan<- []byte) {
	defer close(writeCh)
	maxVal := s.maxValueLen()
	var batch []wire.Request
	for item := range execCh {
		if item.decodeErr != nil {
			writeCh <- encodeResponse(wire.OpGet, &wire.Response{
				Status: wire.StatusBadRequest, Msg: item.decodeErr.Error(),
			})
			continue
		}
		if item.req.Op != wire.OpPut || s.validatePut(&item.req, maxVal) != wire.StatusOK {
			writeCh <- encodeResponse(item.req.Op, s.execute(&item.req, maxVal))
			continue
		}
		batch = append(batch[:0], item.req)
		var tail *connItem
	gather:
		for len(batch) < s.opts.BatchMax {
			select {
			case it, ok := <-execCh:
				if !ok {
					break gather
				}
				if it.decodeErr == nil && it.req.Op == wire.OpPut &&
					s.validatePut(&it.req, maxVal) == wire.StatusOK {
					batch = append(batch, it.req)
					continue
				}
				// Invalid Puts terminate the gather rather than joining it:
				// PutBatch validates all-or-nothing, so one bad record must
				// not poison its neighbours' acks.
				tail = &it
				break gather
			default:
				break gather
			}
		}
		s.applyPuts(batch, writeCh)
		if tail != nil {
			if tail.decodeErr != nil {
				writeCh <- encodeResponse(wire.OpGet, &wire.Response{
					Status: wire.StatusBadRequest, Msg: tail.decodeErr.Error(),
				})
			} else {
				writeCh <- encodeResponse(tail.req.Op, s.execute(&tail.req, maxVal))
			}
		}
	}
}

// applyPuts applies one coalesced run of pre-validated Puts and
// responds per request, in order. A single Put goes through h.Put; two
// or more become one core.PutBatch — one shard-tree republication per
// shard group instead of one per record. Acks are written only after
// the call returns, by which point every applied record is durable.
func (s *Server) applyPuts(batch []wire.Request, writeCh chan<- []byte) {
	if len(batch) == 1 {
		writeCh <- encodeResponse(wire.OpPut, responseFor(s.h.Put(batch[0].Key, batch[0].Value)))
		return
	}
	recs := make([]core.Record, len(batch))
	for i := range batch {
		recs[i] = core.Record{Key: batch[i].Key, Value: batch[i].Value}
	}
	s.batchesFormed.Add(1)
	s.putsCoalesced.Add(uint64(len(batch)))
	_, err := s.h.PutBatch(recs)
	// PutBatch applies records in sorted key order, so on error the
	// applied count does not identify which *submitted* requests landed.
	// Err on the safe side of the ack contract: every Put in the batch
	// reports the failure (an ack must imply durability; a failure
	// report for a record that did land is harmless).
	resp := encodeResponse(wire.OpPut, responseFor(err))
	for range batch {
		writeCh <- resp
	}
}

// execute applies one non-coalesced request and builds its response.
func (s *Server) execute(req *wire.Request, maxVal int) *wire.Response {
	switch req.Op {
	case wire.OpGet:
		v, ok := s.h.Get(req.Key)
		if !ok {
			return &wire.Response{Status: wire.StatusNotFound, Msg: wire.StatusNotFound.String()}
		}
		return &wire.Response{Status: wire.StatusOK, Value: v}
	case wire.OpPut:
		if st := s.validatePut(req, maxVal); st != wire.StatusOK {
			return &wire.Response{Status: st, Msg: st.String()}
		}
		return responseFor(s.h.Put(req.Key, req.Value))
	case wire.OpDelete:
		return responseFor(s.h.Delete(req.Key))
	case wire.OpScan:
		return s.execScan(req)
	case wire.OpPutBatch:
		recs := make([]core.Record, len(req.Records))
		for i, r := range req.Records {
			recs[i] = core.Record{Key: r.Key, Value: r.Value}
		}
		n, err := s.h.PutBatch(recs)
		resp := responseFor(err)
		resp.Applied = uint32(n)
		return resp
	case wire.OpStats:
		return s.execStats()
	}
	return &wire.Response{Status: wire.StatusBadRequest, Msg: wire.ErrBadOp.Error()}
}

// execScan runs one bounded scan page.
func (s *Server) execScan(req *wire.Request) *wire.Response {
	limit := int(req.Limit)
	if limit <= 0 || limit > wire.MaxScanPage {
		limit = wire.MaxScanPage
	}
	resp := &wire.Response{Status: wire.StatusOK}
	// Collect one past the limit to learn whether the range continues.
	s.h.Scan(req.Start, req.End, func(k, v []byte) bool {
		if len(resp.Records) == limit {
			resp.More = true
			return false
		}
		resp.Records = append(resp.Records, wire.Record{Key: k, Value: v})
		return true
	})
	return resp
}

// execStats marshals the store's metrics snapshot plus the server's own
// counters into the Stats response JSON.
func (s *Server) execStats() *wire.Response {
	m := s.h.Metrics()
	p := wire.StatsPayload{
		Records:  s.h.Len(),
		ARTs:     s.h.NumARTs(),
		Counters: m.Counters,
		Hists:    map[string]wire.HistSummary{},
	}
	for name, h := range m.Hists {
		p.Hists[name] = wire.HistSummary{
			Count: h.Count, MeanNs: h.MeanNs,
			P50Ns: h.P50Ns, P95Ns: h.P95Ns, P99Ns: h.P99Ns, MaxNs: h.MaxNs,
		}
	}
	sm := s.Metrics()
	p.Server = map[string]uint64{
		"conns_accepted":  sm.ConnsAccepted,
		"conns_active":    sm.ConnsActive,
		"requests":        sm.Requests,
		"puts_coalesced":  sm.PutsCoalesced,
		"batches_formed":  sm.BatchesFormed,
		"protocol_errors": sm.ProtocolErrors,
	}
	js, err := json.Marshal(p)
	if err != nil {
		return &wire.Response{Status: wire.StatusServerError, Msg: err.Error()}
	}
	return &wire.Response{Status: wire.StatusOK, Value: js}
}

// validatePut screens a Put before it may join a coalesced batch:
// PutBatch validates all-or-nothing, so one bad record must not poison
// its neighbours' acks.
func (s *Server) validatePut(req *wire.Request, maxVal int) wire.Status {
	switch {
	case len(req.Key) == 0:
		return wire.StatusBadRequest
	case len(req.Key) > core.MaxKeyLen:
		return wire.StatusKeyTooLong
	case len(req.Value) == 0:
		return wire.StatusBadRequest
	case len(req.Value) > maxVal:
		return wire.StatusValueTooLong
	}
	return wire.StatusOK
}

// maxValueLen is the store's largest storable value.
func (s *Server) maxValueLen() int {
	classes := s.h.Options().ValueClasses
	return int(classes[len(classes)-1])
}

// responseFor maps a store error to its wire response.
func responseFor(err error) *wire.Response {
	if err == nil {
		return &wire.Response{Status: wire.StatusOK}
	}
	st := wire.StatusServerError
	switch {
	case errors.Is(err, core.ErrNotFound):
		st = wire.StatusNotFound
	case errors.Is(err, core.ErrKeyTooLong):
		st = wire.StatusKeyTooLong
	case errors.Is(err, core.ErrValueTooLong):
		st = wire.StatusValueTooLong
	case errors.Is(err, core.ErrEmptyKey), errors.Is(err, core.ErrEmptyValue):
		st = wire.StatusBadRequest
	case errors.Is(err, core.ErrClosed):
		st = wire.StatusClosed
	}
	return &wire.Response{Status: st, Msg: err.Error()}
}

// encodeResponse renders a response into one framed byte slice.
func encodeResponse(op wire.Op, resp *wire.Response) []byte {
	payload, err := resp.AppendResponse(nil, op)
	if err != nil {
		// Encoding can only fail on malformed server-built responses
		// (oversized scan page keys, unknown status) — a bug, but the
		// connection must still get a parseable answer.
		payload, _ = (&wire.Response{
			Status: wire.StatusServerError,
			Msg:    fmt.Sprintf("response encoding failed: %v", err),
		}).AppendResponse(nil, op)
	}
	return wire.AppendFrame(nil, payload)
}

// writeLoop is the respond stage: it writes response frames in order,
// flushing whenever the queue momentarily drains (one syscall per burst
// rather than per response). On a write error it keeps draining the
// channel so the execute stage never blocks against a dead peer.
func (s *Server) writeLoop(c net.Conn, writeCh <-chan []byte) {
	bw := bufio.NewWriterSize(c, 64<<10)
	broken := false
	for frame := range writeCh {
		if broken {
			continue
		}
		if _, err := bw.Write(frame); err != nil {
			broken = true
			continue
		}
		if len(writeCh) == 0 {
			if err := bw.Flush(); err != nil {
				broken = true
			}
		}
	}
	if !broken {
		bw.Flush()
	}
}
