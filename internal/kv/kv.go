// Package kv defines the common key-value index contract implemented by
// HART and the three baseline persistent trees the paper evaluates against
// (WOART, ART+CoW, FPTree), plus a reference-model conformance harness the
// per-tree test suites share.
package kv

import "github.com/casl-sdsu/hart/internal/pmem"

// SizeInfo reports an index's memory footprint split by device, the
// quantity compared in the paper's Fig. 10b.
type SizeInfo struct {
	// PMBytes is the persistent-memory footprint.
	PMBytes int64
	// DRAMBytes is the volatile footprint (0 for the pure-PM trees).
	DRAMBytes int64
}

// Index is the operation set the paper benchmarks: the four basic
// operations (insertion, search, update, deletion) plus range query.
type Index interface {
	// Name identifies the implementation ("HART", "WOART", ...).
	Name() string
	// Put inserts a new record or updates an existing one (Algorithm 1).
	Put(key, value []byte) error
	// Get returns a copy of the value stored under key.
	Get(key []byte) ([]byte, bool)
	// Update overwrites an existing record, failing if absent.
	Update(key, value []byte) error
	// Delete removes a record, failing if absent.
	Delete(key []byte) error
	// Scan visits records with start <= key < end in ascending order.
	Scan(start, end []byte, fn func(key, value []byte) bool)
	// Len returns the number of live records.
	Len() int
	// SizeInfo reports the PM/DRAM footprint.
	SizeInfo() SizeInfo
	// Arena exposes the underlying simulated PM device.
	Arena() *pmem.Arena
	// Close releases the index.
	Close() error
}

// Recoverable is implemented by the hybrid trees (HART, FPTree) that
// rebuild volatile state from PM, and measured by the Fig. 10c experiment.
type Recoverable interface {
	Index
	// Rebuild discards all volatile state and reconstructs it from PM.
	Rebuild() error
}

// Checkable is implemented by indexes with an fsck.
type Checkable interface {
	// Check validates internal invariants, returning nil when consistent.
	Check() error
}
