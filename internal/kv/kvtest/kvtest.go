// Package kvtest is a conformance harness shared by the test suites of
// all four persistent trees (HART, WOART, ART+CoW, FPTree). Each tree's
// package runs the same behavioural battery against a factory, so the
// baselines are held to the same functional contract as HART — a
// prerequisite for the performance comparison to be meaningful.
package kvtest

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/casl-sdsu/hart/internal/kv"
)

// Factory builds a fresh empty index.
type Factory func(t *testing.T) kv.Index

// RunAll executes the full battery.
func RunAll(t *testing.T, f Factory) {
	t.Run("Basic", func(t *testing.T) { Basic(t, f) })
	t.Run("UpdateSemantics", func(t *testing.T) { UpdateSemantics(t, f) })
	t.Run("DeleteSemantics", func(t *testing.T) { DeleteSemantics(t, f) })
	t.Run("ScanOrdered", func(t *testing.T) { ScanOrdered(t, f) })
	t.Run("Randomized", func(t *testing.T) { Randomized(t, f) })
	t.Run("ValueSizes", func(t *testing.T) { ValueSizes(t, f) })
	t.Run("DenseFanout", func(t *testing.T) { DenseFanout(t, f) })
	t.Run("SharedPrefixes", func(t *testing.T) { SharedPrefixes(t, f) })
}

// check runs the index's fsck if it has one.
func check(t *testing.T, ix kv.Index) {
	t.Helper()
	if c, ok := ix.(kv.Checkable); ok {
		if err := c.Check(); err != nil {
			t.Fatalf("%s fsck: %v", ix.Name(), err)
		}
	}
}

// Basic covers the four basic operations on a handful of keys.
func Basic(t *testing.T, f Factory) {
	ix := f(t)
	defer ix.Close()
	if _, ok := ix.Get([]byte("absent")); ok {
		t.Fatal("Get on empty index succeeded")
	}
	keys := []string{"apple", "application", "banana", "band", "bandana", "can"}
	for i, k := range keys {
		if err := ix.Put([]byte(k), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	if ix.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(keys))
	}
	for i, k := range keys {
		v, ok := ix.Get([]byte(k))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%q) = (%q,%v)", k, v, ok)
		}
	}
	check(t, ix)
}

// UpdateSemantics covers in-place puts, explicit updates and size-class
// crossings.
func UpdateSemantics(t *testing.T, f Factory) {
	ix := f(t)
	defer ix.Close()
	if err := ix.Update([]byte("ghost"), []byte("v")); err == nil {
		t.Fatal("Update of missing key succeeded")
	}
	if err := ix.Put([]byte("key"), []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Put([]byte("key"), []byte("second")); err != nil {
		t.Fatal(err)
	}
	if v, _ := ix.Get([]byte("key")); string(v) != "second" {
		t.Fatalf("after Put-update: %q", v)
	}
	if err := ix.Update([]byte("key"), []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	if v, _ := ix.Get([]byte("key")); string(v) != "0123456789abcdef" {
		t.Fatalf("after class-crossing update: %q", v)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	check(t, ix)
}

// DeleteSemantics covers removal, double deletion and reinsertion.
func DeleteSemantics(t *testing.T, f Factory) {
	ix := f(t)
	defer ix.Close()
	for i := 0; i < 200; i++ {
		if err := ix.Put([]byte(fmt.Sprintf("d%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i += 2 {
		if err := ix.Delete([]byte(fmt.Sprintf("d%04d", i))); err != nil {
			t.Fatalf("Delete d%04d: %v", i, err)
		}
	}
	if ix.Len() != 100 {
		t.Fatalf("Len = %d, want 100", ix.Len())
	}
	if err := ix.Delete([]byte("d0000")); err == nil {
		t.Fatal("double delete succeeded")
	}
	for i := 0; i < 200; i++ {
		_, ok := ix.Get([]byte(fmt.Sprintf("d%04d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("d%04d present=%v want %v", i, ok, want)
		}
	}
	// Reinsert the deleted half.
	for i := 0; i < 200; i += 2 {
		if err := ix.Put([]byte(fmt.Sprintf("d%04d", i)), []byte("back")); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 200 {
		t.Fatalf("Len = %d after reinsertion, want 200", ix.Len())
	}
	check(t, ix)
}

// ScanOrdered covers full and bounded ordered scans.
func ScanOrdered(t *testing.T, f Factory) {
	ix := f(t)
	defer ix.Close()
	perm := rand.New(rand.NewSource(11)).Perm(500)
	for _, i := range perm {
		if err := ix.Put([]byte(fmt.Sprintf("s%05d", i)), []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	ix.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 500 {
		t.Fatalf("full scan: %d keys", len(got))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("full scan out of order")
	}
	got = got[:0]
	ix.Scan([]byte("s00100"), []byte("s00150"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 50 || got[0] != "s00100" || got[49] != "s00149" {
		t.Fatalf("bounded scan: %d keys %v", len(got), got)
	}
	n := 0
	ix.Scan(nil, nil, func(k, v []byte) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Randomized runs a differential test against a map model.
func Randomized(t *testing.T, f Factory) {
	ix := f(t)
	defer ix.Close()
	rng := rand.New(rand.NewSource(99))
	model := map[string]string{}
	var live []string
	const ops = 8000
	alphabet := "abcdeXY019"
	randKey := func() string {
		n := 1 + rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	for i := 0; i < ops; i++ {
		switch op := rng.Intn(10); {
		case op < 5:
			k := randKey()
			v := fmt.Sprintf("%08d", rng.Intn(1e8))
			if err := ix.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("op %d: Put(%q): %v", i, k, err)
			}
			if _, existed := model[k]; !existed {
				live = append(live, k)
			}
			model[k] = v
		case op < 7 && len(live) > 0:
			j := rng.Intn(len(live))
			k := live[j]
			if err := ix.Delete([]byte(k)); err != nil {
				t.Fatalf("op %d: Delete(%q): %v", i, k, err)
			}
			delete(model, k)
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		case op < 8 && len(live) > 0:
			k := live[rng.Intn(len(live))]
			v := fmt.Sprintf("u%07d", rng.Intn(1e7))
			if err := ix.Update([]byte(k), []byte(v)); err != nil {
				t.Fatalf("op %d: Update(%q): %v", i, k, err)
			}
			model[k] = v
		default:
			k := randKey()
			got, ok := ix.Get([]byte(k))
			want, existed := model[k]
			if ok != existed || (ok && string(got) != want) {
				t.Fatalf("op %d: Get(%q) = (%q,%v), want (%q,%v)", i, k, got, ok, want, existed)
			}
		}
	}
	if ix.Len() != len(model) {
		t.Fatalf("final Len = %d, model %d", ix.Len(), len(model))
	}
	for k, v := range model {
		got, ok := ix.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("final Get(%q) = (%q,%v), want %q", k, got, ok, v)
		}
	}
	check(t, ix)
}

// ValueSizes covers every legal value length.
func ValueSizes(t *testing.T, f Factory) {
	ix := f(t)
	defer ix.Close()
	for n := 1; n <= 16; n++ {
		k := fmt.Sprintf("vs%02d", n)
		v := make([]byte, n)
		for i := range v {
			v[i] = byte('A' + n)
		}
		if err := ix.Put([]byte(k), v); err != nil {
			t.Fatalf("Put %d-byte value: %v", n, err)
		}
	}
	for n := 1; n <= 16; n++ {
		v, ok := ix.Get([]byte(fmt.Sprintf("vs%02d", n)))
		if !ok || len(v) != n {
			t.Fatalf("Get %d-byte value: (%d bytes, %v)", n, len(v), ok)
		}
		for _, b := range v {
			if b != byte('A'+n) {
				t.Fatalf("%d-byte value corrupted: %q", n, v)
			}
		}
	}
	check(t, ix)
}

// DenseFanout forces every node kind (4, 16, 48, 256) on one level, then
// deletes back down through every shrink threshold.
func DenseFanout(t *testing.T, f Factory) {
	ix := f(t)
	defer ix.Close()
	alphabet := make([]byte, 0, 62)
	for c := byte('A'); c <= 'Z'; c++ {
		alphabet = append(alphabet, c)
	}
	for c := byte('a'); c <= 'z'; c++ {
		alphabet = append(alphabet, c)
	}
	for c := byte('0'); c <= '9'; c++ {
		alphabet = append(alphabet, c)
	}
	var keys []string
	for _, c1 := range alphabet {
		for _, c2 := range alphabet[:5] {
			keys = append(keys, string([]byte{'F', 'A', 'N', c1, c2}))
		}
	}
	for i, k := range keys {
		if err := ix.Put([]byte(k), []byte(fmt.Sprintf("%03d", i%1000))); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		v, ok := ix.Get([]byte(k))
		if !ok || string(v) != fmt.Sprintf("%03d", i%1000) {
			t.Fatalf("Get(%q) after fanout growth = (%q,%v)", k, v, ok)
		}
	}
	// Delete in random order to walk back down through shrink thresholds.
	perm := rand.New(rand.NewSource(5)).Perm(len(keys))
	for n, j := range perm {
		if err := ix.Delete([]byte(keys[j])); err != nil {
			t.Fatalf("Delete(%q): %v", keys[j], err)
		}
		if n%64 == 0 {
			// Spot-check a surviving key.
			for _, jj := range perm[n+1:] {
				if _, ok := ix.Get([]byte(keys[jj])); !ok {
					t.Fatalf("key %q lost after %d deletions", keys[jj], n+1)
				}
				break
			}
		}
	}
	if ix.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", ix.Len())
	}
	check(t, ix)
}

// SharedPrefixes stresses path compression with long common prefixes and
// multi-level divergence.
func SharedPrefixes(t *testing.T, f Factory) {
	ix := f(t)
	defer ix.Close()
	keys := []string{
		"prefixprefixprefixA",
		"prefixprefixprefixB",
		"prefixprefixpreXY",
		"prefixprefix",
		"prefixP",
		"prefiA",
		"q",
	}
	for i, k := range keys {
		if err := ix.Put([]byte(k), []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	for i, k := range keys {
		v, ok := ix.Get([]byte(k))
		if !ok || string(v) != fmt.Sprintf("p%d", i) {
			t.Fatalf("Get(%q) = (%q,%v)", k, v, ok)
		}
	}
	// Remove middle links of the prefix chain.
	for _, k := range []string{"prefixprefix", "prefixprefixpreXY"} {
		if err := ix.Delete([]byte(k)); err != nil {
			t.Fatalf("Delete(%q): %v", k, err)
		}
	}
	for _, k := range []string{"prefixprefixprefixA", "prefixprefixprefixB", "prefixP", "prefiA", "q"} {
		if _, ok := ix.Get([]byte(k)); !ok {
			t.Fatalf("key %q lost after prefix-chain deletions", k)
		}
	}
	check(t, ix)
}
