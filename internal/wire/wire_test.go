package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// roundTripRequest encodes then decodes a request and returns the copy.
func roundTripRequest(t *testing.T, req Request) Request {
	t.Helper()
	p, err := req.AppendRequest(nil)
	if err != nil {
		t.Fatalf("encode %s: %v", req.Op, err)
	}
	got, err := DecodeRequest(p)
	if err != nil {
		t.Fatalf("decode %s: %v", req.Op, err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: []byte("alpha")},
		{Op: OpDelete, Key: []byte("k")},
		{Op: OpPut, Key: []byte("key"), Value: []byte("value-12")},
		{Op: OpScan, Start: []byte("a"), End: []byte("b"), Limit: 17},
		{Op: OpScan, Limit: 0}, // unbounded both sides
		{Op: OpScan, Start: []byte{}, End: nil, Limit: 3},
		{Op: OpPutBatch, Records: []Record{
			{Key: []byte("k1"), Value: []byte("v1")},
			{Key: []byte("k2"), Value: []byte("v2-longer")},
		}},
		{Op: OpStats},
	}
	for _, req := range reqs {
		got := roundTripRequest(t, req)
		if got.Op != req.Op || !bytes.Equal(got.Key, req.Key) || !bytes.Equal(got.Value, req.Value) {
			t.Fatalf("%s: round trip mangled key/value: %+v != %+v", req.Op, got, req)
		}
		if (got.Start == nil) != (req.Start == nil) || !bytes.Equal(got.Start, req.Start) {
			t.Fatalf("%s: start %v != %v", req.Op, got.Start, req.Start)
		}
		if (got.End == nil) != (req.End == nil) || !bytes.Equal(got.End, req.End) {
			t.Fatalf("%s: end %v != %v", req.Op, got.End, req.End)
		}
		if got.Limit != req.Limit || len(got.Records) != len(req.Records) {
			t.Fatalf("%s: limit/records mismatch: %+v != %+v", req.Op, got, req)
		}
		for i := range req.Records {
			if !bytes.Equal(got.Records[i].Key, req.Records[i].Key) ||
				!bytes.Equal(got.Records[i].Value, req.Records[i].Value) {
				t.Fatalf("%s: record %d mismatch", req.Op, i)
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		op   Op
		resp Response
	}{
		{OpGet, Response{Status: StatusOK, Value: []byte("payload")}},
		{OpGet, Response{Status: StatusNotFound, Msg: "not found"}},
		{OpPut, Response{Status: StatusOK}},
		{OpPut, Response{Status: StatusValueTooLong, Msg: "value exceeds maximum length"}},
		{OpDelete, Response{Status: StatusOK}},
		{OpScan, Response{Status: StatusOK, More: true, Records: []Record{
			{Key: []byte("a"), Value: []byte("1")},
			{Key: []byte("b"), Value: []byte("2")},
		}}},
		{OpScan, Response{Status: StatusOK}}, // empty page
		{OpPutBatch, Response{Status: StatusOK, Applied: 42}},
		{OpPutBatch, Response{Status: StatusServerError, Applied: 7, Msg: "arena full"}},
		{OpStats, Response{Status: StatusOK, Value: []byte(`{"records":3}`)}},
	}
	for _, c := range cases {
		p, err := c.resp.AppendResponse(nil, c.op)
		if err != nil {
			t.Fatalf("encode %s response: %v", c.op, err)
		}
		got, err := DecodeResponse(p, c.op)
		if err != nil {
			t.Fatalf("decode %s response: %v", c.op, err)
		}
		if got.Status != c.resp.Status || got.Applied != c.resp.Applied ||
			got.More != c.resp.More || got.Msg != c.resp.Msg ||
			!bytes.Equal(got.Value, c.resp.Value) || len(got.Records) != len(c.resp.Records) {
			t.Fatalf("%s: round trip %+v != %+v", c.op, got, c.resp)
		}
	}
}

// TestDecodeRequestErrors drives the decoder through every refusal
// class: short frames, version and opcode garbage, lengths past the
// payload and counts that outrun the bytes present.
func TestDecodeRequestErrors(t *testing.T) {
	put, _ := (&Request{Op: OpPut, Key: []byte("key"), Value: []byte("val")}).AppendRequest(nil)

	cases := []struct {
		name string
		p    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"version-only", []byte{Version}, ErrTruncated},
		{"bad-version", []byte{Version + 9, byte(OpGet)}, ErrBadVersion},
		{"bad-op", []byte{Version, 0}, ErrBadOp},
		{"bad-op-high", []byte{Version, 200}, ErrBadOp},
		{"get-no-key", []byte{Version, byte(OpGet)}, ErrTruncated},
		{"get-key-past-end", []byte{Version, byte(OpGet), 0xff, 0xff, 'k'}, ErrTooLong},
		{"put-truncated", put[:len(put)-1], ErrTooLong},
		{"put-trailing", append(append([]byte{}, put...), 0), ErrTruncated},
		{"scan-no-flags", []byte{Version, byte(OpScan)}, ErrTruncated},
		{"scan-missing-limit", []byte{Version, byte(OpScan), 0}, ErrTruncated},
		{"batch-count-overrun", []byte{Version, byte(OpPutBatch), 0xff, 0xff, 0xff, 0xff}, ErrTruncated},
		{"batch-count-vs-bytes", append([]byte{Version, byte(OpPutBatch), 0, 0, 0, 9}, make([]byte, 16)...), ErrTruncated},
	}
	for _, c := range cases {
		if _, err := DecodeRequest(c.p); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

// TestDecodeBoundedAllocation pins the over-allocation defence: a batch
// claiming 2^32-1 records over a tiny payload must be refused before
// any record slice is sized from the claim (a panic or an OOM here
// would be the bug; the assertion is just that it errors).
func TestDecodeBoundedAllocation(t *testing.T) {
	p := []byte{Version, byte(OpPutBatch)}
	p = binary.BigEndian.AppendUint32(p, 0xffffffff)
	p = append(p, make([]byte, 64)...)
	if _, err := DecodeRequest(p); !errors.Is(err, ErrTruncated) {
		t.Fatalf("hostile count: err = %v, want ErrTruncated", err)
	}

	// Same for a Scan response's record count.
	rp := []byte{Version, byte(StatusOK)}
	rp = binary.BigEndian.AppendUint32(rp, 0x7fffffff)
	rp = append(rp, make([]byte, 32)...)
	if _, err := DecodeResponse(rp, OpScan); !errors.Is(err, ErrTruncated) {
		t.Fatalf("hostile scan count: err = %v, want ErrTruncated", err)
	}
}

func TestReadFrame(t *testing.T) {
	var stream []byte
	stream = AppendFrame(stream, []byte("first"))
	stream = AppendFrame(stream, []byte(""))
	stream = AppendFrame(stream, []byte("third-frame"))
	r := bytes.NewReader(stream)
	buf := make([]byte, 0, 8)
	for _, want := range []string{"first", "", "third-frame"} {
		got, err := ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("ReadFrame(%q): %v", want, err)
		}
		if string(got) != want {
			t.Fatalf("ReadFrame = %q, want %q", got, want)
		}
		buf = got
	}
	if _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("stream end: err = %v, want io.EOF", err)
	}

	// Oversized length prefix is refused before any allocation.
	huge := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(huge), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err = %v, want ErrFrameTooLarge", err)
	}

	// A frame cut off mid-payload is ErrTruncated, not a hang or EOF.
	cut := AppendFrame(nil, []byte("abcdef"))
	if _, err := ReadFrame(bytes.NewReader(cut[:len(cut)-2]), nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("cut frame: err = %v, want ErrTruncated", err)
	}
	if _, err := ReadFrame(bytes.NewReader(cut[:2]), nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("cut header: err = %v, want ErrTruncated", err)
	}
}

// TestRequestEncodeRefusals pins encoder-side limits: oversized keys
// and frames are refused at encode time, not sent and bounced.
func TestRequestEncodeRefusals(t *testing.T) {
	if _, err := (&Request{Op: OpGet, Key: make([]byte, 1<<17)}).AppendRequest(nil); !errors.Is(err, ErrTooLong) {
		t.Fatalf("oversized key: err = %v, want ErrTooLong", err)
	}
	big := Request{Op: OpPutBatch}
	for i := 0; i < 40; i++ {
		big.Records = append(big.Records, Record{Key: []byte{byte(i)}, Value: make([]byte, 1<<15)})
	}
	if _, err := big.AppendRequest(nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized batch: err = %v, want ErrFrameTooLarge", err)
	}
	if _, err := (&Request{Op: Op(99)}).AppendRequest(nil); !errors.Is(err, ErrBadOp) {
		t.Fatalf("bad op: err = %v, want ErrBadOp", err)
	}
}
