// Package wire defines hartd's binary protocol: the length-prefixed
// framing and the request/response encodings shared by the server
// (internal/server) and the public client package.
//
// Every message travels as one frame — a 4-byte big-endian payload
// length followed by that many payload bytes, capped at MaxFrame so a
// corrupt or hostile length prefix can neither stall the reader on a
// gigantic read nor balloon its buffer. The payload starts with a
// 2-byte header (protocol version, then opcode for requests or status
// for responses) and continues with the op-specific body.
//
// Request bodies (all integers big-endian):
//
//	Get      klen:u16 key
//	Put      klen:u16 key vlen:u32 value
//	Delete   klen:u16 key
//	Scan     flags:u8 [slen:u16 start] [elen:u16 end] limit:u32
//	         (flags bit0 = start present, bit1 = end present; an absent
//	         bound scans from the bottom / to the top of the keyspace)
//	PutBatch count:u32 then count × (klen:u16 key vlen:u32 value)
//	Stats    (empty)
//
// Response bodies:
//
//	Get      value (rest of frame; StatusNotFound carries none)
//	Put      (empty)
//	Delete   (empty)
//	Scan     count:u32 then count × (klen:u16 key vlen:u32 value),
//	         then more:u8 (1 = the range continues past the last record)
//	PutBatch applied:u32
//	Stats    JSON document (StatsPayload)
//
// A non-OK status replaces the body with a human-readable message
// (except PutBatch, whose error body still leads with applied:u32 so a
// partially applied batch reports how far it got).
//
// Decoding is defensive end to end: truncated frames, lengths pointing
// past the payload, unknown opcodes/statuses and version mismatches all
// return errors — never panic — and claimed element counts are bounded
// by the bytes actually present before any slice is sized from them.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version byte. A peer speaking a different
// version is refused at the first frame.
const Version = 1

// MaxFrame bounds one frame's payload. It comfortably holds the largest
// legitimate message (a full scan page or a several-thousand-record
// batch) while capping what a corrupt length prefix can make a reader
// allocate.
const MaxFrame = 1 << 20

// MaxScanPage is the most records a server packs into one Scan
// response; a range with more sets the response's More flag and the
// client continues after the last returned key.
const MaxScanPage = 4096

// Op identifies a request's operation.
type Op byte

// Request opcodes.
const (
	OpGet      Op = 1
	OpPut      Op = 2
	OpDelete   Op = 3
	OpScan     Op = 4
	OpPutBatch Op = 5
	OpStats    Op = 6
)

// opNames doubles as the valid-opcode set for the decoder.
var opNames = map[Op]string{
	OpGet: "Get", OpPut: "Put", OpDelete: "Delete",
	OpScan: "Scan", OpPutBatch: "PutBatch", OpStats: "Stats",
}

// String returns the op's wire name.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", byte(o))
}

// Status is a response's outcome code.
type Status byte

// Response statuses.
const (
	StatusOK Status = 0
	// StatusNotFound reports a missing key (Get miss, Delete of an
	// absent key). It is an outcome, not a protocol failure.
	StatusNotFound Status = 1
	// StatusBadRequest reports a semantically invalid request the store
	// refused (empty key, malformed scan bounds).
	StatusBadRequest Status = 2
	// StatusKeyTooLong / StatusValueTooLong report the store's limits.
	StatusKeyTooLong   Status = 3
	StatusValueTooLong Status = 4
	// StatusClosed reports a store already shut down.
	StatusClosed Status = 5
	// StatusServerError reports any other store-side failure (for a
	// PutBatch, the body's applied count says how much committed).
	StatusServerError Status = 6
)

var statusNames = map[Status]string{
	StatusOK: "ok", StatusNotFound: "not found", StatusBadRequest: "bad request",
	StatusKeyTooLong: "key too long", StatusValueTooLong: "value too long",
	StatusClosed: "store closed", StatusServerError: "server error",
}

// String returns the status's description.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Status(%d)", byte(s))
}

// Decoder errors. ErrFrameTooLarge is also returned by ReadFrame for a
// length prefix above MaxFrame.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("wire: truncated message")
	ErrBadVersion    = errors.New("wire: protocol version mismatch")
	ErrBadOp         = errors.New("wire: unknown opcode")
	ErrBadStatus     = errors.New("wire: unknown status")
	ErrTooLong       = errors.New("wire: element exceeds frame bounds")
)

// Record is one key-value pair (PutBatch requests, Scan responses).
type Record struct {
	Key   []byte
	Value []byte
}

// Request is one decoded client request. Which fields are meaningful
// depends on Op; the zero value of the rest is ignored by encoders.
type Request struct {
	Op Op
	// Key and Value serve Get/Put/Delete.
	Key   []byte
	Value []byte
	// Start/End bound a Scan; nil means unbounded on that side (the
	// HasStart/HasEnd flags distinguish nil from empty on the wire).
	Start, End []byte
	// Limit caps a Scan's record count; 0 means MaxScanPage. The server
	// clamps to MaxScanPage either way.
	Limit uint32
	// Records carries a PutBatch.
	Records []Record
}

// Response is one decoded server response. Field relevance follows the
// request op the response answers (responses arrive in request order,
// so the client always knows it).
type Response struct {
	Status Status
	// Value is a Get hit's payload.
	Value []byte
	// Records and More answer a Scan: the page of records, and whether
	// the range continues beyond it.
	Records []Record
	More    bool
	// Applied is a PutBatch's committed-record count (meaningful on
	// errors too: the durably applied prefix).
	Applied uint32
	// Msg is the error detail accompanying a non-OK status.
	Msg string
}

// StatsPayload is the JSON document a Stats response carries.
type StatsPayload struct {
	// Records is the store's live record count; ARTs its shard count.
	Records int `json:"records"`
	ARTs    int `json:"arts"`
	// Counters/Hists/Events mirror hart's obs.Snapshot.
	Counters map[string]uint64      `json:"counters"`
	Hists    map[string]HistSummary `json:"hists,omitempty"`
	Server   map[string]uint64      `json:"server,omitempty"`
}

// HistSummary mirrors obs.HistVal without importing it (the wire
// package stays dependency-free so the client pulls in nothing else).
type HistSummary struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  uint64  `json:"p50_ns"`
	P95Ns  uint64  `json:"p95_ns"`
	P99Ns  uint64  `json:"p99_ns"`
	MaxNs  uint64  `json:"max_ns"`
}

// AppendFrame appends payload's frame (length prefix + payload) to dst.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrame reads one frame's payload from r, reusing buf when it is
// large enough. It returns ErrFrameTooLarge for a length prefix above
// MaxFrame (the connection is then unusable — framing is lost) and the
// underlying read error otherwise, io.EOF only when the stream ends
// cleanly between frames.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	return buf, nil
}

// reader walks a payload with bounds-checked cursor reads; all take-
// methods fail with ErrTruncated/ErrTooLong instead of slicing past the
// end, which is what makes the decoders panic-free on arbitrary input.
type reader struct {
	p   []byte
	off int
}

func (r *reader) remaining() int { return len(r.p) - r.off }

func (r *reader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, ErrTruncated
	}
	b := r.p[r.off]
	r.off++
	return b, nil
}

func (r *reader) u16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(r.p[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v, nil
}

// bytes takes n bytes without copying; the caller owns deciding whether
// the frame buffer outlives the decoded message (the server copies keys
// it retains, the client hands values straight to the caller).
func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, ErrTooLong
	}
	b := r.p[r.off : r.off+n : r.off+n]
	r.off += n
	return b, nil
}

// lenBytes reads a u16 length then that many bytes.
func (r *reader) lenBytes() ([]byte, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	return r.bytes(int(n))
}

// lenBytes32 reads a u32 length then that many bytes.
func (r *reader) lenBytes32() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > uint32(r.remaining()) {
		return nil, ErrTooLong
	}
	return r.bytes(int(n))
}

// header decodes the shared version byte and the op/status byte.
func (r *reader) header() (byte, error) {
	v, err := r.byte()
	if err != nil {
		return 0, err
	}
	if v != Version {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, v, Version)
	}
	return r.byte()
}

// appendLenBytes appends a u16 length prefix and the bytes.
func appendLenBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(b)))
	return append(dst, b...)
}

// appendLenBytes32 appends a u32 length prefix and the bytes.
func appendLenBytes32(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// minRecordBytes is the smallest possible encoded record (1-byte key,
// 1-byte value): the divisor bounding claimed PutBatch/Scan counts.
const minRecordBytes = 2 + 1 + 4 + 1

// scanFlags bits.
const (
	flagHasStart = 1 << 0
	flagHasEnd   = 1 << 1
)

// AppendRequest appends req's encoded payload (no frame prefix) to dst.
// It returns an error for keys or values longer than their length
// fields can carry, and for a message that would exceed MaxFrame.
func (req *Request) AppendRequest(dst []byte) ([]byte, error) {
	if _, ok := opNames[req.Op]; !ok {
		return nil, ErrBadOp
	}
	start := len(dst)
	dst = append(dst, Version, byte(req.Op))
	var err error
	switch req.Op {
	case OpGet, OpDelete:
		if dst, err = appendSizedKey(dst, req.Key); err != nil {
			return nil, err
		}
	case OpPut:
		if dst, err = appendSizedKey(dst, req.Key); err != nil {
			return nil, err
		}
		dst = appendLenBytes32(dst, req.Value)
	case OpScan:
		var flags byte
		if req.Start != nil {
			flags |= flagHasStart
		}
		if req.End != nil {
			flags |= flagHasEnd
		}
		dst = append(dst, flags)
		if req.Start != nil {
			if dst, err = appendSizedKey(dst, req.Start); err != nil {
				return nil, err
			}
		}
		if req.End != nil {
			if dst, err = appendSizedKey(dst, req.End); err != nil {
				return nil, err
			}
		}
		dst = binary.BigEndian.AppendUint32(dst, req.Limit)
	case OpPutBatch:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(req.Records)))
		for _, r := range req.Records {
			if dst, err = appendSizedKey(dst, r.Key); err != nil {
				return nil, err
			}
			dst = appendLenBytes32(dst, r.Value)
		}
	case OpStats:
		// empty body
	}
	if len(dst)-start > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return dst, nil
}

// appendSizedKey bounds keys (and scan bounds) to the u16 length field.
func appendSizedKey(dst, key []byte) ([]byte, error) {
	if len(key) > 0xffff {
		return nil, ErrTooLong
	}
	return appendLenBytes(dst, key), nil
}

// DecodeRequest decodes one request payload. The returned request's
// byte slices alias p — copy anything retained past the frame buffer's
// reuse.
func DecodeRequest(p []byte) (Request, error) {
	r := reader{p: p}
	opB, err := r.header()
	if err != nil {
		return Request{}, err
	}
	req := Request{Op: Op(opB)}
	if _, ok := opNames[req.Op]; !ok {
		return Request{}, fmt.Errorf("%w: %d", ErrBadOp, opB)
	}
	switch req.Op {
	case OpGet, OpDelete:
		if req.Key, err = r.lenBytes(); err != nil {
			return Request{}, err
		}
	case OpPut:
		if req.Key, err = r.lenBytes(); err != nil {
			return Request{}, err
		}
		if req.Value, err = r.lenBytes32(); err != nil {
			return Request{}, err
		}
	case OpScan:
		flags, err := r.byte()
		if err != nil {
			return Request{}, err
		}
		if flags&flagHasStart != 0 {
			if req.Start, err = r.lenBytes(); err != nil {
				return Request{}, err
			}
			if req.Start == nil {
				req.Start = []byte{}
			}
		}
		if flags&flagHasEnd != 0 {
			if req.End, err = r.lenBytes(); err != nil {
				return Request{}, err
			}
			if req.End == nil {
				req.End = []byte{}
			}
		}
		if req.Limit, err = r.u32(); err != nil {
			return Request{}, err
		}
	case OpPutBatch:
		count, err := r.u32()
		if err != nil {
			return Request{}, err
		}
		// Bound the claimed count by the bytes actually present before
		// sizing anything from it: a hostile count can then cost at most
		// remaining/minRecordBytes slice headers, never gigabytes.
		if int64(count)*minRecordBytes > int64(r.remaining()) {
			return Request{}, fmt.Errorf("%w: %d records in %d bytes", ErrTruncated, count, r.remaining())
		}
		req.Records = make([]Record, 0, count)
		for i := uint32(0); i < count; i++ {
			var rec Record
			if rec.Key, err = r.lenBytes(); err != nil {
				return Request{}, err
			}
			if rec.Value, err = r.lenBytes32(); err != nil {
				return Request{}, err
			}
			req.Records = append(req.Records, rec)
		}
	case OpStats:
		// empty body
	}
	if r.remaining() != 0 {
		return Request{}, fmt.Errorf("%w: %d trailing bytes after %s", ErrTruncated, r.remaining(), req.Op)
	}
	return req, nil
}

// AppendResponse appends resp's encoded payload (no frame prefix) to
// dst. op is the request op the response answers.
func (resp *Response) AppendResponse(dst []byte, op Op) ([]byte, error) {
	if _, ok := statusNames[resp.Status]; !ok {
		return nil, ErrBadStatus
	}
	start := len(dst)
	dst = append(dst, Version, byte(resp.Status))
	if resp.Status != StatusOK {
		if op == OpPutBatch {
			dst = binary.BigEndian.AppendUint32(dst, resp.Applied)
		}
		dst = append(dst, resp.Msg...)
		if len(dst)-start > MaxFrame {
			return nil, ErrFrameTooLarge
		}
		return dst, nil
	}
	switch op {
	case OpGet, OpStats:
		dst = append(dst, resp.Value...)
	case OpPut, OpDelete:
		// empty body
	case OpScan:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Records)))
		var err error
		for _, rec := range resp.Records {
			if dst, err = appendSizedKey(dst, rec.Key); err != nil {
				return nil, err
			}
			dst = appendLenBytes32(dst, rec.Value)
		}
		more := byte(0)
		if resp.More {
			more = 1
		}
		dst = append(dst, more)
	case OpPutBatch:
		dst = binary.BigEndian.AppendUint32(dst, resp.Applied)
	default:
		return nil, ErrBadOp
	}
	if len(dst)-start > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return dst, nil
}

// DecodeResponse decodes one response payload answering op. The
// returned slices alias p.
func DecodeResponse(p []byte, op Op) (Response, error) {
	if _, ok := opNames[op]; !ok {
		return Response{}, ErrBadOp
	}
	r := reader{p: p}
	stB, err := r.header()
	if err != nil {
		return Response{}, err
	}
	resp := Response{Status: Status(stB)}
	if _, ok := statusNames[resp.Status]; !ok {
		return Response{}, fmt.Errorf("%w: %d", ErrBadStatus, stB)
	}
	if resp.Status != StatusOK {
		if op == OpPutBatch {
			if resp.Applied, err = r.u32(); err != nil {
				return Response{}, err
			}
		}
		msg, _ := r.bytes(r.remaining())
		resp.Msg = string(msg)
		return resp, nil
	}
	switch op {
	case OpGet, OpStats:
		resp.Value, _ = r.bytes(r.remaining())
	case OpPut, OpDelete:
		// empty body
	case OpScan:
		count, err := r.u32()
		if err != nil {
			return Response{}, err
		}
		if int64(count)*minRecordBytes > int64(r.remaining()) {
			return Response{}, fmt.Errorf("%w: %d records in %d bytes", ErrTruncated, count, r.remaining())
		}
		resp.Records = make([]Record, 0, count)
		for i := uint32(0); i < count; i++ {
			var rec Record
			if rec.Key, err = r.lenBytes(); err != nil {
				return Response{}, err
			}
			if rec.Value, err = r.lenBytes32(); err != nil {
				return Response{}, err
			}
			resp.Records = append(resp.Records, rec)
		}
		more, err := r.byte()
		if err != nil {
			return Response{}, err
		}
		resp.More = more != 0
	case OpPutBatch:
		if resp.Applied, err = r.u32(); err != nil {
			return Response{}, err
		}
	}
	if r.remaining() != 0 {
		return Response{}, fmt.Errorf("%w: %d trailing bytes after %s response", ErrTruncated, r.remaining(), op)
	}
	return resp, nil
}
