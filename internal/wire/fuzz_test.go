package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at both decoders. The
// properties under test:
//
//   - no input panics (the reader's bounds checks are the only guard —
//     there is no recover anywhere in the package);
//   - no input makes the decoder allocate beyond the input's own size
//     class (claimed record counts are bounded by bytes present, so a
//     decoded message can never hold more records than len(p)/8);
//   - anything that decodes re-encodes to a payload that decodes to the
//     same message (the codec is a bijection on its valid set).
func FuzzWireDecode(f *testing.F) {
	// Every op's happy path, so the fuzzer starts inside the format.
	seedReqs := []Request{
		{Op: OpGet, Key: []byte("seed-key")},
		{Op: OpPut, Key: []byte("k"), Value: []byte("v")},
		{Op: OpDelete, Key: []byte("gone")},
		{Op: OpScan, Start: []byte("a"), End: []byte("z"), Limit: 128},
		{Op: OpPutBatch, Records: []Record{
			{Key: []byte("b1"), Value: []byte("v1")},
			{Key: []byte("b2"), Value: []byte("v2")},
		}},
		{Op: OpStats},
	}
	for _, r := range seedReqs {
		p, err := r.AppendRequest(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
	}
	scan := Response{Status: StatusOK, More: true,
		Records: []Record{{Key: []byte("k"), Value: []byte("v")}}}
	if p, err := scan.AppendResponse(nil, OpScan); err == nil {
		f.Add(p)
	}
	// Adversarial seeds: truncations, hostile counts, bad headers.
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version + 1, byte(OpGet), 0, 1, 'k'})
	f.Add([]byte{Version, byte(OpPutBatch), 0xff, 0xff, 0xff, 0xff, 0, 0})
	f.Add([]byte{Version, byte(OpGet), 0xff, 0xff})

	f.Fuzz(func(t *testing.T, p []byte) {
		if req, err := DecodeRequest(p); err == nil {
			if len(req.Records) > len(p)/minRecordBytes {
				t.Fatalf("decoder accepted %d records from %d bytes", len(req.Records), len(p))
			}
			re, err := req.AppendRequest(nil)
			if err != nil {
				t.Fatalf("re-encode of decoded request failed: %v", err)
			}
			req2, err := DecodeRequest(re)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if req2.Op != req.Op || !bytes.Equal(req2.Key, req.Key) ||
				!bytes.Equal(req2.Value, req.Value) || len(req2.Records) != len(req.Records) {
				t.Fatalf("request round trip diverged: %+v != %+v", req2, req)
			}
		}
		for _, op := range []Op{OpGet, OpPut, OpDelete, OpScan, OpPutBatch, OpStats} {
			if resp, err := DecodeResponse(p, op); err == nil {
				if len(resp.Records) > len(p)/minRecordBytes {
					t.Fatalf("%s decoder accepted %d records from %d bytes", op, len(resp.Records), len(p))
				}
				re, err := resp.AppendResponse(nil, op)
				if err != nil {
					t.Fatalf("%s: re-encode of decoded response failed: %v", op, err)
				}
				if _, err := DecodeResponse(re, op); err != nil {
					t.Fatalf("%s: re-decode failed: %v", op, err)
				}
			}
		}
	})
}
