package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/casl-sdsu/hart/internal/obs"
)

// Observability-overhead experiment (BENCH_obs.json): the same store and
// workload measured with metrics off (the default: counters only, no
// clock reads) and on (latency histograms around every operation and
// every arena persist). The acceptance bar is the PR 9 design budget —
// the off mode stays within noise of an uninstrumented build with zero
// allocations per read, the on mode costs at most ~10% — and a live
// Prometheus scrape of the instrumented store must return non-zero op
// counters and sane p99s.

// ObsResult is one measured cell, shaped like a ReadPathResult so
// benchdiff.sh's generic (mode, op, threads) → ns_per_op reader applies.
type ObsResult struct {
	// Mode is "off" (metrics disabled) or "on" (histograms enabled).
	Mode string `json:"mode"`
	// Op is Get or Put.
	Op string `json:"op"`
	// Threads is the GOMAXPROCS / parallel-worker count.
	Threads int `json:"threads"`
	// NsPerOp is the mean wall-clock cost per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the mean heap allocations per operation (the off-mode
	// Get row must report 0).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MOPS is millions of operations per second (all workers combined).
	MOPS float64 `json:"mops"`
}

// ObsReport is the BENCH_obs.json document.
type ObsReport struct {
	// Records is the preloaded record count; ValueSize its payload bytes.
	Records   int `json:"records"`
	ValueSize int `json:"value_size"`
	NumCPU    int `json:"num_cpu"`
	Results   []ObsResult `json:"results"`
	// OverheadPct maps "<op>/t<threads>" to the enabled-mode cost increase
	// in percent: (on − off) ÷ off × 100.
	OverheadPct map[string]float64 `json:"overhead_pct"`
	// PromOpsGet and PromGetP99Ns are scraped from a live HTTP /metrics
	// exposition of the instrumented store: the hart_ops_get counter and
	// the hart_ops_get_ns{quantile="0.99"} summary value.
	PromOpsGet   uint64  `json:"prom_ops_get"`
	PromGetP99Ns float64 `json:"prom_get_p99_ns"`
	// Metrics is the store's final snapshot.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// RunObs measures the metrics-overhead comparison and returns the report.
func RunObs(c Config) (*ObsReport, error) {
	c = c.WithDefaults()
	// Power-of-two record count for mask indexing.
	n := 1
	for n*2 <= c.Records {
		n *= 2
	}
	c.Records = n

	rep := &ObsReport{
		Records:     c.Records,
		ValueSize:   c.ValueSize,
		NumCPU:      runtime.NumCPU(),
		OverheadPct: map[string]float64{},
	}
	threads := c.PathThreads
	if len(threads) == 0 {
		threads = []int{1, 4, 8}
	}

	// One store serves both modes: EnableMetrics only flips the gates, so
	// the off/on comparison sees identical data and directory geometry.
	h, keys, err := readPathIndex(c, false)
	if err != nil {
		return nil, err
	}
	defer h.Close()

	// Each (op, threads) cell measures off and on back-to-back and keeps
	// the best of several interleaved reps per mode: the comparison
	// divides two measurements of the same sub-microsecond op, so both
	// scheduler noise and slow ambient drift (a later pass running on a
	// busier machine) would otherwise dominate the ratio. The minimum of
	// several runs is the standard estimator for the uncontended cost.
	const reps = 3
	for _, t := range threads {
		for _, op := range []string{"Get", "Put"} {
			best := map[string]ObsResult{}
			for i := 0; i < reps; i++ {
				for _, mode := range []string{"off", "on"} {
					fmt.Fprintf(c.Out, "obs: metrics=%s %s threads=%d rep %d/%d...\n", mode, op, t, i+1, reps)
					h.EnableMetrics(mode == "on")
					var rr ObsResult
					if op == "Get" {
						g := benchReadOp(h, keys, t, "Get")
						rr = ObsResult{Op: g.Op, Threads: g.Threads, NsPerOp: g.NsPerOp,
							AllocsPerOp: g.AllocsPerOp, MOPS: g.MOPS}
					} else {
						w := benchWriteOp(h, keys, t, "Put", c.ValueSize)
						rr = ObsResult{Op: w.Op, Threads: w.Threads, NsPerOp: w.NsPerOp,
							AllocsPerOp: w.AllocsPerOp, MOPS: w.MOPS}
					}
					rr.Mode = mode
					if b, ok := best[mode]; !ok || rr.NsPerOp < b.NsPerOp {
						best[mode] = rr
					}
				}
			}
			key := fmt.Sprintf("%s/t%d", op, t)
			rep.Results = append(rep.Results, best["off"], best["on"])
			rep.OverheadPct[key] = (best["on"].NsPerOp - best["off"].NsPerOp) / best["off"].NsPerOp * 100
		}
	}
	h.EnableMetrics(true)

	// Live scrape: serve the store's snapshot over HTTP on an ephemeral
	// port and read the exposition back like a Prometheus collector would.
	opsGet, p99, err := scrapeProm(h.Metrics)
	if err != nil {
		return nil, fmt.Errorf("bench: prometheus scrape: %w", err)
	}
	if opsGet == 0 {
		return nil, fmt.Errorf("bench: scraped hart_ops_get = 0 after a full run")
	}
	if p99 <= 0 || p99 > 60e9 {
		return nil, fmt.Errorf("bench: scraped get p99 %.0f ns is not sane", p99)
	}
	rep.PromOpsGet = opsGet
	rep.PromGetP99Ns = p99

	m := h.Metrics()
	rep.Metrics = &m
	return rep, nil
}

// scrapeProm serves fn over HTTP on a loopback ephemeral port, fetches
// the exposition once, and extracts the hart_ops_get counter and the
// hart_ops_get_ns p99 quantile.
func scrapeProm(fn func() obs.Snapshot) (opsGet uint64, p99 float64, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	srv := &http.Server{Handler: obs.Handler(fn)}
	go srv.Serve(ln)
	defer srv.Close()

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case strings.HasPrefix(line, "hart_ops_get "):
			opsGet, _ = strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, `hart_ops_get_ns{quantile="0.99"}`):
			p99, _ = strconv.ParseFloat(strings.Fields(line)[1], 64)
		}
	}
	return opsGet, p99, nil
}

// WriteJSON writes the report as indented JSON.
func (r *ObsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FprintTable renders the report for the terminal.
func (r *ObsReport) FprintTable(w io.Writer) {
	fmt.Fprintf(w, "\n== Observability overhead: metrics off vs on (records=%d, value=%dB, NumCPU=%d) ==\n",
		r.Records, r.ValueSize, r.NumCPU)
	fmt.Fprintf(w, "%-6s %-6s %-8s %12s %10s %10s\n", "mode", "op", "threads", "ns/op", "allocs/op", "Mops/s")
	for _, res := range r.Results {
		fmt.Fprintf(w, "%-6s %-6s %-8d %12.1f %10.2f %10.3f\n",
			res.Mode, res.Op, res.Threads, res.NsPerOp, res.AllocsPerOp, res.MOPS)
	}
	for _, k := range sortedKeys(r.OverheadPct) {
		fmt.Fprintf(w, "overhead %-10s %+6.2f%%\n", k, r.OverheadPct[k])
	}
	fmt.Fprintf(w, "prom scrape: hart_ops_get=%d get_p99=%.0fns\n", r.PromOpsGet, r.PromGetP99Ns)
}
