package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/obs"
	"github.com/casl-sdsu/hart/internal/workload"
)

// Read-path experiment: lock-free optimistic reads (atomic directory
// snapshot + COW tree + per-shard seqlock) against the paper's original
// two-lock read protocol, reproduced bit-for-bit by core's LockedReads
// option. Latency injection is off — the experiment isolates the
// synchronisation and allocation cost of the read path itself, which PM
// read penalties (identical in both modes) would only dilute.

// ReadPathResult is one measured cell of the read-path comparison.
type ReadPathResult struct {
	// Mode is "locked" (baseline) or "lockfree".
	Mode string `json:"mode"`
	// Op is Get, GetInto, Contains or Mixed95/5.
	Op string `json:"op"`
	// Threads is the GOMAXPROCS / parallel-worker count.
	Threads int `json:"threads"`
	// NsPerOp is the mean wall-clock cost per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the mean heap allocations per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MOPS is millions of operations per second (all workers combined).
	MOPS float64 `json:"mops"`
}

// ReadPathReport is the BENCH_readpath.json document.
type ReadPathReport struct {
	// Records is the preloaded record count; ValueSize its payload bytes.
	Records   int `json:"records"`
	ValueSize int `json:"value_size"`
	// NumCPU records the machine's parallelism so speedups can be read in
	// context (on a single-core host the win is lock/alloc elimination,
	// not parallel scaling).
	NumCPU  int              `json:"num_cpu"`
	Results []ReadPathResult `json:"results"`
	// SpeedupGet maps "t<threads>" to locked-Get ns/op ÷ lock-free Get
	// ns/op; SpeedupGetInto likewise against zero-alloc GetInto.
	SpeedupGet     map[string]float64 `json:"speedup_get"`
	SpeedupGetInto map[string]float64 `json:"speedup_getinto"`
	// Metrics is the lock-free store's observability snapshot after its
	// measurement pass (counters like read.seq_retries put the ns/op cells
	// in context).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// readPathIndex builds a HART with latency off and the given read mode.
func readPathIndex(c Config, locked bool) (*core.HART, [][]byte, error) {
	h, err := core.New(core.Options{
		ArenaSize:       arenaSize("HART", c.Records),
		UnloggedUpdates: true,
		LockedReads:     locked,
	})
	if err != nil {
		return nil, nil, err
	}
	keys := workload.Random(c.Records, c.Seed)
	val := make([]byte, c.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for _, k := range keys {
		if err := h.Put(k, val); err != nil {
			return nil, nil, err
		}
	}
	setLive(h.Metrics)
	return h, keys, nil
}

// benchReadOp measures one op at one thread count via the testing
// harness (b.RunParallel over GOMAXPROCS workers).
func benchReadOp(h *core.HART, keys [][]byte, threads int, op string) ReadPathResult {
	prev := runtime.GOMAXPROCS(threads)
	defer runtime.GOMAXPROCS(prev)
	mask := len(keys) - 1 // Records is kept a power of two by RunReadPath
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			rng := newRng(int64(threads)*1009 + 7)
			buf := make([]byte, 0, 64)
			val := []byte("deadbeef")
			for pb.Next() {
				k := keys[int(rng.next())&mask]
				switch op {
				case "Get":
					if _, ok := h.Get(k); !ok {
						b.Fatal("miss")
					}
				case "GetInto":
					if _, ok := h.GetInto(k, buf); !ok {
						b.Fatal("miss")
					}
				case "Contains":
					if !h.Contains(k) {
						b.Fatal("miss")
					}
				case "Mixed95/5":
					if rng.next()%100 < 5 {
						if err := h.Put(k, val); err != nil {
							b.Fatal(err)
						}
					} else if _, ok := h.GetInto(k, buf); !ok {
						b.Fatal("miss")
					}
				}
			}
		})
	})
	ns := float64(res.NsPerOp())
	return ReadPathResult{
		Op:          op,
		Threads:     threads,
		NsPerOp:     ns,
		AllocsPerOp: float64(res.MemAllocs) / float64(res.N),
		MOPS:        1e3 / ns, // 1e9 ns/s ÷ ns/op ÷ 1e6
	}
}

// RunReadPath measures the read-path comparison and returns the report.
func RunReadPath(c Config) (*ReadPathReport, error) {
	c = c.WithDefaults()
	// Power-of-two record count for mask indexing.
	n := 1
	for n*2 <= c.Records {
		n *= 2
	}
	c.Records = n

	rep := &ReadPathReport{
		Records:        c.Records,
		ValueSize:      c.ValueSize,
		NumCPU:         runtime.NumCPU(),
		SpeedupGet:     map[string]float64{},
		SpeedupGetInto: map[string]float64{},
	}
	threads := c.PathThreads
	if len(threads) == 0 {
		threads = []int{1, 4, 8}
	}
	lockedGet := map[int]float64{}

	for _, locked := range []bool{true, false} {
		mode := "lockfree"
		ops := []string{"Get", "GetInto", "Contains", "Mixed95/5"}
		if locked {
			mode = "locked"
			ops = []string{"Get", "Mixed95/5"} // the baseline API had no GetInto
		}
		h, keys, err := readPathIndex(c, locked)
		if err != nil {
			return nil, err
		}
		for _, t := range threads {
			for _, op := range ops {
				fmt.Fprintf(c.Out, "readpath: %s %s threads=%d...\n", mode, op, t)
				r := benchReadOp(h, keys, t, op)
				r.Mode = mode
				rep.Results = append(rep.Results, r)
				key := fmt.Sprintf("t%d", t)
				switch {
				case locked && op == "Get":
					lockedGet[t] = r.NsPerOp
				case !locked && op == "Get":
					rep.SpeedupGet[key] = lockedGet[t] / r.NsPerOp
				case !locked && op == "GetInto":
					rep.SpeedupGetInto[key] = lockedGet[t] / r.NsPerOp
				}
			}
		}
		if !locked {
			m := h.Metrics()
			rep.Metrics = &m
		}
		h.Close()
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *ReadPathReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FprintTable renders the report for the terminal.
func (r *ReadPathReport) FprintTable(w io.Writer) {
	fmt.Fprintf(w, "\n== Read path: locked baseline vs lock-free (records=%d, value=%dB, NumCPU=%d) ==\n",
		r.Records, r.ValueSize, r.NumCPU)
	fmt.Fprintf(w, "%-10s %-10s %-8s %12s %10s %10s\n", "mode", "op", "threads", "ns/op", "allocs/op", "Mops/s")
	for _, res := range r.Results {
		fmt.Fprintf(w, "%-10s %-10s %-8d %12.1f %10.2f %10.3f\n",
			res.Mode, res.Op, res.Threads, res.NsPerOp, res.AllocsPerOp, res.MOPS)
	}
	for _, t := range sortedKeys(r.SpeedupGet) {
		fmt.Fprintf(w, "speedup %s: Get %.2fx, GetInto %.2fx\n",
			t, r.SpeedupGet[t], r.SpeedupGetInto[t])
	}
}
