package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunObsSmoke runs the metrics-overhead comparison at toy scale and
// checks the report's shape: both modes measured for Get and Put, the
// overhead map filled, the live Prometheus scrape non-trivial, the
// disabled-mode Get allocation-free and the JSON round-trippable.
func TestRunObsSmoke(t *testing.T) {
	c := Config{Records: 2048, PathThreads: []int{2}}.WithDefaults()
	c.Out = nil
	rep, err := RunObs(c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2048 {
		t.Fatalf("header wrong: %+v", rep)
	}
	// 2 modes × 1 thread count × (Get, Put).
	if len(rep.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(rep.Results))
	}
	cells := map[string]ObsResult{}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.MOPS <= 0 {
			t.Fatalf("non-positive cell: %+v", r)
		}
		cells[r.Mode+"/"+r.Op] = r
	}
	for _, mode := range []string{"off", "on"} {
		for _, op := range []string{"Get", "Put"} {
			if _, ok := cells[mode+"/"+op]; !ok {
				t.Fatalf("missing cell %s/%s", mode, op)
			}
		}
	}
	// The harness's RunParallel setup amortises to a sub-milli residue;
	// the op itself must not allocate (TestMetricsZeroAllocDisabledGet in
	// core pins the exact-zero claim without harness noise).
	if got := cells["off/Get"].AllocsPerOp; got > 0.01 {
		t.Fatalf("disabled-metrics Get allocates %.4f/op, want ~0", got)
	}
	for _, key := range []string{"Get/t2", "Put/t2"} {
		if _, ok := rep.OverheadPct[key]; !ok {
			t.Fatalf("overhead_pct missing %q: %v", key, rep.OverheadPct)
		}
	}
	if rep.PromOpsGet == 0 {
		t.Fatal("prom scrape returned hart_ops_get = 0")
	}
	if rep.PromGetP99Ns <= 0 {
		t.Fatalf("prom scrape p99 = %v, want > 0", rep.PromGetP99Ns)
	}
	if rep.Metrics == nil || rep.Metrics.Counters["ops.get"] == 0 {
		t.Fatal("embedded metrics snapshot missing or empty")
	}
	if _, ok := rep.Metrics.Hists["ops.get"]; !ok {
		t.Fatalf("enabled-mode run left no ops.get histogram: %v", rep.Metrics.Hists)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ObsReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) || back.PromOpsGet != rep.PromOpsGet {
		t.Fatal("JSON round trip lost fields")
	}

	var tbl bytes.Buffer
	rep.FprintTable(&tbl)
	for _, want := range []string{"off", "on", "overhead", "prom scrape"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
}

// TestLiveSnapshot covers the -metrics-addr hook: before any store
// exists the snapshot is zero; after an experiment store comes up it
// reflects that store's counters.
func TestLiveSnapshot(t *testing.T) {
	liveSnap.Store(nil)
	if s := LiveSnapshot(); len(s.Counters) != 0 {
		t.Fatalf("zero-value live snapshot has counters: %v", s.Counters)
	}
	c := Config{Records: 1024}.WithDefaults()
	h, _, err := readPathIndex(c, false)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if s := LiveSnapshot(); s.Counters["ops.insert"] != 1024 {
		t.Fatalf("live snapshot ops.insert = %d, want 1024", s.Counters["ops.insert"])
	}
}
