package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/obs"
	"github.com/casl-sdsu/hart/internal/workload"
)

// Write-path experiment: the striped write path (per-stripe EPallocator
// lists, lock-free micro-log claims, batched COW publication) against the
// pre-striping baseline, reproduced bit-for-bit by core's LegacyWritePath
// option. Latency injection is off for the same reason as the read-path
// experiment: the subject is the synchronisation and publication cost of
// the write path itself, which identical PM penalties would only dilute.

// WritePathBatchSize is the batch size of the bulk-load comparison.
const WritePathBatchSize = 64

// WritePathResult is one measured cell of the write-path comparison.
type WritePathResult struct {
	// Mode is "legacy" (baseline) or "striped".
	Mode string `json:"mode"`
	// Op is Put, Mixed50/50, PutSeq or PutBatch64. Put and Mixed50/50 are
	// steady-state random updates of a preloaded index; PutSeq and
	// PutBatch64 are per-record costs of bulk-inserting a second sorted key
	// set with the writers partitioned over disjoint key ranges, one by one
	// and in 64-record batches respectively.
	Op string `json:"op"`
	// Threads is the GOMAXPROCS / parallel-worker count.
	Threads int `json:"threads"`
	// NsPerOp is the mean wall-clock cost per operation (per record for
	// the bulk-load rows).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the mean heap allocations per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MOPS is millions of operations per second (all workers combined).
	MOPS float64 `json:"mops"`
}

// WritePathReport is the BENCH_writepath.json document, shaped like
// BENCH_readpath.json so benchdiff.sh reads both.
type WritePathReport struct {
	// Records is the preloaded record count; ValueSize its payload bytes.
	Records   int `json:"records"`
	ValueSize int `json:"value_size"`
	// BatchSize is the PutBatch group size of the bulk-load rows.
	BatchSize int `json:"batch_size"`
	// NumCPU records the machine's parallelism so speedups can be read in
	// context (on a single-core host the win is the elimination of lock
	// handoffs and per-record publications, not parallel scaling).
	NumCPU  int               `json:"num_cpu"`
	Results []WritePathResult `json:"results"`
	// SpeedupPut maps "t<threads>" to legacy ns/record ÷ striped ns/record
	// for the PutBatch64 bulk insert at that writer count: the write
	// throughput gain of the striped path (batched publication, striped
	// allocator, lock-free log claims) over the per-record baseline when
	// the workload is writing records in bulk.
	SpeedupPut map[string]float64 `json:"speedup_put"`
	// BatchAmortisation maps the mode to PutSeq ns/record ÷ PutBatch64
	// ns/record at the lowest measured thread count: how much a 64-record
	// batch saves per record over single-key Puts for the same sorted
	// bulk insert.
	BatchAmortisation map[string]float64 `json:"batch_amortisation"`
	// Metrics is the striped store's observability snapshot after its
	// steady-state measurement pass (allocator steal and ulog-claim
	// counters put the ns/op cells in context).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// writePathIndex builds a HART with latency off and the given write mode,
// preloaded with the steady-state key set. Updates stay micro-logged (the
// default) so the Put benchmark exercises the update-log pool.
func writePathIndex(c Config, legacy bool) (*core.HART, [][]byte, error) {
	h, err := core.New(core.Options{
		ArenaSize:       arenaSize("HART", c.Records),
		LegacyWritePath: legacy,
	})
	if err != nil {
		return nil, nil, err
	}
	keys := workload.Random(c.Records, c.Seed)
	val := make([]byte, c.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for _, k := range keys {
		if err := h.Put(k, val); err != nil {
			return nil, nil, err
		}
	}
	return h, keys, nil
}

// benchWriteOp measures one steady-state op at one thread count via the
// testing harness (b.RunParallel over GOMAXPROCS workers). Put overwrites
// preloaded keys, so every op takes the full update path: micro-log claim,
// value allocation, persist, old-value release.
func benchWriteOp(h *core.HART, keys [][]byte, threads int, op string, valueSize int) WritePathResult {
	prev := runtime.GOMAXPROCS(threads)
	defer runtime.GOMAXPROCS(prev)
	mask := len(keys) - 1 // Records is kept a power of two by RunWritePath
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			rng := newRng(int64(threads)*2027 + 11)
			buf := make([]byte, 0, 64)
			val := make([]byte, valueSize)
			for i := range val {
				val[i] = byte('A' + i%26)
			}
			for pb.Next() {
				k := keys[int(rng.next())&mask]
				switch op {
				case "Put":
					if err := h.Put(k, val); err != nil {
						b.Fatal(err)
					}
				case "Mixed50/50":
					if rng.next()%100 < 50 {
						if err := h.Put(k, val); err != nil {
							b.Fatal(err)
						}
					} else if _, ok := h.GetInto(k, buf); !ok {
						b.Fatal("miss")
					}
				}
			}
		})
	})
	ns := float64(res.NsPerOp())
	return WritePathResult{
		Op:          op,
		Threads:     threads,
		NsPerOp:     ns,
		AllocsPerOp: float64(res.MemAllocs) / float64(res.N),
		MOPS:        1e3 / ns,
	}
}

// benchBulkLoad measures multi-threaded insert throughput: a preloaded
// index (so the hash directory's shards already exist and the measurement
// isolates the write path, not one-off directory growth) receives a
// second, disjoint, globally sorted key set, partitioned contiguously
// across the writer goroutines. Each writer inserts its partition one by
// one when batch is 0, else through PutBatch groups of that size. Sorted
// contiguous partitions are the bulk-load scenario the batched path is
// built for — consecutive records share hash-directory shards, so one
// group pays one tree clone-walk, one coalesced bit commit and one
// publication for many records — and they keep the writers on disjoint
// shards, the parallelism HART's per-ART writer model promises.
func benchBulkLoad(c Config, legacy bool, keys [][]byte, batch, threads int) (WritePathResult, error) {
	h, _, err := writePathIndex(c, legacy)
	if err != nil {
		return WritePathResult{}, err
	}
	defer h.Close()
	val := make([]byte, c.ValueSize)
	for i := range val {
		val[i] = byte('A' + i%26)
	}
	// Pre-create every shard the load keys hash to (a 4-byte sentinel per
	// distinct 2-byte prefix, disjoint from the ≥5-byte workload keys).
	// Shard creation republishes the whole hash directory — a rare,
	// identical-in-both-modes cost the paper's analysis ("the hash table
	// only needs to insert a new key periodically") keeps off the steady
	// write path, and which would otherwise drown the per-record costs
	// this comparison measures.
	seen := make(map[string]bool)
	for _, k := range loadKeysPrefixes(keys) {
		if !seen[k] {
			seen[k] = true
			if err := h.Put([]byte(k+"~!"), val); err != nil {
				return WritePathResult{}, err
			}
		}
	}
	pre := h.Len()
	runtime.GC() // retire the preload's garbage outside the timed region
	prev := runtime.GOMAXPROCS(threads)
	defer runtime.GOMAXPROCS(prev)

	var wg sync.WaitGroup
	errs := make(chan error, threads)
	per := (len(keys) + threads - 1) / threads
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for w := 0; w < threads; w++ {
		part := keys[min(w*per, len(keys)):min((w+1)*per, len(keys))]
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(part [][]byte) {
			defer wg.Done()
			if batch == 0 {
				for _, k := range part {
					if err := h.Put(k, val); err != nil {
						errs <- err
						return
					}
				}
				return
			}
			recs := make([]core.Record, 0, batch)
			for i := 0; i < len(part); i += batch {
				recs = recs[:0]
				for _, k := range part[i:min(i+batch, len(part))] {
					recs = append(recs, core.Record{Key: k, Value: val})
				}
				if n, err := h.PutBatch(recs); err != nil || n != len(recs) {
					errs <- fmt.Errorf("PutBatch = (%d,%v)", n, err)
					return
				}
			}
		}(part)
	}
	wg.Wait()
	d := time.Since(start)
	runtime.ReadMemStats(&ms1)
	close(errs)
	for err := range errs {
		return WritePathResult{}, err
	}
	if got := h.Len(); got != pre+len(keys) {
		return WritePathResult{}, fmt.Errorf("bulk load left %d records, want %d", got, pre+len(keys))
	}
	op := "PutSeq"
	if batch > 0 {
		op = fmt.Sprintf("PutBatch%d", batch)
	}
	ns := float64(d.Nanoseconds()) / float64(len(keys))
	return WritePathResult{
		Op:          op,
		Threads:     threads,
		NsPerOp:     ns,
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(len(keys)),
		MOPS:        1e3 / ns,
	}, nil
}

// loadKeysPrefixes returns each key's hash-directory prefix (the first
// core.DefaultHashKeyLen bytes) in input order.
func loadKeysPrefixes(keys [][]byte) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = string(k[:core.DefaultHashKeyLen])
	}
	return out
}

// RunWritePath measures the write-path comparison and returns the report.
func RunWritePath(c Config) (*WritePathReport, error) {
	c = c.WithDefaults()
	// Power-of-two record count for mask indexing.
	n := 1
	for n*2 <= c.Records {
		n *= 2
	}
	c.Records = n

	rep := &WritePathReport{
		Records:           c.Records,
		ValueSize:         c.ValueSize,
		BatchSize:         WritePathBatchSize,
		NumCPU:            runtime.NumCPU(),
		SpeedupPut:        map[string]float64{},
		BatchAmortisation: map[string]float64{},
	}
	threads := c.PathThreads
	if len(threads) == 0 {
		threads = []int{1, 4, 8}
	}
	legacyBatch := map[int]float64{}

	// Distinct key set for the bulk inserts, sorted: loading sorted input
	// is where batching amortises, and both sides get the same order.
	loadKeys := workload.Random(c.Records, c.Seed+1)
	sort.Slice(loadKeys, func(i, j int) bool { return bytes.Compare(loadKeys[i], loadKeys[j]) < 0 })

	for _, legacy := range []bool{true, false} {
		mode := "striped"
		if legacy {
			mode = "legacy"
		}
		h, keys, err := writePathIndex(c, legacy)
		if err != nil {
			return nil, err
		}
		for _, t := range threads {
			for _, op := range []string{"Put", "Mixed50/50"} {
				fmt.Fprintf(c.Out, "writepath: %s %s threads=%d...\n", mode, op, t)
				r := benchWriteOp(h, keys, t, op, c.ValueSize)
				r.Mode = mode
				rep.Results = append(rep.Results, r)
			}
		}
		if !legacy {
			m := h.Metrics()
			rep.Metrics = &m
		}
		h.Close()

		for _, t := range threads {
			var seqNs float64
			for _, batch := range []int{0, WritePathBatchSize} {
				fmt.Fprintf(c.Out, "writepath: %s bulk insert batch=%d threads=%d...\n", mode, batch, t)
				r, err := benchBulkLoad(c, legacy, loadKeys, batch, t)
				if err != nil {
					return nil, err
				}
				r.Mode = mode
				rep.Results = append(rep.Results, r)
				if batch == 0 {
					seqNs = r.NsPerOp
					continue
				}
				if t == threads[0] {
					rep.BatchAmortisation[mode] = seqNs / r.NsPerOp
				}
				if legacy {
					legacyBatch[t] = r.NsPerOp
				} else if base := legacyBatch[t]; base > 0 {
					rep.SpeedupPut[fmt.Sprintf("t%d", t)] = base / r.NsPerOp
				}
			}
		}
	}
	return rep, nil
}

// sortedKeys returns the map's "t<threads>" keys in numeric order.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return len(keys[i]) < len(keys[j]) || (len(keys[i]) == len(keys[j]) && keys[i] < keys[j])
	})
	return keys
}

// WriteJSON writes the report as indented JSON.
func (r *WritePathReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FprintTable renders the report for the terminal.
func (r *WritePathReport) FprintTable(w io.Writer) {
	fmt.Fprintf(w, "\n== Write path: legacy baseline vs striped (records=%d, value=%dB, batch=%d, NumCPU=%d) ==\n",
		r.Records, r.ValueSize, r.BatchSize, r.NumCPU)
	fmt.Fprintf(w, "%-10s %-12s %-8s %12s %10s %10s\n", "mode", "op", "threads", "ns/op", "allocs/op", "Mops/s")
	for _, res := range r.Results {
		fmt.Fprintf(w, "%-10s %-12s %-8d %12.1f %10.2f %10.3f\n",
			res.Mode, res.Op, res.Threads, res.NsPerOp, res.AllocsPerOp, res.MOPS)
	}
	for _, t := range sortedKeys(r.SpeedupPut) {
		fmt.Fprintf(w, "speedup %s: Put %.2fx\n", t, r.SpeedupPut[t])
	}
	for _, mode := range []string{"legacy", "striped"} {
		fmt.Fprintf(w, "batch amortisation %s: %.2fx\n", mode, r.BatchAmortisation[mode])
	}
}
