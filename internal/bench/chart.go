package bench

import (
	"fmt"
	"io"
	"strings"
)

// FprintCharts renders the report as ASCII bar charts, one chart per
// figure, mirroring the paper's grouped-bar presentation so shapes can be
// eyeballed directly in a terminal.
func (r Report) FprintCharts(w io.Writer) {
	byFig := map[string]Report{}
	var figs []string
	for _, row := range r {
		if _, ok := byFig[row.Figure]; !ok {
			figs = append(figs, row.Figure)
		}
		byFig[row.Figure] = append(byFig[row.Figure], row)
	}
	for _, fig := range figs {
		rows := byFig[fig]
		fmt.Fprintf(w, "\nFigure %s — %s\n", fig, chartTitle(rows))
		switch {
		case rows[0].MIOPS > 0:
			barChart(w, rows, func(r Row) (string, float64) {
				return fmt.Sprintf("%-7s %2d thr", r.Op, r.Threads), r.MIOPS
			}, "MIOPS", false)
		case rows[0].PMBytes > 0 || rows[0].DRAMBytes > 0:
			var mem Report
			for _, row := range rows {
				pm, dram := row, row
				pm.Tree += " PM"
				pm.NsPerOp = float64(row.PMBytes) / (1 << 20)
				dram.Tree += " DRAM"
				dram.NsPerOp = float64(row.DRAMBytes) / (1 << 20)
				mem = append(mem, pm, dram)
			}
			barChart(w, mem, func(r Row) (string, float64) {
				return r.Tree, r.NsPerOp
			}, "MB", false)
		case rows[0].TotalSec > 0:
			barChart(w, rows, func(r Row) (string, float64) {
				return fmt.Sprintf("%-8s %-8s n=%d", r.Tree, r.Op, r.Records), r.TotalSec
			}, "s", true)
		default:
			barChart(w, rows, func(r Row) (string, float64) {
				return fmt.Sprintf("%-11s %-8s %-9s", r.Workload, r.Latency, r.Tree), r.NsPerOp / 1000
			}, "us/op", true)
		}
	}
}

// chartTitle summarises a figure's rows.
func chartTitle(rows Report) string {
	ops := map[string]bool{}
	for _, r := range rows {
		if r.Op != "" {
			ops[r.Op] = true
		}
	}
	var list []string
	for op := range ops {
		list = append(list, op)
	}
	if len(list) == 1 {
		return list[0]
	}
	return fmt.Sprintf("%d series", len(rows))
}

// barChart prints one labelled horizontal bar per row, scaled to the
// figure's maximum. lowerIsBetter marks the minimum with a star.
func barChart(w io.Writer, rows Report, kv func(Row) (string, float64), unit string, lowerIsBetter bool) {
	const width = 42
	maxV, minV := 0.0, -1.0
	type item struct {
		label string
		v     float64
	}
	items := make([]item, 0, len(rows))
	labelW := 0
	for _, r := range rows {
		label, v := kv(r)
		items = append(items, item{label, v})
		if v > maxV {
			maxV = v
		}
		if minV < 0 || v < minV {
			minV = v
		}
		if len(label) > labelW {
			labelW = len(label)
		}
	}
	if maxV <= 0 {
		return
	}
	for _, it := range items {
		n := int(it.v / maxV * width)
		if n < 1 && it.v > 0 {
			n = 1
		}
		marker := " "
		if lowerIsBetter && it.v == minV {
			marker = "*"
		}
		fmt.Fprintf(w, "  %-*s %s%-*s %8.3f %s\n",
			labelW, it.label, marker, width, strings.Repeat("#", n), it.v, unit)
	}
}
